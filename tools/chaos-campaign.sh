#!/bin/sh
# Chaos campaign gate: prove the elastic lease fabric survives worker
# death and torn writes with a final store bit-exact vs a serial run.
#
# Usage: tools/chaos-campaign.sh [build-dir]   (default: build)
#
# Six legs, each ending in a bit-exact sweep-diff against the same
# serial golden store:
#
#   1. kill -9    two elastic workers (--lease) share one store; one is
#                 kill -9'd mid-campaign. The survivor must observe the
#                 dead worker's lease expire, steal its ledgers, gap-fill
#                 only the missing episode indices, and complete the
#                 campaign with zero manual intervention.
#   2. torn write CREATE_CHAOS tear= truncates the store to a random
#                 fraction after flushes; every subsequent locked read
#                 must salvage the parseable prefix and the next flush
#                 heals the file. A chaos-off --resume pass afterwards
#                 repairs anything the final tear destroyed (and must
#                 re-execute nothing when the store self-healed).
#   3. abort      CREATE_CHAOS abort= makes workers _exit(137) before
#                 random flushes (the OOM-kill shape). The driver simply
#                 relaunches until a worker survives to completion --
#                 every relaunch resumes from the surviving episodes.
#
# Legs 4-6 run the same campaign through the socket coordinator
# (create-coordinator + fig13 --connect workers, no shared filesystem):
#
#   4. kill -9    one of two socket workers dies mid-campaign; its
#                 outstanding range times out (--lease) and the
#                 coordinator re-dispatches the missing episode indices
#                 to the survivor.
#   5. connreset  CREATE_CHAOS connreset= severs coordinator-wire sends
#                 mid-frame on the workers; every reset must heal by
#                 reconnect + re-send (duplicates merge idempotently).
#   6. coord kill the coordinator itself is kill -9'd mid-campaign and
#                 restarted on the same port + store: it salvages the
#                 binlog, re-learns progress from the have-bitmap, and
#                 the workers' connect-retry budget rides through.
#
# Episodes are deterministic (seeded per index, exact integer kernels),
# so however chaotically the work is re-run, re-stolen, or re-merged,
# the final store must be bit-identical to the serial one. Tunables:
#   CHAOS_REPS (default 2)       reps per cell (campaign size)
#   CHAOS_LEASE (default 2)      lease period in seconds
#   CHAOS_KILL_AFTER (default 1) seconds before the kill -9
#   STORE_FORMAT (default json)  campaign store backend (json|binlog).
#                                The serial golden stays json either way:
#                                diffing binlog campaigns against it also
#                                gates the cross-format readers.
set -e
cd "$(dirname "$0")/.."
build=${1:-build}
fig13=$build/bench/bench_fig13_techniques
diff=$build/tools/sweep-diff
stats=$build/tools/sweep-stats
coord=$build/tools/create-coordinator
reps=${CHAOS_REPS:-2}
lease=${CHAOS_LEASE:-2}
kill_after=${CHAOS_KILL_AFTER:-1}
fmt=${STORE_FORMAT:-json}
echo "== store format: $fmt (serial golden: json)"

work=$(mktemp -d /tmp/chaos-campaign.XXXXXX)
trap 'rm -rf "$work"' EXIT INT TERM

echo "== serial golden ($fig13 --reps $reps)"
"$fig13" --reps "$reps" --out "$work/serial.json" > /dev/null 2>&1

echo "== leg 1: kill -9 one of two elastic workers mid-campaign"
"$fig13" --reps "$reps" --out "$work/kill.store" --store-format "$fmt" --lease "$lease" \
    --flush-every 1 --progress > /dev/null 2> "$work/victim.log" &
victim=$!
"$fig13" --reps "$reps" --out "$work/kill.store" --store-format "$fmt" --lease "$lease" \
    --flush-every 1 --progress > /dev/null 2> "$work/survivor.log" &
survivor=$!
sleep "$kill_after"
if kill -9 "$victim" 2> /dev/null; then
    echo "   killed worker pid $victim after ${kill_after}s"
else
    echo "   worker $victim already finished (campaign too fast to kill)"
fi
wait "$victim" 2> /dev/null || true
if ! wait "$survivor"; then
    echo "FAIL: surviving worker exited nonzero"
    sed -n '$p' "$work/survivor.log"
    exit 1
fi
grep -E "stealing lease|stolen=" "$work/survivor.log" | tail -2 || true
"$diff" "$work/serial.json" "$work/kill.store"
"$stats" "$work/kill.store" | sed -n '/Per-shard/,/^$/p'

echo "== leg 2: torn-write chaos (CREATE_CHAOS tear=0.2) + heal"
CREATE_CHAOS="tear=0.2" CREATE_CHAOS_SEED=20260808 \
    "$fig13" --reps "$reps" --out "$work/tear.store" --store-format "$fmt" --lease "$lease" \
    --flush-every 1 > /dev/null 2> "$work/tear.log"
tears=$(grep -c "\[chaos\] tore" "$work/tear.log" || true)
echo "   injected $tears torn writes"
if [ "${tears:-0}" -eq 0 ]; then
    echo "FAIL: tear chaos never fired; the leg is vacuous"
    exit 1
fi
# Heal pass: chaos off. If the final flush was torn this re-executes the
# lost episodes from the salvaged prefix; otherwise it must be a no-op.
"$fig13" --reps "$reps" --out "$work/tear.store" --resume \
    > "$work/heal.log" 2>&1
grep "\[sweep\] cells=" "$work/heal.log" || true
"$diff" "$work/serial.json" "$work/tear.store"

echo "== leg 3: abort-before-flush chaos (CREATE_CHAOS abort=0.03)"
tries=0
until CREATE_CHAOS="abort=0.03" CREATE_CHAOS_SEED=$((1000 + tries)) \
    "$fig13" --reps "$reps" --out "$work/abort.store" --store-format "$fmt" --lease "$lease" \
    --flush-every 1 > /dev/null 2> "$work/abort.log"; do
    tries=$((tries + 1))
    if [ "$tries" -gt 25 ]; then
        echo "FAIL: no worker survived after $tries relaunches"
        exit 1
    fi
done
echo "   survived after $tries abort-and-resume relaunches"
"$diff" "$work/serial.json" "$work/abort.store"

# Start a create-coordinator on an ephemeral port over $1 (store path)
# with extra flags $2...; sets $coord_pid and $port (parsed from the
# "listening on port N" line).
start_coordinator() {
    cstore=$1
    shift
    : > "$work/coord.out"
    "$coord" --store "$cstore" --store-format "$fmt" --lease "$lease" \
        --once "$@" > "$work/coord.out" 2>> "$work/coord.log" &
    coord_pid=$!
    port=""
    tries=0
    while [ -z "$port" ]; do
        port=$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' \
            "$work/coord.out")
        [ -n "$port" ] && break
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "FAIL: coordinator never reported its port"
            exit 1
        fi
        sleep 0.1
    done
}

echo "== leg 4: kill -9 one of two socket workers (coordinator campaign)"
start_coordinator "$work/sock.store"
"$fig13" --reps "$reps" --connect "127.0.0.1:$port" \
    > /dev/null 2> "$work/sock-victim.log" &
victim=$!
"$fig13" --reps "$reps" --connect "127.0.0.1:$port" \
    > /dev/null 2> "$work/sock-survivor.log" &
survivor=$!
sleep "$kill_after"
if kill -9 "$victim" 2> /dev/null; then
    echo "   killed socket worker pid $victim after ${kill_after}s"
else
    echo "   worker $victim already finished (campaign too fast to kill)"
fi
wait "$victim" 2> /dev/null || true
if ! wait "$survivor"; then
    echo "FAIL: surviving socket worker exited nonzero"
    sed -n '$p' "$work/sock-survivor.log"
    exit 1
fi
if ! wait "$coord_pid"; then
    echo "FAIL: coordinator exited nonzero"
    sed -n '$p' "$work/coord.log"
    exit 1
fi
grep "episodes ingested" "$work/coord.log" | tail -1 || true
"$diff" "$work/serial.json" "$work/sock.store"
"$stats" "$work/sock.store" | sed -n '/Per-worker/,/^$/p'

echo "== leg 5: connreset storm on socket workers (CREATE_CHAOS connreset=0.05)"
start_coordinator "$work/reset.store"
CREATE_CHAOS="connreset=0.05" CREATE_CHAOS_SEED=20260808 \
    "$fig13" --reps "$reps" --connect "127.0.0.1:$port" \
    > /dev/null 2> "$work/reset-w1.log" &
w1=$!
CREATE_CHAOS="connreset=0.05" CREATE_CHAOS_SEED=20260809 \
    "$fig13" --reps "$reps" --connect "127.0.0.1:$port" \
    > /dev/null 2> "$work/reset-w2.log" &
w2=$!
if ! wait "$w1" || ! wait "$w2"; then
    echo "FAIL: a socket worker did not survive the connreset storm"
    sed -n '$p' "$work/reset-w1.log" "$work/reset-w2.log"
    exit 1
fi
if ! wait "$coord_pid"; then
    echo "FAIL: coordinator exited nonzero under connreset"
    sed -n '$p' "$work/coord.log"
    exit 1
fi
resets=$(cat "$work/reset-w1.log" "$work/reset-w2.log" |
    grep -c "\[chaos\] connreset" || true)
echo "   injected $resets connection resets"
if [ "${resets:-0}" -eq 0 ]; then
    echo "FAIL: connreset chaos never fired; the leg is vacuous"
    exit 1
fi
"$diff" "$work/serial.json" "$work/reset.store"

echo "== leg 6: kill -9 the coordinator mid-campaign, restart on same store"
start_coordinator "$work/ckill.store"
"$fig13" --reps "$reps" --connect "127.0.0.1:$port" \
    > /dev/null 2> "$work/ckill-w1.log" &
w1=$!
"$fig13" --reps "$reps" --connect "127.0.0.1:$port" \
    > /dev/null 2> "$work/ckill-w2.log" &
w2=$!
sleep "$kill_after"
if kill -9 "$coord_pid" 2> /dev/null; then
    echo "   killed coordinator pid $coord_pid after ${kill_after}s"
    wait "$coord_pid" 2> /dev/null || true
    # Restart on the SAME port (SO_REUSEADDR) and the same store: it
    # salvages the binlog tail and resumes from the surviving episodes;
    # the workers' connect-retry backoff (~30 s) rides through the gap.
    start_coordinator "$work/ckill.store" --port "$port"
else
    echo "   coordinator already finished (campaign too fast to kill)"
    coord_pid=""
fi
if ! wait "$w1" || ! wait "$w2"; then
    echo "FAIL: a socket worker did not survive the coordinator restart"
    sed -n '$p' "$work/ckill-w1.log" "$work/ckill-w2.log"
    exit 1
fi
if [ -n "$coord_pid" ] && ! wait "$coord_pid"; then
    echo "FAIL: restarted coordinator exited nonzero"
    sed -n '$p' "$work/coord.log"
    exit 1
fi
grep "episodes ingested" "$work/coord.log" | tail -1 || true
"$diff" "$work/serial.json" "$work/ckill.store"

echo "== chaos-campaign: all legs bit-exact vs serial"
