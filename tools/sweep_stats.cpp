/**
 * @file
 * sweep-stats: tail analytics over a SweepRunner result store.
 *
 *   sweep-stats store.json [--compare other.json] [--abs-tol X]
 *               [--rel-tol Y] [--json out.json] [--csv out.csv]
 *               [--curve] [--top N]
 *
 * Renders p50/p95/p99 episode energy and steps per (platform, task,
 * protection mode), per-fingerprint flip-attribution tables (stores
 * written at schema v3), and -- with --curve -- success-vs-rep
 * convergence curves. --json/--csv export the analytics for plotting.
 *
 * --compare reports percentile drift vs another store of the same
 * campaign under the sweep-diff tolerance rule (defaults: bit-exact) and
 * is the second leg of the golden-store CI gate. Exit code 0 = ok /
 * no drift, 1 = drift, 2 = usage or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"
#include "core/store_stats.hpp"

using namespace create;

namespace {

const char*
protectionName(int prot)
{
    switch (prot) {
      case 0: return "none";
      case 1: return "dmr";
      case 2: return "tvolt";
      case 3: return "abft";
    }
    return "?";
}

/** Short display handle of a ledger: its label when present. */
std::string
ledgerName(const LedgerTail& t)
{
    if (!t.label.empty())
        return t.label;
    // Fall back to the fingerprint, elided from the middle (the head and
    // the config tail carry the distinguishing bits).
    if (t.fingerprint.size() <= 48)
        return t.fingerprint;
    return t.fingerprint.substr(0, 24) + ".." +
           t.fingerprint.substr(t.fingerprint.size() - 22);
}

Table
groupTable(const StoreStatsResult& stats)
{
    Table table("Episode tails per (platform, task, protection)");
    table.header({"platform", "task", "prot", "ledgers", "eps", "success",
                  "J p50", "J p95", "J p99", "steps p50", "steps p95",
                  "steps p99"});
    for (const GroupTail& g : stats.groups)
        table.row({g.platform, std::to_string(g.taskId),
                   protectionName(g.protection), std::to_string(g.ledgers),
                   std::to_string(g.episodes), Table::pct(g.successRate),
                   Table::num(g.energyJ.p50), Table::num(g.energyJ.p95),
                   Table::num(g.energyJ.p99), Table::num(g.steps.p50, 0),
                   Table::num(g.steps.p95, 0), Table::num(g.steps.p99, 0)});
    return table;
}

void
printAttribution(const StoreStatsResult& stats, int top)
{
    std::vector<const LedgerTail*> with;
    for (const LedgerTail& t : stats.ledgers)
        if (t.hasMetrics)
            with.push_back(&t);
    if (with.empty()) {
        std::printf("\n(no fault-attribution counters in this store -- "
                    "written before schema v3 or with CREATE_METRICS=0)\n");
        return;
    }
    // Most fault activity first; the cap keeps a 100-cell campaign's
    // report readable and is reported explicitly, never silently.
    std::stable_sort(with.begin(), with.end(),
                     [](const LedgerTail* a, const LedgerTail* b) {
                         return a->metrics.flipsInjected >
                                b->metrics.flipsInjected;
                     });
    Table table("Per-fingerprint flip attribution (schema v3 metrics)");
    table.header({"ledger", "eps", "gemms", "injected", "detected",
                  "corrected", "escaped", "reexec", "p95 ms"});
    int shown = 0;
    for (const LedgerTail* t : with) {
        if (top > 0 && shown >= top)
            break;
        const EpisodeMetrics& m = t->metrics;
        table.row({ledgerName(*t), std::to_string(t->episodes),
                   std::to_string(m.gemms), std::to_string(m.flipsInjected),
                   std::to_string(m.flipsDetected),
                   std::to_string(m.flipsCorrected),
                   std::to_string(m.flipsEscaped),
                   std::to_string(m.reExecutions),
                   t->hasWall ? Table::num(t->wallMs.p95, 1) : "-"});
        ++shown;
    }
    std::printf("\n");
    table.print();
    if (shown < static_cast<int>(with.size()))
        std::printf("(+%zu more ledgers; raise --top to see them)\n",
                    with.size() - static_cast<std::size_t>(shown));

    // Per-layer rollup across every ledger: where in the model flips
    // land and what happens to them.
    EpisodeMetrics all;
    for (const LedgerTail* t : with)
        all += t->metrics;
    if (!all.layers.empty()) {
        Table layers("Per-layer fault attribution (all ledgers)");
        layers.header({"layer", "gemms", "injected", "detected",
                       "corrected", "escaped", "reexec"});
        for (const auto& [tag, c] : all.layers)
            layers.row({tag, std::to_string(c.gemms),
                        std::to_string(c.injected),
                        std::to_string(c.detected),
                        std::to_string(c.corrected),
                        std::to_string(c.escaped),
                        std::to_string(c.reExecutions)});
        std::printf("\n");
        layers.print();
    }
}

void
printShards(const StoreStatsResult& stats)
{
    // Only distributed campaigns (elastic lease or coordinator socket
    // mode) stamp episodes with a `by` field and write lease/worker
    // records; a plain serial/sharded store has no shards to attribute
    // and prints nothing.
    if (stats.shards.empty())
        return;
    bool anyRanges = false;
    for (const ShardLoad& s : stats.shards)
        anyRanges = anyRanges || s.hasRanges;
    if (!anyRanges) {
        Table table(
            "Per-shard episode attribution (elastic lease campaign)");
        table.header({"worker", "episodes", "ledgers", "leases held"});
        for (const ShardLoad& s : stats.shards)
            table.row({s.owner, std::to_string(s.episodes),
                       std::to_string(s.ledgers),
                       std::to_string(s.leasesHeld)});
        std::printf("\n");
        table.print();
        return;
    }
    // A coordinator campaign additionally wrote worker| range telemetry:
    // widen the table with the dispatch counters, throughput, and the
    // p95/p50 range-wall-time straggler ratio.
    Table table("Per-worker range dispatch (coordinator campaign)");
    table.header({"worker", "episodes", "ledgers", "leases held", "ranges",
                  "redisp", "eps/s", "rng p50 ms", "rng p95 ms",
                  "straggler"});
    for (const ShardLoad& s : stats.shards) {
        std::vector<std::string> row = {s.owner, std::to_string(s.episodes),
                                        std::to_string(s.ledgers),
                                        std::to_string(s.leasesHeld)};
        if (s.hasRanges) {
            row.push_back(std::to_string(s.rangesCompleted) + "/" +
                          std::to_string(s.rangesAssigned));
            row.push_back(std::to_string(s.rangesRedispatched));
            row.push_back(Table::num(s.epsPerSec, 1));
            row.push_back(Table::num(s.rangeP50Ms, 1));
            row.push_back(Table::num(s.rangeP95Ms, 1));
            row.push_back(s.rangeP50Ms > 0.0
                              ? Table::num(s.rangeP95Ms / s.rangeP50Ms, 2)
                              : "-");
        } else {
            // A filesystem --lease worker of a mixed fleet: episode
            // attribution only, no coordinator-side range counters.
            for (int i = 0; i < 6; ++i)
                row.emplace_back("-");
        }
        table.row(row);
    }
    std::printf("\n");
    table.print();
}

void
printCurves(const StoreStatsResult& stats)
{
    Table table("Success-vs-rep convergence");
    table.header({"ledger", "reps", "success"});
    for (const LedgerTail& t : stats.ledgers)
        for (const auto& [reps, rate] : t.convergence)
            table.row({ledgerName(t), std::to_string(reps),
                       Table::pct(rate)});
    std::printf("\n");
    table.print();
}

/** Export the full analytics as JsonRecords (one per ledger + group). */
void
exportJson(const StoreStatsResult& stats, const std::string& path)
{
    std::vector<JsonRecord> records;
    for (const LedgerTail& t : stats.ledgers) {
        JsonRecord rec;
        rec.name = t.fingerprint;
        rec.strings.emplace_back("platform", t.platform);
        rec.strings.emplace_back("label", t.label);
        rec.numbers.emplace_back("task", t.taskId);
        rec.numbers.emplace_back("protection", t.protection);
        rec.numbers.emplace_back("episodes", t.episodes);
        rec.numbers.emplace_back("successRate", t.stats.successRate);
        for (const auto& [key, member] : kPercentileFields) {
            rec.numbers.emplace_back("energyJ." + std::string(key),
                                     t.energyJ.*member);
            rec.numbers.emplace_back("steps." + std::string(key),
                                     t.steps.*member);
            if (t.hasWall)
                rec.numbers.emplace_back("wallMs." + std::string(key),
                                         t.wallMs.*member);
        }
        for (const auto& [reps, rate] : t.convergence)
            rec.numbers.emplace_back("success@" + std::to_string(reps),
                                     rate);
        if (t.hasMetrics) {
            for (const auto& [key, member] : kEpisodeMetricFields)
                rec.numbers.emplace_back(
                    key, static_cast<double>(t.metrics.*member));
            for (const auto& [tag, c] : t.metrics.layers)
                for (const auto& [key, member] : kLayerFaultFields)
                    if (c.*member != 0)
                        rec.numbers.emplace_back(
                            std::string(kLayerFieldPrefix) + tag + "." +
                                key,
                            static_cast<double>(c.*member));
        }
        records.push_back(std::move(rec));
    }
    for (const GroupTail& g : stats.groups) {
        JsonRecord rec;
        rec.name = "group|" + g.platform +
                   "|task=" + std::to_string(g.taskId) +
                   "|prot=" + std::to_string(g.protection);
        rec.numbers.emplace_back("ledgers", g.ledgers);
        rec.numbers.emplace_back("episodes", g.episodes);
        rec.numbers.emplace_back("successRate", g.successRate);
        for (const auto& [key, member] : kPercentileFields) {
            rec.numbers.emplace_back("energyJ." + std::string(key),
                                     g.energyJ.*member);
            rec.numbers.emplace_back("steps." + std::string(key),
                                     g.steps.*member);
        }
        records.push_back(std::move(rec));
    }
    if (!writeJsonRecords(path, records))
        std::fprintf(stderr, "sweep-stats: cannot write %s\n",
                     path.c_str());
}

int
runStats(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0) {
            // Only this tool's value-taking flags consume a detached
            // token; an unknown bare flag must not swallow the store path.
            const bool takesValue =
                std::strcmp(argv[i], "--compare") == 0 ||
                std::strcmp(argv[i], "--abs-tol") == 0 ||
                std::strcmp(argv[i], "--rel-tol") == 0 ||
                std::strcmp(argv[i], "--json") == 0 ||
                std::strcmp(argv[i], "--csv") == 0 ||
                std::strcmp(argv[i], "--top") == 0;
            if (takesValue && std::strchr(argv[i], '=') == nullptr) {
                if (i + 1 >= argc ||
                    std::strncmp(argv[i + 1], "--", 2) == 0) {
                    std::fprintf(stderr, "sweep-stats: %s needs a value\n",
                                 argv[i]);
                    return 2;
                }
                ++i; // skip the flag's value
            }
            continue;
        }
        paths.emplace_back(argv[i]);
    }
    if (cli.flag("help") || paths.size() != 1) {
        std::printf(
            "usage: sweep-stats store.json [--compare other.json]\n"
            "       [--abs-tol X] [--rel-tol Y] [--json out.json]\n"
            "       [--csv out.csv] [--curve] [--top N]\n"
            "\nTail analytics over a SweepRunner result store:\n"
            "p50/p95/p99 episode energy and steps per (platform, task,\n"
            "protection), per-fingerprint flip attribution (schema v3\n"
            "stores), and --curve success-vs-rep convergence. --compare\n"
            "reports percentile drift vs another store (a stat passes\n"
            "when |a-b| <= abs-tol + rel-tol*max; defaults 0 = exact).\n"
            "Exit 0 = ok, 1 = drift, 2 = error.\n");
        return cli.flag("help") ? 0 : 2;
    }

    StoreStatsResult stats;
    std::string error;
    if (!computeStoreStats(paths[0], stats, error)) {
        std::fprintf(stderr, "sweep-stats: %s\n", error.c_str());
        return 2;
    }
    if (stats.ledgers.empty() && stats.legacyCells == 0) {
        // Same guard as sweep-diff: an empty (or non-store) file must not
        // let a CI gate pass vacuously.
        std::fprintf(stderr,
                     "sweep-stats: %s contains no store cells; nothing to "
                     "analyze\n",
                     paths[0].c_str());
        return 2;
    }

    Table groups = groupTable(stats);
    groups.print();
    if (stats.legacyCells > 0)
        std::printf("(%d legacy v1 cell-level record%s: aggregates only, "
                    "no episode ledger to tail-analyze)\n",
                    stats.legacyCells, stats.legacyCells == 1 ? "" : "s");
    printAttribution(stats,
                     static_cast<int>(cli.integer("top", 10)));
    printShards(stats);
    if (cli.flag("curve"))
        printCurves(stats);

    const std::string jsonPath = cli.str("json", "");
    if (!jsonPath.empty())
        exportJson(stats, jsonPath);
    const std::string csvPath = cli.str("csv", "");
    if (!csvPath.empty())
        groups.writeCsv(csvPath);

    const std::string comparePath = cli.str("compare", "");
    if (comparePath.empty())
        return 0;

    StoreStatsResult other;
    if (!computeStoreStats(comparePath, other, error)) {
        std::fprintf(stderr, "sweep-stats: %s\n", error.c_str());
        return 2;
    }
    StoreDiffOptions tol;
    tol.absTol = cli.real("abs-tol", 0.0);
    tol.relTol = cli.real("rel-tol", 0.0);
    const StatsCompareResult cmp = compareStoreStats(stats, other, tol);
    for (const StatsDriftEntry& e : cmp.entries)
        std::printf("drift      %s\n           %s\n", e.fingerprint.c_str(),
                    e.detail.c_str());
    std::printf("sweep-stats: compared %d ledger%s vs %s, %zu drift%s, "
                "%d only here, %d only there\n",
                cmp.compared, cmp.compared == 1 ? "" : "s",
                comparePath.c_str(), cmp.entries.size(),
                cmp.entries.size() == 1 ? "" : "s", cmp.onlyA, cmp.onlyB);
    return cmp.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    // Fail closed like sweep-diff: any exception out of the loader or
    // analytics is a one-line diagnostic and exit 2, never an
    // unhandled-exception abort.
    try {
        return runStats(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "sweep-stats: %s\n", e.what());
        return 2;
    } catch (...) {
        std::fprintf(stderr, "sweep-stats: unknown error\n");
        return 2;
    }
}
