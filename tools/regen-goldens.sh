#!/bin/sh
# Regenerate the pinned-reps golden stores under bench/golden/.
#
# Usage: tools/regen-goldens.sh [build-dir]   (default: build)
#
# Every sweep driver campaign is deterministic bit-for-bit (seeded
# episodes, exact integer kernels on every ISA tier), so these stores
# are regenerated identically on any host; the only honest-noise field
# they carry is per-episode wallMs, which neither sweep-diff nor
# sweep-stats --compare ever gates on. Rerun this script -- and commit
# the result -- whenever a change intentionally moves campaign results
# (new injection model, energy model change, matrix edit); the CI
# observability-gate job fails until the goldens match the code again.
#
# Reps are pinned small: the gate certifies bit-identity of the result
# pipeline, not statistical power.
set -e
cd "$(dirname "$0")/.."
build=${1:-build}
reps=2

for name in fig13:bench_fig13_techniques \
            fig16:bench_fig16_overall \
            fig17:bench_fig17_cross_platform \
            fig20:bench_fig20_baselines \
            fig21:bench_fig21_policies \
            tab05:bench_tab05_repetitions; do
    golden=bench/golden/${name%%:*}.json
    driver=$build/bench/${name#*:}
    rm -f "$golden"
    echo "== $driver --reps $reps --out $golden"
    "$driver" --reps $reps --out "$golden" > /dev/null
done
echo "== done; review with: git diff --stat bench/golden"
