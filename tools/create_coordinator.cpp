/**
 * @file
 * create-coordinator: the socket campaign coordinator process.
 *
 *   create-coordinator --store PATH [--store-format json|binlog]
 *                      [--port N] [--range N] [--lease S]
 *                      [--once] [--verbose]
 *
 * Owns one campaign store, serves pending episode ranges to socket
 * workers (`create_sweep --connect host:port`, or any SweepRunner with
 * Options::connect set), and ingests their completed episode records --
 * no shared filesystem required. See core/coordinator.hpp for the wire
 * protocol and the mixed-fleet (filesystem `--lease` workers sharing
 * the store) semantics.
 *
 * Prints `listening on port N` on stdout once the socket is bound --
 * scripts that spawn the coordinator with --port 0 wait for this line
 * to learn the ephemeral port.
 *
 * Exit code 0 = clean finish (with --once: campaign complete), 1 =
 * terminal store failure mid-campaign (the store salvages on restart),
 * 2 = usage error.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "core/coordinator.hpp"

using namespace create;

namespace {

Coordinator* gCoordinator = nullptr;

void
onSignal(int)
{
    if (gCoordinator)
        gCoordinator->stop();
}

void
usage(std::FILE* to)
{
    std::fprintf(
        to,
        "usage: create-coordinator --store PATH [options]\n"
        "\n"
        "Serve episode ranges of a sweep campaign over TCP and ingest\n"
        "workers' completed records into the store (no shared\n"
        "filesystem required).\n"
        "\n"
        "  --store PATH          the campaign store (required)\n"
        "  --store-format FMT    json|binlog for a new store (default\n"
        "                        binlog; an existing store keeps its\n"
        "                        detected format)\n"
        "  --port N              TCP port (default 0 = ephemeral;\n"
        "                        printed as 'listening on port N')\n"
        "  --range N             episodes per dispatched range\n"
        "                        (default 16; shrinks near the tail)\n"
        "  --lease S             assignment/lease timeout seconds\n"
        "                        (default 30): a worker silent this\n"
        "                        long forfeits its range\n"
        "  --once                exit once every declared ledger is\n"
        "                        complete and the fleet disconnected\n"
        "  --verbose             per-range dispatch log on stderr\n");
}

bool
parseInt(const char* s, int& out)
{
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || (end && *end != '\0') || v < 0 || v > 1 << 30)
        return false;
    out = static_cast<int>(v);
    return true;
}

int
runTool(int argc, char** argv)
{
    Coordinator::Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "create-coordinator: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--store") {
            opt.storePath = value("--store");
        } else if (arg == "--store-format") {
            const char* v = value("--store-format");
            if (!parseStoreFormat(v, opt.storeFormat)) {
                std::fprintf(stderr,
                             "create-coordinator: --store-format: expected "
                             "json or binlog, got '%s'\n",
                             v);
                return 2;
            }
        } else if (arg == "--port") {
            if (!parseInt(value("--port"), opt.port) || opt.port > 65535) {
                std::fprintf(stderr, "create-coordinator: bad --port\n");
                return 2;
            }
        } else if (arg == "--range") {
            if (!parseInt(value("--range"), opt.rangeEpisodes) ||
                opt.rangeEpisodes < 1) {
                std::fprintf(stderr, "create-coordinator: bad --range\n");
                return 2;
            }
        } else if (arg == "--lease") {
            char* end = nullptr;
            const char* v = value("--lease");
            opt.leaseSeconds = std::strtod(v, &end);
            if (end == v || (end && *end != '\0') ||
                opt.leaseSeconds <= 0.0) {
                std::fprintf(stderr, "create-coordinator: bad --lease\n");
                return 2;
            }
        } else if (arg == "--once") {
            opt.once = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "create-coordinator: unknown flag %s\n",
                         argv[i]);
            usage(stderr);
            return 2;
        }
    }
    if (opt.storePath.empty()) {
        usage(stderr);
        return 2;
    }

    Coordinator coord(opt);
    std::string error;
    if (!coord.start(&error)) {
        std::fprintf(stderr, "create-coordinator: %s\n", error.c_str());
        return 2;
    }
    std::printf("listening on port %d\n", coord.port());
    std::fflush(stdout);

    gCoordinator = &coord;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    coord.runLoop();
    gCoordinator = nullptr;

    std::fprintf(stderr,
                 "create-coordinator: %lld episodes ingested, %lld ranges "
                 "dispatched (%lld re-dispatched)\n",
                 coord.episodesIngested(), coord.rangesDispatched(),
                 coord.rangesRedispatched());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return runTool(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "create-coordinator: %s\n", e.what());
        return 1;
    }
}
