/**
 * @file
 * sweep-store: inspect, convert, and compact SweepRunner result stores.
 *
 *   sweep-store inspect <store>
 *   sweep-store convert <in> <out> [--to json|binlog]
 *   sweep-store compact <store>
 *
 * Both store formats (the single-file JSON interchange array and the
 * binlog directory of per-writer append logs; see core/store_backend.hpp)
 * are autodetected by magic bytes / directory-ness, so every subcommand
 * takes either.
 *
 *  - inspect: one summary block (format, schema, files, records by kind,
 *    salvage/quarantine state). Never mutates the store.
 *  - convert: load the merged record view and rewrite it in the target
 *    format (default: the opposite of the input). Records are written
 *    sorted by name, exactly the order the JSON store uses, so
 *    json -> binlog -> json is byte-identical -- doubles travel as
 *    IEEE-754 bits through the binlog and as %.17g through the JSON.
 *  - compact: fold a binlog store's logs (and duplicate keys) into one
 *    fresh log; a no-op on JSON stores. Quiescent stores only.
 *
 * Exit code 0 = success, 2 = usage/unreadable input.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/binlog.hpp"
#include "common/serialize.hpp"
#include "common/store_keys.hpp"
#include "core/store_backend.hpp"

using namespace create;

namespace {

void
usage(std::FILE* to)
{
    std::fprintf(
        to,
        "usage: sweep-store inspect <store>\n"
        "       sweep-store convert <in> <out> [--to json|binlog]\n"
        "       sweep-store compact <store>\n"
        "\n"
        "Result-store toolbox over both on-disk formats (autodetected):\n"
        "  inspect   summarize format, schema, files, and record kinds\n"
        "  convert   rewrite <in> as <out> in the target format (--to;\n"
        "            default: the opposite of <in>); lossless both ways\n"
        "  compact   fold a binlog store's append logs into one log\n");
}

/** Load the merged view of a store; exit(2) with a diagnostic if it is
 *  missing or yields nothing parseable. */
std::unique_ptr<StoreBackend>
loadOrDie(const std::string& path, std::vector<JsonRecord>& records,
          StoreLoadInfo& info)
{
    std::unique_ptr<StoreBackend> be =
        openStoreBackend(path, StoreFormat::Json, "sweep-store");
    if (!be->load(records, &info, /*quarantineBadTails=*/false)) {
        std::fprintf(stderr, "sweep-store: cannot read result store %s\n",
                     path.c_str());
        std::exit(2);
    }
    if (info.salvaged && records.empty()) {
        std::fprintf(stderr,
                     "sweep-store: cannot parse result store %s (no "
                     "parseable records)\n",
                     path.c_str());
        std::exit(2);
    }
    return be;
}

int
runInspect(const std::string& path)
{
    std::vector<JsonRecord> records;
    StoreLoadInfo info;
    const std::unique_ptr<StoreBackend> be = loadOrDie(path, records, info);
    int schema = 1; // schema-less stores are PR 4-era v1 cell stores
    std::size_t episodes = 0, leases = 0, metas = 0, other = 0;
    std::map<std::string, std::size_t> perFp;
    for (const JsonRecord& rec : records) {
        if (rec.name == kSweepStoreSchemaRecord) {
            schema = static_cast<int>(rec.number("schema", 1));
            continue;
        }
        std::string fp;
        if (sweepEpisodeIndex(rec.name, &fp) >= 0) {
            ++episodes;
            ++perFp[fp];
        } else if (sweepLeaseFingerprint(rec.name)) {
            ++leases;
        } else if (rec.name.rfind("v1|", 0) == 0 ||
                   rec.name.rfind("v2|", 0) == 0) {
            ++metas;
        } else {
            ++other;
        }
    }
    std::printf("store:    %s\n", path.c_str());
    std::printf("format:   %s\n", storeFormatName(be->format()));
    std::printf("schema:   %d\n", schema);
    std::printf("files:    %zu (%llu bytes)\n", info.files,
                static_cast<unsigned long long>(info.totalBytes));
    std::printf("records:  %zu merged (%zu episodes across %zu ledgers, "
                "%zu meta, %zu lease, %zu other)\n",
                records.size(), episodes, perFp.size(), metas, leases,
                other);
    if (info.salvaged)
        std::printf("salvage:  torn/corrupt content skipped (%llu of %llu "
                    "bytes were parseable)\n",
                    static_cast<unsigned long long>(info.goodBytes),
                    static_cast<unsigned long long>(info.totalBytes));
    return 0;
}

int
runConvert(const std::string& in, const std::string& out,
           const std::string& toFlag)
{
    std::vector<JsonRecord> records;
    StoreLoadInfo info;
    const std::unique_ptr<StoreBackend> src = loadOrDie(in, records, info);
    StoreFormat to = src->format() == StoreFormat::Json
                         ? StoreFormat::Binlog
                         : StoreFormat::Json;
    if (!toFlag.empty() && !parseStoreFormat(toFlag, to)) {
        std::fprintf(stderr,
                     "sweep-store: --to: expected json or binlog, got "
                     "'%s'\n",
                     toFlag.c_str());
        return 2;
    }
    StoreFormat existing;
    if (detectStoreFormat(out, existing) && existing != to) {
        // openStoreBackend would silently keep the existing format; for
        // an explicit convert that surprise should be an error.
        std::fprintf(stderr,
                     "sweep-store: %s already exists as a %s store; "
                     "remove it or pick a different output\n",
                     out.c_str(), storeFormatName(existing));
        return 2;
    }
    std::unique_ptr<StoreBackend> dst =
        openStoreBackend(out, to, "sweep-store");
    // Sorted-by-name map: the exact record order writeJsonRecords uses,
    // so a binlog converted back to json reproduces the original file
    // byte for byte.
    std::map<std::string, JsonRecord> full;
    std::vector<JsonRecord> batch;
    batch.reserve(records.size());
    for (JsonRecord& rec : records) {
        full[rec.name] = rec;
        batch.push_back(std::move(rec));
    }
    std::sort(batch.begin(), batch.end(),
              [](const JsonRecord& a, const JsonRecord& b) {
                  return a.name < b.name;
              });
    std::string error;
    if (!dst->flush(full, batch, &error)) {
        std::fprintf(stderr, "sweep-store: cannot write %s: %s\n",
                     out.c_str(), error.c_str());
        return 2;
    }
    std::printf("converted %s (%s) -> %s (%s): %zu records\n", in.c_str(),
                storeFormatName(src->format()), out.c_str(),
                storeFormatName(to), batch.size());
    return 0;
}

int
runCompact(const std::string& path)
{
    std::vector<JsonRecord> records;
    StoreLoadInfo info;
    const std::unique_ptr<StoreBackend> be = loadOrDie(path, records, info);
    std::string error, note;
    if (!be->compact(&error, &note)) {
        std::fprintf(stderr, "sweep-store: compact %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
    }
    std::printf("%s\n", note.c_str());
    return 0;
}

int
runTool(int argc, char** argv)
{
    std::vector<std::string> args;
    std::string toFlag;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(stdout);
            return 0;
        }
        if (std::strncmp(argv[i], "--to=", 5) == 0) {
            toFlag = argv[i] + 5;
        } else if (std::strcmp(argv[i], "--to") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "sweep-store: --to needs a value\n");
                return 2;
            }
            toFlag = argv[++i];
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            std::fprintf(stderr, "sweep-store: unknown flag %s\n", argv[i]);
            usage(stderr);
            return 2;
        } else {
            args.emplace_back(argv[i]);
        }
    }
    if (args.empty()) {
        usage(stderr);
        return 2;
    }
    const std::string& cmd = args[0];
    if (cmd == "inspect" && args.size() == 2)
        return runInspect(args[1]);
    if (cmd == "convert" && args.size() == 3)
        return runConvert(args[1], args[2], toFlag);
    if (cmd == "compact" && args.size() == 2)
        return runCompact(args[1]);
    usage(stderr);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return runTool(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "sweep-store: %s\n", e.what());
        return 2;
    }
}
