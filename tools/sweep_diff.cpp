/**
 * @file
 * sweep-diff: compare two SweepRunner result stores cell-by-fingerprint
 * and exit nonzero on drift, turning any campaign into a regression gate.
 *
 *   sweep-diff baseline.json candidate.json [--abs-tol X] [--rel-tol Y]
 *
 * Reports new/missing cells, episode-count mismatches, and stats that
 * differ beyond the tolerances (both default to 0: bit-exact). Exit code
 * 0 = stores match, 1 = drift, 2 = usage/I/O error. CI uses this to
 * check that an N-shard campaign writes exactly the store a serial run
 * of the same matrix does.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/store_diff.hpp"

using namespace create;

namespace {

const char*
kindTag(StoreDiffEntry::Kind kind)
{
    switch (kind) {
      case StoreDiffEntry::Kind::OnlyInA: return "only-in-A";
      case StoreDiffEntry::Kind::OnlyInB: return "only-in-B";
      case StoreDiffEntry::Kind::Episodes: return "episodes";
      case StoreDiffEntry::Kind::Stat: return "stat";
    }
    return "?";
}

int
runDiff(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0) {
            // Only this tool's value-taking flags consume a detached
            // token; an unknown bare flag must not swallow a store path.
            const bool takesValue =
                std::strcmp(argv[i], "--abs-tol") == 0 ||
                std::strcmp(argv[i], "--rel-tol") == 0;
            if (takesValue && std::strchr(argv[i], '=') == nullptr) {
                // A tolerance flag with no value would silently become
                // 1.0 through Cli's bare-flag convention ("--rel-tol" ==
                // 100% relative tolerance), neutering the regression
                // gate; demand an explicit value.
                if (i + 1 >= argc ||
                    std::strncmp(argv[i + 1], "--", 2) == 0) {
                    std::fprintf(stderr, "sweep-diff: %s needs a value\n",
                                 argv[i]);
                    return 2;
                }
                ++i; // skip the flag's value
            }
            continue;
        }
        paths.emplace_back(argv[i]);
    }
    if (cli.flag("help") || paths.size() != 2) {
        std::printf(
            "usage: sweep-diff A.json B.json [--abs-tol X] [--rel-tol Y]\n"
            "\nCompare two SweepRunner result stores cell-by-fingerprint\n"
            "(v2 episode-ledger stores fold their ledgers; legacy v1\n"
            "cell-level stores compare their stored aggregates). A stat\n"
            "passes when |a-b| <= abs-tol + rel-tol*max(|a|,|b|); both\n"
            "default to 0, i.e. bit-exact. Exit 0 = match, 1 = drift,\n"
            "2 = error.\n");
        return cli.flag("help") ? 0 : 2;
    }

    StoreDiffOptions opt;
    opt.absTol = cli.real("abs-tol", 0.0);
    opt.relTol = cli.real("rel-tol", 0.0);

    std::vector<StoreCell> a, b;
    std::string error;
    if (!loadStoreCells(paths[0], a, error) ||
        !loadStoreCells(paths[1], b, error)) {
        std::fprintf(stderr, "sweep-diff: %s\n", error.c_str());
        return 2;
    }

    if (a.empty() && b.empty()) {
        // Neither file contains a recognizable cell: comparing two bench
        // reports (or two empty stores) must not let a CI gate pass
        // vacuously as "0 differences".
        std::fprintf(stderr,
                     "sweep-diff: neither %s nor %s contains any store "
                     "cell; nothing was compared\n",
                     paths[0].c_str(), paths[1].c_str());
        return 2;
    }

    const StoreDiffResult res = diffStoreCells(a, b, opt);
    for (const StoreDiffEntry& e : res.entries)
        std::printf("%-10s %s\n           %s\n", kindTag(e.kind),
                    e.fingerprint.c_str(), e.detail.c_str());
    std::printf("sweep-diff: %d vs %d cells, %d compared, %zu difference%s\n",
                res.cellsA, res.cellsB, res.compared, res.entries.size(),
                res.entries.size() == 1 ? "" : "s");
    return res.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    // A CI gate must fail closed: an unreadable file or a JSON quirk the
    // loader throws on is a one-line diagnostic and exit 2, never an
    // unhandled-exception abort (which some CI runners report as a crash
    // and retry instead of surfacing).
    try {
        return runDiff(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "sweep-diff: %s\n", e.what());
        return 2;
    } catch (...) {
        std::fprintf(stderr, "sweep-diff: unknown error\n");
        return 2;
    }
}
