/**
 * @file
 * bench-gate: the perf-trajectory gate over bench_micro's JSON report.
 *
 *     bench-gate <bench_micro.json> <BENCH_trajectory.json>
 *                [--append] [--tolerance PCT]
 *
 * Reads the google-benchmark JSON written by `bench_micro --json`,
 * refuses non-release numbers (context key `create_build_type`, stamped
 * by bench_micro itself from NDEBUG -- `library_build_type` only
 * describes how the *benchmark library* was compiled, and e.g. Debian
 * ships a debug libbenchmark inside release distros; it is used as a
 * fallback only when the create stamp is absent, i.e. on reports from
 * older binaries), and compares the gate benchmarks
 *
 *     BM_IntGemm/64, BM_FaultyLinear, BM_EvaluateManip/1
 *
 * against the most recent BENCH_trajectory.json entry measured on the
 * same SIMD tier (context key `create_simd`; comparing an AVX-512 run
 * against an SSE2 baseline would only ever flag improvements). A gate
 * benchmark more than --tolerance percent slower (default 25) fails the
 * gate. With --append, every benchmark's cpu time is appended to the
 * trajectory as one dated entry (the repo's flat JsonRecord format), so
 * the trajectory file doubles as the perf history of the hot path.
 *
 * The trajectory lives at BENCH_trajectory.json in the repo root and is
 * regenerated/extended on dedicated hardware; CI runs the gate with its
 * own fresh numbers mostly as a crash/build-type guard -- shared-runner
 * wall clock is noisy, which is what the 25% band absorbs.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hpp"

namespace {

/** Minimal JSON DOM: just enough for google-benchmark reports. */
struct Jv
{
    enum Type
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };
    Type type = Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Jv> arr;
    std::vector<std::pair<std::string, Jv>> obj;

    const Jv* find(const std::string& key) const
    {
        for (const auto& [k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
    std::string text(const std::string& key,
                     const std::string& dflt = "") const
    {
        const Jv* v = find(key);
        return v && v->type == Str ? v->str : dflt;
    }
};

/** Recursive-descent JSON parser (throws std::runtime_error). */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    Jv parse()
    {
        const Jv v = value();
        ws();
        if (i_ != s_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void fail(const char* what) const
    {
        throw std::runtime_error("JSON parse error at byte " +
                                 std::to_string(i_) + ": " + what);
    }
    void ws()
    {
        while (i_ < s_.size() && std::isspace(
                                     static_cast<unsigned char>(s_[i_])))
            ++i_;
    }
    char peek()
    {
        ws();
        if (i_ >= s_.size())
            fail("unexpected end");
        return s_[i_];
    }
    void expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++i_;
    }
    bool consume(char c)
    {
        if (i_ < s_.size() && peek() == c) {
            ++i_;
            return true;
        }
        return false;
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (i_ < s_.size() && s_[i_] != '"') {
            char c = s_[i_++];
            if (c == '\\') {
                if (i_ >= s_.size())
                    fail("bad escape");
                const char e = s_[i_++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u':
                    // Benchmark names/context are ASCII; keep the
                    // escaped form rather than decoding UTF-16 pairs.
                    if (i_ + 4 > s_.size())
                        fail("bad \\u escape");
                    out += "\\u";
                    out.append(s_, i_, 4);
                    i_ += 4;
                    continue;
                  default: c = e; break;
                }
            }
            out += c;
        }
        expect('"');
        return out;
    }

    Jv value()
    {
        const char c = peek();
        Jv v;
        if (c == '{') {
            ++i_;
            v.type = Jv::Obj;
            if (!consume('}')) {
                do {
                    std::string key = string();
                    expect(':');
                    v.obj.emplace_back(std::move(key), value());
                } while (consume(','));
                expect('}');
            }
        } else if (c == '[') {
            ++i_;
            v.type = Jv::Arr;
            if (!consume(']')) {
                do
                    v.arr.push_back(value());
                while (consume(','));
                expect(']');
            }
        } else if (c == '"') {
            v.type = Jv::Str;
            v.str = string();
        } else if (c == 't' || c == 'f') {
            v.type = Jv::Bool;
            v.boolean = c == 't';
            i_ += v.boolean ? 4 : 5;
            if (i_ > s_.size())
                fail("bad literal");
        } else if (c == 'n') {
            i_ += 4;
            if (i_ > s_.size())
                fail("bad literal");
        } else {
            v.type = Jv::Num;
            char* end = nullptr;
            v.num = std::strtod(s_.c_str() + i_, &end);
            if (end == s_.c_str() + i_)
                fail("bad number");
            i_ = static_cast<std::size_t>(end - s_.c_str());
        }
        return v;
    }

    const std::string& s_;
    std::size_t i_ = 0;
};

double
unitToNs(const std::string& unit)
{
    if (unit == "ns" || unit.empty())
        return 1.0;
    if (unit == "us")
        return 1e3;
    if (unit == "ms")
        return 1e6;
    if (unit == "s")
        return 1e9;
    std::fprintf(stderr, "bench-gate: unknown time_unit '%s', assuming ns\n",
                 unit.c_str());
    return 1.0;
}

/** "isa=avx2 (supported: ...)" -> "avx2"; "" when absent/unparseable. */
std::string
isaTier(const std::string& simdReport)
{
    const std::string tag = "isa=";
    const std::size_t p = simdReport.find(tag);
    if (p == std::string::npos)
        return "";
    std::size_t e = p + tag.size();
    while (e < simdReport.size() &&
           !std::isspace(static_cast<unsigned char>(simdReport[e])))
        ++e;
    return simdReport.substr(p + tag.size(), e - p - tag.size());
}

/** The benchmarks whose regressions fail the gate. */
const char* const kGateBenches[] = {"BM_IntGemm/64", "BM_FaultyLinear",
                                    "BM_EvaluateManip/1"};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench-gate <bench_micro.json> <BENCH_trajectory.json> "
        "[--append] [--tolerance PCT]\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string benchPath, trajPath;
    bool append = false;
    double tolerance = 25.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--append") {
            append = true;
        } else if (arg == "--tolerance" && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
        } else if (benchPath.empty()) {
            benchPath = arg;
        } else if (trajPath.empty()) {
            trajPath = arg;
        } else {
            return usage();
        }
    }
    if (benchPath.empty() || trajPath.empty())
        return usage();

    std::ifstream in(benchPath);
    if (!in) {
        std::fprintf(stderr, "bench-gate: cannot read %s\n",
                     benchPath.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    Jv root;
    try {
        root = JsonParser(buf.str()).parse();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench-gate: %s: %s\n", benchPath.c_str(),
                     e.what());
        return 1;
    }

    const Jv* ctx = root.find("context");
    if (!ctx || ctx->type != Jv::Obj) {
        std::fprintf(stderr, "bench-gate: %s has no context object\n",
                     benchPath.c_str());
        return 1;
    }

    // Release gate: perf numbers from a debug build are not numbers.
    const std::string createType = ctx->text("create_build_type");
    const std::string libType = ctx->text("library_build_type");
    const std::string effType = !createType.empty() ? createType : libType;
    if (effType != "release") {
        std::fprintf(stderr,
                     "bench-gate: FAIL: report was measured by a '%s' "
                     "build (create_build_type=%s, library_build_type=%s); "
                     "rebuild with -DCMAKE_BUILD_TYPE=Release\n",
                     effType.c_str(),
                     createType.empty() ? "<absent>" : createType.c_str(),
                     libType.c_str());
        return 1;
    }

    const std::string simd = ctx->text("create_simd");
    const std::string tier = isaTier(simd);
    const std::string date = ctx->text("date");

    // cpu_time (ns) per benchmark, aggregate runs skipped.
    std::vector<std::pair<std::string, double>> times;
    const Jv* benches = root.find("benchmarks");
    if (benches && benches->type == Jv::Arr) {
        for (const Jv& b : benches->arr) {
            if (b.type != Jv::Obj)
                continue;
            if (b.text("run_type", "iteration") != "iteration")
                continue;
            const Jv* cpu = b.find("cpu_time");
            if (!cpu || cpu->type != Jv::Num)
                continue;
            times.emplace_back(b.text("name"),
                               cpu->num * unitToNs(b.text("time_unit")));
        }
    }
    if (times.empty()) {
        std::fprintf(stderr, "bench-gate: %s contains no benchmark runs\n",
                     benchPath.c_str());
        return 1;
    }
    auto lookup = [&](const std::string& name) -> const double* {
        for (const auto& [n, t] : times)
            if (n == name)
                return &t;
        return nullptr;
    };

    // Baseline: newest trajectory entry from the same SIMD tier.
    std::vector<create::JsonRecord> traj;
    const bool haveTraj = create::readJsonRecords(trajPath, traj);
    const create::JsonRecord* base = nullptr;
    for (const auto& rec : traj)
        if (create::JsonRecord(rec).text("simd_tier") == tier)
            base = &rec;
    if (!haveTraj)
        std::fprintf(stderr,
                     "bench-gate: no trajectory at %s yet (first run?)\n",
                     trajPath.c_str());

    int failures = 0;
    if (base) {
        std::printf("bench-gate: comparing against '%s' (tier %s, "
                    "tolerance %.0f%%)\n",
                    base->name.c_str(), tier.c_str(), tolerance);
        for (const char* name : kGateBenches) {
            const double* now = lookup(name);
            const double prev = base->number(name, 0.0);
            if (!now || prev <= 0.0) {
                std::printf("  %-22s (not in both; skipped)\n", name);
                continue;
            }
            const double pct = 100.0 * (*now - prev) / prev;
            const bool bad = pct > tolerance;
            std::printf("  %-22s %12.1f ns  vs %12.1f ns  (%+.1f%%)%s\n",
                        name, *now, prev, pct, bad ? "  REGRESSION" : "");
            if (bad)
                ++failures;
        }
    } else {
        std::printf("bench-gate: no previous entry for tier '%s'; nothing "
                    "to compare\n",
                    tier.c_str());
    }

    if (append) {
        create::JsonRecord rec;
        rec.name = (date.empty() ? std::string("undated") : date) + "-" +
                   (tier.empty() ? "unknown" : tier);
        rec.strings.emplace_back("date", date);
        rec.strings.emplace_back("simd_tier", tier);
        rec.strings.emplace_back("simd", simd);
        rec.strings.emplace_back("build_type", effType);
        for (const auto& [name, t] : times)
            rec.numbers.emplace_back(name, t);
        traj.push_back(std::move(rec));
        if (!create::writeJsonRecords(trajPath, traj)) {
            std::fprintf(stderr, "bench-gate: cannot write %s\n",
                         trajPath.c_str());
            return 1;
        }
        std::printf("bench-gate: appended '%s' to %s (%zu entries)\n",
                    traj.back().name.c_str(), trajPath.c_str(),
                    traj.size());
    }

    if (failures) {
        std::fprintf(stderr,
                     "bench-gate: FAIL: %d gate benchmark%s regressed more "
                     "than %.0f%%\n",
                     failures, failures == 1 ? "" : "s", tolerance);
        return 1;
    }
    std::printf("bench-gate: OK (%zu benchmarks, tier %s, release build)\n",
                times.size(), tier.empty() ? "<none>" : tier.c_str());
    return 0;
}
