/**
 * @file
 * Voltage explorer: sweep the operating voltage for a task and print the
 * reliability/efficiency frontier with and without the CREATE stack --
 * the what-if tool for picking a deployment point.
 *
 *   ./voltage_explorer [--task stone] [--reps 8] [--vmin 0.66] [--vmax 0.90]
 *                      [--threads N]
 */

#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/create_system.hpp"
#include "core/parallel_eval.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const MineTask task = mineTaskByName(cli.str("task", "stone"));
    const int reps = static_cast<int>(cli.integer("reps", 8));
    const double vmin = cli.real("vmin", 0.66);
    const double vmax = cli.real("vmax", 0.90);
    const int threads = std::max(
        1, static_cast<int>(
               cli.integer("threads", ParallelEvaluator::defaultThreads())));

    std::printf("Voltage exploration on '%s' (%d episodes/point, %d "
                "thread%s)\n",
                mineTaskName(task), reps, threads, threads == 1 ? "" : "s");
    CreateSystem sys;
    sys.setEvalThreads(threads);

    Table t("Reliability/efficiency frontier");
    t.header({"voltage (V)", "BER", "plain success", "plain J",
              "CREATE success", "CREATE J"});
    for (double v = vmax; v >= vmin - 1e-9; v -= 0.03) {
        const auto plain =
            sys.evaluate(task, CreateConfig::atVoltage(v, v), reps);
        const auto created = sys.evaluate(
            task,
            CreateConfig::fullCreate(v, EntropyVoltagePolicy::preset('D')),
            reps);
        t.row({Table::num(v, 2),
               Table::num(TimingErrorModel::berAtVoltage(v), 8),
               Table::pct(plain.successRate),
               Table::num(plain.avgComputeJ, 2),
               Table::pct(created.successRate),
               Table::num(created.avgComputeJ, 2)});
    }
    t.print();
    std::printf("\nPick the lowest voltage where CREATE holds the nominal "
                "success rate; the plain pipeline collapses several steps "
                "earlier.\n");
    return 0;
}
