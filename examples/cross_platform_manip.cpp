/**
 * @file
 * Cross-platform demo: the OpenVLA-style planner decomposes a LIBERO-style
 * tabletop task and the Octo-style controller executes it on ManipWorld,
 * with AD+WR protecting the planner at an aggressive voltage.
 *
 *   ./cross_platform_manip [--task wine] [--voltage 0.72]
 */

#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "core/rotation.hpp"
#include "models/platforms.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const std::string taskName = cli.str("task", "wine");
    const double voltage = cli.real("voltage", 0.72);
    ManipTask task = ManipTask::Wine;
    for (int t = 0; t < kNumManipTasks; ++t)
        if (taskName == manipTaskName(static_cast<ManipTask>(t)))
            task = static_cast<ManipTask>(t);

    std::printf("Cross-platform demo: '%s' with the OpenVLA planner "
                "(AD+WR @ %.2f V) and the Octo controller\n\n",
                manipTaskName(task), voltage);

    auto planner = platforms::manipPlanner("openvla");
    applyWeightRotation(*planner);
    platforms::calibrateManipPlanner(*planner);
    auto controller = platforms::manipController("octo");

    ComputeContext pctx(1), cctx(2);
    pctx.domain = Domain::Planner;
    pctx.anomalyDetection = true;
    pctx.setVoltage(voltage);
    pctx.setVoltageMode();
    cctx.domain = Domain::Controller;

    ManipWorld world(task, 777);
    const auto tokens = planner->inferPlan(static_cast<int>(task), 0, pctx);
    const auto plan = platforms::decodeManipPlan(tokens);
    static const char* subtaskNames[] = {
        "reach object", "grasp object",  "transport to goal",
        "release at goal", "reach button", "press button",
        "reach handle", "pull handle", "push block"};
    std::printf("Plan (%zu motion subtasks):\n", plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        std::printf("  %zu. %s\n", i + 1,
                    subtaskNames[static_cast<int>(plan[i])]);

    Rng rng(99);
    int steps = 0;
    for (const auto st : plan) {
        world.setActiveSubtask(st);
        const int before = steps;
        while (!world.subtaskComplete() && steps < ManipWorld::kStepCap) {
            const ManipObs obs = world.observe();
            const auto logits = controller->inferLogits(
                static_cast<int>(st), obs.spatial, obs.state, cctx);
            world.step(static_cast<ManipAction>(sampleAction(logits, rng)));
            ++steps;
        }
        std::printf("  %-18s -> %s in %d steps\n",
                    subtaskNames[static_cast<int>(st)],
                    world.subtaskComplete() ? "done" : "STUCK",
                    steps - before);
        if (steps >= ManipWorld::kStepCap)
            break;
    }
    std::printf("\nTask %s after %d steps; %llu planner bit flips were "
                "injected and %llu anomalies cleared by AD.\n",
                world.taskComplete() ? "COMPLETE" : "failed", steps,
                static_cast<unsigned long long>(
                    pctx.meter.usage(Domain::Planner).bitFlips),
                static_cast<unsigned long long>(
                    pctx.meter.usage(Domain::Planner).anomaliesCleared));
    return 0;
}
