/**
 * @file
 * Cross-platform demo: the OpenVLA-style planner decomposes a LIBERO-style
 * tabletop task and the Octo-style controller executes it on ManipWorld,
 * with AD+WR protecting the planner at an aggressive voltage -- all through
 * the same ManipSystem backend the Fig. 17 bench evaluates.
 *
 *   ./cross_platform_manip [--task wine] [--voltage 0.72] [--reps 10]
 *                          [--threads N]
 */

#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/manip_system.hpp"
#include "core/parallel_eval.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const std::string taskName = cli.str("task", "wine");
    const double voltage = cli.real("voltage", 0.72);
    const int reps = static_cast<int>(cli.integer("reps", 10));
    const int threads = std::max(
        1, static_cast<int>(
               cli.integer("threads", ParallelEvaluator::defaultThreads())));
    ManipTask task = ManipTask::Wine;
    for (int t = 0; t < kNumManipTasks; ++t)
        if (taskName == manipTaskName(static_cast<ManipTask>(t)))
            task = static_cast<ManipTask>(t);

    std::printf("Cross-platform demo: '%s' with the OpenVLA planner "
                "(AD+WR @ %.2f V) and the Octo controller\n\n",
                manipTaskName(task), voltage);

    ManipSystem sys("openvla", "octo");
    sys.setEvalThreads(threads);

    CreateConfig protFlags = CreateConfig::atVoltage(voltage, 0.90);
    protFlags.anomalyDetection = true;
    protFlags.weightRotation = true;
    protFlags.injectController = false;

    // Show the plan the rotated planner emits at the aggressive voltage.
    {
        ComputeContext pctx(1);
        pctx.domain = Domain::Planner;
        protFlags.applyTo(pctx, /*isPlanner=*/true);
        const auto tokens = sys.planner(/*rotated=*/true)
                                .inferPlan(static_cast<int>(task), 0, pctx);
        const auto plan = platforms::decodeManipPlan(tokens);
        static const char* subtaskNames[] = {
            "reach object",  "grasp object", "transport to goal",
            "release at goal", "reach button", "press button",
            "reach handle",  "pull handle",  "push block"};
        std::printf("Plan (%zu motion subtasks):\n", plan.size());
        for (std::size_t i = 0; i < plan.size(); ++i)
            std::printf("  %zu. %s\n", i + 1,
                        subtaskNames[static_cast<int>(plan[i])]);
    }

    // One verbose episode through the shared runner.
    const EpisodeResult r = sys.runEpisode(task, 777, protFlags);
    std::printf("\nSingle episode: task %s after %d steps, %d/%zu subtasks; "
                "%llu planner bit flips injected, %llu anomalies cleared by "
                "AD.\n",
                r.success ? "COMPLETE" : "failed", r.steps,
                r.subtasksCompleted, manipGoldPlan(task).size(),
                static_cast<unsigned long long>(r.bitFlips),
                static_cast<unsigned long long>(r.anomaliesCleared));

    // Aggregate comparison via the shared evaluation engine.
    const TaskStats clean = sys.evaluate(task, CreateConfig::clean(), reps);
    const TaskStats prot = sys.evaluate(task, protFlags, reps);
    Table t("Clean vs AD+WR at " + std::to_string(voltage) + " V (" +
            std::to_string(reps) + " episodes)");
    t.header({"config", "success", "avg steps", "planner eff V",
              "energy (J)"});
    t.row({"clean 0.90 V", Table::pct(clean.successRate),
           Table::num(clean.avgStepsSuccess, 0),
           Table::num(clean.avgPlannerEffV, 3),
           Table::num(clean.avgComputeJ, 2)});
    t.row({"AD+WR undervolted", Table::pct(prot.successRate),
           Table::num(prot.avgStepsSuccess, 0),
           Table::num(prot.avgPlannerEffV, 3),
           Table::num(prot.avgComputeJ, 2)});
    t.print();
    std::printf("\nPlanner-side energy savings at iso quality: %.1f%%\n",
                100.0 * (1.0 - prot.avgPlannerV2 / clean.avgPlannerV2));
    return 0;
}
