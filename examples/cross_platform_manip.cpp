/**
 * @file
 * Cross-platform demo: run any registered embodied platform (Minecraft,
 * manipulation, or navigation) under a clean deployment vs AD+WR at an
 * aggressive planner voltage -- all through the shared EmbodiedSystem
 * facade, with platforms enumerated from the PlatformRegistry.
 *
 *   ./cross_platform_manip [--platforms openvla+octo,navllama+pathrt]
 *                          [--task wine] [--voltage 0.72] [--reps 10]
 *                          [--threads N] [--list-platforms] [--help]
 *
 * Without --task each platform runs its first registry benchmark task;
 * with --task the named task is used on every selected platform that has
 * it (others fall back to their first benchmark task).
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/parallel_eval.hpp"
#include "core/platform_registry.hpp"

using namespace create;

namespace {

int
resolveTask(const EmbodiedSystem& sys, const PlatformInfo& info,
            const std::string& name)
{
    if (!name.empty())
        for (int t = 0; t < sys.numTasks(); ++t)
            if (name == sys.taskName(t))
                return t;
    return info.plannerTasks.empty() ? 0 : info.plannerTasks.front();
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto& reg = PlatformRegistry::instance();
    if (cli.flag("help")) {
        std::printf(
            "Cross-platform demo: clean vs AD+WR on registered platforms.\n\n"
            "Options:\n"
            "  --platforms a,b,c  comma-separated platform list (default: "
            "openvla+octo)\n"
            "  --list-platforms   print the registered platforms and exit\n"
            "  --task NAME        benchmark task name (default: each "
            "platform's first)\n"
            "  --voltage V        aggressive planner voltage (default: each "
            "platform's registry default)\n"
            "  --reps N           episodes per configuration (default 10)\n"
            "  --threads N        parallel evaluation workers (default: all "
            "hardware threads, here %d)\n",
            ParallelEvaluator::defaultThreads());
        return 0;
    }
    if (cli.flag("list-platforms")) {
        std::printf("Registered platforms:\n");
        for (const auto& p : reg.all())
            std::printf("  %-22s (%s: %s + %s)\n", p.name.c_str(),
                        p.envFamily.c_str(), p.plannerName.c_str(),
                        p.controllerName.c_str());
        return 0;
    }

    const std::string taskName = cli.str("task", "");
    const int reps = static_cast<int>(cli.integer("reps", 10));
    const int threads = std::max(
        1, static_cast<int>(
               cli.integer("threads", ParallelEvaluator::defaultThreads())));

    std::vector<const PlatformInfo*> selected;
    try {
        selected = reg.select(cli.str("platforms", "openvla+octo"));
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s (try --list-platforms)\n", e.what());
        return 1;
    }

    for (const auto* info : selected) {
        const double voltage = cli.real("voltage", info->defaultPlannerV);
        auto sys = info->factory(/*verbose=*/false);
        sys->setEvalThreads(threads);
        const int task = resolveTask(*sys, *info, taskName);

        std::printf("\n=== %s (%s) -- task '%s', AD+WR @ %.2f V ===\n",
                    info->name.c_str(), info->envFamily.c_str(),
                    sys->taskName(task), voltage);

        CreateConfig protFlags =
            CreateConfig::atVoltage(voltage, info->defaultControllerV);
        protFlags.anomalyDetection = true;
        protFlags.weightRotation = true;
        protFlags.injectController = false;

        // One verbose episode through the shared runner.
        const EpisodeResult r = sys->runEpisode(task, 777, protFlags);
        std::printf("Single episode: task %s after %d steps, %d subtasks "
                    "done; %llu planner bit flips injected, %llu anomalies "
                    "cleared by AD.\n",
                    r.success ? "COMPLETE" : "failed", r.steps,
                    r.subtasksCompleted,
                    static_cast<unsigned long long>(r.bitFlips),
                    static_cast<unsigned long long>(r.anomaliesCleared));

        // Aggregate comparison via the shared evaluation engine.
        const TaskStats clean =
            sys->evaluate(task, CreateConfig::clean(), reps);
        const TaskStats prot = sys->evaluate(task, protFlags, reps);
        Table t("Clean vs AD+WR at " + Table::num(voltage, 2) + " V (" +
                std::to_string(reps) + " episodes)");
        t.header({"config", "success", "avg steps", "planner eff V",
                  "energy (J)"});
        t.row({"clean " + Table::num(info->defaultControllerV, 2) + " V",
               Table::pct(clean.successRate),
               Table::num(clean.avgStepsSuccess, 0),
               Table::num(clean.avgPlannerEffV, 3),
               Table::num(clean.avgComputeJ, 2)});
        t.row({"AD+WR undervolted", Table::pct(prot.successRate),
               Table::num(prot.avgStepsSuccess, 0),
               Table::num(prot.avgPlannerEffV, 3),
               Table::num(prot.avgComputeJ, 2)});
        t.print();
        std::printf("Planner-side energy savings at iso quality: %.1f%%\n",
                    100.0 * (1.0 - prot.avgPlannerV2 / clean.avgPlannerV2));
    }
    return 0;
}
