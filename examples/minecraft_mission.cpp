/**
 * @file
 * Mission walkthrough: runs one Minecraft task end to end with a verbose
 * trace of the planner/controller interplay -- the plan the LLM-style
 * planner emits, each subtask's execution, re-planning events, and the
 * final energy accounting.
 *
 *   ./minecraft_mission [--task iron] [--voltage 0.75] [--create 1]
 */

#include <cstdio>

#include "common/cli.hpp"
#include "core/create_system.hpp"
#include "tensor/ops.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const MineTask task = mineTaskByName(cli.str("task", "iron"));
    const double voltage = cli.real("voltage", 0.75);
    const bool useCreate = cli.flag("create", true);
    const std::uint64_t seed = static_cast<std::uint64_t>(
        cli.integer("seed", 2026));

    std::printf("Mission: obtain '%s' at %.2f V with CREATE %s\n\n",
                mineTaskName(task), voltage, useCreate ? "ON" : "OFF");

    CreateSystem sys;
    CreateConfig cfg =
        useCreate
            ? CreateConfig::fullCreate(voltage,
                                       EntropyVoltagePolicy::preset('D'))
            : CreateConfig::atVoltage(voltage, voltage);

    // Show the plan the (possibly corrupted) planner produces.
    {
        ComputeContext pctx(seed);
        if (cfg.mode == InjectionMode::Voltage) {
            pctx.setVoltage(cfg.plannerVoltage);
            pctx.setVoltageMode();
        }
        pctx.anomalyDetection = cfg.anomalyDetection;
        auto& planner = sys.planner(cfg.weightRotation);
        const auto tokens =
            planner.inferPlan(static_cast<int>(task), 0, pctx);
        const auto plan = PlanVocab::mine().decode(tokens);
        std::printf("Planner decomposition (%zu subtasks):\n", plan.size());
        for (std::size_t i = 0; i < plan.size(); ++i)
            std::printf("  %2zu. %s\n", i + 1, plan[i].str().c_str());
        const auto gold = goldPlan(task);
        std::printf("Gold plan has %zu subtasks -> %s\n\n", gold.size(),
                    plan.size() == gold.size() ? "plan matches length"
                                               : "plan deviates");
    }

    const EpisodeResult r = sys.runEpisode(task, seed, cfg);
    const auto& energy = sys.energyModel();
    std::printf("Episode result:\n");
    std::printf("  success:              %s\n", r.success ? "YES" : "no");
    std::printf("  steps:                %d\n", r.steps);
    std::printf("  subtasks completed:   %d\n", r.subtasksCompleted);
    std::printf("  planner invocations:  %d (re-planning included)\n",
                r.plannerInvocations);
    std::printf("  predictor runs:       %d\n", r.predictorInvocations);
    std::printf("  bit flips injected:   %llu\n",
                static_cast<unsigned long long>(r.bitFlips));
    std::printf("  anomalies cleared:    %llu\n",
                static_cast<unsigned long long>(r.anomaliesCleared));
    std::printf("  effective voltages:   planner %.3f V, controller %.3f V\n",
                r.plannerEffV, r.controllerEffV);
    std::printf("  computational energy: %.2f J (planner %.2f + controller "
                "%.2f + predictor %.3f)\n",
                energy.episodeComputeJ(r), energy.plannerJ(r),
                energy.controllerJ(r), energy.predictorJ(r));
    return 0;
}
