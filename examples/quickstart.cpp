/**
 * @file
 * Quickstart: build the JARVIS-1 stand-in stack, run one Minecraft task
 * under three deployment points, and print what CREATE buys you.
 *
 *   ./quickstart [--task wooden] [--reps 10] [--threads N]
 *
 * Deployment points compared:
 *   1. nominal voltage (0.90 V), no errors;
 *   2. aggressive undervolting (0.75 V) with no protection;
 *   3. the same 0.75 V point with the full CREATE stack
 *      (anomaly detection + weight rotation + adaptive voltage scaling).
 */

#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/create_system.hpp"
#include "core/parallel_eval.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const MineTask task = mineTaskByName(cli.str("task", "wooden"));
    const int reps = static_cast<int>(cli.integer("reps", 10));
    const int threads = std::max(
        1, static_cast<int>(
               cli.integer("threads", ParallelEvaluator::defaultThreads())));

    std::printf("CREATE quickstart: task '%s', %d episodes per config, "
                "%d evaluation thread%s\n",
                mineTaskName(task), reps, threads, threads == 1 ? "" : "s");
    std::printf("(first run trains and caches the models; later runs "
                "load from %s)\n\n",
                ModelZoo::assetsDir().c_str());

    CreateSystem sys;
    sys.setEvalThreads(threads);

    const CreateConfig nominal = CreateConfig::clean();
    CreateConfig unprotected = CreateConfig::atVoltage(0.75, 0.75);
    CreateConfig createFull =
        CreateConfig::fullCreate(0.75, EntropyVoltagePolicy::preset('C'));

    Table t("Quickstart: nominal vs 0.75 V unprotected vs 0.75 V + CREATE");
    t.header({"config", "success", "avg steps", "energy (J)",
              "ctrl eff V", "planner eff V"});
    for (const auto& [name, cfg] :
         {std::pair<const char*, const CreateConfig*>{"nominal 0.90 V",
                                                      &nominal},
          {"0.75 V unprotected", &unprotected},
          {"0.75 V + CREATE (AD+WR+VS)", &createFull}}) {
        const TaskStats s = sys.evaluate(task, *cfg, reps);
        t.row({name, Table::pct(s.successRate),
               Table::num(s.avgStepsSuccess, 0), Table::num(s.avgComputeJ, 2),
               Table::num(s.avgControllerEffV, 3),
               Table::num(s.avgPlannerEffV, 3)});
    }
    t.print();
    std::printf("\nCREATE keeps the nominal success rate while cutting "
                "computational energy (Sec. 6.7 reports 40.6%% on average "
                "across tasks).\n");
    return 0;
}
