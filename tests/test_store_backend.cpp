/** @file Tests for the result-store backends: the binlog frame codec
 *  (CRC-framed append log, dictionary ids, bit-exact doubles), torn-tail
 *  salvage at every byte offset, corrupted-frame quarantine, the writer's
 *  external-truncation heal, json <-> binlog conversion byte-identity,
 *  per-writer shard-log merging with the lease generation rule, and
 *  format autodetection. */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/binlog.hpp"
#include "common/serialize.hpp"
#include "common/store_keys.hpp"
#include "core/store_backend.hpp"

using namespace create;

namespace {

std::string
slurp(const std::string& path)
{
    std::string out;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

void
spew(const std::string& path, const std::string& bytes)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

/** Remove a binlog store directory (its logs, quarantines, and the dir),
 *  or a bare file; ignores whatever does not exist. */
void
removeStore(const std::string& path)
{
    const std::string rm = "rm -rf '" + path + "' '" + path + ".lock'";
    ASSERT_EQ(std::system(rm.c_str()), 0);
}

/** Walk the frame stream of a complete log: the byte offset where each
 *  frame ends, tagged with whether it carries a record. Lets the
 *  truncation sweep compute the exact expected salvage for any cut. */
struct FrameEnd
{
    std::size_t end = 0;
    bool record = false;
};

std::vector<FrameEnd>
frameEnds(const std::string& bytes)
{
    std::vector<FrameEnd> out;
    std::size_t pos = binlog::kHeaderBytes;
    while (pos + 9 <= bytes.size()) {
        const auto type = static_cast<unsigned char>(bytes[pos]);
        std::uint32_t len = 0;
        std::memcpy(&len, bytes.data() + pos + 1, sizeof(len));
        pos += 9 + len;
        // Types 2..5 are the record-bearing frames (Record, Episode,
        // Lease, Meta); 1 (FpDef) and 6 (Index) are bookkeeping.
        out.push_back({pos, type >= 2 && type <= 5});
    }
    return out;
}

JsonRecord
makeRecord(const std::string& name, double salt)
{
    JsonRecord r;
    r.name = name;
    r.strings.emplace_back("tag", "payload-" + name);
    // Doubles chosen to break any text round trip that is not %.17g /
    // bit-exact: a non-terminating binary fraction, a negative zero, a
    // huge magnitude, and a subnormal.
    r.numbers.emplace_back("frac", 0.1 + salt);
    r.numbers.emplace_back("negzero", -0.0);
    r.numbers.emplace_back("huge", 1.2345678901234567e300);
    r.numbers.emplace_back("tiny", 4.9406564584124654e-324);
    return r;
}

void
expectRecordsEqual(const JsonRecord& a, const JsonRecord& b)
{
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.strings.size(), b.strings.size());
    for (std::size_t i = 0; i < a.strings.size(); ++i) {
        EXPECT_EQ(a.strings[i].first, b.strings[i].first);
        EXPECT_EQ(a.strings[i].second, b.strings[i].second);
    }
    ASSERT_EQ(a.numbers.size(), b.numbers.size());
    for (std::size_t i = 0; i < a.numbers.size(); ++i) {
        EXPECT_EQ(a.numbers[i].first, b.numbers[i].first);
        // Bit comparison: -0.0 == 0.0 under operator==, and NaN-safe.
        std::uint64_t ba = 0, bb = 0;
        std::memcpy(&ba, &a.numbers[i].second, sizeof(ba));
        std::memcpy(&bb, &b.numbers[i].second, sizeof(bb));
        EXPECT_EQ(ba, bb) << a.name << "." << a.numbers[i].first;
    }
}

} // namespace

TEST(Binlog, RecordRoundTripAllFrameKinds)
{
    // One record through each frame encoding: episode / lease / meta
    // (dictionary-id frames), a generic name, and the degenerate
    // hand-edited shape that LOOKS like an episode key but does not
    // reconstruct through the grammar (leading zeros) -- it must travel
    // as a generic frame and come back byte-exact.
    const std::string path = "/tmp/create_test_binlog_roundtrip.crbl";
    std::remove(path.c_str());
    const std::string fp = "v2|jarvis-1|t0|cfgdeadbeef|s7";
    std::vector<JsonRecord> in;
    in.push_back(makeRecord(sweepEpisodeKey(fp, 0), 0.0));
    in.push_back(makeRecord(sweepEpisodeKey(fp, 123), 1.0));
    in.push_back(makeRecord(sweepLeaseKey(fp), 2.0));
    in.push_back(makeRecord(fp, 3.0));
    in.push_back(makeRecord("some/opaque name with spaces", 4.0));
    in.push_back(makeRecord(fp + "#007", 5.0));

    binlog::LogWriter w;
    std::string error;
    ASSERT_TRUE(w.open(path, &error)) << error;
    for (const JsonRecord& r : in)
        w.append(r);
    ASSERT_TRUE(w.commit(&error)) << error;
    w.close();

    std::vector<JsonRecord> out;
    binlog::LogSalvage sal;
    ASSERT_TRUE(binlog::readLogRecords(path, out, &sal));
    EXPECT_FALSE(sal.salvaged);
    EXPECT_EQ(sal.records, in.size());
    EXPECT_EQ(sal.goodBytes, sal.totalBytes);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        expectRecordsEqual(in[i], out[i]);
    std::remove(path.c_str());
}

TEST(Binlog, SalvageRecoversPrefixAtEveryTruncationPoint)
{
    // A log torn at ANY byte offset must salvage exactly the records
    // whose frames landed completely before the tear -- the binary
    // counterpart of the JSON store's truncation sweep.
    const std::string path = "/tmp/create_test_binlog_trunc.crbl";
    std::remove(path.c_str());
    const std::string fp = "v2|jarvis-1|t1|cfg|s0";
    {
        binlog::LogWriter w;
        std::string error;
        ASSERT_TRUE(w.open(path, &error)) << error;
        for (int i = 0; i < 4; ++i)
            w.append(makeRecord(sweepEpisodeKey(fp, i), 0.5 * i));
        ASSERT_TRUE(w.commit(&error)) << error;
    }
    const std::string full = slurp(path);
    ASSERT_GT(full.size(), binlog::kHeaderBytes);
    const std::vector<FrameEnd> frames = frameEnds(full);
    ASSERT_EQ(frames.back().end, full.size());

    for (std::size_t cut = 0; cut <= full.size(); ++cut) {
        SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                     std::to_string(full.size()) + " bytes");
        spew(path, full.substr(0, cut));
        std::vector<JsonRecord> out;
        binlog::LogSalvage sal;
        if (cut < binlog::kHeaderBytes) {
            // Not even the magic landed: unreadable, not salvageable.
            EXPECT_FALSE(binlog::readLogRecords(path, out, &sal));
            continue;
        }
        std::size_t expectRecords = 0, expectGood = binlog::kHeaderBytes;
        for (const FrameEnd& fe : frames)
            if (fe.end <= cut) {
                expectGood = fe.end;
                if (fe.record)
                    ++expectRecords;
            }
        ASSERT_TRUE(binlog::readLogRecords(path, out, &sal));
        EXPECT_EQ(out.size(), expectRecords);
        EXPECT_EQ(sal.goodBytes, expectGood);
        EXPECT_EQ(sal.salvaged, cut != expectGood);
    }
    std::remove(path.c_str());
}

TEST(Binlog, CorruptedFrameIsDetectedAndTailQuarantined)
{
    // A bit flip in the middle of a frame (not a truncation) must fail
    // that frame's CRC; the backend keeps the prefix, quarantines the
    // bad suffix by COPY (a reader must never truncate a peer's live
    // log), and reports salvage.
    const std::string dir = "/tmp/create_test_binlog_corrupt";
    removeStore(dir);
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    const std::string log = dir + "/log-w1.crbl";
    const std::string fp = "v2|openvla+octo|t2|cfg|s0";
    {
        binlog::LogWriter w;
        std::string error;
        ASSERT_TRUE(w.open(log, &error)) << error;
        for (int i = 0; i < 4; ++i)
            w.append(makeRecord(sweepEpisodeKey(fp, i), 0.25 * i));
        ASSERT_TRUE(w.commit(&error)) << error;
    }
    std::string bytes = slurp(log);
    const std::vector<FrameEnd> frames = frameEnds(bytes);
    std::size_t recordFramesSeen = 0, corruptAt = 0, prefixRecords = 0;
    for (const FrameEnd& fe : frames) {
        if (fe.record && ++recordFramesSeen == 3) {
            corruptAt = fe.end - 3; // inside the third record's payload
            break;
        }
        if (fe.record)
            ++prefixRecords;
    }
    ASSERT_GT(corruptAt, 0u);
    bytes[corruptAt] = static_cast<char>(bytes[corruptAt] ^ 0x40);
    spew(log, bytes);

    std::vector<JsonRecord> out;
    StoreLoadInfo info;
    const auto be = openStoreBackend(dir, StoreFormat::Json, "reader");
    ASSERT_EQ(be->format(), StoreFormat::Binlog);
    ASSERT_TRUE(be->load(out, &info, /*quarantineBadTails=*/true));
    EXPECT_TRUE(info.salvaged);
    EXPECT_EQ(out.size(), prefixRecords);
    ASSERT_EQ(info.quarantined.size(), 1u);
    // Quarantine preserved exactly the bytes past the last good frame,
    // and the log itself kept its full (corrupt) length: repair belongs
    // to the owning writer, not to readers.
    const std::string q = slurp(info.quarantined.front());
    EXPECT_EQ(q, bytes.substr(static_cast<std::size_t>(info.goodBytes)));
    EXPECT_EQ(slurp(log).size(), bytes.size());
    removeStore(dir);
}

TEST(Binlog, WriterHealsExternallyTruncatedLog)
{
    // The chaos-tear shape: after a successful flush the log loses a
    // suffix underneath the writer. checkTail must notice (size !=
    // committed offset), re-salvage, truncate to the frame boundary, and
    // ask the caller to re-publish its full view; after the heal flush
    // the store reads back complete.
    const std::string dir = "/tmp/create_test_binlog_heal";
    removeStore(dir);
    const std::string fp = "v2|jarvis-1|t3|cfg|s0";
    std::map<std::string, JsonRecord> fullView;
    std::vector<JsonRecord> batch;
    for (int i = 0; i < 6; ++i) {
        JsonRecord r = makeRecord(sweepEpisodeKey(fp, i), 1.0 * i);
        fullView[r.name] = r;
        batch.push_back(std::move(r));
    }
    const auto be = openStoreBackend(dir, StoreFormat::Binlog, "w1");
    std::string error;
    ASSERT_TRUE(be->flush(fullView, batch, &error)) << error;
    const std::string log = be->lastDataFile();
    ASSERT_FALSE(log.empty());

    // Tear: cut the log mid-frame, behind the writer's back.
    const std::string bytes = slurp(log);
    spew(log, bytes.substr(0, bytes.size() - 11));

    // Next flush (empty batch -- mirroring a lease renewal tick) heals.
    ASSERT_TRUE(be->flush(fullView, {}, &error)) << error;
    std::vector<JsonRecord> out;
    StoreLoadInfo info;
    ASSERT_TRUE(be->load(out, &info, /*quarantineBadTails=*/false));
    EXPECT_EQ(out.size(), fullView.size());
    for (const JsonRecord& r : out)
        expectRecordsEqual(fullView.at(r.name), r);
    removeStore(dir);
}

TEST(StoreBackend, JsonToBinlogToJsonIsByteIdentical)
{
    // The conversion contract behind `sweep-store convert`: doubles
    // travel as IEEE bits through the binlog and as %.17g through the
    // JSON writer, and both sides write records sorted by name, so a
    // json -> binlog -> json trip reproduces the original file byte for
    // byte.
    const std::string json1 = "/tmp/create_test_conv_a.json";
    const std::string blog = "/tmp/create_test_conv.blog";
    const std::string json2 = "/tmp/create_test_conv_b.json";
    removeStore(json1);
    removeStore(blog);
    removeStore(json2);
    const std::string fp = "v2|jarvis-1|t4|cfg|s0";
    std::map<std::string, JsonRecord> full;
    JsonRecord schema;
    schema.name = kSweepStoreSchemaRecord;
    schema.numbers.emplace_back("schema", kSweepStoreSchema);
    full[schema.name] = schema;
    full[fp] = makeRecord(fp, 9.0);
    for (int i = 0; i < 5; ++i) {
        JsonRecord r = makeRecord(sweepEpisodeKey(fp, i), 0.7 * i);
        full[r.name] = r;
    }
    ASSERT_TRUE(writeJsonRecords(json1, full));

    const auto convert = [](const std::string& from, const std::string& to,
                            StoreFormat toFmt) {
        std::vector<JsonRecord> records;
        StoreLoadInfo info;
        const auto src = openStoreBackend(from, StoreFormat::Json, "t");
        ASSERT_TRUE(src->load(records, &info, false));
        EXPECT_FALSE(info.salvaged);
        std::map<std::string, JsonRecord> view;
        std::vector<JsonRecord> batch;
        for (JsonRecord& r : records)
            view[r.name] = std::move(r);
        for (const auto& [name, rec] : view)
            batch.push_back(rec);
        const auto dst = openStoreBackend(to, toFmt, "t");
        ASSERT_EQ(dst->format(), toFmt);
        std::string error;
        ASSERT_TRUE(dst->flush(view, batch, &error)) << error;
    };
    convert(json1, blog, StoreFormat::Binlog);
    convert(blog, json2, StoreFormat::Json);
    EXPECT_EQ(slurp(json1), slurp(json2));
    EXPECT_NE(slurp(json1), "");
    removeStore(json1);
    removeStore(blog);
    removeStore(json2);
}

TEST(StoreBackend, ShardLogsMergeWithLeaseGenerationRule)
{
    // Two workers sharing one binlog store append to their own logs.
    // The merged view must fold duplicate episode keys
    // later-log-wins... except leases, where the generation rule decides
    // regardless of which log sorts later -- a recorded steal must never
    // be resurrected by the victim's file position.
    const std::string dir = "/tmp/create_test_binlog_shards";
    removeStore(dir);
    const std::string fp = "v2|jarvis-1|t5|cfg|s0";

    const auto makeLease = [&](const std::string& owner, double gen) {
        JsonRecord lr;
        lr.name = sweepLeaseKey(fp);
        lr.strings.emplace_back("owner", owner);
        lr.numbers.emplace_back("gen", gen);
        lr.numbers.emplace_back("renewedAt", 1000.0 + gen);
        lr.numbers.emplace_back("done", 0.0);
        return lr;
    };
    // Worker "a" sorts lexicographically FIRST but holds the HIGHER
    // lease generation (it stole from "b").
    {
        const auto a = openStoreBackend(dir, StoreFormat::Binlog, "a");
        std::map<std::string, JsonRecord> view;
        std::vector<JsonRecord> batch;
        batch.push_back(makeRecord(sweepEpisodeKey(fp, 0), 1.0));
        batch.push_back(makeLease("a", 2.0));
        for (const JsonRecord& r : batch)
            view[r.name] = r;
        std::string error;
        ASSERT_TRUE(a->flush(view, batch, &error)) << error;
    }
    {
        const auto b = openStoreBackend(dir, StoreFormat::Binlog, "b");
        std::map<std::string, JsonRecord> view;
        std::vector<JsonRecord> batch;
        JsonRecord dup = makeRecord(sweepEpisodeKey(fp, 0), 2.0);
        dup.strings.emplace_back("by", "b");
        batch.push_back(dup);
        batch.push_back(makeRecord(sweepEpisodeKey(fp, 1), 3.0));
        batch.push_back(makeLease("b", 1.0));
        for (const JsonRecord& r : batch)
            view[r.name] = r;
        std::string error;
        ASSERT_TRUE(b->flush(view, batch, &error)) << error;
    }
    const auto reader = openStoreBackend(dir, StoreFormat::Json, "r");
    std::vector<JsonRecord> out;
    StoreLoadInfo info;
    ASSERT_TRUE(reader->load(out, &info, false));
    EXPECT_EQ(info.files, 2u);
    ASSERT_EQ(out.size(), 3u); // ep#0 (deduped), ep#1, one lease
    for (const JsonRecord& r : out) {
        if (sweepLeaseFingerprint(r.name)) {
            EXPECT_EQ(r.text("owner"), "a"); // higher gen, earlier file
            EXPECT_EQ(r.number("gen"), 2.0);
        } else if (r.name == sweepEpisodeKey(fp, 0)) {
            EXPECT_EQ(r.text("by"), "b"); // data: later log wins
        }
    }
    removeStore(dir);
}

TEST(StoreBackend, DetectsFormatsAndHonorsExistingStore)
{
    const std::string jsonPath = "/tmp/create_test_detect.json";
    const std::string dirPath = "/tmp/create_test_detect.dir";
    const std::string filePath = "/tmp/create_test_detect.crbl";
    removeStore(jsonPath);
    removeStore(dirPath);
    removeStore(filePath);

    StoreFormat fmt = StoreFormat::Json;
    EXPECT_FALSE(detectStoreFormat(jsonPath, fmt)); // nothing there

    ASSERT_TRUE(writeJsonRecords(jsonPath,
                                 std::vector<JsonRecord>{makeRecord("x", 0)}));
    ASSERT_TRUE(detectStoreFormat(jsonPath, fmt));
    EXPECT_EQ(fmt, StoreFormat::Json);

    ASSERT_EQ(::mkdir(dirPath.c_str(), 0777), 0);
    ASSERT_TRUE(detectStoreFormat(dirPath, fmt));
    EXPECT_EQ(fmt, StoreFormat::Binlog);

    {
        binlog::LogWriter w;
        std::string error;
        ASSERT_TRUE(w.open(filePath, &error)) << error;
        w.append(makeRecord("y", 1));
        ASSERT_TRUE(w.commit(&error)) << error;
    }
    ASSERT_TRUE(detectStoreFormat(filePath, fmt));
    EXPECT_EQ(fmt, StoreFormat::Binlog);

    // An existing store's format wins over the requested flag -- a
    // binlog request against a json store opens the json backend (and
    // says so), so mixed fleets cannot split-brain one store.
    std::string note;
    const auto be =
        openStoreBackend(jsonPath, StoreFormat::Binlog, "w", &note);
    EXPECT_EQ(be->format(), StoreFormat::Json);
    EXPECT_FALSE(note.empty());
    // And a bare binlog FILE opens in single-file mode: appendable.
    const auto single = openStoreBackend(filePath, StoreFormat::Json, "w");
    EXPECT_EQ(single->format(), StoreFormat::Binlog);
    std::vector<JsonRecord> out;
    ASSERT_TRUE(single->load(out, nullptr, false));
    EXPECT_EQ(out.size(), 1u);
    removeStore(jsonPath);
    removeStore(dirPath);
    removeStore(filePath);
}
