/** @file Unit + property tests for the tensor library and kernels. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

using namespace create;

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeAccessors)
{
    Tensor t({4, 5, 6});
    EXPECT_EQ(t.rank(), 3u);
    EXPECT_EQ(t.dim(0), 4);
    EXPECT_EQ(t.dim(1), 5);
    EXPECT_EQ(t.dim(2), 6);
}

TEST(Tensor, At2DRowMajor)
{
    Tensor t({2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t[5], 7.0f);
}

TEST(Tensor, At3DLayout)
{
    Tensor t({2, 3, 4});
    t.at(1, 2, 3) = 9.0f;
    EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3});
    t.at(0, 1) = 5.0f;
    t.reshape({3, 2});
    EXPECT_EQ(t.at(0, 1), 5.0f);
    EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, ConstructFromDataValidatesSize)
{
    EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, Stats)
{
    Tensor t({4}, {1.0f, -3.0f, 2.0f, 0.0f});
    EXPECT_FLOAT_EQ(t.absMax(), 3.0f);
    EXPECT_FLOAT_EQ(t.mean(), 0.0f);
    EXPECT_NEAR(t.stddev(), std::sqrt(3.5f), 1e-5);
}

TEST(Ops, MatmulKnownValues)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    Tensor b({2, 2}, {5, 6, 7, 8});
    const Tensor c = ops::matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, MatmulShapeValidation)
{
    Tensor a({2, 3}), b({2, 3});
    EXPECT_THROW(ops::matmul(a, b), std::invalid_argument);
}

TEST(Ops, TransposeInvolution)
{
    Rng rng(1);
    Tensor a({3, 5});
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a[i] = static_cast<float>(rng.normal());
    EXPECT_EQ(ops::maxAbsDiff(ops::transpose(ops::transpose(a)), a), 0.0f);
}

TEST(Ops, AddAndMulElementwise)
{
    Tensor a({2}, {1, 2}), b({2}, {3, 4});
    EXPECT_FLOAT_EQ(ops::add(a, b)[1], 6.0f);
    EXPECT_FLOAT_EQ(ops::mul(a, b)[1], 8.0f);
}

TEST(Ops, AddRowBroadcast)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    Tensor bias({2}, {10, 20});
    const Tensor c = ops::addRowBroadcast(a, bias);
    EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
}

TEST(Ops, ReluSilu)
{
    Tensor a({3}, {-1.0f, 0.0f, 2.0f});
    const Tensor r = ops::relu(a);
    EXPECT_FLOAT_EQ(r[0], 0.0f);
    EXPECT_FLOAT_EQ(r[2], 2.0f);
    const Tensor s = ops::silu(a);
    EXPECT_NEAR(s[0], -1.0f / (1.0f + std::exp(1.0f)), 1e-6);
    EXPECT_FLOAT_EQ(s[1], 0.0f);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Tensor a({2, 4}, {1, 2, 3, 4, -1, 0, 1, 100});
    const Tensor s = ops::softmaxRows(a);
    for (int i = 0; i < 2; ++i) {
        float sum = 0.0f;
        for (int j = 0; j < 4; ++j)
            sum += s.at(i, j);
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
    EXPECT_GT(s.at(1, 3), 0.99f); // large logit dominates, no overflow
}

TEST(Ops, EntropyBounds)
{
    const std::vector<float> uniform(8, 0.125f);
    EXPECT_NEAR(ops::entropy(uniform), std::log(8.0), 1e-6);
    const std::vector<float> peaked = {1.0f, 0.0f, 0.0f};
    EXPECT_NEAR(ops::entropy(peaked), 0.0, 1e-9);
}

TEST(Ops, LogSoftmaxMatchesSoftmax)
{
    const std::vector<float> logits = {0.5f, -1.0f, 2.0f};
    const auto p = ops::softmax(logits);
    const auto lp = ops::logSoftmax(logits);
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(std::exp(lp[i]), p[i], 1e-5);
}

TEST(Ops, ConvOutSize)
{
    EXPECT_EQ(ops::convOutSize(32, 3, 1, 1), 32);
    EXPECT_EQ(ops::convOutSize(32, 3, 2, 1), 16);
    EXPECT_EQ(ops::convOutSize(64, 3, 3, 1), 22);
}

TEST(Ops, Im2ColIdentityKernel)
{
    // 1x1 kernel, stride 1: im2col is just a reshaping of the image.
    Tensor img({2, 3, 3});
    for (std::int64_t i = 0; i < img.numel(); ++i)
        img[i] = static_cast<float>(i);
    const Tensor cols = ops::im2col(img, 1, 1, 0);
    EXPECT_EQ(cols.dim(0), 9);
    EXPECT_EQ(cols.dim(1), 2);
    EXPECT_FLOAT_EQ(cols.at(4, 0), img.at(0, 1, 1));
    EXPECT_FLOAT_EQ(cols.at(4, 1), img.at(1, 1, 1));
}

/** Adjoint property: <im2col(x), y> == <x, col2im(y)> for random x, y. */
TEST(Ops, Col2ImIsAdjointOfIm2Col)
{
    Rng rng(5);
    const int c = 3, h = 7, w = 6, k = 3, stride = 2, pad = 1;
    Tensor x({c, h, w});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.normal());
    const Tensor cols = ops::im2col(x, k, stride, pad);
    Tensor y(cols.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i)
        y[i] = static_cast<float>(rng.normal());
    double lhs = 0.0;
    for (std::int64_t i = 0; i < cols.numel(); ++i)
        lhs += static_cast<double>(cols[i]) * y[i];
    Tensor back({c, h, w});
    ops::col2imAccum(y, c, h, w, k, stride, pad, back);
    double rhs = 0.0;
    for (std::int64_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x[i]) * back[i];
    EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)));
}

/** Property: Hadamard matrices are orthonormal for all power-of-2 sizes. */
class HadamardOrthonormal : public ::testing::TestWithParam<int>
{
};

TEST_P(HadamardOrthonormal, HTimesHTransposeIsIdentity)
{
    const int n = GetParam();
    const Tensor h = ops::hadamard(n);
    const Tensor prod = ops::matmul(h, ops::transpose(h));
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            EXPECT_NEAR(prod.at(i, j), i == j ? 1.0f : 0.0f, 1e-5);
}

TEST_P(HadamardOrthonormal, PreservesL2Norm)
{
    const int n = GetParam();
    const Tensor h = ops::hadamard(n);
    Rng rng(n);
    Tensor x({1, n});
    for (int i = 0; i < n; ++i)
        x[i] = static_cast<float>(rng.normal());
    const Tensor y = ops::matmul(x, h);
    double nx = 0.0, ny = 0.0;
    for (int i = 0; i < n; ++i) {
        nx += static_cast<double>(x[i]) * x[i];
        ny += static_cast<double>(y[i]) * y[i];
    }
    EXPECT_NEAR(nx, ny, 1e-3 * nx);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, HadamardOrthonormal,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(Ops, HadamardRejectsNonPowerOfTwo)
{
    EXPECT_THROW(ops::hadamard(12), std::invalid_argument);
    EXPECT_THROW(ops::hadamard(0), std::invalid_argument);
}

/** Property: Hadamard rotation disperses a spike across all dimensions. */
TEST(Ops, HadamardDispersesOutliers)
{
    const int n = 64;
    const Tensor h = ops::hadamard(n);
    Tensor x({1, n});
    x[5] = 100.0f; // one outlier channel
    const Tensor y = ops::matmul(x, h);
    // Every output coordinate has magnitude 100/sqrt(64) = 12.5.
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(std::fabs(y[i]), 12.5f, 1e-3);
    EXPECT_LT(y.absMax(), x.absMax() / 4.0f);
}
