/** @file Tests for MineWorld: generation, mechanics, plans, expert. */

#include <gtest/gtest.h>

#include <map>

#include "env/mine_expert.hpp"
#include "env/mineworld.hpp"

using namespace create;

namespace {

MineWorld
makeWorld(MineTask task, std::uint64_t seed = 7)
{
    return MineWorld({40, 40, task, seed});
}

/** Drive the world with the privileged expert through one subtask. */
bool
expertCompleteSubtask(MineWorld& w, const Subtask& st, Rng& rng,
                      int budget = 400)
{
    w.setActiveSubtask(st);
    for (int i = 0; i < budget && !w.subtaskComplete(); ++i)
        w.step(MineExpert::act(w, rng));
    return w.subtaskComplete();
}

} // namespace

TEST(MineWorld, DeterministicGeneration)
{
    MineWorld a = makeWorld(MineTask::Stone, 11);
    MineWorld b = makeWorld(MineTask::Stone, 11);
    for (int y = 0; y < 40; ++y)
        for (int x = 0; x < 40; ++x)
            ASSERT_EQ(a.blockAt(x, y), b.blockAt(x, y));
    EXPECT_EQ(a.mobs().size(), b.mobs().size());
}

TEST(MineWorld, DifferentSeedsDiffer)
{
    MineWorld a = makeWorld(MineTask::Stone, 1);
    MineWorld b = makeWorld(MineTask::Stone, 2);
    int diff = 0;
    for (int y = 0; y < 40; ++y)
        for (int x = 0; x < 40; ++x)
            diff += a.blockAt(x, y) != b.blockAt(x, y) ? 1 : 0;
    EXPECT_GT(diff, 10);
}

TEST(MineWorld, SpawnAreaClear)
{
    MineWorld w = makeWorld(MineTask::Log);
    for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
            EXPECT_EQ(w.blockAt(w.agentX() + dx, w.agentY() + dy), Block::Air);
}

TEST(MineWorld, BorderIsImpassable)
{
    MineWorld w = makeWorld(MineTask::Log);
    EXPECT_EQ(w.blockAt(-1, 0), Block::Water);
    EXPECT_FALSE(MineWorld::passable(w.blockAt(-1, 0)));
}

TEST(MineWorld, MoveIntoBlockedCellOnlyTurns)
{
    MineWorld w = makeWorld(MineTask::Log, 3);
    // Surround agent check: walk west until blocked.
    int lastX = w.agentX();
    for (int i = 0; i < 40; ++i) {
        w.step(Action::MoveW);
        if (w.agentX() == lastX)
            break;
        lastX = w.agentX();
    }
    EXPECT_EQ(w.facingDx(), -1); // facing west regardless of the block
}

TEST(MineWorld, MiningRequiresConsecutiveHits)
{
    MineWorld w = makeWorld(MineTask::Log, 5);
    Rng rng(5);
    w.setActiveSubtask({SubtaskType::MineLog, 1});
    // Walk the expert until it faces a tree, then count hits.
    for (int i = 0; i < 300; ++i) {
        const int fx = w.agentX() + w.facingDx();
        const int fy = w.agentY() + w.facingDy();
        if (w.blockAt(fx, fy) == Block::Tree)
            break;
        w.step(MineExpert::act(w, rng));
    }
    const int fx = w.agentX() + w.facingDx();
    const int fy = w.agentY() + w.facingDy();
    ASSERT_EQ(w.blockAt(fx, fy), Block::Tree);
    w.step(Action::Attack);
    EXPECT_EQ(w.miningProgress(), 1);
    w.step(Action::Attack);
    EXPECT_EQ(w.miningProgress(), 2);
    // Interruption resets the chain (the Fig. 7 critical-step mechanic).
    w.step(Action::Noop);
    EXPECT_EQ(w.miningProgress(), 0);
    w.step(Action::Attack);
    w.step(Action::Attack);
    w.step(Action::Attack);
    EXPECT_EQ(w.itemCount(Item::Log), 1);
    EXPECT_EQ(w.blockAt(fx, fy), Block::Air);
}

TEST(MineWorld, StoneNeedsPickaxe)
{
    MineWorld w = makeWorld(MineTask::Stone, 6);
    EXPECT_FALSE(w.canMine(Block::Stone));
    w.grantItem(Item::WoodenPickaxe, 1);
    EXPECT_TRUE(w.canMine(Block::Stone));
    EXPECT_FALSE(w.canMine(Block::IronOre));
    w.grantItem(Item::StonePickaxe, 1);
    EXPECT_TRUE(w.canMine(Block::IronOre));
}

TEST(MineWorld, CraftRecipesConsumeAndProduce)
{
    MineWorld w = makeWorld(MineTask::Wooden, 7);
    w.grantItem(Item::Log, 1);
    w.setActiveSubtask({SubtaskType::CraftPlanks, 4});
    w.step(Action::Craft);
    EXPECT_EQ(w.itemCount(Item::Planks), 4);
    EXPECT_EQ(w.itemCount(Item::Log), 0);
    EXPECT_TRUE(w.subtaskComplete());
}

TEST(MineWorld, CraftFailsWithoutIngredients)
{
    MineWorld w = makeWorld(MineTask::Wooden, 8);
    w.setActiveSubtask({SubtaskType::CraftWoodenPickaxe, 1});
    w.step(Action::Craft);
    EXPECT_EQ(w.itemCount(Item::WoodenPickaxe), 0);
}

TEST(MineWorld, CraftOnlyForActiveSubtask)
{
    MineWorld w = makeWorld(MineTask::Wooden, 9);
    w.grantItem(Item::Log, 2);
    w.setActiveSubtask({SubtaskType::MineLog, 1}); // gather subtask
    w.step(Action::Craft);
    EXPECT_EQ(w.itemCount(Item::Planks), 0);
}

TEST(MineWorld, SmeltNeedsFurnaceAndFuel)
{
    MineWorld w = makeWorld(MineTask::Iron, 10);
    w.setActiveSubtask({SubtaskType::SmeltIron, 1});
    w.grantItem(Item::IronOre, 1);
    w.step(Action::Smelt); // no furnace
    EXPECT_EQ(w.itemCount(Item::IronIngot), 0);
    w.grantItem(Item::Furnace, 1);
    w.step(Action::Smelt); // no fuel
    EXPECT_EQ(w.itemCount(Item::IronIngot), 0);
    EXPECT_EQ(w.itemCount(Item::IronOre), 1); // material not lost
    w.grantItem(Item::Coal, 1);
    w.step(Action::Smelt);
    EXPECT_EQ(w.itemCount(Item::IronIngot), 1);
    EXPECT_EQ(w.itemCount(Item::Coal), 0);
}

TEST(MineWorld, CharcoalNeedsTwoLogs)
{
    MineWorld w = makeWorld(MineTask::Charcoal, 11);
    w.setActiveSubtask({SubtaskType::SmeltCharcoal, 1});
    w.grantItem(Item::Furnace, 1);
    w.grantItem(Item::Log, 1);
    w.step(Action::Smelt);
    EXPECT_EQ(w.itemCount(Item::Charcoal), 0); // 1 log is not enough
    w.grantItem(Item::Log, 1);
    w.step(Action::Smelt);
    EXPECT_EQ(w.itemCount(Item::Charcoal), 1);
    EXPECT_EQ(w.itemCount(Item::Log), 0); // material + fuel consumed
}

TEST(MineWorld, ShearingHasCooldown)
{
    MineWorld w = makeWorld(MineTask::Wool, 12);
    w.setActiveSubtask({SubtaskType::ShearWool, 5});
    Rng rng(12);
    // Drive with expert until first wool arrives.
    for (int i = 0; i < 600 && w.itemCount(Item::Wool) == 0; ++i)
        w.step(MineExpert::act(w, rng));
    EXPECT_GE(w.itemCount(Item::Wool), 1);
}

TEST(MineWorld, ObservationDimensionsStable)
{
    MineWorld w = makeWorld(MineTask::Stone, 13);
    w.setActiveSubtask({SubtaskType::MineLog, 2});
    const MineObs obs = w.observe();
    EXPECT_EQ(static_cast<int>(obs.spatial.size()), MineObs::spatialDim());
    EXPECT_EQ(static_cast<int>(obs.state.size()), MineObs::stateDim());
}

TEST(MineWorld, RenderImageShapeAndRange)
{
    MineWorld w = makeWorld(MineTask::Stone, 14);
    const Tensor img = w.renderImage(24);
    EXPECT_EQ(img.dim(0), 3);
    EXPECT_EQ(img.dim(1), 24);
    EXPECT_EQ(img.dim(2), 24);
    for (std::int64_t i = 0; i < img.numel(); ++i) {
        EXPECT_GE(img[i], 0.0f);
        EXPECT_LE(img[i], 1.0f);
    }
}

TEST(MineWorld, SubtaskCompletionUsesBaseline)
{
    MineWorld w = makeWorld(MineTask::Log, 15);
    w.grantItem(Item::Log, 5);
    w.setActiveSubtask({SubtaskType::MineLog, 2});
    EXPECT_FALSE(w.subtaskComplete()); // pre-existing logs don't count
    w.grantItem(Item::Log, 2);
    EXPECT_TRUE(w.subtaskComplete());
}

TEST(GoldPlans, InventoryFeasibility)
{
    // Property: simulating each gold plan on a pure inventory level (all
    // gathers succeed) must satisfy every craft/smelt recipe on the way
    // and end with the task goal.
    for (int t = 0; t < kNumMineTasks; ++t) {
        const auto task = static_cast<MineTask>(t);
        MineWorld w = makeWorld(task, 100 + static_cast<std::uint64_t>(t));
        for (const auto& st : goldPlan(task)) {
            w.setActiveSubtask(st);
            if (st.isCraft() || st.isSmelt()) {
                int guard = 0;
                while (!w.subtaskComplete() && guard++ < 10)
                    w.step(st.isCraft() ? Action::Craft : Action::Smelt);
            } else {
                w.grantItem(st.produces(), st.count);
            }
            ASSERT_TRUE(w.subtaskComplete())
                << mineTaskName(task) << " stuck at " << st.str();
        }
        EXPECT_TRUE(w.taskComplete()) << mineTaskName(task);
    }
}

TEST(GoldPlans, TokenVocabularyRoundTrips)
{
    // Implicitly also checked by the planner corpus; plans are non-empty
    // and within the planner's maxPlanLen.
    for (int t = 0; t < kNumMineTasks; ++t) {
        const auto plan = goldPlan(static_cast<MineTask>(t));
        EXPECT_FALSE(plan.empty());
        EXPECT_LE(plan.size(), 12u);
    }
}

/** Property: the privileged expert completes every task end to end. */
class ExpertSolvesTask : public ::testing::TestWithParam<int>
{
};

TEST_P(ExpertSolvesTask, FullGoldPlan)
{
    const auto task = static_cast<MineTask>(GetParam());
    int successes = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        MineWorld w = makeWorld(task, seed * 997);
        Rng rng(seed);
        bool ok = true;
        for (const auto& st : goldPlan(task)) {
            if (!expertCompleteSubtask(w, st, rng)) {
                ok = false;
                break;
            }
        }
        if (ok && w.taskComplete())
            ++successes;
    }
    EXPECT_GE(successes, 2) << mineTaskName(task);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, ExpertSolvesTask,
                         ::testing::Range(0, kNumMineTasks),
                         [](const auto& info) {
                             return mineTaskName(
                                 static_cast<MineTask>(info.param));
                         });

TEST(MineTaskNames, RoundTrip)
{
    for (int t = 0; t < kNumMineTasks; ++t) {
        const auto task = static_cast<MineTask>(t);
        EXPECT_EQ(mineTaskByName(mineTaskName(task)), task);
    }
    EXPECT_THROW(mineTaskByName("no_such_task"), std::invalid_argument);
}
