/** @file Tests for the socket campaign coordinator and its wire codec:
 *  incremental StreamDecoder decode under adversarial chunking (1-byte
 *  drips, random chunk sizes, partial trailing frames), corruption and
 *  foreign-magic failure modes, the coord| control-record grammar, and
 *  an in-process end-to-end campaign -- coordinator + two concurrent
 *  socket workers + one deserting client -- certified bit-identical to
 *  a serial run, with the deserter's range re-dispatched. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/binlog.hpp"
#include "common/serialize.hpp"
#include "common/store_keys.hpp"
#include "core/coordinator.hpp"
#include "core/create_system.hpp"
#include "core/manip_system.hpp"
#include "core/store_diff.hpp"
#include "core/store_stats.hpp"
#include "core/sweep.hpp"
#include "env/manipworld.hpp"
#include "test_util.hpp"

using namespace create;
using testutil::expectIdentical;

namespace {

/** Remove a store of either format (json file or binlog dir) + sidecar. */
void
removeStoreAnyFormat(const std::string& path)
{
    const std::string rm = "rm -rf '" + path + "' '" + path + ".lock'";
    ASSERT_EQ(std::system(rm.c_str()), 0);
}

JsonRecord
makeRecord(const std::string& name, double salt)
{
    JsonRecord r;
    r.name = name;
    r.strings.emplace_back("tag", "payload-" + name);
    r.numbers.emplace_back("frac", 0.1 + salt);
    r.numbers.emplace_back("negzero", -0.0);
    r.numbers.emplace_back("huge", 1.2345678901234567e300);
    return r;
}

void
expectRecordsEqual(const JsonRecord& a, const JsonRecord& b)
{
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.strings.size(), b.strings.size());
    for (std::size_t i = 0; i < a.strings.size(); ++i) {
        EXPECT_EQ(a.strings[i].first, b.strings[i].first);
        EXPECT_EQ(a.strings[i].second, b.strings[i].second);
    }
    ASSERT_EQ(a.numbers.size(), b.numbers.size());
    for (std::size_t i = 0; i < a.numbers.size(); ++i) {
        EXPECT_EQ(a.numbers[i].first, b.numbers[i].first);
        std::uint64_t ba = 0, bb = 0;
        std::memcpy(&ba, &a.numbers[i].second, sizeof(ba));
        std::memcpy(&bb, &b.numbers[i].second, sizeof(bb));
        EXPECT_EQ(ba, bb) << a.name << "." << a.numbers[i].first;
    }
}

/** Encode header + `n` mixed-key records; returns the byte stream and
 *  the records (enough to cross at least one periodic Index frame). */
std::string
encodeStream(int n, std::vector<JsonRecord>& records)
{
    records.clear();
    std::string stream;
    binlog::FrameEncoder::encodeHeader(stream);
    binlog::FrameEncoder enc;
    const std::string fp = "v2|jarvis-1|t0|cfgfeedface|s0";
    for (int i = 0; i < n; ++i) {
        JsonRecord r = (i % 5 == 4)
                           ? makeRecord("opaque-" + std::to_string(i),
                                        0.25 * i)
                           : makeRecord(sweepEpisodeKey(fp, i), 0.5 * i);
        enc.encodeRecord(r, stream);
        records.push_back(std::move(r));
    }
    return stream;
}

/** Byte offset where each frame of a complete stream ends. */
std::vector<std::size_t>
frameEnds(const std::string& bytes)
{
    std::vector<std::size_t> out;
    std::size_t pos = binlog::kHeaderBytes;
    while (pos + 9 <= bytes.size()) {
        std::uint32_t len = 0;
        std::memcpy(&len, bytes.data() + pos + 1, sizeof(len));
        pos += 9 + len;
        out.push_back(pos);
    }
    return out;
}

/** A small mixed-platform campaign (the test_sweep matrix). */
std::vector<SweepCell>
campaignCells(int reps)
{
    CreateConfig mineInj = CreateConfig::uniform(5e-4);
    mineInj.anomalyDetection = true;
    CreateConfig manipAdwr = CreateConfig::atVoltage(0.72, 0.90);
    manipAdwr.anomalyDetection = true;
    manipAdwr.weightRotation = true;
    return {
        {"jarvis-1", static_cast<int>(MineTask::Wooden), mineInj, reps},
        {"jarvis-1", static_cast<int>(MineTask::Stone),
         CreateConfig::clean(), reps},
        {"openvla+octo", static_cast<int>(ManipTask::Wine), manipAdwr,
         reps},
    };
}

} // namespace

TEST(CoordWire, ControlRecordGrammar)
{
    JsonRecord req = coordwire::control("req");
    std::string verb;
    ASSERT_TRUE(coordwire::isControl(req, &verb));
    EXPECT_EQ(verb, "req");
    EXPECT_EQ(req.name, std::string(coordwire::kPrefix) + "req");

    // Data records -- even ones whose names merely resemble the prefix
    // -- are not control records.
    EXPECT_FALSE(coordwire::isControl(makeRecord("v2|x#0", 0.0), nullptr));
    EXPECT_FALSE(coordwire::isControl(makeRecord("coordinate", 0.0),
                                      nullptr));
}

TEST(StreamDecoder, OneByteDripDecodesEverything)
{
    // The socket worst case: every read returns a single byte. Frames
    // are self-delimiting, so the decoder must pop exactly the encoded
    // records, in order, bit-identically -- across the lazy FpDef frames
    // and the periodic Index frame that 300 records force (kIndexEvery =
    // 256).
    std::vector<JsonRecord> in;
    const std::string stream = encodeStream(300, in);

    binlog::StreamDecoder dec;
    std::vector<JsonRecord> out;
    JsonRecord rec;
    for (const char byte : stream) {
        ASSERT_TRUE(dec.feed(&byte, 1));
        while (dec.pop(rec))
            out.push_back(rec);
    }
    EXPECT_FALSE(dec.failed());
    EXPECT_TRUE(dec.headerSeen());
    EXPECT_EQ(dec.consumed(), stream.size());
    EXPECT_EQ(dec.buffered(), 0u);
    EXPECT_GE(dec.indexBlocks(), 1u);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        expectRecordsEqual(in[i], out[i]);
}

TEST(StreamDecoder, RandomChunkSizesDecodeIdentically)
{
    std::vector<JsonRecord> in;
    const std::string stream = encodeStream(64, in);
    std::mt19937 rng(20260808u);
    std::uniform_int_distribution<std::size_t> chunkLen(1, 37);

    for (int trial = 0; trial < 8; ++trial) {
        SCOPED_TRACE(trial);
        binlog::StreamDecoder dec;
        std::vector<JsonRecord> out;
        JsonRecord rec;
        std::size_t pos = 0;
        while (pos < stream.size()) {
            const std::size_t n =
                std::min(chunkLen(rng), stream.size() - pos);
            ASSERT_TRUE(dec.feed(stream.data() + pos, n));
            pos += n;
            while (dec.pop(rec))
                out.push_back(rec);
        }
        EXPECT_FALSE(dec.failed());
        EXPECT_EQ(dec.consumed(), stream.size());
        ASSERT_EQ(out.size(), in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
            expectRecordsEqual(in[i], out[i]);
    }
}

TEST(StreamDecoder, PartialTrailingFrameBuffersAndResumes)
{
    // Cut mid-frame: everything before the cut decodes, the tail buffers
    // (consumed() stays on the frame boundary -- the salvage boundary),
    // and feeding the remainder later resumes cleanly. The socket
    // reconnect shape, minus the reconnect.
    std::vector<JsonRecord> in;
    const std::string stream = encodeStream(8, in);
    const std::vector<std::size_t> ends = frameEnds(stream);
    ASSERT_GE(ends.size(), 2u);
    const std::size_t lastBoundary = ends[ends.size() - 2];
    const std::size_t cut = lastBoundary + 4; // 4 bytes into final frame

    binlog::StreamDecoder dec;
    ASSERT_TRUE(dec.feed(stream.data(), cut));
    std::vector<JsonRecord> out;
    JsonRecord rec;
    while (dec.pop(rec))
        out.push_back(rec);
    EXPECT_FALSE(dec.failed());
    EXPECT_EQ(dec.consumed(), lastBoundary);
    EXPECT_EQ(dec.buffered(), cut - lastBoundary);
    EXPECT_EQ(out.size(), in.size() - 1);

    ASSERT_TRUE(dec.feed(stream.data() + cut, stream.size() - cut));
    while (dec.pop(rec))
        out.push_back(rec);
    EXPECT_EQ(dec.consumed(), stream.size());
    EXPECT_EQ(dec.buffered(), 0u);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        expectRecordsEqual(in[i], out[i]);
}

TEST(StreamDecoder, CorruptionFailsPermanentlyAtTheFrameBoundary)
{
    std::vector<JsonRecord> in;
    std::string stream = encodeStream(8, in);
    const std::vector<std::size_t> ends = frameEnds(stream);
    ASSERT_GE(ends.size(), 3u);
    // Flip a payload byte inside the frame ending at ends[k]: records of
    // frames before it survive, the stream fails there, and later bytes
    // are discarded (feed returns false) -- corruption is not a
    // truncation and must never "resume".
    const std::size_t k = ends.size() / 2;
    stream[ends[k] - 2] =
        static_cast<char>(stream[ends[k] - 2] ^ 0x20);

    binlog::StreamDecoder dec;
    dec.feed(stream);
    EXPECT_TRUE(dec.failed());
    EXPECT_FALSE(dec.badHeader());
    EXPECT_EQ(dec.consumed(), ends[k - 1]);
    EXPECT_FALSE(dec.feed("more", 4));
    std::size_t popped = 0;
    JsonRecord rec;
    while (dec.pop(rec))
        ++popped;
    EXPECT_LT(popped, in.size());
}

TEST(StreamDecoder, ForeignMagicFailsAsBadHeader)
{
    binlog::StreamDecoder dec;
    dec.feed("NOTCRBL!garbage", 15);
    EXPECT_TRUE(dec.failed());
    EXPECT_TRUE(dec.badHeader());
    EXPECT_FALSE(dec.headerSeen());

    // reset() re-arms the header check for a fresh stream.
    dec.reset();
    std::string header;
    binlog::FrameEncoder::encodeHeader(header);
    ASSERT_TRUE(dec.feed(header));
    EXPECT_TRUE(dec.headerSeen());
    EXPECT_FALSE(dec.failed());
}

TEST(Coordinator, SocketCampaignBitIdenticalAndRedispatchesDeserters)
{
    // End to end, in process: a coordinator owning a binlog store, a
    // deserting client that takes a range and vanishes (its range must
    // re-dispatch), and two concurrent socket workers running the full
    // matrix. The workers' folded stats and the coordinator's store must
    // both be bit-identical to a serial filesystem campaign.
    const std::string store = "/tmp/create_test_coord_e2e.blog";
    const std::string serial = "/tmp/create_test_coord_e2e_serial.json";
    removeStoreAnyFormat(store);
    removeStoreAnyFormat(serial);
    const int reps = 4;
    const auto cells = campaignCells(reps);

    Coordinator::Options co;
    co.storePath = store;
    co.storeFormat = StoreFormat::Binlog;
    co.once = true;
    co.leaseSeconds = 30.0;
    co.rangeEpisodes = 2;
    Coordinator coord(co);
    std::string error;
    ASSERT_TRUE(coord.start(&error)) << error;
    ASSERT_GT(coord.port(), 0);
    std::thread serve([&] { coord.runLoop(); });

    {
        // The deserter: declare cell 0, take a range, vanish. Exactly-once
        // lives in the coordinator's have-bitmap, so the missing indices
        // simply re-dispatch when the connection drops.
        CoordClient deserter;
        ASSERT_TRUE(deserter.connect("127.0.0.1", coord.port(),
                                     "deserter:1.1", 3, &error))
            << error;
        JsonRecord need = coordwire::control("need");
        need.strings.emplace_back("fp", sweepFingerprint(cells[0]));
        need.numbers.emplace_back("need", reps);
        ASSERT_TRUE(deserter.send(need, &error)) << error;
        ASSERT_TRUE(deserter.send(coordwire::control("req"), &error))
            << error;
        JsonRecord rec;
        ASSERT_TRUE(deserter.recv(rec, &error)) << error;
        std::string verb;
        ASSERT_TRUE(coordwire::isControl(rec, &verb));
        EXPECT_EQ(verb, "range");
        EXPECT_EQ(rec.text("fp"), sweepFingerprint(cells[0]));
        deserter.close();
    }

    const std::string hostPort =
        "127.0.0.1:" + std::to_string(coord.port());
    SweepRunner::Options wo;
    wo.connect = hostPort;
    SweepRunner w1(wo), w2(wo);
    std::vector<std::size_t> h1, h2;
    for (const auto& c : cells) {
        h1.push_back(w1.add(c));
        h2.push_back(w2.add(c));
    }
    std::thread t1([&] { w1.run(); });
    std::thread t2([&] { w2.run(); });
    t1.join();
    t2.join();
    serve.join(); // --once: exits when every declared fp completed

    EXPECT_GE(coord.rangesRedispatched(), 1); // the deserter's range
    EXPECT_GE(coord.episodesIngested(),
              static_cast<long long>(cells.size()) * reps);

    // Both workers fold stats bit-identical to a serial campaign (which
    // doubles as the golden store writer)...
    SweepRunner::Options so;
    so.storePath = serial;
    SweepRunner fresh(so);
    std::vector<std::size_t> hf;
    for (const auto& c : cells)
        hf.push_back(fresh.add(c));
    fresh.run();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(fresh.stats(hf[i]), w1.stats(h1[i]));
        expectIdentical(fresh.stats(hf[i]), w2.stats(h2[i]));
    }

    // ... and the coordinator's store diffs clean against it, with every
    // episode attributed and the coordinator holding every lease.
    std::vector<StoreCell> coordCells, serialCells;
    std::vector<JsonRecord> workerRecs;
    ASSERT_TRUE(loadStoreCells(store, coordCells, error, &workerRecs))
        << error;
    ASSERT_TRUE(loadStoreCells(serial, serialCells, error)) << error;
    const StoreDiffResult res =
        diffStoreCells(coordCells, serialCells, StoreDiffOptions{});
    EXPECT_TRUE(res.clean());
    EXPECT_EQ(res.compared, static_cast<int>(cells.size()));

    // The worker| telemetry surfaced through the reader stack: range
    // counters balance (every assigned range was completed or
    // re-dispatched) and eps/s is populated for the socket workers.
    EXPECT_FALSE(workerRecs.empty());
    const StoreStatsResult stats =
        computeStoreStats(coordCells, workerRecs);
    long long assigned = 0, completed = 0, redispatched = 0;
    int withRanges = 0;
    for (const ShardLoad& s : stats.shards) {
        if (!s.hasRanges)
            continue;
        ++withRanges;
        assigned += s.rangesAssigned;
        completed += s.rangesCompleted;
        redispatched += s.rangesRedispatched;
    }
    EXPECT_GE(withRanges, 2); // both workers + the deserter reported
    EXPECT_EQ(assigned, completed + redispatched);
    EXPECT_GE(redispatched, 1);

    removeStoreAnyFormat(store);
    removeStoreAnyFormat(serial);
}

TEST(Coordinator, ResumesFromExistingStoreWithoutReexecution)
{
    // Crash-recovery shape: a serial campaign's store handed to a
    // (restarted) coordinator must satisfy a socket worker with ZERO
    // episodes executed -- the bitmap seeds from disk, the worker gets
    // fin after fetching the stored ledgers, and its stats still fold
    // bit-identically.
    const std::string store = "/tmp/create_test_coord_resume.json";
    removeStoreAnyFormat(store);
    const auto cells = campaignCells(3);
    SweepRunner::Options so;
    so.storePath = store;
    SweepRunner seed(so);
    std::vector<std::size_t> hs;
    for (const auto& c : cells)
        hs.push_back(seed.add(c));
    seed.run();

    Coordinator::Options co;
    co.storePath = store; // json store: the coordinator adopts its format
    co.once = true;
    Coordinator coord(co);
    std::string error;
    ASSERT_TRUE(coord.start(&error)) << error;
    std::thread serve([&] { coord.runLoop(); });

    SweepRunner::Options wo;
    wo.connect = "127.0.0.1:" + std::to_string(coord.port());
    SweepRunner worker(wo);
    std::vector<std::size_t> hw;
    for (const auto& c : cells)
        hw.push_back(worker.add(c));
    worker.run();
    serve.join();

    EXPECT_EQ(worker.episodesExecuted(), 0);
    EXPECT_EQ(coord.rangesDispatched(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(seed.stats(hs[i]), worker.stats(hw[i]));
    }
    removeStoreAnyFormat(store);
}
