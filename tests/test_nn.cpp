/** @file Tests for layers, transformer blocks, optimizer, serialization. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/optim.hpp"
#include "nn/transformer.hpp"
#include "tensor/ops.hpp"

using namespace create;

namespace {

Tensor
randomTensor(std::vector<std::int64_t> shape, Rng& rng, float scale = 1.0f)
{
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.normal()) * scale;
    return t;
}

} // namespace

TEST(Linear, TrainAndCalibratedInferAgree)
{
    Rng rng(1);
    nn::Linear lin("lin", 8, 4, true, rng);
    const Tensor x = randomTensor({3, 8}, rng);
    const Tensor train = lin.forward(nn::Var(x)).value();
    ComputeContext ctx(1);
    ctx.calibrating = true;
    const Tensor infer = lin.infer(x, ctx);
    EXPECT_LT(ops::maxAbsDiff(train, infer), 1e-5f);
}

TEST(Linear, OutChannelScaleAppliesToBothPaths)
{
    Rng rng(2);
    nn::Linear lin("lin", 8, 4, false, rng);
    Tensor s({4}, {1.0f, 10.0f, 1.0f, 1.0f});
    lin.setOutChannelScale(s);
    const Tensor x = randomTensor({2, 8}, rng);
    const Tensor train = lin.forward(nn::Var(x)).value();
    ComputeContext ctx(2);
    ctx.calibrating = true;
    const Tensor infer = lin.infer(x, ctx);
    EXPECT_LT(ops::maxAbsDiff(train, infer), 1e-4f);
    // Channel 1 must be ~10x the unscaled product.
    lin.clearOutChannelScale();
    const Tensor plain = lin.forward(nn::Var(x)).value();
    EXPECT_NEAR(train.at(0, 1), 10.0f * plain.at(0, 1), 1e-3f);
}

TEST(Linear, EffectiveWeightFoldsScale)
{
    Rng rng(3);
    nn::Linear lin("lin", 4, 2, false, rng);
    Tensor s({2}, {3.0f, 1.0f});
    lin.setOutChannelScale(s);
    const Tensor weff = lin.effectiveWeight();
    EXPECT_NEAR(weff.at(0, 0), lin.weight().at(0, 0) * 3.0f, 1e-6f);
    EXPECT_NEAR(weff.at(0, 1), lin.weight().at(0, 1), 1e-6f);
}

TEST(Embedding, LookupMatchesTable)
{
    Rng rng(4);
    nn::Embedding emb("emb", 5, 3, rng);
    const Tensor out = emb.infer({2, 4});
    for (int j = 0; j < 3; ++j) {
        EXPECT_FLOAT_EQ(out.at(0, j), emb.table().at(2, j));
        EXPECT_FLOAT_EQ(out.at(1, j), emb.table().at(4, j));
    }
    const Tensor train = emb.forward({2, 4}).value();
    EXPECT_LT(ops::maxAbsDiff(out, train), 1e-7f);
}

TEST(Norms, RmsNormUnitGainPreservesRms)
{
    Rng rng(5);
    nn::RMSNorm norm("n", 8);
    const Tensor x = randomTensor({4, 8}, rng, 3.0f);
    const Tensor y = norm.infer(x);
    for (int i = 0; i < 4; ++i) {
        double s = 0.0;
        for (int j = 0; j < 8; ++j)
            s += static_cast<double>(y.at(i, j)) * y.at(i, j);
        EXPECT_NEAR(std::sqrt(s / 8.0), 1.0, 1e-2);
    }
}

TEST(Norms, LayerNormZeroMeanUnitVar)
{
    Rng rng(6);
    nn::LayerNorm norm("n", 8);
    const Tensor x = randomTensor({4, 8}, rng, 3.0f);
    const Tensor y = norm.infer(x);
    for (int i = 0; i < 4; ++i) {
        double mean = 0.0;
        for (int j = 0; j < 8; ++j)
            mean += y.at(i, j);
        EXPECT_NEAR(mean / 8.0, 0.0, 1e-4);
    }
}

TEST(Norms, TrainInferAgreement)
{
    Rng rng(7);
    nn::RMSNorm rms("r", 8);
    nn::LayerNorm ln("l", 8);
    const Tensor x = randomTensor({3, 8}, rng);
    EXPECT_LT(ops::maxAbsDiff(rms.forward(nn::Var(x)).value(), rms.infer(x)),
              1e-5f);
    EXPECT_LT(ops::maxAbsDiff(ln.forward(nn::Var(x)).value(), ln.infer(x)),
              1e-5f);
}

TEST(Conv2d, TrainAndInferAgree)
{
    Rng rng(8);
    nn::Conv2d conv("c", 3, 5, 3, 2, 1, rng);
    const Tensor img = randomTensor({3, 8, 8}, rng);
    Tensor batch({1, 3, 8, 8});
    std::copy(img.data(), img.data() + img.numel(), batch.data());
    const Tensor train = conv.forward(nn::Var(batch)).value();
    ComputeContext ctx(8);
    ctx.calibrating = true;
    const Tensor infer = conv.infer(img, ctx);
    EXPECT_EQ(infer.dim(0), 5);
    EXPECT_EQ(infer.dim(1), 4);
    float maxDiff = 0.0f;
    for (std::int64_t i = 0; i < infer.numel(); ++i)
        maxDiff = std::max(maxDiff, std::fabs(infer[i] - train[i]));
    EXPECT_LT(maxDiff, 1e-5f);
}

TEST(Attention, OutputShapeAndAgreement)
{
    Rng rng(9);
    nn::MultiHeadAttention attn("a", 16, 4, rng);
    const Tensor x = randomTensor({5, 16}, rng);
    const Tensor train = attn.forward(nn::Var(x)).value();
    ComputeContext ctx(9);
    ctx.calibrating = true;
    const Tensor infer = attn.infer(x, ctx);
    EXPECT_EQ(train.dim(0), 5);
    EXPECT_EQ(train.dim(1), 16);
    EXPECT_LT(ops::maxAbsDiff(train, infer), 1e-4f);
}

TEST(Attention, RejectsIndivisibleHeads)
{
    Rng rng(10);
    EXPECT_THROW(nn::MultiHeadAttention("a", 10, 4, rng),
                 std::invalid_argument);
}

TEST(Transformer, LlamaBlockTrainInferAgree)
{
    Rng rng(11);
    nn::LlamaBlock blk("b", 16, 32, 4, rng);
    const Tensor x = randomTensor({4, 16}, rng);
    const Tensor train = blk.forward(nn::Var(x)).value();
    ComputeContext ctx(11);
    ctx.calibrating = true;
    const Tensor infer = blk.infer(x, ctx);
    EXPECT_LT(ops::maxAbsDiff(train, infer), 1e-4f);
}

TEST(Transformer, PostNormBlockTrainInferAgree)
{
    Rng rng(12);
    nn::PostNormBlock blk("b", 16, 32, 4, rng);
    const Tensor x = randomTensor({4, 16}, rng);
    const Tensor train = blk.forward(nn::Var(x)).value();
    ComputeContext ctx(12);
    ctx.calibrating = true;
    const Tensor infer = blk.infer(x, ctx);
    EXPECT_LT(ops::maxAbsDiff(train, infer), 1e-4f);
}

TEST(Transformer, PlantedOutliersInflateActivations)
{
    Rng rng(13);
    nn::LlamaBlock plain("p", 16, 32, 4, rng);
    Rng rng2(13);
    nn::LlamaBlock outlier("p", 16, 32, 4, rng2); // identical weights
    Tensor s = Tensor::full({16}, 1.0f);
    s[3] = 12.0f;
    outlier.plantOutliers(s);
    const Tensor x = randomTensor({4, 16}, rng, 0.5f);
    ComputeContext c1(13), c2(14);
    c1.calibrating = c2.calibrating = true;
    plain.infer(x, c1);
    outlier.infer(x, c2);
    // The outlier-laden block's O projection has a larger calibrated range.
    EXPECT_GT(outlier.attn().o().quantState().outObs.absMax(),
              2.0f * plain.attn().o().quantState().outObs.absMax());
}

TEST(Module, SaveLoadRoundTrip)
{
    Rng rng(15);
    nn::LlamaBlock blk("blk", 16, 32, 4, rng);
    BlobArchive ar;
    blk.save(ar);
    Rng rng2(999);
    nn::LlamaBlock blk2("blk", 16, 32, 4, rng2); // different init
    ASSERT_TRUE(blk2.load(ar));
    const Tensor x = randomTensor({2, 16}, rng);
    EXPECT_LT(ops::maxAbsDiff(blk.forward(nn::Var(x)).value(),
                              blk2.forward(nn::Var(x)).value()),
              1e-6f);
}

TEST(Module, LoadFailsOnMissingParam)
{
    Rng rng(16);
    nn::Linear lin("other", 4, 4, true, rng);
    BlobArchive ar;
    lin.save(ar);
    nn::Linear lin2("name", 4, 4, true, rng);
    EXPECT_FALSE(lin2.load(ar));
}

TEST(Module, ParameterNamesAreDotted)
{
    Rng rng(17);
    nn::LlamaBlock blk("planner.blk0", 16, 32, 4, rng);
    bool foundK = false;
    for (auto* p : blk.parameters())
        if (p->name == "planner.blk0.attn.k.weight")
            foundK = true;
    EXPECT_TRUE(foundK);
}

TEST(AdamW, ConvergesOnLinearRegression)
{
    Rng rng(18);
    nn::Linear lin("lin", 4, 1, true, rng);
    // Ground truth: y = sum(x) + 1.
    nn::AdamW opt(lin.parameters(), 5e-2);
    const int n = 64;
    const Tensor xs = randomTensor({n, 4}, rng);
    Tensor ys({n, 1});
    for (int i = 0; i < n; ++i) {
        float s = 1.0f;
        for (int j = 0; j < 4; ++j)
            s += xs.at(i, j);
        ys.at(i, 0) = s;
    }
    float firstLoss = 0.0f, lastLoss = 0.0f;
    for (int epoch = 0; epoch < 300; ++epoch) {
        opt.zeroGrad();
        nn::Var pred = lin.forward(nn::Var(xs));
        nn::Var loss = nn::mseLoss(pred, ys);
        loss.backward();
        opt.step();
        if (epoch == 0)
            firstLoss = loss.value()[0];
        lastLoss = loss.value()[0];
    }
    EXPECT_LT(lastLoss, firstLoss * 0.05f);
    EXPECT_LT(lastLoss, 0.05f);
}

TEST(AdamW, WeightDecayShrinksUnusedWeights)
{
    Rng rng(19);
    nn::Linear lin("lin", 2, 1, false, rng);
    const float before = std::fabs(lin.weight()[0]);
    nn::AdamW opt(lin.parameters(), 1e-2, 0.9, 0.999, 1e-8, 0.5);
    // Zero gradients -> only the decoupled decay acts.
    for (int i = 0; i < 50; ++i) {
        opt.zeroGrad();
        opt.step();
    }
    EXPECT_LT(std::fabs(lin.weight()[0]), before);
}
