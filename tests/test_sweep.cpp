/** @file Tests for the SweepRunner campaign engine: sharded-vs-serial
 *  bit-identity across cells, cross-cell memoization, episode-ledger
 *  round trips through the JSON result store (prefix slicing, mid-cell
 *  kill/resume, legacy v1 migration, --shard partitioning), fingerprint
 *  canonicalization, and the episode-loop regressions PR 4 fixed
 *  (vsInterval <= 0, executed-step billing). */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/metrics.hpp"
#include "common/serialize.hpp"
#include "core/create_system.hpp"
#include "core/manip_system.hpp"
#include "core/store_diff.hpp"
#include "core/store_stats.hpp"
#include "core/sweep.hpp"
#include "env/manipworld.hpp"
#include "test_util.hpp"

using namespace create;
using testutil::expectIdentical;

namespace {

/** A small mixed-platform campaign exercising injection, WR, and VS. */
std::vector<SweepCell>
campaignCells(int reps)
{
    CreateConfig mineInj = CreateConfig::uniform(5e-4);
    mineInj.anomalyDetection = true;
    CreateConfig manipAdwr = CreateConfig::atVoltage(0.72, 0.90);
    manipAdwr.anomalyDetection = true;
    manipAdwr.weightRotation = true;
    return {
        {"jarvis-1", static_cast<int>(MineTask::Wooden), mineInj, reps},
        {"jarvis-1", static_cast<int>(MineTask::Stone),
         CreateConfig::clean(), reps},
        {"openvla+octo", static_cast<int>(ManipTask::Wine), manipAdwr,
         reps},
    };
}

} // namespace

TEST(Sweep, ShardedVsSerialBitIdentical)
{
    const int reps = 5;
    const auto cells = campaignCells(reps);

    SweepRunner serial(SweepRunner::Options{});
    SweepRunner sharded([] {
        SweepRunner::Options o;
        o.threads = 4;
        return o;
    }());
    for (const auto& c : cells) {
        serial.add(c);
        sharded.add(c);
    }
    serial.run();
    sharded.run();

    // Ground truth: the systems' own (serial) evaluation engine.
    MineSystem mine(false);
    ManipSystem manip("openvla", "octo", false);
    const TaskStats direct[] = {
        mine.evaluate(cells[0].taskId, cells[0].cfg, reps),
        mine.evaluate(cells[1].taskId, cells[1].cfg, reps),
        manip.evaluate(cells[2].taskId, cells[2].cfg, reps),
    };
    for (std::size_t h = 0; h < cells.size(); ++h) {
        expectIdentical(direct[h], serial.stats(h));
        expectIdentical(direct[h], sharded.stats(h));
    }
    EXPECT_EQ(serial.executedCells(), 3);
    EXPECT_EQ(sharded.executedCells(), 3);
}

TEST(Sweep, MemoizesDuplicateCells)
{
    const auto cells = campaignCells(3);
    SweepRunner sweep;
    const std::size_t a = sweep.add(cells[1]); // clean baseline ...
    const std::size_t b = sweep.add(cells[0]);
    const std::size_t c = sweep.add(cells[1]); // ... declared twice
    sweep.run();

    EXPECT_EQ(sweep.executedCells(), 2);
    EXPECT_EQ(sweep.memoizedCells(), 1);
    EXPECT_EQ(sweep.source(a), CellSource::Executed);
    EXPECT_EQ(sweep.source(b), CellSource::Executed);
    EXPECT_EQ(sweep.source(c), CellSource::Memoized);
    expectIdentical(sweep.stats(a), sweep.stats(c));
    EXPECT_EQ(&sweep.stats(a), &sweep.stats(c)); // one execution, shared
}

TEST(Sweep, ResumeRoundTripThroughStore)
{
    const std::string path = "/tmp/create_test_sweep_store.json";
    std::remove(path.c_str());
    const auto cells = campaignCells(3);

    // Partial campaign: only the first two cells reach the store.
    SweepRunner::Options withStore;
    withStore.storePath = path;
    {
        SweepRunner partial(withStore);
        partial.add(cells[0]);
        partial.add(cells[1]);
        partial.run();
    }

    // Full campaign with --resume: the stored cells load, only the new
    // cell executes, and every stat is bit-identical to a fresh run.
    SweepRunner::Options resume = withStore;
    resume.resume = true;
    SweepRunner resumed(resume);
    SweepRunner fresh;
    for (const auto& c : cells) {
        resumed.add(c);
        fresh.add(c);
    }
    resumed.run();
    fresh.run();

    EXPECT_EQ(resumed.resumedCells(), 2);
    EXPECT_EQ(resumed.executedCells(), 1);
    for (std::size_t h = 0; h < cells.size(); ++h) {
        SCOPED_TRACE(h);
        expectIdentical(fresh.stats(h), resumed.stats(h));
        EXPECT_EQ(resumed.source(h), h < 2 ? CellSource::Resumed
                                           : CellSource::Executed);
    }

    // A second resume over the (now complete) store executes nothing.
    SweepRunner again(resume);
    for (const auto& c : cells)
        again.add(c);
    again.run();
    EXPECT_EQ(again.executedCells(), 0);
    EXPECT_EQ(again.resumedCells(), 3);

    // Resumed cells re-derive their per-episode results on demand,
    // bit-identical to the executed ones.
    const auto& fromStore = again.episodes(0);
    const auto& executed = fresh.episodes(0);
    ASSERT_EQ(fromStore.size(), executed.size());
    for (std::size_t i = 0; i < executed.size(); ++i)
        expectIdentical(executed[i], fromStore[i]);

    std::remove(path.c_str());
}

TEST(Sweep, SharedStoreIsNotClobberedAcrossCampaigns)
{
    // Two campaigns writing to one store (the second without --resume)
    // must both leave their records behind: a flush merges, not replaces.
    const std::string path = "/tmp/create_test_sweep_shared.json";
    std::remove(path.c_str());
    const auto cells = campaignCells(2);
    SweepRunner::Options withStore;
    withStore.storePath = path;
    {
        SweepRunner a(withStore);
        a.add(cells[0]);
        a.run();
    }
    {
        SweepRunner b(withStore); // no resume: must still preserve A's cell
        b.add(cells[1]);
        b.run();
    }
    SweepRunner::Options resume = withStore;
    resume.resume = true;
    SweepRunner c(resume);
    c.add(cells[0]);
    c.add(cells[1]);
    c.run();
    EXPECT_EQ(c.executedCells(), 0);
    EXPECT_EQ(c.resumedCells(), 2);
    std::remove(path.c_str());
}

TEST(Sweep, PhasedCampaignExecutesOnlyNewCells)
{
    // fig16 pattern: a first phase's results decide what the second
    // phase declares; the second run() must not re-execute phase 1.
    const auto cells = campaignCells(3);
    SweepRunner sweep;
    const std::size_t a = sweep.add(cells[0]);
    sweep.run();
    EXPECT_EQ(sweep.executedCells(), 1);
    const TaskStats phase1 = sweep.stats(a);

    const std::size_t b = sweep.add(cells[1]);
    const std::size_t dup = sweep.add(cells[0]); // memoizes across phases
    sweep.run();
    EXPECT_EQ(sweep.executedCells(), 2);
    EXPECT_EQ(sweep.memoizedCells(), 1);
    expectIdentical(phase1, sweep.stats(a)); // phase 1 result untouched
    expectIdentical(phase1, sweep.stats(dup));
    MineSystem mine(false);
    expectIdentical(mine.evaluate(cells[1].taskId, cells[1].cfg, 3),
                    sweep.stats(b));
}

TEST(Sweep, EpisodesMatchAggregateOrdering)
{
    SweepRunner sweep;
    const auto cells = campaignCells(4);
    const std::size_t h = sweep.add(cells[0]);
    sweep.run();
    const auto& eps = sweep.episodes(h);
    ASSERT_EQ(eps.size(), 4u);
    MineSystem mine(false);
    expectIdentical(sweep.stats(h),
                    aggregate(mine.runEpisodes(cells[0].taskId, cells[0].cfg,
                                               4, cells[0].seed0),
                              mine.energyModel()));
}

TEST(Sweep, FingerprintCanonicalization)
{
    SweepCell a{"jarvis-1", 0, CreateConfig::clean(), 6};

    // The VS policy (and its display name) cannot affect execution while
    // voltageScaling is off.
    SweepCell b = a;
    b.cfg.policy = EntropyVoltagePolicy::preset('C');
    b.cfg.vsInterval = 17;
    EXPECT_EQ(sweepFingerprint(a), sweepFingerprint(b));

    // BER fields cannot matter without injection.
    SweepCell c = a;
    c.cfg.uniformBer = 0.5;
    c.cfg.injectPlanner = false;
    EXPECT_EQ(sweepFingerprint(a), sweepFingerprint(c));

    // With VS on, equal-valued policies match across display names ...
    SweepCell d = a, e = a;
    d.cfg.voltageScaling = true;
    e.cfg.voltageScaling = true;
    d.cfg.policy = EntropyVoltagePolicy::preset('C');
    e.cfg.policy = EntropyVoltagePolicy(d.cfg.policy.thresholds(),
                                        d.cfg.policy.voltages(), "renamed");
    EXPECT_EQ(sweepFingerprint(d), sweepFingerprint(e));
    // ... and differing voltages do not.
    e.cfg.policy = EntropyVoltagePolicy::preset('D');
    EXPECT_NE(sweepFingerprint(d), sweepFingerprint(e));
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(d));

    // reps is canonicalized away: episodes run at seed0 + i, so reps is
    // a prefix length of the shared ledger, not part of its identity.
    SweepCell f = a;
    f.reps = 7;
    EXPECT_EQ(sweepFingerprint(a), sweepFingerprint(f));
    // ... but the legacy (v1) cell fingerprint still includes it, so the
    // migration read path matches PR 4-era records exactly.
    EXPECT_NE(sweepFingerprintLegacyV1(a), sweepFingerprintLegacyV1(f));
    SweepCell g = a;
    g.seed0 = 4242;
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(g));
    SweepCell h = a;
    h.cfg = CreateConfig::uniform(1e-3);
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(h));
    SweepCell i = a;
    i.platform = "openvla+octo";
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(i));
}

TEST(Sweep, RejectsUnknownPlatformAndBadReps)
{
    SweepRunner sweep;
    EXPECT_THROW(sweep.add({"no-such-platform", 0, CreateConfig::clean(), 1}),
                 std::invalid_argument);
    EXPECT_THROW(sweep.add({"jarvis-1", 0, CreateConfig::clean(), 0}),
                 std::invalid_argument);
}

TEST(Sweep, SlicedCellsShareOneExecution)
{
    // reps is a prefix length: declaring the same deployment point at
    // several depths executes only the deepest and slices the rest.
    const auto cells = campaignCells(5);
    SweepRunner sweep;
    SweepCell shallow = cells[0];
    shallow.reps = 2;
    const std::size_t small = sweep.add(shallow);
    const std::size_t deep = sweep.add(cells[0]); // reps = 5
    sweep.run();

    EXPECT_EQ(sweep.executedCells(), 1);
    EXPECT_EQ(sweep.slicedCells(), 1);
    EXPECT_EQ(sweep.episodesExecuted(), 5);
    EXPECT_EQ(sweep.source(deep), CellSource::Executed);
    EXPECT_EQ(sweep.source(small), CellSource::Sliced);

    MineSystem mine(false);
    expectIdentical(mine.evaluate(shallow.taskId, shallow.cfg, 2),
                    sweep.stats(small));
    expectIdentical(mine.evaluate(cells[0].taskId, cells[0].cfg, 5),
                    sweep.stats(deep));
    // The slice's episodes are literally the ledger prefix.
    const auto& eps = sweep.episodes(small);
    ASSERT_EQ(eps.size(), 2u);
    for (std::size_t i = 0; i < eps.size(); ++i)
        expectIdentical(sweep.episodes(deep)[i], eps[i]);
}

TEST(Sweep, PrefixSliceServesSmallerRepsFromStore)
{
    // A stored reps=12 ledger must satisfy reps in {3, 6, 12} with zero
    // episodes executed, bit-identically to direct evaluate() -- the
    // convergence-study (Table 5) de-duplication.
    const std::string path = "/tmp/create_test_sweep_prefix.json";
    std::remove(path.c_str());
    SweepCell cell = campaignCells(12)[0];

    SweepRunner::Options withStore;
    withStore.storePath = path;
    {
        SweepRunner seed(withStore);
        seed.add(cell);
        seed.run();
        EXPECT_EQ(seed.episodesExecuted(), 12);
    }

    SweepRunner::Options resume = withStore;
    resume.resume = true;
    SweepRunner sliced(resume);
    std::vector<std::size_t> handles;
    for (int reps : {3, 6, 12}) {
        SweepCell c = cell;
        c.reps = reps;
        handles.push_back(sliced.add(c));
    }
    sliced.run();
    EXPECT_EQ(sliced.executedCells(), 0);
    EXPECT_EQ(sliced.episodesExecuted(), 0);
    EXPECT_EQ(sliced.resumedCells(), 3);

    MineSystem mine(false);
    const int repsOf[] = {3, 6, 12};
    for (std::size_t i = 0; i < handles.size(); ++i) {
        SCOPED_TRACE(repsOf[i]);
        EXPECT_EQ(sliced.source(handles[i]), CellSource::Resumed);
        expectIdentical(mine.evaluate(cell.taskId, cell.cfg, repsOf[i]),
                        sliced.stats(handles[i]));
    }

    // The reverse direction: a shallow store partially seeds a deeper
    // request, executing only the missing suffix.
    SweepRunner deeper(resume);
    SweepCell deepCell = cell;
    deepCell.reps = 15;
    const std::size_t h = deeper.add(deepCell);
    deeper.run();
    EXPECT_EQ(deeper.episodesExecuted(), 3); // episodes 12..14 only
    EXPECT_EQ(deeper.source(h), CellSource::Executed);
    expectIdentical(mine.evaluate(cell.taskId, cell.cfg, 15),
                    deeper.stats(h));
    std::remove(path.c_str());
}

TEST(Sweep, MidCellKillResumeExecutesOnlyMissingEpisodes)
{
    // Simulate a campaign killed mid-cell: truncate the stored ledger
    // (drop a suffix AND punch a hole, as an interrupted batched flush
    // can leave either) and resume. Only the missing episodes run, and
    // the final stats are bit-identical to an uninterrupted campaign.
    const std::string path = "/tmp/create_test_sweep_kill.json";
    std::remove(path.c_str());
    SweepCell cell = campaignCells(10)[0];
    const std::string fp = sweepFingerprint(cell);

    SweepRunner::Options withStore;
    withStore.storePath = path;
    {
        SweepRunner full(withStore);
        full.add(cell);
        full.run();
    }

    std::vector<JsonRecord> records;
    ASSERT_TRUE(readJsonRecords(path, records));
    const auto gone = [&](const std::string& name) {
        return name == sweepEpisodeKey(fp, 4) ||      // the hole
               name == sweepEpisodeKey(fp, 7) ||      // the lost suffix
               name == sweepEpisodeKey(fp, 8) ||
               name == sweepEpisodeKey(fp, 9);
    };
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [&](const JsonRecord& r) {
                                     return gone(r.name);
                                 }),
                  records.end());
    ASSERT_TRUE(writeJsonRecords(path, records));

    SweepRunner::Options resume = withStore;
    resume.resume = true;
    SweepRunner resumed(resume);
    const std::size_t h = resumed.add(cell);
    resumed.run();
    EXPECT_EQ(resumed.episodesExecuted(), 4); // 4, 7, 8, 9
    EXPECT_EQ(resumed.source(h), CellSource::Executed);

    SweepRunner fresh;
    const std::size_t hf = fresh.add(cell);
    fresh.run();
    expectIdentical(fresh.stats(hf), resumed.stats(h));
    const auto& a = fresh.episodes(hf);
    const auto& b = resumed.episodes(h);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
    std::remove(path.c_str());
}

TEST(Sweep, LegacyV1StoreMigration)
{
    // A PR 4-era cell-level store (aggregate stats keyed by the v1
    // fingerprint, no episodes) still resumes whole cells read-only, and
    // a flush carries its records forward instead of dropping them.
    const std::string path = "/tmp/create_test_sweep_v1.json";
    std::remove(path.c_str());
    const SweepCell cell = campaignCells(3)[0];

    MineSystem mine(false);
    const TaskStats direct = mine.evaluate(cell.taskId, cell.cfg, cell.reps);
    JsonRecord v1;
    v1.name = sweepFingerprintLegacyV1(cell);
    v1.strings.emplace_back("platform", cell.platform);
    v1.numbers.emplace_back("task", cell.taskId);
    v1.numbers.emplace_back("reps", cell.reps);
    v1.numbers.emplace_back("episodes", direct.episodes);
    v1.numbers.emplace_back("successes", direct.successes);
    for (const auto& [key, member] : kTaskStatFields)
        v1.numbers.emplace_back(key, direct.*member);
    ASSERT_TRUE(writeJsonRecords(path, {v1}));

    SweepRunner::Options resume;
    resume.storePath = path;
    resume.resume = true;
    SweepRunner sweep(resume);
    const std::size_t h = sweep.add(cell);
    // A second cell at different reps cannot use the v1 aggregate (its
    // reps is part of the v1 identity); it executes its own ledger.
    SweepCell other = cell;
    other.reps = 2;
    const std::size_t h2 = sweep.add(other);
    sweep.run();

    EXPECT_EQ(sweep.source(h), CellSource::Resumed);
    EXPECT_EQ(sweep.resumedCells(), 1);
    expectIdentical(direct, sweep.stats(h));
    EXPECT_EQ(sweep.source(h2), CellSource::Executed);
    EXPECT_EQ(sweep.episodesExecuted(), 2);
    expectIdentical(mine.evaluate(cell.taskId, cell.cfg, 2),
                    sweep.stats(h2));

    // A legacy cell's episodes re-derive deterministically on demand.
    const auto& eps = sweep.episodes(h);
    ASSERT_EQ(eps.size(), 3u);
    expectIdentical(aggregate(mine.runEpisodes(cell.taskId, cell.cfg, 3,
                                               cell.seed0),
                              mine.energyModel()),
                    sweep.stats(h));

    // The flush rewrote the store: v1 record preserved, v2 schema added.
    std::vector<JsonRecord> records;
    ASSERT_TRUE(readJsonRecords(path, records));
    bool hasV1 = false, hasSchema = false;
    for (const auto& rec : records) {
        hasV1 = hasV1 || rec.name == v1.name;
        hasSchema = hasSchema || rec.name == kSweepStoreSchemaRecord;
    }
    EXPECT_TRUE(hasV1);
    EXPECT_TRUE(hasSchema);
    std::remove(path.c_str());
}

TEST(Sweep, ShardsPartitionPendingLedgersExactlyOnce)
{
    // Two shard processes sharing one store must cover the campaign
    // exactly once between them, and their merged store must satisfy a
    // full --resume run with zero execution.
    const std::string path = "/tmp/create_test_sweep_shard.json";
    std::remove(path.c_str());
    const auto cells = campaignCells(2);

    long long totalExecuted = 0;
    for (int shard = 0; shard < 2; ++shard) {
        SweepRunner::Options o;
        o.storePath = path;
        o.shardIndex = shard;
        o.shardCount = 2;
        SweepRunner runner(o);
        for (const auto& c : cells)
            runner.add(c);
        runner.run();
        EXPECT_EQ(runner.executedCells() + runner.skippedCells(), 3)
            << "shard " << shard;
        EXPECT_GT(runner.executedCells(), 0) << "shard " << shard;
        totalExecuted += runner.episodesExecuted();
    }
    EXPECT_EQ(totalExecuted, 3 * 2); // every episode exactly once

    SweepRunner::Options resume;
    resume.storePath = path;
    resume.resume = true;
    SweepRunner merged(resume);
    SweepRunner fresh;
    for (const auto& c : cells) {
        merged.add(c);
        fresh.add(c);
    }
    merged.run();
    fresh.run();
    EXPECT_EQ(merged.executedCells(), 0);
    EXPECT_EQ(merged.episodesExecuted(), 0);
    EXPECT_EQ(merged.resumedCells(), 3);
    for (std::size_t h = 0; h < cells.size(); ++h) {
        SCOPED_TRACE(h);
        expectIdentical(fresh.stats(h), merged.stats(h));
    }
    std::remove(path.c_str());
}

TEST(Sweep, NewerSchemaStoreIsLeftUntouched)
{
    // A store written by a future schema must not be resumed from OR
    // rewritten (our records under its schema header would corrupt it
    // for the build that owns it): the campaign runs storeless.
    const std::string path = "/tmp/create_test_sweep_future.json";
    JsonRecord schema;
    schema.name = kSweepStoreSchemaRecord;
    schema.numbers.emplace_back("schema", kSweepStoreSchema + 1);
    ASSERT_TRUE(writeJsonRecords(path, {schema}));

    SweepRunner::Options o;
    o.storePath = path;
    o.resume = true;
    SweepRunner sweep(o);
    const std::size_t h = sweep.add(campaignCells(2)[0]);
    sweep.run();
    EXPECT_EQ(sweep.source(h), CellSource::Executed);
    EXPECT_EQ(sweep.episodesExecuted(), 2);

    std::vector<JsonRecord> records;
    ASSERT_TRUE(readJsonRecords(path, records));
    ASSERT_EQ(records.size(), 1u); // exactly the foreign schema record
    EXPECT_EQ(records[0].name, kSweepStoreSchemaRecord);
    EXPECT_EQ(records[0].number("schema"), kSweepStoreSchema + 1);
    std::remove(path.c_str());
}

TEST(Sweep, RejectsBadShardOptions)
{
    SweepRunner::Options o;
    o.shardIndex = 2;
    o.shardCount = 2;
    EXPECT_THROW(SweepRunner{o}, std::invalid_argument);
}

// --- observability: schema v3 metrics through the campaign pipeline -----

namespace {

/** Restores the global metrics switch no matter how the test exits. */
struct MetricsSwitchGuard
{
    bool saved = MetricsRegistry::enabled();
    ~MetricsSwitchGuard() { MetricsRegistry::setEnabled(saved); }
};

} // namespace

TEST(Observability, MetricsOnOffTaskStatsBitIdentical)
{
    // The registry observes, never branches: disabling collection must
    // not move a single bit of any campaign result.
    MetricsSwitchGuard guard;
    const auto cells = campaignCells(3);

    MetricsRegistry::setEnabled(false);
    SweepRunner off;
    for (const auto& c : cells)
        off.add(c);
    off.run();

    MetricsRegistry::setEnabled(true);
    SweepRunner on;
    for (const auto& c : cells)
        on.add(c);
    on.run();

    for (std::size_t h = 0; h < cells.size(); ++h) {
        SCOPED_TRACE(h);
        expectIdentical(off.stats(h), on.stats(h));
        const auto& offEps = off.episodes(h);
        const auto& onEps = on.episodes(h);
        ASSERT_EQ(offEps.size(), onEps.size());
        for (std::size_t i = 0; i < offEps.size(); ++i)
            expectIdentical(offEps[i], onEps[i]);
    }
}

TEST(Observability, CampaignStoreCarriesFaultAttribution)
{
    // An injected campaign's store must carry per-episode attribution
    // that agrees with the result pipeline's own meters.
    MetricsSwitchGuard guard;
    MetricsRegistry::setEnabled(true);
    const std::string path = "/tmp/create_test_sweep_metrics.json";
    std::remove(path.c_str());

    SweepRunner::Options o;
    o.storePath = path;
    SweepRunner sweep(o);
    sweep.add(campaignCells(3)[0]); // mine + injection + AD, no protection
    sweep.run();

    std::vector<StoreCell> loaded;
    std::string error;
    ASSERT_TRUE(loadStoreCells(path, loaded, error)) << error;
    ASSERT_EQ(loaded.size(), 1u);
    const StoreCell& cell = loaded[0];
    ASSERT_TRUE(cell.hasMetrics);
    EXPECT_GT(cell.metrics.gemms, 0u);
    EXPECT_GT(cell.metrics.flipsInjected, 0u)
        << "stressor too mild to exercise attribution";
    ASSERT_FALSE(cell.metrics.layers.empty());

    // The per-layer table partitions the episode totals exactly.
    LayerFaultCounters sum;
    for (const auto& [tag, c] : cell.metrics.layers)
        sum += c;
    EXPECT_EQ(sum.injected, cell.metrics.flipsInjected);
    EXPECT_EQ(sum.detected, cell.metrics.flipsDetected);
    EXPECT_EQ(sum.corrected, cell.metrics.flipsCorrected);
    EXPECT_EQ(sum.escaped, cell.metrics.flipsEscaped);

    for (const EpisodeRecord& rec : cell.records) {
        ASSERT_TRUE(rec.metrics.present);
        // Same sources the EnergyMeter already folds into the results:
        // injected == the episode's bitFlips; with AD as the only active
        // mechanism, detected == the episode's cleared-anomaly count.
        EXPECT_EQ(rec.metrics.flipsInjected, rec.result.bitFlips);
        EXPECT_EQ(rec.metrics.flipsDetected, rec.result.anomaliesCleared);
        EXPECT_EQ(rec.metrics.reExecutions, 0u); // no re-executing scheme
    }
    std::remove(path.c_str());
}

TEST(Observability, V2StoreUpgradesToV3OnResume)
{
    MetricsSwitchGuard guard;
    const std::string path = "/tmp/create_test_sweep_v2migrate.json";
    std::remove(path.c_str());
    const auto cells = campaignCells(3);

    // A metrics-off campaign writes episode records carrying none of the
    // v3 keys -- record-wise exactly what a v2-era build wrote.
    MetricsRegistry::setEnabled(false);
    SweepRunner::Options withStore;
    withStore.storePath = path;
    {
        SweepRunner writer(withStore);
        for (const auto& c : cells)
            writer.add(c);
        writer.run();
    }
    MetricsRegistry::setEnabled(true);

    // Downgrade the schema stamp to finish the v2 impersonation.
    std::vector<JsonRecord> records;
    ASSERT_TRUE(readJsonRecords(path, records));
    bool stamped = false;
    for (JsonRecord& rec : records)
        if (rec.name == kSweepStoreSchemaRecord) {
            rec.numbers.clear();
            rec.numbers.emplace_back("schema", 2.0);
            stamped = true;
        }
    ASSERT_TRUE(stamped);
    ASSERT_TRUE(writeJsonRecords(path, records));

    // Resume: every cell loads losslessly, nothing re-executes, and the
    // stats match a fresh metrics-on run bit-for-bit.
    SweepRunner::Options resume = withStore;
    resume.resume = true;
    SweepRunner resumed(resume);
    SweepRunner fresh;
    for (const auto& c : cells) {
        resumed.add(c);
        fresh.add(c);
    }
    resumed.run();
    fresh.run();
    EXPECT_EQ(resumed.resumedCells(), 3);
    EXPECT_EQ(resumed.executedCells(), 0);
    for (std::size_t h = 0; h < cells.size(); ++h) {
        SCOPED_TRACE(h);
        expectIdentical(fresh.stats(h), resumed.stats(h));
    }

    // The flush restamped the store at the current schema, and the old
    // ledgers read back metrics-free rather than inventing counters.
    records.clear();
    ASSERT_TRUE(readJsonRecords(path, records));
    double schema = 0.0;
    for (const JsonRecord& rec : records)
        if (rec.name == kSweepStoreSchemaRecord)
            schema = rec.number("schema");
    EXPECT_EQ(schema, kSweepStoreSchema);

    std::vector<StoreCell> loaded;
    std::string error;
    ASSERT_TRUE(loadStoreCells(path, loaded, error)) << error;
    ASSERT_EQ(loaded.size(), 3u);
    for (const StoreCell& cell : loaded) {
        EXPECT_FALSE(cell.hasMetrics);
        for (const EpisodeRecord& rec : cell.records)
            EXPECT_FALSE(rec.metrics.present);
    }
    std::remove(path.c_str());
}

// --- episode-loop regressions this PR fixed ------------------------------

TEST(EpisodeLoop, VsIntervalNonPositiveDisablesPredictor)
{
    // vsInterval <= 0 used to hit `steps % 0` (UB) on the decoded-plan
    // platforms; it now disables the predictor/LDO updates, matching the
    // Mine path's VoltageScaler guard.
    ManipSystem sys("openvla", "octo", false);
    for (const int interval : {0, -3}) {
        CreateConfig cfg = CreateConfig::fullCreate(
            0.72, EntropyVoltagePolicy::preset('E'), interval);
        sys.prepare(cfg);
        const auto r = sys.runEpisode(ManipTask::Wine, 77, cfg);
        EXPECT_EQ(r.predictorInvocations, 0) << "interval " << interval;
    }
    // Sanity: a positive interval does run the predictor.
    CreateConfig on = CreateConfig::fullCreate(
        0.72, EntropyVoltagePolicy::preset('E'), 5);
    sys.prepare(on);
    EXPECT_GT(sys.runEpisode(ManipTask::Wine, 77, on).predictorInvocations,
              0);
}

TEST(EpisodeLoop, FailedEpisodesBillExecutedSteps)
{
    // A corrupted planner can decode a plan that exhausts long before the
    // step cap; such failures used to bill the full kStepCap controller
    // steps into the energy model. They now bill what actually ran.
    ManipSystem sys("openvla", "octo", false);
    CreateConfig cfg = CreateConfig::uniform(1e-2);
    cfg.injectController = false;
    sys.prepare(cfg);
    int failures = 0, earlyExhaust = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const auto r = sys.runEpisode(ManipTask::Wine, seed, cfg);
        EXPECT_LE(r.steps, ManipWorld::kStepCap);
        if (!r.success) {
            ++failures;
            if (r.steps < ManipWorld::kStepCap)
                ++earlyExhaust;
        }
    }
    ASSERT_GT(failures, 0) << "stressor too mild to exercise the fix";
    EXPECT_GT(earlyExhaust, 0)
        << "no failed episode exhausted its plan early; every failure "
           "billed the cap, which is what the old accounting always did";
}

// --- elastic lease mode: steal, expiry, exactly-once ---------------------

namespace {

double
wallNowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

JsonRecord
makeLease(const std::string& fp, const std::string& owner, double gen,
          double renewedAt, bool done)
{
    JsonRecord lr;
    lr.name = sweepLeaseKey(fp);
    lr.strings.emplace_back("owner", owner);
    lr.numbers.emplace_back("gen", gen);
    lr.numbers.emplace_back("renewedAt", renewedAt);
    lr.numbers.emplace_back("done", done ? 1.0 : 0.0);
    return lr;
}

} // namespace

TEST(Lease, KeyRoundTrip)
{
    const std::string key = sweepLeaseKey("v2|abc|def");
    std::string fp;
    ASSERT_TRUE(sweepLeaseFingerprint(key, &fp));
    EXPECT_EQ(fp, "v2|abc|def");
    EXPECT_FALSE(sweepLeaseFingerprint("v2|abc|def", nullptr));
    EXPECT_FALSE(sweepLeaseFingerprint("lease|", nullptr));
    EXPECT_FALSE(sweepLeaseFingerprint(sweepEpisodeKey("v2|x", 3), nullptr));
}

TEST(Lease, StealsExpiredLeaseAndGapFillsExactlyOnce)
{
    // The dead-shard shape: a worker claimed a ledger, flushed episodes
    // {0, 1} of 6, and was kill -9'd -- its lease stops renewing. An
    // elastic survivor must observe the expiry, steal the lease with a
    // generation bump, execute ONLY the 4 missing episodes, and fold
    // stats bit-identical to an uninterrupted run.
    const std::string path = "/tmp/create_test_lease_steal.json";
    std::remove(path.c_str());
    SweepCell cell = campaignCells(6)[0];
    const std::string fp = sweepFingerprint(cell);

    {
        SweepRunner::Options o;
        o.storePath = path;
        SweepRunner full(o);
        full.add(cell);
        full.run();
    }
    std::vector<JsonRecord> records;
    ASSERT_TRUE(readJsonRecords(path, records));
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [&](const JsonRecord& r) {
                                     const int idx = sweepEpisodeIndex(r.name);
                                     return idx >= 2;
                                 }),
                  records.end());
    // The dead worker's lease: generation 3, last renewed an hour ago.
    records.push_back(
        makeLease(fp, "deadhost:4242.1", 3, wallNowSeconds() - 3600, false));
    ASSERT_TRUE(writeJsonRecords(path, records));

    SweepRunner::Options elastic;
    elastic.storePath = path;
    elastic.leaseSeconds = 5.0;
    SweepRunner survivor(elastic);
    const std::size_t h = survivor.add(cell);
    survivor.run();

    EXPECT_EQ(survivor.episodesExecuted(), 4); // gap-fill: 2..5 only
    EXPECT_EQ(survivor.leasesStolen(), 1);
    EXPECT_EQ(survivor.leasesExpired(), 1);

    SweepRunner fresh;
    const std::size_t hf = fresh.add(cell);
    fresh.run();
    expectIdentical(fresh.stats(hf), survivor.stats(h));

    // The steal must stick in the store: our owner, bumped generation,
    // published done so peers stop honoring the lease.
    ASSERT_TRUE(readJsonRecords(path, records));
    const auto lit =
        std::find_if(records.begin(), records.end(),
                     [&](const JsonRecord& r) {
                         return r.name == sweepLeaseKey(fp);
                     });
    ASSERT_NE(lit, records.end());
    EXPECT_EQ(lit->text("owner"), survivor.workerId());
    EXPECT_EQ(lit->number("gen"), 4.0);
    EXPECT_EQ(lit->number("done"), 1.0);
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(Lease, LiveForeignLeaseIsStolenOnlyAfterExpiry)
{
    // A lease renewed moments ago belongs to a live peer: the claim scan
    // must wait out the lease period before stealing, bounding the
    // duplicated work a slow-but-alive straggler can suffer.
    const std::string path = "/tmp/create_test_lease_live.json";
    std::remove(path.c_str());
    SweepCell cell = campaignCells(2)[0];
    const std::string fp = sweepFingerprint(cell);
    ASSERT_TRUE(writeJsonRecords(
        path, std::vector<JsonRecord>{
                  makeLease(fp, "peer:7.1", 1, wallNowSeconds(), false)}));

    SweepRunner::Options elastic;
    elastic.storePath = path;
    elastic.leaseSeconds = 0.4;
    SweepRunner runner(elastic);
    runner.add(cell);
    const double t0 = wallNowSeconds();
    runner.run();
    const double elapsed = wallNowSeconds() - t0;

    EXPECT_EQ(runner.leasesStolen(), 1);
    EXPECT_EQ(runner.episodesExecuted(), 2);
    EXPECT_GE(elapsed, 0.35) << "stole a live lease before expiry";
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(Lease, ElasticWorkersShareExactlyOnceAndAttribute)
{
    // Worker A completes the whole campaign; worker B joining late must
    // finalize every ledger from the store without executing or stealing
    // anything. The store carries per-episode `by` attribution and done
    // leases that store-stats rolls into per-shard loads; a serial store
    // carries neither.
    const std::string path = "/tmp/create_test_lease_share.json";
    const std::string serial = "/tmp/create_test_lease_serial.json";
    std::remove(path.c_str());
    std::remove(serial.c_str());
    const auto cells = campaignCells(2);

    SweepRunner::Options elastic;
    elastic.storePath = path;
    elastic.leaseSeconds = 30.0;
    SweepRunner a(elastic);
    for (const auto& c : cells)
        a.add(c);
    a.run();
    EXPECT_EQ(a.episodesExecuted(), 3 * 2);
    EXPECT_EQ(a.leasesStolen(), 0);

    SweepRunner b(elastic);
    std::vector<std::size_t> handles;
    for (const auto& c : cells)
        handles.push_back(b.add(c));
    b.run();
    EXPECT_EQ(b.episodesExecuted(), 0);
    EXPECT_EQ(b.leasesStolen(), 0);
    SweepRunner fresh;
    for (const auto& c : cells)
        fresh.add(c);
    fresh.run();
    for (std::size_t h = 0; h < cells.size(); ++h) {
        SCOPED_TRACE(h);
        expectIdentical(fresh.stats(h), b.stats(handles[h]));
    }

    // The elastic store diffs clean against a serial store (leases and
    // `by` stamps are scheduling state, not results) and attributes
    // every episode to worker A.
    {
        SweepRunner::Options o;
        o.storePath = serial;
        SweepRunner s(o);
        for (const auto& c : cells)
            s.add(c);
        s.run();
    }
    std::vector<StoreCell> elasticCells, serialCells;
    std::string error;
    ASSERT_TRUE(loadStoreCells(path, elasticCells, error));
    ASSERT_TRUE(loadStoreCells(serial, serialCells, error));
    const StoreDiffResult res =
        diffStoreCells(elasticCells, serialCells, StoreDiffOptions{});
    EXPECT_TRUE(res.clean());
    for (const StoreCell& cell : elasticCells) {
        SCOPED_TRACE(cell.fingerprint);
        ASSERT_EQ(cell.episodeOwners.size(), 1u);
        EXPECT_EQ(cell.episodeOwners[0].first, a.workerId());
        EXPECT_EQ(cell.episodeOwners[0].second, cell.episodes);
        EXPECT_EQ(cell.leaseOwner, a.workerId());
        EXPECT_TRUE(cell.leaseDone);
    }
    for (const StoreCell& cell : serialCells) {
        EXPECT_TRUE(cell.episodeOwners.empty());
        EXPECT_TRUE(cell.leaseOwner.empty());
    }
    const StoreStatsResult stats = computeStoreStats(elasticCells);
    ASSERT_EQ(stats.shards.size(), 1u);
    EXPECT_EQ(stats.shards[0].owner, a.workerId());
    EXPECT_EQ(stats.shards[0].episodes, 3 * 2);
    EXPECT_EQ(stats.shards[0].ledgers, 3);
    EXPECT_EQ(stats.shards[0].leasesHeld, 3);
    EXPECT_TRUE(computeStoreStats(serialCells).shards.empty());

    std::remove(path.c_str());
    std::remove(serial.c_str());
    std::remove((path + ".lock").c_str());
    std::remove((serial + ".lock").c_str());
}

namespace {

/** Remove a store of either format (json file or binlog dir) + sidecar. */
void
removeStoreAnyFormat(const std::string& path)
{
    const std::string rm = "rm -rf '" + path + "' '" + path + ".lock'";
    ASSERT_EQ(std::system(rm.c_str()), 0);
}

} // namespace

TEST(Sweep, BinlogCampaignBitIdenticalToJson)
{
    // The cross-format contract: the same campaign run against a binlog
    // store folds to TaskStats bit-identical to the json run, and
    // sweep-diff's loader (format-autodetecting) certifies the stores
    // against each other with zero differences at zero tolerance.
    const std::string jsonPath = "/tmp/create_test_binlog_vs_json.json";
    const std::string blogPath = "/tmp/create_test_binlog_vs_json.blog";
    removeStoreAnyFormat(jsonPath);
    removeStoreAnyFormat(blogPath);
    const auto cells = campaignCells(3);

    SweepRunner::Options jo;
    jo.storePath = jsonPath;
    SweepRunner jr(jo);
    SweepRunner::Options bo;
    bo.storePath = blogPath;
    bo.storeFormat = StoreFormat::Binlog;
    SweepRunner br(bo);
    std::vector<std::size_t> jh, bh;
    for (const auto& c : cells) {
        jh.push_back(jr.add(c));
        bh.push_back(br.add(c));
    }
    jr.run();
    br.run();
    for (std::size_t i = 0; i < cells.size(); ++i)
        expectIdentical(jr.stats(jh[i]), br.stats(bh[i]));

    std::vector<StoreCell> a, b;
    std::string error;
    ASSERT_TRUE(loadStoreCells(jsonPath, a, error)) << error;
    ASSERT_TRUE(loadStoreCells(blogPath, b, error)) << error;
    const StoreDiffResult res = diffStoreCells(a, b, StoreDiffOptions{});
    EXPECT_TRUE(res.clean());
    EXPECT_EQ(res.compared, static_cast<int>(cells.size()));
    removeStoreAnyFormat(jsonPath);
    removeStoreAnyFormat(blogPath);
}

TEST(Sweep, ConvertedBinlogStoreResumesWithoutExecuting)
{
    // json campaign -> convert to binlog (the sweep-store migration
    // path) -> --resume from the binlog store, with NO format flag:
    // autodetection must route to the binlog backend and the ledger must
    // satisfy every cell without executing a single episode.
    const std::string jsonPath = "/tmp/create_test_convert_resume.json";
    const std::string blogPath = "/tmp/create_test_convert_resume.blog";
    removeStoreAnyFormat(jsonPath);
    removeStoreAnyFormat(blogPath);
    const auto cells = campaignCells(3);
    std::vector<TaskStats> want;
    {
        SweepRunner::Options o;
        o.storePath = jsonPath;
        SweepRunner r(o);
        std::vector<std::size_t> hs;
        for (const auto& c : cells)
            hs.push_back(r.add(c));
        r.run();
        for (const std::size_t h : hs)
            want.push_back(r.stats(h));
    }
    {
        // Convert via the backends, exactly like `sweep-store convert`.
        std::vector<JsonRecord> records;
        StoreLoadInfo info;
        const auto src = openStoreBackend(jsonPath, StoreFormat::Json, "t");
        ASSERT_TRUE(src->load(records, &info, false));
        std::map<std::string, JsonRecord> view;
        for (JsonRecord& r : records)
            view[r.name] = std::move(r);
        std::vector<JsonRecord> batch;
        for (const auto& [name, rec] : view)
            batch.push_back(rec);
        const auto dst =
            openStoreBackend(blogPath, StoreFormat::Binlog, "t");
        std::string error;
        ASSERT_TRUE(dst->flush(view, batch, &error)) << error;
    }
    SweepRunner::Options ro;
    ro.storePath = blogPath;
    ro.resume = true; // note: storeFormat left at the Json default
    SweepRunner resumed(ro);
    std::vector<std::size_t> hs;
    for (const auto& c : cells)
        hs.push_back(resumed.add(c));
    resumed.run();
    EXPECT_EQ(resumed.episodesExecuted(), 0);
    EXPECT_EQ(resumed.resumedCells(), static_cast<int>(cells.size()));
    for (std::size_t i = 0; i < cells.size(); ++i)
        expectIdentical(want[i], resumed.stats(hs[i]));
    removeStoreAnyFormat(jsonPath);
    removeStoreAnyFormat(blogPath);
}

TEST(Lease, BinlogStealsExpiredLeaseAndGapFillsExactlyOnce)
{
    // The dead-shard steal/gap-fill protocol, verbatim over the binlog
    // backend: episodes {0, 1} of 6 and a stale foreign lease live in a
    // peer's append log; the survivor must steal (generation bump),
    // execute ONLY the 4 missing episodes, and fold stats bit-identical
    // to an uninterrupted run -- while appending to its OWN log.
    const std::string path = "/tmp/create_test_binlog_lease_steal.blog";
    removeStoreAnyFormat(path);
    SweepCell cell = campaignCells(6)[0];
    const std::string fp = sweepFingerprint(cell);
    {
        // Seed the store as the dead worker would have left it.
        const std::string jsonFull = path + ".seed.json";
        removeStoreAnyFormat(jsonFull);
        SweepRunner::Options o;
        o.storePath = jsonFull;
        SweepRunner full(o);
        full.add(cell);
        full.run();
        std::vector<JsonRecord> records;
        ASSERT_TRUE(readJsonRecords(jsonFull, records));
        records.erase(
            std::remove_if(records.begin(), records.end(),
                           [&](const JsonRecord& r) {
                               return sweepEpisodeIndex(r.name) >= 2;
                           }),
            records.end());
        records.push_back(makeLease(fp, "deadhost:4242.1", 3,
                                    wallNowSeconds() - 3600, false));
        const auto dead =
            openStoreBackend(path, StoreFormat::Binlog, "deadhost-4242-1");
        std::map<std::string, JsonRecord> view;
        for (const JsonRecord& r : records)
            view[r.name] = r;
        std::string error;
        ASSERT_TRUE(dead->flush(view, records, &error)) << error;
        removeStoreAnyFormat(jsonFull);
    }

    SweepRunner::Options elastic;
    elastic.storePath = path;
    elastic.leaseSeconds = 5.0;
    SweepRunner survivor(elastic);
    const std::size_t h = survivor.add(cell);
    survivor.run();

    EXPECT_EQ(survivor.episodesExecuted(), 4); // gap-fill: 2..5 only
    EXPECT_EQ(survivor.leasesStolen(), 1);
    EXPECT_EQ(survivor.leasesExpired(), 1);

    SweepRunner fresh;
    const std::size_t hf = fresh.add(cell);
    fresh.run();
    expectIdentical(fresh.stats(hf), survivor.stats(h));

    // The steal must stick in the merged store view (higher generation,
    // our owner, done), and the survivor's episodes must live in its own
    // per-writer log -- the dead worker's log still has only the prefix.
    const auto be = openStoreBackend(path, StoreFormat::Json, "reader");
    ASSERT_EQ(be->format(), StoreFormat::Binlog);
    std::vector<JsonRecord> records;
    StoreLoadInfo info;
    ASSERT_TRUE(be->load(records, &info, false));
    EXPECT_EQ(info.files, 2u); // the dead worker's log + the survivor's
    const auto lit = std::find_if(records.begin(), records.end(),
                                  [&](const JsonRecord& r) {
                                      return r.name == sweepLeaseKey(fp);
                                  });
    ASSERT_NE(lit, records.end());
    EXPECT_EQ(lit->text("owner"), survivor.workerId());
    EXPECT_EQ(lit->number("gen"), 4.0);
    EXPECT_EQ(lit->number("done"), 1.0);
    std::size_t episodes = 0;
    for (const JsonRecord& r : records)
        if (sweepEpisodeIndex(r.name) >= 0)
            ++episodes;
    EXPECT_EQ(episodes, 6u);
    removeStoreAnyFormat(path);
}
