/** @file Tests for the SweepRunner campaign engine: sharded-vs-serial
 *  bit-identity across cells, cross-cell memoization, resume round trips
 *  through the JSON result store, fingerprint canonicalization, and the
 *  episode-loop regressions this PR fixed (vsInterval <= 0, executed-step
 *  billing). */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/create_system.hpp"
#include "core/manip_system.hpp"
#include "core/sweep.hpp"
#include "env/manipworld.hpp"
#include "test_util.hpp"

using namespace create;
using testutil::expectIdentical;

namespace {

/** A small mixed-platform campaign exercising injection, WR, and VS. */
std::vector<SweepCell>
campaignCells(int reps)
{
    CreateConfig mineInj = CreateConfig::uniform(5e-4);
    mineInj.anomalyDetection = true;
    CreateConfig manipAdwr = CreateConfig::atVoltage(0.72, 0.90);
    manipAdwr.anomalyDetection = true;
    manipAdwr.weightRotation = true;
    return {
        {"jarvis-1", static_cast<int>(MineTask::Wooden), mineInj, reps},
        {"jarvis-1", static_cast<int>(MineTask::Stone),
         CreateConfig::clean(), reps},
        {"openvla+octo", static_cast<int>(ManipTask::Wine), manipAdwr,
         reps},
    };
}

} // namespace

TEST(Sweep, ShardedVsSerialBitIdentical)
{
    const int reps = 5;
    const auto cells = campaignCells(reps);

    SweepRunner serial(SweepRunner::Options{});
    SweepRunner sharded([] {
        SweepRunner::Options o;
        o.threads = 4;
        return o;
    }());
    for (const auto& c : cells) {
        serial.add(c);
        sharded.add(c);
    }
    serial.run();
    sharded.run();

    // Ground truth: the systems' own (serial) evaluation engine.
    MineSystem mine(false);
    ManipSystem manip("openvla", "octo", false);
    const TaskStats direct[] = {
        mine.evaluate(cells[0].taskId, cells[0].cfg, reps),
        mine.evaluate(cells[1].taskId, cells[1].cfg, reps),
        manip.evaluate(cells[2].taskId, cells[2].cfg, reps),
    };
    for (std::size_t h = 0; h < cells.size(); ++h) {
        expectIdentical(direct[h], serial.stats(h));
        expectIdentical(direct[h], sharded.stats(h));
    }
    EXPECT_EQ(serial.executedCells(), 3);
    EXPECT_EQ(sharded.executedCells(), 3);
}

TEST(Sweep, MemoizesDuplicateCells)
{
    const auto cells = campaignCells(3);
    SweepRunner sweep;
    const std::size_t a = sweep.add(cells[1]); // clean baseline ...
    const std::size_t b = sweep.add(cells[0]);
    const std::size_t c = sweep.add(cells[1]); // ... declared twice
    sweep.run();

    EXPECT_EQ(sweep.executedCells(), 2);
    EXPECT_EQ(sweep.memoizedCells(), 1);
    EXPECT_EQ(sweep.source(a), CellSource::Executed);
    EXPECT_EQ(sweep.source(b), CellSource::Executed);
    EXPECT_EQ(sweep.source(c), CellSource::Memoized);
    expectIdentical(sweep.stats(a), sweep.stats(c));
    EXPECT_EQ(&sweep.stats(a), &sweep.stats(c)); // one execution, shared
}

TEST(Sweep, ResumeRoundTripThroughStore)
{
    const std::string path = "/tmp/create_test_sweep_store.json";
    std::remove(path.c_str());
    const auto cells = campaignCells(3);

    // Partial campaign: only the first two cells reach the store.
    SweepRunner::Options withStore;
    withStore.storePath = path;
    {
        SweepRunner partial(withStore);
        partial.add(cells[0]);
        partial.add(cells[1]);
        partial.run();
    }

    // Full campaign with --resume: the stored cells load, only the new
    // cell executes, and every stat is bit-identical to a fresh run.
    SweepRunner::Options resume = withStore;
    resume.resume = true;
    SweepRunner resumed(resume);
    SweepRunner fresh;
    for (const auto& c : cells) {
        resumed.add(c);
        fresh.add(c);
    }
    resumed.run();
    fresh.run();

    EXPECT_EQ(resumed.resumedCells(), 2);
    EXPECT_EQ(resumed.executedCells(), 1);
    for (std::size_t h = 0; h < cells.size(); ++h) {
        SCOPED_TRACE(h);
        expectIdentical(fresh.stats(h), resumed.stats(h));
        EXPECT_EQ(resumed.source(h), h < 2 ? CellSource::Resumed
                                           : CellSource::Executed);
    }

    // A second resume over the (now complete) store executes nothing.
    SweepRunner again(resume);
    for (const auto& c : cells)
        again.add(c);
    again.run();
    EXPECT_EQ(again.executedCells(), 0);
    EXPECT_EQ(again.resumedCells(), 3);

    // Resumed cells re-derive their per-episode results on demand,
    // bit-identical to the executed ones.
    const auto& fromStore = again.episodes(0);
    const auto& executed = fresh.episodes(0);
    ASSERT_EQ(fromStore.size(), executed.size());
    for (std::size_t i = 0; i < executed.size(); ++i)
        expectIdentical(executed[i], fromStore[i]);

    std::remove(path.c_str());
}

TEST(Sweep, SharedStoreIsNotClobberedAcrossCampaigns)
{
    // Two campaigns writing to one store (the second without --resume)
    // must both leave their records behind: a flush merges, not replaces.
    const std::string path = "/tmp/create_test_sweep_shared.json";
    std::remove(path.c_str());
    const auto cells = campaignCells(2);
    SweepRunner::Options withStore;
    withStore.storePath = path;
    {
        SweepRunner a(withStore);
        a.add(cells[0]);
        a.run();
    }
    {
        SweepRunner b(withStore); // no resume: must still preserve A's cell
        b.add(cells[1]);
        b.run();
    }
    SweepRunner::Options resume = withStore;
    resume.resume = true;
    SweepRunner c(resume);
    c.add(cells[0]);
    c.add(cells[1]);
    c.run();
    EXPECT_EQ(c.executedCells(), 0);
    EXPECT_EQ(c.resumedCells(), 2);
    std::remove(path.c_str());
}

TEST(Sweep, PhasedCampaignExecutesOnlyNewCells)
{
    // fig16 pattern: a first phase's results decide what the second
    // phase declares; the second run() must not re-execute phase 1.
    const auto cells = campaignCells(3);
    SweepRunner sweep;
    const std::size_t a = sweep.add(cells[0]);
    sweep.run();
    EXPECT_EQ(sweep.executedCells(), 1);
    const TaskStats phase1 = sweep.stats(a);

    const std::size_t b = sweep.add(cells[1]);
    const std::size_t dup = sweep.add(cells[0]); // memoizes across phases
    sweep.run();
    EXPECT_EQ(sweep.executedCells(), 2);
    EXPECT_EQ(sweep.memoizedCells(), 1);
    expectIdentical(phase1, sweep.stats(a)); // phase 1 result untouched
    expectIdentical(phase1, sweep.stats(dup));
    MineSystem mine(false);
    expectIdentical(mine.evaluate(cells[1].taskId, cells[1].cfg, 3),
                    sweep.stats(b));
}

TEST(Sweep, EpisodesMatchAggregateOrdering)
{
    SweepRunner sweep;
    const auto cells = campaignCells(4);
    const std::size_t h = sweep.add(cells[0]);
    sweep.run();
    const auto& eps = sweep.episodes(h);
    ASSERT_EQ(eps.size(), 4u);
    MineSystem mine(false);
    expectIdentical(sweep.stats(h),
                    aggregate(mine.runEpisodes(cells[0].taskId, cells[0].cfg,
                                               4, cells[0].seed0),
                              mine.energyModel()));
}

TEST(Sweep, FingerprintCanonicalization)
{
    SweepCell a{"jarvis-1", 0, CreateConfig::clean(), 6};

    // The VS policy (and its display name) cannot affect execution while
    // voltageScaling is off.
    SweepCell b = a;
    b.cfg.policy = EntropyVoltagePolicy::preset('C');
    b.cfg.vsInterval = 17;
    EXPECT_EQ(sweepFingerprint(a), sweepFingerprint(b));

    // BER fields cannot matter without injection.
    SweepCell c = a;
    c.cfg.uniformBer = 0.5;
    c.cfg.injectPlanner = false;
    EXPECT_EQ(sweepFingerprint(a), sweepFingerprint(c));

    // With VS on, equal-valued policies match across display names ...
    SweepCell d = a, e = a;
    d.cfg.voltageScaling = true;
    e.cfg.voltageScaling = true;
    d.cfg.policy = EntropyVoltagePolicy::preset('C');
    e.cfg.policy = EntropyVoltagePolicy(d.cfg.policy.thresholds(),
                                        d.cfg.policy.voltages(), "renamed");
    EXPECT_EQ(sweepFingerprint(d), sweepFingerprint(e));
    // ... and differing voltages do not.
    e.cfg.policy = EntropyVoltagePolicy::preset('D');
    EXPECT_NE(sweepFingerprint(d), sweepFingerprint(e));
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(d));

    // Execution-relevant knobs all split the key.
    SweepCell f = a;
    f.reps = 7;
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(f));
    SweepCell g = a;
    g.seed0 = 4242;
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(g));
    SweepCell h = a;
    h.cfg = CreateConfig::uniform(1e-3);
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(h));
    SweepCell i = a;
    i.platform = "openvla+octo";
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(i));
}

TEST(Sweep, RejectsUnknownPlatformAndBadReps)
{
    SweepRunner sweep;
    EXPECT_THROW(sweep.add({"no-such-platform", 0, CreateConfig::clean(), 1}),
                 std::invalid_argument);
    EXPECT_THROW(sweep.add({"jarvis-1", 0, CreateConfig::clean(), 0}),
                 std::invalid_argument);
}

// --- episode-loop regressions this PR fixed ------------------------------

TEST(EpisodeLoop, VsIntervalNonPositiveDisablesPredictor)
{
    // vsInterval <= 0 used to hit `steps % 0` (UB) on the decoded-plan
    // platforms; it now disables the predictor/LDO updates, matching the
    // Mine path's VoltageScaler guard.
    ManipSystem sys("openvla", "octo", false);
    for (const int interval : {0, -3}) {
        CreateConfig cfg = CreateConfig::fullCreate(
            0.72, EntropyVoltagePolicy::preset('E'), interval);
        sys.prepare(cfg);
        const auto r = sys.runEpisode(ManipTask::Wine, 77, cfg);
        EXPECT_EQ(r.predictorInvocations, 0) << "interval " << interval;
    }
    // Sanity: a positive interval does run the predictor.
    CreateConfig on = CreateConfig::fullCreate(
        0.72, EntropyVoltagePolicy::preset('E'), 5);
    sys.prepare(on);
    EXPECT_GT(sys.runEpisode(ManipTask::Wine, 77, on).predictorInvocations,
              0);
}

TEST(EpisodeLoop, FailedEpisodesBillExecutedSteps)
{
    // A corrupted planner can decode a plan that exhausts long before the
    // step cap; such failures used to bill the full kStepCap controller
    // steps into the energy model. They now bill what actually ran.
    ManipSystem sys("openvla", "octo", false);
    CreateConfig cfg = CreateConfig::uniform(1e-2);
    cfg.injectController = false;
    sys.prepare(cfg);
    int failures = 0, earlyExhaust = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const auto r = sys.runEpisode(ManipTask::Wine, seed, cfg);
        EXPECT_LE(r.steps, ManipWorld::kStepCap);
        if (!r.success) {
            ++failures;
            if (r.steps < ManipWorld::kStepCap)
                ++earlyExhaust;
        }
    }
    ASSERT_GT(failures, 0) << "stressor too mild to exercise the fix";
    EXPECT_GT(earlyExhaust, 0)
        << "no failed episode exhausted its plan early; every failure "
           "billed the cap, which is what the old accounting always did";
}
