/**
 * @file
 * Property tests for the CREATE techniques that hold for *any* weights
 * (no trained models needed): weight-rotation exactness across
 * architectures, outlier-planting structure, protection-scheme energy
 * accounting, and error-model equivalences.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rotation.hpp"
#include "fault/error_model.hpp"
#include "hw/faulty_gemm.hpp"
#include "tensor/ops.hpp"

using namespace create;

namespace {

PlannerConfig
tinyConfig(int dim, int layers, float outlierScale)
{
    PlannerConfig cfg;
    cfg.name = "tiny";
    cfg.dim = dim;
    cfg.mlpDim = dim * 3;
    cfg.layers = layers;
    cfg.heads = 4;
    cfg.numTasks = 5;
    cfg.maxDone = 4;
    cfg.maxPlanLen = 6;
    cfg.planVocab = 8;
    cfg.outlierScale = outlierScale;
    cfg.outlierChannels = 3;
    return cfg;
}

} // namespace

/** Rotation must preserve the clean function for any architecture/init. */
class RotationExactness
    : public ::testing::TestWithParam<std::tuple<int, int, float>>
{
};

TEST_P(RotationExactness, CleanLogitsUnchanged)
{
    const auto [dim, layers, scale] = GetParam();
    Rng rng(static_cast<std::uint64_t>(dim * 131 + layers));
    PlannerModel m(tinyConfig(dim, layers, scale), rng);
    // Give the norm gains non-trivial values so folding is exercised.
    for (int l = 0; l < layers; ++l) {
        auto& blk = m.block(l);
        for (std::int64_t j = 0; j < dim; ++j) {
            blk.norm1().gain()[j] = 0.5f + 0.05f * static_cast<float>(j % 7);
            blk.norm2().gain()[j] = 1.5f - 0.04f * static_cast<float>(j % 5);
        }
    }
    ComputeContext c1(1), c2(2);
    c1.calibrating = c2.calibrating = true;
    std::vector<Tensor> before;
    for (int t = 0; t < 5; ++t)
        before.push_back(m.inferLogits(t, 0, c1));
    applyWeightRotation(m);
    for (int t = 0; t < 5; ++t) {
        const Tensor after = m.inferLogits(t, 0, c2);
        const float scaleRef = std::max(1.0f, before[static_cast<std::size_t>(t)].absMax());
        EXPECT_LT(ops::maxAbsDiff(before[static_cast<std::size_t>(t)], after),
                  2e-3f * scaleRef)
            << "dim=" << dim << " layers=" << layers;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, RotationExactness,
    ::testing::Values(std::make_tuple(16, 1, 1.0f),
                      std::make_tuple(16, 2, 8.0f),
                      std::make_tuple(32, 2, 12.0f),
                      std::make_tuple(64, 1, 12.0f),
                      std::make_tuple(64, 3, 6.0f)));

TEST(RotationProps, RejectsNonPowerOfTwoDim)
{
    Rng rng(1);
    PlannerConfig cfg = tinyConfig(16, 1, 1.0f);
    cfg.dim = 24;
    EXPECT_THROW(PlannerModel(cfg, rng), std::invalid_argument);
}

TEST(OutlierPlanting, StructuralOnPreNormComponents)
{
    Rng rng(3);
    PlannerModel m(tinyConfig(32, 2, 10.0f), rng);
    for (int l = 0; l < 2; ++l) {
        EXPECT_TRUE(m.block(l).attn().o().hasOutChannelScale());
        EXPECT_TRUE(m.block(l).down().hasOutChannelScale());
        EXPECT_FALSE(m.block(l).attn().k().hasOutChannelScale());
        // The planted channels carry the configured scale.
        EXPECT_FLOAT_EQ(m.block(l).attn().o().outChannelScale()[7], 10.0f);
    }
}

TEST(OutlierPlanting, InflatesCalibratedRangesOfPreNormOutputs)
{
    Rng rng(4);
    PlannerModel m(tinyConfig(32, 1, 12.0f), rng);
    ComputeContext ctx(4);
    ctx.calibrating = true;
    for (int t = 0; t < 5; ++t)
        m.inferLogits(t, 0, ctx);
    const float oMax = m.block(0).attn().o().quantState().outObs.absMax();
    const float kMax = m.block(0).attn().k().quantState().outObs.absMax();
    EXPECT_GT(oMax, 2.0f * kMax);
}

TEST(ProtectionAccounting, AbftChargesChecksumEvenWhenClean)
{
    Rng rng(5);
    Tensor x({4, 8}), w({8, 4});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.normal());
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.normal());
    ComputeContext ctx(5);
    ctx.protection = Protection::Abft;
    QuantGemmState st;
    ctx.calibrating = true;
    faultyLinear(x, w, nullptr, st, ctx, "t");
    ctx.calibrating = false;
    faultyLinear(x, w, nullptr, st, ctx, "t");
    // One GEMM (4*8*4) + one checksum pass ((4+4)*8).
    EXPECT_DOUBLE_EQ(ctx.meter.usage(Domain::Other).macs,
                     4.0 * 8 * 4 + (4 + 4) * 8);
}

TEST(ProtectionAccounting, ThunderVoltChargesBypassOverhead)
{
    Rng rng(6);
    Tensor x({4, 8}), w({8, 4});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.normal());
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.normal());
    ComputeContext ctx(6);
    ctx.protection = Protection::ThunderVolt;
    QuantGemmState st;
    ctx.calibrating = true;
    faultyLinear(x, w, nullptr, st, ctx, "t");
    ctx.calibrating = false;
    faultyLinear(x, w, nullptr, st, ctx, "t");
    EXPECT_DOUBLE_EQ(ctx.meter.usage(Domain::Other).macs,
                     4.0 * 8 * 4 * 1.05);
}

TEST(ErrorModelProps, UniformAndTimingAgreeOnMeanRate)
{
    for (double v : {0.85, 0.75, 0.65}) {
        const TimingErrorModel tm(v);
        const UniformErrorModel um(tm.meanBitRate());
        EXPECT_NEAR(um.meanBitRate(), tm.meanBitRate(),
                    tm.meanBitRate() * 1e-9);
    }
}

TEST(ErrorModelProps, RatesAreProbabilities)
{
    for (double v = 0.60; v <= 0.901; v += 0.01) {
        const TimingErrorModel tm(v);
        for (int b = 0; b < kAccumulatorBits; ++b) {
            EXPECT_GE(tm.bitRate(b), 0.0);
            EXPECT_LE(tm.bitRate(b), 0.75); // activity cap
        }
    }
}

TEST(HadamardProps, RotationReducesPlannedOutlierAbsmax)
{
    // A vector with planted outliers has a much smaller absmax after the
    // orthogonal rotation -- the WR mechanism in one line.
    const int d = 64;
    Rng rng(7);
    Tensor x({1, d});
    for (int i = 0; i < d; ++i)
        x[i] = static_cast<float>(rng.normal());
    for (int i = 0; i < 4; ++i)
        x[(7 + i * 13) % d] *= 12.0f;
    const Tensor h = ops::hadamard(d);
    const Tensor y = ops::matmul(x, h);
    EXPECT_LT(y.absMax(), 0.5f * x.absMax());
}
