/**
 * @file
 * CTest fixture setup: train-or-load every model the test suites and the
 * parallel evaluator touch, so the deterministic on-disk cache is fully
 * populated before `ctest -j` fans the suites out across processes (two
 * processes training the same model would race on the cache file).
 *
 * The platform list is not hard-coded: every platform in the
 * PlatformRegistry is constructed and asked to prepare() the full CREATE
 * configuration, which builds the rotated planner and the entropy
 * predictor each stack lazily caches. Registering a new platform
 * automatically warms it here.
 */

#include <cstdio>

#include "core/platform_registry.hpp"
#include "models/model_zoo.hpp"

int
main()
{
    using namespace create;
    CreateConfig warmCfg;
    warmCfg.weightRotation = true; // build + calibrate the rotated planner
    warmCfg.voltageScaling = true; // train/load the entropy predictor

    for (const auto& info : PlatformRegistry::instance().all()) {
        std::printf("[warm] %s stack...\n", info.name.c_str());
        auto sys = info.factory(/*verbose=*/true);
        sys->prepare(warmCfg);
    }

    std::printf("[warm] model cache ready at %s\n",
                ModelZoo::assetsDir().c_str());
    return 0;
}
