/**
 * @file
 * CTest fixture setup: train-or-load every model the test suites and the
 * parallel evaluator touch, so the deterministic on-disk cache is fully
 * populated before `ctest -j` fans the suites out across processes (two
 * processes training the same model would race on the cache file).
 */

#include <cstdio>

#include "core/create_system.hpp"
#include "core/manip_system.hpp"

int
main()
{
    using namespace create;
    std::printf("[warm] minecraft stack...\n");
    MineSystem mine(/*verbose=*/true);
    mine.planner(/*rotated=*/true);

    std::printf("[warm] openvla+octo stack...\n");
    ManipSystem libero("openvla", "octo", /*verbose=*/true);
    libero.planner(/*rotated=*/true);
    libero.predictor();

    std::printf("[warm] roboflamingo+rt1 stack...\n");
    ManipSystem calvin("roboflamingo", "rt1", /*verbose=*/true);
    calvin.planner(/*rotated=*/true);
    calvin.predictor();

    std::printf("[warm] model cache ready at %s\n",
                ModelZoo::assetsDir().c_str());
    return 0;
}
