/** @file Numerical gradient checks for every autograd op. */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/autograd.hpp"
#include "tensor/ops.hpp"

using namespace create;
using nn::Var;

namespace {

Tensor
randomTensor(std::vector<std::int64_t> shape, Rng& rng, float scale = 1.0f)
{
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.normal()) * scale;
    return t;
}

/**
 * Check autograd gradient of a scalar-valued function against central
 * finite differences over every input coordinate.
 */
void
checkGrad(const std::function<Var(Var&)>& f, const Tensor& x0,
          float tol = 3e-2f)
{
    Var x(x0, /*requiresGrad=*/true);
    Var loss = f(x);
    ASSERT_EQ(loss.value().numel(), 1);
    loss.backward();
    const Tensor grad = x.grad();
    const float eps = 1e-2f;
    for (std::int64_t i = 0; i < x0.numel(); ++i) {
        Tensor xp = x0, xm = x0;
        xp[i] += eps;
        xm[i] -= eps;
        Var vp(xp), vm(xm);
        const float lp = f(vp).value()[0];
        const float lm = f(vm).value()[0];
        const float num = (lp - lm) / (2.0f * eps);
        EXPECT_NEAR(grad[i], num,
                    tol * std::max(1.0f, std::fabs(num)))
            << "coordinate " << i;
    }
}

/** Scalar reducer: mean square of all entries (exercises mseLoss too). */
Var
reduce(const Var& y)
{
    return nn::mseLoss(y, Tensor(y.value().shape()));
}

} // namespace

TEST(AutogradLoss, MseAnalyticGradient)
{
    Tensor x0({3}, {1.0f, -2.0f, 0.5f});
    Tensor target({3}, {0.0f, 1.0f, 0.0f});
    Var x(x0, true);
    Var loss = nn::mseLoss(x, target);
    loss.backward();
    // d/dx mean((x-t)^2) = 2(x-t)/n
    EXPECT_NEAR(x.grad()[0], 2.0f * 1.0f / 3.0f, 1e-5);
    EXPECT_NEAR(x.grad()[1], 2.0f * -3.0f / 3.0f, 1e-5);
    EXPECT_NEAR(x.grad()[2], 2.0f * 0.5f / 3.0f, 1e-5);
}

TEST(AutogradLoss, CrossEntropyAnalyticGradient)
{
    Tensor x0({1, 3}, {1.0f, 2.0f, 0.5f});
    Var x(x0, true);
    Var loss = nn::crossEntropy(x, {1});
    loss.backward();
    const auto p = ops::softmax({1.0f, 2.0f, 0.5f});
    EXPECT_NEAR(x.grad()[0], p[0], 1e-5);
    EXPECT_NEAR(x.grad()[1], p[1] - 1.0f, 1e-5);
    EXPECT_NEAR(x.grad()[2], p[2], 1e-5);
    EXPECT_NEAR(loss.value()[0], -std::log(p[1]), 1e-5);
}

TEST(AutogradOps, Matmul)
{
    Rng rng(1);
    const Tensor w = randomTensor({4, 3}, rng);
    checkGrad([&](Var& x) { return reduce(nn::matmul(x, Var(w))); },
              randomTensor({2, 4}, rng));
}

TEST(AutogradOps, MatmulRightOperand)
{
    Rng rng(2);
    const Tensor a = randomTensor({3, 4}, rng);
    checkGrad([&](Var& x) { return reduce(nn::matmul(Var(a), x)); },
              randomTensor({4, 2}, rng));
}

TEST(AutogradOps, Add)
{
    Rng rng(3);
    const Tensor b = randomTensor({2, 3}, rng);
    checkGrad([&](Var& x) { return reduce(nn::add(x, Var(b))); },
              randomTensor({2, 3}, rng));
}

TEST(AutogradOps, AddBias)
{
    Rng rng(4);
    const Tensor a = randomTensor({3, 4}, rng);
    checkGrad([&](Var& x) { return reduce(nn::addBias(Var(a), x)); },
              randomTensor({4}, rng));
}

TEST(AutogradOps, Mul)
{
    Rng rng(5);
    const Tensor b = randomTensor({2, 3}, rng);
    checkGrad([&](Var& x) { return reduce(nn::mul(x, Var(b))); },
              randomTensor({2, 3}, rng));
}

TEST(AutogradOps, MulRowConst)
{
    Rng rng(6);
    Tensor c({3}, {2.0f, -1.0f, 0.5f});
    checkGrad([&](Var& x) { return reduce(nn::mulRowConst(x, c)); },
              randomTensor({2, 3}, rng));
}

TEST(AutogradOps, Scale)
{
    Rng rng(7);
    checkGrad([&](Var& x) { return reduce(nn::scale(x, -2.5f)); },
              randomTensor({2, 3}, rng));
}

TEST(AutogradOps, Relu)
{
    Rng rng(8);
    Tensor x0 = randomTensor({2, 4}, rng);
    for (std::int64_t i = 0; i < x0.numel(); ++i)
        if (std::fabs(x0[i]) < 0.1f)
            x0[i] = 0.5f; // keep away from the kink
    checkGrad([&](Var& x) { return reduce(nn::relu(x)); }, x0);
}

TEST(AutogradOps, Silu)
{
    Rng rng(9);
    checkGrad([&](Var& x) { return reduce(nn::silu(x)); },
              randomTensor({2, 4}, rng));
}

TEST(AutogradOps, SoftmaxRows)
{
    Rng rng(10);
    const Tensor t = randomTensor({2, 4}, rng);
    checkGrad(
        [&](Var& x) {
            return nn::mseLoss(nn::softmaxRows(x), t);
        },
        randomTensor({2, 4}, rng));
}

TEST(AutogradOps, RmsNormInput)
{
    Rng rng(11);
    const Tensor gamma = randomTensor({4}, rng);
    checkGrad([&](Var& x) { return reduce(nn::rmsNorm(x, Var(gamma))); },
              randomTensor({3, 4}, rng));
}

TEST(AutogradOps, RmsNormGain)
{
    Rng rng(12);
    const Tensor xin = randomTensor({3, 4}, rng);
    checkGrad([&](Var& g) { return reduce(nn::rmsNorm(Var(xin), g)); },
              randomTensor({4}, rng));
}

TEST(AutogradOps, LayerNormInput)
{
    Rng rng(13);
    const Tensor gamma = randomTensor({4}, rng);
    const Tensor beta = randomTensor({4}, rng);
    checkGrad(
        [&](Var& x) {
            return reduce(nn::layerNorm(x, Var(gamma), Var(beta)));
        },
        randomTensor({3, 4}, rng), 5e-2f);
}

TEST(AutogradOps, LayerNormGainAndBias)
{
    Rng rng(14);
    const Tensor xin = randomTensor({3, 4}, rng);
    const Tensor beta = randomTensor({4}, rng);
    checkGrad(
        [&](Var& g) {
            return reduce(nn::layerNorm(Var(xin), g, Var(beta)));
        },
        randomTensor({4}, rng));
    const Tensor gamma = randomTensor({4}, rng);
    checkGrad(
        [&](Var& b) {
            return reduce(nn::layerNorm(Var(xin), Var(gamma), b));
        },
        randomTensor({4}, rng));
}

TEST(AutogradOps, Embedding)
{
    Rng rng(15);
    checkGrad(
        [&](Var& table) {
            return reduce(nn::embedding(table, {0, 2, 2}));
        },
        randomTensor({3, 4}, rng));
}

TEST(AutogradOps, Transpose)
{
    Rng rng(16);
    checkGrad([&](Var& x) { return reduce(nn::transpose(x)); },
              randomTensor({2, 3}, rng));
}

TEST(AutogradOps, SliceColsAndRows)
{
    Rng rng(17);
    checkGrad([&](Var& x) { return reduce(nn::sliceCols(x, 1, 3)); },
              randomTensor({3, 4}, rng));
    checkGrad([&](Var& x) { return reduce(nn::sliceRows(x, 0, 2)); },
              randomTensor({3, 4}, rng));
}

TEST(AutogradOps, Concat)
{
    Rng rng(18);
    const Tensor other = randomTensor({2, 3}, rng);
    checkGrad(
        [&](Var& x) {
            return reduce(nn::concatCols({x, Var(other)}));
        },
        randomTensor({2, 2}, rng));
    const Tensor other2 = randomTensor({1, 3}, rng);
    checkGrad(
        [&](Var& x) {
            return reduce(nn::concatRows({Var(other2), x}));
        },
        randomTensor({2, 3}, rng));
}

TEST(AutogradOps, Reshape)
{
    Rng rng(19);
    checkGrad([&](Var& x) { return reduce(nn::reshape(x, {3, 2})); },
              randomTensor({2, 3}, rng));
}

TEST(AutogradOps, Conv2dInput)
{
    Rng rng(20);
    const Tensor w = randomTensor({2 * 9, 3}, rng, 0.5f);
    const Tensor b = randomTensor({3}, rng);
    checkGrad(
        [&](Var& x) {
            return reduce(nn::conv2d(x, Var(w), Var(b), 3, 1, 1));
        },
        randomTensor({2, 2, 4, 4}, rng), 5e-2f);
}

TEST(AutogradOps, Conv2dWeightAndBias)
{
    Rng rng(21);
    const Tensor x = randomTensor({1, 2, 4, 4}, rng);
    const Tensor b = randomTensor({3}, rng);
    checkGrad(
        [&](Var& w) {
            return reduce(nn::conv2d(Var(x), w, Var(b), 3, 2, 1));
        },
        randomTensor({2 * 9, 3}, rng, 0.5f), 5e-2f);
    const Tensor w = randomTensor({2 * 9, 3}, rng, 0.5f);
    checkGrad(
        [&](Var& bias) {
            return reduce(nn::conv2d(Var(x), Var(w), bias, 3, 2, 1));
        },
        randomTensor({3}, rng));
}

TEST(AutogradOps, MaxPool2d)
{
    Rng rng(22);
    // Perturbations must not cross argmax boundaries: spread values out.
    Tensor x0({1, 2, 4, 4});
    for (std::int64_t i = 0; i < x0.numel(); ++i)
        x0[i] = static_cast<float>(i % 7) + 0.3f * static_cast<float>(i);
    checkGrad([&](Var& x) { return reduce(nn::maxPool2d(x)); }, x0);
}

TEST(AutogradOps, GlobalAvgPool)
{
    Rng rng(23);
    checkGrad([&](Var& x) { return reduce(nn::globalAvgPool(x)); },
              randomTensor({2, 3, 4, 4}, rng));
}

TEST(AutogradOps, MeanRows)
{
    Rng rng(24);
    checkGrad([&](Var& x) { return reduce(nn::meanRows(x)); },
              randomTensor({3, 4}, rng));
}

TEST(AutogradOps, CrossEntropyNumeric)
{
    Rng rng(25);
    checkGrad([&](Var& x) { return nn::crossEntropy(x, {2, 0}); },
              randomTensor({2, 4}, rng));
}

TEST(Autograd, BackwardRequiresScalar)
{
    Var v(Tensor({2}), true);
    EXPECT_THROW(v.backward(), std::logic_error);
}

TEST(Autograd, GradAccumulatesAcrossReuse)
{
    // y = x + x => dy/dx = 2.
    Tensor x0({1}, {3.0f});
    Var x(x0, true);
    Var y = nn::add(x, x);
    Var loss = nn::mseLoss(y, Tensor({1}));
    loss.backward();
    // d/dx (2x)^2 = 8x = 24.
    EXPECT_NEAR(x.grad()[0], 24.0f, 1e-4);
}
