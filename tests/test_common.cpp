/** @file Tests for serialization, table printing, CLI parsing. */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/chaos.hpp"
#include "common/cli.hpp"
#include "common/io_retry.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"

using namespace create;

TEST(BlobArchive, PutGetRoundTrip)
{
    BlobArchive ar;
    ar.put("a.weight", {2, 3}, {1, 2, 3, 4, 5, 6});
    EXPECT_TRUE(ar.has("a.weight"));
    EXPECT_FALSE(ar.has("missing"));
    const auto& blob = ar.get("a.weight");
    EXPECT_EQ(blob.dims.size(), 2u);
    EXPECT_EQ(blob.data[5], 6.0f);
    EXPECT_THROW(ar.get("missing"), std::out_of_range);
}

TEST(BlobArchive, RejectsMismatchedDims)
{
    BlobArchive ar;
    EXPECT_THROW(ar.put("x", {2, 2}, {1.0f}), std::invalid_argument);
}

TEST(BlobArchive, DiskRoundTrip)
{
    const std::string path = "/tmp/create_test_archive.bin";
    {
        BlobArchive ar;
        ar.put("m.w", {2, 2}, {1, 2, 3, 4});
        ar.put("m.b", {2}, {-1, -2});
        ASSERT_TRUE(ar.save(path));
    }
    BlobArchive loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.get("m.w").data[3], 4.0f);
    EXPECT_EQ(loaded.get("m.b").dims[0], 2u);
    std::remove(path.c_str());
}

TEST(BlobArchive, LoadFailsOnMissingFile)
{
    BlobArchive ar;
    EXPECT_FALSE(ar.load("/tmp/definitely_not_here_12345.bin"));
}

TEST(BlobArchive, LoadFailsOnCorruptMagic)
{
    const std::string path = "/tmp/create_test_corrupt.bin";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
    BlobArchive ar;
    EXPECT_FALSE(ar.load(path));
    std::remove(path.c_str());
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.4235, 1), "42.4%");
}

TEST(Table, CsvOutput)
{
    Table t("test");
    t.header({"a", "b"});
    t.row({"1", "2"});
    const std::string path = "/tmp/create_test_table.csv";
    t.writeCsv(path);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    EXPECT_STREQ(buf, "a,b\n1,2\n");
    std::remove(path.c_str());
}

TEST(Cli, ParsesSpaceAndEqualsForms)
{
    const char* argv[] = {"prog", "--reps", "50", "--task=stone", "--fast"};
    Cli cli(5, const_cast<char**>(argv));
    EXPECT_EQ(cli.integer("reps", 1), 50);
    EXPECT_EQ(cli.str("task", "x"), "stone");
    EXPECT_TRUE(cli.flag("fast"));
    EXPECT_FALSE(cli.flag("other"));
    EXPECT_EQ(cli.integer("missing", 7), 7);
    EXPECT_DOUBLE_EQ(cli.real("missing", 0.5), 0.5);
}

TEST(Cli, FlagFalseValues)
{
    const char* argv[] = {"prog", "--fast=0"};
    Cli cli(2, const_cast<char**>(argv));
    EXPECT_FALSE(cli.flag("fast", true));
}

TEST(Cli, FlagAcceptsBooleanWords)
{
    const char* argv[] = {"prog", "--a=true", "--b=false", "--c=yes",
                          "--d=no", "--e=on", "--f=off"};
    Cli cli(7, const_cast<char**>(argv));
    EXPECT_TRUE(cli.flag("a"));
    EXPECT_FALSE(cli.flag("b", true));
    EXPECT_TRUE(cli.flag("c"));
    EXPECT_FALSE(cli.flag("d", true));
    EXPECT_TRUE(cli.flag("e"));
    EXPECT_FALSE(cli.flag("f", true));
}

TEST(Cli, RejectsUnparsableNumerics)
{
    // `--reps=abc` used to strtoll to 0 silently and zero out a whole
    // sweep; malformed values are now a diagnostic.
    const char* argv[] = {"prog", "--reps=abc", "--frac=0.5x", "--n=12abc",
                          "--fast=maybe", "--empty="};
    Cli cli(6, const_cast<char**>(argv));
    cli.setThrowOnError(true);
    EXPECT_THROW(cli.integer("reps", 1), std::invalid_argument);
    EXPECT_THROW(cli.real("frac", 0.0), std::invalid_argument);
    EXPECT_THROW(cli.integer("n", 1), std::invalid_argument);
    EXPECT_THROW(cli.real("n", 1.0), std::invalid_argument); // nor a real
    EXPECT_THROW(cli.flag("fast"), std::invalid_argument);
    EXPECT_THROW(cli.integer("empty", 1), std::invalid_argument);
    // Missing flags still fall back to their defaults.
    EXPECT_EQ(cli.integer("absent", 9), 9);
}

TEST(Cli, RejectsOutOfRangeNumerics)
{
    // strtoll saturates (LLONG_MAX + errno=ERANGE) on overflow; without
    // the errno check `--reps=99999999999999999999` silently became a
    // huge (or, after narrowing, negative) rep count.
    const char* argv[] = {"prog", "--reps=99999999999999999999",
                          "--ber=1e999"};
    Cli cli(3, const_cast<char**>(argv));
    cli.setThrowOnError(true);
    EXPECT_THROW(cli.integer("reps", 1), std::invalid_argument);
    EXPECT_THROW(cli.real("ber", 0.0), std::invalid_argument);
}

TEST(Cli, ParsesValidNumerics)
{
    const char* argv[] = {"prog", "--reps", "50", "--ber=1e-4",
                          "--offset=-3"};
    Cli cli(5, const_cast<char**>(argv));
    cli.setThrowOnError(true);
    EXPECT_EQ(cli.integer("reps", 1), 50);
    EXPECT_DOUBLE_EQ(cli.real("ber", 0.0), 1e-4);
    EXPECT_EQ(cli.integer("offset", 0), -3);
}

TEST(JsonRecords, RoundTripIsBitExact)
{
    const std::string path = "/tmp/create_test_records.json";
    std::vector<JsonRecord> records(2);
    records[0].name = "cell/one";
    records[0].strings = {{"platform", "jarvis-1"}, {"label", "a \"b\" \\c"}};
    records[0].numbers = {{"successRate", 1.0 / 3.0},
                          {"avgComputeJ", 0.72907653395061733},
                          {"negative", -1e-17}};
    records[1].name = "cell/two";
    records[1].numbers = {{"episodes", 120}};
    ASSERT_TRUE(writeJsonRecords(path, records));

    std::vector<JsonRecord> loaded;
    ASSERT_TRUE(readJsonRecords(path, loaded));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].name, "cell/one");
    EXPECT_EQ(loaded[0].text("platform"), "jarvis-1");
    EXPECT_EQ(loaded[0].text("label"), "a \"b\" \\c");
    // %.17g round-trips every double bit-exactly (--resume depends on it).
    EXPECT_EQ(loaded[0].number("successRate"), 1.0 / 3.0);
    EXPECT_EQ(loaded[0].number("avgComputeJ"), 0.72907653395061733);
    EXPECT_EQ(loaded[0].number("negative"), -1e-17);
    EXPECT_EQ(loaded[1].number("episodes"), 120.0);
    EXPECT_EQ(loaded[1].text("missing", "dflt"), "dflt");
    std::remove(path.c_str());
}

TEST(JsonRecords, EmptyArrayAndMalformedInput)
{
    const std::string path = "/tmp/create_test_records_edge.json";
    ASSERT_TRUE(writeJsonRecords(path, std::vector<JsonRecord>{}));
    std::vector<JsonRecord> loaded;
    ASSERT_TRUE(readJsonRecords(path, loaded));
    EXPECT_TRUE(loaded.empty());

    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("[{\"name\": \"x\", \"broken\": }]", f);
    std::fclose(f);
    EXPECT_FALSE(readJsonRecords(path, loaded));
    EXPECT_FALSE(readJsonRecords("/tmp/definitely_not_here_9876.json",
                                 loaded));
    std::remove(path.c_str());
}

TEST(JsonRecords, SalvageRecoversPrefixAtEveryTruncationPoint)
{
    // A store torn at ANY byte offset must salvage exactly the records
    // that landed completely before the tear. The test data avoids
    // braces inside strings, so each '}' in the byte stream closes one
    // record and the expected salvage count is countable directly.
    const std::string path = "/tmp/create_test_salvage_trunc.json";
    std::vector<JsonRecord> records(4);
    for (int i = 0; i < 4; ++i) {
        records[static_cast<std::size_t>(i)].name =
            "rec/" + std::to_string(i);
        records[static_cast<std::size_t>(i)].strings = {
            {"tag", "payload-" + std::to_string(i)}};
        records[static_cast<std::size_t>(i)].numbers = {
            {"value", 0.1 + i}, {"index", static_cast<double>(i)}};
    }
    ASSERT_TRUE(writeJsonRecords(path, records));
    std::string full;
    {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            full.append(buf, n);
        std::fclose(f);
    }
    ASSERT_GT(full.size(), 0u);
    // A cut past the closing ']' only loses trailing whitespace: the
    // array is complete and salvage never engages.
    const std::size_t closed = full.rfind(']') + 1;
    ASSERT_NE(closed, std::string::npos + 1);

    for (std::size_t cut = 0; cut <= full.size(); ++cut) {
        SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                     std::to_string(full.size()) + " bytes");
        {
            std::FILE* f = std::fopen(path.c_str(), "wb");
            ASSERT_NE(f, nullptr);
            ASSERT_EQ(std::fwrite(full.data(), 1, cut, f), cut);
            std::fclose(f);
        }
        std::size_t expect = 0;
        for (std::size_t i = 0; i < cut; ++i)
            if (full[i] == '}')
                ++expect;
        std::vector<JsonRecord> out;
        JsonSalvage sal;
        ASSERT_TRUE(readJsonRecordsSalvaged(path, out, &sal));
        EXPECT_EQ(out.size(), expect);
        EXPECT_EQ(sal.salvaged, cut < closed);
        EXPECT_EQ(sal.totalBytes, cut);
        EXPECT_LE(sal.goodBytes, cut);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i].name, records[i].name);
            EXPECT_EQ(out[i].number("value"), 0.1 + static_cast<int>(i));
            EXPECT_EQ(out[i].text("tag"),
                      "payload-" + std::to_string(i));
        }
        // The strict reader refuses any truncated file outright.
        if (cut < closed)
            EXPECT_FALSE(readJsonRecords(path, out));
    }
    std::remove(path.c_str());
}

TEST(JsonRecords, QuarantinePreservesTheBadTail)
{
    // quarantineTail copies the unparseable suffix aside so the next
    // flush rewriting the store does not destroy the post-mortem
    // evidence.
    const std::string path = "/tmp/create_test_salvage_quar.json";
    std::vector<JsonRecord> records(2);
    records[0].name = "good/0";
    records[0].numbers = {{"v", 1.0}};
    records[1].name = "good/1";
    records[1].numbers = {{"v", 2.0}};
    ASSERT_TRUE(writeJsonRecords(path, records));
    const std::string tail = "{\"name\": \"torn-mid-rec";
    {
        std::FILE* f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        // Replace the closing "]\n" with a half-written record.
        std::fseek(f, size - 2, SEEK_SET);
        std::fputs(",\n", f);
        std::fputs(tail.c_str(), f);
        std::fclose(f);
    }
    std::vector<JsonRecord> out;
    JsonSalvage sal;
    ASSERT_TRUE(readJsonRecordsSalvaged(path, out, &sal));
    EXPECT_TRUE(sal.salvaged);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].number("v"), 2.0);
    ASSERT_GT(sal.totalBytes, sal.goodBytes);

    const std::string qpath = quarantineTail(path, sal.goodBytes);
    ASSERT_EQ(qpath, path + ".quarantine");
    std::string quarantined;
    {
        std::FILE* f = std::fopen(qpath.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            quarantined.append(buf, n);
        std::fclose(f);
    }
    EXPECT_EQ(quarantined.size(), sal.totalBytes - sal.goodBytes);
    EXPECT_NE(quarantined.find(tail), std::string::npos);
    // An empty tail (offset == file size) is a no-op, not an error.
    EXPECT_EQ(quarantineTail(path, sal.totalBytes), "");
    std::remove(path.c_str());
    std::remove(qpath.c_str());
}

TEST(JsonRecords, WriteFailureReportsTheFailingStep)
{
    // ENOSPC/EACCES on the flush path must surface, not vanish: the
    // campaign layer turns this into a loud abort instead of silently
    // dropping a flush batch.
    std::vector<JsonRecord> records(1);
    records[0].name = "x";
    std::string error;
    EXPECT_FALSE(writeJsonRecords(
        "/tmp/definitely_not_a_dir_3141/store.json", records, &error));
    EXPECT_NE(error.find("open"), std::string::npos);
    EXPECT_FALSE(error.empty());
}

TEST(IoRetry, RenameFailureCarriesErrnoDetail)
{
    std::string error;
    EXPECT_FALSE(io::renameRetry("/tmp/no_such_source_2718",
                                 "/tmp/no_such_dir_2718/x", &error));
    EXPECT_NE(error.find("rename"), std::string::npos);
}

TEST(Chaos, SpecParsingClampsAndIgnoresGarbage)
{
    using chaos::parseChaosSpec;
    const chaos::Config off = parseChaosSpec(nullptr);
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(parseChaosSpec("").enabled());
    EXPECT_FALSE(parseChaosSpec("bogus=1,junk,=,x=").enabled());

    const chaos::Config cfg =
        parseChaosSpec("abort=0.05,tear=0.3,renewdelay=250");
    EXPECT_TRUE(cfg.enabled());
    EXPECT_DOUBLE_EQ(cfg.abortBeforeFlush, 0.05);
    EXPECT_DOUBLE_EQ(cfg.tearWrite, 0.3);
    EXPECT_EQ(cfg.renewDelayMs, 250);

    // Probabilities clamp to [0, 1]; delays clamp to [0, 60000]; and a
    // malformed value disables that fault rather than misfiring.
    const chaos::Config clamped =
        parseChaosSpec("abort=7,tear=-3,renewdelay=999999");
    EXPECT_DOUBLE_EQ(clamped.abortBeforeFlush, 1.0);
    EXPECT_DOUBLE_EQ(clamped.tearWrite, 0.0);
    EXPECT_EQ(clamped.renewDelayMs, 60000);
    const chaos::Config bad = parseChaosSpec("abort=xyz,renewdelay=2x");
    EXPECT_FALSE(bad.enabled());
}
