/** @file Tests for serialization, table printing, CLI parsing. */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/cli.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"

using namespace create;

TEST(BlobArchive, PutGetRoundTrip)
{
    BlobArchive ar;
    ar.put("a.weight", {2, 3}, {1, 2, 3, 4, 5, 6});
    EXPECT_TRUE(ar.has("a.weight"));
    EXPECT_FALSE(ar.has("missing"));
    const auto& blob = ar.get("a.weight");
    EXPECT_EQ(blob.dims.size(), 2u);
    EXPECT_EQ(blob.data[5], 6.0f);
    EXPECT_THROW(ar.get("missing"), std::out_of_range);
}

TEST(BlobArchive, RejectsMismatchedDims)
{
    BlobArchive ar;
    EXPECT_THROW(ar.put("x", {2, 2}, {1.0f}), std::invalid_argument);
}

TEST(BlobArchive, DiskRoundTrip)
{
    const std::string path = "/tmp/create_test_archive.bin";
    {
        BlobArchive ar;
        ar.put("m.w", {2, 2}, {1, 2, 3, 4});
        ar.put("m.b", {2}, {-1, -2});
        ASSERT_TRUE(ar.save(path));
    }
    BlobArchive loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.get("m.w").data[3], 4.0f);
    EXPECT_EQ(loaded.get("m.b").dims[0], 2u);
    std::remove(path.c_str());
}

TEST(BlobArchive, LoadFailsOnMissingFile)
{
    BlobArchive ar;
    EXPECT_FALSE(ar.load("/tmp/definitely_not_here_12345.bin"));
}

TEST(BlobArchive, LoadFailsOnCorruptMagic)
{
    const std::string path = "/tmp/create_test_corrupt.bin";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
    BlobArchive ar;
    EXPECT_FALSE(ar.load(path));
    std::remove(path.c_str());
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.4235, 1), "42.4%");
}

TEST(Table, CsvOutput)
{
    Table t("test");
    t.header({"a", "b"});
    t.row({"1", "2"});
    const std::string path = "/tmp/create_test_table.csv";
    t.writeCsv(path);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    EXPECT_STREQ(buf, "a,b\n1,2\n");
    std::remove(path.c_str());
}

TEST(Cli, ParsesSpaceAndEqualsForms)
{
    const char* argv[] = {"prog", "--reps", "50", "--task=stone", "--fast"};
    Cli cli(5, const_cast<char**>(argv));
    EXPECT_EQ(cli.integer("reps", 1), 50);
    EXPECT_EQ(cli.str("task", "x"), "stone");
    EXPECT_TRUE(cli.flag("fast"));
    EXPECT_FALSE(cli.flag("other"));
    EXPECT_EQ(cli.integer("missing", 7), 7);
    EXPECT_DOUBLE_EQ(cli.real("missing", 0.5), 0.5);
}

TEST(Cli, FlagFalseValues)
{
    const char* argv[] = {"prog", "--fast=0"};
    Cli cli(2, const_cast<char**>(argv));
    EXPECT_FALSE(cli.flag("fast", true));
}
