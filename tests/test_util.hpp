#pragma once

/**
 * @file
 * Shared helpers for the test suites: bit-exact equality over the episode
 * aggregation types, used by every serial-vs-parallel determinism test so
 * a new TaskStats/EpisodeResult field only needs to be added here for all
 * suites' bit-identity coverage to pick it up.
 */

#include <gtest/gtest.h>

#include "agent/metrics.hpp"

namespace create::testutil {

/** Aggregate stats must match bit-for-bit, not approximately. */
inline void
expectIdentical(const TaskStats& a, const TaskStats& b)
{
    EXPECT_EQ(a.episodes, b.episodes);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.successRate, b.successRate);
    EXPECT_EQ(a.avgStepsSuccess, b.avgStepsSuccess);
    EXPECT_EQ(a.avgComputeJ, b.avgComputeJ);
    EXPECT_EQ(a.avgPlannerEffV, b.avgPlannerEffV);
    EXPECT_EQ(a.avgControllerEffV, b.avgControllerEffV);
    EXPECT_EQ(a.avgPlannerInvocations, b.avgPlannerInvocations);
    EXPECT_EQ(a.avgPlannerV2, b.avgPlannerV2);
    EXPECT_EQ(a.avgControllerV2, b.avgControllerV2);
}

/** Per-episode results must match bit-for-bit as well. */
inline void
expectIdentical(const EpisodeResult& a, const EpisodeResult& b)
{
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.plannerInvocations, b.plannerInvocations);
    EXPECT_EQ(a.predictorInvocations, b.predictorInvocations);
    EXPECT_EQ(a.subtasksCompleted, b.subtasksCompleted);
    EXPECT_EQ(a.plannerV2Ratio, b.plannerV2Ratio);
    EXPECT_EQ(a.controllerV2Ratio, b.controllerV2Ratio);
    EXPECT_EQ(a.plannerEffV, b.plannerEffV);
    EXPECT_EQ(a.controllerEffV, b.controllerEffV);
    EXPECT_EQ(a.bitFlips, b.bitFlips);
    EXPECT_EQ(a.anomaliesCleared, b.anomaliesCleared);
}

} // namespace create::testutil
