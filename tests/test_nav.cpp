/** @file Tests for the navigation platform family: NavWorld determinism
 *  and dynamics, the A* expert, the PlatformRegistry round-trip, NavSystem
 *  serial-vs-parallel bit-identity, and CREATE protection efficacy on nav
 *  missions at aggressive voltage. */

#include <gtest/gtest.h>

#include "core/nav_system.hpp"
#include "core/parallel_eval.hpp"
#include "core/platform_registry.hpp"
#include "env/nav_expert.hpp"
#include "test_util.hpp"

using namespace create;
using testutil::expectIdentical;

namespace {

NavSystem&
navSys()
{
    static NavSystem s("navllama", "pathrt", /*verbose=*/false);
    return s;
}

} // namespace

TEST(NavWorld, DeterministicTrajectory)
{
    // Same seed => bit-identical world layout, trajectory, and
    // observations under the deterministic expert.
    for (const auto task : {NavTask::Patrol, NavTask::Canyon}) {
        NavWorld a(task, 71);
        NavWorld b(task, 71);
        EXPECT_EQ(a.wallX(), b.wallX());
        EXPECT_EQ(a.gapY(), b.gapY());
        EXPECT_EQ(a.homeX(), b.homeX());
        int steps = 0;
        for (const auto st : navGoldPlan(task)) {
            a.setActiveSubtask(st);
            b.setActiveSubtask(st);
            while (!a.subtaskComplete() && steps < NavWorld::kStepCap) {
                const NavObs oa = a.observe();
                const NavObs ob = b.observe();
                ASSERT_EQ(oa.spatial, ob.spatial);
                ASSERT_EQ(oa.state, ob.state);
                const NavAction act = NavExpert::act(a);
                ASSERT_EQ(act, NavExpert::act(b));
                a.step(act);
                b.step(act);
                ASSERT_EQ(a.x(), b.x());
                ASSERT_EQ(a.y(), b.y());
                ASSERT_EQ(a.z(), b.z());
                ASSERT_EQ(a.battery(), b.battery());
                ++steps;
            }
        }
        EXPECT_EQ(a.taskComplete(), b.taskComplete());
    }
}

TEST(NavWorld, WallPassableOnlyAtTopExceptGap)
{
    NavWorld w(NavTask::Corridor, 5);
    for (int y = 0; y < NavWorld::kSize; ++y) {
        if (y == w.gapY()) {
            EXPECT_EQ(w.heightAt(w.wallX(), y), 0);
            EXPECT_TRUE(w.open(w.wallX(), y, 0));
        } else {
            EXPECT_EQ(w.heightAt(w.wallX(), y), 2);
            EXPECT_FALSE(w.open(w.wallX(), y, 1));
            EXPECT_TRUE(w.open(w.wallX(), y, 2));
        }
    }
}

TEST(NavWorld, HoldChainResetsOnInterruption)
{
    NavWorld w(NavTask::Inspect, 8);
    w.setActiveSubtask(NavSubtask::TransitA);
    int steps = 0;
    while (!w.subtaskComplete() && steps++ < NavWorld::kStepCap)
        w.step(NavExpert::act(w));
    ASSERT_TRUE(w.subtaskComplete());
    // The inspect station is waypoint A, where the drone now hovers.
    ASSERT_EQ(w.x(), w.stationX());
    ASSERT_EQ(w.y(), w.stationY());
    w.setActiveSubtask(NavSubtask::HoldStation);
    w.step(NavAction::Hover);
    w.step(NavAction::Hover);
    EXPECT_EQ(w.holdProgress(), 2);
    w.step(NavAction::Ascend); // interruption (stays over the station)
    EXPECT_EQ(w.holdProgress(), 0);
    w.step(NavAction::Hover);
    w.step(NavAction::Hover);
    w.step(NavAction::Hover);
    EXPECT_TRUE(w.held());
    EXPECT_TRUE(w.taskComplete());
}

TEST(NavWorld, BatteryGroundsTheDrone)
{
    NavWorld w(NavTask::Delivery, 9);
    for (int i = 0; i < NavWorld::kBattery; ++i)
        w.step(NavAction::Hover);
    EXPECT_LE(w.battery(), 0);
    const int x = w.x(), y = w.y(), z = w.z();
    for (const auto a : {NavAction::MoveE, NavAction::MoveW,
                         NavAction::Ascend, NavAction::Descend}) {
        w.step(a);
        EXPECT_EQ(w.x(), x);
        EXPECT_EQ(w.y(), y);
        EXPECT_EQ(w.z(), z);
    }
}

TEST(NavWorld, ObservationDims)
{
    NavWorld w(NavTask::Survey, 10);
    const NavObs obs = w.observe();
    EXPECT_EQ(static_cast<int>(obs.spatial.size()), NavObs::spatialDim());
    EXPECT_EQ(static_cast<int>(obs.state.size()), NavObs::stateDim());
}

TEST(NavWorld, RenderImage)
{
    NavWorld w(NavTask::Rooftop, 11);
    const Tensor img = w.renderImage(24);
    EXPECT_EQ(img.dim(0), 3);
    EXPECT_EQ(img.dim(1), 24);
    for (std::int64_t i = 0; i < img.numel(); ++i) {
        EXPECT_GE(img[i], 0.0f);
        EXPECT_LE(img[i], 1.0f);
    }
}

TEST(NavWorld, GoldPlansFitPlannerWindow)
{
    for (int t = 0; t < kNumNavTasks; ++t) {
        const auto plan = navGoldPlan(static_cast<NavTask>(t));
        EXPECT_FALSE(plan.empty());
        EXPECT_LE(plan.size(), 5u);
    }
}

/** Property: the A* expert solves all ten missions. */
class NavExpertSolves : public ::testing::TestWithParam<int>
{
};

TEST_P(NavExpertSolves, FullPlan)
{
    const auto task = static_cast<NavTask>(GetParam());
    int successes = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        NavWorld w(task, seed * 131);
        int steps = 0;
        for (const auto st : navGoldPlan(task)) {
            w.setActiveSubtask(st);
            while (!w.subtaskComplete() && steps < NavWorld::kStepCap) {
                w.step(NavExpert::act(w));
                ++steps;
            }
            if (!w.subtaskComplete())
                break;
        }
        if (w.taskComplete())
            ++successes;
    }
    EXPECT_GE(successes, 3) << navTaskName(task);
}

INSTANTIATE_TEST_SUITE_P(AllMissions, NavExpertSolves,
                         ::testing::Range(0, kNumNavTasks),
                         [](const auto& info) {
                             return navTaskName(
                                 static_cast<NavTask>(info.param));
                         });

TEST(PlatformRegistry, CataloguesAllThreeFamilies)
{
    const auto& reg = PlatformRegistry::instance();
    int families[3] = {0, 0, 0};
    for (const auto& p : reg.all()) {
        if (p.envFamily == "minecraft")
            ++families[0];
        else if (p.envFamily == "manipulation")
            ++families[1];
        else if (p.envFamily == "navigation")
            ++families[2];
    }
    EXPECT_GE(families[0], 1);
    EXPECT_GE(families[1], 2);
    EXPECT_GE(families[2], 2);
}

TEST(PlatformRegistry, SelectFiltersAndRejectsUnknown)
{
    const auto& reg = PlatformRegistry::instance();
    EXPECT_EQ(reg.select("").size(), reg.all().size());
    const auto two = reg.select("navllama+pathrt,jarvis-1");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0]->name, "navllama+pathrt");
    EXPECT_EQ(two[1]->name, "jarvis-1");
    EXPECT_THROW(reg.select("no-such-platform"), std::invalid_argument);
    EXPECT_THROW(reg.make("no-such-platform"), std::invalid_argument);
}

TEST(PlatformRegistry, EveryPlatformConstructsAndRunsOneEpisode)
{
    // The round-trip that keeps the catalogue honest: each registered
    // factory must build a working system whose name matches its key and
    // which runs an episode + a 2-rep evaluation through the facade.
    const auto& reg = PlatformRegistry::instance();
    for (const auto& info : reg.all()) {
        auto sys = reg.make(info.name, /*verbose=*/false);
        ASSERT_NE(sys, nullptr) << info.name;
        EXPECT_STREQ(sys->platformName(), info.name.c_str());
        EXPECT_GT(sys->numTasks(), 0);
        ASSERT_FALSE(info.plannerTasks.empty()) << info.name;
        for (const int t : info.plannerTasks) {
            ASSERT_GE(t, 0);
            ASSERT_LT(t, sys->numTasks());
        }
        const int task = info.plannerTasks.front();
        const EpisodeResult r =
            sys->runEpisode(task, 2024, CreateConfig::clean());
        EXPECT_GT(r.steps, 0) << info.name;
        EXPECT_EQ(r.plannerInvocations, 1) << info.name;
        const TaskStats s =
            sys->evaluate(task, CreateConfig::clean(), 2);
        EXPECT_EQ(s.episodes, 2);
        EXPECT_GE(s.successRate, 0.0);
        EXPECT_LE(s.successRate, 1.0);
        EXPECT_GT(s.avgComputeJ, 0.0) << info.name;
    }
}

TEST(NavSystem, PlannerDecodesGoldPlansClean)
{
    ComputeContext ctx(7);
    ctx.domain = Domain::Planner;
    for (int t = 0; t < kNumNavTasks; ++t) {
        const auto tokens = navSys().planner(false).inferPlan(t, 0, ctx);
        const auto plan = platforms::decodeNavPlan(tokens);
        EXPECT_EQ(plan, navGoldPlan(static_cast<NavTask>(t)))
            << navTaskName(static_cast<NavTask>(t));
    }
}

TEST(NavSystem, SerialVs4ThreadsBitIdentical)
{
    // Planner-side CREATE point: AD+WR at an aggressive planner voltage,
    // so fault-injection RNG streams and the rotated planner both matter.
    CreateConfig cfg = CreateConfig::atVoltage(0.72, 0.90);
    cfg.anomalyDetection = true;
    cfg.weightRotation = true;
    const int reps = 6;

    const TaskStats serial =
        navSys().evaluate(NavTask::Patrol, cfg, reps);
    ParallelEvaluator pool(navSys(), /*threads=*/4);
    const TaskStats parallel =
        pool.evaluate(static_cast<int>(NavTask::Patrol), cfg, reps);
    expectIdentical(serial, parallel);
}

TEST(NavSystem, EvaluateViaSystemThreadsMatchesSerial)
{
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    cfg.anomalyDetection = true;
    const int reps = 5;
    navSys().setEvalThreads(1);
    const TaskStats serial =
        navSys().evaluate(NavTask::Delivery, cfg, reps);
    navSys().setEvalThreads(4);
    const TaskStats parallel =
        navSys().evaluate(NavTask::Delivery, cfg, reps);
    navSys().setEvalThreads(1);
    expectIdentical(serial, parallel);
}

TEST(NavSystem, CreateRecoversSuccessAtAggressiveVoltage)
{
    // The acceptance property of the third platform family: at an
    // aggressive operating point the unprotected stack collapses and the
    // CREATE techniques recover most of the clean success rate.
    const int reps = 12;
    NavSystem& sys = navSys();
    sys.setEvalThreads(1);

    CreateConfig unprot = CreateConfig::atVoltage(0.72, 0.80);
    CreateConfig prot = CreateConfig::fullCreate(
        0.72, EntropyVoltagePolicy::preset('E'));

    int cleanOk = 0, unprotOk = 0, protOk = 0;
    for (const auto task : {NavTask::Delivery, NavTask::Patrol,
                            NavTask::Corridor}) {
        cleanOk += sys.evaluate(task, CreateConfig::clean(), reps).successes;
        unprotOk += sys.evaluate(task, unprot, reps).successes;
        protOk += sys.evaluate(task, prot, reps).successes;
    }
    EXPECT_GT(protOk, unprotOk);
    EXPECT_GE(protOk, cleanOk / 2);
    EXPECT_LT(unprotOk, cleanOk);
}
