/** @file Tests for the SCALE-Sim-style perf model, energy model, workloads. */

#include <gtest/gtest.h>

#include <cmath>

#include "perf/energy.hpp"
#include "perf/scalesim.hpp"
#include "perf/workloads.hpp"

using namespace create;

TEST(ScaleSim, PeakTopsMatchesPaper)
{
    const AcceleratorConfig cfg;
    // Fig. 12 / Table 3: 144 TOPS from nine 128x128 arrays at 0.5 GHz.
    EXPECT_NEAR(cfg.peakTops(), 147.5, 5.0);
}

TEST(ScaleSim, GemmCountersAreConsistent)
{
    ScaleSimModel model;
    const GemmShape s{256, 512, 1024};
    const auto c = model.gemm(s, /*weightsResident=*/true);
    EXPECT_DOUBLE_EQ(c.macs, 256.0 * 512.0 * 1024.0);
    EXPECT_GT(c.cycles, 0u);
    EXPECT_DOUBLE_EQ(c.dramBytes, 0.0);
    const auto c2 = model.gemm(s, /*weightsResident=*/false);
    EXPECT_DOUBLE_EQ(c2.dramBytes, 512.0 * 1024.0);
}

TEST(ScaleSim, LatencyTakesMaxOfComputeAndDram)
{
    ScaleSimModel model;
    PerfCounters computeBound;
    computeBound.cycles = 5'000'000; // 10 ms at 0.5 GHz
    computeBound.dramBytes = 1.0;
    EXPECT_NEAR(model.latencyMs(computeBound), 10.0, 1e-6);
    PerfCounters dramBound;
    dramBound.cycles = 1;
    dramBound.dramBytes = 450e9 * 0.010; // 10 ms of HBM traffic
    EXPECT_NEAR(model.latencyMs(dramBound), 10.0, 1e-3);
}

TEST(Workloads, JarvisPlannerParamsNearPaper)
{
    const Workload w = workloads::jarvisPlanner();
    // Table 4: 7,869 M params. The analytic count (weights as K*N sums,
    // single pass) should land within ~15%.
    const double perPassParams =
        w.analyticParamsM() / 1.0; // single token pass dominates
    EXPECT_NEAR(perPassParams / w.paperParamsM, 1.0, 0.25);
}

TEST(Workloads, PlannersOrderedBySize)
{
    EXPECT_GT(workloads::jarvisPlanner().analyticGmacs(),
              workloads::roboFlamingo().analyticGmacs());
    EXPECT_GT(workloads::openVla().analyticGmacs(),
              workloads::roboFlamingo().analyticGmacs());
}

TEST(Workloads, ControllersAreSramResident)
{
    for (const auto& w : {workloads::jarvisController(), workloads::rt1(),
                          workloads::octo()}) {
        EXPECT_TRUE(w.weightsResident);
        // Table 4 range: tens of millions of parameters -> fits 71 MB.
        EXPECT_LT(w.analyticParamsM() * 1e6, 71.0 * 1024 * 1024);
    }
}

TEST(Workloads, EntropyPredictorTiny)
{
    const Workload w = workloads::entropyPredictor();
    EXPECT_LT(w.analyticParamsM(), 0.2);  // ~0.055 M in Table 4
    EXPECT_LT(w.analyticGmacs(), 0.1);    // ~0.043 GOps in Table 4
}

TEST(Workloads, ConvGemmShape)
{
    const GemmShape s = workloads::convGemm(64, 3, 16, 3, 1, 1);
    EXPECT_EQ(s.m, 64 * 64);
    EXPECT_EQ(s.k, 27);
    EXPECT_EQ(s.n, 16);
}

TEST(Energy, ComputeScalesQuadraticallyWithVoltage)
{
    EnergyModel em;
    const double e90 = em.computeJ(1e12, 0.90);
    const double e60 = em.computeJ(1e12, 0.60);
    EXPECT_NEAR(e60 / e90, (0.6 / 0.9) * (0.6 / 0.9), 1e-9);
}

TEST(Energy, PeArrayPowerMatchesFig12)
{
    // 144 TOPS at 0.107 pJ/op (= 0.214 pJ/MAC) is ~15.4 W: Fig. 12(c)'s
    // PE-array power at nominal voltage.
    EnergyModel em;
    const double opsPerSecond = 144e12;
    const double watts = opsPerSecond / 2.0 * em.constants().pjPerMacNominal *
                         1e-12;
    EXPECT_NEAR(watts, 15.39, 0.7);
}

TEST(Energy, InvocationBreakdownPositive)
{
    ScaleSimModel model;
    EnergyModel em;
    const Workload w = workloads::jarvisController();
    const auto c = model.network(w.gemms, w.weightsResident, w.inputDramBytes);
    const auto e = em.invocation(c, 0.9, model.latencyMs(c) / 1e3);
    EXPECT_GT(e.computeJ, 0.0);
    EXPECT_GT(e.sramJ, 0.0);
    // The analytic stand-in descriptor is smaller than STEVE-1, so SRAM
    // leakage weighs more than the paper's 77% compute share; the Fig. 18
    // bench normalizes traffic to the paper-scale op counts.
    EXPECT_GT(e.computeShare(), 0.30);
}

TEST(Energy, PlannerComputeShareInPaperRange)
{
    // Fig. 18: computation is ~62-67% of planner chip energy.
    ScaleSimModel model;
    EnergyModel em;
    const Workload w = workloads::jarvisPlanner();
    const auto c = model.network(w.gemms, w.weightsResident, w.inputDramBytes);
    const auto e = em.invocation(c, 0.9, model.latencyMs(c) / 1e3);
    EXPECT_GT(e.computeShare(), 0.55);
    EXPECT_LT(e.computeShare(), 0.80);
}

TEST(Battery, ExtensionFormula)
{
    // 35% chip savings at 50% compute share => ~21% longer battery life.
    EXPECT_NEAR(batteryLifeExtension(0.35, 0.5), 0.212, 0.01);
    EXPECT_NEAR(batteryLifeExtension(0.0, 0.5), 0.0, 1e-12);
    // Paper's 15-30% claim over plausible compute shares.
    EXPECT_GT(batteryLifeExtension(0.30, 0.45), 0.14);
    EXPECT_LT(batteryLifeExtension(0.37, 0.60), 0.30);
}

/** Property: more undervolting never increases modeled energy. */
class EnergyMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(EnergyMonotone, LowerVoltageLowerEnergy)
{
    EnergyModel em;
    const double v = GetParam();
    EXPECT_LE(em.computeJ(1e9, v - 0.05), em.computeJ(1e9, v));
}

INSTANTIATE_TEST_SUITE_P(Voltages, EnergyMonotone,
                         ::testing::Values(0.90, 0.85, 0.80, 0.75, 0.70,
                                           0.65));
