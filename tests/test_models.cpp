/**
 * @file
 * Tests for the trained models (planner / controller / predictor) and the
 * model zoo. These use the on-disk weight cache; the first-ever run of the
 * suite trains the models (a few minutes), later runs load instantly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/anomaly.hpp"
#include "core/rotation.hpp"
#include "env/mine_expert.hpp"
#include "models/model_zoo.hpp"
#include "tensor/ops.hpp"

using namespace create;

namespace {

/** Shared, lazily-constructed model bundle (training is expensive). */
MineModels&
models()
{
    static MineModels m = ModelZoo::mineModels(/*verbose=*/false);
    return m;
}

} // namespace

TEST(PlanVocab, CoversAllGoldPlans)
{
    const auto& vocab = PlanVocab::mine();
    for (int t = 0; t < kNumMineTasks; ++t) {
        const auto plan = goldPlan(static_cast<MineTask>(t));
        const auto tokens = vocab.encode(plan);
        const auto back = vocab.decode(tokens);
        ASSERT_EQ(back.size(), plan.size());
        for (std::size_t i = 0; i < plan.size(); ++i) {
            EXPECT_EQ(back[i].type, plan[i].type);
            EXPECT_EQ(back[i].count, plan[i].count);
        }
    }
}

TEST(PlanVocab, DecodeDropsEndAndInvalid)
{
    const auto& vocab = PlanVocab::mine();
    const auto plan = vocab.decode({0, vocab.endToken(), 1, 9999});
    EXPECT_EQ(plan.size(), 2u);
}

TEST(SampleAction, FollowsDistribution)
{
    Rng rng(1);
    // Extremely peaked logits: always the argmax.
    const std::vector<float> peaked = {0.0f, 30.0f, 0.0f};
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(sampleAction(peaked, rng), 1);
    // Uniform logits: all actions appear.
    const std::vector<float> uniform = {1.0f, 1.0f, 1.0f};
    std::set<int> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(sampleAction(uniform, rng));
    EXPECT_EQ(seen.size(), 3u);
}

/** Property: the clean planner reproduces the gold plan for every task
 *  and every progress offset. */
class PlannerGoldPlans : public ::testing::TestWithParam<int>
{
};

TEST_P(PlannerGoldPlans, ExactFromEveryProgress)
{
    const int t = GetParam();
    const auto& vocab = PlanVocab::mine();
    const auto gold = vocab.encode(goldPlan(static_cast<MineTask>(t)));
    ComputeContext ctx(7);
    for (int done = 0; done <= static_cast<int>(gold.size()); ++done) {
        const auto plan = models().planner->inferPlan(t, done, ctx);
        ASSERT_EQ(plan.size(), gold.size() - static_cast<std::size_t>(done))
            << "task " << mineTaskName(static_cast<MineTask>(t)) << " done "
            << done;
        for (std::size_t i = 0; i < plan.size(); ++i)
            EXPECT_EQ(plan[i], gold[static_cast<std::size_t>(done) + i]);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, PlannerGoldPlans,
                         ::testing::Range(0, kNumMineTasks),
                         [](const auto& info) {
                             return mineTaskName(
                                 static_cast<MineTask>(info.param));
                         });

TEST(Planner, OutlierChannelsPresent)
{
    // Pre-norm (O/Down) calibrated output ranges dwarf K's: the Fig. 5(i)
    // phenomenon the planner's fragility stems from.
    auto& p = *models().planner;
    const float oMax = p.block(0).attn().o().quantState().outObs.absMax();
    const float kMax = p.block(0).attn().k().quantState().outObs.absMax();
    EXPECT_GT(oMax, 2.0f * kMax);
}

TEST(Planner, CorruptionDegradesPlans)
{
    ComputeContext ctx(11);
    ctx.setUniformBer(3e-3);
    int wrong = 0;
    const auto& vocab = PlanVocab::mine();
    const auto gold = vocab.encode(goldPlan(MineTask::Iron));
    for (int rep = 0; rep < 10; ++rep) {
        const auto plan =
            models().planner->inferPlan(static_cast<int>(MineTask::Iron), 0,
                                        ctx);
        if (plan != gold)
            ++wrong;
    }
    EXPECT_GT(wrong, 0);
}

TEST(Rotation, PreservesCleanFunction)
{
    auto rotated = ModelZoo::minePlanner(false);
    applyWeightRotation(*rotated);
    ComputeContext c1(1), c2(2);
    c1.calibrating = c2.calibrating = true;
    for (int t = 0; t < kNumMineTasks; t += 3) {
        const Tensor a = models().planner->inferLogits(t, 0, c1);
        const Tensor b = rotated->inferLogits(t, 0, c2);
        EXPECT_LT(ops::maxAbsDiff(a, b), 5e-3f) << "task " << t;
    }
}

TEST(Rotation, RotatedPlannerStillPlansInInt8)
{
    auto rotated = ModelZoo::minePlanner(false);
    applyWeightRotation(*rotated);
    ModelZoo::calibrateMinePlanner(*rotated);
    ComputeContext ctx(3);
    const auto& vocab = PlanVocab::mine();
    for (int t = 0; t < kNumMineTasks; ++t) {
        const auto gold = vocab.encode(goldPlan(static_cast<MineTask>(t)));
        EXPECT_EQ(rotated->inferPlan(t, 0, ctx), gold);
    }
}

TEST(Rotation, TightensAnomalyBounds)
{
    auto rotated = ModelZoo::minePlanner(false);
    applyWeightRotation(*rotated);
    ModelZoo::calibrateMinePlanner(*rotated);
    const auto base = plannerAdBounds(*models().planner);
    const auto rot = plannerAdBounds(*rotated);
    EXPECT_LT(rot.maxBound, base.maxBound * 0.7f);
    EXPECT_LT(rot.meanBound, base.meanBound);
}

TEST(Rotation, RemovesStructuralScalesAndGains)
{
    auto rotated = ModelZoo::minePlanner(false);
    applyWeightRotation(*rotated);
    for (int l = 0; l < rotated->config().layers; ++l) {
        EXPECT_FALSE(rotated->block(l).attn().o().hasOutChannelScale());
        EXPECT_FALSE(rotated->block(l).down().hasOutChannelScale());
        for (std::int64_t j = 0; j < rotated->config().dim; ++j)
            EXPECT_FLOAT_EQ(rotated->block(l).norm1().gain()[j], 1.0f);
    }
}

TEST(Controller, CleanPolicyCompletesWoodenSubtasks)
{
    ComputeContext ctx(5);
    Rng rng(5);
    MineWorld w({40, 40, MineTask::Wooden, 123});
    int completed = 0;
    for (const auto& st : goldPlan(MineTask::Wooden)) {
        w.setActiveSubtask(st);
        for (int i = 0; i < 250 && !w.subtaskComplete(); ++i) {
            const MineObs obs = w.observe();
            const auto logits = models().controller->inferLogits(
                static_cast<int>(st.type), obs.spatial, obs.state, ctx);
            w.step(static_cast<Action>(sampleAction(logits, rng)));
        }
        if (!w.subtaskComplete())
            break;
        ++completed;
    }
    EXPECT_EQ(completed, 4);
    EXPECT_TRUE(w.taskComplete());
}

TEST(Controller, EntropySeparatesCriticalSteps)
{
    ComputeContext ctx(6);
    Rng rng(6);
    MineWorld w({40, 40, MineTask::Log, 321});
    w.setActiveSubtask({SubtaskType::MineLog, 5});
    double hCritical = 0.0, hFree = 0.0;
    int nCritical = 0, nFree = 0;
    for (int i = 0; i < 400 && !w.subtaskComplete(); ++i) {
        const MineObs obs = w.observe();
        const auto logits = models().controller->inferLogits(
            static_cast<int>(SubtaskType::MineLog), obs.spatial, obs.state,
            ctx);
        const double h = ops::entropy(ops::softmax(logits));
        if (obs.spatial[11] > 0.5f) { // target directly in front
            hCritical += h;
            ++nCritical;
        } else {
            hFree += h;
            ++nFree;
        }
        w.step(static_cast<Action>(sampleAction(logits, rng)));
    }
    ASSERT_GT(nCritical, 3);
    ASSERT_GT(nFree, 3);
    EXPECT_LT(hCritical / nCritical, 0.5 * hFree / nFree);
}

TEST(Predictor, CorrelatesWithTrueEntropy)
{
    auto frames = ModelZoo::minePredictorFrames(*models().controller, 1, 777);
    ASSERT_GT(frames.size(), 50u);
    ComputeContext ctx(8);
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const auto n = static_cast<double>(frames.size());
    for (const auto& f : frames) {
        const double pred = models().predictor->infer(f.image, f.prompt, ctx);
        const double truth = f.entropy;
        sx += pred;
        sy += truth;
        sxx += pred * pred;
        syy += truth * truth;
        sxy += pred * truth;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    const double r = cov / std::sqrt(std::max(vx * vy, 1e-12));
    // Paper Fig. 14: R^2 = 0.92. Our scaled-down predictor should still
    // correlate strongly.
    EXPECT_GT(r, 0.55);
}

TEST(Zoo, CacheRoundTripsExactWeights)
{
    auto a = ModelZoo::minePlanner(false);
    auto b = ModelZoo::minePlanner(false); // second load from cache
    ComputeContext c1(1), c2(2);
    c1.calibrating = c2.calibrating = true;
    const Tensor la = a->inferLogits(0, 0, c1);
    const Tensor lb = b->inferLogits(0, 0, c2);
    EXPECT_EQ(ops::maxAbsDiff(la, lb), 0.0f);
}

TEST(Zoo, BcDatasetCoversAllActions)
{
    const auto data = ModelZoo::mineBcDataset(1, 999);
    ASSERT_GT(data.size(), 300u);
    std::set<int> actions;
    for (const auto& s : data)
        actions.insert(s.action);
    // Movement, attack, craft, and smelt must all be demonstrated.
    EXPECT_GE(actions.size(), 6u);
    EXPECT_TRUE(actions.count(static_cast<int>(Action::Craft)));
    EXPECT_TRUE(actions.count(static_cast<int>(Action::Attack)));
}
