/** @file Tests for the episode-record JSON round trip and the sweep-diff
 *  store comparator: bit-exact ledger round trips, clean verdicts on
 *  identical stores, tolerance handling, new/missing cells, episode-count
 *  mismatches, and legacy v1 aggregate comparison. All stores here are
 *  synthesized records -- no models run. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/serialize.hpp"
#include "core/store_diff.hpp"
#include "core/sweep.hpp"

using namespace create;

namespace {

EpisodeRecord
makeEpisode(int i, bool success)
{
    EpisodeRecord e;
    e.result.success = success;
    e.result.steps = 100 + 13 * i;
    e.result.plannerInvocations = 1 + i % 3;
    e.result.predictorInvocations = 20 * i;
    e.result.subtasksCompleted = i % 5;
    e.result.plannerV2Ratio = 1.0 / 3.0 + 0.01 * i;
    e.result.controllerV2Ratio = 0.1 * (i + 1);
    e.result.plannerEffV = 0.9 - 0.007 * i;
    e.result.controllerEffV = 0.72 + 1e-9 * i;
    e.result.bitFlips = static_cast<std::uint64_t>(1) << (i % 40);
    e.result.anomaliesCleared = static_cast<std::uint64_t>(7 * i);
    e.computeJ = 1234.5678901234567 / (i + 1);
    return e;
}

/** Attach a deterministic schema-v3 metrics payload to an episode. */
void
attachMetrics(EpisodeRecord& e, int i)
{
    EpisodeMetrics& m = e.metrics;
    m.present = true;
    m.wallMs = 12.5 + 0.25 * i;
    m.gemms = 40 + static_cast<std::uint64_t>(i);
    m.flipsInjected = 9 + static_cast<std::uint64_t>(2 * i);
    m.flipsDetected = 6 + static_cast<std::uint64_t>(i);
    m.flipsCorrected = 4;
    m.flipsEscaped = m.flipsInjected - m.flipsCorrected;
    m.reExecutions = static_cast<std::uint64_t>(i % 3);
    // Dotted layer tags exercise the rfind('.')-based key parsing.
    LayerFaultCounters attn;
    attn.gemms = 30;
    attn.injected = m.flipsInjected - 2;
    attn.escaped = 5;
    LayerFaultCounters head;
    head.gemms = 10 + static_cast<std::uint64_t>(i);
    head.injected = 2;
    head.detected = m.flipsDetected;
    head.reExecutions = m.reExecutions;
    m.layers = {{"planner.attn.k", attn}, {"planner.head", head}};
}

/** Write a store with one ledger of `n` episodes per fingerprint. */
void
writeStore(const std::string& path, const std::vector<std::string>& fps,
           int n, int perturbEpisode = -1, bool withMetrics = false,
           int perturbFlipsEpisode = -1)
{
    std::vector<JsonRecord> records;
    JsonRecord schema;
    schema.name = kSweepStoreSchemaRecord;
    schema.numbers.emplace_back("schema", kSweepStoreSchema);
    records.push_back(schema);
    for (const auto& fp : fps) {
        JsonRecord meta;
        meta.name = fp;
        meta.strings.emplace_back("platform", "jarvis-1");
        meta.strings.emplace_back("label", "cell-" + fp.substr(0, 8));
        meta.numbers.emplace_back("task", 0);
        meta.numbers.emplace_back("seed0", 1000);
        records.push_back(meta);
        for (int i = 0; i < n; ++i) {
            EpisodeRecord e = makeEpisode(i, i % 2 == 0);
            if (i == perturbEpisode)
                e.computeJ *= 1.0 + 1e-12; // one-ulp-ish drift
            if (withMetrics) {
                attachMetrics(e, i);
                if (i == perturbFlipsEpisode)
                    e.metrics.flipsEscaped += 1;
            }
            records.push_back(
                episodeToRecord(sweepEpisodeKey(fp, i), e));
        }
    }
    ASSERT_TRUE(writeJsonRecords(path, records));
}

} // namespace

TEST(EpisodeLedger, JsonRoundTripIsBitExact)
{
    const std::string path = "/tmp/create_test_episode_rt.json";
    std::vector<JsonRecord> out;
    for (int i = 0; i < 8; ++i)
        out.push_back(episodeToRecord(sweepEpisodeKey("v2|x", i),
                                      makeEpisode(i, i % 3 == 0)));
    ASSERT_TRUE(writeJsonRecords(path, out));
    std::vector<JsonRecord> in;
    ASSERT_TRUE(readJsonRecords(path, in));
    ASSERT_EQ(in.size(), out.size());
    for (int i = 0; i < 8; ++i) {
        const EpisodeRecord want = makeEpisode(i, i % 3 == 0);
        EpisodeRecord got;
        std::string fp;
        ASSERT_EQ(sweepEpisodeIndex(in[static_cast<std::size_t>(i)].name,
                                    &fp),
                  i);
        EXPECT_EQ(fp, "v2|x");
        ASSERT_TRUE(
            episodeFromRecord(in[static_cast<std::size_t>(i)], got));
        EXPECT_EQ(want.result.success, got.result.success);
        EXPECT_EQ(want.result.steps, got.result.steps);
        EXPECT_EQ(want.result.plannerInvocations,
                  got.result.plannerInvocations);
        EXPECT_EQ(want.result.predictorInvocations,
                  got.result.predictorInvocations);
        EXPECT_EQ(want.result.subtasksCompleted,
                  got.result.subtasksCompleted);
        EXPECT_EQ(want.result.plannerV2Ratio, got.result.plannerV2Ratio);
        EXPECT_EQ(want.result.controllerV2Ratio,
                  got.result.controllerV2Ratio);
        EXPECT_EQ(want.result.plannerEffV, got.result.plannerEffV);
        EXPECT_EQ(want.result.controllerEffV, got.result.controllerEffV);
        EXPECT_EQ(want.result.bitFlips, got.result.bitFlips);
        EXPECT_EQ(want.result.anomaliesCleared,
                  got.result.anomaliesCleared);
        EXPECT_EQ(want.computeJ, got.computeJ);
    }
    std::remove(path.c_str());
}

TEST(EpisodeLedger, RejectsRecordsWithMissingFields)
{
    JsonRecord rec = episodeToRecord("v2|x#0", makeEpisode(0, true));
    EpisodeRecord out;
    EXPECT_TRUE(episodeFromRecord(rec, out));
    rec.numbers.erase(rec.numbers.begin() + 2);
    EXPECT_FALSE(episodeFromRecord(rec, out));
}

TEST(EpisodeLedger, EpisodeKeyParsing)
{
    EXPECT_EQ(sweepEpisodeIndex("v2|a|task=1#17"), 17);
    EXPECT_EQ(sweepEpisodeIndex("v2|a|task=1"), -1);   // meta record
    EXPECT_EQ(sweepEpisodeIndex("v1|a|reps=3"), -1);   // legacy record
    EXPECT_EQ(sweepEpisodeIndex("sweep-store"), -1);   // schema record
    EXPECT_EQ(sweepEpisodeIndex("v2|a#12x"), -1);      // not an index
    EXPECT_EQ(sweepEpisodeIndex("v2|a#"), -1);
}

TEST(StoreDiff, IdenticalStoresAreClean)
{
    const std::string a = "/tmp/create_test_diff_a.json";
    const std::string b = "/tmp/create_test_diff_b.json";
    writeStore(a, {"v2|p1", "v2|p2"}, 6);
    writeStore(b, {"v2|p1", "v2|p2"}, 6);
    const StoreDiffResult res = diffStores(a, b);
    EXPECT_TRUE(res.clean());
    EXPECT_EQ(res.compared, 2);
    EXPECT_EQ(res.cellsA, 2);
    EXPECT_EQ(res.cellsB, 2);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreDiff, ReportsNewAndMissingCells)
{
    const std::string a = "/tmp/create_test_diff_a.json";
    const std::string b = "/tmp/create_test_diff_b.json";
    writeStore(a, {"v2|p1", "v2|p2"}, 4);
    writeStore(b, {"v2|p2", "v2|p3"}, 4);
    const StoreDiffResult res = diffStores(a, b);
    ASSERT_EQ(res.entries.size(), 2u);
    EXPECT_EQ(res.compared, 1);
    EXPECT_EQ(res.entries[0].kind, StoreDiffEntry::Kind::OnlyInA);
    EXPECT_EQ(res.entries[0].fingerprint, "v2|p1");
    EXPECT_EQ(res.entries[1].kind, StoreDiffEntry::Kind::OnlyInB);
    EXPECT_EQ(res.entries[1].fingerprint, "v2|p3");
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreDiff, DetectsStatDriftAndHonorsTolerance)
{
    const std::string a = "/tmp/create_test_diff_a.json";
    const std::string b = "/tmp/create_test_diff_b.json";
    writeStore(a, {"v2|p1"}, 6);
    writeStore(b, {"v2|p1"}, 6, /*perturbEpisode=*/3);
    const StoreDiffResult strict = diffStores(a, b);
    ASSERT_FALSE(strict.clean());
    EXPECT_EQ(strict.entries[0].kind, StoreDiffEntry::Kind::Stat);
    EXPECT_NE(strict.entries[0].detail.find("avgComputeJ"),
              std::string::npos);

    StoreDiffOptions tol;
    tol.relTol = 1e-9;
    EXPECT_TRUE(diffStores(a, b, tol).clean());
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreDiff, DetectsEpisodeCountMismatch)
{
    const std::string a = "/tmp/create_test_diff_a.json";
    const std::string b = "/tmp/create_test_diff_b.json";
    writeStore(a, {"v2|p1"}, 6);
    writeStore(b, {"v2|p1"}, 4);
    const StoreDiffResult res = diffStores(a, b);
    ASSERT_EQ(res.entries.size(), 1u);
    EXPECT_EQ(res.entries[0].kind, StoreDiffEntry::Kind::Episodes);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreDiff, ComparesLegacyV1Aggregates)
{
    const std::string a = "/tmp/create_test_diff_a.json";
    const std::string b = "/tmp/create_test_diff_b.json";
    auto writeV1 = [](const std::string& path, double successRate) {
        JsonRecord rec;
        rec.name = "v1|jarvis-1|task=0|reps=4|seed0=1000|tech=---";
        rec.numbers.emplace_back("episodes", 4);
        rec.numbers.emplace_back("successes", successRate * 4);
        for (const auto& [key, member] : kTaskStatFields) {
            (void)member;
            rec.numbers.emplace_back(key, key == std::string("successRate")
                                              ? successRate
                                              : 1.5);
        }
        ASSERT_TRUE(writeJsonRecords(path, {rec}));
    };
    writeV1(a, 0.75);
    writeV1(b, 0.75);
    EXPECT_TRUE(diffStores(a, b).clean());
    writeV1(b, 0.5); // successes change too -> episode/success mismatch
    const StoreDiffResult res = diffStores(a, b);
    ASSERT_EQ(res.entries.size(), 1u);
    EXPECT_EQ(res.entries[0].kind, StoreDiffEntry::Kind::Episodes);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(EpisodeLedger, MetricsRoundTripThroughRecord)
{
    EpisodeRecord want = makeEpisode(3, true);
    attachMetrics(want, 3);
    const JsonRecord rec = episodeToRecord("v2|x#3", want);

    EpisodeRecord got;
    ASSERT_TRUE(episodeFromRecord(rec, got));
    ASSERT_TRUE(got.metrics.present);
    EXPECT_EQ(want.metrics.wallMs, got.metrics.wallMs);
    for (const auto& [key, member] : kEpisodeMetricFields) {
        SCOPED_TRACE(key);
        EXPECT_EQ(want.metrics.*member, got.metrics.*member);
    }
    // Per-layer tables reconstruct exactly, dotted tags included.
    ASSERT_EQ(got.metrics.layers.size(), want.metrics.layers.size());
    for (const auto& [tag, c] : want.metrics.layers) {
        SCOPED_TRACE(tag);
        const LayerFaultCounters* back = got.metrics.layer(tag);
        ASSERT_NE(back, nullptr);
        for (const auto& [key, member] : kLayerFaultFields) {
            SCOPED_TRACE(key);
            EXPECT_EQ(c.*member, back->*member);
        }
    }
}

TEST(EpisodeLedger, RecordWithoutMetricsParsesAsAbsent)
{
    // A v2-era record carries none of the metrics keys; the episode must
    // still parse, with the payload marked absent (lossless v2 read).
    const JsonRecord rec = episodeToRecord("v2|x#0", makeEpisode(0, true));
    EpisodeRecord out;
    ASSERT_TRUE(episodeFromRecord(rec, out));
    EXPECT_FALSE(out.metrics.present);
    EXPECT_TRUE(out.metrics.layers.empty());
}

TEST(StoreDiff, DetectsMetricsDrift)
{
    const std::string a = "/tmp/create_test_diff_a.json";
    const std::string b = "/tmp/create_test_diff_b.json";
    writeStore(a, {"v2|p1"}, 6, -1, /*withMetrics=*/true);
    writeStore(b, {"v2|p1"}, 6, -1, /*withMetrics=*/true);
    EXPECT_TRUE(diffStores(a, b).clean());

    // One extra escaped flip in one episode: the cell-level counter sums
    // differ, and the comparator names the drifted counter.
    writeStore(b, {"v2|p1"}, 6, -1, true, /*perturbFlipsEpisode=*/2);
    const StoreDiffResult res = diffStores(a, b);
    ASSERT_EQ(res.entries.size(), 1u);
    EXPECT_EQ(res.entries[0].kind, StoreDiffEntry::Kind::Stat);
    EXPECT_NE(res.entries[0].detail.find("metrics.flipsEscaped"),
              std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreDiff, MetricsAbsentOnOneSideIsNotDrift)
{
    // Comparing a v3 store against a metrics-off (or v2-era) store of the
    // same campaign must gate on the results, not the payload's absence.
    const std::string a = "/tmp/create_test_diff_a.json";
    const std::string b = "/tmp/create_test_diff_b.json";
    writeStore(a, {"v2|p1"}, 5, -1, /*withMetrics=*/true);
    writeStore(b, {"v2|p1"}, 5);
    EXPECT_TRUE(diffStores(a, b).clean());
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreDiff, MixedMetricsLedgerDropsTheSummedCounters)
{
    // A ledger where only some episodes carry metrics (e.g. resumed by a
    // metrics-off build) is not comparable counter-wise: hasMetrics must
    // be false so build provenance can never flip a gate verdict.
    const std::string path = "/tmp/create_test_diff_mixed.json";
    std::vector<JsonRecord> records;
    JsonRecord schema;
    schema.name = kSweepStoreSchemaRecord;
    schema.numbers.emplace_back("schema", kSweepStoreSchema);
    records.push_back(schema);
    for (int i = 0; i < 4; ++i) {
        EpisodeRecord e = makeEpisode(i, true);
        if (i != 2)
            attachMetrics(e, i);
        records.push_back(episodeToRecord(sweepEpisodeKey("v2|p1", i), e));
    }
    ASSERT_TRUE(writeJsonRecords(path, records));

    std::vector<StoreCell> cells;
    std::string error;
    ASSERT_TRUE(loadStoreCells(path, cells, error));
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].episodes, 4);
    EXPECT_FALSE(cells[0].hasMetrics);
    EXPECT_EQ(cells[0].metrics.flipsInjected, 0u);
    std::remove(path.c_str());
}

TEST(StoreDiff, MissingFileIsAnError)
{
    std::vector<StoreCell> cells;
    std::string error;
    EXPECT_FALSE(
        loadStoreCells("/tmp/create_no_such_store.json", cells, error));
    EXPECT_FALSE(error.empty());
    EXPECT_THROW(diffStores("/tmp/create_no_such_store.json",
                            "/tmp/create_no_such_store.json"),
                 std::runtime_error);
}

TEST(StoreDiff, TruncatedStoreSalvagesPrefixAndQuarantines)
{
    // A campaign killed mid-write (or a chaos-torn store) must still
    // certify every episode that landed: loadStoreCells folds the
    // parseable prefix instead of aborting, quarantines the bad tail,
    // and the diff against the intact store reports the lost episodes
    // as a count mismatch -- drift, not a crash.
    const std::string full = "/tmp/create_test_salv_full.json";
    const std::string torn = "/tmp/create_test_salv_torn.json";
    const std::string quar = torn + ".quarantine";
    writeStore(full, {"v2|salv"}, 6);

    std::string text;
    {
        std::FILE* f = std::fopen(full.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[8192];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    // Tear the file mid-way through the last episode record (cutting at
    // its computeJ key is guaranteed to land inside the record).
    const std::size_t cut = text.rfind("computeJ");
    ASSERT_NE(cut, std::string::npos);
    {
        std::FILE* f = std::fopen(torn.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(text.data(), 1, cut, f), cut);
        std::fclose(f);
    }

    std::vector<StoreCell> cells;
    std::string error;
    ASSERT_TRUE(loadStoreCells(torn, cells, error));
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_GT(cells[0].episodes, 0);
    EXPECT_LT(cells[0].episodes, 6);
    // The bad tail survives for post-mortem.
    std::FILE* q = std::fopen(quar.c_str(), "rb");
    ASSERT_NE(q, nullptr);
    std::fclose(q);

    const StoreDiffResult res = diffStores(full, torn);
    EXPECT_FALSE(res.clean());

    // A file with no parseable record prefix at all is still an error.
    const std::string junk = "/tmp/create_test_salv_junk.json";
    {
        std::FILE* f = std::fopen(junk.c_str(), "wb");
        std::fputs("this is not a record store", f);
        std::fclose(f);
    }
    EXPECT_FALSE(loadStoreCells(junk, cells, error));
    EXPECT_NE(error.find("parse"), std::string::npos);

    std::remove(full.c_str());
    std::remove(torn.c_str());
    std::remove(quar.c_str());
    std::remove(junk.c_str());
}

TEST(StoreDiff, LeaseRecordsSurfaceButNeverCompare)
{
    // Lease records are elastic-campaign scheduling state: loadStoreCells
    // surfaces owner/gen/done for attribution, and two stores differing
    // only in leases (one mid-campaign, one finished) still diff clean.
    const std::string a = "/tmp/create_test_lease_a.json";
    const std::string b = "/tmp/create_test_lease_b.json";
    writeStore(a, {"v2|leased"}, 4);
    writeStore(b, {"v2|leased"}, 4);
    {
        std::vector<JsonRecord> records;
        ASSERT_TRUE(readJsonRecords(a, records));
        JsonRecord lease;
        lease.name = sweepLeaseKey("v2|leased");
        lease.strings.emplace_back("owner", "hostA:111.1");
        lease.numbers.emplace_back("gen", 3);
        lease.numbers.emplace_back("renewedAt", 1e9);
        lease.numbers.emplace_back("done", 1);
        records.push_back(std::move(lease));
        ASSERT_TRUE(writeJsonRecords(a, records));
    }

    std::vector<StoreCell> cells;
    std::string error;
    ASSERT_TRUE(loadStoreCells(a, cells, error));
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].leaseOwner, "hostA:111.1");
    EXPECT_EQ(cells[0].leaseGen, 3);
    EXPECT_TRUE(cells[0].leaseDone);
    EXPECT_TRUE(cells[0].episodeOwners.empty()); // no `by` stamps

    const StoreDiffResult res = diffStores(a, b);
    EXPECT_TRUE(res.clean()) << "lease records must not be compared";

    std::remove(a.c_str());
    std::remove(b.c_str());
}
