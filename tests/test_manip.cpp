/** @file Tests for ManipWorld (cross-platform tasks) and its expert. */

#include <gtest/gtest.h>

#include "env/manip_expert.hpp"
#include "env/manipworld.hpp"

using namespace create;

TEST(ManipWorld, DeterministicReset)
{
    ManipWorld a(ManipTask::Wine, 5);
    ManipWorld b(ManipTask::Wine, 5);
    EXPECT_EQ(a.objectX(), b.objectX());
    EXPECT_EQ(a.goalX(), b.goalX());
    EXPECT_EQ(a.gripperY(), b.gripperY());
}

TEST(ManipWorld, GraspOnlyOnObject)
{
    ManipWorld w(ManipTask::Coke, 6);
    // Try grasping off-object: never succeeds.
    if (w.gripperX() != w.objectX() || w.gripperY() != w.objectY()) {
        w.step(ManipAction::Grasp);
        EXPECT_FALSE(w.holding());
    }
}

TEST(ManipWorld, HoldingMovesObject)
{
    ManipWorld w(ManipTask::Wine, 7);
    Rng rng(7);
    w.setActiveSubtask(ManipSubtask::ReachObject);
    for (int i = 0; i < 60 && !w.subtaskComplete(); ++i)
        w.step(ManipExpert::act(w, rng));
    ASSERT_TRUE(w.subtaskComplete());
    w.setActiveSubtask(ManipSubtask::GraspObject);
    for (int i = 0; i < 20 && !w.holding(); ++i)
        w.step(ManipAction::Grasp);
    ASSERT_TRUE(w.holding());
    const int ox = w.objectX();
    w.step(ManipAction::MoveE);
    if (w.gripperX() == ox + 1)
        EXPECT_EQ(w.objectX(), ox + 1);
}

TEST(ManipWorld, PullChainResetsOnInterruption)
{
    ManipWorld w(ManipTask::Handle, 8);
    Rng rng(8);
    w.setActiveSubtask(ManipSubtask::ReachHandle);
    for (int i = 0; i < 60 && !w.subtaskComplete(); ++i)
        w.step(ManipExpert::act(w, rng));
    ASSERT_TRUE(w.subtaskComplete());
    w.setActiveSubtask(ManipSubtask::PullHandle);
    w.step(ManipAction::Pull);
    w.step(ManipAction::Pull);
    EXPECT_EQ(w.pullProgress(), 2);
    w.step(ManipAction::Noop); // interruption
    EXPECT_EQ(w.pullProgress(), 0);
    w.step(ManipAction::Pull);
    w.step(ManipAction::Pull);
    w.step(ManipAction::Pull);
    EXPECT_TRUE(w.taskComplete());
}

TEST(ManipWorld, ButtonNeedsTwoPresses)
{
    ManipWorld w(ManipTask::Button, 9);
    Rng rng(9);
    w.setActiveSubtask(ManipSubtask::ReachButton);
    for (int i = 0; i < 60 && !w.subtaskComplete(); ++i)
        w.step(ManipExpert::act(w, rng));
    ASSERT_TRUE(w.subtaskComplete());
    w.setActiveSubtask(ManipSubtask::PressButton);
    w.step(ManipAction::Press);
    EXPECT_FALSE(w.taskComplete());
    w.step(ManipAction::Press);
    EXPECT_TRUE(w.taskComplete());
}

TEST(ManipWorld, ObservationDims)
{
    ManipWorld w(ManipTask::Bbq, 10);
    const ManipObs obs = w.observe();
    EXPECT_EQ(static_cast<int>(obs.spatial.size()), ManipObs::spatialDim());
    EXPECT_EQ(static_cast<int>(obs.state.size()), ManipObs::stateDim());
}

TEST(ManipWorld, RenderImage)
{
    ManipWorld w(ManipTask::Bbq, 11);
    const Tensor img = w.renderImage(24);
    EXPECT_EQ(img.dim(0), 3);
    EXPECT_EQ(img.dim(1), 24);
    for (std::int64_t i = 0; i < img.numel(); ++i) {
        EXPECT_GE(img[i], 0.0f);
        EXPECT_LE(img[i], 1.0f);
    }
}

TEST(ManipWorld, GoldPlansNonEmpty)
{
    for (int t = 0; t < kNumManipTasks; ++t) {
        const auto plan = manipGoldPlan(static_cast<ManipTask>(t));
        EXPECT_FALSE(plan.empty());
        EXPECT_LE(plan.size(), 6u);
    }
}

/** Property: the expert solves all twelve cross-platform tasks. */
class ManipExpertSolves : public ::testing::TestWithParam<int>
{
};

TEST_P(ManipExpertSolves, FullPlan)
{
    const auto task = static_cast<ManipTask>(GetParam());
    int successes = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        ManipWorld w(task, seed * 131);
        Rng rng(seed);
        for (const auto st : manipGoldPlan(task)) {
            w.setActiveSubtask(st);
            for (int i = 0; i < 80 && !w.subtaskComplete(); ++i)
                w.step(ManipExpert::act(w, rng));
            if (!w.subtaskComplete())
                break;
        }
        if (w.taskComplete())
            ++successes;
    }
    EXPECT_GE(successes, 3) << manipTaskName(task);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, ManipExpertSolves,
                         ::testing::Range(0, kNumManipTasks),
                         [](const auto& info) {
                             return manipTaskName(
                                 static_cast<ManipTask>(info.param));
                         });
