/** @file Tests for quantization and the fault models/injector. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fault/error_model.hpp"
#include "fault/injector.hpp"
#include "quant/quant.hpp"

using namespace create;

// --- quantization ----------------------------------------------------------

TEST(Quant, MaxLevels)
{
    EXPECT_EQ(quantMaxLevel(QuantBits::Int8), 127);
    EXPECT_EQ(quantMaxLevel(QuantBits::Int4), 7);
}

TEST(Quant, RoundTripErrorBoundedByHalfScale)
{
    Rng rng(3);
    Tensor t({256});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-4.0, 4.0));
    const auto qp = QuantParams::fromAbsMax(4.0f, QuantBits::Int8);
    const auto q = quantize(t, qp);
    const Tensor back = dequantize(q, t.shape(), qp);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_LE(std::fabs(back[i] - t[i]), qp.scale * 0.5f + 1e-6f);
}

TEST(Quant, SaturatesOutOfRange)
{
    Tensor t({2}, {100.0f, -100.0f});
    const auto qp = QuantParams::fromAbsMax(1.0f);
    const auto q = quantize(t, qp);
    EXPECT_EQ(q[0], 127);
    EXPECT_EQ(q[1], -127);
}

TEST(Quant, Int4UsesSevenLevels)
{
    Tensor t({1}, {7.0f});
    const auto qp = QuantParams::fromAbsMax(7.0f, QuantBits::Int4);
    EXPECT_FLOAT_EQ(qp.scale, 1.0f);
    EXPECT_EQ(quantize(t, qp)[0], 7);
}

TEST(Quant, DegenerateAbsMaxGuarded)
{
    const auto qp = QuantParams::fromAbsMax(0.0f);
    EXPECT_GT(qp.scale, 0.0f);
}

TEST(Quant, ObserverTracksMax)
{
    AbsMaxObserver obs;
    EXPECT_FALSE(obs.seeded());
    obs.observe(Tensor({2}, {1.0f, -3.0f}));
    obs.observe(Tensor({1}, {2.0f}));
    EXPECT_TRUE(obs.seeded());
    EXPECT_FLOAT_EQ(obs.absMax(), 3.0f);
    obs.reset();
    EXPECT_FALSE(obs.seeded());
}

// --- error models ------------------------------------------------------------

TEST(ErrorModel, UniformRatesEqualBer)
{
    UniformErrorModel m(1e-4);
    for (int b = 0; b < kAccumulatorBits; ++b)
        EXPECT_DOUBLE_EQ(m.bitRate(b), 1e-4);
    EXPECT_NEAR(m.meanBitRate(), 1e-4, 1e-12);
}

TEST(ErrorModel, TimingModelMeanMatchesBerCurve)
{
    for (double v : {0.85, 0.80, 0.75, 0.70, 0.65}) {
        TimingErrorModel m(v);
        EXPECT_NEAR(m.meanBitRate(), TimingErrorModel::berAtVoltage(v),
                    TimingErrorModel::berAtVoltage(v) * 0.05);
    }
}

TEST(ErrorModel, HigherBitsFailFirst)
{
    TimingErrorModel m(0.75);
    for (int b = 1; b < kAccumulatorBits; ++b)
        EXPECT_GE(m.bitRate(b), m.bitRate(b - 1));
    EXPECT_GT(m.bitRate(23), 100.0 * m.bitRate(0));
}

/** Property: BER grows monotonically as voltage drops (Fig. 1(b)). */
class BerMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(BerMonotone, LowerVoltageHigherBer)
{
    const double v = GetParam();
    EXPECT_GE(TimingErrorModel::berAtVoltage(v - 0.05),
              TimingErrorModel::berAtVoltage(v));
}

INSTANTIATE_TEST_SUITE_P(Voltages, BerMonotone,
                         ::testing::Values(0.90, 0.85, 0.80, 0.75, 0.70,
                                           0.65));

TEST(ErrorModel, NominalVoltageEffectivelyErrorFree)
{
    EXPECT_LE(TimingErrorModel::berAtVoltage(0.90), 1e-9);
    EXPECT_LE(TimingErrorModel::berAtVoltage(0.95), 1e-9);
}

TEST(ErrorModel, AnchorsInPaperRegime)
{
    // ~1e-7..1e-8 at 0.85 V; ~1e-4 at 0.75 V; >=1e-3 at 0.65 V.
    const double b85 = TimingErrorModel::berAtVoltage(0.85);
    EXPECT_GT(b85, 1e-9);
    EXPECT_LT(b85, 1e-6);
    EXPECT_NEAR(std::log10(TimingErrorModel::berAtVoltage(0.75)), -4.0, 1.0);
    EXPECT_GE(TimingErrorModel::berAtVoltage(0.65), 1e-3);
}

// --- injector ------------------------------------------------------------------

TEST(Injector, SignExtend24)
{
    EXPECT_EQ(BitFlipInjector::signExtend24(0x00800000), -8388608);
    EXPECT_EQ(BitFlipInjector::signExtend24(0x007FFFFF), 8388607);
    EXPECT_EQ(BitFlipInjector::signExtend24(5), 5);
    EXPECT_EQ(BitFlipInjector::signExtend24(-5), -5);
}

TEST(Injector, FlipBitIsInvolution)
{
    for (int bit = 0; bit < kAccumulatorBits; ++bit) {
        const std::int32_t v = 123456;
        EXPECT_EQ(BitFlipInjector::flipBit(BitFlipInjector::flipBit(v, bit),
                                           bit),
                  v);
    }
}

TEST(Injector, MsbFlipChangesSign)
{
    EXPECT_LT(BitFlipInjector::flipBit(100, 23), 0);
}

TEST(Injector, ZeroRateIsNoOp)
{
    std::vector<std::int32_t> acc(1000, 7);
    Rng rng(1);
    const std::vector<double> rates(kAccumulatorBits, 0.0);
    const auto stats =
        BitFlipInjector::inject(acc.data(), acc.size(), rates, rng);
    EXPECT_EQ(stats.flips, 0u);
    for (auto v : acc)
        EXPECT_EQ(v, 7);
}

TEST(Injector, RecordsPositions)
{
    std::vector<std::int32_t> acc(500, 1);
    Rng rng(2);
    std::vector<double> rates(kAccumulatorBits, 0.0);
    rates[23] = 0.1;
    std::vector<std::size_t> positions;
    const auto stats = BitFlipInjector::inject(acc.data(), acc.size(), rates,
                                               rng, &positions);
    EXPECT_EQ(stats.flips, positions.size());
    for (auto idx : positions) {
        EXPECT_LT(idx, acc.size());
        EXPECT_NE(acc[idx], 1);
    }
}

/** Property: flip counts track n * 24 * BER for the uniform model. */
class InjectorRate : public ::testing::TestWithParam<double>
{
};

TEST_P(InjectorRate, FlipCountMatchesExpectation)
{
    const double ber = GetParam();
    const std::size_t n = 20000;
    const std::vector<double> rates(kAccumulatorBits, ber);
    Rng rng(42);
    std::uint64_t total = 0;
    const int trials = 50;
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<std::int32_t> acc(n, 0);
        total +=
            BitFlipInjector::inject(acc.data(), acc.size(), rates, rng).flips;
    }
    const double expected =
        static_cast<double>(n) * kAccumulatorBits * ber * trials;
    EXPECT_NEAR(static_cast<double>(total), expected,
                6.0 * std::sqrt(expected) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Bers, InjectorRate,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 1e-2));

TEST(Injector, ResultStaysWithin24Bits)
{
    std::vector<std::int32_t> acc(2000, 8000000);
    Rng rng(3);
    std::vector<double> rates(kAccumulatorBits, 0.05);
    BitFlipInjector::inject(acc.data(), acc.size(), rates, rng);
    for (auto v : acc) {
        EXPECT_LE(v, 8388607);
        EXPECT_GE(v, -8388608);
    }
}
