/** @file Tests for the sweep-stats tail-analytics engine: the nearest-rank
 *  percentile against a naive sort-based reference, convergence
 *  checkpoints, (platform, task, protection) rollups over pooled episode
 *  samples, and the percentile-drift comparator behind the golden-store
 *  CI gate. All stores here are synthesized ledgers -- no models run. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/serialize.hpp"
#include "core/store_stats.hpp"
#include "core/sweep.hpp"

using namespace create;

namespace {

/** Naive reference: sort everything, take the nearest-rank sample. */
double
naivePercentile(std::vector<double> samples, double pct)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
    rank = std::min(std::max<std::size_t>(rank, 1), samples.size());
    return samples[rank - 1];
}

/** Deterministic sample stream (no RNG seeds to keep in sync). */
std::vector<double>
syntheticSamples(int n)
{
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n));
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        v.push_back(static_cast<double>(x >> 11) * 0x1.0p-40);
    }
    return v;
}

struct LedgerSpec
{
    std::string fingerprint;
    std::string platform;
    int episodes = 0;
    double energyBase = 100.0; //!< computeJ of episode i: base / (i + 1)
    int successEvery = 2;      //!< episode i succeeds when i % this == 0
    bool withMetrics = false;
};

/** Write a store of synthesized ledgers in the v2/v3 record layout. */
void
writeStatsStore(const std::string& path,
                const std::vector<LedgerSpec>& specs)
{
    std::vector<JsonRecord> records;
    JsonRecord schema;
    schema.name = kSweepStoreSchemaRecord;
    schema.numbers.emplace_back("schema", kSweepStoreSchema);
    records.push_back(schema);
    for (const LedgerSpec& spec : specs) {
        JsonRecord meta;
        meta.name = spec.fingerprint;
        meta.strings.emplace_back("platform", spec.platform);
        meta.strings.emplace_back("label", "");
        records.push_back(meta);
        for (int i = 0; i < spec.episodes; ++i) {
            EpisodeRecord e;
            e.result.success = i % spec.successEvery == 0;
            e.result.steps = 50 + 7 * i;
            e.computeJ = spec.energyBase / (i + 1);
            if (spec.withMetrics) {
                e.metrics.present = true;
                e.metrics.wallMs = 10.0 + i;
                e.metrics.gemms = 4;
                e.metrics.flipsInjected = static_cast<std::uint64_t>(i);
            }
            records.push_back(
                episodeToRecord(sweepEpisodeKey(spec.fingerprint, i), e));
        }
    }
    ASSERT_TRUE(writeJsonRecords(path, records));
}

StoreStatsResult
statsOf(const std::string& path)
{
    StoreStatsResult stats;
    std::string error;
    EXPECT_TRUE(computeStoreStats(path, stats, error)) << error;
    return stats;
}

} // namespace

TEST(Percentile, MatchesNaiveReference)
{
    for (const int n : {1, 2, 3, 5, 7, 19, 20, 21, 64, 100, 101}) {
        const std::vector<double> samples = syntheticSamples(n);
        for (const double pct : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
            SCOPED_TRACE(std::to_string(n) + " samples, p" +
                         std::to_string(pct));
            EXPECT_EQ(percentile(samples, pct),
                      naivePercentile(samples, pct));
        }
    }
}

TEST(Percentile, EdgeCases)
{
    EXPECT_EQ(percentile({}, 95.0), 0.0);
    EXPECT_EQ(percentile({42.0}, 50.0), 42.0);
    EXPECT_EQ(percentile({42.0}, 99.0), 42.0);
    // Every reported value is an actual sample -- p100 is the max.
    const std::vector<double> s = {3.0, 1.0, 2.0};
    EXPECT_EQ(percentile(s, 100.0), 3.0);
    EXPECT_EQ(percentile(s, 50.0), 2.0);
}

TEST(StoreStats, LedgerTailsAndConvergence)
{
    const std::string path = "/tmp/create_test_stats_a.json";
    writeStatsStore(
        path, {{"v2|jarvis-1|task=0|reps=25|seed0=1000|prot=1|inj",
                "jarvis-1", 25, 100.0, 2, /*withMetrics=*/true}});
    const StoreStatsResult stats = statsOf(path);

    ASSERT_EQ(stats.ledgers.size(), 1u);
    const LedgerTail& t = stats.ledgers[0];
    EXPECT_EQ(t.platform, "jarvis-1");
    EXPECT_EQ(t.taskId, 0);
    EXPECT_EQ(t.protection, 1);
    EXPECT_EQ(t.episodes, 25);

    // Percentiles equal the naive reference over the known sample sets.
    std::vector<double> energy, steps;
    for (int i = 0; i < 25; ++i) {
        energy.push_back(100.0 / (i + 1));
        steps.push_back(50.0 + 7 * i);
    }
    EXPECT_EQ(t.energyJ.p50, naivePercentile(energy, 50.0));
    EXPECT_EQ(t.energyJ.p95, naivePercentile(energy, 95.0));
    EXPECT_EQ(t.energyJ.p99, naivePercentile(energy, 99.0));
    EXPECT_EQ(t.steps.p95, naivePercentile(steps, 95.0));
    EXPECT_TRUE(t.hasWall);
    EXPECT_EQ(t.wallMs.p50, 10.0 + 12); // episode wall times are 10 + i

    // Convergence checkpoints: 1, 2, 5, 10, 20, then the full ledger,
    // each carrying the naive running success rate of that prefix.
    const std::vector<int> wantCps = {1, 2, 5, 10, 20, 25};
    ASSERT_EQ(t.convergence.size(), wantCps.size());
    for (std::size_t k = 0; k < wantCps.size(); ++k) {
        const int cp = wantCps[k];
        EXPECT_EQ(t.convergence[k].first, cp);
        int succ = 0;
        for (int i = 0; i < cp; ++i)
            succ += i % 2 == 0 ? 1 : 0;
        EXPECT_EQ(t.convergence[k].second,
                  static_cast<double>(succ) / cp);
    }

    // Summed fault attribution: flipsInjected of episode i is i.
    EXPECT_TRUE(t.hasMetrics);
    EXPECT_EQ(t.metrics.flipsInjected,
              static_cast<std::uint64_t>(25 * 24 / 2));
    std::remove(path.c_str());
}

TEST(StoreStats, GroupsPoolEpisodesAcrossLedgers)
{
    const std::string path = "/tmp/create_test_stats_groups.json";
    // Two ledgers of the same (platform, task, prot) -- different seeds --
    // plus one under a different protection mode.
    writeStatsStore(
        path,
        {{"v2|jarvis-1|task=0|reps=8|seed0=1000|prot=0|inj", "jarvis-1", 8,
          100.0, 2},
         {"v2|jarvis-1|task=0|reps=6|seed0=2000|prot=0|inj", "jarvis-1", 6,
          300.0, 3},
         {"v2|jarvis-1|task=0|reps=6|seed0=1000|prot=3|inj", "jarvis-1", 6,
          100.0, 2}});
    const StoreStatsResult stats = statsOf(path);

    ASSERT_EQ(stats.ledgers.size(), 3u);
    ASSERT_EQ(stats.groups.size(), 2u);
    const GroupTail& pooled = stats.groups[0]; // (jarvis-1, 0, prot=0)
    EXPECT_EQ(pooled.protection, 0);
    EXPECT_EQ(pooled.ledgers, 2);
    EXPECT_EQ(pooled.episodes, 14);

    // The rollup percentile runs over the pooled samples, not a mean of
    // the per-ledger percentiles.
    std::vector<double> energy;
    for (int i = 0; i < 8; ++i)
        energy.push_back(100.0 / (i + 1));
    for (int i = 0; i < 6; ++i)
        energy.push_back(300.0 / (i + 1));
    EXPECT_EQ(pooled.energyJ.p95, naivePercentile(energy, 95.0));

    // Pooled success rate: ceil(8/2)=4 of 8 plus ceil(6/3)=2 of 6.
    EXPECT_EQ(pooled.successRate, 6.0 / 14.0);

    EXPECT_EQ(stats.groups[1].protection, 3);
    EXPECT_EQ(stats.groups[1].ledgers, 1);
    std::remove(path.c_str());
}

TEST(StoreStatsCompare, CleanOnIdenticalStores)
{
    const std::string a = "/tmp/create_test_stats_cmp_a.json";
    const std::string b = "/tmp/create_test_stats_cmp_b.json";
    const std::vector<LedgerSpec> specs = {
        {"v2|jarvis-1|task=0|reps=8|seed0=1000|prot=0|inj", "jarvis-1", 8},
        {"v2|openvla+octo|task=2|reps=8|seed0=1000|prot=1|inj",
         "openvla+octo", 8},
    };
    writeStatsStore(a, specs);
    writeStatsStore(b, specs);
    const StatsCompareResult cmp =
        compareStoreStats(statsOf(a), statsOf(b), {});
    EXPECT_TRUE(cmp.clean());
    EXPECT_EQ(cmp.compared, 2);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreStatsCompare, NamesTheDriftedPercentile)
{
    const std::string a = "/tmp/create_test_stats_cmp_a.json";
    const std::string b = "/tmp/create_test_stats_cmp_b.json";
    const std::string fp = "v2|jarvis-1|task=0|reps=8|seed0=1000|prot=0|x";
    writeStatsStore(a, {{fp, "jarvis-1", 8, 100.0}});
    writeStatsStore(b, {{fp, "jarvis-1", 8, 100.5}}); // all energies shift
    const StatsCompareResult cmp =
        compareStoreStats(statsOf(a), statsOf(b), {});
    ASSERT_FALSE(cmp.entries.empty());
    EXPECT_EQ(cmp.entries[0].fingerprint, fp);
    EXPECT_NE(cmp.entries[0].detail.find("energyJ.p"), std::string::npos);
    // Steps are identical: no drift entry may name them.
    for (const StatsDriftEntry& e : cmp.entries)
        EXPECT_EQ(e.detail.find("steps."), std::string::npos) << e.detail;

    // The same drift passes under a proportional tolerance (the
    // reserved-for-noisy-stats escape hatch, never the golden default).
    StoreDiffOptions tol;
    tol.relTol = 0.01;
    EXPECT_TRUE(compareStoreStats(statsOf(a), statsOf(b), tol).clean());
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreStatsCompare, EpisodeCountMismatchShortCircuits)
{
    const std::string a = "/tmp/create_test_stats_cmp_a.json";
    const std::string b = "/tmp/create_test_stats_cmp_b.json";
    const std::string fp = "v2|jarvis-1|task=0|reps=8|seed0=1000|prot=0|x";
    writeStatsStore(a, {{fp, "jarvis-1", 8}});
    writeStatsStore(b, {{fp, "jarvis-1", 5}});
    const StatsCompareResult cmp =
        compareStoreStats(statsOf(a), statsOf(b), {});
    // One entry naming the fold length, not a cascade of percentile hits.
    ASSERT_EQ(cmp.entries.size(), 1u);
    EXPECT_NE(cmp.entries[0].detail.find("episodes"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreStatsCompare, UnmatchedLedgersFailTheGate)
{
    const std::string a = "/tmp/create_test_stats_cmp_a.json";
    const std::string b = "/tmp/create_test_stats_cmp_b.json";
    writeStatsStore(
        a, {{"v2|jarvis-1|task=0|reps=4|seed0=1|prot=0|x", "jarvis-1", 4},
            {"v2|jarvis-1|task=1|reps=4|seed0=1|prot=0|x", "jarvis-1", 4}});
    writeStatsStore(
        b, {{"v2|jarvis-1|task=1|reps=4|seed0=1|prot=0|x", "jarvis-1", 4},
            {"v2|jarvis-1|task=2|reps=4|seed0=1|prot=0|x", "jarvis-1", 4}});
    const StatsCompareResult cmp =
        compareStoreStats(statsOf(a), statsOf(b), {});
    EXPECT_EQ(cmp.compared, 1);
    EXPECT_EQ(cmp.onlyA, 1);
    EXPECT_EQ(cmp.onlyB, 1);
    EXPECT_TRUE(cmp.entries.empty());
    EXPECT_FALSE(cmp.clean()); // a missing cell must never pass a gate
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(StoreStats, LegacyCellsAreCountedNotAnalyzed)
{
    const std::string path = "/tmp/create_test_stats_legacy.json";
    JsonRecord rec;
    rec.name = "v1|jarvis-1|task=0|reps=4|seed0=1000|tech=---";
    rec.numbers.emplace_back("episodes", 4);
    rec.numbers.emplace_back("successes", 3);
    for (const auto& [key, member] : kTaskStatFields) {
        (void)member;
        rec.numbers.emplace_back(key, 1.0);
    }
    ASSERT_TRUE(writeJsonRecords(path, {rec}));
    const StoreStatsResult stats = statsOf(path);
    EXPECT_TRUE(stats.ledgers.empty());
    EXPECT_TRUE(stats.groups.empty());
    EXPECT_EQ(stats.legacyCells, 1);
    std::remove(path.c_str());
}
