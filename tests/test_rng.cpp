/** @file Unit + property tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

using namespace create;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng r(9);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(10);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveHitsEndpoints)
{
    Rng r(12);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.rangeInclusive(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        lo |= v == 2;
        hi |= v == 5;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, NormalMoments)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng r(14);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-1.0));
    EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, PoissonMean)
{
    Rng r(15);
    for (double mean : {0.5, 3.0, 40.0}) {
        double sum = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(r.poisson(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05);
    }
}

TEST(Rng, SampleDistinctUnique)
{
    Rng r(16);
    const auto s = r.sampleDistinct(100, 30);
    std::set<std::uint64_t> seen(s.begin(), s.end());
    EXPECT_EQ(seen.size(), 30u);
    for (auto v : s)
        EXPECT_LT(v, 100u);
}

TEST(Rng, SampleDistinctAllWhenKEqualsN)
{
    Rng r(17);
    const auto s = r.sampleDistinct(10, 10);
    EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(18);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

/** Property: binomial sample means track n*p across regimes (exact,
 *  Poisson-approximated, and normal-approximated paths). */
class BinomialMean
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>>
{
};

TEST_P(BinomialMean, MatchesExpectation)
{
    const auto [n, p] = GetParam();
    Rng r(99 + n);
    double sum = 0.0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i)
        sum += static_cast<double>(r.binomial(n, p));
    const double expected = static_cast<double>(n) * p;
    const double sigma =
        std::sqrt(static_cast<double>(n) * p * (1.0 - p) /
                  static_cast<double>(trials));
    EXPECT_NEAR(sum / trials, expected, 6.0 * sigma + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMean,
    ::testing::Values(std::make_tuple(10ull, 0.3), std::make_tuple(64ull, 0.5),
                      std::make_tuple(1000ull, 1e-3),
                      std::make_tuple(100000ull, 1e-4),
                      std::make_tuple(1000000ull, 1e-6),
                      std::make_tuple(5000ull, 0.4),
                      std::make_tuple(100000ull, 0.01)));

TEST(Rng, BinomialEdgeCases)
{
    Rng r(20);
    EXPECT_EQ(r.binomial(0, 0.5), 0u);
    EXPECT_EQ(r.binomial(100, 0.0), 0u);
    EXPECT_EQ(r.binomial(100, 1.0), 100u);
}
