/** @file Tests for the ParallelEvaluator and the EmbodiedSystem facade:
 *  serial-vs-parallel bit-identity on both platform backends (with the
 *  cross-episode GEMM fusion queue on and off), per-episode RNG stream
 *  isolation, direct BatchedInferenceQueue unit checks, and the generic
 *  interface surface. */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/create_system.hpp"
#include "core/manip_system.hpp"
#include "core/parallel_eval.hpp"
#include "test_util.hpp"

using namespace create;
using testutil::expectIdentical;

namespace {

MineSystem&
mineSys()
{
    static MineSystem s(/*verbose=*/false);
    return s;
}

ManipSystem&
manipSys()
{
    static ManipSystem s("openvla", "octo", /*verbose=*/false);
    return s;
}

} // namespace

TEST(ParallelEval, MineSerialVs4ThreadsBitIdentical)
{
    // Injection active so the fault-injection RNG streams matter.
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    cfg.anomalyDetection = true;
    const int reps = 6;

    const TaskStats serial =
        mineSys().evaluate(MineTask::Wooden, cfg, reps);
    ParallelEvaluator pool(mineSys(), /*threads=*/4);
    const TaskStats parallel =
        pool.evaluate(static_cast<int>(MineTask::Wooden), cfg, reps);
    expectIdentical(serial, parallel);
}

TEST(ParallelEval, ManipSerialVs4ThreadsBitIdentical)
{
    // Planner-side CREATE point: AD+WR at an aggressive planner voltage.
    CreateConfig cfg = CreateConfig::atVoltage(0.72, 0.90);
    cfg.anomalyDetection = true;
    cfg.weightRotation = true;
    const int reps = 6;

    const TaskStats serial =
        manipSys().evaluate(ManipTask::Wine, cfg, reps);
    ParallelEvaluator pool(manipSys(), /*threads=*/4);
    const TaskStats parallel =
        pool.evaluate(static_cast<int>(ManipTask::Wine), cfg, reps);
    expectIdentical(serial, parallel);
}

TEST(ParallelEval, EvaluateViaSystemThreadsMatchesSerial)
{
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    const int reps = 5;
    mineSys().setEvalThreads(1);
    const TaskStats serial = mineSys().evaluate(MineTask::Stone, cfg, reps);
    mineSys().setEvalThreads(4);
    const TaskStats parallel = mineSys().evaluate(MineTask::Stone, cfg, reps);
    mineSys().setEvalThreads(1);
    expectIdentical(serial, parallel);
}

TEST(ParallelEval, EpisodeRngStreamsAreIsolated)
{
    // Every episode must depend only on its own seed: running episode i
    // alone, in reverse order, or in a 4-thread pool yields the identical
    // EpisodeResult -- no RNG state leaks between repetitions.
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    cfg.anomalyDetection = true;
    const int reps = 4;
    const std::uint64_t seed0 = 4242;

    ParallelEvaluator pool(mineSys(), /*threads=*/4);
    const auto pooled = pool.runEpisodes(static_cast<int>(MineTask::Wooden),
                                         cfg, reps, seed0);
    ASSERT_EQ(pooled.size(), static_cast<std::size_t>(reps));

    for (int i = reps - 1; i >= 0; --i) {
        const EpisodeResult solo = mineSys().runEpisode(
            MineTask::Wooden, seed0 + static_cast<std::uint64_t>(i), cfg);
        expectIdentical(solo, pooled[static_cast<std::size_t>(i)]);
    }
}

TEST(ParallelEval, RepeatedParallelRunsAreDeterministic)
{
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    ParallelEvaluator pool(mineSys(), /*threads=*/3);
    const TaskStats a =
        pool.evaluate(static_cast<int>(MineTask::Wooden), cfg, 5);
    const TaskStats b =
        pool.evaluate(static_cast<int>(MineTask::Wooden), cfg, 5);
    expectIdentical(a, b);
}

TEST(EmbodiedSystem, GenericInterfaceCoversBothPlatforms)
{
    EmbodiedSystem& mine = mineSys();
    EXPECT_STREQ(mine.platformName(), "jarvis-1");
    EXPECT_EQ(mine.numTasks(), kNumMineTasks);
    EXPECT_STREQ(mine.taskName(static_cast<int>(MineTask::Wooden)),
                 "wooden");

    EmbodiedSystem& manip = manipSys();
    EXPECT_STREQ(manip.platformName(), "openvla+octo");
    EXPECT_EQ(manip.numTasks(), kNumManipTasks);
    EXPECT_STREQ(manip.taskName(static_cast<int>(ManipTask::Wine)), "wine");

    // Both run the same deployment configuration through the same entry
    // point and produce sane aggregates.
    const CreateConfig cfg = CreateConfig::clean();
    for (EmbodiedSystem* sys : {&mine, &manip}) {
        const TaskStats s = sys->evaluate(0, cfg, 2);
        EXPECT_EQ(s.episodes, 2);
        EXPECT_GE(s.successRate, 0.0);
        EXPECT_LE(s.successRate, 1.0);
        EXPECT_GT(s.avgComputeJ, 0.0);
    }
}

TEST(ParallelEval, ReplicasInheritAgentConfig)
{
    // A customized AgentConfig must carry over to worker replicas, or the
    // parallel path silently runs different episode limits.
    MineSystem sys(/*verbose=*/false);
    sys.agentConfig().subtaskBudget = 120; // non-default
    CreateConfig cfg = CreateConfig::uniform(2e-3);
    const TaskStats serial = sys.evaluate(MineTask::Wooden, cfg, 4);
    sys.setEvalThreads(4);
    const TaskStats parallel = sys.evaluate(MineTask::Wooden, cfg, 4);
    expectIdentical(serial, parallel);
}

TEST(EmbodiedSystem, ReplicateIsBitIdentical)
{
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    const auto replica = manipSys().replicate();
    const EpisodeResult a =
        manipSys().runEpisode(ManipTask::Button, 777, cfg);
    const EpisodeResult b =
        replica->runEpisode(static_cast<int>(ManipTask::Button), 777, cfg);
    expectIdentical(a, b);
}

TEST(EmbodiedSystem, ReplicasShareFrozenWeightBuffers)
{
    // replicate() must not deep-copy or re-freeze the frozen model set:
    // every replica sees the prototype's FP32 weight buffers and cached
    // quantized weights at the same addresses (shared, not rebuilt).
    CreateConfig cfg = CreateConfig::clean();
    manipSys().prepare(cfg); // freeze once, serially
    const auto ra = manipSys().replicate();
    const auto rb = manipSys().replicate();
    auto* a = dynamic_cast<ManipSystem*>(ra.get());
    auto* b = dynamic_cast<ManipSystem*>(rb.get());
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    nn::Linear& protoHead = manipSys().planner(false).head();
    ASSERT_TRUE(protoHead.quantState().frozen);
    for (ManipSystem* replica : {a, b}) {
        nn::Linear& head = replica->planner(false).head();
        EXPECT_EQ(head.weight().data(), protoHead.weight().data());
        EXPECT_EQ(head.quantState().wq.data(),
                  protoHead.quantState().wq.data());
        EXPECT_EQ(&replica->controller(), &manipSys().controller());
    }

    // Same holds for the Minecraft backend.
    const auto mr = mineSys().replicate();
    auto* m = dynamic_cast<MineSystem*>(mr.get());
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->planner(false).head().weight().data(),
              mineSys().planner(false).head().weight().data());
    EXPECT_EQ(&m->controller(), &mineSys().controller());
}

TEST(BatchedInference, BatchedVsUnbatchedEpisodesBitIdentical)
{
    // The cross-episode GEMM fusion queue must be invisible in results:
    // the same pool of workers with batching on and off, and the serial
    // path, all produce byte-identical TaskStats (fusion only
    // concatenates rows of exact int32 GEMMs; see core/batched_queue.hpp).
    CreateConfig cfg = CreateConfig::atVoltage(0.72, 0.90);
    cfg.anomalyDetection = true;
    const int reps = 6;

    mineSys().setEvalThreads(1);
    const TaskStats serial = mineSys().evaluate(MineTask::Wooden, cfg, reps);

    ParallelEvaluator batched(mineSys(), /*threads=*/4, /*batched=*/true);
    ParallelEvaluator unbatched(mineSys(), /*threads=*/4, /*batched=*/false);
    EXPECT_TRUE(batched.batched());
    EXPECT_FALSE(unbatched.batched());
    const TaskStats tb =
        batched.evaluate(static_cast<int>(MineTask::Wooden), cfg, reps);
    const TaskStats tu =
        unbatched.evaluate(static_cast<int>(MineTask::Wooden), cfg, reps);
    expectIdentical(serial, tb);
    expectIdentical(serial, tu);

    // Every episode GEMM went through the queue and none were dropped.
    const BatchStats bs = batched.batchStats();
    EXPECT_GT(bs.requests, 0u);
    EXPECT_GE(bs.requests, bs.groups);
    EXPECT_GE(bs.maxBatch, 1u);
    EXPECT_EQ(4, bs.peakWorkers);
    EXPECT_EQ(BatchStats{}.requests, unbatched.batchStats().requests);
}

TEST(BatchedInference, SystemToggleRebuildsEvaluatorAndStaysIdentical)
{
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    cfg.anomalyDetection = true;
    const int reps = 5;
    MineSystem sys(/*verbose=*/false);

    const TaskStats serial = sys.evaluate(MineTask::Stone, cfg, reps);
    sys.setEvalThreads(4);
    ASSERT_TRUE(sys.batchedInference()); // default on
    const TaskStats on = sys.evaluate(MineTask::Stone, cfg, reps);
    sys.setBatchedInference(false);
    const TaskStats off = sys.evaluate(MineTask::Stone, cfg, reps);
    sys.setEvalThreads(1);
    expectIdentical(serial, on);
    expectIdentical(serial, off);
}

TEST(BatchedInference, QueueFusesSameKeyRequestsExactly)
{
    // Direct queue unit check: two registered workers submitting GEMMs
    // against the same frozen weight pointer must fuse into one kernel
    // call with exact per-request results; different weight pointers must
    // never fuse.
    const std::int64_t k = 33, n = 13; // ragged on purpose
    Rng rng(7);
    std::vector<std::int8_t> w(static_cast<std::size_t>(k * n));
    for (auto& v : w)
        v = static_cast<std::int8_t>(rng.rangeInclusive(-127, 127));

    auto ref = [&](const std::vector<std::int8_t>& xq, std::int64_t m) {
        std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n), 0);
        for (std::int64_t i = 0; i < m; ++i)
            for (std::int64_t kk = 0; kk < k; ++kk)
                for (std::int64_t j = 0; j < n; ++j)
                    acc[static_cast<std::size_t>(i * n + j)] +=
                        static_cast<std::int32_t>(
                            xq[static_cast<std::size_t>(i * k + kk)]) *
                        static_cast<std::int32_t>(
                            w[static_cast<std::size_t>(kk * n + j)]);
        return acc;
    };

    BatchedInferenceQueue queue(/*batchWindowUs=*/20000);
    std::vector<std::int8_t> x1(static_cast<std::size_t>(1 * k));
    std::vector<std::int8_t> x2(static_cast<std::size_t>(3 * k));
    for (auto& v : x1)
        v = static_cast<std::int8_t>(rng.rangeInclusive(-127, 127));
    for (auto& v : x2)
        v = static_cast<std::int8_t>(rng.rangeInclusive(-127, 127));
    std::vector<std::int32_t> a1(static_cast<std::size_t>(1 * n), 0);
    std::vector<std::int32_t> a2(static_cast<std::size_t>(3 * n), 0);

    {
        // Register both submitters up front (registration counts
        // submitters, it is not bound to a thread): on a single-core
        // host the two scopes might otherwise never overlap and every
        // submission would take the inline path.
        BatchedInferenceQueue::WorkerScope w1(&queue);
        BatchedInferenceQueue::WorkerScope w2(&queue);
        std::thread t1(
            [&] { queue.gemm(x1.data(), 1, k, w.data(), n, a1.data()); });
        std::thread t2(
            [&] { queue.gemm(x2.data(), 3, k, w.data(), n, a2.data()); });
        t1.join();
        t2.join();
    }

    EXPECT_EQ(ref(x1, 1), a1);
    EXPECT_EQ(ref(x2, 3), a2);
    const BatchStats bs = queue.stats();
    EXPECT_EQ(2u, bs.requests);
    EXPECT_EQ(2, bs.peakWorkers);
    // With a 20ms window both workers overwhelmingly land in one fused
    // group ("group full" fires at 2 = registered workers); but a
    // pathological scheduler can still time one worker out first, so
    // only the invariants are asserted, not maxBatch == 2.
    EXPECT_GE(bs.maxBatch, 1u);
    EXPECT_LE(bs.groups, bs.requests);
}

TEST(BatchedInference, InlinePathWithSingleWorker)
{
    // With one (or zero) registered workers the queue executes inline --
    // the serial degenerate case used by single-threaded evaluation.
    const std::int64_t k = 8, n = 4;
    std::vector<std::int8_t> x(static_cast<std::size_t>(k), 1);
    std::vector<std::int8_t> w(static_cast<std::size_t>(k * n), 2);
    std::vector<std::int32_t> acc(static_cast<std::size_t>(n), 0);
    BatchedInferenceQueue queue;
    queue.gemm(x.data(), 1, k, w.data(), n, acc.data());
    for (std::int64_t j = 0; j < n; ++j)
        EXPECT_EQ(16, acc[static_cast<std::size_t>(j)]);
    EXPECT_EQ(1u, queue.stats().requests);
    EXPECT_EQ(1u, queue.stats().groups);
}
