/** @file Tests for the ParallelEvaluator and the EmbodiedSystem facade:
 *  serial-vs-parallel bit-identity on both platform backends, per-episode
 *  RNG stream isolation, and the generic interface surface. */

#include <gtest/gtest.h>

#include "core/create_system.hpp"
#include "core/manip_system.hpp"
#include "core/parallel_eval.hpp"
#include "test_util.hpp"

using namespace create;
using testutil::expectIdentical;

namespace {

MineSystem&
mineSys()
{
    static MineSystem s(/*verbose=*/false);
    return s;
}

ManipSystem&
manipSys()
{
    static ManipSystem s("openvla", "octo", /*verbose=*/false);
    return s;
}

} // namespace

TEST(ParallelEval, MineSerialVs4ThreadsBitIdentical)
{
    // Injection active so the fault-injection RNG streams matter.
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    cfg.anomalyDetection = true;
    const int reps = 6;

    const TaskStats serial =
        mineSys().evaluate(MineTask::Wooden, cfg, reps);
    ParallelEvaluator pool(mineSys(), /*threads=*/4);
    const TaskStats parallel =
        pool.evaluate(static_cast<int>(MineTask::Wooden), cfg, reps);
    expectIdentical(serial, parallel);
}

TEST(ParallelEval, ManipSerialVs4ThreadsBitIdentical)
{
    // Planner-side CREATE point: AD+WR at an aggressive planner voltage.
    CreateConfig cfg = CreateConfig::atVoltage(0.72, 0.90);
    cfg.anomalyDetection = true;
    cfg.weightRotation = true;
    const int reps = 6;

    const TaskStats serial =
        manipSys().evaluate(ManipTask::Wine, cfg, reps);
    ParallelEvaluator pool(manipSys(), /*threads=*/4);
    const TaskStats parallel =
        pool.evaluate(static_cast<int>(ManipTask::Wine), cfg, reps);
    expectIdentical(serial, parallel);
}

TEST(ParallelEval, EvaluateViaSystemThreadsMatchesSerial)
{
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    const int reps = 5;
    mineSys().setEvalThreads(1);
    const TaskStats serial = mineSys().evaluate(MineTask::Stone, cfg, reps);
    mineSys().setEvalThreads(4);
    const TaskStats parallel = mineSys().evaluate(MineTask::Stone, cfg, reps);
    mineSys().setEvalThreads(1);
    expectIdentical(serial, parallel);
}

TEST(ParallelEval, EpisodeRngStreamsAreIsolated)
{
    // Every episode must depend only on its own seed: running episode i
    // alone, in reverse order, or in a 4-thread pool yields the identical
    // EpisodeResult -- no RNG state leaks between repetitions.
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    cfg.anomalyDetection = true;
    const int reps = 4;
    const std::uint64_t seed0 = 4242;

    ParallelEvaluator pool(mineSys(), /*threads=*/4);
    const auto pooled = pool.runEpisodes(static_cast<int>(MineTask::Wooden),
                                         cfg, reps, seed0);
    ASSERT_EQ(pooled.size(), static_cast<std::size_t>(reps));

    for (int i = reps - 1; i >= 0; --i) {
        const EpisodeResult solo = mineSys().runEpisode(
            MineTask::Wooden, seed0 + static_cast<std::uint64_t>(i), cfg);
        expectIdentical(solo, pooled[static_cast<std::size_t>(i)]);
    }
}

TEST(ParallelEval, RepeatedParallelRunsAreDeterministic)
{
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    ParallelEvaluator pool(mineSys(), /*threads=*/3);
    const TaskStats a =
        pool.evaluate(static_cast<int>(MineTask::Wooden), cfg, 5);
    const TaskStats b =
        pool.evaluate(static_cast<int>(MineTask::Wooden), cfg, 5);
    expectIdentical(a, b);
}

TEST(EmbodiedSystem, GenericInterfaceCoversBothPlatforms)
{
    EmbodiedSystem& mine = mineSys();
    EXPECT_STREQ(mine.platformName(), "jarvis-1");
    EXPECT_EQ(mine.numTasks(), kNumMineTasks);
    EXPECT_STREQ(mine.taskName(static_cast<int>(MineTask::Wooden)),
                 "wooden");

    EmbodiedSystem& manip = manipSys();
    EXPECT_STREQ(manip.platformName(), "openvla+octo");
    EXPECT_EQ(manip.numTasks(), kNumManipTasks);
    EXPECT_STREQ(manip.taskName(static_cast<int>(ManipTask::Wine)), "wine");

    // Both run the same deployment configuration through the same entry
    // point and produce sane aggregates.
    const CreateConfig cfg = CreateConfig::clean();
    for (EmbodiedSystem* sys : {&mine, &manip}) {
        const TaskStats s = sys->evaluate(0, cfg, 2);
        EXPECT_EQ(s.episodes, 2);
        EXPECT_GE(s.successRate, 0.0);
        EXPECT_LE(s.successRate, 1.0);
        EXPECT_GT(s.avgComputeJ, 0.0);
    }
}

TEST(ParallelEval, ReplicasInheritAgentConfig)
{
    // A customized AgentConfig must carry over to worker replicas, or the
    // parallel path silently runs different episode limits.
    MineSystem sys(/*verbose=*/false);
    sys.agentConfig().subtaskBudget = 120; // non-default
    CreateConfig cfg = CreateConfig::uniform(2e-3);
    const TaskStats serial = sys.evaluate(MineTask::Wooden, cfg, 4);
    sys.setEvalThreads(4);
    const TaskStats parallel = sys.evaluate(MineTask::Wooden, cfg, 4);
    expectIdentical(serial, parallel);
}

TEST(EmbodiedSystem, ReplicateIsBitIdentical)
{
    CreateConfig cfg = CreateConfig::uniform(5e-4);
    const auto replica = manipSys().replicate();
    const EpisodeResult a =
        manipSys().runEpisode(ManipTask::Button, 777, cfg);
    const EpisodeResult b =
        replica->runEpisode(static_cast<int>(ManipTask::Button), 777, cfg);
    expectIdentical(a, b);
}

TEST(EmbodiedSystem, ReplicasShareFrozenWeightBuffers)
{
    // replicate() must not deep-copy or re-freeze the frozen model set:
    // every replica sees the prototype's FP32 weight buffers and cached
    // quantized weights at the same addresses (shared, not rebuilt).
    CreateConfig cfg = CreateConfig::clean();
    manipSys().prepare(cfg); // freeze once, serially
    const auto ra = manipSys().replicate();
    const auto rb = manipSys().replicate();
    auto* a = dynamic_cast<ManipSystem*>(ra.get());
    auto* b = dynamic_cast<ManipSystem*>(rb.get());
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    nn::Linear& protoHead = manipSys().planner(false).head();
    ASSERT_TRUE(protoHead.quantState().frozen);
    for (ManipSystem* replica : {a, b}) {
        nn::Linear& head = replica->planner(false).head();
        EXPECT_EQ(head.weight().data(), protoHead.weight().data());
        EXPECT_EQ(head.quantState().wq.data(),
                  protoHead.quantState().wq.data());
        EXPECT_EQ(&replica->controller(), &manipSys().controller());
    }

    // Same holds for the Minecraft backend.
    const auto mr = mineSys().replicate();
    auto* m = dynamic_cast<MineSystem*>(mr.get());
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->planner(false).head().weight().data(),
              mineSys().planner(false).head().weight().data());
    EXPECT_EQ(&m->controller(), &mineSys().controller());
}
