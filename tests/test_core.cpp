/** @file Tests for voltage policies, the scaler, configs, and CreateSystem. */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/abft.hpp"
#include "baselines/dmr.hpp"
#include "baselines/thundervolt.hpp"
#include "core/create_system.hpp"

using namespace create;

TEST(Policy, ConstantPolicyIsFlat)
{
    const auto p = EntropyVoltagePolicy::constant(0.75);
    EXPECT_DOUBLE_EQ(p.voltageFor(0.0), 0.75);
    EXPECT_DOUBLE_EQ(p.voltageFor(1.0), 0.75);
}

TEST(Policy, PresetsMapLowEntropyToHighVoltage)
{
    for (const auto& p : EntropyVoltagePolicy::presets()) {
        EXPECT_GE(p.voltageFor(0.0), p.voltageFor(1.0));
        // Piecewise non-increasing.
        double prev = p.voltageFor(0.0);
        for (double h = 0.05; h <= 1.0; h += 0.05) {
            EXPECT_LE(p.voltageFor(h), prev + 1e-12);
            prev = p.voltageFor(h);
        }
    }
}

TEST(Policy, PresetsOrderedByAggressiveness)
{
    const auto presets = EntropyVoltagePolicy::presets();
    for (std::size_t i = 1; i < presets.size(); ++i)
        EXPECT_LE(presets[i].voltageFor(1.0), presets[i - 1].voltageFor(1.0));
}

TEST(Policy, RandomCandidatesAreValidAndMonotone)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const auto p = EntropyVoltagePolicy::random(rng, i);
        double prev = 1e9;
        for (const double v : p.voltages()) {
            EXPECT_GE(v, 0.60);
            EXPECT_LE(v, 0.90);
            EXPECT_LE(v, prev + 1e-12);
            prev = v;
        }
    }
}

TEST(Policy, ThrowsOnMismatchedSizes)
{
    EXPECT_THROW(EntropyVoltagePolicy({0.5}, {0.9}, "bad"),
                 std::invalid_argument);
}

TEST(Config, Builders)
{
    const auto clean = CreateConfig::clean();
    EXPECT_EQ(clean.mode, InjectionMode::None);
    const auto uni = CreateConfig::uniform(1e-5);
    EXPECT_EQ(uni.mode, InjectionMode::Uniform);
    EXPECT_DOUBLE_EQ(uni.uniformBer, 1e-5);
    const auto volts = CreateConfig::atVoltage(0.7, 0.8);
    EXPECT_EQ(volts.mode, InjectionMode::Voltage);
    EXPECT_DOUBLE_EQ(volts.plannerVoltage, 0.7);
    const auto full =
        CreateConfig::fullCreate(0.7, EntropyVoltagePolicy::preset('C'));
    EXPECT_TRUE(full.anomalyDetection);
    EXPECT_TRUE(full.weightRotation);
    EXPECT_TRUE(full.voltageScaling);
}

TEST(Baselines, ConfigBuilders)
{
    EXPECT_EQ(baselines::dmrConfig(0.8).protection, Protection::Dmr);
    EXPECT_EQ(baselines::thunderVoltConfig(0.8).protection,
              Protection::ThunderVolt);
    EXPECT_EQ(baselines::abftConfig(0.8).protection, Protection::Abft);
}

TEST(Baselines, DmrEnergyFactorAtLeastDouble)
{
    EXPECT_NEAR(baselines::dmrEnergyFactor(0.0), 2.0, 1e-12);
    EXPECT_GT(baselines::dmrEnergyFactor(0.5), 3.0);
}

TEST(Baselines, AbftAttemptsGrowWithCorruption)
{
    EXPECT_NEAR(baselines::abftExpectedAttempts(0.0), 1.0, 1e-12);
    EXPECT_GT(baselines::abftExpectedAttempts(0.9),
              baselines::abftExpectedAttempts(0.1));
}

// --- CreateSystem end-to-end (uses cached models) --------------------------

namespace {

CreateSystem&
sys()
{
    static CreateSystem s(/*verbose=*/false);
    return s;
}

} // namespace

TEST(CreateSystem, CleanEpisodeSucceeds)
{
    const auto r = sys().runEpisode(MineTask::Wooden, 42,
                                    CreateConfig::clean());
    EXPECT_TRUE(r.success);
    EXPECT_GT(r.steps, 0);
    EXPECT_EQ(r.plannerInvocations, 1);
    EXPECT_NEAR(r.plannerEffV, 0.9, 1e-9);
}

TEST(CreateSystem, SeededEpisodesAreReproducible)
{
    const auto a = sys().runEpisode(MineTask::Stone, 7,
                                    CreateConfig::uniform(1e-4));
    const auto b = sys().runEpisode(MineTask::Stone, 7,
                                    CreateConfig::uniform(1e-4));
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.bitFlips, b.bitFlips);
}

TEST(CreateSystem, VoltageScalingLowersEffectiveVoltage)
{
    CreateConfig cfg = CreateConfig::clean();
    cfg.voltageScaling = true;
    cfg.policy = EntropyVoltagePolicy::preset('C');
    const auto r = sys().runEpisode(MineTask::Wooden, 42, cfg);
    EXPECT_TRUE(r.success);
    EXPECT_LT(r.controllerEffV, 0.9);
    EXPECT_GT(r.predictorInvocations, 0);
}

TEST(CreateSystem, AnomalyDetectionClearsAtHighBer)
{
    CreateConfig cfg = CreateConfig::uniform(1e-3);
    cfg.anomalyDetection = true;
    const auto r = sys().runEpisode(MineTask::Wooden, 42, cfg);
    EXPECT_GT(r.anomaliesCleared, 0u);
}

TEST(CreateSystem, EvaluateAggregates)
{
    const auto s = sys().evaluate(MineTask::Wooden, CreateConfig::clean(), 3);
    EXPECT_EQ(s.episodes, 3);
    EXPECT_GT(s.successRate, 0.5);
    EXPECT_GT(s.avgComputeJ, 0.0);
}

TEST(CreateSystem, EnergyGrowsWithFailedEpisodes)
{
    // Failed episodes run to the task cap, so heavy injection costs more
    // energy per task than clean runs (the Fig. 1(d) effect).
    const auto clean = sys().evaluate(MineTask::Wooden,
                                      CreateConfig::clean(), 3);
    CreateConfig noisy = CreateConfig::uniform(5e-3);
    const auto bad = sys().evaluate(MineTask::Wooden, noisy, 3);
    EXPECT_GT(bad.avgComputeJ, clean.avgComputeJ);
}

TEST(VoltageScaler, AdjustsControllerContext)
{
    VoltageScaler scaler(sys().predictor(),
                         EntropyVoltagePolicy::constant(0.72), 5);
    MineWorld w({40, 40, MineTask::Wooden, 9});
    w.setActiveSubtask({SubtaskType::MineLog, 2});
    ComputeContext cctx(9);
    cctx.setVoltageMode();
    EpisodeResult r;
    scaler.beforeController(w, 0, cctx, r);
    EXPECT_NEAR(cctx.voltage(), 0.72, 1e-9);
    EXPECT_EQ(r.predictorInvocations, 1);
    // Off-interval steps leave the voltage alone (5-step updates).
    scaler.beforeController(w, 3, cctx, r);
    EXPECT_EQ(r.predictorInvocations, 1);
    scaler.beforeController(w, 5, cctx, r);
    EXPECT_EQ(r.predictorInvocations, 2);
}

TEST(VoltageScaler, LdoTracksTransitions)
{
    VoltageScaler scaler(sys().predictor(),
                         EntropyVoltagePolicy::preset('F'), 5);
    EXPECT_EQ(scaler.ldo().transitions(), 0u);
    MineWorld w({40, 40, MineTask::Log, 10});
    w.setActiveSubtask({SubtaskType::MineLog, 2});
    ComputeContext cctx(10);
    EpisodeResult r;
    scaler.beforeController(w, 0, cctx, r);
    EXPECT_GE(scaler.ldo().transitions(), 1u);
    EXPECT_LE(scaler.ldo().vout(), 0.90);
    EXPECT_GE(scaler.ldo().vout(), 0.60);
}

TEST(Metrics, AggregateComputesRates)
{
    PaperEnergyModel em;
    EpisodeResult ok;
    ok.success = true;
    ok.steps = 100;
    ok.plannerInvocations = 1;
    EpisodeResult fail;
    fail.success = false;
    fail.steps = 2000;
    fail.plannerInvocations = 9;
    const auto s = aggregate({ok, fail}, em);
    EXPECT_EQ(s.episodes, 2);
    EXPECT_EQ(s.successes, 1);
    EXPECT_DOUBLE_EQ(s.successRate, 0.5);
    EXPECT_DOUBLE_EQ(s.avgStepsSuccess, 100.0);
    EXPECT_GT(em.episodeComputeJ(fail), em.episodeComputeJ(ok));
}

TEST(Metrics, VoltageRatioScalesEnergy)
{
    PaperEnergyModel em;
    EpisodeResult r;
    r.steps = 100;
    r.plannerInvocations = 1;
    const double base = em.episodeComputeJ(r);
    r.controllerV2Ratio = 0.5;
    r.plannerV2Ratio = 0.5;
    EXPECT_NEAR(em.episodeComputeJ(r), base * 0.5, base * 0.01);
}
