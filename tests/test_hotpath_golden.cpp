/** @file
 *  Golden bit-identity suite for the optimized inference hot path.
 *
 *  The optimized pipeline (runtime-dispatched SIMD intGemm/quantize,
 *  workspace-backed faultyLinear with fused dequant+bias+channel-scale,
 *  slab-packed attention) must produce the exact bit pattern of the naive
 *  reference kernels kept in this file: i-k-j integer GEMM, scalar
 *  nearbyint quantization, the two-pass dequantize-then-broadcast-bias
 *  epilogue, and the per-element .at() score/context attention loops.
 *  Coverage spans every registry platform's real (calibrated,
 *  outlier-laden) planner and controller layers, both quant widths, and
 *  every Protection mode with injection both off and on (reference
 *  contexts are seeded identically so RNG draws align).
 *
 *  Every check runs once per kernel tier the host can dispatch
 *  (scalar/SSE2/AVX2/AVX-512 VNNI, see hw/kernel_dispatch.hpp): the
 *  golden contract is a property of the *dispatch table*, not of
 *  whichever tier happens to be best on the build machine. CI adds a
 *  CREATE_FORCE_ISA=sse2 leg so the reference tier also runs the full
 *  suite on hosts whose startup pick is wider.
 */

#include <algorithm>
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "core/create_system.hpp"
#include "core/manip_system.hpp"
#include "core/nav_system.hpp"
#include "core/platform_registry.hpp"
#include "fault/injector.hpp"
#include "hw/faulty_gemm.hpp"
#include "hw/kernel_dispatch.hpp"
#include "tensor/ops.hpp"

using namespace create;

namespace {

/**
 * Run `check` once per kernel tier this host supports, selecting each via
 * the dispatcher and restoring the prior selection afterward (also on
 * assertion failure -- gtest fatal failures only abort the enclosing
 * function when used directly in a TEST body, so the restore runs).
 */
template <typename Fn>
void
forEachSupportedIsa(Fn&& check)
{
    struct Restore
    {
        simd::Isa prior = simd::activeIsa();
        ~Restore() { simd::setActive(prior); }
    } restore;
    for (const simd::Isa isa : simd::supported()) {
        ASSERT_TRUE(simd::setActive(isa)) << simd::isaName(isa);
        SCOPED_TRACE(std::string("isa=") + simd::isaName(isa));
        check();
    }
}

// --- naive reference kernels (deliberately unoptimized) --------------------

/** Scalar nearbyint quantization (the original quantize() loop). */
std::vector<std::int8_t>
refQuantize(const Tensor& t, const QuantParams& qp)
{
    const int lim = quantMaxLevel(qp.bits);
    std::vector<std::int8_t> q(static_cast<std::size_t>(t.numel()));
    const float inv = 1.0f / qp.scale;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        float v = t[i] * inv;
        v = std::nearbyint(v);
        if (v > static_cast<float>(lim))
            v = static_cast<float>(lim);
        if (v < static_cast<float>(-lim))
            v = static_cast<float>(-lim);
        q[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(v);
    }
    return q;
}

/** Naive i-k-j integer GEMM. */
void
refIntGemm(const std::int8_t* xq, std::int64_t m, std::int64_t k,
           const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t kk = 0; kk < k; ++kk)
            for (std::int64_t j = 0; j < n; ++j)
                acc[i * n + j] += static_cast<std::int32_t>(xq[i * k + kk]) *
                                  static_cast<std::int32_t>(wq[kk * n + j]);
}

/** Reference frozen state derived independently from a layer's observers. */
struct RefFrozen
{
    QuantParams inQ, wQ;
    float outBound = 0.0f;
    std::vector<std::int8_t> wq;
    Tensor biasEff; //!< empty when the layer has no bias
};

RefFrozen
refFreeze(nn::Linear& lin, QuantBits bits)
{
    RefFrozen f;
    const QuantGemmState& st = lin.quantState();
    const float inMax = st.inObs.seeded() ? st.inObs.absMax() : 8.0f;
    f.inQ = QuantParams::fromAbsMax(inMax, bits);
    const Tensor weff = lin.effectiveWeight();
    f.wQ = QuantParams::fromAbsMax(weff.absMax(), bits);
    f.wq = refQuantize(weff, f.wQ);
    f.outBound = st.outObs.seeded() ? st.outObs.absMax() * 1.05f : 0.0f;
    if (const Tensor* b = lin.biasTensor()) {
        f.biasEff = *b;
        if (lin.hasOutChannelScale())
            for (std::int64_t j = 0; j < f.biasEff.numel(); ++j)
                f.biasEff[j] *= lin.outChannelScale()[j];
    }
    return f;
}

/**
 * Reference faultyLinear: naive kernels, the original copy-per-execution
 * protection switch, and the original two-pass dequant + broadcast-bias
 * epilogue. Draws from `ctx.rng` in the same order as the optimized path.
 */
Tensor
refLinear(const Tensor& x, nn::Linear& lin, const RefFrozen& f,
          ComputeContext& ctx)
{
    const std::int64_t m = x.dim(0), k = x.dim(1);
    const std::int64_t n = lin.weight().dim(1);
    const std::vector<std::int8_t> xq = refQuantize(x, f.inQ);
    std::vector<std::int32_t> cleanAcc(static_cast<std::size_t>(m * n), 0);
    refIntGemm(xq.data(), m, k, f.wq.data(), n, cleanAcc.data());

    const bool inject = ctx.mode() != InjectionMode::None &&
                        ctx.injectionEnabledFor(lin.name());
    auto runOnce = [&](std::vector<std::size_t>* positions) {
        std::vector<std::int32_t> acc = cleanAcc;
        if (inject)
            BitFlipInjector::inject(acc.data(), acc.size(),
                                    ctx.activeBitRates(), ctx.rng, positions);
        return acc;
    };

    std::vector<std::int32_t> acc;
    switch (ctx.protection) {
      case Protection::None:
        acc = runOnce(nullptr);
        break;
      case Protection::Dmr: {
        acc = runOnce(nullptr);
        const auto second = runOnce(nullptr);
        if (acc != second) {
            const auto third = runOnce(nullptr);
            for (std::size_t i = 0; i < acc.size(); ++i)
                if (acc[i] != second[i])
                    acc[i] = (second[i] == third[i]) ? second[i] : third[i];
        }
        break;
      }
      case Protection::ThunderVolt: {
        std::vector<std::size_t> positions;
        acc = runOnce(&positions);
        for (auto idx : positions)
            acc[idx] = 0;
        break;
      }
      case Protection::Abft: {
        for (int attempt = 0; attempt < 5; ++attempt) {
            std::vector<std::size_t> positions;
            acc = runOnce(&positions);
            if (positions.empty())
                break;
        }
        break;
      }
    }

    const float deqScale = f.inQ.scale * f.wQ.scale;
    if (ctx.anomalyDetection && f.outBound > 0.0f) {
        const double boundAcc = static_cast<double>(f.outBound) / deqScale;
        const auto lim =
            static_cast<std::int64_t>(std::min(boundAcc, 8388607.0));
        for (auto& a : acc)
            if (a > lim || a < -lim)
                a = 0;
    }

    Tensor y({m, n});
    for (std::int64_t i = 0; i < m * n; ++i)
        y[i] = static_cast<float>(acc[static_cast<std::size_t>(i)]) * deqScale;
    if (f.biasEff.numel() > 0)
        y = ops::addRowBroadcast(y, f.biasEff);
    return y;
}

void
expectBitIdentical(const Tensor& a, const Tensor& b, const std::string& what)
{
    ASSERT_EQ(a.numel(), b.numel()) << what;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             static_cast<std::size_t>(a.numel()) *
                                 sizeof(float)))
        << what;
}

/** Deployment-style context: AD on, optional uniform injection. */
ComputeContext
makeCtx(std::uint64_t seed, QuantBits bits, Protection prot, bool inject)
{
    ComputeContext ctx(seed);
    ctx.bits = bits;
    ctx.protection = prot;
    ctx.anomalyDetection = true;
    if (inject)
        ctx.setUniformBer(2e-3);
    return ctx;
}

/** Optimized vs reference over one real Linear layer. */
void
goldenCheckLinear(nn::Linear& lin, const Tensor& x, QuantBits bits,
                  Protection prot, bool inject, const std::string& what)
{
    ComputeContext opt = makeCtx(1234, bits, prot, inject);
    ComputeContext ref = makeCtx(1234, bits, prot, inject);
    const Tensor yo = lin.infer(x, opt);
    const RefFrozen f = refFreeze(lin, bits);
    const Tensor yr = refLinear(x, lin, f, ref);
    expectBitIdentical(yo, yr, what);
}

/** Optimized attention vs the original per-element .at() triple loops. */
void
goldenCheckAttention(nn::MultiHeadAttention& attn, const Tensor& x,
                     QuantBits bits, bool inject, const std::string& what)
{
    ComputeContext opt = makeCtx(77, bits, Protection::None, inject);
    ComputeContext ref = makeCtx(77, bits, Protection::None, inject);
    const Tensor yo = attn.infer(x, opt);

    // Reference: projections through the same layers (RNG draw order
    // q, k, v, o matches the optimized path), naive score/context math.
    const Tensor q = attn.q().infer(x, ref);
    const Tensor k = attn.k().infer(x, ref);
    const Tensor v = attn.v().infer(x, ref);
    const std::int64_t t = x.dim(0);
    const int dim = attn.dim();
    const int heads = attn.heads();
    const int headDim = dim / heads;
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(headDim));
    Tensor ctxOut({t, dim});
    for (int h = 0; h < heads; ++h) {
        const std::int64_t c0 = static_cast<std::int64_t>(h) * headDim;
        Tensor scores({t, t});
        for (std::int64_t i = 0; i < t; ++i) {
            for (std::int64_t j = 0; j < t; ++j) {
                float s = 0.0f;
                for (int d = 0; d < headDim; ++d)
                    s += q.at(i, c0 + d) * k.at(j, c0 + d);
                scores.at(i, j) = s * invSqrt;
            }
        }
        const Tensor attnW = ops::softmaxRows(scores);
        for (std::int64_t i = 0; i < t; ++i) {
            for (int d = 0; d < headDim; ++d) {
                float s = 0.0f;
                for (std::int64_t j = 0; j < t; ++j)
                    s += attnW.at(i, j) * v.at(j, c0 + d);
                ctxOut.at(i, c0 + d) = s;
            }
        }
    }
    const Tensor yr = attn.o().infer(ctxOut, ref);
    expectBitIdentical(yo, yr, what);
}

Tensor
randomInput(std::int64_t rows, std::int64_t cols, std::uint64_t seed,
            float scale)
{
    Rng rng(seed);
    Tensor x({rows, cols});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.normal()) * scale;
    return x;
}

/** The planner of a registry-built system (all three backend families). */
PlannerModel&
plannerOf(EmbodiedSystem& sys)
{
    if (auto* m = dynamic_cast<MineSystem*>(&sys))
        return m->planner(false);
    if (auto* m = dynamic_cast<ManipSystem*>(&sys))
        return m->planner(false);
    if (auto* m = dynamic_cast<NavSystem*>(&sys))
        return m->planner(false);
    throw std::runtime_error("unknown system type");
}

ControllerModel&
controllerOf(EmbodiedSystem& sys)
{
    if (auto* m = dynamic_cast<MineSystem*>(&sys))
        return m->controller();
    if (auto* m = dynamic_cast<ManipSystem*>(&sys))
        return m->controller();
    if (auto* m = dynamic_cast<NavSystem*>(&sys))
        return m->controller();
    throw std::runtime_error("unknown system type");
}

constexpr QuantBits kWidths[] = {QuantBits::Int8, QuantBits::Int4};
constexpr Protection kProtections[] = {Protection::None, Protection::Dmr,
                                       Protection::ThunderVolt,
                                       Protection::Abft};

} // namespace

TEST(HotPathGolden, IntGemmMatchesNaiveOnRaggedShapes)
{
    // Odd K (SIMD pair tail), non-multiple-of-8/16/32 N (column tails of
    // every tier), row counts off the 4-row register blocks, and aligned
    // shapes all reduce to the same accumulators.
    forEachSupportedIsa([] {
        Rng rng(9);
        for (const auto [m, k, n] :
             {std::tuple<int, int, int>{3, 33, 13}, {4, 64, 32}, {1, 7, 9},
              {5, 2, 8}, {2, 1, 1}, {9, 65, 63}, {12, 64, 26}, {16, 64, 64},
              {6, 31, 40}, {14, 64, 192}}) {
            std::vector<std::int8_t> x(static_cast<std::size_t>(m * k));
            std::vector<std::int8_t> w(static_cast<std::size_t>(k * n));
            for (auto& v : x)
                v = static_cast<std::int8_t>(rng.rangeInclusive(-127, 127));
            for (auto& v : w)
                v = static_cast<std::int8_t>(rng.rangeInclusive(-127, 127));
            // Sprinkle zeros to exercise the zero-skip branch.
            for (std::size_t i = 0; i < x.size(); i += 3)
                x[i] = 0;
            std::vector<std::int32_t> opt(static_cast<std::size_t>(m * n), 7);
            std::vector<std::int32_t> ref = opt; // same nonzero starting acc
            intGemm(x.data(), m, k, w.data(), n, opt.data());
            refIntGemm(x.data(), m, k, w.data(), n, ref.data());
            EXPECT_EQ(opt, ref) << "m=" << m << " k=" << k << " n=" << n;
        }
    });
}

TEST(HotPathGolden, QuantizeMatchesScalarNearbyint)
{
    // Saturating values, exact halves (round-to-nearest-even), negatives,
    // and a non-multiple-of-4 tail.
    forEachSupportedIsa([] {
        Tensor t({1, 11});
        const float vals[11] = {0.4999f, 0.5f,   1.5f,  2.5f,    -2.5f, -0.5f,
                                1000.0f, -1000.0f, 0.0f, 126.9f, -3.49f};
        for (int i = 0; i < 11; ++i)
            t[i] = vals[i];
        for (QuantBits bits : kWidths) {
            const QuantParams qp = QuantParams::fromAbsMax(4.0f, bits);
            std::vector<std::int8_t> opt;
            quantizeInto(t, qp, opt);
            EXPECT_EQ(opt, refQuantize(t, qp)) << (bits == QuantBits::Int8);
        }
        // Random sweep (length off the 8/16-lane boundaries).
        const Tensor r = randomInput(37, 19, 21, 3.0f);
        const QuantParams qp =
            QuantParams::fromAbsMax(r.absMax(), QuantBits::Int8);
        std::vector<std::int8_t> opt;
        quantizeInto(r, qp, opt);
        EXPECT_EQ(opt, refQuantize(r, qp));
    });
}

TEST(HotPathGolden, SyntheticLinearEveryProtectionAndWidth)
{
    // A standalone layer with bias and a planted channel scale, calibrated
    // here, swept over every (width, protection, injection) combination.
    Rng rng(4242);
    nn::Linear lin("golden.fc", 33, 13, /*withBias=*/true, rng);
    Tensor scale = Tensor::full({13}, 1.0f);
    scale[3] = 9.0f; // outlier channel
    lin.setOutChannelScale(scale);
    Tensor& bias = *lin.biasTensor();
    for (std::int64_t j = 0; j < bias.numel(); ++j)
        bias[j] = static_cast<float>(rng.normal()) * 0.1f;

    const Tensor calib = randomInput(8, 33, 5, 1.0f);
    ComputeContext calibCtx(1);
    calibCtx.calibrating = true;
    lin.infer(calib, calibCtx);

    const Tensor x = randomInput(5, 33, 6, 1.0f);
    forEachSupportedIsa([&] {
        for (QuantBits bits : kWidths)
            for (Protection prot : kProtections)
                for (bool inject : {false, true})
                    goldenCheckLinear(
                        lin, x, bits, prot, inject,
                        std::string("synthetic bits=") +
                            (bits == QuantBits::Int8 ? "8" : "4") + " prot=" +
                            std::to_string(static_cast<int>(prot)) +
                            " inject=" + (inject ? "1" : "0"));
    });
}

TEST(HotPathGolden, RegistryPlatformsRealLayersAndAttention)
{
    // Every registry platform's real calibrated models: the planner head
    // (bias), the block-0 O projection (planted outlier channel scale),
    // and both planner and controller attention blocks, at both widths,
    // across every protection mode.
    for (const auto& info : PlatformRegistry::instance().all()) {
        auto sys = info.factory(/*verbose=*/false);
        PlannerModel& planner = plannerOf(*sys);
        ControllerModel& controller = controllerOf(*sys);
        const int pdim = planner.config().dim;
        const int cdim = controller.config().dim;

        const Tensor px = randomInput(6, pdim, 11, 0.7f);
        const Tensor cx = randomInput(3, cdim, 12, 0.7f);
        forEachSupportedIsa([&] {
            for (QuantBits bits : kWidths) {
                for (Protection prot : kProtections) {
                    goldenCheckLinear(planner.head(), px, bits, prot,
                                      /*inject=*/true, info.name + " head");
                    goldenCheckLinear(planner.block(0).attn().o(), px, bits,
                                      prot, /*inject=*/true,
                                      info.name + " blk0.o");
                }
                goldenCheckAttention(planner.block(0).attn(), px, bits,
                                     /*inject=*/true,
                                     info.name + " planner attn");
                goldenCheckAttention(controller.block(0).attn(), cx, bits,
                                     /*inject=*/false,
                                     info.name + " controller attn");
            }
        });
    }
}

TEST(KernelDispatch, SupportedTiersAndSelection)
{
    const std::vector<simd::Isa> tiers = simd::supported();
    // Scalar is always dispatchable; the startup pick must be one of the
    // supported tiers and the best() tier is the last (widest) entry.
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(simd::Isa::Scalar, tiers.front());
    EXPECT_EQ(simd::best(), tiers.back());
    EXPECT_NE(tiers.end(),
              std::find(tiers.begin(), tiers.end(), simd::activeIsa()));

    const simd::Isa prior = simd::activeIsa();
    for (const simd::Isa isa : tiers) {
        EXPECT_TRUE(simd::setActive(isa)) << simd::isaName(isa);
        EXPECT_EQ(isa, simd::activeIsa());
        EXPECT_EQ(isa, simd::active().isa);
    }
    simd::setActive(prior);
}

TEST(KernelDispatch, ParseAndForceIsa)
{
    simd::Isa isa = simd::Isa::Scalar;
    EXPECT_TRUE(simd::parseIsa("sse2", &isa));
    EXPECT_EQ(simd::Isa::Sse2, isa);
    EXPECT_TRUE(simd::parseIsa("AVX2", &isa)); // case-insensitive
    EXPECT_EQ(simd::Isa::Avx2, isa);
    EXPECT_TRUE(simd::parseIsa("avx512", &isa)); // alias of avx512vnni
    EXPECT_EQ(simd::Isa::Avx512Vnni, isa);
    EXPECT_FALSE(simd::parseIsa("neon", &isa));
    EXPECT_FALSE(simd::parseIsa("", &isa));

    // The CREATE_FORCE_ISA=sse2 contract CI relies on: when the SSE2
    // tier is dispatchable, forcing selects exactly it; an unknown value
    // falls back to the best tier instead of crashing.
    const simd::Isa prior = simd::activeIsa();
    const std::vector<simd::Isa> tiers = simd::supported();
    if (std::find(tiers.begin(), tiers.end(), simd::Isa::Sse2) !=
        tiers.end()) {
        EXPECT_EQ(simd::Isa::Sse2, simd::applyForceIsa("sse2"));
        EXPECT_EQ(simd::Isa::Sse2, simd::activeIsa());
    }
    EXPECT_EQ(simd::best(), simd::applyForceIsa("not-an-isa"));
    simd::setActive(prior);
}

TEST(KernelDispatch, ReportNamesActiveAndSupportedTiers)
{
    const std::string rep = simd::report();
    EXPECT_NE(std::string::npos,
              rep.find(std::string("isa=") +
                       simd::isaName(simd::activeIsa())));
    for (const simd::Isa isa : simd::supported())
        EXPECT_NE(std::string::npos, rep.find(simd::isaName(isa))) << rep;
}
