/** @file Tests for the hardware pipeline: faulty GEMM, AD, systolic, LDO. */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/faulty_gemm.hpp"
#include "hw/ldo.hpp"
#include "hw/systolic.hpp"
#include "tensor/ops.hpp"

using namespace create;

namespace {

Tensor
randomTensor(std::vector<std::int64_t> shape, Rng& rng, float scale = 1.0f)
{
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.normal()) * scale;
    return t;
}

/** Calibrate a layer state on (x, w) and return the exact product. */
Tensor
calibrate(const Tensor& x, const Tensor& w, QuantGemmState& st,
          ComputeContext& ctx)
{
    ctx.calibrating = true;
    Tensor y = faultyLinear(x, w, nullptr, st, ctx, "test");
    ctx.calibrating = false;
    return y;
}

} // namespace

TEST(FaultyGemm, CalibrationPathIsExact)
{
    Rng rng(1);
    const Tensor x = randomTensor({4, 16}, rng);
    const Tensor w = randomTensor({16, 8}, rng);
    ComputeContext ctx(1);
    QuantGemmState st;
    const Tensor y = calibrate(x, w, st, ctx);
    EXPECT_LT(ops::maxAbsDiff(y, ops::matmul(x, w)), 1e-6f);
    EXPECT_TRUE(st.inObs.seeded());
    EXPECT_TRUE(st.outObs.seeded());
}

TEST(FaultyGemm, QuantizedCleanPathIsClose)
{
    Rng rng(2);
    const Tensor x = randomTensor({8, 32}, rng);
    const Tensor w = randomTensor({32, 8}, rng, 0.2f);
    ComputeContext ctx(2);
    QuantGemmState st;
    const Tensor exact = calibrate(x, w, st, ctx);
    const Tensor quant = faultyLinear(x, w, nullptr, st, ctx, "test");
    // INT8 quantization noise only: relative error small vs output scale.
    EXPECT_LT(ops::maxAbsDiff(exact, quant), exact.absMax() * 0.05f + 0.05f);
}

TEST(FaultyGemm, BiasAddedAfterPipeline)
{
    Rng rng(3);
    const Tensor x = randomTensor({2, 8}, rng);
    const Tensor w = randomTensor({8, 4}, rng);
    Tensor bias({4}, {1.0f, 2.0f, 3.0f, 4.0f});
    ComputeContext ctx(3);
    QuantGemmState st;
    ctx.calibrating = true;
    const Tensor y = faultyLinear(x, w, &bias, st, ctx, "test");
    const Tensor expected =
        ops::addRowBroadcast(ops::matmul(x, w), bias);
    EXPECT_LT(ops::maxAbsDiff(y, expected), 1e-5f);
}

TEST(FaultyGemm, InjectionCorruptsOutputs)
{
    Rng rng(4);
    const Tensor x = randomTensor({16, 64}, rng);
    const Tensor w = randomTensor({64, 32}, rng, 0.2f);
    ComputeContext ctx(4);
    QuantGemmState st;
    const Tensor exact = calibrate(x, w, st, ctx);
    ctx.setUniformBer(0.02);
    const Tensor faulty = faultyLinear(x, w, nullptr, st, ctx, "test");
    EXPECT_GT(ops::maxAbsDiff(exact, faulty), 1.0f);
    EXPECT_GT(ctx.meter.usage(Domain::Other).bitFlips, 0u);
}

TEST(FaultyGemm, AnomalyDetectionClampsLargeErrors)
{
    Rng rng(5);
    const Tensor x = randomTensor({16, 64}, rng);
    const Tensor w = randomTensor({64, 32}, rng, 0.2f);
    ComputeContext ctxNoAd(5), ctxAd(5);
    QuantGemmState stNoAd, stAd;
    const Tensor exact = calibrate(x, w, stNoAd, ctxNoAd);
    calibrate(x, w, stAd, ctxAd);
    ctxNoAd.setUniformBer(0.01);
    ctxAd.setUniformBer(0.01);
    ctxAd.anomalyDetection = true;
    const Tensor faulty = faultyLinear(x, w, nullptr, stNoAd, ctxNoAd, "t");
    const Tensor protectedY = faultyLinear(x, w, nullptr, stAd, ctxAd, "t");
    // AD bounds the worst-case deviation to roughly the calibrated range.
    EXPECT_GT(ops::maxAbsDiff(exact, faulty),
              ops::maxAbsDiff(exact, protectedY));
    EXPECT_LE(protectedY.absMax(), stAd.outBound * 1.01f);
    EXPECT_GT(ctxAd.meter.usage(Domain::Other).anomaliesCleared, 0u);
}

TEST(FaultyGemm, ComponentFilterTargetsInjection)
{
    Rng rng(6);
    const Tensor x = randomTensor({8, 32}, rng);
    const Tensor w = randomTensor({32, 16}, rng, 0.2f);
    ComputeContext ctx(6);
    QuantGemmState st;
    const Tensor exact = calibrate(x, w, st, ctx);
    ctx.setUniformBer(0.05);
    ctx.componentFilter = ".attn.k";
    const Tensor skipped =
        faultyLinear(x, w, nullptr, st, ctx, "planner.blk0.attn.q");
    EXPECT_LT(ops::maxAbsDiff(exact, skipped), exact.absMax() * 0.05f + 0.05f);
    const Tensor hit =
        faultyLinear(x, w, nullptr, st, ctx, "planner.blk0.attn.k");
    EXPECT_GT(ops::maxAbsDiff(exact, hit), 1.0f);
}

TEST(FaultyGemm, MeterAccountsMacsAndVoltage)
{
    Rng rng(7);
    const Tensor x = randomTensor({4, 8}, rng);
    const Tensor w = randomTensor({8, 2}, rng);
    ComputeContext ctx(7);
    ctx.domain = Domain::Controller;
    ctx.setVoltage(0.6);
    QuantGemmState st;
    calibrate(x, w, st, ctx); // calibration not metered
    EXPECT_EQ(ctx.meter.usage(Domain::Controller).gemmCalls, 0u);
    faultyLinear(x, w, nullptr, st, ctx, "t");
    const auto& u = ctx.meter.usage(Domain::Controller);
    EXPECT_EQ(u.gemmCalls, 1u);
    EXPECT_DOUBLE_EQ(u.macs, 4.0 * 8.0 * 2.0);
    EXPECT_NEAR(ctx.meter.effectiveVoltage(Domain::Controller), 0.6, 1e-9);
}

TEST(FaultyGemm, Int4ModeRuns)
{
    Rng rng(8);
    const Tensor x = randomTensor({4, 16}, rng);
    const Tensor w = randomTensor({16, 4}, rng, 0.2f);
    ComputeContext ctx(8);
    ctx.bits = QuantBits::Int4;
    QuantGemmState st;
    const Tensor exact = calibrate(x, w, st, ctx);
    const Tensor y = faultyLinear(x, w, nullptr, st, ctx, "t");
    // INT4 noise is larger but bounded.
    EXPECT_LT(ops::maxAbsDiff(exact, y), exact.absMax() * 0.5f + 0.5f);
}

// --- protection schemes ------------------------------------------------------

TEST(Protection, DmrDoublesEnergyWhenClean)
{
    Rng rng(9);
    const Tensor x = randomTensor({4, 8}, rng);
    const Tensor w = randomTensor({8, 4}, rng);
    ComputeContext ctx(9);
    ctx.protection = Protection::Dmr;
    QuantGemmState st;
    calibrate(x, w, st, ctx);
    faultyLinear(x, w, nullptr, st, ctx, "t");
    EXPECT_DOUBLE_EQ(ctx.meter.usage(Domain::Other).macs, 2.0 * 4 * 8 * 4);
}

TEST(Protection, DmrSuppressesErrorsAtModerateBer)
{
    Rng rng(10);
    const Tensor x = randomTensor({16, 64}, rng);
    const Tensor w = randomTensor({64, 32}, rng, 0.2f);
    ComputeContext plain(10), dmr(10);
    QuantGemmState st1, st2;
    const Tensor exact = calibrate(x, w, st1, plain);
    calibrate(x, w, st2, dmr);
    plain.setUniformBer(2e-4);
    dmr.setUniformBer(2e-4);
    dmr.protection = Protection::Dmr;
    double plainErr = 0.0, dmrErr = 0.0;
    for (int i = 0; i < 30; ++i) {
        plainErr +=
            ops::maxAbsDiff(exact, faultyLinear(x, w, nullptr, st1, plain, "t"));
        dmrErr +=
            ops::maxAbsDiff(exact, faultyLinear(x, w, nullptr, st2, dmr, "t"));
    }
    EXPECT_LT(dmrErr, plainErr);
}

TEST(Protection, ThunderVoltZeroesFaultyOutputs)
{
    Rng rng(11);
    const Tensor x = randomTensor({16, 64}, rng);
    const Tensor w = randomTensor({64, 32}, rng, 0.2f);
    ComputeContext ctx(11);
    ctx.protection = Protection::ThunderVolt;
    QuantGemmState st;
    const Tensor exact = calibrate(x, w, st, ctx);
    ctx.setUniformBer(0.01);
    const Tensor y = faultyLinear(x, w, nullptr, st, ctx, "t");
    // No large-magnitude survivors: every corrupted element was dropped.
    EXPECT_LE(y.absMax(), exact.absMax() * 1.2f);
    // But dropped (zeroed) outputs deviate from the exact result.
    EXPECT_GT(ops::maxAbsDiff(exact, y), 0.1f);
}

TEST(Protection, AbftRecomputesUntilClean)
{
    Rng rng(12);
    const Tensor x = randomTensor({16, 64}, rng);
    const Tensor w = randomTensor({64, 32}, rng, 0.2f);
    ComputeContext ctx(12);
    ctx.protection = Protection::Abft;
    QuantGemmState st;
    const Tensor exact = calibrate(x, w, st, ctx);
    ctx.setUniformBer(5e-5);
    double worst = 0.0;
    for (int i = 0; i < 20; ++i) {
        worst = std::max(
            worst, static_cast<double>(ops::maxAbsDiff(
                       exact, faultyLinear(x, w, nullptr, st, ctx, "t"))));
    }
    // Retries almost always land a clean pass at this BER.
    EXPECT_LT(worst, exact.absMax() * 0.1f + 0.1f);
}

// --- systolic array -----------------------------------------------------------

TEST(Systolic, MatchesIntGemm)
{
    Rng rng(13);
    const std::int64_t m = 9, k = 150, n = 140;
    std::vector<std::int8_t> xq(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> wq(static_cast<std::size_t>(k * n));
    for (auto& v : xq)
        v = static_cast<std::int8_t>(rng.rangeInclusive(-127, 127));
    for (auto& v : wq)
        v = static_cast<std::int8_t>(rng.rangeInclusive(-5, 5));
    std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n), 0);
    intGemm(xq.data(), m, k, wq.data(), n, ref.data());
    SystolicArray arr;
    Rng frng(13);
    const auto res =
        arr.run(xq.data(), m, k, wq.data(), n, {}, 0.0, frng);
    EXPECT_EQ(res.acc, ref);
    EXPECT_EQ(res.macs, static_cast<std::uint64_t>(m * k * n));
}

TEST(Systolic, CycleFormula)
{
    SystolicArray arr(SystolicConfig{128, 128, 2.0});
    // One tile: load(128) + stream(m + 128 + 128 - 2).
    EXPECT_EQ(arr.cyclesFor(10, 128, 128), 128u + 10u + 254u);
    // 2x2 tiles doubles both K and N tiling.
    EXPECT_EQ(arr.cyclesFor(10, 256, 256), 4u * (128u + 10u + 254u));
}

TEST(Systolic, AdRowClampsOutliers)
{
    std::vector<std::int8_t> xq = {127, 127};
    std::vector<std::int8_t> wq = {127, 0, 127, 0};
    SystolicArray arr;
    Rng rng(14);
    // acc[0] = 2*127*127 = 32258; bound below that clamps it to zero.
    const auto res = arr.run(xq.data(), 1, 2, wq.data(), 2, {}, 1000.0, rng);
    EXPECT_EQ(res.acc[0], 0);
    EXPECT_EQ(res.anomaliesCleared, 1u);
}

// --- LDO -----------------------------------------------------------------------

TEST(Ldo, QuantizesToGrid)
{
    DigitalLdo ldo;
    EXPECT_NEAR(ldo.quantize(0.8449), 0.84, 1e-9);
    EXPECT_NEAR(ldo.quantize(0.8451), 0.85, 1e-9);
    EXPECT_NEAR(ldo.quantize(0.30), 0.60, 1e-9);
    EXPECT_NEAR(ldo.quantize(1.20), 0.90, 1e-9);
}

TEST(Ldo, TransitionLatencyMatchesSlewSpec)
{
    DigitalLdo ldo;
    // 0.90 -> 0.85 is 50 mV: one slew quantum of 90 ns (Table 2).
    EXPECT_NEAR(ldo.set(0.85), 90.0, 1e-6);
    // 0.85 -> 0.65 is 200 mV: 4x.
    EXPECT_NEAR(ldo.set(0.65), 360.0, 1e-6);
    EXPECT_EQ(ldo.transitions(), 2u);
    EXPECT_NEAR(ldo.totalTransitionNs(), 450.0, 1e-6);
}

TEST(Ldo, NoOpWhenAlreadyThere)
{
    DigitalLdo ldo;
    ldo.set(0.8);
    EXPECT_DOUBLE_EQ(ldo.set(0.8), 0.0);
    EXPECT_EQ(ldo.transitions(), 1u);
}

TEST(Ldo, WorstCaseBelowPaperBound)
{
    DigitalLdo ldo;
    // Full 0.6-0.9 V swing: 540 ns, the Table 3 switching-latency bound.
    EXPECT_NEAR(ldo.worstCaseLatencyNs(), 540.0, 1e-6);
}

TEST(Ldo, SpecSheetMatchesTable2)
{
    const LdoSpec spec;
    EXPECT_DOUBLE_EQ(spec.vMin, 0.60);
    EXPECT_DOUBLE_EQ(spec.vMax, 0.90);
    EXPECT_DOUBLE_EQ(spec.vStep, 0.010);
    EXPECT_DOUBLE_EQ(spec.peakCurrentEff, 0.998);
    EXPECT_DOUBLE_EQ(spec.areaMm2, 0.43);
}

// --- energy meter ----------------------------------------------------------------

TEST(EnergyMeter, EffectiveVoltageMixesQuadratically)
{
    EnergyMeter meter;
    meter.addGemm(Domain::Controller, 100.0, 0.9);
    meter.addGemm(Domain::Controller, 100.0, 0.6);
    const double expected = 0.9 * std::sqrt((1.0 + (0.6 / 0.9) * (0.6 / 0.9)) / 2.0);
    EXPECT_NEAR(meter.effectiveVoltage(Domain::Controller), expected, 1e-9);
}

TEST(EnergyMeter, DomainsAreSeparate)
{
    EnergyMeter meter;
    meter.addGemm(Domain::Planner, 50.0, 0.9);
    EXPECT_DOUBLE_EQ(meter.usage(Domain::Controller).macs, 0.0);
    EXPECT_DOUBLE_EQ(meter.total().macs, 50.0);
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.total().macs, 0.0);
}
