#include "env/mineworld.hpp"

#include <algorithm>
#include <climits>
#include <stdexcept>

namespace create {

namespace {

constexpr int kViewRadius = 10; //!< agent sight range (cells, Chebyshev)

struct Recipe
{
    Item out;
    int outCount;
    std::vector<std::pair<Item, int>> in;
};

/** Crafting-table recipes (Minecraft-faithful ratios). */
const Recipe&
craftRecipe(SubtaskType t)
{
    static const Recipe planks{Item::Planks, 4, {{Item::Log, 1}}};
    static const Recipe sticks{Item::Stick, 4, {{Item::Planks, 2}}};
    static const Recipe wooden{
        Item::WoodenPickaxe, 1, {{Item::Planks, 3}, {Item::Stick, 2}}};
    static const Recipe stone{
        Item::StonePickaxe, 1, {{Item::Cobblestone, 3}, {Item::Stick, 2}}};
    static const Recipe furnace{Item::Furnace, 1, {{Item::Cobblestone, 8}}};
    static const Recipe sword{
        Item::IronSword, 1, {{Item::IronIngot, 2}, {Item::Stick, 1}}};
    switch (t) {
      case SubtaskType::CraftPlanks: return planks;
      case SubtaskType::CraftSticks: return sticks;
      case SubtaskType::CraftWoodenPickaxe: return wooden;
      case SubtaskType::CraftStonePickaxe: return stone;
      case SubtaskType::CraftFurnace: return furnace;
      case SubtaskType::CraftIronSword: return sword;
      default: throw std::logic_error("craftRecipe: not a craft subtask");
    }
}

/** Furnace recipes: material -> product (fuel handled separately). */
const Recipe&
smeltRecipe(SubtaskType t)
{
    static const Recipe charcoal{Item::Charcoal, 1, {{Item::Log, 1}}};
    static const Recipe iron{Item::IronIngot, 1, {{Item::IronOre, 1}}};
    static const Recipe chicken{
        Item::CookedChicken, 1, {{Item::RawChicken, 1}}};
    switch (t) {
      case SubtaskType::SmeltCharcoal: return charcoal;
      case SubtaskType::SmeltIron: return iron;
      case SubtaskType::CookChicken: return chicken;
      default: throw std::logic_error("smeltRecipe: not a smelt subtask");
    }
}

} // namespace

Item
Subtask::produces() const
{
    switch (type) {
      case SubtaskType::MineLog: return Item::Log;
      case SubtaskType::MineStone: return Item::Cobblestone;
      case SubtaskType::MineCoal: return Item::Coal;
      case SubtaskType::MineIron: return Item::IronOre;
      case SubtaskType::HarvestSeeds: return Item::Seeds;
      case SubtaskType::HuntChicken: return Item::RawChicken;
      case SubtaskType::ShearWool: return Item::Wool;
      case SubtaskType::CraftPlanks: return Item::Planks;
      case SubtaskType::CraftSticks: return Item::Stick;
      case SubtaskType::CraftWoodenPickaxe: return Item::WoodenPickaxe;
      case SubtaskType::CraftStonePickaxe: return Item::StonePickaxe;
      case SubtaskType::CraftFurnace: return Item::Furnace;
      case SubtaskType::CraftIronSword: return Item::IronSword;
      case SubtaskType::SmeltCharcoal: return Item::Charcoal;
      case SubtaskType::SmeltIron: return Item::IronIngot;
      case SubtaskType::CookChicken: return Item::CookedChicken;
    }
    return Item::Log;
}

bool
Subtask::isCraft() const
{
    switch (type) {
      case SubtaskType::CraftPlanks:
      case SubtaskType::CraftSticks:
      case SubtaskType::CraftWoodenPickaxe:
      case SubtaskType::CraftStonePickaxe:
      case SubtaskType::CraftFurnace:
      case SubtaskType::CraftIronSword:
        return true;
      default:
        return false;
    }
}

bool
Subtask::isSmelt() const
{
    switch (type) {
      case SubtaskType::SmeltCharcoal:
      case SubtaskType::SmeltIron:
      case SubtaskType::CookChicken:
        return true;
      default:
        return false;
    }
}

std::string
Subtask::str() const
{
    static const char* names[] = {
        "mine_log",        "mine_stone",       "mine_coal",
        "mine_iron",       "harvest_seeds",    "hunt_chicken",
        "shear_wool",      "craft_planks",     "craft_sticks",
        "craft_wooden_pickaxe", "craft_stone_pickaxe", "craft_furnace",
        "craft_iron_sword", "smelt_charcoal",  "smelt_iron",
        "cook_chicken",
    };
    return std::string(names[static_cast<int>(type)]) + " x" +
           std::to_string(count);
}

const char*
mineTaskName(MineTask t)
{
    static const char* names[] = {"wooden", "stone", "charcoal",
                                  "chicken", "coal",  "iron",
                                  "wool",   "seed",  "log"};
    return names[static_cast<int>(t)];
}

MineTask
mineTaskByName(const std::string& name)
{
    for (int i = 0; i < kNumMineTasks; ++i)
        if (name == mineTaskName(static_cast<MineTask>(i)))
            return static_cast<MineTask>(i);
    throw std::invalid_argument("unknown Minecraft task: " + name);
}

std::vector<Subtask>
goldPlan(MineTask t)
{
    using S = SubtaskType;
    auto st = [](S type, int n) { return Subtask{type, n}; };
    switch (t) {
      case MineTask::Log:
        return {st(S::MineLog, 10)};
      case MineTask::Wooden:
        return {st(S::MineLog, 2), st(S::CraftPlanks, 8), st(S::CraftSticks, 4),
                st(S::CraftWoodenPickaxe, 1)};
      case MineTask::Stone:
        return {st(S::MineLog, 2), st(S::CraftPlanks, 8), st(S::CraftSticks, 4),
                st(S::CraftWoodenPickaxe, 1), st(S::MineStone, 3),
                st(S::CraftStonePickaxe, 1)};
      case MineTask::Charcoal:
        return {st(S::MineLog, 4), st(S::CraftPlanks, 8), st(S::CraftSticks, 4),
                st(S::CraftWoodenPickaxe, 1), st(S::MineStone, 8),
                st(S::CraftFurnace, 1), st(S::SmeltCharcoal, 1)};
      case MineTask::Coal:
        return {st(S::MineLog, 2), st(S::CraftPlanks, 8), st(S::CraftSticks, 4),
                st(S::CraftWoodenPickaxe, 1), st(S::MineCoal, 1)};
      case MineTask::Iron:
        return {st(S::MineLog, 2), st(S::CraftPlanks, 8), st(S::CraftSticks, 8),
                st(S::CraftWoodenPickaxe, 1), st(S::MineStone, 11),
                st(S::CraftStonePickaxe, 1), st(S::CraftFurnace, 1),
                st(S::MineIron, 2), st(S::MineCoal, 2), st(S::SmeltIron, 2),
                st(S::CraftIronSword, 1)};
      case MineTask::Chicken:
        return {st(S::MineLog, 3), st(S::CraftPlanks, 8), st(S::CraftSticks, 4),
                st(S::CraftWoodenPickaxe, 1), st(S::MineStone, 8),
                st(S::CraftFurnace, 1), st(S::HuntChicken, 1),
                st(S::CookChicken, 1)};
      case MineTask::Wool:
        return {st(S::ShearWool, 5)};
      case MineTask::Seed:
        return {st(S::HarvestSeeds, 10)};
    }
    return {};
}

std::pair<Item, int>
taskGoal(MineTask t)
{
    switch (t) {
      case MineTask::Wooden: return {Item::WoodenPickaxe, 1};
      case MineTask::Stone: return {Item::StonePickaxe, 1};
      case MineTask::Charcoal: return {Item::Charcoal, 1};
      case MineTask::Chicken: return {Item::CookedChicken, 1};
      case MineTask::Coal: return {Item::Coal, 1};
      case MineTask::Iron: return {Item::IronSword, 1};
      case MineTask::Wool: return {Item::Wool, 5};
      case MineTask::Seed: return {Item::Seeds, 10};
      case MineTask::Log: return {Item::Log, 10};
    }
    return {Item::Log, 1};
}

int
MineObs::spatialDim()
{
    // visible(1) dxSign(3) dySign(3) distBucket(4) frontIsTarget(1)
    // frontBlock(8) frontMob(2) facing(4) progress(1) blocked(4)
    return 1 + 3 + 3 + 4 + 1 + kNumBlockTypes + 2 + 4 + 1 + 4;
}

int
MineObs::stateDim()
{
    // remainNorm(1) canMine(1) craftReady(1) kind(3: gather/craft/smelt)
    // invFlags(8)
    return 1 + 1 + 1 + 3 + 8;
}

MineWorld::MineWorld(Config cfg) : cfg_(cfg), rng_(cfg.seed)
{
    generate();
}

void
MineWorld::reset(std::uint64_t seed)
{
    cfg_.seed = seed;
    rng_ = Rng(seed * 0x9E3779B97F4A7C15ull + 12345);
    generate();
}

Block
MineWorld::blockAt(int x, int y) const
{
    if (x < 0 || y < 0 || x >= cfg_.width || y >= cfg_.height)
        return Block::Water; // world border behaves as impassable
    return grid_[static_cast<std::size_t>(y * cfg_.width + x)];
}

int
MineWorld::itemCount(Item it) const
{
    return inventory_[static_cast<std::size_t>(static_cast<int>(it))];
}

void
MineWorld::grantItem(Item it, int n)
{
    inventory_[static_cast<std::size_t>(static_cast<int>(it))] += n;
}

int
MineWorld::facingDx() const
{
    static const int dx[] = {0, 0, 1, -1};
    return dx[facing_];
}

int
MineWorld::facingDy() const
{
    static const int dy[] = {-1, 1, 0, 0};
    return dy[facing_];
}

bool
MineWorld::passable(Block b)
{
    // TallGrass is a bush-like obstacle: it must be harvested from an
    // adjacent cell (facing it), exactly like trees and ores.
    return b == Block::Air || b == Block::Sand;
}

int
MineWorld::hitsRequired(Block b)
{
    switch (b) {
      case Block::Tree: return 3;
      case Block::Stone: return 4;
      case Block::CoalOre: return 4;
      case Block::IronOre: return 5;
      case Block::TallGrass: return 1;
      default: return 0;
    }
}

bool
MineWorld::canMine(Block b) const
{
    switch (b) {
      case Block::Tree:
      case Block::TallGrass:
        return true;
      case Block::Stone:
      case Block::CoalOre:
        return itemCount(Item::WoodenPickaxe) > 0 ||
               itemCount(Item::StonePickaxe) > 0;
      case Block::IronOre:
        return itemCount(Item::StonePickaxe) > 0;
      default:
        return false;
    }
}

Block
MineWorld::targetBlock(SubtaskType t)
{
    switch (t) {
      case SubtaskType::MineLog: return Block::Tree;
      case SubtaskType::MineStone: return Block::Stone;
      case SubtaskType::MineCoal: return Block::CoalOre;
      case SubtaskType::MineIron: return Block::IronOre;
      case SubtaskType::HarvestSeeds: return Block::TallGrass;
      default: return Block::Air;
    }
}

bool
MineWorld::targetMob(SubtaskType t, Mob::Kind& kindOut)
{
    if (t == SubtaskType::HuntChicken) {
        kindOut = Mob::Kind::Chicken;
        return true;
    }
    if (t == SubtaskType::ShearWool) {
        kindOut = Mob::Kind::Sheep;
        return true;
    }
    return false;
}

void
MineWorld::generate()
{
    grid_.assign(static_cast<std::size_t>(cfg_.width * cfg_.height),
                 Block::Air);
    mobs_.clear();
    inventory_.fill(0);
    ax_ = cfg_.width / 2;
    ay_ = cfg_.height / 2;
    facing_ = 0;
    mineProgress_ = 0;
    mineX_ = mineY_ = -1;
    steps_ = 0;
    subtask_ = Subtask{};
    subtaskBaseline_ = 0;

    auto cellAt = [&](int x, int y) -> Block& {
        return grid_[static_cast<std::size_t>(y * cfg_.width + x)];
    };
    auto randCell = [&](int margin) {
        const int x = static_cast<int>(
            rng_.rangeInclusive(margin, cfg_.width - 1 - margin));
        const int y = static_cast<int>(
            rng_.rangeInclusive(margin, cfg_.height - 1 - margin));
        return std::pair<int, int>{x, y};
    };
    auto scatter = [&](Block b, int n) {
        for (int i = 0; i < n; ++i) {
            auto [x, y] = randCell(1);
            if (cellAt(x, y) == Block::Air)
                cellAt(x, y) = b;
        }
    };
    auto cluster = [&](Block shell, Block ore, int size, int oreCount) {
        auto [cx, cy] = randCell(4);
        std::vector<std::pair<int, int>> cells;
        cells.push_back({cx, cy});
        cellAt(cx, cy) = shell;
        for (int i = 1; i < size; ++i) {
            const auto& base = cells[rng_.below(cells.size())];
            const int dirs[4][2] = {{0, -1}, {0, 1}, {1, 0}, {-1, 0}};
            const auto& d = dirs[rng_.below(4)];
            const int nx = base.first + d[0], ny = base.second + d[1];
            if (nx < 1 || ny < 1 || nx >= cfg_.width - 1 ||
                ny >= cfg_.height - 1)
                continue;
            if (cellAt(nx, ny) == Block::Air) {
                cellAt(nx, ny) = shell;
                cells.push_back({nx, ny});
            }
        }
        for (int i = 0; i < oreCount && !cells.empty(); ++i) {
            const auto& c = cells[rng_.below(cells.size())];
            cellAt(c.first, c.second) = ore;
        }
    };
    auto spawnMobs = [&](Mob::Kind kind, int n) {
        for (int i = 0; i < n; ++i) {
            auto [x, y] = randCell(1);
            if (passable(cellAt(x, y)) && !(x == ax_ && y == ay_))
                mobs_.push_back(Mob{kind, x, y, 0, 0});
        }
    };

    // Biome-dependent generation (Table 10: jungle / plains / savanna /
    // forest). Densities are per a 40x40 world and scale with area.
    const double areaScale =
        static_cast<double>(cfg_.width * cfg_.height) / 1600.0;
    auto n = [&](int base) {
        return std::max(1, static_cast<int>(base * areaScale));
    };
    switch (cfg_.task) {
      case MineTask::Log: // forest
        scatter(Block::Tree, n(95));
        scatter(Block::TallGrass, n(30));
        break;
      case MineTask::Wooden: // jungle
        scatter(Block::Tree, n(70));
        scatter(Block::TallGrass, n(40));
        scatter(Block::Water, n(10));
        break;
      case MineTask::Coal: // savanna
        scatter(Block::Tree, n(28));
        scatter(Block::TallGrass, n(60));
        scatter(Block::Sand, n(25));
        cluster(Block::Stone, Block::CoalOre, 24, 6);
        cluster(Block::Stone, Block::CoalOre, 20, 5);
        break;
      case MineTask::Seed: // savanna
        scatter(Block::Tree, n(20));
        scatter(Block::TallGrass, n(110));
        scatter(Block::Sand, n(25));
        break;
      case MineTask::Wool: // plains
        scatter(Block::Tree, n(25));
        scatter(Block::TallGrass, n(50));
        spawnMobs(Mob::Kind::Sheep, n(9));
        spawnMobs(Mob::Kind::Chicken, n(4));
        break;
      case MineTask::Chicken: // plains
        scatter(Block::Tree, n(35));
        scatter(Block::TallGrass, n(45));
        cluster(Block::Stone, Block::Stone, 26, 0);
        spawnMobs(Mob::Kind::Chicken, n(9));
        spawnMobs(Mob::Kind::Sheep, n(4));
        break;
      case MineTask::Stone:
      case MineTask::Charcoal: // plains with rock outcrops
        scatter(Block::Tree, n(35));
        scatter(Block::TallGrass, n(40));
        cluster(Block::Stone, Block::Stone, 30, 0);
        cluster(Block::Stone, Block::Stone, 24, 0);
        spawnMobs(Mob::Kind::Chicken, n(4));
        break;
      case MineTask::Iron: // plains with ore-bearing outcrops
        scatter(Block::Tree, n(35));
        scatter(Block::TallGrass, n(35));
        cluster(Block::Stone, Block::IronOre, 30, 5);
        cluster(Block::Stone, Block::CoalOre, 26, 6);
        cluster(Block::Stone, Block::Stone, 20, 0);
        spawnMobs(Mob::Kind::Chicken, n(4));
        break;
    }

    // Guarantee solvability: force-place any resource the gold plan needs.
    auto forcePlace = [&](Block b, int atLeast) {
        int have = 0;
        for (const auto& cell : grid_)
            if (cell == b)
                ++have;
        while (have < atLeast) {
            auto [x, y] = randCell(3);
            if (cellAt(x, y) == Block::Air && !(x == ax_ && y == ay_)) {
                cellAt(x, y) = b;
                ++have;
            }
        }
    };
    for (const auto& st : goldPlan(cfg_.task)) {
        const Block tb = targetBlock(st.type);
        if (tb != Block::Air)
            forcePlace(tb, st.count + 10);
        Mob::Kind kind;
        if (targetMob(st.type, kind)) {
            int have = 0;
            for (const auto& m : mobs_)
                if (m.kind == kind)
                    ++have;
            if (have < 3)
                spawnMobs(kind, 3 - have);
        }
    }

    // Clear the spawn area.
    for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
            cellAt(ax_ + dx, ay_ + dy) = Block::Air;
}

void
MineWorld::setActiveSubtask(Subtask s)
{
    subtask_ = s;
    subtaskBaseline_ = itemCount(s.produces());
    mineProgress_ = 0;
    mineX_ = mineY_ = -1;
}

bool
MineWorld::subtaskComplete() const
{
    return itemCount(subtask_.produces()) - subtaskBaseline_ >= subtask_.count;
}

bool
MineWorld::taskComplete() const
{
    const auto [item, count] = taskGoal(cfg_.task);
    return itemCount(item) >= count;
}

Mob*
MineWorld::mobAt(int x, int y)
{
    for (auto& m : mobs_)
        if (m.x == x && m.y == y)
            return &m;
    return nullptr;
}

void
MineWorld::moveOrFace(int dx, int dy, int dir)
{
    facing_ = dir;
    mineProgress_ = 0;
    mineX_ = mineY_ = -1;
    const int nx = ax_ + dx, ny = ay_ + dy;
    if (nx < 0 || ny < 0 || nx >= cfg_.width || ny >= cfg_.height)
        return;
    if (!passable(blockAt(nx, ny)) || mobAt(nx, ny))
        return;
    ax_ = nx;
    ay_ = ny;
}

void
MineWorld::doAttack()
{
    const int fx = ax_ + facingDx(), fy = ay_ + facingDy();
    if (Mob* m = mobAt(fx, fy)) {
        mineProgress_ = 0;
        mineX_ = mineY_ = -1;
        if (++m->hitsTaken >= 2) {
            if (m->kind == Mob::Kind::Chicken)
                grantItem(Item::RawChicken, 1);
            else
                grantItem(Item::Wool, 1);
            // Respawn elsewhere to keep mob density stable.
            m->hitsTaken = 0;
            m->shearCooldown = 0;
            for (int attempt = 0; attempt < 64; ++attempt) {
                const int x = static_cast<int>(rng_.below(
                    static_cast<std::uint64_t>(cfg_.width)));
                const int y = static_cast<int>(rng_.below(
                    static_cast<std::uint64_t>(cfg_.height)));
                if (passable(blockAt(x, y)) && !(x == ax_ && y == ay_) &&
                    !mobAt(x, y)) {
                    m->x = x;
                    m->y = y;
                    break;
                }
            }
        }
        return;
    }
    const Block b = blockAt(fx, fy);
    const int need = hitsRequired(b);
    if (need == 0 || !canMine(b)) {
        mineProgress_ = 0;
        mineX_ = mineY_ = -1;
        return;
    }
    if (fx == mineX_ && fy == mineY_) {
        ++mineProgress_;
    } else {
        mineX_ = fx;
        mineY_ = fy;
        mineProgress_ = 1;
    }
    if (mineProgress_ >= need) {
        switch (b) {
          case Block::Tree: grantItem(Item::Log, 1); break;
          case Block::Stone: grantItem(Item::Cobblestone, 1); break;
          case Block::CoalOre: grantItem(Item::Coal, 1); break;
          case Block::IronOre: grantItem(Item::IronOre, 1); break;
          case Block::TallGrass: grantItem(Item::Seeds, 1); break;
          default: break;
        }
        grid_[static_cast<std::size_t>(fy * cfg_.width + fx)] = Block::Air;
        mineProgress_ = 0;
        mineX_ = mineY_ = -1;
    }
}

void
MineWorld::doUse()
{
    mineProgress_ = 0;
    mineX_ = mineY_ = -1;
    const int fx = ax_ + facingDx(), fy = ay_ + facingDy();
    if (Mob* m = mobAt(fx, fy)) {
        if (m->kind == Mob::Kind::Sheep && m->shearCooldown == 0) {
            grantItem(Item::Wool, 1);
            m->shearCooldown = 30;
        }
        return;
    }
    if (blockAt(fx, fy) == Block::TallGrass) {
        grantItem(Item::Seeds, 1);
        grid_[static_cast<std::size_t>(fy * cfg_.width + fx)] = Block::Air;
    }
}

bool
MineWorld::consumeFuel()
{
    for (Item fuel : {Item::Coal, Item::Charcoal, Item::Log}) {
        auto& n = inventory_[static_cast<std::size_t>(static_cast<int>(fuel))];
        if (n > 0) {
            --n;
            return true;
        }
    }
    return false;
}

void
MineWorld::doCraft()
{
    mineProgress_ = 0;
    mineX_ = mineY_ = -1;
    if (!subtask_.isCraft())
        return;
    const Recipe& r = craftRecipe(subtask_.type);
    for (const auto& [item, count] : r.in)
        if (itemCount(item) < count)
            return;
    for (const auto& [item, count] : r.in)
        inventory_[static_cast<std::size_t>(static_cast<int>(item))] -= count;
    grantItem(r.out, r.outCount);
}

void
MineWorld::doSmelt()
{
    mineProgress_ = 0;
    mineX_ = mineY_ = -1;
    if (!subtask_.isSmelt() || itemCount(Item::Furnace) < 1)
        return;
    const Recipe& r = smeltRecipe(subtask_.type);
    for (const auto& [item, count] : r.in)
        if (itemCount(item) < count)
            return;
    // Fuel check: for charcoal, the material log and fuel log are distinct.
    if (subtask_.type == SubtaskType::SmeltCharcoal &&
        itemCount(Item::Log) < 2) {
        return;
    }
    for (const auto& [item, count] : r.in)
        inventory_[static_cast<std::size_t>(static_cast<int>(item))] -= count;
    if (!consumeFuel()) {
        // Undo material consumption: smelting failed without fuel.
        for (const auto& [item, count] : r.in)
            grantItem(item, count);
        return;
    }
    grantItem(r.out, r.outCount);
}

void
MineWorld::stepMobs()
{
    for (auto& m : mobs_) {
        if (m.shearCooldown > 0)
            --m.shearCooldown;
        if (!rng_.chance(0.5))
            continue;
        const int dirs[4][2] = {{0, -1}, {0, 1}, {1, 0}, {-1, 0}};
        const auto& d = dirs[rng_.below(4)];
        const int nx = m.x + d[0], ny = m.y + d[1];
        if (nx < 0 || ny < 0 || nx >= cfg_.width || ny >= cfg_.height)
            continue;
        if (passable(blockAt(nx, ny)) && !(nx == ax_ && ny == ay_) &&
            !mobAt(nx, ny)) {
            m.x = nx;
            m.y = ny;
        }
    }
}

void
MineWorld::step(Action a)
{
    switch (a) {
      case Action::MoveN: moveOrFace(0, -1, 0); break;
      case Action::MoveS: moveOrFace(0, 1, 1); break;
      case Action::MoveE: moveOrFace(1, 0, 2); break;
      case Action::MoveW: moveOrFace(-1, 0, 3); break;
      case Action::Attack: doAttack(); break;
      case Action::Use: doUse(); break;
      case Action::Craft: doCraft(); break;
      case Action::Smelt: doSmelt(); break;
      case Action::Noop:
        mineProgress_ = 0;
        mineX_ = mineY_ = -1;
        break;
    }
    stepMobs();
    ++steps_;
}

MineObs
MineWorld::observe() const
{
    MineObs obs;
    obs.spatial.assign(static_cast<std::size_t>(MineObs::spatialDim()), 0.0f);
    obs.state.assign(static_cast<std::size_t>(MineObs::stateDim()), 0.0f);

    // --- locate the nearest subtask target within sight -------------------
    const Block tb = targetBlock(subtask_.type);
    Mob::Kind mk{};
    const bool wantsMob = targetMob(subtask_.type, mk);
    bool visible = false;
    int bestDist = INT_MAX, tx = 0, ty = 0;
    if (tb != Block::Air) {
        for (int dy = -kViewRadius; dy <= kViewRadius; ++dy) {
            for (int dx = -kViewRadius; dx <= kViewRadius; ++dx) {
                const int x = ax_ + dx, y = ay_ + dy;
                if (blockAt(x, y) != tb)
                    continue;
                const int dist = std::abs(dx) + std::abs(dy);
                if (dist < bestDist) {
                    bestDist = dist;
                    tx = x;
                    ty = y;
                    visible = true;
                }
            }
        }
    } else if (wantsMob) {
        for (const auto& m : mobs_) {
            if (m.kind != mk)
                continue;
            if (mk == Mob::Kind::Sheep && m.shearCooldown > 0)
                continue;
            if (std::max(std::abs(m.x - ax_), std::abs(m.y - ay_)) >
                kViewRadius)
                continue;
            const int dist = std::abs(m.x - ax_) + std::abs(m.y - ay_);
            if (dist < bestDist) {
                bestDist = dist;
                tx = m.x;
                ty = m.y;
                visible = true;
            }
        }
    }

    std::size_t i = 0;
    obs.spatial[i++] = visible ? 1.0f : 0.0f;
    // dx sign one-hot (W, same, E)
    const int sdx = visible ? (tx < ax_ ? 0 : (tx == ax_ ? 1 : 2)) : 1;
    if (visible)
        obs.spatial[i + static_cast<std::size_t>(sdx)] = 1.0f;
    i += 3;
    const int sdy = visible ? (ty < ay_ ? 0 : (ty == ay_ ? 1 : 2)) : 1;
    if (visible)
        obs.spatial[i + static_cast<std::size_t>(sdy)] = 1.0f;
    i += 3;
    // distance bucket: 1, 2-3, 4-7, 8+
    if (visible) {
        const int bucket =
            bestDist <= 1 ? 0 : (bestDist <= 3 ? 1 : (bestDist <= 7 ? 2 : 3));
        obs.spatial[i + static_cast<std::size_t>(bucket)] = 1.0f;
    }
    i += 4;
    // is the target directly in front?
    const int fx = ax_ + facingDx(), fy = ay_ + facingDy();
    const bool frontIsTarget = visible && fx == tx && fy == ty;
    obs.spatial[i++] = frontIsTarget ? 1.0f : 0.0f;
    // front block one-hot
    const Block fb = blockAt(fx, fy);
    obs.spatial[i + static_cast<std::size_t>(fb)] = 1.0f;
    i += kNumBlockTypes;
    // front mob flags
    for (const auto& m : mobs_) {
        if (m.x == fx && m.y == fy) {
            obs.spatial[i + (m.kind == Mob::Kind::Chicken ? 0 : 1)] = 1.0f;
            break;
        }
    }
    i += 2;
    obs.spatial[i + static_cast<std::size_t>(facing_)] = 1.0f;
    i += 4;
    obs.spatial[i++] = static_cast<float>(mineProgress_) / 5.0f;
    // blocked flags N,S,E,W
    const int dirs[4][2] = {{0, -1}, {0, 1}, {1, 0}, {-1, 0}};
    for (int d = 0; d < 4; ++d) {
        const Block nb = blockAt(ax_ + dirs[d][0], ay_ + dirs[d][1]);
        obs.spatial[i++] = passable(nb) ? 0.0f : 1.0f;
    }

    // --- state features ---------------------------------------------------
    std::size_t j = 0;
    const int got = itemCount(subtask_.produces()) - subtaskBaseline_;
    const float remain =
        static_cast<float>(std::max(0, subtask_.count - got));
    obs.state[j++] = remain / static_cast<float>(std::max(1, subtask_.count));
    obs.state[j++] = (tb == Block::Air || canMine(tb)) ? 1.0f : 0.0f;
    // craft/smelt readiness
    bool ready = false;
    if (subtask_.isCraft()) {
        ready = true;
        for (const auto& [item, count] : craftRecipe(subtask_.type).in)
            if (itemCount(item) < count)
                ready = false;
    } else if (subtask_.isSmelt()) {
        ready = itemCount(Item::Furnace) >= 1;
        for (const auto& [item, count] : smeltRecipe(subtask_.type).in)
            if (itemCount(item) < count)
                ready = false;
        if (subtask_.type == SubtaskType::SmeltCharcoal &&
            itemCount(Item::Log) < 2)
            ready = false;
    }
    obs.state[j++] = ready ? 1.0f : 0.0f;
    obs.state[j++] =
        (!subtask_.isCraft() && !subtask_.isSmelt()) ? 1.0f : 0.0f;
    obs.state[j++] = subtask_.isCraft() ? 1.0f : 0.0f;
    obs.state[j++] = subtask_.isSmelt() ? 1.0f : 0.0f;
    const Item flags[8] = {Item::Log,         Item::Planks,
                           Item::Stick,       Item::WoodenPickaxe,
                           Item::Cobblestone, Item::StonePickaxe,
                           Item::Furnace,     Item::Coal};
    for (const Item it : flags)
        obs.state[j++] = itemCount(it) > 0 ? 1.0f : 0.0f;
    return obs;
}

Tensor
MineWorld::renderImage(int res, int windowRadius) const
{
    // Egocentric RGB view over a (2*windowRadius+1)^2 cell window, nearest-
    // neighbor sampled to res x res. This is what the entropy predictor's
    // CNN consumes (Table 9 pipeline).
    static const float palette[kNumBlockTypes][3] = {
        {0.35f, 0.65f, 0.30f}, // Air (grass floor)
        {0.25f, 0.45f, 0.12f}, // Tree
        {0.55f, 0.55f, 0.55f}, // Stone
        {0.20f, 0.20f, 0.22f}, // CoalOre
        {0.78f, 0.60f, 0.44f}, // IronOre
        {0.55f, 0.80f, 0.35f}, // TallGrass
        {0.20f, 0.35f, 0.85f}, // Water
        {0.90f, 0.85f, 0.55f}, // Sand
    };
    const int window = 2 * windowRadius + 1;
    Tensor img({3, res, res});
    for (int py = 0; py < res; ++py) {
        for (int px = 0; px < res; ++px) {
            const int cx = ax_ - windowRadius + px * window / res;
            const int cy = ay_ - windowRadius + py * window / res;
            const Block b = blockAt(cx, cy);
            float r = palette[static_cast<int>(b)][0];
            float g = palette[static_cast<int>(b)][1];
            float bl = palette[static_cast<int>(b)][2];
            for (const auto& m : mobs_) {
                if (m.x == cx && m.y == cy) {
                    if (m.kind == Mob::Kind::Chicken) {
                        r = 0.95f; g = 0.90f; bl = 0.60f;
                    } else {
                        r = 0.95f; g = 0.95f; bl = 0.95f;
                    }
                }
            }
            if (cx == ax_ && cy == ay_) {
                r = 0.90f; g = 0.20f; bl = 0.20f;
            }
            // Facing cue: tint the cell directly in front so the CNN can
            // tell "target in front" (the critical-step signal) apart.
            if (cx == ax_ + facingDx() && cy == ay_ + facingDy()) {
                r = std::min(1.0f, r + 0.35f);
                bl = std::min(1.0f, bl + 0.15f);
            }
            img.at(0, py, px) = r;
            img.at(1, py, px) = g;
            img.at(2, py, px) = bl;
        }
    }
    return img;
}

} // namespace create
