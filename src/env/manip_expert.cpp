#include "env/manip_expert.hpp"

#include <cstdlib>

namespace create {

namespace {

ManipAction
moveToward(int dx, int dy, Rng& rng)
{
    if (dx != 0 && dy != 0)
        return rng.chance(0.5)
                   ? (dx > 0 ? ManipAction::MoveE : ManipAction::MoveW)
                   : (dy > 0 ? ManipAction::MoveS : ManipAction::MoveN);
    if (dx != 0)
        return dx > 0 ? ManipAction::MoveE : ManipAction::MoveW;
    if (dy != 0)
        return dy > 0 ? ManipAction::MoveS : ManipAction::MoveN;
    return ManipAction::Noop;
}

} // namespace

ManipAction
ManipExpert::act(const ManipWorld& w, Rng& rng)
{
    int tx = 0, ty = 0;
    w.subtaskTarget(tx, ty);
    const int dx = tx - w.gripperX(), dy = ty - w.gripperY();
    switch (w.activeSubtask()) {
      case ManipSubtask::ReachObject:
      case ManipSubtask::ReachButton:
      case ManipSubtask::ReachHandle:
        return moveToward(dx, dy, rng);
      case ManipSubtask::GraspObject:
        return (dx == 0 && dy == 0) ? ManipAction::Grasp
                                    : moveToward(dx, dy, rng);
      case ManipSubtask::TransportToGoal:
        return moveToward(dx, dy, rng);
      case ManipSubtask::ReleaseAtGoal:
        return (dx == 0 && dy == 0) ? ManipAction::Release
                                    : moveToward(dx, dy, rng);
      case ManipSubtask::PressButton:
        return (dx == 0 && dy == 0) ? ManipAction::Press
                                    : moveToward(dx, dy, rng);
      case ManipSubtask::PullHandle:
        return (dx == 0 && dy == 0) ? ManipAction::Pull
                                    : moveToward(dx, dy, rng);
      case ManipSubtask::PushBlock:
        // Stand west of the block, then push east repeatedly.
        if (dx == 0 && dy == 0)
            return ManipAction::MoveE;
        return moveToward(dx, dy, rng);
    }
    return ManipAction::Noop;
}

} // namespace create
