#pragma once

/**
 * @file
 * MineWorld: a seeded Minecraft-like grid world (DESIGN.md substitution #2).
 *
 * It preserves the task structure the paper's characterization depends on:
 *  - a crafting/smelting tech tree so high-level tasks decompose into
 *    ordered subtask chains (the planner's job),
 *  - mining-progress mechanics: breaking a block takes consecutive aligned
 *    hits and any other action resets progress, creating the "critical
 *    steps" of Fig. 7 where one corrupted action disrupts a chain,
 *  - stochastic subtasks (wandering mobs, scattered grass) that tolerate
 *    suboptimal actions, creating the "non-critical" regime,
 *  - biome-dependent world generation per task (Table 10 descriptions).
 *
 * Coordinates are (x, y) with y growing south. Movement into a blocked cell
 * only turns the agent to face it (so "move toward" then "attack" is the
 * natural mining idiom).
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace create {

/** Low-level controller actions (Fig. 3's action head, adapted to 2-D). */
enum class Action : int {
    MoveN = 0,
    MoveS = 1,
    MoveE = 2,
    MoveW = 3,
    Attack = 4, //!< mine block / hit mob in front
    Use = 5,    //!< shear sheep / harvest grass in front
    Craft = 6,  //!< execute the active craft recipe
    Smelt = 7,  //!< execute the active smelt recipe
    Noop = 8,
};
constexpr int kNumActions = 9;

/** World cell contents. */
enum class Block : std::uint8_t {
    Air = 0,
    Tree,
    Stone,
    CoalOre,
    IronOre,
    TallGrass,
    Water,
    Sand,
};
constexpr int kNumBlockTypes = 8;

/** Inventory items. */
enum class Item : int {
    Log = 0,
    Planks,
    Stick,
    WoodenPickaxe,
    Cobblestone,
    StonePickaxe,
    Furnace,
    Coal,
    IronOre,
    IronIngot,
    IronSword,
    Charcoal,
    RawChicken,
    CookedChicken,
    Wool,
    Seeds,
};
constexpr int kNumItems = 16;

/** Subtask vocabulary shared by planner and controller. */
enum class SubtaskType : int {
    MineLog = 0,
    MineStone,
    MineCoal,
    MineIron,
    HarvestSeeds,
    HuntChicken,
    ShearWool,
    CraftPlanks,
    CraftSticks,
    CraftWoodenPickaxe,
    CraftStonePickaxe,
    CraftFurnace,
    CraftIronSword,
    SmeltCharcoal,
    SmeltIron,
    CookChicken,
};
constexpr int kNumSubtaskTypes = 16;

/** One planner-issued subtask: acquire `count` of the produced item. */
struct Subtask
{
    SubtaskType type = SubtaskType::MineLog;
    int count = 1;

    /** Item this subtask produces. */
    Item produces() const;

    /** Whether this is a Craft/Smelt (single critical action) subtask. */
    bool isCraft() const;
    bool isSmelt() const;

    std::string str() const;
};

/** High-level Minecraft tasks evaluated in the paper (Table 10). */
enum class MineTask : int {
    Wooden = 0, //!< wooden pickaxe in a jungle
    Stone,      //!< stone pickaxe in the plains
    Charcoal,   //!< charcoal in the plains
    Chicken,    //!< cooked chicken in the plains
    Coal,       //!< coal in a savanna
    Iron,       //!< iron sword in the plains
    Wool,       //!< 5 white wool in the plains
    Seed,       //!< 10 wheat seeds in a savanna
    Log,        //!< 10 logs in a forest
};
constexpr int kNumMineTasks = 9;

const char* mineTaskName(MineTask t);
MineTask mineTaskByName(const std::string& name);

/** Gold plan for a task (the supervision corpus for the planner). */
std::vector<Subtask> goldPlan(MineTask t);

/** Final item + count that defines task success. */
std::pair<Item, int> taskGoal(MineTask t);

/** Wandering mob. */
struct Mob
{
    enum class Kind : std::uint8_t { Chicken, Sheep } kind;
    int x = 0, y = 0;
    int hitsTaken = 0;
    int shearCooldown = 0; //!< sheep regrow timer
};

/** Compact observation the controller is allowed to see. */
struct MineObs
{
    std::vector<float> spatial; //!< target direction/distance/adjacency/etc.
    std::vector<float> state;   //!< inventory & progress summary

    static int spatialDim();
    static int stateDim();
};

/** The simulated world. */
class MineWorld
{
  public:
    struct Config
    {
        int width = 40;
        int height = 40;
        MineTask task = MineTask::Wooden;
        std::uint64_t seed = 1;
    };

    explicit MineWorld(Config cfg);

    /** Regenerate the world with a new seed (same task/biome). */
    void reset(std::uint64_t seed);

    /** Apply one action; advances mobs and timers. */
    void step(Action a);

    // --- subtask management ------------------------------------------------
    void setActiveSubtask(Subtask s);
    const Subtask& activeSubtask() const { return subtask_; }
    bool subtaskComplete() const;
    bool taskComplete() const;

    // --- observation ---------------------------------------------------------
    /** Controller features for the active subtask. */
    MineObs observe() const;

    /**
     * Egocentric RGB render (3 x res x res) for the entropy predictor.
     *
     * @param windowRadius how many cells around the agent are visible; a
     *        small radius zooms in so single-cell cues (the block directly
     *        in front) stay resolvable at low resolutions.
     */
    Tensor renderImage(int res, int windowRadius = 10) const;

    // --- queries (used by the privileged expert and tests) -----------------
    int itemCount(Item it) const;
    void grantItem(Item it, int n); //!< test/expert setup helper
    Block blockAt(int x, int y) const;
    int agentX() const { return ax_; }
    int agentY() const { return ay_; }
    int facingDx() const;
    int facingDy() const;
    int miningProgress() const { return mineProgress_; }
    const std::vector<Mob>& mobs() const { return mobs_; }
    const Config& config() const { return cfg_; }
    std::uint64_t stepsTaken() const { return steps_; }
    Rng& rng() { return rng_; }

    /** Target block for a gather subtask (Air if N/A). */
    static Block targetBlock(SubtaskType t);
    /** Target mob kind (or none) for a subtask. */
    static bool targetMob(SubtaskType t, Mob::Kind& kindOut);

    /** Whether agent holds the tool required to mine `b` (or none needed). */
    bool canMine(Block b) const;

    /** Hits required to break a block. */
    static int hitsRequired(Block b);

    /** Can the agent walk onto this block? */
    static bool passable(Block b);

  private:
    void generate();
    void moveOrFace(int dx, int dy, int dir);
    void doAttack();
    void doUse();
    void doCraft();
    void doSmelt();
    bool consumeFuel();
    void stepMobs();
    Mob* mobAt(int x, int y);

    Config cfg_;
    Rng rng_;
    std::vector<Block> grid_;
    std::vector<Mob> mobs_;
    std::array<int, kNumItems> inventory_{};
    int ax_ = 0, ay_ = 0;
    int facing_ = 0; //!< 0=N 1=S 2=E 3=W
    int mineProgress_ = 0;
    int mineX_ = -1, mineY_ = -1;
    Subtask subtask_;
    int subtaskBaseline_ = 0;
    std::uint64_t steps_ = 0;
};

} // namespace create
