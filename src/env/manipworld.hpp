#pragma once

/**
 * @file
 * ManipWorld: a tabletop manipulation environment standing in for the
 * LIBERO / CALVIN / OXE benchmarks of the cross-platform evaluation
 * (Fig. 17, Table 10; DESIGN.md substitution #4).
 *
 * A gripper moves on an 8x8 table among an object, a goal zone, a button,
 * a drawer handle, and a slideable block. Twelve tasks mirror the paper's
 * names (wine/alphabet/bbq on LIBERO; button/block/handle on CALVIN;
 * eggplant/coke/carrot/open/move/place on OXE). Like MineWorld it has
 * critical chains (grasping, consecutive pulls) and free navigation
 * phases, so the same entropy-based voltage scaling applies.
 */

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace create {

/** Gripper actions. */
enum class ManipAction : int {
    MoveN = 0,
    MoveS,
    MoveE,
    MoveW,
    Grasp,
    Release,
    Press,
    Pull,
    Noop,
};
constexpr int kNumManipActions = 9;

/** Cross-platform tasks (Table 10). */
enum class ManipTask : int {
    Wine = 0, //!< LIBERO: put wine bottle on top of cabinet
    Alphabet, //!< LIBERO: alphabet soup -> basket
    Bbq,      //!< LIBERO: bbq sauce -> basket
    Button,   //!< CALVIN: press the button
    Block,    //!< CALVIN: slide block into the drawer
    Handle,   //!< CALVIN: pull handle to open drawer
    Eggplant, //!< OXE: put eggplant in basket
    Coke,     //!< OXE: grasp coke can
    Carrot,   //!< OXE: put carrot on plate
    Open,     //!< OXE: open middle drawer
    Move,     //!< OXE: move object near target
    Place,    //!< OXE: place into closed top drawer
};
constexpr int kNumManipTasks = 12;

const char* manipTaskName(ManipTask t);

/** Motion-level subtasks the manipulation planner emits. */
enum class ManipSubtask : int {
    ReachObject = 0,
    GraspObject,
    TransportToGoal,
    ReleaseAtGoal,
    ReachButton,
    PressButton,
    ReachHandle,
    PullHandle,
    PushBlock,
};
constexpr int kNumManipSubtasks = 9;

/** Gold plan per task. */
std::vector<ManipSubtask> manipGoldPlan(ManipTask t);

/** Controller observation (same two-part layout as MineObs). */
struct ManipObs
{
    std::vector<float> spatial;
    std::vector<float> state;

    static int spatialDim();
    static int stateDim();
};

/** The tabletop world. */
class ManipWorld
{
  public:
    static constexpr int kSize = 8;
    static constexpr int kStepCap = 120; //!< per-episode step budget

    ManipWorld(ManipTask task, std::uint64_t seed);

    void reset(std::uint64_t seed);
    void step(ManipAction a);

    void setActiveSubtask(ManipSubtask s);
    ManipSubtask activeSubtask() const { return subtask_; }
    bool subtaskComplete() const;
    bool taskComplete() const;

    ManipObs observe() const;

    /** Tabletop RGB render (3 x res x res) for the entropy predictor. */
    Tensor renderImage(int res) const;

    // Expert/test queries.
    int gripperX() const { return gx_; }
    int gripperY() const { return gy_; }
    bool holding() const { return holding_; }
    int objectX() const { return ox_; }
    int objectY() const { return oy_; }
    int goalX() const { return goalX_; }
    int goalY() const { return goalY_; }
    int buttonX() const { return buttonX_; }
    int buttonY() const { return buttonY_; }
    int handleX() const { return handleX_; }
    int handleY() const { return handleY_; }
    int blockX() const { return blockX_; }
    int blockY() const { return blockY_; }
    int pullProgress() const { return pullProgress_; }
    int pressProgress() const { return pressProgress_; }
    int pushesDone() const { return pushesDone_; }
    ManipTask task() const { return task_; }
    std::uint64_t stepsTaken() const { return steps_; }

    /** Position the active subtask is about (object/button/handle/goal). */
    void subtaskTarget(int& tx, int& ty) const;

  private:
    void move(int dx, int dy);

    ManipTask task_;
    Rng rng_;
    int gx_ = 0, gy_ = 0;
    bool holding_ = false;
    int ox_ = 0, oy_ = 0;
    int goalX_ = 0, goalY_ = 0;
    int buttonX_ = 0, buttonY_ = 0;
    int handleX_ = 0, handleY_ = 0;
    int blockX_ = 0, blockY_ = 0;
    int pullProgress_ = 0;
    int pressProgress_ = 0;
    int pushesDone_ = 0;
    bool buttonPressed_ = false;
    bool drawerOpen_ = false;
    bool released_ = false;
    ManipSubtask subtask_ = ManipSubtask::ReachObject;
    std::uint64_t steps_ = 0;
};

} // namespace create
