#pragma once

/**
 * @file
 * Scripted expert for ManipWorld, used to behavior-clone the Octo / RT-1
 * controller stand-ins (Fig. 17 cross-platform evaluation).
 */

#include "common/rng.hpp"
#include "env/manipworld.hpp"

namespace create {

/** Scripted expert policy over manipulation subtasks. */
class ManipExpert
{
  public:
    static ManipAction act(const ManipWorld& w, Rng& rng);
};

} // namespace create
