#pragma once

/**
 * @file
 * Scripted A* expert for NavWorld, used to behavior-clone the PathRT /
 * SwiftPilot controller stand-ins (third platform family of the
 * cross-platform evaluation).
 *
 * Unlike the reactive Mine/Manip experts, navigation needs global routing:
 * the expert runs A* over the (x, y, altitude) occupancy lattice each step
 * (300 nodes, exact) with lateral moves cheaper than climbing, so it
 * threads the corridor gap when it is close and climbs over the wall when
 * the detour would be longer -- the same trade-off the cloned controller
 * has to learn from local observations.
 */

#include "env/navworld.hpp"

namespace create {

/** Deterministic A* expert over navigation subtasks. */
class NavExpert
{
  public:
    static NavAction act(const NavWorld& w);
};

} // namespace create
