#pragma once

/**
 * @file
 * Privileged scripted expert for MineWorld.
 *
 * Provides the demonstrations the controller is behavior-cloned from
 * (DESIGN.md substitution #1: STEVE-1's VPT-distilled policy -> BC on a
 * scripted expert). The expert sees the whole map (the learner only sees
 * MineObs), so during "exploration" phases the expert's moves look
 * multi-modal from the learner's viewpoint -- which is exactly what makes
 * the cloned policy produce near-uniform action logits in non-critical
 * steps and picky logits in critical ones (Fig. 7).
 */

#include "common/rng.hpp"
#include "env/mineworld.hpp"

namespace create {

/** Scripted full-observability expert policy. */
class MineExpert
{
  public:
    /** Best action for the world's active subtask. */
    static Action act(const MineWorld& w, Rng& rng);

  private:
    static Action gatherAction(const MineWorld& w, Rng& rng);
};

} // namespace create
