#include "env/navworld.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace create {

const char*
navTaskName(NavTask t)
{
    static const char* names[] = {"delivery", "patrol",  "inspect",
                                  "survey",   "corridor", "canyon",
                                  "relay",    "rooftop", "rescue",
                                  "homebound"};
    return names[static_cast<int>(t)];
}

std::vector<NavSubtask>
navGoldPlan(NavTask t)
{
    using N = NavSubtask;
    switch (t) {
      case NavTask::Delivery:
        return {N::TransitA, N::DescendLand};
      case NavTask::Patrol:
        return {N::TransitA, N::TransitB, N::ReturnHome};
      case NavTask::Inspect:
        return {N::TransitA, N::HoldStation};
      case NavTask::Survey:
        return {N::TransitA, N::ScanLine};
      case NavTask::Corridor:
        return {N::ThreadCorridor, N::TransitB};
      case NavTask::Canyon:
        return {N::ThreadCorridor, N::TransitC, N::HoldStation};
      case NavTask::Relay:
        return {N::TransitC, N::HoldStation, N::ReturnHome};
      case NavTask::Rooftop:
        return {N::ClimbOver, N::TransitB, N::DescendLand};
      case NavTask::Rescue:
        return {N::TransitA, N::DescendLand, N::ClimbOver, N::ReturnHome};
      case NavTask::Homebound:
        return {N::ReturnHome, N::DescendLand};
    }
    return {N::TransitA};
}

int
NavObs::spatialDim()
{
    // dxSign(3) dySign(3) dzSign(3) distBucket(4) atTargetXY(1)
    // blockedTowardX(1) blockedTowardY(1) canDescend(1) altitude(1)
    // battery(1) holdProgress(1) scanProgress(1)
    return 3 + 3 + 3 + 4 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1;
}

int
NavObs::stateDim()
{
    // subtask one-hot(9) corridor(1) climbed(1) landed(1) home(1)
    return kNumNavSubtasks + 4;
}

NavWorld::NavWorld(NavTask task, std::uint64_t seed)
    : task_(task), rng_(seed)
{
    reset(seed);
}

void
NavWorld::reset(std::uint64_t seed)
{
    rng_ = Rng(seed * 0x2545F4914F6CDD1Dull + 9091);

    // The wall splits the map into a west and an east district; the one-cell
    // gap at (wallX_, gapY_) is the corridor.
    wallX_ = 4 + static_cast<int>(rng_.below(3));
    gapY_ = 1 + static_cast<int>(rng_.below(kSize - 2));

    // Survey strip: kScanCells + 1 cells of one west-district row.
    surveyY_ = static_cast<int>(rng_.below(kSize));
    scanX_ = static_cast<int>(
        rng_.below(static_cast<std::uint64_t>(wallX_ - kScanCells)));

    auto west = [&](int& px, int& py) {
        px = static_cast<int>(rng_.below(static_cast<std::uint64_t>(wallX_)));
        py = static_cast<int>(rng_.below(kSize));
    };
    auto east = [&](int& px, int& py) {
        px = wallX_ + 1 +
             static_cast<int>(
                 rng_.below(static_cast<std::uint64_t>(kSize - wallX_ - 1)));
        py = static_cast<int>(rng_.below(kSize));
    };
    auto distinct = [&](int px, int py, std::initializer_list<int> xs,
                        std::initializer_list<int> ys) {
        auto xi = xs.begin();
        auto yi = ys.begin();
        for (; xi != xs.end(); ++xi, ++yi)
            if (px == *xi && py == *yi)
                return false;
        return true;
    };

    west(homeX_, homeY_);
    do {
        west(x_, y_);
    } while (!distinct(x_, y_, {homeX_}, {homeY_}));
    do {
        west(wx_[0], wy_[0]);
    } while (!distinct(wx_[0], wy_[0], {homeX_, x_}, {homeY_, y_}));
    east(wx_[1], wy_[1]);
    do {
        east(wx_[2], wy_[2]);
    } while (!distinct(wx_[2], wy_[2], {wx_[1]}, {wy_[1]}));

    // One no-fly cell per district, clear of every mission marker and of the
    // survey strip row segment.
    auto clearOfMarkers = [&](int px, int py) {
        if (py == surveyY_ && px >= scanX_ && px <= scanX_ + kScanCells)
            return false;
        return distinct(px, py,
                        {homeX_, x_, wx_[0], wx_[1], wx_[2]},
                        {homeY_, y_, wy_[0], wy_[1], wy_[2]});
    };
    do {
        west(noflyX_[0], noflyY_[0]);
    } while (!clearOfMarkers(noflyX_[0], noflyY_[0]));
    do {
        east(noflyX_[1], noflyY_[1]);
    } while (!clearOfMarkers(noflyX_[1], noflyY_[1]));

    switch (task_) {
      case NavTask::Canyon:
      case NavTask::Relay:
        stationX_ = wx_[2];
        stationY_ = wy_[2];
        break;
      default:
        stationX_ = wx_[0];
        stationY_ = wy_[0];
        break;
    }
    windProb_ = (task_ == NavTask::Canyon || task_ == NavTask::Rooftop ||
                 task_ == NavTask::Rescue)
                    ? 0.08
                    : 0.02;

    z_ = 1;
    battery_ = kBattery;
    holdProgress_ = 0;
    scanProgress_ = 0;
    for (bool& v : visited_)
        v = false;
    corridor_ = climbed_ = landed_ = home_ = held_ = scanned_ = false;
    subtask_ = navGoldPlan(task_).front();
    steps_ = 0;
    updateStickyFlags();
}

int
NavWorld::heightAt(int x, int y) const
{
    for (int i = 0; i < 2; ++i)
        if (x == noflyX_[i] && y == noflyY_[i])
            return 3;
    if (x == wallX_ && y != gapY_)
        return 2;
    return 0;
}

bool
NavWorld::open(int x, int y, int z) const
{
    if (x < 0 || y < 0 || z < 0 || x >= kSize || y >= kSize ||
        z >= kAltitudes)
        return false;
    return z >= heightAt(x, y);
}

void
NavWorld::move(int dx, int dy)
{
    if (open(x_ + dx, y_ + dy, z_)) {
        x_ += dx;
        y_ += dy;
        // Wind drift displaces a completed lateral move sideways.
        if (rng_.chance(windProb_)) {
            const int ddx[4] = {0, 0, 1, -1};
            const int ddy[4] = {-1, 1, 0, 0};
            const int d = static_cast<int>(rng_.below(4));
            if (open(x_ + ddx[d], y_ + ddy[d], z_)) {
                x_ += ddx[d];
                y_ += ddy[d];
            }
        }
    }
}

void
NavWorld::step(NavAction a)
{
    const int oldX = x_;
    const bool grounded = battery_ <= 0;
    if (!grounded) {
        switch (a) {
          case NavAction::MoveN: move(0, -1); break;
          case NavAction::MoveS: move(0, 1); break;
          case NavAction::MoveE: move(1, 0); break;
          case NavAction::MoveW: move(-1, 0); break;
          case NavAction::Ascend:
            if (open(x_, y_, z_ + 1)) {
                ++z_;
                --battery_; // climbing costs double
            }
            break;
          case NavAction::Descend:
            if (open(x_, y_, z_ - 1))
                --z_;
            break;
          case NavAction::Hover:
            break;
        }
        --battery_;
    }

    // Critical chains: interruption resets progress (like mining chains in
    // MineWorld and pull/press chains in ManipWorld).
    if (!held_) {
        if (a == NavAction::Hover && !grounded && x_ == stationX_ &&
            y_ == stationY_) {
            if (++holdProgress_ >= kHoldSteps)
                held_ = true;
        } else {
            holdProgress_ = 0;
        }
    }
    if (!scanned_) {
        if (a == NavAction::MoveE && !grounded && y_ == surveyY_ &&
            x_ == oldX + 1) {
            if (++scanProgress_ >= kScanCells)
                scanned_ = true;
        } else {
            scanProgress_ = 0;
        }
    }

    updateStickyFlags();
    ++steps_;
}

void
NavWorld::updateStickyFlags()
{
    for (int w = 0; w < 3; ++w)
        if (x_ == wx_[w] && y_ == wy_[w])
            visited_[w] = true;
    if (x_ == wallX_ && y_ == gapY_ && z_ <= 1)
        corridor_ = true;
    if (z_ == kAltitudes - 1)
        climbed_ = true;
    if (z_ == 0)
        landed_ = true;
    if (x_ == homeX_ && y_ == homeY_)
        home_ = true;
}

void
NavWorld::setActiveSubtask(NavSubtask s)
{
    subtask_ = s;
}

void
NavWorld::subtaskTarget(int& tx, int& ty) const
{
    switch (subtask_) {
      case NavSubtask::TransitA:
        tx = wx_[0];
        ty = wy_[0];
        break;
      case NavSubtask::TransitB:
        tx = wx_[1];
        ty = wy_[1];
        break;
      case NavSubtask::TransitC:
        tx = wx_[2];
        ty = wy_[2];
        break;
      case NavSubtask::ThreadCorridor:
        tx = wallX_;
        ty = gapY_;
        break;
      case NavSubtask::ClimbOver:
      case NavSubtask::DescendLand:
        tx = x_; // altitude-only subtasks: stay put in the plane
        ty = y_;
        break;
      case NavSubtask::HoldStation:
        tx = stationX_;
        ty = stationY_;
        break;
      case NavSubtask::ScanLine:
        tx = scanX_;
        ty = surveyY_;
        break;
      case NavSubtask::ReturnHome:
        tx = homeX_;
        ty = homeY_;
        break;
    }
}

int
NavWorld::subtaskTargetZ() const
{
    switch (subtask_) {
      case NavSubtask::ThreadCorridor:
        return z_ <= 1 ? z_ : 1; // must be below the wall top in the gap
      case NavSubtask::ClimbOver:
        return kAltitudes - 1;
      case NavSubtask::DescendLand:
        return 0;
      default:
        return -1;
    }
}

bool
NavWorld::subtaskComplete() const
{
    switch (subtask_) {
      case NavSubtask::TransitA:
        return visited_[0];
      case NavSubtask::TransitB:
        return visited_[1];
      case NavSubtask::TransitC:
        return visited_[2];
      case NavSubtask::ThreadCorridor:
        return corridor_;
      case NavSubtask::ClimbOver:
        return climbed_;
      case NavSubtask::DescendLand:
        return landed_;
      case NavSubtask::HoldStation:
        return held_;
      case NavSubtask::ScanLine:
        return scanned_;
      case NavSubtask::ReturnHome:
        return home_;
    }
    return false;
}

bool
NavWorld::taskComplete() const
{
    switch (task_) {
      case NavTask::Delivery:
        return visited_[0] && landed_;
      case NavTask::Patrol:
        return visited_[0] && visited_[1] && home_;
      case NavTask::Inspect:
        return visited_[0] && held_;
      case NavTask::Survey:
        return visited_[0] && scanned_;
      case NavTask::Corridor:
        return corridor_ && visited_[1];
      case NavTask::Canyon:
        return corridor_ && visited_[2] && held_;
      case NavTask::Relay:
        return visited_[2] && held_ && home_;
      case NavTask::Rooftop:
        return climbed_ && visited_[1] && landed_;
      case NavTask::Rescue:
        return visited_[0] && landed_ && climbed_ && home_;
      case NavTask::Homebound:
        return home_ && landed_;
    }
    return false;
}

Tensor
NavWorld::renderImage(int res) const
{
    Tensor img({3, res, res});
    auto paint = [&](int cx, int cy, float r, float g, float b) {
        const int scale = res / kSize;
        for (int py = cy * scale; py < (cy + 1) * scale && py < res; ++py) {
            for (int px = cx * scale; px < (cx + 1) * scale && px < res;
                 ++px) {
                img.at(0, py, px) = r;
                img.at(1, py, px) = g;
                img.at(2, py, px) = b;
            }
        }
    };
    for (int yy = 0; yy < kSize; ++yy) {
        for (int xx = 0; xx < kSize; ++xx) {
            switch (heightAt(xx, yy)) {
              case 3: paint(xx, yy, 0.85f, 0.15f, 0.15f); break; // no-fly
              case 2: paint(xx, yy, 0.35f, 0.35f, 0.40f); break; // wall
              default: paint(xx, yy, 0.62f, 0.74f, 0.58f); break; // ground
            }
        }
    }
    for (int c = 0; c <= kScanCells; ++c)
        paint(scanX_ + c, surveyY_, 0.80f, 0.78f, 0.40f); // survey strip
    paint(homeX_, homeY_, 0.25f, 0.65f, 0.30f);
    paint(wx_[0], wy_[0], 0.95f, 0.75f, 0.20f);
    paint(wx_[1], wy_[1], 0.30f, 0.60f, 0.90f);
    paint(wx_[2], wy_[2], 0.75f, 0.35f, 0.85f);
    // Drone brightness encodes altitude.
    const float alt =
        0.10f + 0.35f * static_cast<float>(z_) /
                    static_cast<float>(kAltitudes - 1);
    paint(x_, y_, alt, alt, alt);
    return img;
}

NavObs
NavWorld::observe() const
{
    NavObs obs;
    obs.spatial.assign(static_cast<std::size_t>(NavObs::spatialDim()), 0.0f);
    obs.state.assign(static_cast<std::size_t>(NavObs::stateDim()), 0.0f);
    int tx = 0, ty = 0;
    subtaskTarget(tx, ty);
    std::size_t i = 0;
    const int sdx = tx < x_ ? 0 : (tx == x_ ? 1 : 2);
    obs.spatial[i + static_cast<std::size_t>(sdx)] = 1.0f;
    i += 3;
    const int sdy = ty < y_ ? 0 : (ty == y_ ? 1 : 2);
    obs.spatial[i + static_cast<std::size_t>(sdy)] = 1.0f;
    i += 3;
    const int tz = subtaskTargetZ();
    const int sdz = tz < 0 ? 1 : (tz < z_ ? 0 : (tz == z_ ? 1 : 2));
    obs.spatial[i + static_cast<std::size_t>(sdz)] = 1.0f;
    i += 3;
    const int dist = std::abs(tx - x_) + std::abs(ty - y_);
    const int bucket = dist == 0 ? 0 : (dist <= 2 ? 1 : (dist <= 5 ? 2 : 3));
    obs.spatial[i + static_cast<std::size_t>(bucket)] = 1.0f;
    i += 4;
    obs.spatial[i++] = dist == 0 ? 1.0f : 0.0f;
    const int stepX = tx < x_ ? -1 : (tx > x_ ? 1 : 0);
    const int stepY = ty < y_ ? -1 : (ty > y_ ? 1 : 0);
    obs.spatial[i++] =
        (stepX != 0 && !open(x_ + stepX, y_, z_)) ? 1.0f : 0.0f;
    obs.spatial[i++] =
        (stepY != 0 && !open(x_, y_ + stepY, z_)) ? 1.0f : 0.0f;
    obs.spatial[i++] = open(x_, y_, z_ - 1) ? 1.0f : 0.0f;
    obs.spatial[i++] =
        static_cast<float>(z_) / static_cast<float>(kAltitudes - 1);
    obs.spatial[i++] = static_cast<float>(battery_ > 0 ? battery_ : 0) /
                       static_cast<float>(kBattery);
    obs.spatial[i++] =
        static_cast<float>(holdProgress_) / static_cast<float>(kHoldSteps);
    obs.spatial[i++] =
        static_cast<float>(scanProgress_) / static_cast<float>(kScanCells);

    std::size_t j = 0;
    obs.state[j + static_cast<std::size_t>(subtask_)] = 1.0f;
    j += kNumNavSubtasks;
    obs.state[j++] = corridor_ ? 1.0f : 0.0f;
    obs.state[j++] = climbed_ ? 1.0f : 0.0f;
    obs.state[j++] = landed_ ? 1.0f : 0.0f;
    obs.state[j++] = home_ ? 1.0f : 0.0f;
    return obs;
}

} // namespace create
