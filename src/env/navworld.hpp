#pragma once

/**
 * @file
 * NavWorld: a 2.5D occupancy-grid autonomous-navigation environment, the
 * third platform family of the cross-platform generality study (after
 * MineWorld and ManipWorld). It stands in for the waypoint-mission drone /
 * ground-robot workloads that dominate embodied-AI deployments.
 *
 * A drone flies over a kSize x kSize map at three altitude levels. Cells
 * carry an occupancy height: 0 (open ground), 2 (a building wall that is
 * only passable at the top altitude, except through a one-cell corridor
 * gap), or 3 (a no-fly zone blocking every altitude). Ten named missions
 * (delivery, patrol, inspect, survey, corridor, canyon, relay, rooftop,
 * rescue, homebound) decompose into nine motion subtasks. Like the other
 * two worlds it mixes *critical chains* -- threading the narrow corridor
 * gap, holding station for consecutive hover steps, scanning a survey
 * strip with consecutive east moves (interruption resets progress) -- with
 * free transit phases, which is exactly the structure that makes
 * entropy-based voltage scaling apply.
 *
 * Disturbances: lateral moves suffer seeded wind drift (stronger on the
 * canyon/rooftop/rescue missions) and every step drains a battery
 * (climbing costs double); an empty battery grounds the drone, so wasted
 * motion under fault injection turns into mission failure.
 */

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace create {

/** Drone actions. */
enum class NavAction : int {
    MoveN = 0,
    MoveS,
    MoveE,
    MoveW,
    Ascend,
    Descend,
    Hover,
};
constexpr int kNumNavActions = 7;

/** Waypoint missions. */
enum class NavTask : int {
    Delivery = 0, //!< fly to waypoint A and land
    Patrol,       //!< visit A then B, return home
    Inspect,      //!< hold station over waypoint A
    Survey,       //!< scan the survey strip after staging at A
    Corridor,     //!< thread the wall gap, then reach B
    Canyon,       //!< thread the gap, reach C, hold station (windy)
    Relay,        //!< hold over C, then return home
    Rooftop,      //!< climb over the wall to B and land (windy)
    Rescue,       //!< land at A, climb out, return home (windy)
    Homebound,    //!< return home and land
};
constexpr int kNumNavTasks = 10;

const char* navTaskName(NavTask t);

/** Motion-level subtasks the navigation planner emits. */
enum class NavSubtask : int {
    TransitA = 0,   //!< reach waypoint A (any altitude)
    TransitB,       //!< reach waypoint B
    TransitC,       //!< reach waypoint C
    ThreadCorridor, //!< pass through the wall gap below the wall top
    ClimbOver,      //!< reach the top altitude
    DescendLand,    //!< descend to ground level
    HoldStation,    //!< hover kHoldSteps consecutive steps at the station
    ScanLine,       //!< kScanCells consecutive east moves on the survey row
    ReturnHome,     //!< reach the home pad
};
constexpr int kNumNavSubtasks = 9;

/** Gold plan per mission. */
std::vector<NavSubtask> navGoldPlan(NavTask t);

/** Controller observation (same two-part layout as MineObs / ManipObs). */
struct NavObs
{
    std::vector<float> spatial;
    std::vector<float> state;

    static int spatialDim();
    static int stateDim();
};

/** The 2.5D navigation world. */
class NavWorld
{
  public:
    static constexpr int kSize = 10;
    static constexpr int kAltitudes = 3;  //!< z in [0, 2]
    static constexpr int kStepCap = 140;  //!< per-episode step budget
    static constexpr int kHoldSteps = 3;  //!< hover chain for HoldStation
    static constexpr int kScanCells = 3;  //!< east-move chain for ScanLine
    static constexpr int kBattery = 220;  //!< step budget incl. climb cost

    NavWorld(NavTask task, std::uint64_t seed);

    void reset(std::uint64_t seed);
    void step(NavAction a);

    void setActiveSubtask(NavSubtask s);
    NavSubtask activeSubtask() const { return subtask_; }
    bool subtaskComplete() const;
    bool taskComplete() const;

    NavObs observe() const;

    /** Map RGB render (3 x res x res) for the entropy predictor. */
    Tensor renderImage(int res) const;

    /** Occupancy height of a cell: 0 open, 2 wall, 3 no-fly. */
    int heightAt(int x, int y) const;
    /** Whether (x, y, z) is inside the map and not inside an obstacle. */
    bool open(int x, int y, int z) const;

    // Expert/test queries.
    int x() const { return x_; }
    int y() const { return y_; }
    int z() const { return z_; }
    int battery() const { return battery_; }
    int homeX() const { return homeX_; }
    int homeY() const { return homeY_; }
    int wayX(int which) const { return wx_[which]; }
    int wayY(int which) const { return wy_[which]; }
    int wallX() const { return wallX_; }
    int gapY() const { return gapY_; }
    int stationX() const { return stationX_; }
    int stationY() const { return stationY_; }
    int scanX() const { return scanX_; }
    int surveyY() const { return surveyY_; }
    int holdProgress() const { return holdProgress_; }
    int scanProgress() const { return scanProgress_; }
    bool visited(int which) const { return visited_[which]; }
    bool corridorPassed() const { return corridor_; }
    bool climbed() const { return climbed_; }
    bool landed() const { return landed_; }
    bool homeReached() const { return home_; }
    bool held() const { return held_; }
    bool scanned() const { return scanned_; }
    NavTask task() const { return task_; }
    std::uint64_t stepsTaken() const { return steps_; }

    /** XY cell the active subtask is about (waypoint/gap/station/home). */
    void subtaskTarget(int& tx, int& ty) const;
    /** Goal altitude of the active subtask (-1: any altitude works). */
    int subtaskTargetZ() const;

  private:
    void move(int dx, int dy);
    void updateStickyFlags();

    NavTask task_;
    Rng rng_;
    double windProb_ = 0.0;
    int x_ = 0, y_ = 0, z_ = 1;
    int battery_ = kBattery;
    int homeX_ = 0, homeY_ = 0;
    int wx_[3] = {0, 0, 0}, wy_[3] = {0, 0, 0}; //!< waypoints A, B, C
    int wallX_ = 0, gapY_ = 0;
    int noflyX_[2] = {0, 0}, noflyY_[2] = {0, 0};
    int stationX_ = 0, stationY_ = 0;
    int scanX_ = 0, surveyY_ = 0;
    int holdProgress_ = 0;
    int scanProgress_ = 0;
    bool visited_[3] = {false, false, false};
    bool corridor_ = false;
    bool climbed_ = false;
    bool landed_ = false;
    bool home_ = false;
    bool held_ = false;
    bool scanned_ = false;
    NavSubtask subtask_ = NavSubtask::TransitA;
    std::uint64_t steps_ = 0;
};

} // namespace create
