#include "env/nav_expert.hpp"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <vector>

namespace create {

namespace {

constexpr int kW = NavWorld::kSize;
constexpr int kA = NavWorld::kAltitudes;
constexpr int kNodes = kW * kW * kA;

// Lateral moves are cheap; climbing costs nearly two moves, so A* threads
// a nearby corridor gap but climbs over the wall when the detour is long.
constexpr int kLateralCost = 10;
constexpr int kAscendCost = 19;
constexpr int kDescendCost = 10;

int
nodeId(int x, int y, int z)
{
    return (z * kW + y) * kW + x;
}

struct Goal
{
    int tx = -1, ty = -1; //!< -1: any
    int tz = -1;          //!< -1: any
    bool belowWallTop = false;

    bool reached(int x, int y, int z) const
    {
        if (tx >= 0 && (x != tx || y != ty))
            return false;
        if (tz >= 0 && z != tz)
            return false;
        if (belowWallTop && z > 1)
            return false;
        return true;
    }

    int heuristic(int x, int y, int z) const
    {
        int h = 0;
        if (tx >= 0)
            h += kLateralCost * (std::abs(tx - x) + std::abs(ty - y));
        if (tz >= 0)
            h += kDescendCost * std::abs(tz - z);
        else if (belowWallTop && z > 1)
            h += kDescendCost * (z - 1);
        return h;
    }
};

/**
 * Exact A* on the occupancy lattice; returns the first action of the
 * cheapest path (ties broken by node id, so the policy is deterministic).
 */
NavAction
route(const NavWorld& w, const Goal& goal)
{
    if (goal.reached(w.x(), w.y(), w.z()))
        return NavAction::Hover;

    std::vector<int> gCost(kNodes, -1);
    std::vector<int> cameFrom(kNodes, -1);
    std::vector<int> cameAction(kNodes, -1);
    using QEntry = std::pair<int, int>; // (f, node)
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> q;

    const int start = nodeId(w.x(), w.y(), w.z());
    gCost[static_cast<std::size_t>(start)] = 0;
    q.push({goal.heuristic(w.x(), w.y(), w.z()), start});

    const int dx[6] = {0, 0, 1, -1, 0, 0};
    const int dy[6] = {-1, 1, 0, 0, 0, 0};
    const int dz[6] = {0, 0, 0, 0, 1, -1};
    const int cost[6] = {kLateralCost, kLateralCost, kLateralCost,
                         kLateralCost, kAscendCost, kDescendCost};
    const NavAction act[6] = {NavAction::MoveN, NavAction::MoveS,
                              NavAction::MoveE, NavAction::MoveW,
                              NavAction::Ascend, NavAction::Descend};

    int goalNode = -1;
    while (!q.empty()) {
        const auto [f, n] = q.top();
        q.pop();
        const int x = n % kW, y = (n / kW) % kW, z = n / (kW * kW);
        const int g = gCost[static_cast<std::size_t>(n)];
        if (f > g + goal.heuristic(x, y, z))
            continue; // stale entry
        if (goal.reached(x, y, z)) {
            goalNode = n;
            break;
        }
        for (int d = 0; d < 6; ++d) {
            const int nx = x + dx[d], ny = y + dy[d], nz = z + dz[d];
            if (!w.open(nx, ny, nz))
                continue;
            const int m = nodeId(nx, ny, nz);
            const int ng = g + cost[d];
            if (gCost[static_cast<std::size_t>(m)] >= 0 &&
                gCost[static_cast<std::size_t>(m)] <= ng)
                continue;
            gCost[static_cast<std::size_t>(m)] = ng;
            cameFrom[static_cast<std::size_t>(m)] = n;
            cameAction[static_cast<std::size_t>(m)] = d;
            q.push({ng + goal.heuristic(nx, ny, nz), m});
        }
    }
    if (goalNode < 0)
        return NavAction::Hover; // unreachable: hold position

    int n = goalNode;
    int firstAction = -1;
    while (cameFrom[static_cast<std::size_t>(n)] >= 0) {
        firstAction = cameAction[static_cast<std::size_t>(n)];
        n = cameFrom[static_cast<std::size_t>(n)];
    }
    return firstAction < 0 ? NavAction::Hover : act[firstAction];
}

} // namespace

NavAction
NavExpert::act(const NavWorld& w)
{
    int tx = 0, ty = 0;
    w.subtaskTarget(tx, ty);
    switch (w.activeSubtask()) {
      case NavSubtask::TransitA:
      case NavSubtask::TransitB:
      case NavSubtask::TransitC:
      case NavSubtask::ReturnHome:
        return route(w, Goal{tx, ty, -1, false});
      case NavSubtask::ThreadCorridor:
        return route(w, Goal{tx, ty, -1, true});
      case NavSubtask::ClimbOver:
        return route(w, Goal{-1, -1, kA - 1, false});
      case NavSubtask::DescendLand:
        return route(w, Goal{-1, -1, 0, false});
      case NavSubtask::HoldStation:
        if (w.x() == tx && w.y() == ty)
            return NavAction::Hover;
        return route(w, Goal{tx, ty, -1, false});
      case NavSubtask::ScanLine:
        // Stage at the strip head, then sweep east.
        if (w.scanProgress() > 0 ||
            (w.x() == tx && w.y() == ty))
            return NavAction::MoveE;
        return route(w, Goal{tx, ty, -1, false});
    }
    return NavAction::Hover;
}

} // namespace create
