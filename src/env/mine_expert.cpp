#include "env/mine_expert.hpp"

#include <climits>
#include <deque>

namespace create {

namespace {

constexpr int kInf = INT_MAX / 2;

/** Move action toward (dx, dy); requires |dx|+|dy| >= 1. */
Action
moveToward(int dx, int dy, Rng& rng)
{
    // When both components are nonzero pick one at random (multi-modal).
    if (dx != 0 && dy != 0)
        return rng.chance(0.5) ? (dx > 0 ? Action::MoveE : Action::MoveW)
                               : (dy > 0 ? Action::MoveS : Action::MoveN);
    if (dx != 0)
        return dx > 0 ? Action::MoveE : Action::MoveW;
    return dy > 0 ? Action::MoveS : Action::MoveN;
}

} // namespace

Action
MineExpert::act(const MineWorld& w, Rng& rng)
{
    const Subtask& st = w.activeSubtask();
    if (st.isCraft())
        return Action::Craft;
    if (st.isSmelt())
        return Action::Smelt;
    return gatherAction(w, rng);
}

Action
MineExpert::gatherAction(const MineWorld& w, Rng& rng)
{
    const int width = w.config().width, height = w.config().height;
    const Block tb = MineWorld::targetBlock(w.activeSubtask().type);
    Mob::Kind mk{};
    const bool wantsMob = MineWorld::targetMob(w.activeSubtask().type, mk);

    // Collect target cells.
    std::vector<std::pair<int, int>> targets;
    if (tb != Block::Air) {
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                if (w.blockAt(x, y) == tb)
                    targets.push_back({x, y});
    } else if (wantsMob) {
        for (const auto& m : w.mobs()) {
            if (m.kind != mk)
                continue;
            if (mk == Mob::Kind::Sheep && m.shearCooldown > 0)
                continue;
            targets.push_back({m.x, m.y});
        }
    }

    const int ax = w.agentX(), ay = w.agentY();
    auto explore = [&] {
        // Sample among passable moves; fall back to a random turn.
        std::vector<Action> moves;
        const int dirs[4][2] = {{0, -1}, {0, 1}, {1, 0}, {-1, 0}};
        const Action acts[4] = {Action::MoveN, Action::MoveS, Action::MoveE,
                                Action::MoveW};
        for (int d = 0; d < 4; ++d) {
            if (MineWorld::passable(w.blockAt(ax + dirs[d][0],
                                              ay + dirs[d][1])))
                moves.push_back(acts[d]);
        }
        if (moves.empty())
            return acts[rng.below(4)];
        return moves[rng.below(moves.size())];
    };
    if (targets.empty())
        return explore();

    // Target in front => harvest. Sheep are sheared (Use); everything else
    // is attacked.
    const int fx = ax + w.facingDx(), fy = ay + w.facingDy();
    for (const auto& [tx, ty] : targets) {
        if (tx == fx && ty == fy)
            return (wantsMob && mk == Mob::Kind::Sheep) ? Action::Use
                                                        : Action::Attack;
    }
    // Adjacent but not facing => turn toward it (a move into a blocked
    // cell only changes facing).
    for (const auto& [tx, ty] : targets) {
        if (std::abs(tx - ax) + std::abs(ty - ay) == 1)
            return moveToward(tx - ax, ty - ay, rng);
    }

    // Multi-source BFS over passable cells from all cells adjacent to any
    // target; then walk downhill. Ties are broken randomly so demonstration
    // data is multi-modal during navigation.
    std::vector<int> dist(static_cast<std::size_t>(width * height), kInf);
    std::deque<std::pair<int, int>> queue;
    auto at = [&](int x, int y) -> int& {
        return dist[static_cast<std::size_t>(y * width + x)];
    };
    const int dirs[4][2] = {{0, -1}, {0, 1}, {1, 0}, {-1, 0}};
    for (const auto& [tx, ty] : targets) {
        for (const auto& d : dirs) {
            const int nx = tx + d[0], ny = ty + d[1];
            if (nx < 0 || ny < 0 || nx >= width || ny >= height)
                continue;
            if (MineWorld::passable(w.blockAt(nx, ny)) && at(nx, ny) > 0) {
                at(nx, ny) = 0;
                queue.push_back({nx, ny});
            }
        }
    }
    while (!queue.empty()) {
        const auto [x, y] = queue.front();
        queue.pop_front();
        for (const auto& d : dirs) {
            const int nx = x + d[0], ny = y + d[1];
            if (nx < 0 || ny < 0 || nx >= width || ny >= height)
                continue;
            if (!MineWorld::passable(w.blockAt(nx, ny)))
                continue;
            if (at(nx, ny) > at(x, y) + 1) {
                at(nx, ny) = at(x, y) + 1;
                queue.push_back({nx, ny});
            }
        }
    }
    if (at(ax, ay) >= kInf)
        return explore();

    std::vector<Action> best;
    int bestDist = at(ax, ay);
    const Action acts[4] = {Action::MoveN, Action::MoveS, Action::MoveE,
                            Action::MoveW};
    for (int d = 0; d < 4; ++d) {
        const int nx = ax + dirs[d][0], ny = ay + dirs[d][1];
        if (nx < 0 || ny < 0 || nx >= width || ny >= height)
            continue;
        if (!MineWorld::passable(w.blockAt(nx, ny)))
            continue;
        if (at(nx, ny) < bestDist) {
            bestDist = at(nx, ny);
            best.clear();
            best.push_back(acts[d]);
        } else if (at(nx, ny) == bestDist && at(nx, ny) < at(ax, ay)) {
            best.push_back(acts[d]);
        }
    }
    if (best.empty())
        return explore();
    return best[rng.below(best.size())];
}

} // namespace create
