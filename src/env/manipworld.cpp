#include "env/manipworld.hpp"

#include <cmath>
#include <cstdlib>

namespace create {

const char*
manipTaskName(ManipTask t)
{
    static const char* names[] = {"wine", "alphabet", "bbq",    "button",
                                  "block", "handle",  "eggplant", "coke",
                                  "carrot", "open",   "move",   "place"};
    return names[static_cast<int>(t)];
}

std::vector<ManipSubtask>
manipGoldPlan(ManipTask t)
{
    using M = ManipSubtask;
    switch (t) {
      case ManipTask::Button:
        return {M::ReachButton, M::PressButton};
      case ManipTask::Handle:
      case ManipTask::Open:
        return {M::ReachHandle, M::PullHandle};
      case ManipTask::Block:
        return {M::ReachObject, M::PushBlock};
      case ManipTask::Coke:
        return {M::ReachObject, M::GraspObject};
      default:
        // All pick-and-place style tasks.
        return {M::ReachObject, M::GraspObject, M::TransportToGoal,
                M::ReleaseAtGoal};
    }
}

int
ManipObs::spatialDim()
{
    // dxSign(3) dySign(3) distBucket(4) atTarget(1) holding(1)
    // pullProgress(1) pressProgress(1) pushes(1)
    return 3 + 3 + 4 + 1 + 1 + 1 + 1 + 1;
}

int
ManipObs::stateDim()
{
    // subtask one-hot(9) drawerOpen(1) buttonPressed(1)
    return kNumManipSubtasks + 2;
}

ManipWorld::ManipWorld(ManipTask task, std::uint64_t seed)
    : task_(task), rng_(seed)
{
    reset(seed);
}

void
ManipWorld::reset(std::uint64_t seed)
{
    rng_ = Rng(seed * 0x2545F4914F6CDD1Dull + 777);
    auto place = [&](int& x, int& y) {
        x = static_cast<int>(rng_.below(kSize));
        y = static_cast<int>(rng_.below(kSize));
    };
    place(gx_, gy_);
    do {
        place(ox_, oy_);
    } while (ox_ == gx_ && oy_ == gy_);
    do {
        place(goalX_, goalY_);
    } while ((goalX_ == ox_ && goalY_ == oy_));
    place(buttonX_, buttonY_);
    place(handleX_, handleY_);
    do {
        place(blockX_, blockY_);
    } while (blockX_ >= kSize - 3); // leave room to slide east
    holding_ = false;
    pullProgress_ = 0;
    pressProgress_ = 0;
    pushesDone_ = 0;
    buttonPressed_ = false;
    drawerOpen_ = false;
    released_ = false;
    subtask_ = manipGoldPlan(task_).front();
    steps_ = 0;
}

void
ManipWorld::move(int dx, int dy)
{
    const int nx = gx_ + dx, ny = gy_ + dy;
    if (nx < 0 || ny < 0 || nx >= kSize || ny >= kSize)
        return;
    // Pushing: moving into the block slides it (CALVIN "slide block").
    if (nx == blockX_ && ny == blockY_ && !holding_) {
        const int bx = blockX_ + dx, by = blockY_ + dy;
        if (bx >= 0 && by >= 0 && bx < kSize && by < kSize) {
            blockX_ = bx;
            blockY_ = by;
            // A push counts toward the task only when sliding east
            // (toward the drawer on the table's east edge).
            if (dx == 1)
                ++pushesDone_;
            else
                pushesDone_ = 0;
        }
    }
    gx_ = nx;
    gy_ = ny;
    if (holding_) {
        ox_ = gx_;
        oy_ = gy_;
    }
}

void
ManipWorld::step(ManipAction a)
{
    const bool wasPulling = a == ManipAction::Pull;
    switch (a) {
      case ManipAction::MoveN: move(0, -1); break;
      case ManipAction::MoveS: move(0, 1); break;
      case ManipAction::MoveE: move(1, 0); break;
      case ManipAction::MoveW: move(-1, 0); break;
      case ManipAction::Grasp:
        if (!holding_ && gx_ == ox_ && gy_ == oy_) {
            // Imperfect grasping: 10% slip, retry next step.
            if (rng_.chance(0.9))
                holding_ = true;
        }
        break;
      case ManipAction::Release:
        if (holding_) {
            holding_ = false;
            if (ox_ == goalX_ && oy_ == goalY_)
                released_ = true;
        }
        break;
      case ManipAction::Press:
        if (gx_ == buttonX_ && gy_ == buttonY_) {
            if (++pressProgress_ >= 2)
                buttonPressed_ = true;
        } else {
            pressProgress_ = 0;
        }
        break;
      case ManipAction::Pull:
        if (gx_ == handleX_ && gy_ == handleY_) {
            if (++pullProgress_ >= 3)
                drawerOpen_ = true;
        } else {
            pullProgress_ = 0;
        }
        break;
      case ManipAction::Noop:
        break;
    }
    // Interruptions reset critical chains (like mining in MineWorld).
    if (!wasPulling && !drawerOpen_)
        pullProgress_ = 0;
    if (a != ManipAction::Press && !buttonPressed_)
        pressProgress_ = 0;
    ++steps_;
}

void
ManipWorld::setActiveSubtask(ManipSubtask s)
{
    subtask_ = s;
}

void
ManipWorld::subtaskTarget(int& tx, int& ty) const
{
    switch (subtask_) {
      case ManipSubtask::ReachObject:
      case ManipSubtask::GraspObject:
        tx = ox_;
        ty = oy_;
        break;
      case ManipSubtask::TransportToGoal:
      case ManipSubtask::ReleaseAtGoal:
        tx = goalX_;
        ty = goalY_;
        break;
      case ManipSubtask::ReachButton:
      case ManipSubtask::PressButton:
        tx = buttonX_;
        ty = buttonY_;
        break;
      case ManipSubtask::ReachHandle:
      case ManipSubtask::PullHandle:
        tx = handleX_;
        ty = handleY_;
        break;
      case ManipSubtask::PushBlock:
        tx = blockX_ - 1 < 0 ? 0 : blockX_ - 1; // stand west of the block
        ty = blockY_;
        break;
    }
}

bool
ManipWorld::subtaskComplete() const
{
    switch (subtask_) {
      case ManipSubtask::ReachObject:
        return gx_ == ox_ && gy_ == oy_ && !holding_;
      case ManipSubtask::GraspObject:
        return holding_;
      case ManipSubtask::TransportToGoal:
        return holding_ && ox_ == goalX_ && oy_ == goalY_;
      case ManipSubtask::ReleaseAtGoal:
        return released_;
      case ManipSubtask::ReachButton:
        return gx_ == buttonX_ && gy_ == buttonY_;
      case ManipSubtask::PressButton:
        return buttonPressed_;
      case ManipSubtask::ReachHandle:
        return gx_ == handleX_ && gy_ == handleY_;
      case ManipSubtask::PullHandle:
        return drawerOpen_;
      case ManipSubtask::PushBlock:
        return pushesDone_ >= 3;
    }
    return false;
}

bool
ManipWorld::taskComplete() const
{
    switch (task_) {
      case ManipTask::Button:
        return buttonPressed_;
      case ManipTask::Handle:
      case ManipTask::Open:
        return drawerOpen_;
      case ManipTask::Block:
        return pushesDone_ >= 3;
      case ManipTask::Coke:
        return holding_;
      default:
        return released_;
    }
}

Tensor
ManipWorld::renderImage(int res) const
{
    Tensor img({3, res, res});
    auto paint = [&](int cx, int cy, float r, float g, float b) {
        // One table cell covers res/kSize pixels.
        const int scale = res / kSize;
        for (int py = cy * scale; py < (cy + 1) * scale && py < res; ++py) {
            for (int px = cx * scale; px < (cx + 1) * scale && px < res;
                 ++px) {
                img.at(0, py, px) = r;
                img.at(1, py, px) = g;
                img.at(2, py, px) = b;
            }
        }
    };
    for (int y = 0; y < kSize; ++y)
        for (int x = 0; x < kSize; ++x)
            paint(x, y, 0.75f, 0.72f, 0.68f); // table
    paint(goalX_, goalY_, 0.30f, 0.70f, 0.35f);
    paint(buttonX_, buttonY_, 0.85f, 0.20f, 0.20f);
    paint(handleX_, handleY_, 0.45f, 0.35f, 0.25f);
    paint(blockX_, blockY_, 0.25f, 0.35f, 0.80f);
    paint(ox_, oy_, 0.95f, 0.75f, 0.20f);
    paint(gx_, gy_, 0.10f, 0.10f, 0.10f);
    return img;
}

ManipObs
ManipWorld::observe() const
{
    ManipObs obs;
    obs.spatial.assign(static_cast<std::size_t>(ManipObs::spatialDim()), 0.0f);
    obs.state.assign(static_cast<std::size_t>(ManipObs::stateDim()), 0.0f);
    int tx = 0, ty = 0;
    subtaskTarget(tx, ty);
    std::size_t i = 0;
    const int sdx = tx < gx_ ? 0 : (tx == gx_ ? 1 : 2);
    obs.spatial[i + static_cast<std::size_t>(sdx)] = 1.0f;
    i += 3;
    const int sdy = ty < gy_ ? 0 : (ty == gy_ ? 1 : 2);
    obs.spatial[i + static_cast<std::size_t>(sdy)] = 1.0f;
    i += 3;
    const int dist = std::abs(tx - gx_) + std::abs(ty - gy_);
    const int bucket =
        dist == 0 ? 0 : (dist <= 2 ? 1 : (dist <= 5 ? 2 : 3));
    obs.spatial[i + static_cast<std::size_t>(bucket)] = 1.0f;
    i += 4;
    obs.spatial[i++] = dist == 0 ? 1.0f : 0.0f;
    obs.spatial[i++] = holding_ ? 1.0f : 0.0f;
    obs.spatial[i++] = static_cast<float>(pullProgress_) / 3.0f;
    obs.spatial[i++] = static_cast<float>(pressProgress_) / 2.0f;
    obs.spatial[i++] = static_cast<float>(pushesDone_) / 3.0f;

    std::size_t j = 0;
    obs.state[j + static_cast<std::size_t>(subtask_)] = 1.0f;
    j += kNumManipSubtasks;
    obs.state[j++] = drawerOpen_ ? 1.0f : 0.0f;
    obs.state[j++] = buttonPressed_ ? 1.0f : 0.0f;
    return obs;
}

} // namespace create
