#pragma once

/**
 * @file
 * Symmetric per-tensor quantization (INT8 default, INT4 supported) used by
 * the accelerator pipeline, following the SmoothQuant-style W8A8 setup the
 * paper adopts (Sec. 3.2): inputs and weights of every GEMM/conv are
 * quantized to INT8 and accumulated in a 24-bit integer accumulator.
 */

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace create {

/** Quantization bit-width options for the datapath (Sec. 6.9 studies INT4). */
enum class QuantBits { Int8, Int4 };

/** Max representable magnitude for a bit-width (127 for INT8, 7 for INT4). */
int quantMaxLevel(QuantBits bits);

/** Symmetric quantization parameters: real = scale * q. */
struct QuantParams
{
    float scale = 1.0f;
    QuantBits bits = QuantBits::Int8;

    /** Derive from a calibrated absolute maximum. */
    static QuantParams fromAbsMax(float absMax, QuantBits bits = QuantBits::Int8);
};

/** Quantize FP32 tensor to int8 codes with saturation. */
std::vector<std::int8_t> quantize(const Tensor& t, const QuantParams& qp);

/** quantize() into a caller-owned buffer (resized; capacity reused). */
void quantizeInto(const Tensor& t, const QuantParams& qp,
                  std::vector<std::int8_t>& out);

/** Dequantize int8 codes back to FP32 with the given params/shape. */
Tensor dequantize(const std::vector<std::int8_t>& q,
                  const std::vector<std::int64_t>& shape, const QuantParams& qp);

/**
 * Running absmax observer for calibration.
 *
 * Clean (error-free) calibration passes feed every GEMM input/output through
 * one of these; the recorded maxima become the quantization scales and the
 * anomaly-detection valid bounds (Sec. 5.1: "127x the output scaling factor").
 */
class AbsMaxObserver
{
  public:
    void observe(const Tensor& t);
    void observe(float absMax);
    float absMax() const { return max_; }
    bool seeded() const { return seen_; }
    void reset();

  private:
    float max_ = 0.0f;
    bool seen_ = false;
};

} // namespace create
