#include "quant/quant.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace create {

int
quantMaxLevel(QuantBits bits)
{
    return bits == QuantBits::Int8 ? 127 : 7;
}

QuantParams
QuantParams::fromAbsMax(float absMax, QuantBits bits)
{
    QuantParams qp;
    qp.bits = bits;
    const float levels = static_cast<float>(quantMaxLevel(bits));
    // Guard against degenerate all-zero calibration.
    qp.scale = absMax > 1e-20f ? absMax / levels : 1.0f / levels;
    return qp;
}

std::vector<std::int8_t>
quantize(const Tensor& t, const QuantParams& qp)
{
    std::vector<std::int8_t> q;
    quantizeInto(t, qp, q);
    return q;
}

void
quantizeInto(const Tensor& t, const QuantParams& qp,
             std::vector<std::int8_t>& out)
{
    const int lim = quantMaxLevel(qp.bits);
    const std::int64_t numel = t.numel();
    out.resize(static_cast<std::size_t>(numel));
    const float inv = 1.0f / qp.scale;
    std::int64_t i = 0;
#if defined(__SSE2__)
    // Vector path: clamp in FP32 then convert. cvtps2dq rounds per MXCSR
    // (round-to-nearest-even, the same default environment nearbyint
    // uses), and clamping before instead of after rounding cannot change
    // the saturated result, so codes are bit-identical to the scalar
    // loop for every finite input.
    const float* src = t.data();
    const __m128 vinv = _mm_set1_ps(inv);
    const __m128 vlim = _mm_set1_ps(static_cast<float>(lim));
    const __m128 vnlim = _mm_set1_ps(static_cast<float>(-lim));
    for (; i + 4 <= numel; i += 4) {
        __m128 v = _mm_mul_ps(_mm_loadu_ps(src + i), vinv);
        v = _mm_min_ps(_mm_max_ps(v, vnlim), vlim);
        __m128i q = _mm_cvtps_epi32(v);
        q = _mm_packs_epi16(_mm_packs_epi32(q, q), q);
        const std::int32_t lanes = _mm_cvtsi128_si32(q);
        std::memcpy(out.data() + i, &lanes, 4);
    }
#endif
    for (; i < numel; ++i) {
        float v = t[i] * inv;
        v = std::nearbyint(v);
        if (v > static_cast<float>(lim))
            v = static_cast<float>(lim);
        if (v < static_cast<float>(-lim))
            v = static_cast<float>(-lim);
        out[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(v);
    }
}

Tensor
dequantize(const std::vector<std::int8_t>& q,
           const std::vector<std::int64_t>& shape, const QuantParams& qp)
{
    Tensor t(shape);
    if (t.numel() != static_cast<std::int64_t>(q.size()))
        throw std::invalid_argument("dequantize: shape mismatch");
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(q[static_cast<std::size_t>(i)]) * qp.scale;
    return t;
}

void
AbsMaxObserver::observe(const Tensor& t)
{
    observe(t.absMax());
}

void
AbsMaxObserver::observe(float absMax)
{
    if (absMax > max_)
        max_ = absMax;
    seen_ = true;
}

void
AbsMaxObserver::reset()
{
    max_ = 0.0f;
    seen_ = false;
}

} // namespace create
