#include "quant/quant.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "hw/kernel_dispatch.hpp"

namespace create {

int
quantMaxLevel(QuantBits bits)
{
    return bits == QuantBits::Int8 ? 127 : 7;
}

QuantParams
QuantParams::fromAbsMax(float absMax, QuantBits bits)
{
    QuantParams qp;
    qp.bits = bits;
    const float levels = static_cast<float>(quantMaxLevel(bits));
    // Guard against degenerate all-zero calibration.
    qp.scale = absMax > 1e-20f ? absMax / levels : 1.0f / levels;
    return qp;
}

std::vector<std::int8_t>
quantize(const Tensor& t, const QuantParams& qp)
{
    std::vector<std::int8_t> q;
    quantizeInto(t, qp, q);
    return q;
}

void
quantizeInto(const Tensor& t, const QuantParams& qp,
             std::vector<std::int8_t>& out)
{
    const int lim = quantMaxLevel(qp.bits);
    const std::int64_t numel = t.numel();
    out.resize(static_cast<std::size_t>(numel));
    const float inv = 1.0f / qp.scale;
    // Kernel selection is CPUID-driven (see hw/kernel_dispatch.hpp); every
    // variant rounds with the same round-to-nearest-even the scalar
    // nearbyint loop uses, so codes are bit-identical across ISAs for
    // every finite input.
    simd::active().quantize(t.data(), numel, inv, lim, out.data());
}

Tensor
dequantize(const std::vector<std::int8_t>& q,
           const std::vector<std::int64_t>& shape, const QuantParams& qp)
{
    Tensor t(shape);
    if (t.numel() != static_cast<std::int64_t>(q.size()))
        throw std::invalid_argument("dequantize: shape mismatch");
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(q[static_cast<std::size_t>(i)]) * qp.scale;
    return t;
}

void
AbsMaxObserver::observe(const Tensor& t)
{
    observe(t.absMax());
}

void
AbsMaxObserver::observe(float absMax)
{
    if (absMax > max_)
        max_ = absMax;
    seen_ = true;
}

void
AbsMaxObserver::reset()
{
    max_ = 0.0f;
    seen_ = false;
}

} // namespace create
