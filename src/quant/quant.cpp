#include "quant/quant.hpp"

#include <cmath>
#include <stdexcept>

namespace create {

int
quantMaxLevel(QuantBits bits)
{
    return bits == QuantBits::Int8 ? 127 : 7;
}

QuantParams
QuantParams::fromAbsMax(float absMax, QuantBits bits)
{
    QuantParams qp;
    qp.bits = bits;
    const float levels = static_cast<float>(quantMaxLevel(bits));
    // Guard against degenerate all-zero calibration.
    qp.scale = absMax > 1e-20f ? absMax / levels : 1.0f / levels;
    return qp;
}

std::vector<std::int8_t>
quantize(const Tensor& t, const QuantParams& qp)
{
    const int lim = quantMaxLevel(qp.bits);
    std::vector<std::int8_t> q(static_cast<std::size_t>(t.numel()));
    const float inv = 1.0f / qp.scale;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        float v = t[i] * inv;
        v = std::nearbyint(v);
        if (v > static_cast<float>(lim))
            v = static_cast<float>(lim);
        if (v < static_cast<float>(-lim))
            v = static_cast<float>(-lim);
        q[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(v);
    }
    return q;
}

Tensor
dequantize(const std::vector<std::int8_t>& q,
           const std::vector<std::int64_t>& shape, const QuantParams& qp)
{
    Tensor t(shape);
    if (t.numel() != static_cast<std::int64_t>(q.size()))
        throw std::invalid_argument("dequantize: shape mismatch");
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(q[static_cast<std::size_t>(i)]) * qp.scale;
    return t;
}

void
AbsMaxObserver::observe(const Tensor& t)
{
    observe(t.absMax());
}

void
AbsMaxObserver::observe(float absMax)
{
    if (absMax > max_)
        max_ = absMax;
    seen_ = true;
}

void
AbsMaxObserver::reset()
{
    max_ = 0.0f;
    seen_ = false;
}

} // namespace create
