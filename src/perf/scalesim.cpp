#include "perf/scalesim.hpp"

#include <algorithm>

namespace create {

PerfCounters&
PerfCounters::operator+=(const PerfCounters& o)
{
    cycles += o.cycles;
    macs += o.macs;
    sramReadBytes += o.sramReadBytes;
    sramWriteBytes += o.sramWriteBytes;
    dramBytes += o.dramBytes;
    return *this;
}

ScaleSimModel::ScaleSimModel(AcceleratorConfig cfg) : cfg_(cfg) {}

PerfCounters
ScaleSimModel::gemm(const GemmShape& s, bool weightsResident) const
{
    PerfCounters c;
    c.macs = static_cast<double>(s.macs());

    // Weight-stationary tiling over the K (rows) and N (cols) dimensions;
    // the M tiles are distributed across the numArrays arrays.
    const std::int64_t tilesK = (s.k + cfg_.rows - 1) / cfg_.rows;
    const std::int64_t tilesN = (s.n + cfg_.cols - 1) / cfg_.cols;
    const std::int64_t mPerArray = (s.m + cfg_.numArrays - 1) / cfg_.numArrays;
    const std::uint64_t perTile =
        static_cast<std::uint64_t>(cfg_.rows) +
        static_cast<std::uint64_t>(mPerArray + cfg_.rows + cfg_.cols - 2);
    c.cycles = static_cast<std::uint64_t>(tilesK * tilesN) * perTile;

    // SRAM traffic: weights streamed once per tile; activations re-read for
    // every N tile; INT8 outputs written once.
    c.sramReadBytes = static_cast<double>(s.k) * s.n +
                      static_cast<double>(s.m) * s.k * tilesN;
    c.sramWriteBytes = static_cast<double>(s.m) * s.n;

    if (!weightsResident)
        c.dramBytes = static_cast<double>(s.k) * s.n; // INT8 weights
    return c;
}

PerfCounters
ScaleSimModel::network(const std::vector<GemmShape>& layers,
                       bool weightsResident, double inputDramBytes) const
{
    PerfCounters total;
    for (const auto& s : layers)
        total += gemm(s, weightsResident);
    total.dramBytes += inputDramBytes;
    return total;
}

double
ScaleSimModel::latencyMs(const PerfCounters& c) const
{
    const double computeMs =
        static_cast<double>(c.cycles) / (cfg_.clockGHz * 1e9) * 1e3;
    const double dramMs = c.dramBytes / (cfg_.hbmBandwidthGBs * 1e9) * 1e3;
    return std::max(computeMs, dramMs);
}

} // namespace create
