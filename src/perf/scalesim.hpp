#pragma once

/**
 * @file
 * SCALE-Sim-style analytical performance model (paper Sec. 6.1: "cycle-level
 * behaviors, including inference latency and memory access, are modeled
 * based on SCALE-Sim").
 *
 * Given a network as a list of GEMM shapes, the model reports pipeline
 * cycles on the weight-stationary systolic arrays, SRAM/DRAM traffic, and
 * wall-clock latency for the full accelerator (Fig. 12: nine 128x128 arrays
 * at 2 ns, 71 MB on-chip SRAM, HBM2 off-chip).
 */

#include <cstdint>
#include <vector>

namespace create {

/** One GEMM workload: (M x K) @ (K x N). */
struct GemmShape
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    std::int64_t n = 0;

    std::int64_t macs() const { return m * k * n; }
};

/** Full-accelerator configuration (Fig. 12 defaults). */
struct AcceleratorConfig
{
    int rows = 128;                 //!< PEs per array row
    int cols = 128;                 //!< PEs per array column
    int numArrays = 9;              //!< distributed arrays on die
    double clockGHz = 0.5;          //!< 2 ns cycle
    double sramBytes = 142.0 * 512.0 * 1024.0; //!< 71 MB on-chip buffers
    double hbmBandwidthGBs = 450.0; //!< HBM2 sustained bandwidth

    /** Peak throughput in TOPS (2 ops per MAC). */
    double peakTops() const
    {
        return rows * static_cast<double>(cols) * numArrays * 2.0 * clockGHz / 1e3;
    }
};

/** Aggregated performance counters for a layer or a whole network. */
struct PerfCounters
{
    std::uint64_t cycles = 0;       //!< systolic pipeline cycles (per array set)
    double macs = 0.0;
    double sramReadBytes = 0.0;
    double sramWriteBytes = 0.0;
    double dramBytes = 0.0;

    PerfCounters& operator+=(const PerfCounters& o);
};

/** Analytical systolic/DRAM model. */
class ScaleSimModel
{
  public:
    explicit ScaleSimModel(AcceleratorConfig cfg = {});

    /**
     * Model one GEMM.
     *
     * @param weightsResident true when weights live in on-chip SRAM for the
     *        whole mission (the controller case); false adds DRAM weight
     *        traffic (the planner reloads weights every inference).
     */
    PerfCounters gemm(const GemmShape& s, bool weightsResident) const;

    /** Model a network = sum over layers (+ input DRAM traffic). */
    PerfCounters network(const std::vector<GemmShape>& layers,
                         bool weightsResident, double inputDramBytes) const;

    /** Latency in milliseconds: max(compute-bound, DRAM-bound). */
    double latencyMs(const PerfCounters& c) const;

    const AcceleratorConfig& config() const { return cfg_; }

  private:
    AcceleratorConfig cfg_;
};

} // namespace create
