#pragma once

/**
 * @file
 * Paper-scale workload descriptors (Tables 4, 7, 8, 9).
 *
 * These describe the *real* model architectures the paper deploys (JARVIS-1
 * planner/controller, OpenVLA, RoboFlamingo, RT-1, Octo, entropy predictor)
 * as GEMM lists for the analytical perf/energy model. The behavioural
 * simulation uses small trainable stand-ins (see DESIGN.md substitution #1),
 * but all Joule-level results are computed at these paper-scale costs so
 * Figs. 16-18 and Table 3 keep the paper's magnitudes.
 *
 * Each descriptor carries the paper's reported params/GOps alongside the
 * analytically derived ones so benches can print both columns.
 */

#include <string>
#include <vector>

#include "perf/scalesim.hpp"

namespace create {

/** One deployable network, as seen by the accelerator. */
struct Workload
{
    std::string name;
    std::vector<GemmShape> gemms;  //!< all GEMMs of one inference
    bool weightsResident = false;  //!< controller weights pinned in SRAM
    double inputDramBytes = 0.0;   //!< e.g. camera frame fetch
    double paperParamsM = 0.0;     //!< Table 4 reported
    double paperGops = 0.0;        //!< Table 4 reported (INT8 ops)

    /** Analytic parameter count in millions (sum of K*N). */
    double analyticParamsM() const;

    /** Analytic giga-MACs for one inference. */
    double analyticGmacs() const;
};

namespace workloads {

/** LLaMA-style planner (Table 7) with prefill+decode token counts. */
Workload planner(const std::string& name, int layers, int hidden, int mlp,
                 int vocab, int prefillTokens, int decodeTokens,
                 double paperParamsM, double paperGops);

/** Conv stack + transformer-decoder controller (Table 8 shape). */
Workload controller(const std::string& name, int imageRes, int convChannels,
                    int decLayers, int decHidden, int decMlp, int seqLen,
                    double paperParamsM, double paperGops);

// Paper instances ------------------------------------------------------
Workload jarvisPlanner();    //!< 32 x (4096 / 14336), 740+251 tokens
Workload openVla();          //!< 32 x (4096 / 11008), 617+71 tokens
Workload roboFlamingo();     //!< 24 x (2048 / 8192), 505+61 tokens
Workload jarvisController(); //!< 128px conv + 4 x 1024/4096 decoder
Workload rt1();              //!< 224px, MaxViT-ish budget
Workload octo();             //!< 224px, ViT-ish budget
Workload entropyPredictor(); //!< Table 9 CNN+MLP

// Navigation platform instances (third family; drone-scale budgets) ----
Workload navLlama();   //!< 22 x (2048 / 5632), 430+48 tokens, ~1.2B params
Workload pathRt();     //!< 176px tower + 6 x 384/1536 decoder
Workload swiftPilot(); //!< 160px tower + 4 x 320/1280 decoder

/** Helper: conv layer as an im2col GEMM shape. */
GemmShape convGemm(int inHw, int cin, int cout, int k, int stride, int pad);

} // namespace workloads

} // namespace create
