#include "perf/energy.hpp"

namespace create {

double
EnergyModel::computeJ(double macs, double effectiveVoltage) const
{
    const double vr = effectiveVoltage / k_.nominalV;
    return macs * k_.pjPerMacNominal * 1e-12 * vr * vr;
}

ChipEnergy
EnergyModel::invocation(const PerfCounters& c, double effectiveVoltage,
                        double latencySec) const
{
    ChipEnergy e;
    e.computeJ = computeJ(c.macs, effectiveVoltage);
    e.sramJ = (c.sramReadBytes + c.sramWriteBytes) * k_.pjPerSramByte * 1e-12;
    e.dramJ = c.dramBytes * k_.pjPerDramByte * 1e-12;
    e.leakageJ = k_.sramLeakageW * latencySec;
    return e;
}

double
batteryLifeExtension(double chipSavings, double computeShareOfRobot)
{
    const double saved = chipSavings * computeShareOfRobot;
    if (saved >= 1.0)
        return 0.0;
    return 1.0 / (1.0 - saved) - 1.0;
}

} // namespace create
