#include "perf/workloads.hpp"

#include "tensor/ops.hpp"

namespace create {

double
Workload::analyticParamsM() const
{
    double p = 0.0;
    for (const auto& g : gemms)
        p += static_cast<double>(g.k) * static_cast<double>(g.n);
    return p / 1e6;
}

double
Workload::analyticGmacs() const
{
    double m = 0.0;
    for (const auto& g : gemms)
        m += static_cast<double>(g.macs());
    return m / 1e9;
}

namespace workloads {

GemmShape
convGemm(int inHw, int cin, int cout, int k, int stride, int pad)
{
    const int out = ops::convOutSize(inHw, k, stride, pad);
    return GemmShape{static_cast<std::int64_t>(out) * out,
                     static_cast<std::int64_t>(cin) * k * k, cout};
}

Workload
planner(const std::string& name, int layers, int hidden, int mlp, int vocab,
        int prefillTokens, int decodeTokens, double paperParamsM,
        double paperGops)
{
    Workload w;
    w.name = name;
    w.weightsResident = false; // billions of params never fit 71 MB SRAM
    w.paperParamsM = paperParamsM;
    w.paperGops = paperGops;

    // Prefill processes all prompt tokens as one batched GEMM pass; decode
    // tokens are modeled batched as well (weight streaming is amortized
    // across the inference by the scheduler, as the paper's latency numbers
    // imply). Embedding lookup is table-indexed, not a GEMM.
    auto addPass = [&](int tokens) {
        if (tokens <= 0)
            return;
        for (int l = 0; l < layers; ++l) {
            // Q, K, V, O projections.
            for (int i = 0; i < 4; ++i)
                w.gemms.push_back({tokens, hidden, hidden});
            // LLaMA MLP: gate, up (hidden->mlp) and down (mlp->hidden).
            w.gemms.push_back({tokens, hidden, mlp});
            w.gemms.push_back({tokens, hidden, mlp});
            w.gemms.push_back({tokens, mlp, hidden});
        }
        // LM head on decoded positions only.
    };
    addPass(prefillTokens + decodeTokens);
    w.gemms.push_back({decodeTokens, hidden, vocab});
    // Prompt tokens + generated text enter via DRAM (negligible next to
    // weights, included for completeness).
    w.inputDramBytes = static_cast<double>(prefillTokens) * hidden;
    return w;
}

Workload
controller(const std::string& name, int imageRes, int convChannels,
           int decLayers, int decHidden, int decMlp, int seqLen,
           double paperParamsM, double paperGops)
{
    Workload w;
    w.name = name;
    w.weightsResident = true; // tens of MB: pinned in SRAM (Sec. 6.1)
    w.paperParamsM = paperParamsM;
    w.paperGops = paperGops;
    // Camera frame fetched from DRAM every step (RGB, 1 byte/channel).
    w.inputDramBytes = 3.0 * imageRes * imageRes;

    // Image tower: strided conv pyramid from 3 channels up to convChannels
    // (Table 8 "Img*" rows: 10 conv layers, 3-256 channels).
    int hw = imageRes;
    int cin = 3;
    int cout = convChannels / 8;
    for (int l = 0; l < 10 && hw >= 4; ++l) {
        const int stride = (l % 2 == 1) ? 2 : 1;
        w.gemms.push_back(convGemm(hw, cin, cout, 3, stride, 1));
        hw = ops::convOutSize(hw, 3, stride, 1);
        cin = cout;
        if (cout < convChannels)
            cout *= 2;
        if (cout > convChannels)
            cout = convChannels;
    }

    // Transformer decoder over seqLen tokens (visual context + prompt).
    for (int l = 0; l < decLayers; ++l) {
        for (int i = 0; i < 4; ++i)
            w.gemms.push_back({seqLen, decHidden, decHidden});
        w.gemms.push_back({seqLen, decHidden, decMlp});
        w.gemms.push_back({seqLen, decMlp, decHidden});
    }
    return w;
}

Workload
jarvisPlanner()
{
    return planner("JARVIS-1 planner", 32, 4096, 14336, 32000, 740, 251,
                   7869.0, 5344.0);
}

Workload
openVla()
{
    return planner("OpenVLA", 32, 4096, 11008, 32000, 617, 71, 6929.0, 4595.0);
}

Workload
roboFlamingo()
{
    return planner("RoboFlamingo", 24, 2048, 8192, 32000, 505, 61, 2552.0,
                   2411.0);
}

Workload
jarvisController()
{
    // STEVE-1-style: 128px frames, 256-channel tower, 4x(1024/4096) decoder
    // over a 128-frame context window (the memory that makes the Minecraft
    // controller work), Table 8 / Table 4: 61 M params, 102 GOps.
    return controller("JARVIS-1 controller", 128, 256, 4, 1024, 4096, 128,
                      61.0, 102.0);
}

Workload
rt1()
{
    return controller("RT-1", 224, 192, 8, 512, 2048, 48, 35.0, 78.0);
}

Workload
octo()
{
    return controller("Octo", 224, 160, 12, 384, 1536, 64, 27.0, 76.0);
}

Workload
navLlama()
{
    // Drone-scale mission planner: a ~1.2B LLaMA that fits an embedded
    // flight computer, with short mission prompts (430 prefill + 48
    // decoded plan tokens).
    return planner("NavLLaMA", 22, 2048, 5632, 32000, 430, 48, 1196.0,
                   1087.0);
}

Workload
pathRt()
{
    // RT-class navigation policy: 176px forward camera, 128-channel tower,
    // 6 x (384 / 1536) decoder over a 48-token context.
    return controller("PathRT", 176, 128, 6, 384, 1536, 48, 16.0, 34.0);
}

Workload
swiftPilot()
{
    // Racing-drone-scale policy: 160px frames, shallow tower and decoder.
    return controller("SwiftPilot", 160, 96, 4, 320, 1280, 32, 9.0, 17.0);
}

Workload
entropyPredictor()
{
    // Table 9: three k3 convs with ReLU+pool, prompt MLP 512->64, fusion
    // 128->128->1, on a 64x64 RGB frame.
    Workload w;
    w.name = "Entropy predictor";
    w.weightsResident = true;
    w.inputDramBytes = 3.0 * 64 * 64;
    w.paperParamsM = 0.055;
    w.paperGops = 0.043;
    w.gemms.push_back(convGemm(64, 3, 16, 3, 1, 1));  // + MaxPool2d
    w.gemms.push_back(convGemm(32, 16, 32, 3, 1, 1)); // + MaxPool2d
    w.gemms.push_back(convGemm(16, 32, 64, 3, 1, 1)); // + AvgPool
    w.gemms.push_back({1, 512, 64});                  // prompt MLP
    w.gemms.push_back({1, 128, 128});                 // fusion
    w.gemms.push_back({1, 128, 1});
    return w;
}

} // namespace workloads

} // namespace create
