#pragma once

/**
 * @file
 * Chip-level energy model and battery-life estimation (paper Sec. 6.8).
 *
 * Energy components:
 *  - computation: MACs x per-MAC energy, scaling quadratically with
 *    operating voltage (the lever all CREATE savings pull on);
 *  - SRAM / DRAM access energy from the ScaleSim traffic counters
 *    (memory stays in its own fixed voltage domain);
 *  - SRAM standby leakage over the inference latency.
 *
 * Constants are calibrated against the paper's post-layout numbers
 * (Fig. 12(c): 15.39 W PE array at 144 TOPS peak => 0.214 pJ/MAC at 0.9 V;
 * 0.84 W SRAM standby leakage) and typical 22 nm / HBM2 access energies,
 * such that computation lands at ~62-67% of planner chip energy and
 * ~77-79% of controller chip energy as reported in Fig. 18.
 */

#include "perf/scalesim.hpp"

namespace create {

/** Calibrated technology constants (see file header). */
struct EnergyConstants
{
    double nominalV = 0.90;
    double pjPerMacNominal = 0.214;   //!< PE-array energy per MAC at 0.9 V
    double pjPerSramByte = 1.45;      //!< on-chip buffer access
    double pjPerDramByte = 34.0;      //!< HBM2 (~4.25 pJ/bit)
    double sramLeakageW = 0.84;       //!< Fig. 12(c) standby leakage
    double ldoPowerW = 0.03;          //!< Fig. 12(c)
    double adUnitPowerW = 0.02;       //!< Fig. 12(c)
};

/** Chip-level per-invocation energy breakdown. */
struct ChipEnergy
{
    double computeJ = 0.0;
    double sramJ = 0.0;
    double dramJ = 0.0;
    double leakageJ = 0.0;

    double totalJ() const { return computeJ + sramJ + dramJ + leakageJ; }
    double computeShare() const
    {
        const double t = totalJ();
        return t > 0.0 ? computeJ / t : 0.0;
    }
};

/** Turns perf counters + effective voltage into joules. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyConstants k = {}) : k_(k) {}

    /** Compute-only energy for a MAC count at a (possibly varying) voltage. */
    double computeJ(double macs, double effectiveVoltage) const;

    /** Full chip-level breakdown for one invocation. */
    ChipEnergy invocation(const PerfCounters& c, double effectiveVoltage,
                          double latencySec) const;

    const EnergyConstants& constants() const { return k_; }

  private:
    EnergyConstants k_;
};

/**
 * Battery-life extension from chip-level energy savings.
 *
 * With computation a fraction `computeShareOfRobot` of total robot power
 * (paper cites ~50%+ for quadrupeds / LLM-driven arms), saving a fraction
 * `chipSavings` of it extends battery life by 1/(1 - s*c) - 1.
 */
double batteryLifeExtension(double chipSavings, double computeShareOfRobot);

} // namespace create
