#pragma once

/**
 * @file
 * Cross-platform model stand-ins for the Fig. 17 generality evaluation
 * (DESIGN.md substitution #4).
 *
 * Planners: OpenVLA and RoboFlamingo are LLaMA-style planners (same
 * PlannerModel class, different depths / outlier severities reflecting
 * their 7B vs 3B scales) that decompose manipulation tasks into motion
 * subtasks on ManipWorld (LIBERO / CALVIN tasks).
 *
 * Controllers: Octo and RT-1 are post-norm Transformer policies (same
 * ControllerModel class) behavior-cloned on ManipWorld (OXE tasks), each
 * with a matching entropy predictor for autonomy-adaptive voltage scaling.
 *
 * Paper-scale energy for these platforms uses perf/workloads descriptors
 * (OpenVLA 4595 GOps, RoboFlamingo 2411 GOps, Octo 76 GOps, RT-1 78 GOps).
 */

#include "env/manipworld.hpp"
#include "env/navworld.hpp"
#include "models/controller.hpp"
#include "models/entropy_predictor.hpp"
#include "models/model_zoo.hpp"
#include "models/planner.hpp"

namespace create::platforms {

/** END token of the manipulation plan vocabulary. */
int manipEndToken();

/** Token <-> subtask conversions (tokens are ManipSubtask indices). */
std::vector<ManipSubtask> decodeManipPlan(const std::vector<int>& tokens);

/** Load-or-train a manipulation planner ("openvla" or "roboflamingo"). */
std::unique_ptr<PlannerModel> manipPlanner(const std::string& platform,
                                           bool verbose = true);

/** Load-or-train a manipulation controller ("octo" or "rt1"). */
std::unique_ptr<ControllerModel> manipController(const std::string& platform,
                                                 bool verbose = true);

/** Load-or-train the entropy predictor paired with a manip controller. */
std::unique_ptr<EntropyPredictor>
manipPredictor(const std::string& platform, ControllerModel& controller,
               bool verbose = true);

/** Re-run quantization/AD calibration (after load or rotation). */
void calibrateManipPlanner(PlannerModel& m);
void calibrateManipController(ControllerModel& m);

/** Predictor prompt vector: subtask one-hot + the observation summary. */
std::vector<float> manipPrompt(ManipSubtask st, const ManipObs& obs,
                               int promptDim);

/** Predictor config used for manip platforms. */
PredictorConfig manipPredictorConfig();

// --- navigation platform family (NavWorld; drone-scale stand-ins) ------

/** END token of the navigation plan vocabulary. */
int navEndToken();

/** Token <-> subtask conversions (tokens are NavSubtask indices). */
std::vector<NavSubtask> decodeNavPlan(const std::vector<int>& tokens);

/** Load-or-train the navigation mission planner ("navllama"). */
std::unique_ptr<PlannerModel> navPlanner(const std::string& platform,
                                         bool verbose = true);

/** Load-or-train a navigation controller ("pathrt" or "swiftpilot"). */
std::unique_ptr<ControllerModel> navController(const std::string& platform,
                                               bool verbose = true);

/** Load-or-train the entropy predictor paired with a nav controller. */
std::unique_ptr<EntropyPredictor>
navPredictor(const std::string& platform, ControllerModel& controller,
             bool verbose = true);

/** Re-run quantization/AD calibration (after load or rotation). */
void calibrateNavPlanner(PlannerModel& m);
void calibrateNavController(ControllerModel& m);

/** Predictor prompt vector: subtask one-hot + the observation summary. */
std::vector<float> navPrompt(NavSubtask st, const NavObs& obs,
                             int promptDim);

/** Predictor config used for nav platforms. */
PredictorConfig navPredictorConfig();

} // namespace create::platforms
