#include "models/planner.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace create {

PlannerModel::PlannerModel(PlannerConfig cfg, Rng& rng)
    : Module(cfg.name), cfg_(cfg),
      embed_(cfg.name + ".embed",
             cfg.numTasks + cfg.maxDone + 1 + cfg.maxPlanLen, cfg.dim, rng),
      finalNorm_(cfg.name + ".final_norm", cfg.dim),
      head_(cfg.name + ".head", cfg.dim, cfg.planVocab, /*withBias=*/true, rng)
{
    if ((cfg.dim & (cfg.dim - 1)) != 0)
        throw std::invalid_argument("PlannerModel: dim must be a power of 2");
    addChild(&embed_);
    for (int l = 0; l < cfg.layers; ++l) {
        blocks_.push_back(std::make_unique<nn::LlamaBlock>(
            cfg.name + ".blk" + std::to_string(l), cfg.dim, cfg.mlpDim,
            cfg.heads, rng));
        addChild(blocks_.back().get());
    }
    addChild(&finalNorm_);
    addChild(&head_);

    // Plant systematic outliers: a handful of residual channels written
    // with a large fixed scale by O and Down in every block (the channels
    // are the same across layers, as observed in real LLMs).
    if (cfg.outlierChannels > 0 && cfg.outlierScale != 1.0f) {
        Tensor s = Tensor::full({cfg.dim}, 1.0f);
        for (int i = 0; i < cfg.outlierChannels; ++i) {
            const int ch = (7 + i * 13) % cfg.dim;
            s[ch] = cfg.outlierScale;
        }
        for (auto& b : blocks_)
            b->plantOutliers(s);
    }
}

std::vector<int>
PlannerModel::inputIds(int taskId, int done) const
{
    if (taskId < 0 || taskId >= cfg_.numTasks)
        throw std::invalid_argument("PlannerModel: bad task id");
    if (done < 0)
        done = 0;
    if (done > cfg_.maxDone)
        done = cfg_.maxDone;
    std::vector<int> ids;
    ids.reserve(static_cast<std::size_t>(2 + cfg_.maxPlanLen));
    ids.push_back(taskId);
    ids.push_back(cfg_.numTasks + done);
    for (int i = 0; i < cfg_.maxPlanLen; ++i)
        ids.push_back(cfg_.numTasks + cfg_.maxDone + 1 + i);
    return ids;
}

nn::Var
PlannerModel::forward(int taskId, int done)
{
    nn::Var x = embed_.forward(inputIds(taskId, done));
    for (auto& b : blocks_)
        x = b->forward(x);
    x = finalNorm_.forward(x);
    // Keep only the position-query rows.
    x = nn::sliceRows(x, 2, 2 + cfg_.maxPlanLen);
    return head_.forward(x);
}

Tensor
PlannerModel::inferLogits(int taskId, int done, ComputeContext& ctx)
{
    Tensor x = embed_.infer(inputIds(taskId, done));
    for (auto& b : blocks_)
        x = b->infer(x, ctx);
    x = finalNorm_.infer(x);
    // Keep only the position-query rows.
    const Tensor q = ops::sliceRows(x, 2, 2 + cfg_.maxPlanLen);
    return head_.infer(q, ctx);
}

std::vector<int>
PlannerModel::inferPlan(int taskId, int done, ComputeContext& ctx)
{
    const Tensor logits = inferLogits(taskId, done, ctx);
    std::vector<int> plan;
    for (int i = 0; i < cfg_.maxPlanLen; ++i) {
        int best = 0;
        float bestV = logits.at(i, 0);
        for (int v = 1; v < cfg_.planVocab; ++v) {
            if (logits.at(i, v) > bestV) {
                bestV = logits.at(i, v);
                best = v;
            }
        }
        if (best == endToken())
            break;
        plan.push_back(best);
    }
    return plan;
}

void
PlannerModel::invalidateCalibration()
{
    head_.invalidateQuant();
    for (auto& b : blocks_) {
        b->attn().q().invalidateQuant();
        b->attn().k().invalidateQuant();
        b->attn().v().invalidateQuant();
        b->attn().o().invalidateQuant();
        b->gate().invalidateQuant();
        b->up().invalidateQuant();
        b->down().invalidateQuant();
    }
}

} // namespace create
