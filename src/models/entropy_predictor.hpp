#pragma once

/**
 * @file
 * Entropy predictor (paper Sec. 5.3, Fig. 11(a), Table 9): a small CNN over
 * the observed image fused with a prompt MLP, trained with MSE + AdamW to
 * estimate the controller's error-free action-logit entropy *before* the
 * controller runs. Its prediction drives the LDO voltage choice.
 *
 * Scaled-down vs the paper (substitution note): 24x24 RGB frames instead
 * of 64x64, stride-1 convs with pooling per Table 9's layer list. The
 * predictor runs at nominal voltage so its output is error-free.
 */

#include <memory>

#include "nn/layers.hpp"

namespace create {

/** Predictor hyperparameters. */
struct PredictorConfig
{
    std::string name = "entropy_predictor";
    int imgRes = 24;
    int viewRadius = 3; //!< zoomed egocentric window (cells) for MineWorld
    int promptDim = 20; //!< subtask one-hot (16) + progress scalars
    int fuseDim = 64;
};

/** CNN + MLP entropy estimator. */
class EntropyPredictor : public nn::Module
{
  public:
    EntropyPredictor(PredictorConfig cfg, Rng& rng);

    /** Training forward on a batch: images (B,3,R,R), prompts (B,P) -> (B,1). */
    nn::Var forward(const nn::Var& images, const nn::Var& prompts);

    /** Deployment path on one frame; returns predicted entropy (nats). */
    float infer(const Tensor& image, const std::vector<float>& prompt,
                ComputeContext& ctx);

    const PredictorConfig& config() const { return cfg_; }

    /** Final fusion layer (runs last; used to probe frozen quant state). */
    nn::Linear& fuse2() { return fuse2_; }

  private:
    PredictorConfig cfg_;
    nn::Conv2d conv1_, conv2_, conv3_;
    nn::Linear promptFc_, fuse1_, fuse2_;
};

/**
 * Prompt-vector builder shared by training and deployment.
 *
 * The prompt mirrors what the paper feeds the predictor: the subtask
 * prompt embedding plus the controller's own observation summary (our
 * controller consumes engineered features rather than raw pixels, so the
 * predictor sees the same compact summary -- the consistent choice for
 * this substitution). Layout: subtask one-hot, then the target-geometry
 * slice of the spatial features, then the leading state features.
 */
std::vector<float> predictorPrompt(int subtaskType, int numSubtaskTypes,
                                   const std::vector<float>& spatial,
                                   const std::vector<float>& state,
                                   int promptDim);

} // namespace create
