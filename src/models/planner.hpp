#pragma once

/**
 * @file
 * The LLM-style planner (Fig. 3 left): a LLaMA-architecture transformer
 * (RMSNorm, SiLU gate/up/down MLP, Q/K/V/O attention) that decomposes a
 * high-level task into a subtask-token sequence.
 *
 * Formulation: non-causal "parallel decoding" seq2seq. The input sequence
 * is [TASK(t), DONE(k), P_0 ... P_{L-1}] where TASK encodes the task id,
 * DONE the number of already-completed subtasks (re-planning support,
 * Sec. 2.1: the planner is re-invoked when a subtask exceeds its budget),
 * and P_i are position query tokens. The logits at P_i give the i-th
 * remaining subtask token; generation stops at the END token.
 *
 * Systematic activation outliers -- the phenomenon that makes real LLM
 * planners fragile (Sec. 4.1, Fig. 5(i)) -- are planted as fixed per-channel
 * scales on the residual-writing projections (O and Down). They are
 * structural (present during training), so the trained function relies on
 * them and INT8 deployment sees genuinely outlier-laden GEMM outputs.
 */

#include <memory>

#include "nn/transformer.hpp"

namespace create {

/** Planner hyperparameters. */
struct PlannerConfig
{
    std::string name = "planner";
    int dim = 64;      //!< must be a power of two (Hadamard rotation)
    int mlpDim = 192;
    int layers = 2;
    int heads = 4;
    int numTasks = 9;      //!< input task vocabulary
    int maxDone = 16;      //!< progress conditioning range [0, maxDone]
    int maxPlanLen = 12;   //!< output positions
    int planVocab = 26;    //!< subtask tokens + END (END = planVocab-1)
    float outlierScale = 12.0f; //!< planted outlier magnitude
    int outlierChannels = 4;    //!< number of outlier channels
};

/** LLaMA-style subtask planner. */
class PlannerModel : public nn::Module
{
  public:
    PlannerModel(PlannerConfig cfg, Rng& rng);

    /** Training forward: logits (maxPlanLen x planVocab). */
    nn::Var forward(int taskId, int done);

    /** Deployment path: greedy plan tokens (stops at END, excluded). */
    std::vector<int> inferPlan(int taskId, int done, ComputeContext& ctx);

    /** Raw deployment logits (maxPlanLen x planVocab), for studies. */
    Tensor inferLogits(int taskId, int done, ComputeContext& ctx);

    int endToken() const { return cfg_.planVocab - 1; }
    const PlannerConfig& config() const { return cfg_; }

    nn::Embedding& embeddingLayer() { return embed_; }
    nn::LlamaBlock& block(int i) { return *blocks_[static_cast<std::size_t>(i)]; }
    nn::RMSNorm& finalNorm() { return finalNorm_; }
    nn::Linear& head() { return head_; }

    /** Invalidate all quantization/AD calibration (weights changed). */
    void invalidateCalibration();

  private:
    std::vector<int> inputIds(int taskId, int done) const;

    PlannerConfig cfg_;
    nn::Embedding embed_;
    std::vector<std::unique_ptr<nn::LlamaBlock>> blocks_;
    nn::RMSNorm finalNorm_;
    nn::Linear head_;
};

} // namespace create
