#pragma once

/**
 * @file
 * ModelZoo: builds, trains (once, cached on disk), and calibrates the
 * behavioural models of the JARVIS-1 stand-in stack:
 *
 *  - the LLaMA-style planner, supervised on the (task, progress) ->
 *    remaining-subtask-sequence corpus derived from the gold plans,
 *  - the post-norm Transformer controller, behavior-cloned from the
 *    privileged MineExpert,
 *  - the entropy predictor, regressed (MSE + AdamW, Sec. 6.1) onto
 *    error-free controller entropies over rendered frames.
 *
 * All training is deterministic (fixed seeds); weights are cached in
 * $CREATE_ASSETS_DIR (default ~/.cache/create_repro) so every bench and
 * test reconstructs identical models. Quantization scales and AD bounds
 * are re-calibrated after every load or weight rotation (they are not
 * serialized by design: calibration is part of deployment).
 */

#include <array>
#include <memory>

#include "env/mineworld.hpp"
#include "models/controller.hpp"
#include "models/entropy_predictor.hpp"
#include "models/planner.hpp"

namespace create {

/** Token vocabulary for Minecraft plans: distinct (type, count) pairs. */
class PlanVocab
{
  public:
    /** Build from all gold plans. */
    static const PlanVocab& mine();

    int tokenOf(const Subtask& s) const;
    int endToken() const { return static_cast<int>(entries_.size()); }
    int size() const { return static_cast<int>(entries_.size()) + 1; }

    /** Decode tokens to subtasks (tokens >= endToken are dropped). */
    std::vector<Subtask> decode(const std::vector<int>& tokens) const;

    /** Encode a plan (throws if a subtask is missing from the vocab). */
    std::vector<int> encode(const std::vector<Subtask>& plan) const;

  private:
    std::vector<Subtask> entries_;
};

/** One behavior-cloning sample. */
struct BcSample
{
    int subtask = 0;
    std::vector<float> spatial;
    std::vector<float> state;
    int action = 0;
};

/** Sample an action index from softmax(logits). */
int sampleAction(const std::vector<float>& logits, Rng& rng);

/** Trained model bundle for the Minecraft stack. */
struct MineModels
{
    std::unique_ptr<PlannerModel> planner;
    std::unique_ptr<ControllerModel> controller;
    std::unique_ptr<EntropyPredictor> predictor;
};

/** Build/train/calibrate entry points. */
class ModelZoo
{
  public:
    /** Weight-cache directory ($CREATE_ASSETS_DIR or ~/.cache/create_repro). */
    static std::string assetsDir();

    static PlannerConfig minePlannerConfig();
    static ControllerConfig mineControllerConfig();
    static PredictorConfig minePredictorConfig();

    /** Load-or-train; models come back calibrated (scales + AD bounds). */
    static std::unique_ptr<PlannerModel> minePlanner(bool verbose = true);
    static std::unique_ptr<ControllerModel> mineController(bool verbose = true);
    static std::unique_ptr<EntropyPredictor>
    minePredictor(ControllerModel& controller, bool verbose = true);

    /** The full Minecraft stack. */
    static MineModels mineModels(bool verbose = true);

    // --- calibration (clean passes recording absmax observers) ----------
    static void calibrateMinePlanner(PlannerModel& m);
    static void calibrateMineController(ControllerModel& m);
    static void calibrateMinePredictor(EntropyPredictor& p,
                                       ControllerModel& controller);

    // --- generic trainers (reused by the cross-platform stand-ins) -------
    /** Supervised plan corpus: inputs are (taskId, done); targets are
     *  token sequences padded with END to maxPlanLen. */
    static void trainPlannerOnCorpus(
        PlannerModel& m, const std::vector<std::pair<int, int>>& inputs,
        const std::vector<std::vector<int>>& targets, int epochs, double lr,
        bool verbose);

    /** Behavior cloning on a fixed sample set. */
    static void trainControllerBc(ControllerModel& m,
                                  std::vector<BcSample> data, int epochs,
                                  double lr, bool verbose);

    /** MSE regression of the predictor onto recorded entropy frames. */
    struct EntropyFrame
    {
        Tensor image;
        std::vector<float> prompt;
        float entropy = 0.0f;
    };
    static double trainPredictor(EntropyPredictor& p,
                                 const std::vector<EntropyFrame>& frames,
                                 int epochs, double lr, bool verbose);

    // --- dataset builders (exposed for tests/benches) ---------------------
    static std::vector<BcSample> mineBcDataset(int seedsPerTask,
                                               std::uint64_t seed);
    static std::vector<EntropyFrame>
    minePredictorFrames(ControllerModel& controller, int seedsPerTask,
                        std::uint64_t seed);
};

} // namespace create
