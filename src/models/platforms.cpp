#include "models/platforms.hpp"

#include <cstdio>
#include <stdexcept>

#include "env/manip_expert.hpp"
#include "env/nav_expert.hpp"
#include "tensor/ops.hpp"

namespace create::platforms {

namespace {

PlannerConfig
manipPlannerConfig(const std::string& platform)
{
    PlannerConfig cfg;
    cfg.numTasks = kNumManipTasks;
    cfg.maxDone = 6;
    cfg.maxPlanLen = 6;
    cfg.planVocab = kNumManipSubtasks + 1;
    if (platform == "openvla") {
        cfg.name = "openvla";
        cfg.layers = 3;          // 7B-class stand-in: deeper
        cfg.outlierScale = 12.0f;
    } else if (platform == "roboflamingo") {
        cfg.name = "roboflamingo";
        cfg.layers = 2;          // 3B-class stand-in
        cfg.outlierScale = 9.0f;
    } else {
        throw std::invalid_argument("unknown planner platform: " + platform);
    }
    return cfg;
}

ControllerConfig
manipControllerConfig(const std::string& platform)
{
    ControllerConfig cfg;
    cfg.numSubtasks = kNumManipSubtasks;
    cfg.spatialDim = ManipObs::spatialDim();
    cfg.stateDim = ManipObs::stateDim();
    cfg.numActions = kNumManipActions;
    if (platform == "octo") {
        cfg.name = "octo";
        cfg.layers = 3;
    } else if (platform == "rt1") {
        cfg.name = "rt1";
        cfg.layers = 2;
    } else {
        throw std::invalid_argument("unknown controller platform: " +
                                    platform);
    }
    return cfg;
}

bool
tryLoad(nn::Module& m, const std::string& path)
{
    BlobArchive ar;
    return ar.load(path) && m.load(ar);
}

void
saveModel(nn::Module& m, const std::string& path)
{
    BlobArchive ar;
    m.save(ar);
    ar.save(path);
}

std::vector<BcSample>
manipBcDataset(int seedsPerTask, std::uint64_t seed)
{
    std::vector<BcSample> data;
    Rng rng(seed);
    for (int t = 0; t < kNumManipTasks; ++t) {
        const auto task = static_cast<ManipTask>(t);
        for (int s = 0; s < seedsPerTask; ++s) {
            ManipWorld world(task,
                             seed * 37 + static_cast<std::uint64_t>(t * 11 + s));
            for (const auto st : manipGoldPlan(task)) {
                world.setActiveSubtask(st);
                int steps = 0;
                while (!world.subtaskComplete() && steps < 60) {
                    const ManipObs obs = world.observe();
                    const ManipAction a = ManipExpert::act(world, rng);
                    BcSample sample;
                    sample.subtask = static_cast<int>(st);
                    sample.spatial = obs.spatial;
                    sample.state = obs.state;
                    sample.action = static_cast<int>(a);
                    data.push_back(sample);
                    const bool critical =
                        a == ManipAction::Grasp || a == ManipAction::Release ||
                        a == ManipAction::Press || a == ManipAction::Pull;
                    if (critical) {
                        for (int r = 0; r < 10; ++r)
                            data.push_back(sample);
                    }
                    world.step(a);
                    ++steps;
                }
            }
        }
    }
    return data;
}

PlannerConfig
navPlannerConfig(const std::string& platform)
{
    if (platform != "navllama")
        throw std::invalid_argument("unknown nav planner platform: " +
                                    platform);
    PlannerConfig cfg;
    cfg.name = "navllama";
    cfg.numTasks = kNumNavTasks;
    cfg.maxDone = 5;
    cfg.maxPlanLen = 5;
    cfg.planVocab = kNumNavSubtasks + 1;
    cfg.layers = 2; // ~1B-class drone planner stand-in
    cfg.outlierScale = 10.0f;
    return cfg;
}

ControllerConfig
navControllerConfig(const std::string& platform)
{
    ControllerConfig cfg;
    cfg.numSubtasks = kNumNavSubtasks;
    cfg.spatialDim = NavObs::spatialDim();
    cfg.stateDim = NavObs::stateDim();
    cfg.numActions = kNumNavActions;
    if (platform == "pathrt") {
        cfg.name = "pathrt";
        cfg.layers = 3;
    } else if (platform == "swiftpilot") {
        cfg.name = "swiftpilot";
        cfg.layers = 2;
    } else {
        throw std::invalid_argument("unknown nav controller platform: " +
                                    platform);
    }
    return cfg;
}

std::vector<BcSample>
navBcDataset(int seedsPerTask, std::uint64_t seed)
{
    std::vector<BcSample> data;
    for (int t = 0; t < kNumNavTasks; ++t) {
        const auto task = static_cast<NavTask>(t);
        for (int s = 0; s < seedsPerTask; ++s) {
            NavWorld world(task,
                           seed * 41 + static_cast<std::uint64_t>(t * 13 + s));
            int steps = 0;
            for (const auto st : navGoldPlan(task)) {
                world.setActiveSubtask(st);
                while (!world.subtaskComplete() &&
                       steps < NavWorld::kStepCap) {
                    const NavObs obs = world.observe();
                    const NavAction a = NavExpert::act(world);
                    BcSample sample;
                    sample.subtask = static_cast<int>(st);
                    sample.spatial = obs.spatial;
                    sample.state = obs.state;
                    sample.action = static_cast<int>(a);
                    data.push_back(sample);
                    // Critical-chain and altitude actions are rare in the
                    // trajectories but decide the missions; oversample them.
                    const bool critical =
                        a == NavAction::Hover || a == NavAction::Ascend ||
                        a == NavAction::Descend ||
                        (st == NavSubtask::ScanLine && a == NavAction::MoveE);
                    if (critical) {
                        for (int r = 0; r < 8; ++r)
                            data.push_back(sample);
                    }
                    world.step(a);
                    ++steps;
                }
            }
        }
    }
    return data;
}

} // namespace

int
manipEndToken()
{
    return kNumManipSubtasks;
}

std::vector<ManipSubtask>
decodeManipPlan(const std::vector<int>& tokens)
{
    std::vector<ManipSubtask> plan;
    for (int t : tokens)
        if (t >= 0 && t < kNumManipSubtasks)
            plan.push_back(static_cast<ManipSubtask>(t));
    return plan;
}

PredictorConfig
manipPredictorConfig()
{
    PredictorConfig cfg;
    cfg.imgRes = 24;
    cfg.promptDim = kNumManipSubtasks + ManipObs::spatialDim();
    return cfg;
}

std::vector<float>
manipPrompt(ManipSubtask st, const ManipObs& obs, int promptDim)
{
    std::vector<float> p(static_cast<std::size_t>(promptDim), 0.0f);
    p[static_cast<std::size_t>(st)] = 1.0f;
    std::size_t j = static_cast<std::size_t>(kNumManipSubtasks);
    for (std::size_t i = 0; i < obs.spatial.size() && j < p.size(); ++i)
        p[j++] = obs.spatial[i];
    return p;
}

void
calibrateManipPlanner(PlannerModel& m)
{
    ComputeContext ctx(0x71);
    ctx.calibrating = true;
    for (int t = 0; t < kNumManipTasks; ++t) {
        const int planLen = static_cast<int>(
            manipGoldPlan(static_cast<ManipTask>(t)).size());
        for (int done = 0; done <= planLen; ++done)
            m.inferLogits(t, done, ctx);
    }
}

void
calibrateManipController(ControllerModel& m)
{
    ComputeContext ctx(0x72);
    ctx.calibrating = true;
    Rng rng(0x72);
    for (int t = 0; t < kNumManipTasks; t += 3) {
        const auto task = static_cast<ManipTask>(t);
        ManipWorld world(task, 5300 + static_cast<std::uint64_t>(t));
        for (const auto st : manipGoldPlan(task)) {
            world.setActiveSubtask(st);
            int steps = 0;
            while (!world.subtaskComplete() && steps < 60) {
                const ManipObs obs = world.observe();
                m.inferLogits(static_cast<int>(st), obs.spatial, obs.state,
                              ctx);
                world.step(ManipExpert::act(world, rng));
                ++steps;
            }
        }
    }
}

std::unique_ptr<PlannerModel>
manipPlanner(const std::string& platform, bool verbose)
{
    Rng rng(platform == "openvla" ? 0xA111 : 0xA222);
    auto m = std::make_unique<PlannerModel>(manipPlannerConfig(platform), rng);
    const std::string path =
        ModelZoo::assetsDir() + "/" + platform + "_planner_v2.bin";
    if (!tryLoad(*m, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training %s planner stand-in...\n",
                         platform.c_str());
        std::vector<std::pair<int, int>> inputs;
        std::vector<std::vector<int>> targets;
        for (int t = 0; t < kNumManipTasks; ++t) {
            const auto plan = manipGoldPlan(static_cast<ManipTask>(t));
            for (int done = 0; done <= static_cast<int>(plan.size());
                 ++done) {
                std::vector<int> tgt;
                for (std::size_t i = static_cast<std::size_t>(done);
                     i < plan.size(); ++i)
                    tgt.push_back(static_cast<int>(plan[i]));
                tgt.resize(static_cast<std::size_t>(m->config().maxPlanLen),
                           manipEndToken());
                inputs.push_back({t, done});
                targets.push_back(std::move(tgt));
            }
        }
        ModelZoo::trainPlannerOnCorpus(*m, inputs, targets, 150, 2.5e-3,
                                       verbose);
        saveModel(*m, path);
    }
    calibrateManipPlanner(*m);
    return m;
}

std::unique_ptr<ControllerModel>
manipController(const std::string& platform, bool verbose)
{
    Rng rng(platform == "octo" ? 0xB111 : 0xB222);
    auto m =
        std::make_unique<ControllerModel>(manipControllerConfig(platform), rng);
    const std::string path =
        ModelZoo::assetsDir() + "/" + platform + "_controller_v2.bin";
    if (!tryLoad(*m, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training %s controller stand-in "
                                 "(behavior cloning)...\n",
                         platform.c_str());
        auto data = manipBcDataset(6, platform == "octo" ? 0x7777 : 0x8888);
        if (verbose)
            std::fprintf(stderr, "[zoo] BC dataset: %zu samples\n",
                         data.size());
        ModelZoo::trainControllerBc(*m, std::move(data), 3, 1.5e-3, verbose);
        saveModel(*m, path);
    }
    calibrateManipController(*m);
    return m;
}

std::unique_ptr<EntropyPredictor>
manipPredictor(const std::string& platform, ControllerModel& controller,
               bool verbose)
{
    Rng rng(platform == "octo" ? 0xC111 : 0xC222);
    auto p = std::make_unique<EntropyPredictor>(manipPredictorConfig(), rng);
    const std::string path =
        ModelZoo::assetsDir() + "/" + platform + "_predictor_v2.bin";
    if (!tryLoad(*p, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training %s entropy predictor...\n",
                         platform.c_str());
        // Record clean-execution entropy frames with this controller.
        std::vector<ModelZoo::EntropyFrame> frames;
        Rng sampler(0x4242);
        ComputeContext ctx(0x4242);
        ctx.domain = Domain::Controller;
        const auto pcfg = manipPredictorConfig();
        for (int t = 0; t < kNumManipTasks; ++t) {
            const auto task = static_cast<ManipTask>(t);
            for (int s = 0; s < 4; ++s) {
                ManipWorld world(task, 900 + static_cast<std::uint64_t>(
                                           t * 13 + s));
                for (const auto st : manipGoldPlan(task)) {
                    world.setActiveSubtask(st);
                    int steps = 0;
                    while (!world.subtaskComplete() && steps < 60) {
                        const ManipObs obs = world.observe();
                        const auto logits = controller.inferLogits(
                            static_cast<int>(st), obs.spatial, obs.state,
                            ctx);
                        ModelZoo::EntropyFrame f;
                        f.image = world.renderImage(pcfg.imgRes);
                        f.prompt = manipPrompt(st, obs, pcfg.promptDim);
                        f.entropy = static_cast<float>(
                            ops::entropy(ops::softmax(logits)));
                        frames.push_back(std::move(f));
                        world.step(static_cast<ManipAction>(
                            sampleAction(logits, sampler)));
                        ++steps;
                    }
                }
            }
        }
        if (verbose)
            std::fprintf(stderr, "[zoo] predictor dataset: %zu frames\n",
                         frames.size());
        ModelZoo::trainPredictor(*p, frames, 5, 8e-4, verbose);
        saveModel(*p, path);
    }
    // Calibrate on a few frames.
    {
        ComputeContext pctx(0x91);
        pctx.calibrating = true;
        ComputeContext cctx(0x92);
        Rng rng2(0x93);
        ManipWorld world(ManipTask::Wine, 31337);
        const auto pcfg = p->config();
        for (const auto st : manipGoldPlan(ManipTask::Wine)) {
            world.setActiveSubtask(st);
            int steps = 0;
            while (!world.subtaskComplete() && steps < 60) {
                const ManipObs obs = world.observe();
                p->infer(world.renderImage(pcfg.imgRes),
                         manipPrompt(st, obs, pcfg.promptDim), pctx);
                const auto logits = controller.inferLogits(
                    static_cast<int>(st), obs.spatial, obs.state, cctx);
                world.step(static_cast<ManipAction>(
                    sampleAction(logits, rng2)));
                ++steps;
            }
        }
    }
    return p;
}

// --- navigation platform family ----------------------------------------

int
navEndToken()
{
    return kNumNavSubtasks;
}

std::vector<NavSubtask>
decodeNavPlan(const std::vector<int>& tokens)
{
    std::vector<NavSubtask> plan;
    for (int t : tokens)
        if (t >= 0 && t < kNumNavSubtasks)
            plan.push_back(static_cast<NavSubtask>(t));
    return plan;
}

PredictorConfig
navPredictorConfig()
{
    PredictorConfig cfg;
    cfg.imgRes = 24;
    cfg.promptDim = kNumNavSubtasks + NavObs::spatialDim();
    return cfg;
}

std::vector<float>
navPrompt(NavSubtask st, const NavObs& obs, int promptDim)
{
    std::vector<float> p(static_cast<std::size_t>(promptDim), 0.0f);
    p[static_cast<std::size_t>(st)] = 1.0f;
    std::size_t j = static_cast<std::size_t>(kNumNavSubtasks);
    for (std::size_t i = 0; i < obs.spatial.size() && j < p.size(); ++i)
        p[j++] = obs.spatial[i];
    return p;
}

void
calibrateNavPlanner(PlannerModel& m)
{
    ComputeContext ctx(0x73);
    ctx.calibrating = true;
    for (int t = 0; t < kNumNavTasks; ++t) {
        const int planLen = static_cast<int>(
            navGoldPlan(static_cast<NavTask>(t)).size());
        for (int done = 0; done <= planLen; ++done)
            m.inferLogits(t, done, ctx);
    }
}

void
calibrateNavController(ControllerModel& m)
{
    ComputeContext ctx(0x74);
    ctx.calibrating = true;
    for (int t = 0; t < kNumNavTasks; t += 3) {
        const auto task = static_cast<NavTask>(t);
        NavWorld world(task, 6100 + static_cast<std::uint64_t>(t));
        int steps = 0;
        for (const auto st : navGoldPlan(task)) {
            world.setActiveSubtask(st);
            while (!world.subtaskComplete() && steps < NavWorld::kStepCap) {
                const NavObs obs = world.observe();
                m.inferLogits(static_cast<int>(st), obs.spatial, obs.state,
                              ctx);
                world.step(NavExpert::act(world));
                ++steps;
            }
        }
    }
}

std::unique_ptr<PlannerModel>
navPlanner(const std::string& platform, bool verbose)
{
    Rng rng(0xA333);
    auto m = std::make_unique<PlannerModel>(navPlannerConfig(platform), rng);
    const std::string path =
        ModelZoo::assetsDir() + "/" + platform + "_planner_v2.bin";
    if (!tryLoad(*m, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training %s planner stand-in...\n",
                         platform.c_str());
        std::vector<std::pair<int, int>> inputs;
        std::vector<std::vector<int>> targets;
        for (int t = 0; t < kNumNavTasks; ++t) {
            const auto plan = navGoldPlan(static_cast<NavTask>(t));
            for (int done = 0; done <= static_cast<int>(plan.size());
                 ++done) {
                std::vector<int> tgt;
                for (std::size_t i = static_cast<std::size_t>(done);
                     i < plan.size(); ++i)
                    tgt.push_back(static_cast<int>(plan[i]));
                tgt.resize(static_cast<std::size_t>(m->config().maxPlanLen),
                           navEndToken());
                inputs.push_back({t, done});
                targets.push_back(std::move(tgt));
            }
        }
        ModelZoo::trainPlannerOnCorpus(*m, inputs, targets, 150, 2.5e-3,
                                       verbose);
        saveModel(*m, path);
    }
    calibrateNavPlanner(*m);
    return m;
}

std::unique_ptr<ControllerModel>
navController(const std::string& platform, bool verbose)
{
    Rng rng(platform == "pathrt" ? 0xB333 : 0xB444);
    auto m =
        std::make_unique<ControllerModel>(navControllerConfig(platform), rng);
    const std::string path =
        ModelZoo::assetsDir() + "/" + platform + "_controller_v2.bin";
    if (!tryLoad(*m, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training %s controller stand-in "
                                 "(behavior cloning)...\n",
                         platform.c_str());
        auto data = navBcDataset(6, platform == "pathrt" ? 0x9999 : 0xAAAA);
        if (verbose)
            std::fprintf(stderr, "[zoo] BC dataset: %zu samples\n",
                         data.size());
        ModelZoo::trainControllerBc(*m, std::move(data), 3, 1.5e-3, verbose);
        saveModel(*m, path);
    }
    calibrateNavController(*m);
    return m;
}

std::unique_ptr<EntropyPredictor>
navPredictor(const std::string& platform, ControllerModel& controller,
             bool verbose)
{
    Rng rng(platform == "pathrt" ? 0xC333 : 0xC444);
    auto p = std::make_unique<EntropyPredictor>(navPredictorConfig(), rng);
    const std::string path =
        ModelZoo::assetsDir() + "/" + platform + "_predictor_v2.bin";
    if (!tryLoad(*p, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training %s entropy predictor...\n",
                         platform.c_str());
        // Record clean-execution entropy frames with this controller.
        std::vector<ModelZoo::EntropyFrame> frames;
        Rng sampler(0x5151);
        ComputeContext ctx(0x5151);
        ctx.domain = Domain::Controller;
        const auto pcfg = navPredictorConfig();
        for (int t = 0; t < kNumNavTasks; ++t) {
            const auto task = static_cast<NavTask>(t);
            for (int s = 0; s < 4; ++s) {
                NavWorld world(task, 1700 + static_cast<std::uint64_t>(
                                          t * 17 + s));
                int steps = 0;
                for (const auto st : navGoldPlan(task)) {
                    world.setActiveSubtask(st);
                    while (!world.subtaskComplete() &&
                           steps < NavWorld::kStepCap) {
                        const NavObs obs = world.observe();
                        const auto logits = controller.inferLogits(
                            static_cast<int>(st), obs.spatial, obs.state,
                            ctx);
                        ModelZoo::EntropyFrame f;
                        f.image = world.renderImage(pcfg.imgRes);
                        f.prompt = navPrompt(st, obs, pcfg.promptDim);
                        f.entropy = static_cast<float>(
                            ops::entropy(ops::softmax(logits)));
                        frames.push_back(std::move(f));
                        world.step(static_cast<NavAction>(
                            sampleAction(logits, sampler)));
                        ++steps;
                    }
                }
            }
        }
        if (verbose)
            std::fprintf(stderr, "[zoo] predictor dataset: %zu frames\n",
                         frames.size());
        ModelZoo::trainPredictor(*p, frames, 5, 8e-4, verbose);
        saveModel(*p, path);
    }
    // Calibrate on a few frames.
    {
        ComputeContext pctx(0x94);
        pctx.calibrating = true;
        ComputeContext cctx(0x95);
        Rng rng2(0x96);
        NavWorld world(NavTask::Patrol, 24601);
        const auto pcfg = p->config();
        int steps = 0;
        for (const auto st : navGoldPlan(NavTask::Patrol)) {
            world.setActiveSubtask(st);
            while (!world.subtaskComplete() && steps < NavWorld::kStepCap) {
                const NavObs obs = world.observe();
                p->infer(world.renderImage(pcfg.imgRes),
                         navPrompt(st, obs, pcfg.promptDim), pctx);
                const auto logits = controller.inferLogits(
                    static_cast<int>(st), obs.spatial, obs.state, cctx);
                world.step(
                    static_cast<NavAction>(sampleAction(logits, rng2)));
                ++steps;
            }
        }
    }
    return p;
}

} // namespace create::platforms
