#include "models/controller.hpp"

#include <algorithm>

namespace create {

ControllerModel::ControllerModel(ControllerConfig cfg, Rng& rng)
    : Module(cfg.name), cfg_(cfg),
      subtaskEmb_(cfg.name + ".subtask_embed", cfg.numSubtasks, cfg.dim, rng),
      spatialProj_(cfg.name + ".spatial_proj", cfg.spatialDim, cfg.dim,
                   /*withBias=*/true, rng),
      stateProj_(cfg.name + ".state_proj", cfg.stateDim, cfg.dim,
                 /*withBias=*/true, rng),
      headLinear_(cfg.name + ".policy_head", cfg.dim, cfg.numActions,
                  /*withBias=*/true, rng)
{
    addChild(&subtaskEmb_);
    addChild(&spatialProj_);
    addChild(&stateProj_);
    for (int l = 0; l < cfg.layers; ++l) {
        blocks_.push_back(std::make_unique<nn::PostNormBlock>(
            cfg.name + ".blk" + std::to_string(l), cfg.dim, cfg.mlpDim,
            cfg.heads, rng));
        addChild(blocks_.back().get());
    }
    addChild(&headLinear_);
}

nn::Var
ControllerModel::forward(int subtask, const std::vector<float>& spatial,
                         const std::vector<float>& state)
{
    const nn::Var prompt = subtaskEmb_.forward({subtask});
    const nn::Var sp = spatialProj_.forward(
        nn::Var(Tensor({1, cfg_.spatialDim},
                       std::vector<float>(spatial.begin(), spatial.end()))));
    const nn::Var st = stateProj_.forward(
        nn::Var(Tensor({1, cfg_.stateDim},
                       std::vector<float>(state.begin(), state.end()))));
    nn::Var x = nn::concatRows({prompt, sp, st});
    for (auto& b : blocks_)
        x = b->forward(x);
    return headLinear_.forward(nn::meanRows(x));
}

std::vector<float>
ControllerModel::inferLogits(int subtask, const std::vector<float>& spatial,
                             const std::vector<float>& state,
                             ComputeContext& ctx)
{
    Tensor x({3, cfg_.dim});
    {
        const Tensor prompt = subtaskEmb_.infer({subtask});
        const Tensor sp = spatialProj_.infer(
            Tensor({1, cfg_.spatialDim},
                   std::vector<float>(spatial.begin(), spatial.end())),
            ctx);
        const Tensor st = stateProj_.infer(
            Tensor({1, cfg_.stateDim},
                   std::vector<float>(state.begin(), state.end())),
            ctx);
        std::copy(prompt.data(), prompt.data() + cfg_.dim, x.data());
        std::copy(sp.data(), sp.data() + cfg_.dim, x.data() + cfg_.dim);
        std::copy(st.data(), st.data() + cfg_.dim, x.data() + 2 * cfg_.dim);
    }
    for (auto& b : blocks_)
        x = b->infer(x, ctx);
    Tensor pooled({1, cfg_.dim});
    for (int j = 0; j < cfg_.dim; ++j)
        pooled.at(0, j) = (x.at(0, j) + x.at(1, j) + x.at(2, j)) / 3.0f;
    const Tensor logits = headLinear_.infer(pooled, ctx);
    std::vector<float> out(static_cast<std::size_t>(cfg_.numActions));
    for (int a = 0; a < cfg_.numActions; ++a)
        out[static_cast<std::size_t>(a)] = logits.at(0, a);
    return out;
}

} // namespace create
