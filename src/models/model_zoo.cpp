#include "models/model_zoo.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <sys/stat.h>

#include "env/mine_expert.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace create {

// --- PlanVocab -------------------------------------------------------------

const PlanVocab&
PlanVocab::mine()
{
    static const PlanVocab vocab = [] {
        PlanVocab v;
        for (int t = 0; t < kNumMineTasks; ++t) {
            for (const auto& st : goldPlan(static_cast<MineTask>(t))) {
                if (v.tokenOf(st) < 0)
                    v.entries_.push_back(st);
            }
        }
        return v;
    }();
    return vocab;
}

int
PlanVocab::tokenOf(const Subtask& s) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].type == s.type && entries_[i].count == s.count)
            return static_cast<int>(i);
    return -1;
}

std::vector<Subtask>
PlanVocab::decode(const std::vector<int>& tokens) const
{
    std::vector<Subtask> plan;
    for (int t : tokens)
        if (t >= 0 && t < static_cast<int>(entries_.size()))
            plan.push_back(entries_[static_cast<std::size_t>(t)]);
    return plan;
}

std::vector<int>
PlanVocab::encode(const std::vector<Subtask>& plan) const
{
    std::vector<int> tokens;
    for (const auto& st : plan) {
        const int t = tokenOf(st);
        if (t < 0)
            throw std::logic_error("PlanVocab: subtask missing: " + st.str());
        tokens.push_back(t);
    }
    return tokens;
}

int
sampleAction(const std::vector<float>& logits, Rng& rng)
{
    const auto probs = ops::softmax(logits);
    double u = rng.uniform();
    for (std::size_t i = 0; i < probs.size(); ++i) {
        u -= probs[i];
        if (u <= 0.0)
            return static_cast<int>(i);
    }
    return static_cast<int>(probs.size()) - 1;
}

// --- ModelZoo --------------------------------------------------------------

std::string
ModelZoo::assetsDir()
{
    if (const char* env = std::getenv("CREATE_ASSETS_DIR"))
        return env;
    std::string home = "/tmp";
    if (const char* h = std::getenv("HOME"))
        home = h;
    const std::string dir = home + "/.cache/create_repro";
    ::mkdir((home + "/.cache").c_str(), 0755);
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

PlannerConfig
ModelZoo::minePlannerConfig()
{
    PlannerConfig cfg;
    cfg.name = "planner";
    cfg.numTasks = kNumMineTasks;
    cfg.maxDone = 12;
    cfg.maxPlanLen = 12;
    cfg.planVocab = PlanVocab::mine().size();
    return cfg;
}

ControllerConfig
ModelZoo::mineControllerConfig()
{
    ControllerConfig cfg;
    cfg.name = "controller";
    cfg.numSubtasks = kNumSubtaskTypes;
    cfg.spatialDim = MineObs::spatialDim();
    cfg.stateDim = MineObs::stateDim();
    cfg.numActions = kNumActions;
    return cfg;
}

PredictorConfig
ModelZoo::minePredictorConfig()
{
    PredictorConfig cfg;
    cfg.promptDim = kNumSubtaskTypes + 18;
    return cfg;
}

// --- generic trainers --------------------------------------------------------

void
ModelZoo::trainPlannerOnCorpus(PlannerModel& m,
                               const std::vector<std::pair<int, int>>& inputs,
                               const std::vector<std::vector<int>>& targets,
                               int epochs, double lr, bool verbose)
{
    nn::AdamW opt(m.parameters(), lr, 0.9, 0.999, 1e-8, /*weightDecay=*/0.0);
    Rng shuffleRng(0xBEEF);
    std::vector<std::size_t> order(inputs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const int batch = 8;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        // Fisher-Yates shuffle.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[shuffleRng.below(i)]);
        double lossSum = 0.0;
        int steps = 0;
        for (std::size_t s0 = 0; s0 < order.size();
             s0 += static_cast<std::size_t>(batch)) {
            opt.zeroGrad();
            const std::size_t s1 =
                std::min(order.size(), s0 + static_cast<std::size_t>(batch));
            for (std::size_t s = s0; s < s1; ++s) {
                const auto& [task, done] = inputs[order[s]];
                nn::Var logits = m.forward(task, done);
                nn::Var loss = nn::crossEntropy(logits, targets[order[s]]);
                loss.backward();
                lossSum += loss.value()[0];
            }
            opt.step();
            ++steps;
        }
        if (verbose && (epoch % 20 == 0 || epoch == epochs - 1)) {
            std::fprintf(stderr, "[zoo] planner epoch %d loss %.4f\n", epoch,
                         lossSum / static_cast<double>(inputs.size()));
        }
        // Early stop on exact-match memorization.
        if (epoch % 10 == 9) {
            bool allGood = true;
            for (std::size_t s = 0; s < inputs.size() && allGood; ++s) {
                nn::Var logits = m.forward(inputs[s].first, inputs[s].second);
                for (int i = 0; i < m.config().maxPlanLen && allGood; ++i) {
                    int best = 0;
                    float bv = logits.value().at(i, 0);
                    for (int v = 1; v < m.config().planVocab; ++v) {
                        if (logits.value().at(i, v) > bv) {
                            bv = logits.value().at(i, v);
                            best = v;
                        }
                    }
                    if (best != targets[s][static_cast<std::size_t>(i)])
                        allGood = false;
                }
            }
            if (allGood) {
                if (verbose)
                    std::fprintf(stderr,
                                 "[zoo] planner memorized at epoch %d\n",
                                 epoch);
                break;
            }
        }
    }
}

void
ModelZoo::trainControllerBc(ControllerModel& m, std::vector<BcSample> data,
                            int epochs, double lr, bool verbose)
{
    nn::AdamW opt(m.parameters(), lr, 0.9, 0.999, 1e-8,
                  /*weightDecay=*/1e-4);
    Rng shuffleRng(0xD00D);
    const int batch = 24;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        for (std::size_t i = data.size(); i > 1; --i)
            std::swap(data[i - 1], data[shuffleRng.below(i)]);
        double lossSum = 0.0;
        for (std::size_t s0 = 0; s0 < data.size();
             s0 += static_cast<std::size_t>(batch)) {
            opt.zeroGrad();
            const std::size_t s1 =
                std::min(data.size(), s0 + static_cast<std::size_t>(batch));
            for (std::size_t s = s0; s < s1; ++s) {
                const BcSample& b = data[s];
                nn::Var logits = m.forward(b.subtask, b.spatial, b.state);
                nn::Var loss = nn::crossEntropy(logits, {b.action});
                loss.backward();
                lossSum += loss.value()[0];
            }
            opt.step();
        }
        if (verbose) {
            std::fprintf(stderr, "[zoo] controller epoch %d loss %.4f\n",
                         epoch, lossSum / static_cast<double>(data.size()));
        }
    }
}

double
ModelZoo::trainPredictor(EntropyPredictor& p,
                         const std::vector<EntropyFrame>& frames, int epochs,
                         double lr, bool verbose)
{
    // Paper Sec. 6.1: MSE loss, AdamW, weight decay 1e-2.
    nn::AdamW opt(p.parameters(), lr, 0.9, 0.999, 1e-8, 1e-2);
    Rng shuffleRng(0xFADE);
    std::vector<std::size_t> order(frames.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const int batch = 32;
    const int res = p.config().imgRes;
    const int pd = p.config().promptDim;
    double lastLoss = 0.0;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[shuffleRng.below(i)]);
        double lossSum = 0.0;
        int batches = 0;
        for (std::size_t s0 = 0; s0 < order.size();
             s0 += static_cast<std::size_t>(batch)) {
            const std::size_t s1 =
                std::min(order.size(), s0 + static_cast<std::size_t>(batch));
            const auto bsz = static_cast<std::int64_t>(s1 - s0);
            Tensor images({bsz, 3, res, res});
            Tensor prompts({bsz, pd});
            Tensor target({bsz, 1});
            for (std::size_t s = s0; s < s1; ++s) {
                const auto& f = frames[order[s]];
                const auto bi = static_cast<std::int64_t>(s - s0);
                std::copy(f.image.data(), f.image.data() + f.image.numel(),
                          images.data() + bi * 3 * res * res);
                for (int j = 0; j < pd; ++j)
                    prompts.at(bi, j) = f.prompt[static_cast<std::size_t>(j)];
                target.at(bi, 0) = f.entropy;
            }
            opt.zeroGrad();
            nn::Var pred = p.forward(nn::Var(std::move(images)),
                                     nn::Var(std::move(prompts)));
            nn::Var loss = nn::mseLoss(pred, target);
            loss.backward();
            opt.step();
            lossSum += loss.value()[0];
            ++batches;
        }
        lastLoss = lossSum / std::max(1, batches);
        if (verbose) {
            std::fprintf(stderr, "[zoo] predictor epoch %d mse %.4f\n", epoch,
                         lastLoss);
        }
    }
    return lastLoss;
}

// --- dataset builders --------------------------------------------------------

std::vector<BcSample>
ModelZoo::mineBcDataset(int seedsPerTask, std::uint64_t seed)
{
    std::vector<BcSample> data;
    Rng rng(seed);
    for (int t = 0; t < kNumMineTasks; ++t) {
        const auto task = static_cast<MineTask>(t);
        for (int s = 0; s < seedsPerTask; ++s) {
            MineWorld world({40, 40, task, seed * 131 + static_cast<std::uint64_t>(t * 17 + s)});
            for (const auto& st : goldPlan(task)) {
                world.setActiveSubtask(st);
                int steps = 0;
                while (!world.subtaskComplete() && steps < 300) {
                    const MineObs obs = world.observe();
                    const Action a = MineExpert::act(world, rng);
                    BcSample sample;
                    sample.subtask = static_cast<int>(st.type);
                    sample.spatial = obs.spatial;
                    sample.state = obs.state;
                    sample.action = static_cast<int>(a);
                    data.push_back(sample);
                    // Craft/smelt decisions are rare but safety-critical:
                    // oversample so the cloned policy nails them.
                    if (st.isCraft() || st.isSmelt()) {
                        for (int r = 0; r < 15; ++r)
                            data.push_back(sample);
                    }
                    world.step(a);
                    ++steps;
                }
                if (!world.subtaskComplete())
                    break; // unlucky map; skip rest of this episode
            }
        }
    }
    return data;
}

std::vector<ModelZoo::EntropyFrame>
ModelZoo::minePredictorFrames(ControllerModel& controller, int seedsPerTask,
                              std::uint64_t seed)
{
    std::vector<EntropyFrame> frames;
    Rng rng(seed ^ 0xABCD);
    ComputeContext ctx(seed);
    ctx.domain = Domain::Controller; // clean INT8 deployment path
    const auto pcfg = minePredictorConfig();
    for (int t = 0; t < kNumMineTasks; ++t) {
        const auto task = static_cast<MineTask>(t);
        for (int s = 0; s < seedsPerTask; ++s) {
            MineWorld world({40, 40, task,
                             seed * 977 + static_cast<std::uint64_t>(t * 31 + s)});
            for (const auto& st : goldPlan(task)) {
                world.setActiveSubtask(st);
                int steps = 0;
                while (!world.subtaskComplete() && steps < 220) {
                    const MineObs obs = world.observe();
                    const auto logits = controller.inferLogits(
                        static_cast<int>(st.type), obs.spatial, obs.state,
                        ctx);
                    const double h = ops::entropy(ops::softmax(logits));
                    if (steps % 2 == 0) {
                        EntropyFrame f;
                        f.image = world.renderImage(pcfg.imgRes, pcfg.viewRadius);
                        f.prompt = predictorPrompt(
                            static_cast<int>(st.type), kNumSubtaskTypes,
                            obs.spatial, obs.state, pcfg.promptDim);
                        f.entropy = static_cast<float>(h);
                        frames.push_back(std::move(f));
                    }
                    world.step(static_cast<Action>(sampleAction(logits, rng)));
                    ++steps;
                }
            }
        }
    }
    return frames;
}

// --- calibration ---------------------------------------------------------------

void
ModelZoo::calibrateMinePlanner(PlannerModel& m)
{
    ComputeContext ctx(0x11);
    ctx.calibrating = true;
    for (int t = 0; t < kNumMineTasks; ++t) {
        const int planLen =
            static_cast<int>(goldPlan(static_cast<MineTask>(t)).size());
        for (int done = 0; done <= planLen; ++done)
            m.inferLogits(t, done, ctx);
    }
}

void
ModelZoo::calibrateMineController(ControllerModel& m)
{
    ComputeContext ctx(0x22);
    ctx.calibrating = true;
    Rng rng(0x22);
    for (int t = 0; t < kNumMineTasks; t += 2) {
        const auto task = static_cast<MineTask>(t);
        MineWorld world({40, 40, task, 4242 + static_cast<std::uint64_t>(t)});
        for (const auto& st : goldPlan(task)) {
            world.setActiveSubtask(st);
            int steps = 0;
            while (!world.subtaskComplete() && steps < 150) {
                const MineObs obs = world.observe();
                m.inferLogits(static_cast<int>(st.type), obs.spatial,
                              obs.state, ctx);
                world.step(MineExpert::act(world, rng));
                ++steps;
            }
        }
    }
}

void
ModelZoo::calibrateMinePredictor(EntropyPredictor& p,
                                 ControllerModel& controller)
{
    ComputeContext cctx(0x33);
    ComputeContext pctx(0x34);
    pctx.calibrating = true;
    Rng rng(0x33);
    const auto pcfg = p.config();
    MineWorld world({40, 40, MineTask::Stone, 999});
    for (const auto& st : goldPlan(MineTask::Stone)) {
        world.setActiveSubtask(st);
        int steps = 0;
        while (!world.subtaskComplete() && steps < 120) {
            const MineObs obs = world.observe();
            const auto prompt = predictorPrompt(
                static_cast<int>(st.type), kNumSubtaskTypes, obs.spatial,
                obs.state, pcfg.promptDim);
            p.infer(world.renderImage(pcfg.imgRes, pcfg.viewRadius), prompt, pctx);
            const auto logits = controller.inferLogits(
                static_cast<int>(st.type), obs.spatial, obs.state, cctx);
            world.step(static_cast<Action>(sampleAction(logits, rng)));
            ++steps;
        }
    }
}

// --- load-or-train entry points -------------------------------------------------

namespace {

bool
tryLoad(nn::Module& m, const std::string& path)
{
    BlobArchive ar;
    return ar.load(path) && m.load(ar);
}

void
saveModel(nn::Module& m, const std::string& path)
{
    BlobArchive ar;
    m.save(ar);
    ar.save(path);
}

} // namespace

std::unique_ptr<PlannerModel>
ModelZoo::minePlanner(bool verbose)
{
    Rng rng(0x9111);
    auto m = std::make_unique<PlannerModel>(minePlannerConfig(), rng);
    const std::string path = assetsDir() + "/mine_planner_v2.bin";
    if (!tryLoad(*m, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training Minecraft planner...\n");
        const auto& vocab = PlanVocab::mine();
        std::vector<std::pair<int, int>> inputs;
        std::vector<std::vector<int>> targets;
        for (int t = 0; t < kNumMineTasks; ++t) {
            const auto plan = goldPlan(static_cast<MineTask>(t));
            const auto tokens = vocab.encode(plan);
            for (int done = 0; done <= static_cast<int>(plan.size()); ++done) {
                std::vector<int> tgt(
                    tokens.begin() + done, tokens.end());
                tgt.resize(static_cast<std::size_t>(
                               m->config().maxPlanLen),
                           vocab.endToken());
                inputs.push_back({t, done});
                targets.push_back(std::move(tgt));
            }
        }
        trainPlannerOnCorpus(*m, inputs, targets, 150, 2.5e-3, verbose);
        saveModel(*m, path);
    }
    calibrateMinePlanner(*m);
    return m;
}

std::unique_ptr<ControllerModel>
ModelZoo::mineController(bool verbose)
{
    Rng rng(0x9222);
    auto m = std::make_unique<ControllerModel>(mineControllerConfig(), rng);
    const std::string path = assetsDir() + "/mine_controller_v2.bin";
    if (!tryLoad(*m, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training Minecraft controller "
                                 "(behavior cloning)...\n");
        auto data = mineBcDataset(4, 0x5151);
        if (verbose)
            std::fprintf(stderr, "[zoo] BC dataset: %zu samples\n",
                         data.size());
        trainControllerBc(*m, std::move(data), 3, 1.5e-3, verbose);
        saveModel(*m, path);
    }
    calibrateMineController(*m);
    return m;
}

std::unique_ptr<EntropyPredictor>
ModelZoo::minePredictor(ControllerModel& controller, bool verbose)
{
    Rng rng(0x9333);
    auto p = std::make_unique<EntropyPredictor>(minePredictorConfig(), rng);
    const std::string path = assetsDir() + "/mine_predictor_v2.bin";
    if (!tryLoad(*p, path)) {
        if (verbose)
            std::fprintf(stderr, "[zoo] training entropy predictor...\n");
        const auto frames = minePredictorFrames(controller, 3, 0x6161);
        if (verbose)
            std::fprintf(stderr, "[zoo] predictor dataset: %zu frames\n",
                         frames.size());
        trainPredictor(*p, frames, 30, 1.2e-3, verbose);
        saveModel(*p, path);
    }
    calibrateMinePredictor(*p, controller);
    return p;
}

MineModels
ModelZoo::mineModels(bool verbose)
{
    MineModels models;
    models.planner = minePlanner(verbose);
    models.controller = mineController(verbose);
    models.predictor = minePredictor(*models.controller, verbose);
    return models;
}

} // namespace create
