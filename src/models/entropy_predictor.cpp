#include "models/entropy_predictor.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace create {

namespace {

/** Non-autograd 2x2 max pool for the single-sample infer path. */
Tensor
maxPool(const Tensor& x)
{
    const std::int64_t c = x.dim(0), h = x.dim(1), w = x.dim(2);
    Tensor out({c, h / 2, w / 2});
    for (std::int64_t ch = 0; ch < c; ++ch)
        for (std::int64_t y = 0; y < h / 2; ++y)
            for (std::int64_t xx = 0; xx < w / 2; ++xx) {
                float m = x.at(ch, y * 2, xx * 2);
                m = std::max(m, x.at(ch, y * 2, xx * 2 + 1));
                m = std::max(m, x.at(ch, y * 2 + 1, xx * 2));
                m = std::max(m, x.at(ch, y * 2 + 1, xx * 2 + 1));
                out.at(ch, y, xx) = m;
            }
    return out;
}

Tensor
reluT(Tensor x)
{
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = x[i] > 0.0f ? x[i] : 0.0f;
    return x;
}

} // namespace

EntropyPredictor::EntropyPredictor(PredictorConfig cfg, Rng& rng)
    : Module(cfg.name), cfg_(cfg),
      conv1_(cfg.name + ".conv1", 3, 16, 3, 1, 1, rng),
      conv2_(cfg.name + ".conv2", 16, 32, 3, 1, 1, rng),
      conv3_(cfg.name + ".conv3", 32, 64, 3, 1, 1, rng),
      promptFc_(cfg.name + ".prompt_fc", cfg.promptDim, cfg.fuseDim,
                /*withBias=*/true, rng),
      fuse1_(cfg.name + ".fuse1", 64 + cfg.fuseDim, 128, /*withBias=*/true,
             rng),
      fuse2_(cfg.name + ".fuse2", 128, 1, /*withBias=*/true, rng)
{
    addChild(&conv1_);
    addChild(&conv2_);
    addChild(&conv3_);
    addChild(&promptFc_);
    addChild(&fuse1_);
    addChild(&fuse2_);
}

nn::Var
EntropyPredictor::forward(const nn::Var& images, const nn::Var& prompts)
{
    nn::Var x = nn::relu(conv1_.forward(images));
    x = nn::maxPool2d(x);
    x = nn::relu(conv2_.forward(x));
    x = nn::maxPool2d(x);
    x = nn::relu(conv3_.forward(x));
    x = nn::globalAvgPool(x); // (B, 64)
    const nn::Var p = nn::relu(promptFc_.forward(prompts));
    nn::Var fused = nn::concatCols({x, p});
    fused = nn::relu(fuse1_.forward(fused));
    return fuse2_.forward(fused);
}

float
EntropyPredictor::infer(const Tensor& image, const std::vector<float>& prompt,
                        ComputeContext& ctx)
{
    if (image.rank() != 3 || image.dim(1) != cfg_.imgRes)
        throw std::invalid_argument("EntropyPredictor::infer: bad image");
    Tensor x = reluT(conv1_.infer(image, ctx));
    x = maxPool(x);
    x = reluT(conv2_.infer(x, ctx));
    x = maxPool(x);
    x = reluT(conv3_.infer(x, ctx));
    // Global average pool -> (1, 64)
    Tensor feat({1, 64});
    const std::int64_t hw = x.dim(1) * x.dim(2);
    for (std::int64_t ch = 0; ch < 64; ++ch) {
        float s = 0.0f;
        for (std::int64_t i = 0; i < hw; ++i)
            s += x.data()[ch * hw + i];
        feat.at(0, ch) = s / static_cast<float>(hw);
    }
    Tensor p({1, cfg_.promptDim},
             std::vector<float>(prompt.begin(), prompt.end()));
    Tensor pf = promptFc_.infer(p, ctx);
    for (std::int64_t i = 0; i < pf.numel(); ++i)
        pf[i] = pf[i] > 0.0f ? pf[i] : 0.0f;
    Tensor fused({1, 64 + cfg_.fuseDim});
    for (int j = 0; j < 64; ++j)
        fused.at(0, j) = feat.at(0, j);
    for (int j = 0; j < cfg_.fuseDim; ++j)
        fused.at(0, 64 + j) = pf.at(0, j);
    Tensor h = fuse1_.infer(fused, ctx);
    for (std::int64_t i = 0; i < h.numel(); ++i)
        h[i] = h[i] > 0.0f ? h[i] : 0.0f;
    const Tensor out = fuse2_.infer(h, ctx);
    return out[0];
}

std::vector<float>
predictorPrompt(int subtaskType, int numSubtaskTypes,
                const std::vector<float>& spatial,
                const std::vector<float>& state, int promptDim)
{
    std::vector<float> p(static_cast<std::size_t>(promptDim), 0.0f);
    if (subtaskType >= 0 && subtaskType < numSubtaskTypes &&
        subtaskType < promptDim)
        p[static_cast<std::size_t>(subtaskType)] = 1.0f;
    std::size_t j = static_cast<std::size_t>(numSubtaskTypes);
    // Target geometry: visible, direction signs, distance bucket, front.
    for (std::size_t i = 0; i < 12 && i < spatial.size() && j < p.size();
         ++i)
        p[j++] = spatial[i];
    for (std::size_t i = 0; i < 6 && i < state.size() && j < p.size(); ++i)
        p[j++] = state[i];
    return p;
}

} // namespace create
