#pragma once

/**
 * @file
 * The RL controller (Fig. 3 right): a post-norm Transformer policy that
 * fuses a subtask prompt embedding with observation tokens and emits
 * action logits each step. Trained by behavior cloning from the scripted
 * experts (DESIGN.md substitution #1).
 *
 * The class is environment-agnostic: it consumes a subtask id plus the
 * two observation feature vectors (spatial / state), so the same code
 * serves the JARVIS-1 stand-in (MineWorld) and the Octo / RT-1 stand-ins
 * (ManipWorld) with different dimensions.
 */

#include <memory>

#include "nn/transformer.hpp"

namespace create {

/** Controller hyperparameters. */
struct ControllerConfig
{
    std::string name = "controller";
    int dim = 48;
    int mlpDim = 144;
    int layers = 2;
    int heads = 4;
    int numSubtasks = 16;
    int spatialDim = 31;
    int stateDim = 14;
    int numActions = 9;
};

/** Post-norm Transformer action policy. */
class ControllerModel : public nn::Module
{
  public:
    ControllerModel(ControllerConfig cfg, Rng& rng);

    /** Training forward: logits (1 x numActions). */
    nn::Var forward(int subtask, const std::vector<float>& spatial,
                    const std::vector<float>& state);

    /** Deployment path: action logits through the faulty pipeline. */
    std::vector<float> inferLogits(int subtask,
                                   const std::vector<float>& spatial,
                                   const std::vector<float>& state,
                                   ComputeContext& ctx);

    const ControllerConfig& config() const { return cfg_; }

    nn::PostNormBlock& block(int i)
    {
        return *blocks_[static_cast<std::size_t>(i)];
    }

  private:
    ControllerConfig cfg_;
    nn::Embedding subtaskEmb_;
    nn::Linear spatialProj_, stateProj_;
    std::vector<std::unique_ptr<nn::PostNormBlock>> blocks_;
    nn::Linear headLinear_;
};

} // namespace create
