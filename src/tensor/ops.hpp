#pragma once

/**
 * @file
 * Free-function FP32 tensor kernels: GEMM, transposition, elementwise ops,
 * softmax, im2col/col2im for convolutions, and Hadamard matrix construction.
 *
 * These are the exact (error-free) kernels. The quantized, fault-injected
 * equivalents live in hw/faulty_gemm.hpp and share the same layouts.
 */

#include "tensor/tensor.hpp"

namespace create::ops {

/** C(MxN) = A(MxK) @ B(KxN). Shapes validated. */
Tensor matmul(const Tensor& a, const Tensor& b);

/** C += A @ B into a preallocated MxN tensor. */
void matmulAccum(const Tensor& a, const Tensor& b, Tensor& c);

/** Transpose a rank-2 tensor. */
Tensor transpose(const Tensor& a);

/** Rows [r0, r1) of a rank-2 tensor as one contiguous memcpy. */
Tensor sliceRows(const Tensor& a, std::int64_t r0, std::int64_t r1);

/** Elementwise a + b (same shape). */
Tensor add(const Tensor& a, const Tensor& b);

/** Row-broadcast add: a(MxN) + bias(N). */
Tensor addRowBroadcast(const Tensor& a, const Tensor& bias);

/** Elementwise a * b (same shape). */
Tensor mul(const Tensor& a, const Tensor& b);

/** Scale by a constant. */
Tensor scale(const Tensor& a, float s);

/** ReLU. */
Tensor relu(const Tensor& a);

/** SiLU: x * sigmoid(x). */
Tensor silu(const Tensor& a);

/** Row-wise softmax over the last dim of a rank-2 tensor. */
Tensor softmaxRows(const Tensor& a);

/** Softmax over a single vector. */
std::vector<float> softmax(const std::vector<float>& logits);

/** Shannon entropy (natural log) of a probability vector. */
double entropy(const std::vector<float>& probs);

/** Numerically stable log-softmax over a vector. */
std::vector<float> logSoftmax(const std::vector<float>& logits);

/**
 * im2col for NCHW conv with square kernel.
 *
 * Input (C, H, W) -> matrix (outH*outW, C*k*k) so that conv becomes
 * cols @ weight^T with weight (outC, C*k*k).
 */
Tensor im2col(const Tensor& input, int k, int stride, int pad);

/** Output spatial size of a conv/pool: floor((in + 2*pad - k)/stride) + 1. */
int convOutSize(int in, int k, int stride, int pad);

/**
 * Adjoint of im2col: scatter-add column gradients back into an image
 * gradient of shape (C, H, W). `cols` must have the shape produced by
 * im2col(input, k, stride, pad).
 */
void col2imAccum(const Tensor& cols, int c, int h, int w, int k, int stride,
                 int pad, Tensor& out);

/**
 * Walsh-Hadamard matrix of size n (n must be a power of two), scaled by
 * 1/sqrt(n) so it is orthonormal. Recursive Kronecker construction per
 * Sec. 5.2 of the paper.
 */
Tensor hadamard(int n);

/** Max |a-b| over all elements (shapes must match). */
float maxAbsDiff(const Tensor& a, const Tensor& b);

} // namespace create::ops
