#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace create::ops {

namespace {
void
require(bool cond, const char* msg)
{
    if (!cond)
        throw std::invalid_argument(msg);
}
} // namespace

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
    require(a.dim(1) == b.dim(0), "matmul: inner dims mismatch");
    Tensor c({a.dim(0), b.dim(1)});
    matmulAccum(a, b, c);
    return c;
}

void
matmulAccum(const Tensor& a, const Tensor& b, Tensor& c)
{
    require(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
            "matmulAccum: rank-2 tensors required");
    const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    require(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n,
            "matmulAccum: shape mismatch");
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    // Blocked like hw/faulty_gemm.cpp's intGemm: per (row, K-tile,
    // column-block), 8 partial sums live in registers instead of the
    // accumulator row being stored and reloaded once per k. Each output
    // element still accumulates in strictly ascending k order, so results
    // are bit-identical to the naive i-k-j kernel.
    constexpr std::int64_t kNr = 8;
    constexpr std::int64_t kKc = 256;
    for (std::int64_t i = 0; i < m; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
            const std::int64_t kEnd = std::min(k, k0 + kKc);
            std::int64_t j0 = 0;
            for (; j0 + kNr <= n; j0 += kNr) {
                float a0 = crow[j0 + 0], a1 = crow[j0 + 1];
                float a2 = crow[j0 + 2], a3 = crow[j0 + 3];
                float a4 = crow[j0 + 4], a5 = crow[j0 + 5];
                float a6 = crow[j0 + 6], a7 = crow[j0 + 7];
                for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                    const float av = arow[kk];
                    if (av == 0.0f)
                        continue;
                    const float* brow = pb + kk * n + j0;
                    a0 += av * brow[0];
                    a1 += av * brow[1];
                    a2 += av * brow[2];
                    a3 += av * brow[3];
                    a4 += av * brow[4];
                    a5 += av * brow[5];
                    a6 += av * brow[6];
                    a7 += av * brow[7];
                }
                crow[j0 + 0] = a0;
                crow[j0 + 1] = a1;
                crow[j0 + 2] = a2;
                crow[j0 + 3] = a3;
                crow[j0 + 4] = a4;
                crow[j0 + 5] = a5;
                crow[j0 + 6] = a6;
                crow[j0 + 7] = a7;
            }
            for (; j0 < n; ++j0) { // ragged column tail
                float acc = crow[j0];
                for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                    const float av = arow[kk];
                    if (av != 0.0f)
                        acc += av * pb[kk * n + j0];
                }
                crow[j0] = acc;
            }
        }
    }
}

Tensor
transpose(const Tensor& a)
{
    require(a.rank() == 2, "transpose: rank-2 required");
    Tensor t({a.dim(1), a.dim(0)});
    for (std::int64_t i = 0; i < a.dim(0); ++i)
        for (std::int64_t j = 0; j < a.dim(1); ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

Tensor
sliceRows(const Tensor& a, std::int64_t r0, std::int64_t r1)
{
    require(a.rank() == 2, "sliceRows: rank-2 required");
    require(r0 >= 0 && r0 <= r1 && r1 <= a.dim(0), "sliceRows: bad range");
    const std::int64_t n = a.dim(1);
    Tensor out({r1 - r0, n});
    std::copy(a.data() + r0 * n, a.data() + r1 * n, out.data());
    return out;
}

Tensor
add(const Tensor& a, const Tensor& b)
{
    require(a.numel() == b.numel(), "add: size mismatch");
    Tensor c = a;
    for (std::int64_t i = 0; i < c.numel(); ++i)
        c[i] += b[i];
    return c;
}

Tensor
addRowBroadcast(const Tensor& a, const Tensor& bias)
{
    require(a.rank() == 2 && bias.numel() == a.dim(1), "addRowBroadcast: mismatch");
    Tensor c = a;
    for (std::int64_t i = 0; i < a.dim(0); ++i)
        for (std::int64_t j = 0; j < a.dim(1); ++j)
            c.at(i, j) += bias[j];
    return c;
}

Tensor
mul(const Tensor& a, const Tensor& b)
{
    require(a.numel() == b.numel(), "mul: size mismatch");
    Tensor c = a;
    for (std::int64_t i = 0; i < c.numel(); ++i)
        c[i] *= b[i];
    return c;
}

Tensor
scale(const Tensor& a, float s)
{
    Tensor c = a;
    for (std::int64_t i = 0; i < c.numel(); ++i)
        c[i] *= s;
    return c;
}

Tensor
relu(const Tensor& a)
{
    Tensor c = a;
    for (std::int64_t i = 0; i < c.numel(); ++i)
        c[i] = c[i] > 0.0f ? c[i] : 0.0f;
    return c;
}

Tensor
silu(const Tensor& a)
{
    Tensor c = a;
    for (std::int64_t i = 0; i < c.numel(); ++i) {
        const float x = c[i];
        c[i] = x / (1.0f + std::exp(-x));
    }
    return c;
}

Tensor
softmaxRows(const Tensor& a)
{
    require(a.rank() == 2, "softmaxRows: rank-2 required");
    Tensor c = a;
    for (std::int64_t i = 0; i < a.dim(0); ++i) {
        float mx = -1e30f;
        for (std::int64_t j = 0; j < a.dim(1); ++j)
            mx = std::max(mx, a.at(i, j));
        float sum = 0.0f;
        for (std::int64_t j = 0; j < a.dim(1); ++j) {
            const float e = std::exp(a.at(i, j) - mx);
            c.at(i, j) = e;
            sum += e;
        }
        const float inv = 1.0f / sum;
        for (std::int64_t j = 0; j < a.dim(1); ++j)
            c.at(i, j) *= inv;
    }
    return c;
}

std::vector<float>
softmax(const std::vector<float>& logits)
{
    std::vector<float> p(logits.size());
    float mx = -1e30f;
    for (float v : logits)
        mx = std::max(mx, v);
    float sum = 0.0f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        p[i] = std::exp(logits[i] - mx);
        sum += p[i];
    }
    for (auto& v : p)
        v /= sum;
    return p;
}

double
entropy(const std::vector<float>& probs)
{
    double h = 0.0;
    for (float p : probs)
        if (p > 1e-12f)
            h -= static_cast<double>(p) * std::log(static_cast<double>(p));
    return h;
}

std::vector<float>
logSoftmax(const std::vector<float>& logits)
{
    std::vector<float> out(logits.size());
    float mx = -1e30f;
    for (float v : logits)
        mx = std::max(mx, v);
    double sum = 0.0;
    for (float v : logits)
        sum += std::exp(static_cast<double>(v - mx));
    const auto logSum = static_cast<float>(std::log(sum));
    for (std::size_t i = 0; i < logits.size(); ++i)
        out[i] = logits[i] - mx - logSum;
    return out;
}

int
convOutSize(int in, int k, int stride, int pad)
{
    return (in + 2 * pad - k) / stride + 1;
}

Tensor
im2col(const Tensor& input, int k, int stride, int pad)
{
    require(input.rank() == 3, "im2col: (C,H,W) input required");
    const int c = static_cast<int>(input.dim(0));
    const int h = static_cast<int>(input.dim(1));
    const int w = static_cast<int>(input.dim(2));
    const int oh = convOutSize(h, k, stride, pad);
    const int ow = convOutSize(w, k, stride, pad);
    require(oh > 0 && ow > 0, "im2col: empty output");
    Tensor cols({static_cast<std::int64_t>(oh) * ow,
                 static_cast<std::int64_t>(c) * k * k});
    std::int64_t row = 0;
    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++row) {
            std::int64_t col = 0;
            for (int ch = 0; ch < c; ++ch) {
                for (int ky = 0; ky < k; ++ky) {
                    for (int kx = 0; kx < k; ++kx, ++col) {
                        const int iy = oy * stride + ky - pad;
                        const int ix = ox * stride + kx - pad;
                        float v = 0.0f;
                        if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                            v = input.at(ch, iy, ix);
                        cols.at(row, col) = v;
                    }
                }
            }
        }
    }
    return cols;
}

void
col2imAccum(const Tensor& cols, int c, int h, int w, int k, int stride,
            int pad, Tensor& out)
{
    require(out.rank() == 3 && out.dim(0) == c && out.dim(1) == h &&
                out.dim(2) == w,
            "col2imAccum: bad output shape");
    const int oh = convOutSize(h, k, stride, pad);
    const int ow = convOutSize(w, k, stride, pad);
    require(cols.rank() == 2 && cols.dim(0) == static_cast<std::int64_t>(oh) * ow &&
                cols.dim(1) == static_cast<std::int64_t>(c) * k * k,
            "col2imAccum: bad cols shape");
    std::int64_t row = 0;
    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++row) {
            std::int64_t col = 0;
            for (int ch = 0; ch < c; ++ch) {
                for (int ky = 0; ky < k; ++ky) {
                    for (int kx = 0; kx < k; ++kx, ++col) {
                        const int iy = oy * stride + ky - pad;
                        const int ix = ox * stride + kx - pad;
                        if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                            out.at(ch, iy, ix) += cols.at(row, col);
                    }
                }
            }
        }
    }
}

Tensor
hadamard(int n)
{
    require(n > 0 && (n & (n - 1)) == 0, "hadamard: n must be a power of two");
    Tensor h({n, n});
    h.at(0, 0) = 1.0f;
    for (int size = 1; size < n; size *= 2) {
        for (int i = 0; i < size; ++i) {
            for (int j = 0; j < size; ++j) {
                const float v = h.at(i, j);
                h.at(i, j + size) = v;
                h.at(i + size, j) = v;
                h.at(i + size, j + size) = -v;
            }
        }
    }
    const float inv = 1.0f / std::sqrt(static_cast<float>(n));
    for (std::int64_t i = 0; i < h.numel(); ++i)
        h[i] *= inv;
    return h;
}

float
maxAbsDiff(const Tensor& a, const Tensor& b)
{
    require(a.numel() == b.numel(), "maxAbsDiff: size mismatch");
    float m = 0.0f;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

} // namespace create::ops
