#include "tensor/tensor.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hw/kernel_dispatch.hpp"

namespace create {

namespace {
std::int64_t
product(const std::vector<std::int64_t>& shape)
{
    std::int64_t n = 1;
    for (auto d : shape) {
        if (d < 0)
            throw std::invalid_argument("Tensor: negative dimension");
        n *= d;
    }
    return n;
}
} // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), numel_(product(shape_)),
      data_(static_cast<std::size_t>(numel_), 0.0f)
{
}

Tensor::Tensor(std::initializer_list<std::int64_t> shape)
    : Tensor(std::vector<std::int64_t>(shape))
{
}

Tensor::Tensor(std::vector<std::int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), numel_(product(shape_)), data_(std::move(data))
{
    if (numel_ != static_cast<std::int64_t>(data_.size()))
        throw std::invalid_argument("Tensor: shape does not match data size");
}

Tensor
Tensor::zeros(std::vector<std::int64_t> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(std::vector<std::int64_t> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor&
Tensor::reshape(std::vector<std::int64_t> shape)
{
    if (product(shape) != numel_)
        throw std::invalid_argument("Tensor::reshape: element count changed");
    shape_ = std::move(shape);
    return *this;
}

Tensor
Tensor::reshaped(std::vector<std::int64_t> shape) const
{
    Tensor t = *this;
    t.reshape(std::move(shape));
    return t;
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

float
Tensor::absMax() const
{
    // Calibration scans every activation/weight tensor, so this runs on
    // the dispatched SIMD kernel (max is order-independent: exact). The
    // dispatch header is architecture-neutral; this is the one place the
    // tensor layer reaches into hw/.
    return simd::active().absMax(data_.data(),
                                 static_cast<std::int64_t>(data_.size()));
}

float
Tensor::mean() const
{
    if (data_.empty())
        return 0.0f;
    double s = std::accumulate(data_.begin(), data_.end(), 0.0);
    return static_cast<float>(s / static_cast<double>(data_.size()));
}

float
Tensor::stddev() const
{
    if (data_.empty())
        return 0.0f;
    const double m = mean();
    double s = 0.0;
    for (float v : data_)
        s += (v - m) * (v - m);
    return static_cast<float>(std::sqrt(s / static_cast<double>(data_.size())));
}

std::string
Tensor::shapeStr() const
{
    std::string s = "Tensor[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            s += "x";
        s += std::to_string(shape_[i]);
    }
    return s + "]";
}

} // namespace create
