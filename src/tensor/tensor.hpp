#pragma once

/**
 * @file
 * Dense row-major FP32 tensor, the numeric substrate for every model and
 * for the quantized hardware pipeline's float endpoints.
 *
 * Shapes are kept as a small vector of dims; data is a contiguous
 * std::vector<float>. The class is intentionally simple: views/strides are
 * not needed anywhere in this project, and copies are explicit.
 */

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace create {

/** Dense row-major FP32 tensor with up to rank-4 shapes. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<std::int64_t> shape);
    Tensor(std::initializer_list<std::int64_t> shape);

    /** Construct from shape + data (sizes must match). */
    Tensor(std::vector<std::int64_t> shape, std::vector<float> data);

    static Tensor zeros(std::vector<std::int64_t> shape);
    static Tensor full(std::vector<std::int64_t> shape, float value);

    const std::vector<std::int64_t>& shape() const { return shape_; }
    std::int64_t dim(std::size_t i) const { return shape_.at(i); }
    std::size_t rank() const { return shape_.size(); }
    std::int64_t numel() const { return numel_; }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    std::vector<float>& vec() { return data_; }
    const std::vector<float>& vec() const { return data_; }

    float& operator[](std::int64_t i) { return data_[i]; }
    float operator[](std::int64_t i) const { return data_[i]; }

    /** 2-D accessor (rank/bounds checked in debug builds). */
    float& at(std::int64_t r, std::int64_t c)
    {
        assert(rank() == 2 && "Tensor::at(r, c) requires a rank-2 tensor");
        assert(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1] &&
               "Tensor::at(r, c) index out of bounds");
        return data_[r * shape_[1] + c];
    }
    float at(std::int64_t r, std::int64_t c) const
    {
        assert(rank() == 2 && "Tensor::at(r, c) requires a rank-2 tensor");
        assert(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1] &&
               "Tensor::at(r, c) index out of bounds");
        return data_[r * shape_[1] + c];
    }

    /** 3-D accessor (rank/bounds checked in debug builds). */
    float& at(std::int64_t a, std::int64_t b, std::int64_t c)
    {
        assert(rank() == 3 && "Tensor::at(a, b, c) requires a rank-3 tensor");
        assert(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1] && c >= 0 &&
               c < shape_[2] && "Tensor::at(a, b, c) index out of bounds");
        return data_[(a * shape_[1] + b) * shape_[2] + c];
    }
    float at(std::int64_t a, std::int64_t b, std::int64_t c) const
    {
        assert(rank() == 3 && "Tensor::at(a, b, c) requires a rank-3 tensor");
        assert(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1] && c >= 0 &&
               c < shape_[2] && "Tensor::at(a, b, c) index out of bounds");
        return data_[(a * shape_[1] + b) * shape_[2] + c];
    }

    /** Reshape in place; element count must be preserved. */
    Tensor& reshape(std::vector<std::int64_t> shape);

    /** Return a reshaped copy. */
    Tensor reshaped(std::vector<std::int64_t> shape) const;

    /** Fill with a constant. */
    void fill(float v);

    /** Max of |x| over all elements (0 for empty). */
    float absMax() const;

    /** Mean over all elements (0 for empty). */
    float mean() const;

    /** Population standard deviation over all elements. */
    float stddev() const;

    /** Debug string "Tensor[2x3]". */
    std::string shapeStr() const;

  private:
    std::vector<std::int64_t> shape_;
    std::int64_t numel_ = 0;
    std::vector<float> data_;
};

} // namespace create
