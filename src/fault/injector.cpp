#include "fault/injector.hpp"

namespace create {

std::int32_t
BitFlipInjector::signExtend24(std::int32_t v)
{
    const std::uint32_t masked = static_cast<std::uint32_t>(v) & 0x00FFFFFFu;
    if (masked & 0x00800000u)
        return static_cast<std::int32_t>(masked | 0xFF000000u);
    return static_cast<std::int32_t>(masked);
}

std::int32_t
BitFlipInjector::flipBit(std::int32_t acc, int bit)
{
    const std::uint32_t flipped =
        static_cast<std::uint32_t>(acc) ^ (1u << static_cast<unsigned>(bit));
    return signExtend24(static_cast<std::int32_t>(flipped));
}

InjectionStats
BitFlipInjector::inject(std::int32_t* acc, std::size_t n,
                        const std::vector<double>& bitRates, Rng& rng,
                        std::vector<std::size_t>* positionsOut)
{
    InjectionStats stats;
    for (int bit = 0; bit < kAccumulatorBits &&
                      bit < static_cast<int>(bitRates.size()); ++bit) {
        const double p = bitRates[static_cast<std::size_t>(bit)];
        if (p <= 0.0)
            continue;
        const std::uint64_t k = rng.binomial(n, p);
        if (k == 0)
            continue;
        // Positions may repeat across bits (one element can take multiple
        // flips); within one bit they are distinct, like hardware where a
        // given path either violates timing for an element or not.
        const auto positions = rng.sampleDistinct(n, k);
        for (auto idx : positions) {
            acc[idx] = flipBit(acc[idx], bit);
            if (positionsOut)
                positionsOut->push_back(static_cast<std::size_t>(idx));
        }
        stats.flips += k;
        stats.elementsTouched += k;
    }
    return stats;
}

} // namespace create
