#pragma once

/**
 * @file
 * Voltage-underscaling error models (paper Sec. 3.1, Fig. 4a).
 *
 * Two abstractions are provided, matching the paper's methodology:
 *
 *  - UniformErrorModel: every accumulator bit flips with the same
 *    probability (the BER). Used for resilience *characterization*
 *    (Sec. 4) to keep conclusions hardware-independent.
 *
 *  - TimingErrorModel: a per-bit, per-voltage flip-probability look-up
 *    table derived from a carry-chain delay model. Higher bits sit at the
 *    end of longer carry chains, so they violate timing first as voltage
 *    drops; this reproduces Fig. 4(a)'s "higher bits exhibit frequent
 *    large timing errors" pattern. Used for *evaluation* (Sec. 6) where
 *    energy is tied to an operating voltage.
 *
 * The paper extracted its LUT from a synthesized 22 nm 8-bit-multiplier /
 * 24-bit-accumulator systolic array via PrimeTime+HSPICE; we substitute a
 * parametric alpha-power-law delay model calibrated to the same qualitative
 * anchors (BER ~0 at the 0.9 V nominal, ~1e-7 at 0.85 V, ~1e-4 at 0.75 V,
 * ~1e-2 at 0.65 V). See DESIGN.md substitution #3.
 */

#include <array>
#include <vector>

namespace create {

/** Accumulator width of the modeled datapath (8x8 multiplier, 24-bit acc). */
constexpr int kAccumulatorBits = 24;

/** Interface: per-bit flip probabilities for one GEMM output element. */
class ErrorModel
{
  public:
    virtual ~ErrorModel() = default;

    /** Flip probability of accumulator bit `bit` (0 = LSB). */
    virtual double bitRate(int bit) const = 0;

    /** All per-bit rates, LSB first. */
    std::vector<double> bitRates() const;

    /** Average flip probability across bits (the scalar "BER"). */
    double meanBitRate() const;
};

/** Uniform random bit-flip model parameterized by a single BER. */
class UniformErrorModel : public ErrorModel
{
  public:
    explicit UniformErrorModel(double ber) : ber_(ber) {}
    double bitRate(int) const override { return ber_; }
    double ber() const { return ber_; }

  private:
    double ber_;
};

/**
 * Voltage-dependent per-bit timing-error model.
 *
 * Bit b's critical path has normalized delay D(b) growing with carry depth;
 * lowering VDD stretches delays by the alpha-power law
 * k(V) = (V/Vnom) * ((Vnom - Vt)/(V - Vt))^alpha. A bit whose stretched
 * delay exceeds the clock period flips with probability given by a logistic
 * in the (negative) slack, capped by an activity factor (a path only
 * produces a wrong value when its inputs toggle).
 */
class TimingErrorModel : public ErrorModel
{
  public:
    /** Model at a specific operating voltage (volts). */
    explicit TimingErrorModel(double voltage);

    double bitRate(int bit) const override;

    double voltage() const { return voltage_; }

    /** Mean BER across bits for a voltage, without building an instance. */
    static double berAtVoltage(double voltage);

    /** Nominal supply (22 nm PDK per the paper). */
    static constexpr double kNominalVoltage = 0.90;
    static constexpr double kMinVoltage = 0.60;

  private:
    double voltage_;
    std::array<double, kAccumulatorBits> rates_{};
};

} // namespace create
