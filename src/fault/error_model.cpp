#include "fault/error_model.hpp"

#include <cmath>

namespace create {

std::vector<double>
ErrorModel::bitRates() const
{
    std::vector<double> r(kAccumulatorBits);
    for (int b = 0; b < kAccumulatorBits; ++b)
        r[static_cast<std::size_t>(b)] = bitRate(b);
    return r;
}

double
ErrorModel::meanBitRate() const
{
    double s = 0.0;
    for (int b = 0; b < kAccumulatorBits; ++b)
        s += bitRate(b);
    return s / kAccumulatorBits;
}

namespace {

// Exponential skew of flips toward high (long-carry-chain) bits. With
// gamma = 0.35 the MSB carries ~30% of all flips, matching the Fig. 4(a)
// picture where high bits dominate once the voltage drops.
constexpr double kBitSkewGamma = 0.35;

// Per-bit flip probability cannot exceed this cap (a path either meets
// timing or not, but inputs only toggle part of the time).
constexpr double kActivityCap = 0.75;

double
bitWeight(int bit)
{
    return std::exp(kBitSkewGamma * static_cast<double>(bit - (kAccumulatorBits - 1)));
}

double
bitWeightSum()
{
    static const double sum = [] {
        double s = 0.0;
        for (int b = 0; b < kAccumulatorBits; ++b)
            s += bitWeight(b);
        return s;
    }();
    return sum;
}

} // namespace

TimingErrorModel::TimingErrorModel(double voltage) : voltage_(voltage)
{
    const double ber = berAtVoltage(voltage);
    const double sum = bitWeightSum();
    for (int b = 0; b < kAccumulatorBits; ++b) {
        double p = ber * kAccumulatorBits * bitWeight(b) / sum;
        if (p > kActivityCap)
            p = kActivityCap;
        rates_[static_cast<std::size_t>(b)] = p;
    }
}

double
TimingErrorModel::bitRate(int bit) const
{
    return rates_[static_cast<std::size_t>(bit)];
}

double
TimingErrorModel::berAtVoltage(double voltage)
{
    // Quadratic-in-undervolt log-BER curve anchored to the paper's regime:
    // ~1e-10 at 0.90 V (nominal; effectively error free), ~1e-7.6 at 0.85 V,
    // ~1e-4 at 0.75 V, ~1e-2 at 0.65 V. This is the swappable LUT that a
    // PrimeTime/HSPICE characterization would populate on real silicon.
    if (voltage >= kNominalVoltage)
        return 1e-10;
    const double dv = kNominalVoltage - voltage;
    const double log10Ber = -10.0 + 52.3 * dv - 82.2 * dv * dv;
    const double capped = log10Ber > -1.0 ? -1.0 : log10Ber;
    return std::pow(10.0, capped);
}

} // namespace create
