#pragma once

/**
 * @file
 * Bit-flip injector for INT32/24-bit accumulator arrays (paper Sec. 3.2).
 *
 * The injector emulates voltage-underscaling timing errors as random bit
 * flips in GEMM/conv accumulation results, exactly as the paper's dynamic
 * PyTorch-based framework does, but at the tensor-runtime level: for each
 * bit position it samples the number of affected elements from a Binomial
 * (Poisson-approximated at low BER) and flips that many uniformly chosen
 * elements. This makes injection O(flips) instead of O(elements x bits),
 * which is what makes >100-episode sweeps at BER 1e-8 tractable.
 */

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/error_model.hpp"

namespace create {

/** Statistics from one injection pass. */
struct InjectionStats
{
    std::uint64_t flips = 0;          //!< total bits flipped
    std::uint64_t elementsTouched = 0; //!< elements with >= 1 flip (approx.)
};

/** Flips bits in 24-bit accumulators according to an ErrorModel. */
class BitFlipInjector
{
  public:
    /**
     * Inject into `n` accumulators in place.
     *
     * Accumulators are stored as int32 but represent kAccumulatorBits-wide
     * two's-complement hardware registers: a flip of bit 23 changes the
     * sign, and results are sign-extended back to int32.
     */
    static InjectionStats inject(std::int32_t* acc, std::size_t n,
                                 const std::vector<double>& bitRates, Rng& rng,
                                 std::vector<std::size_t>* positionsOut =
                                     nullptr);

    /** Flip one specific bit of one accumulator (used by targeted studies). */
    static std::int32_t flipBit(std::int32_t acc, int bit);

    /** Sign-extend a 24-bit two's-complement value held in an int32. */
    static std::int32_t signExtend24(std::int32_t v);
};

} // namespace create
