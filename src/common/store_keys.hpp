#pragma once

/**
 * @file
 * The record-key grammar of the SweepRunner result store, shared by every
 * layer that names or parses store records: the sweep engine, the store
 * readers (diff/stats), and both storage backends (the JSON interchange
 * format and the binary append log, whose frame codec compresses episode
 * and lease keys through this exact grammar -- common/binlog reconstructs
 * names with these helpers, so the two formats can never disagree on what
 * a key means).
 *
 * Key forms:
 *   `sweep-store`          the store's schema record
 *   `<fingerprint>`        a ledger meta record (platform/label/task)
 *   `<fingerprint>#<i>`    episode i of the fingerprint's ledger
 *   `lease|<fingerprint>`  the ledger's elastic-worker lease record
 *   `worker|<workerId>`    a worker's range-dispatch telemetry record
 * Anything else (legacy v1 cell records, bench reports) is opaque.
 */

#include <string>

namespace create {

/**
 * Schema version written by the episode-ledger store.
 *
 * v3 adds optional per-episode observability fields (wallMs, the
 * flip-attribution counters, per-layer `L.<tag>.<field>` keys) to episode
 * records. v2 stores load losslessly -- the fields simply are not there
 * and the episode's metrics stay absent -- and any flush rewrites the
 * schema record at the current version. Older (v2-only) builds refuse v3
 * stores via the existing future-schema guard rather than stripping the
 * new fields on their next rewrite.
 */
constexpr int kSweepStoreSchema = 3;
/** Name of the store's schema record. */
constexpr const char* kSweepStoreSchemaRecord = "sweep-store";

/** Store key of one ledger episode: `<fingerprint>#<index>`. */
std::string sweepEpisodeKey(const std::string& fingerprint, int index);

/**
 * Parse an episode store key; returns the episode index and (optionally)
 * the fingerprint, or -1 when the name is not an episode key.
 */
int sweepEpisodeIndex(const std::string& recordName,
                      std::string* fingerprint = nullptr);

/**
 * Store key of a ledger's lease record: `lease|<fingerprint>`. Lease
 * records are additive v3 records -- fields {owner (string "host:pid"),
 * gen, renewedAt (unix seconds), done (0/1)} -- that coordinate elastic
 * workers; they are scheduling state, not results, so store readers
 * (diff/stats) surface them for attribution but never compare them.
 */
std::string sweepLeaseKey(const std::string& fingerprint);

/**
 * True when `recordName` is a lease record key; optionally yields the
 * fingerprint it leases.
 */
bool sweepLeaseFingerprint(const std::string& recordName,
                           std::string* fingerprint = nullptr);

/**
 * Store key of a worker's telemetry record: `worker|<workerId>`. Written
 * by the campaign coordinator per connected worker -- fields
 * {rangesAssigned, rangesCompleted, rangesRedispatched, episodes,
 * elapsed (s), rangeP50Ms, rangeP95Ms} -- purely observability: store
 * readers never fold them into cells, so campaigns with and without
 * telemetry stay `sweep-diff` bit-exact.
 */
std::string sweepWorkerKey(const std::string& workerId);

/**
 * True when `recordName` is a worker telemetry key; optionally yields
 * the worker id.
 */
bool sweepWorkerId(const std::string& recordName,
                   std::string* workerId = nullptr);

} // namespace create
