#include "common/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace create {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    // Lemire's nearly-divisionless bounded sampling; bias is negligible for
    // the ranges used here but we reject to keep draws exact.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = -n % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::rangeInclusive(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    hasSpareNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplication method.
        const double limit = std::exp(-mean);
        double prod = uniform();
        std::uint64_t k = 0;
        while (prod > limit) {
            prod *= uniform();
            ++k;
        }
        return k;
    }
    // Normal approximation with continuity correction.
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::uint64_t
Rng::binomial(std::uint64_t n, double p)
{
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    const double np = static_cast<double>(n) * p;
    if (n <= 64) {
        std::uint64_t k = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            k += chance(p) ? 1 : 0;
        return k;
    }
    if (np < 25.0) {
        // Poisson limit; accurate for the tiny BERs the injector uses.
        std::uint64_t k = poisson(np);
        return k > n ? n : k;
    }
    const double sigma = std::sqrt(np * (1.0 - p));
    const double draw = normal(np, sigma);
    if (draw < 0.0)
        return 0;
    const auto k = static_cast<std::uint64_t>(draw + 0.5);
    return k > n ? n : k;
}

std::vector<std::uint64_t>
Rng::sampleDistinct(std::uint64_t n, std::uint64_t k)
{
    std::vector<std::uint64_t> out;
    out.reserve(k);
    if (k >= n) {
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(i);
        return out;
    }
    // Rejection sampling is fine: injector draws k << n.
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
        const std::uint64_t idx = below(n);
        if (seen.insert(idx).second)
            out.push_back(idx);
    }
    return out;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA3EC647659359ACDull);
}

} // namespace create
