#include "common/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace create {

Cli::Cli(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            kv_[arg] = argv[++i];
        } else {
            kv_[arg] = "1";
        }
    }
}

bool
Cli::has(const std::string& name) const
{
    return kv_.count(name) > 0;
}

std::string
Cli::str(const std::string& name, const std::string& dflt) const
{
    auto it = kv_.find(name);
    return it == kv_.end() ? dflt : it->second;
}

std::int64_t
Cli::integer(const std::string& name, std::int64_t dflt) const
{
    auto it = kv_.find(name);
    if (it == kv_.end())
        return dflt;
    const std::string& v = it->second;
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (v.empty() || end != v.c_str() + v.size())
        fail("--" + name + ": expected an integer, got '" + v + "'");
    if (errno == ERANGE)
        fail("--" + name + ": integer out of range: '" + v + "'");
    return parsed;
}

double
Cli::real(const std::string& name, double dflt) const
{
    auto it = kv_.find(name);
    if (it == kv_.end())
        return dflt;
    const std::string& v = it->second;
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(v.c_str(), &end);
    if (v.empty() || end != v.c_str() + v.size())
        fail("--" + name + ": expected a number, got '" + v + "'");
    if (errno == ERANGE)
        fail("--" + name + ": number out of range: '" + v + "'");
    return parsed;
}

bool
Cli::flag(const std::string& name, bool dflt) const
{
    auto it = kv_.find(name);
    if (it == kv_.end())
        return dflt;
    const std::string& v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fail("--" + name + ": expected a boolean (1/true/yes/on or "
         "0/false/no/off), got '" + v + "'");
}

void
Cli::fail(const std::string& message) const
{
    if (throwOnError_)
        throw std::invalid_argument(message);
    std::fprintf(stderr, "error: %s\n", message.c_str());
    std::exit(2);
}

} // namespace create
