#include "common/cli.hpp"

#include <cstdlib>

namespace create {

Cli::Cli(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            kv_[arg] = argv[++i];
        } else {
            kv_[arg] = "1";
        }
    }
}

bool
Cli::has(const std::string& name) const
{
    return kv_.count(name) > 0;
}

std::string
Cli::str(const std::string& name, const std::string& dflt) const
{
    auto it = kv_.find(name);
    return it == kv_.end() ? dflt : it->second;
}

std::int64_t
Cli::integer(const std::string& name, std::int64_t dflt) const
{
    auto it = kv_.find(name);
    return it == kv_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 10);
}

double
Cli::real(const std::string& name, double dflt) const
{
    auto it = kv_.find(name);
    return it == kv_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
}

bool
Cli::flag(const std::string& name, bool dflt) const
{
    auto it = kv_.find(name);
    if (it == kv_.end())
        return dflt;
    return it->second != "0" && it->second != "false";
}

} // namespace create
