#pragma once

/**
 * @file
 * EINTR-safe, bounded-backoff wrappers for the store I/O syscalls.
 *
 * The campaign result store is rewritten after every flush batch, often
 * from signal-heavy environments (chaos harness, CI runners, profilers),
 * so every open/flock/rename on the store path must tolerate EINTR, and
 * transient write failures (ENOSPC racing a log rotation, EIO blips on
 * network filesystems) get a bounded exponential backoff before the
 * caller escalates to a terminal error. The wrappers never mask a real
 * failure: after the retry budget they return the failure with errno
 * intact so the caller can fail the campaign loudly instead of silently
 * dropping a flush batch.
 */

#include <cstdio>
#include <string>

namespace create::io {

/** Retry budget shared by the backoff wrappers: attempt k sleeps
 *  kRetryBaseMs << k before retrying, so 5 attempts span ~310 ms. */
constexpr int kRetryAttempts = 5;
constexpr int kRetryBaseMs = 10;

/** EINTR-safe sleep. */
void sleepMs(int ms);

/** open(2), retrying EINTR. Returns the fd, or -1 with errno set. */
int openRetry(const char* path, int flags, unsigned mode = 0644);

/** flock(2), retrying EINTR. True on success. */
bool flockRetry(int fd, int op);

/** fopen(3), retrying EINTR. */
std::FILE* fopenRetry(const char* path, const char* mode);

/**
 * rename(2) with EINTR retry plus bounded exponential backoff on any
 * other failure. On terminal failure returns false and, when `error` is
 * non-null, fills it with the errno detail.
 */
bool renameRetry(const char* from, const char* to,
                 std::string* error = nullptr);

/** Closes an fd on scope exit (and on the throw paths between locked
 *  store operations); -1 is a no-op. */
class FdCloser
{
  public:
    explicit FdCloser(int fd) : fd_(fd) {}
    FdCloser(const FdCloser&) = delete;
    FdCloser& operator=(const FdCloser&) = delete;
    ~FdCloser();

  private:
    int fd_;
};

} // namespace create::io
