#pragma once

/**
 * @file
 * EINTR-safe, bounded-backoff wrappers for the store I/O syscalls.
 *
 * The campaign result store is rewritten after every flush batch, often
 * from signal-heavy environments (chaos harness, CI runners, profilers),
 * so every open/flock/rename on the store path must tolerate EINTR, and
 * transient write failures (ENOSPC racing a log rotation, EIO blips on
 * network filesystems) get a bounded exponential backoff before the
 * caller escalates to a terminal error. The wrappers never mask a real
 * failure: after the retry budget they return the failure with errno
 * intact so the caller can fail the campaign loudly instead of silently
 * dropping a flush batch.
 *
 * The socket half (readFull/writeFull/connectRetry) extends the same
 * discipline to the campaign coordinator's wire: partial reads/writes
 * loop, EINTR never counts against the budget, EAGAIN on a blocking
 * socket (SO_RCVTIMEO/SO_SNDTIMEO) gets the bounded backoff, and a
 * give-up surfaces the errno detail loudly instead of a silent short
 * transfer.
 */

#include <cstddef>
#include <cstdio>
#include <string>

namespace create::io {

/** Retry budget shared by the backoff wrappers: attempt k sleeps
 *  kRetryBaseMs << k before retrying, so 5 attempts span ~310 ms. */
constexpr int kRetryAttempts = 5;
constexpr int kRetryBaseMs = 10;

/** EINTR-safe sleep. */
void sleepMs(int ms);

/** open(2), retrying EINTR. Returns the fd, or -1 with errno set. */
int openRetry(const char* path, int flags, unsigned mode = 0644);

/** flock(2), retrying EINTR. True on success. */
bool flockRetry(int fd, int op);

/** fopen(3), retrying EINTR. */
std::FILE* fopenRetry(const char* path, const char* mode);

/**
 * rename(2) with EINTR retry plus bounded exponential backoff on any
 * other failure. On terminal failure returns false and, when `error` is
 * non-null, fills it with the errno detail.
 */
bool renameRetry(const char* from, const char* to,
                 std::string* error = nullptr);

/**
 * read(2) exactly `n` bytes into `buf`. Partial reads loop; EINTR is
 * free; EAGAIN/EWOULDBLOCK consumes the bounded backoff budget. Returns
 * 1 when all `n` bytes landed, 0 on clean EOF *before the first byte*
 * (a peer that closed between messages), and -1 on error or a stream
 * cut mid-buffer, with the errno/short-read detail in `error`.
 */
int readFull(int fd, void* buf, std::size_t n,
             std::string* error = nullptr);

/**
 * write(2) all `n` bytes of `buf`. Partial writes loop; EINTR is free;
 * EAGAIN/EWOULDBLOCK consumes the bounded backoff budget. False on
 * give-up (EPIPE, ECONNRESET, exhausted backoff) with the errno detail
 * in `error`.
 */
bool writeFull(int fd, const void* buf, std::size_t n,
               std::string* error = nullptr);

/**
 * TCP-connect to host:port, retrying refusals/unreachables with
 * exponential backoff (base kRetryBaseMs, capped at 2 s per sleep) for
 * up to `attempts` tries — enough for a coordinator restarting
 * mid-campaign when callers raise the budget. Returns the connected fd,
 * or -1 with the resolver/errno detail in `error`.
 */
int connectRetry(const std::string& host, int port,
                 int attempts = kRetryAttempts,
                 std::string* error = nullptr);

/** Closes an fd on scope exit (and on the throw paths between locked
 *  store operations); -1 is a no-op. */
class FdCloser
{
  public:
    explicit FdCloser(int fd) : fd_(fd) {}
    FdCloser(const FdCloser&) = delete;
    FdCloser& operator=(const FdCloser&) = delete;
    ~FdCloser();

  private:
    int fd_;
};

} // namespace create::io
