#pragma once

/**
 * @file
 * CREATE_CHAOS — fault-injection layer for the sweep/store path.
 *
 * Chaos is the standing proof behind the fault-tolerance story: the
 * chaos-gate CI job runs real campaigns with these faults enabled and
 * requires the final store to stay bit-exact against a serial golden.
 * The knobs are read once from the CREATE_CHAOS environment variable,
 * a comma-separated `key=value` list:
 *
 *     CREATE_CHAOS="abort=0.05,tear=0.3,renewdelay=250"
 *
 *   abort=P       with probability P per flush, _exit(137) *before*
 *                 writing — simulates a worker dying with a flush batch
 *                 in memory (kill -9 / OOM-kill shape).
 *   tear=P        with probability P per flush, truncate the store file
 *                 to a random fraction of its size *after* the write —
 *                 simulates a torn write / partial page landing on disk.
 *                 The next reader must salvage the parseable prefix.
 *   renewdelay=MS sleep MS before each lease renewal — simulates a
 *                 straggler whose lease goes stale under load.
 *   connreset=P   with probability P per coordinator-wire send, write
 *                 only a random prefix of the buffer and drop the
 *                 connection — simulates a mid-frame TCP reset. The
 *                 peer's stream decoder must buffer the torn frame and
 *                 the campaign must heal through reconnect/re-dispatch.
 *
 * CREATE_CHAOS_SEED pins the fault RNG for reproducible runs (default
 * seeds from pid so concurrent shards draw different fault schedules).
 * All injection points are no-ops when CREATE_CHAOS is unset — the
 * rolls are never taken, so chaos-off campaigns are byte-identical to
 * a build without this layer.
 */

#include <string>

namespace create::chaos {

struct Config
{
    double abortBeforeFlush = 0.0; //!< abort=P
    double tearWrite = 0.0;        //!< tear=P
    int renewDelayMs = 0;          //!< renewdelay=MS
    double connReset = 0.0;        //!< connreset=P

    bool enabled() const
    {
        return abortBeforeFlush > 0.0 || tearWrite > 0.0 ||
               renewDelayMs > 0 || connReset > 0.0;
    }
};

/** Parses a CREATE_CHAOS spec string. Unknown keys and malformed
 *  values are ignored; probabilities are clamped to [0, 1]. */
Config parseChaosSpec(const char* spec);

/** Process-wide config, parsed once from CREATE_CHAOS. */
const Config& config();

/** If the abort fault fires, logs and _exit(137) — callers place this
 *  immediately before a store flush. */
void maybeAbortBeforeFlush();

/** True when the torn-write fault fires for this flush. */
bool shouldTearWrite();

/** Fraction of the file to keep when tearing, uniform in [0.05, 0.95]. */
double tearKeepFraction();

/** Sleeps renewdelay ms before a lease renewal (no-op when unset). */
void maybeDelayRenewal();

/** True when the connection-reset fault fires for this wire send. */
bool shouldConnReset();

/** Fraction of the send buffer to put on the wire before dropping the
 *  connection, uniform in [0, 1) — mid-frame by construction for any
 *  multi-frame batch. */
double connResetKeepFraction();

} // namespace create::chaos
