#include "common/chaos.hpp"

#include "common/io_retry.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <random>

#include <unistd.h>

namespace create::chaos {
namespace {

double parseProb(const std::string& v)
{
    char* end = nullptr;
    const double p = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || (end && *end != '\0'))
        return 0.0;
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
}

int parseMs(const std::string& v)
{
    char* end = nullptr;
    const long ms = std::strtol(v.c_str(), &end, 10);
    if (end == v.c_str() || (end && *end != '\0') || ms < 0)
        return 0;
    return ms > 60000 ? 60000 : static_cast<int>(ms);
}

std::mt19937_64& rng()
{
    static std::mt19937_64 gen = [] {
        if (const char* seed = std::getenv("CREATE_CHAOS_SEED"))
            return std::mt19937_64(std::strtoull(seed, nullptr, 10));
        // Default: per-process schedule so concurrent shards draw
        // different faults.
        return std::mt19937_64(0x9e3779b97f4a7c15ULL ^
                               static_cast<unsigned long long>(::getpid()));
    }();
    return gen;
}

std::mutex& rngMu()
{
    static std::mutex mu;
    return mu;
}

bool roll(double p)
{
    if (p <= 0.0)
        return false;
    std::lock_guard<std::mutex> lock(rngMu());
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng()) < p;
}

} // namespace

Config parseChaosSpec(const char* spec)
{
    Config cfg;
    if (!spec)
        return cfg;
    const std::string s(spec);
    std::size_t pos = 0;
    while (pos < s.size())
    {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string item = s.substr(pos, comma - pos);
        pos = comma + 1;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            continue;
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        if (key == "abort")
            cfg.abortBeforeFlush = parseProb(val);
        else if (key == "tear")
            cfg.tearWrite = parseProb(val);
        else if (key == "renewdelay")
            cfg.renewDelayMs = parseMs(val);
        else if (key == "connreset")
            cfg.connReset = parseProb(val);
    }
    return cfg;
}

const Config& config()
{
    static const Config cfg = parseChaosSpec(std::getenv("CREATE_CHAOS"));
    return cfg;
}

void maybeAbortBeforeFlush()
{
    if (!roll(config().abortBeforeFlush))
        return;
    std::fprintf(stderr,
                 "[chaos] aborting worker %d before flush (abort=%g)\n",
                 static_cast<int>(::getpid()), config().abortBeforeFlush);
    std::fflush(stderr);
    ::_exit(137);
}

bool shouldTearWrite()
{
    return roll(config().tearWrite);
}

double tearKeepFraction()
{
    std::lock_guard<std::mutex> lock(rngMu());
    return std::uniform_real_distribution<double>(0.05, 0.95)(rng());
}

void maybeDelayRenewal()
{
    const int ms = config().renewDelayMs;
    if (ms > 0)
        io::sleepMs(ms);
}

bool shouldConnReset()
{
    return roll(config().connReset);
}

double connResetKeepFraction()
{
    std::lock_guard<std::mutex> lock(rngMu());
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng());
}

} // namespace create::chaos
