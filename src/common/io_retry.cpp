#include "common/io_retry.hpp"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace create::io {

void sleepMs(int ms)
{
    if (ms <= 0)
        return;
    timespec req{};
    req.tv_sec = ms / 1000;
    req.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
    timespec rem{};
    while (::nanosleep(&req, &rem) != 0 && errno == EINTR)
        req = rem;
}

int openRetry(const char* path, int flags, unsigned mode)
{
    for (;;)
    {
        const int fd = ::open(path, flags, static_cast<mode_t>(mode));
        if (fd >= 0 || errno != EINTR)
            return fd;
    }
}

bool flockRetry(int fd, int op)
{
    if (fd < 0)
        return false;
    for (;;)
    {
        if (::flock(fd, op) == 0)
            return true;
        if (errno != EINTR)
            return false;
    }
}

std::FILE* fopenRetry(const char* path, const char* mode)
{
    for (;;)
    {
        std::FILE* f = std::fopen(path, mode);
        if (f || errno != EINTR)
            return f;
    }
}

bool renameRetry(const char* from, const char* to, std::string* error)
{
    int lastErr = 0;
    for (int attempt = 0; attempt < kRetryAttempts; ++attempt)
    {
        if (attempt > 0)
            sleepMs(kRetryBaseMs << (attempt - 1));
        if (::rename(from, to) == 0)
            return true;
        lastErr = errno;
        if (lastErr == EINTR)
        {
            --attempt; // EINTR does not consume the backoff budget
            continue;
        }
    }
    if (error)
        *error = std::string("rename: ") + std::strerror(lastErr);
    return false;
}

FdCloser::~FdCloser()
{
    if (fd_ >= 0)
        ::close(fd_);
}

} // namespace create::io
