#include "common/io_retry.hpp"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <unistd.h>

namespace create::io {

void sleepMs(int ms)
{
    if (ms <= 0)
        return;
    timespec req{};
    req.tv_sec = ms / 1000;
    req.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
    timespec rem{};
    while (::nanosleep(&req, &rem) != 0 && errno == EINTR)
        req = rem;
}

int openRetry(const char* path, int flags, unsigned mode)
{
    for (;;)
    {
        const int fd = ::open(path, flags, static_cast<mode_t>(mode));
        if (fd >= 0 || errno != EINTR)
            return fd;
    }
}

bool flockRetry(int fd, int op)
{
    if (fd < 0)
        return false;
    for (;;)
    {
        if (::flock(fd, op) == 0)
            return true;
        if (errno != EINTR)
            return false;
    }
}

std::FILE* fopenRetry(const char* path, const char* mode)
{
    for (;;)
    {
        std::FILE* f = std::fopen(path, mode);
        if (f || errno != EINTR)
            return f;
    }
}

bool renameRetry(const char* from, const char* to, std::string* error)
{
    int lastErr = 0;
    for (int attempt = 0; attempt < kRetryAttempts; ++attempt)
    {
        if (attempt > 0)
            sleepMs(kRetryBaseMs << (attempt - 1));
        if (::rename(from, to) == 0)
            return true;
        lastErr = errno;
        if (lastErr == EINTR)
        {
            --attempt; // EINTR does not consume the backoff budget
            continue;
        }
    }
    if (error)
        *error = std::string("rename: ") + std::strerror(lastErr);
    return false;
}

int readFull(int fd, void* buf, std::size_t n, std::string* error)
{
    auto* p = static_cast<char*>(buf);
    std::size_t got = 0;
    int backoff = 0;
    while (got < n)
    {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r > 0)
        {
            got += static_cast<std::size_t>(r);
            backoff = 0; // progress resets the budget
            continue;
        }
        if (r == 0)
        {
            if (got == 0)
                return 0; // clean EOF at a message boundary
            if (error)
                *error = "read: stream cut after " + std::to_string(got) +
                         " of " + std::to_string(n) + " bytes";
            return -1;
        }
        if (errno == EINTR)
            continue;
        if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
            backoff < kRetryAttempts)
        {
            sleepMs(kRetryBaseMs << backoff++);
            continue;
        }
        if (error)
            *error = std::string("read: ") + std::strerror(errno) +
                     " (after " + std::to_string(got) + " of " +
                     std::to_string(n) + " bytes)";
        return -1;
    }
    return 1;
}

bool writeFull(int fd, const void* buf, std::size_t n, std::string* error)
{
    const auto* p = static_cast<const char*>(buf);
    std::size_t sent = 0;
    int backoff = 0;
    while (sent < n)
    {
        // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not SIGPIPE.
        const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (w > 0)
        {
            sent += static_cast<std::size_t>(w);
            backoff = 0;
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
            backoff < kRetryAttempts)
        {
            sleepMs(kRetryBaseMs << backoff++);
            continue;
        }
        if (error)
            *error = std::string("write: ") + std::strerror(errno) +
                     " (after " + std::to_string(sent) + " of " +
                     std::to_string(n) + " bytes)";
        return false;
    }
    return true;
}

int connectRetry(const std::string& host, int port, int attempts,
                 std::string* error)
{
    const std::string service = std::to_string(port);
    int lastErr = 0;
    std::string detail;
    for (int attempt = 0; attempt < attempts; ++attempt)
    {
        if (attempt > 0)
        {
            int ms = kRetryBaseMs << (attempt - 1 > 10 ? 10 : attempt - 1);
            if (ms > 2000)
                ms = 2000; // cap per-sleep so long budgets stay responsive
            sleepMs(ms);
        }
        addrinfo hints{};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* res = nullptr;
        const int gai = ::getaddrinfo(host.c_str(), service.c_str(),
                                      &hints, &res);
        if (gai != 0)
        {
            detail = std::string("resolve ") + host + ": " +
                     ::gai_strerror(gai);
            continue; // transient DNS blips retry too
        }
        for (addrinfo* ai = res; ai; ai = ai->ai_next)
        {
            const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                                    ai->ai_protocol);
            if (fd < 0)
            {
                lastErr = errno;
                continue;
            }
            int rc;
            do
                rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
            while (rc != 0 && errno == EINTR);
            if (rc == 0)
            {
                const int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
                ::freeaddrinfo(res);
                return fd;
            }
            lastErr = errno;
            ::close(fd);
        }
        ::freeaddrinfo(res);
        detail = "connect " + host + ":" + service + ": " +
                 std::strerror(lastErr);
    }
    if (error)
        *error = detail + " (gave up after " + std::to_string(attempts) +
                 " attempts)";
    return -1;
}

FdCloser::~FdCloser()
{
    if (fd_ >= 0)
        ::close(fd_);
}

} // namespace create::io
