#include "common/table.hpp"

#include <cstdio>
#include <fstream>

namespace create {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
Table::print() const
{
    std::printf("\n== %s ==\n", title_.c_str());
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string>& cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto& r : rows_)
        grow(r);

    auto printRow = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
        std::printf("\n");
    };
    if (!header_.empty()) {
        printRow(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
    }
    for (const auto& r : rows_)
        printRow(r);
}

void
Table::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return;
    auto writeRow = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out << ',';
            out << cells[i];
        }
        out << '\n';
    };
    if (!header_.empty())
        writeRow(header_);
    for (const auto& r : rows_)
        writeRow(r);
}

} // namespace create
