#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation for the whole repository.
 *
 * Every stochastic component (error injection, environment dynamics, weight
 * init, policy search) takes an explicit Rng so experiments are reproducible
 * bit-for-bit given a seed. The generator is xoshiro256** seeded through
 * splitmix64, which is fast and has no observable correlations at the sample
 * counts this project draws.
 */

#include <cstdint>
#include <vector>

namespace create {

/** Counter-based deterministic RNG (xoshiro256** with splitmix64 seeding). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t rangeInclusive(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean / stddev. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with success probability p. */
    bool chance(double p);

    /**
     * Number of successes out of n trials with probability p.
     *
     * Uses exact per-trial draws for small n, a Poisson approximation when
     * n*p is small, and a normal approximation otherwise; this is the hot
     * path of the fault injector where n is (elements x bits) and p is a
     * bit error rate as low as 1e-10.
     */
    std::uint64_t binomial(std::uint64_t n, double p);

    /** Poisson draw with the given mean (Knuth for small, normal approx for large). */
    std::uint64_t poisson(double mean);

    /** Sample k distinct indices from [0, n). k must be <= n. */
    std::vector<std::uint64_t> sampleDistinct(std::uint64_t n, std::uint64_t k);

    /** Derive an independent child stream (for parallel-safe substreams). */
    Rng split();

  private:
    std::uint64_t s_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace create
