#pragma once

/**
 * @file
 * MetricsRegistry: cheap thread-local observability counters for the
 * inference hot path, drained per episode into the campaign result
 * pipeline (EpisodeRecord, store schema v3, sweep-stats).
 *
 * Design rules, in priority order:
 *
 *  1. Counters observe, never branch. Nothing here may change a numeric
 *     result, consume an RNG draw, or reorder a floating-point sum: the
 *     whole result pipeline is bit-identity-tested (metrics on vs. off
 *     must produce byte-identical TaskStats), so every recorder is a pure
 *     reader of state the hot path already computed.
 *  2. Thread-local, no synchronization on the hot path. Every episode
 *     runs on exactly one thread (ComputeContexts are never shared), so
 *     the per-episode section is a plain thread_local block bracketed by
 *     beginEpisode()/endEpisode() around each runEpisode() call; the only
 *     cross-thread state is the process-global BatchedInferenceQueue
 *     tally block (atomics, bumped at group granularity, not per GEMM).
 *  3. Mergeable. EpisodeMetrics += EpisodeMetrics is a lossless union
 *     (counter sums, per-layer tables merged by tag), so per-episode
 *     records collected by N ParallelEvaluator workers roll up into
 *     campaign totals in any order.
 *
 * The per-layer fault attribution quadruple is:
 *   injected  - bits the injector actually flipped in the accumulators,
 *   detected  - output elements flagged by a mechanism (AD clamp, DMR
 *               mismatch, ThunderVolt bypass, ABFT checksum hit),
 *   corrected - corrupted outputs restored to the clean product by the
 *               pipeline (net of any it newly corrupted),
 *   escaped   - final outputs that left the layer differing from the
 *               clean product (what the next layer actually sees).
 * AD's clamp-to-zero is detection + mitigation, not correction: a clamped
 * corrupted output whose clean value was nonzero stays "escaped", which
 * is exactly the paper's error-clearance (not error-correction) framing.
 *
 * Registry collection defaults on and can be disabled globally with
 * setEnabled(false) or CREATE_METRICS=0 (checked once, at first use).
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace create {

/** Fault attribution of one model layer (keyed by its component tag). */
struct LayerFaultCounters
{
    std::uint64_t gemms = 0;        //!< faultyLinear calls through the layer
    std::uint64_t injected = 0;     //!< bits flipped by the injector
    std::uint64_t detected = 0;     //!< outputs flagged by AD / protection
    std::uint64_t corrected = 0;    //!< corrupted outputs restored to clean
    std::uint64_t escaped = 0;      //!< corrupted outputs leaving the layer
    std::uint64_t reExecutions = 0; //!< protection-triggered extra GEMMs

    /** Any fault activity at all (gemms alone does not count). */
    bool any() const
    {
        return (injected | detected | corrected | escaped | reExecutions) !=
               0;
    }

    LayerFaultCounters& operator+=(const LayerFaultCounters& o)
    {
        gemms += o.gemms;
        injected += o.injected;
        detected += o.detected;
        corrected += o.corrected;
        escaped += o.escaped;
        reExecutions += o.reExecutions;
        return *this;
    }
};

/**
 * One episode's drained observability payload: the optional (schema v3)
 * extension of EpisodeRecord. `present` is false when the registry was
 * disabled -- everything else is then zero and no store fields are
 * written, which is how v3 code reads v2 stores losslessly.
 */
struct EpisodeMetrics
{
    bool present = false;
    double wallMs = 0.0; //!< wall time of the episode (informational; the
                         //!< only nondeterministic field in the record)
    std::uint64_t gemms = 0;
    std::uint64_t flipsInjected = 0;
    std::uint64_t flipsDetected = 0;
    std::uint64_t flipsCorrected = 0;
    std::uint64_t flipsEscaped = 0;
    std::uint64_t reExecutions = 0;
    /** Per-layer attribution, sorted by tag; only layers with any(). */
    std::vector<std::pair<std::string, LayerFaultCounters>> layers;

    /** Lossless merge (episode -> cell -> campaign rollups). */
    EpisodeMetrics& operator+=(const EpisodeMetrics& o);

    /** The named layer's counters, or nullptr. */
    const LayerFaultCounters* layer(const std::string& tag) const;
};

/**
 * Name -> member table of EpisodeMetrics' deterministic counters, shared
 * by the store writer/reader, sweep-diff, and sweep-stats so a new
 * counter only needs a row here (kTaskStatFields-style). wallMs is
 * deliberately absent: it is the one nondeterministic field and must
 * never enter a drift gate.
 */
inline constexpr std::pair<const char*, std::uint64_t EpisodeMetrics::*>
    kEpisodeMetricFields[] = {
        {"gemmCalls", &EpisodeMetrics::gemms},
        {"flipsInjected", &EpisodeMetrics::flipsInjected},
        {"flipsDetected", &EpisodeMetrics::flipsDetected},
        {"flipsCorrected", &EpisodeMetrics::flipsCorrected},
        {"flipsEscaped", &EpisodeMetrics::flipsEscaped},
        {"reExecutions", &EpisodeMetrics::reExecutions},
};

/** Same for the per-layer quadruple (store keys: `L.<tag>.<name>`). */
inline constexpr std::pair<const char*, std::uint64_t LayerFaultCounters::*>
    kLayerFaultFields[] = {
        {"gemms", &LayerFaultCounters::gemms},
        {"inj", &LayerFaultCounters::injected},
        {"det", &LayerFaultCounters::detected},
        {"cor", &LayerFaultCounters::corrected},
        {"esc", &LayerFaultCounters::escaped},
        {"reexec", &LayerFaultCounters::reExecutions},
};

/** Store-key prefix of the per-layer attribution fields. */
inline constexpr const char* kLayerFieldPrefix = "L.";

/** Process-global BatchedInferenceQueue tallies (all queues summed). */
struct QueueTallies
{
    std::uint64_t requests = 0;       //!< GEMMs submitted through a queue
    std::uint64_t groups = 0;         //!< fused kernel calls issued
    std::uint64_t windowExpiries = 0; //!< groups flushed by window timeout
    std::uint64_t inlineRuns = 0;     //!< <=1-worker inline bypasses
};

/** Thread-local observability counters (see file comment). */
class MetricsRegistry
{
  public:
    /** This thread's registry. */
    static MetricsRegistry& tls();

    /**
     * Global collection switch (default on; CREATE_METRICS=0 disables).
     * Hot-path recorders are no-ops while disabled, and drained episodes
     * report present=false. Flipping it never changes any result -- only
     * whether the observability payload exists.
     */
    static bool enabled();
    static void setEnabled(bool on);

    // --- per-episode section (this thread only) -------------------------

    /** Clear the episode block; call right before runEpisode(). */
    void beginEpisode();

    /**
     * Drain the episode block collected since beginEpisode() into a
     * mergeable record. `wallMs` is measured by the caller (the episode
     * runner brackets the runEpisode() call). present=false when the
     * registry is disabled.
     */
    EpisodeMetrics endEpisode(double wallMs);

    /** One faultyLinear call through `tag` (frozen path only). */
    void recordGemm(const std::string& tag);

    /** Fault attribution of one faultyLinear call (adds onto `tag`). */
    void recordFault(const std::string& tag, const LayerFaultCounters& c);

    // --- process-global queue tallies -----------------------------------

    static void recordQueueRequest();
    static void recordQueueGroup(bool windowExpired);
    static void recordQueueInline();
    static QueueTallies queueTallies();
    static void resetQueueTallies();

  private:
    std::map<std::string, LayerFaultCounters> layers_;
    std::uint64_t gemms_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t detected_ = 0;
    std::uint64_t corrected_ = 0;
    std::uint64_t escaped_ = 0;
    std::uint64_t reExecutions_ = 0;
};

} // namespace create
