#pragma once

/**
 * @file
 * Minimal binary serialization used to cache trained model weights, plus
 * the flat JSON record format shared by the bench --json reports and the
 * SweepRunner result store.
 *
 * Binary format: little-endian stream of records. Each record is
 *   [u32 name_len][name bytes][u32 ndims][u64 dims...][f32 data...]
 * preceded by a file magic. Readers load the whole archive into a map.
 *
 * JSON format: an array of flat objects, each `{"name": "...", <string
 * fields>, <numeric fields>}`. Numbers are written with %.17g so a
 * write/read round trip reproduces every double bit-exactly -- the
 * SweepRunner episode-ledger store depends on that: a resumed or
 * prefix-sliced cell's stats are re-folded from round-tripped episode
 * records and must match the original fold bit-for-bit.
 */

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace create {

/** A named FP32 blob with shape, the unit of model serialization. */
struct NamedBlob
{
    std::vector<std::uint64_t> dims;
    std::vector<float> data;
};

/** In-memory archive of named blobs, loadable/saveable as one file. */
class BlobArchive
{
  public:
    /** Add or replace a blob. */
    void put(const std::string& name, std::vector<std::uint64_t> dims,
             std::vector<float> data);

    /** Whether a blob with this name exists. */
    bool has(const std::string& name) const;

    /** Fetch a blob; throws std::out_of_range if missing. */
    const NamedBlob& get(const std::string& name) const;

    /** Write archive to disk. Returns false on I/O failure. */
    bool save(const std::string& path) const;

    /** Read archive from disk. Returns false if missing or corrupt. */
    bool load(const std::string& path);

    std::size_t size() const { return blobs_.size(); }
    const std::map<std::string, NamedBlob>& all() const { return blobs_; }

  private:
    std::map<std::string, NamedBlob> blobs_;
};

/** One flat JSON record: a name plus string and numeric fields. */
struct JsonRecord
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> strings;
    std::vector<std::pair<std::string, double>> numbers;

    /** First numeric field with this key, or `dflt` when absent. */
    double number(const std::string& key, double dflt = 0.0) const;

    /** First string field with this key, or `dflt` when absent. */
    std::string text(const std::string& key,
                     const std::string& dflt = "") const;
};

/**
 * Write records as a JSON array. Returns false on I/O failure; when
 * `error` is non-null it receives the failing step with errno detail
 * (open/write/rename), so the campaign layer can fail loudly instead of
 * silently dropping a flush batch on ENOSPC.
 */
bool writeJsonRecords(const std::string& path,
                      const std::vector<JsonRecord>& records,
                      std::string* error = nullptr);

/**
 * Same, from a name-keyed map (records written in key order). Lets the
 * SweepRunner store flush its record index without materializing an
 * O(store) vector copy per flush.
 */
bool writeJsonRecords(const std::string& path,
                      const std::map<std::string, JsonRecord>& records,
                      std::string* error = nullptr);

/**
 * Parse a file written by writeJsonRecords (an array of flat objects with
 * string/number values). Returns false when the file is missing or
 * malformed; `out` is cleared either way.
 */
bool readJsonRecords(const std::string& path, std::vector<JsonRecord>& out);

/** Outcome of a salvaged read (readJsonRecordsSalvaged). */
struct JsonSalvage
{
    bool salvaged = false;      //!< parse error hit; `out` holds the prefix
    std::size_t goodBytes = 0;  //!< bytes consumed by the parseable prefix
    std::size_t totalBytes = 0; //!< file size in bytes
};

/**
 * Like readJsonRecords, but a truncated or corrupted file yields the
 * longest parseable prefix of records instead of nothing: a store torn
 * mid-write (power loss, full disk, injected chaos) keeps every episode
 * that landed intact. Returns false only when the file cannot be opened;
 * `info` (optional) reports whether salvage kicked in and where the
 * parseable prefix ends, so callers can quarantine the bad tail.
 */
bool readJsonRecordsSalvaged(const std::string& path,
                             std::vector<JsonRecord>& out,
                             JsonSalvage* info = nullptr);

/**
 * Copy bytes [offset, end) of `path` into `path + ".quarantine"`
 * (replacing any previous quarantine) so a salvaged store's bad tail is
 * preserved for post-mortem instead of vanishing on the next rewrite.
 * Returns the quarantine path, or empty on failure / empty tail.
 */
std::string quarantineTail(const std::string& path, std::size_t offset);

} // namespace create
