#pragma once

/**
 * @file
 * Minimal binary serialization used to cache trained model weights.
 *
 * Format: little-endian stream of records. Each record is
 *   [u32 name_len][name bytes][u32 ndims][u64 dims...][f32 data...]
 * preceded by a file magic. Readers load the whole archive into a map.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace create {

/** A named FP32 blob with shape, the unit of model serialization. */
struct NamedBlob
{
    std::vector<std::uint64_t> dims;
    std::vector<float> data;
};

/** In-memory archive of named blobs, loadable/saveable as one file. */
class BlobArchive
{
  public:
    /** Add or replace a blob. */
    void put(const std::string& name, std::vector<std::uint64_t> dims,
             std::vector<float> data);

    /** Whether a blob with this name exists. */
    bool has(const std::string& name) const;

    /** Fetch a blob; throws std::out_of_range if missing. */
    const NamedBlob& get(const std::string& name) const;

    /** Write archive to disk. Returns false on I/O failure. */
    bool save(const std::string& path) const;

    /** Read archive from disk. Returns false if missing or corrupt. */
    bool load(const std::string& path);

    std::size_t size() const { return blobs_.size(); }
    const std::map<std::string, NamedBlob>& all() const { return blobs_; }

  private:
    std::map<std::string, NamedBlob> blobs_;
};

} // namespace create
