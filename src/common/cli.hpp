#pragma once

/**
 * @file
 * Tiny command-line flag parser shared by benches and examples.
 *
 * Supports "--name value" and "--name=value". Unrecognized flags are kept so
 * google-benchmark binaries can pass their own flags through.
 */

#include <cstdint>
#include <map>
#include <string>

namespace create {

/** Parsed command-line flags with typed accessors and defaults. */
class Cli
{
  public:
    Cli(int argc, char** argv);

    bool has(const std::string& name) const;
    std::string str(const std::string& name, const std::string& dflt) const;
    std::int64_t integer(const std::string& name, std::int64_t dflt) const;
    double real(const std::string& name, double dflt) const;
    bool flag(const std::string& name, bool dflt = false) const;

  private:
    std::map<std::string, std::string> kv_;
};

} // namespace create
