#pragma once

/**
 * @file
 * Tiny command-line flag parser shared by benches and examples.
 *
 * Supports "--name value" and "--name=value". Unrecognized flags are kept so
 * google-benchmark binaries can pass their own flags through. Typed
 * accessors validate their value: a flag that is present but does not parse
 * as the requested type is an error (printed to stderr with exit(2) by
 * default, or thrown as std::invalid_argument in throw mode) instead of
 * silently becoming 0 -- `--reps=abc` used to zero out a whole sweep.
 */

#include <cstdint>
#include <map>
#include <string>

namespace create {

/** Parsed command-line flags with typed accessors and defaults. */
class Cli
{
  public:
    Cli(int argc, char** argv);

    bool has(const std::string& name) const;
    std::string str(const std::string& name, const std::string& dflt) const;

    /** Integer flag; the whole value must parse (e.g. "12abc" is an error). */
    std::int64_t integer(const std::string& name, std::int64_t dflt) const;

    /** Real flag; the whole value must parse. */
    double real(const std::string& name, double dflt) const;

    /**
     * Boolean flag. A bare "--x" is true; explicit values accept
     * 1/true/yes/on and 0/false/no/off (anything else is an error).
     */
    bool flag(const std::string& name, bool dflt = false) const;

    /**
     * In throw mode malformed values raise std::invalid_argument instead
     * of exiting; used by tests and library-style callers.
     */
    void setThrowOnError(bool enable) { throwOnError_ = enable; }

  private:
    /** Report a malformed flag value: exit(2) or throw (see above). */
    [[noreturn]] void fail(const std::string& message) const;

    std::map<std::string, std::string> kv_;
    bool throwOnError_ = false;
};

} // namespace create
