#pragma once

/**
 * @file
 * Paper-style table / series printing for the benchmark harness.
 *
 * Every bench binary regenerates one table or figure from the paper; this
 * helper keeps their textual output uniform (aligned columns, a title line
 * naming the paper artifact, optional CSV dump for plotting).
 */

#include <string>
#include <vector>

namespace create {

/** Column-aligned table with a title, printed to stdout (and optionally CSV). */
class Table
{
  public:
    explicit Table(std::string title);

    /** Set the header row. */
    void header(std::vector<std::string> cols);

    /** Append a row of preformatted cells. */
    void row(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format as percentage, e.g. 0.423 -> "42.3%". */
    static std::string pct(double fraction, int precision = 1);

    /** Print aligned to stdout. */
    void print() const;

    /** Dump as CSV to the given path (best-effort). */
    void writeCsv(const std::string& path) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace create
