#include "common/store_keys.hpp"

#include <cctype>
#include <limits>

namespace create {

namespace {
constexpr const char* kLeasePrefix = "lease|";
constexpr const char* kWorkerPrefix = "worker|";
} // namespace

std::string
sweepEpisodeKey(const std::string& fingerprint, int index)
{
    return fingerprint + "#" + std::to_string(index);
}

int
sweepEpisodeIndex(const std::string& recordName, std::string* fingerprint)
{
    const std::size_t hash = recordName.rfind('#');
    if (hash == std::string::npos || hash + 1 >= recordName.size())
        return -1;
    long long index = 0;
    for (std::size_t i = hash + 1; i < recordName.size(); ++i) {
        const char c = recordName[i];
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return -1;
        index = index * 10 + (c - '0');
        // A hand-edited/corrupt store must not overflow into a bogus
        // valid-looking index (or signed-overflow UB).
        if (index > std::numeric_limits<int>::max())
            return -1;
    }
    if (fingerprint)
        *fingerprint = recordName.substr(0, hash);
    return static_cast<int>(index);
}

std::string
sweepLeaseKey(const std::string& fingerprint)
{
    return kLeasePrefix + fingerprint;
}

bool
sweepLeaseFingerprint(const std::string& recordName, std::string* fingerprint)
{
    const std::size_t n = std::char_traits<char>::length(kLeasePrefix);
    if (recordName.compare(0, n, kLeasePrefix) != 0 || recordName.size() == n)
        return false;
    if (fingerprint)
        *fingerprint = recordName.substr(n);
    return true;
}

std::string
sweepWorkerKey(const std::string& workerId)
{
    return kWorkerPrefix + workerId;
}

bool
sweepWorkerId(const std::string& recordName, std::string* workerId)
{
    const std::size_t n = std::char_traits<char>::length(kWorkerPrefix);
    if (recordName.compare(0, n, kWorkerPrefix) != 0 ||
        recordName.size() == n)
        return false;
    if (workerId)
        *workerId = recordName.substr(n);
    return true;
}

} // namespace create
