#pragma once

/**
 * @file
 * The binary append-log record codec behind the `binlog` store format:
 * the O(batch) counterpart of the rewrite-the-whole-file JSON store.
 *
 * One log file is
 *
 *   [u32 magic "CRBL"][u32 version]
 *   frame*
 *
 * and one frame is
 *
 *   [u8 type][u32 payloadLen][u32 crc32][payload]
 *
 * with the CRC taken over the type byte followed by the payload, so a
 * frame whose header or body was torn or bit-flipped never decodes. All
 * integers are little-endian; doubles travel as their raw IEEE-754 bits,
 * so a JSON round trip through the %.17g interchange format and a binlog
 * round trip reproduce bit-identical records -- the episode-ledger
 * store's resume/diff machinery depends on that.
 *
 * Frame types (payload layouts; varstr = [u32 len][bytes]):
 *   FpDef   [u32 fpId][fp bytes...]        define a fingerprint id
 *   Record  [varstr name][body]            record with an opaque name
 *   Episode [u32 fpId][u32 index][body]    record named `<fp>#<index>`
 *   Lease   [u32 fpId][body]               record named `lease|<fp>`
 *   Meta    [u32 fpId][body]               record named `<fp>`
 *   Index   [u32 n]([u32 fpId][varstr fp])*n   periodic full dictionary
 * body = [u32 nStrings]([varstr key][varstr val])*
 *        [u32 nNumbers]([varstr key][u64 doubleBits])*
 *
 * Episode/lease/meta keys dominate a campaign store and all embed the
 * ~100-byte cell fingerprint, so frames carry a u32 dictionary id
 * instead; names are reconstructed through common/store_keys, the same
 * grammar the JSON readers parse. Writers emit an FpDef lazily before a
 * fingerprint's first use and re-emit the full dictionary as an Index
 * frame every kIndexEvery records (decode is strictly sequential either
 * way; the index blocks serve `sweep-store inspect` and future partial
 * readers). A definition overrides its id from that point of the stream
 * on, so appenders restarting after a truncation just start a fresh
 * dictionary.
 *
 * Torn-tail salvage mirrors readJsonRecordsSalvaged: the reader decodes
 * the longest valid frame prefix and reports where it ended, so callers
 * keep every record that landed intact and quarantine only the bad
 * suffix. The writer itself re-validates the tail before each commit
 * (cheap stat) and, after an external truncation (chaos tear, a crashed
 * sibling's partial write), truncates back to the last good frame
 * boundary so later appends never strand good frames behind a bad one.
 */

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace create::binlog {

/** File magic: the bytes "CRBL" (read as LE u32 on x86). */
constexpr std::uint32_t kFileMagic = 0x4C425243u;
constexpr std::uint32_t kFileVersion = 1;
/** Bytes of [magic][version]. */
constexpr std::size_t kHeaderBytes = 8;
/** Records between periodic full-dictionary Index frames. */
constexpr int kIndexEvery = 256;
/** Sanity cap on one frame's payload (a torn length field must not
 *  trigger a multi-GB allocation). */
constexpr std::uint32_t kMaxPayload = 1u << 28;

/** CRC-32 (IEEE 802.3, poly 0xEDB88320, bit-reflected). */
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/** True when `path` is a regular file starting with the binlog magic. */
bool isBinlogFile(const std::string& path);

/** Outcome of a salvaged log read (the JsonSalvage of the binary side). */
struct LogSalvage
{
    bool salvaged = false;       //!< bad frame hit; `out` holds the prefix
    std::uint64_t goodBytes = 0; //!< bytes of the valid frame prefix
    std::uint64_t totalBytes = 0;
    std::size_t frames = 0;      //!< valid frames decoded (all types)
    std::size_t records = 0;     //!< record-bearing frames decoded
    std::size_t indexBlocks = 0; //!< Index frames seen
    std::size_t fingerprints = 0; //!< dictionary size at end of prefix
};

/**
 * Decode every record of one log in frame order (duplicate keys are
 * preserved: compaction policy belongs to the caller). A torn or
 * corrupted file yields the longest valid frame prefix; `info`
 * (optional) reports whether salvage kicked in and where the prefix
 * ends. Returns false only when the file cannot be opened or does not
 * start with the binlog magic.
 */
bool readLogRecords(const std::string& path, std::vector<JsonRecord>& out,
                    LogSalvage* info = nullptr);

/**
 * Record -> frame encoder: the write half of the codec, factored out of
 * the file writer so the byte stream can target anything -- a log file's
 * staging buffer or a socket's send buffer (the campaign coordinator's
 * wire protocol *is* this format; a capture of either direction is a
 * valid .crbl file). Owns the fingerprint dictionary: FpDef frames are
 * emitted lazily before a fingerprint's first use and the full
 * dictionary is re-emitted as an Index frame every kIndexEvery records.
 * reset() drops the dictionary (after a truncation or a reconnect --
 * definitions override from their point in the stream, so a fresh
 * dictionary is always valid).
 */
class FrameEncoder
{
  public:
    /** The [magic][version] file/stream header (kHeaderBytes). */
    static void encodeHeader(std::string& out);

    /** Append one record's frames (lazy FpDef / periodic Index included)
     *  to `out`. */
    void encodeRecord(const JsonRecord& rec, std::string& out);

    /** Forget the dictionary; the next record re-defines from scratch. */
    void reset();

    std::size_t dictSize() const { return dict_.size(); }

  private:
    std::uint32_t fpId(const std::string& fingerprint, std::string& out);

    std::vector<std::pair<std::string, std::uint32_t>> dict_; //!< fp -> id
    std::uint32_t nextId_ = 0;
    int sinceIndex_ = 0; //!< records since the last Index frame
};

/**
 * Incremental frame -> record decoder: the read half of the codec for
 * byte streams that arrive in arbitrary chunks (socket reads, 1-byte
 * drips). Frames are self-delimiting ([type][len][crc]), so a partial
 * trailing frame simply buffers until the rest arrives -- feed() never
 * mis-decodes across a chunk boundary, and a stream cut mid-frame
 * yields exactly the records of the complete-frame prefix. The decoder
 * fails permanently (failed()) on real corruption: foreign magic, an
 * impossible length, a CRC mismatch, or a structurally invalid payload.
 *
 * consumed() is the decoded frame-boundary offset -- the same boundary
 * readLogRecords salvages to, since the file readers are built on this
 * class.
 */
class StreamDecoder
{
  public:
    /**
     * Feed a chunk; complete frames decode immediately (drain with
     * pop()), a trailing partial frame buffers. Returns false once the
     * stream has failed -- further bytes are discarded.
     */
    bool feed(const char* data, std::size_t n);
    bool feed(const std::string& chunk)
    {
        return feed(chunk.data(), chunk.size());
    }

    /** Pop the next decoded record (FIFO). False when none is pending. */
    bool pop(JsonRecord& rec);

    bool failed() const { return failed_; }
    /** Failed specifically on a missing/foreign [magic][version]. */
    bool badHeader() const { return badHeader_; }
    /** The 8-byte stream header has been consumed and validated. */
    bool headerSeen() const { return headerSeen_; }

    /** Bytes decoded to a frame boundary (header included). */
    std::uint64_t consumed() const { return consumed_; }
    /** Bytes buffered past the boundary (a partial trailing frame). */
    std::size_t buffered() const { return buf_.size(); }

    std::size_t frames() const { return frames_; }
    std::size_t records() const { return records_; }
    std::size_t indexBlocks() const { return indexBlocks_; }
    std::size_t fingerprints() const { return dict_.size(); }

    /** Back to a fresh stream (expecting a header again). */
    void reset();

  private:
    std::size_t drain(const char* p, std::size_t n);

    std::string buf_; //!< bytes past the last decoded frame boundary
    std::map<std::uint32_t, std::string> dict_;
    std::deque<JsonRecord> out_;
    std::uint64_t consumed_ = 0;
    std::size_t frames_ = 0;
    std::size_t records_ = 0;
    std::size_t indexBlocks_ = 0;
    bool headerSeen_ = false;
    bool failed_ = false;
    bool badHeader_ = false;
};

/**
 * Append-side of one log file. Opening an existing log validates its
 * frame prefix first and truncates a torn tail (quarantined via
 * quarantineTail) so appends always start on a frame boundary. append()
 * buffers frames in memory; commit() lands the whole batch with one
 * write + flush and, on failure, truncates back to the pre-batch
 * boundary so a retry starts clean.
 */
class LogWriter
{
  public:
    LogWriter() = default;
    LogWriter(const LogWriter&) = delete;
    LogWriter& operator=(const LogWriter&) = delete;
    ~LogWriter();

    /** Open (create or append). False on I/O failure or foreign magic. */
    bool open(const std::string& path, std::string* error);

    bool isOpen() const { return f_ != nullptr; }
    const std::string& path() const { return path_; }

    /** Frame-boundary offset appends will land at. */
    std::uint64_t offset() const { return offset_; }

    /**
     * Detect the file changing underneath us (chaos tear, an external
     * truncate) by comparing the on-disk size with the offset of our
     * last commit. When they disagree, re-salvage: quarantine the bad
     * tail, truncate to the last good frame boundary, and reset the
     * dictionary. `*healed` is set true in that case -- records the
     * caller appended before the cut may be gone, so it should re-append
     * its full view once to heal the log. False on I/O failure.
     */
    bool checkTail(bool* healed, std::string* error);

    /** Buffer one record (with its lazy FpDef / periodic Index frames). */
    void append(const JsonRecord& rec);

    /** Write buffered frames; one fwrite + fflush. False on failure
     *  (file truncated back to the pre-batch boundary; retry-safe). */
    bool commit(std::string* error);

    void close();

  private:
    std::FILE* f_ = nullptr;
    std::string path_;
    std::uint64_t offset_ = 0; //!< durable frame boundary (last commit)
    std::string buf_;          //!< frames staged since the last commit
    FrameEncoder enc_;
};

} // namespace create::binlog
