#include "common/serialize.hpp"

#include "common/io_retry.hpp"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace create {

namespace {
constexpr std::uint32_t kMagic = 0x43524541; // "CREA"
constexpr std::uint32_t kVersion = 1;
} // namespace

void
BlobArchive::put(const std::string& name, std::vector<std::uint64_t> dims,
                 std::vector<float> data)
{
    std::uint64_t n = 1;
    for (auto d : dims)
        n *= d;
    if (n != data.size())
        throw std::invalid_argument("BlobArchive::put: dims do not match data size");
    blobs_[name] = NamedBlob{std::move(dims), std::move(data)};
}

bool
BlobArchive::has(const std::string& name) const
{
    return blobs_.count(name) > 0;
}

const NamedBlob&
BlobArchive::get(const std::string& name) const
{
    auto it = blobs_.find(name);
    if (it == blobs_.end())
        throw std::out_of_range("BlobArchive: missing blob " + name);
    return it->second;
}

bool
BlobArchive::save(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    auto writeU32 = [&](std::uint32_t v) { std::fwrite(&v, sizeof(v), 1, f); };
    auto writeU64 = [&](std::uint64_t v) { std::fwrite(&v, sizeof(v), 1, f); };
    writeU32(kMagic);
    writeU32(kVersion);
    writeU64(blobs_.size());
    for (const auto& [name, blob] : blobs_) {
        writeU32(static_cast<std::uint32_t>(name.size()));
        std::fwrite(name.data(), 1, name.size(), f);
        writeU32(static_cast<std::uint32_t>(blob.dims.size()));
        for (auto d : blob.dims)
            writeU64(d);
        std::fwrite(blob.data.data(), sizeof(float), blob.data.size(), f);
    }
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

bool
BlobArchive::load(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    auto fail = [&] {
        std::fclose(f);
        blobs_.clear();
        return false;
    };
    auto readU32 = [&](std::uint32_t& v) {
        return std::fread(&v, sizeof(v), 1, f) == 1;
    };
    auto readU64 = [&](std::uint64_t& v) {
        return std::fread(&v, sizeof(v), 1, f) == 1;
    };
    std::uint32_t magic = 0, version = 0;
    if (!readU32(magic) || magic != kMagic || !readU32(version) || version != kVersion)
        return fail();
    std::uint64_t count = 0;
    if (!readU64(count))
        return fail();
    blobs_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint32_t nameLen = 0;
        if (!readU32(nameLen) || nameLen > (1u << 20))
            return fail();
        std::string name(nameLen, '\0');
        if (std::fread(name.data(), 1, nameLen, f) != nameLen)
            return fail();
        std::uint32_t ndims = 0;
        if (!readU32(ndims) || ndims > 16)
            return fail();
        NamedBlob blob;
        std::uint64_t n = 1;
        blob.dims.resize(ndims);
        for (auto& d : blob.dims) {
            if (!readU64(d))
                return fail();
            n *= d;
        }
        if (n > (1ull << 32))
            return fail();
        blob.data.resize(n);
        if (std::fread(blob.data.data(), sizeof(float), n, f) != n)
            return fail();
        blobs_[name] = std::move(blob);
    }
    std::fclose(f);
    return true;
}

double
JsonRecord::number(const std::string& key, double dflt) const
{
    for (const auto& [k, v] : numbers)
        if (k == key)
            return v;
    return dflt;
}

std::string
JsonRecord::text(const std::string& key, const std::string& dflt) const
{
    for (const auto& [k, v] : strings)
        if (k == key)
            return v;
    return dflt;
}

namespace {

std::string
jsonEscaped(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Cursor over the restricted JSON grammar the writer emits. */
struct JsonCursor
{
    const std::string& text;
    std::size_t pos = 0;

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool accept(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool parseString(std::string& out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return false;
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    return false;
                c = text[pos++];
            }
            out.push_back(c);
        }
        if (pos >= text.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool parseNumber(double& out)
    {
        skipWs();
        const char* start = text.c_str() + pos;
        char* end = nullptr;
        out = std::strtod(start, &end);
        if (end == start)
            return false;
        pos += static_cast<std::size_t>(end - start);
        return true;
    }
};

} // namespace

namespace {

void
printJsonRecord(std::FILE* f, const JsonRecord& r, bool last)
{
    std::fprintf(f, "  {\"name\": \"%s\"", jsonEscaped(r.name).c_str());
    for (const auto& [key, value] : r.strings)
        std::fprintf(f, ", \"%s\": \"%s\"", jsonEscaped(key).c_str(),
                     jsonEscaped(value).c_str());
    for (const auto& [key, value] : r.numbers)
        std::fprintf(f, ", \"%s\": %.17g", jsonEscaped(key).c_str(), value);
    std::fprintf(f, "}%s\n", last ? "" : ",");
}

/** Write-then-rename over any record range (see vector overload docs). */
template <typename Iter, typename Get>
bool
writeJsonRecordsImpl(const std::string& path, Iter begin, Iter end,
                     std::size_t count, Get get, std::string* error)
{
    // Write-then-rename so a reader (or a kill mid-write) never sees a
    // truncated file -- the SweepRunner store is rewritten after every
    // flush batch and must survive being killed at any point. The tmp
    // name is per-process so two writers at worst last-write-win whole
    // consistent files instead of interleaving into one.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(getpid()));
    std::FILE* f = io::fopenRetry(tmp.c_str(), "w");
    if (!f) {
        if (error)
            *error = "open " + tmp + ": " + std::strerror(errno);
        return false;
    }
    std::fprintf(f, "[\n");
    std::size_t i = 0;
    for (Iter it = begin; it != end; ++it, ++i)
        printJsonRecord(f, get(*it), i + 1 == count);
    std::fprintf(f, "]\n");
    const int writeErr = std::ferror(f) ? errno : 0;
    const bool ok = std::fclose(f) == 0 && writeErr == 0;
    if (!ok) {
        if (error)
            *error = "write " + tmp + ": " +
                     std::strerror(writeErr ? writeErr : errno);
        std::remove(tmp.c_str());
        return false;
    }
    std::string renameErr;
    if (!io::renameRetry(tmp.c_str(), path.c_str(), &renameErr)) {
        if (error)
            *error = renameErr + " (" + tmp + " -> " + path + ")";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

bool
writeJsonRecords(const std::string& path,
                 const std::vector<JsonRecord>& records, std::string* error)
{
    return writeJsonRecordsImpl(path, records.begin(), records.end(),
                                records.size(),
                                [](const JsonRecord& r) -> const JsonRecord& {
                                    return r;
                                },
                                error);
}

bool
writeJsonRecords(const std::string& path,
                 const std::map<std::string, JsonRecord>& records,
                 std::string* error)
{
    return writeJsonRecordsImpl(
        path, records.begin(), records.end(), records.size(),
        [](const auto& kv) -> const JsonRecord& { return kv.second; }, error);
}

namespace {

/**
 * Parse a record array, tracking the byte offset where the parseable
 * prefix ends. Returns true when the whole array parsed (closing ']'
 * reached); on false, `out` holds every record that parsed completely
 * before the malformation and `goodEnd` points just past the last one --
 * the salvage boundary.
 */
bool
parseRecordArray(const std::string& text, std::vector<JsonRecord>& out,
                 std::size_t* goodEnd)
{
    out.clear();
    *goodEnd = 0;
    JsonCursor cur{text};
    if (!cur.accept('['))
        return false;
    *goodEnd = cur.pos;
    if (cur.accept(']')) {
        *goodEnd = cur.pos;
        return true; // empty array
    }
    for (;;) {
        if (!cur.accept('{'))
            return false;
        JsonRecord rec;
        if (!cur.accept('}')) {
            for (;;) {
                std::string key;
                if (!cur.parseString(key) || !cur.accept(':'))
                    return false;
                cur.skipWs();
                if (cur.pos < text.size() && text[cur.pos] == '"') {
                    std::string value;
                    if (!cur.parseString(value))
                        return false;
                    if (key == "name")
                        rec.name = value;
                    else
                        rec.strings.emplace_back(key, value);
                } else {
                    double value = 0.0;
                    if (!cur.parseNumber(value))
                        return false;
                    rec.numbers.emplace_back(key, value);
                }
                if (cur.accept(','))
                    continue;
                if (cur.accept('}'))
                    break;
                return false;
            }
        }
        out.push_back(std::move(rec));
        *goodEnd = cur.pos; // record landed intact
        if (cur.accept(','))
            continue;
        if (cur.accept(']')) {
            *goodEnd = cur.pos;
            return true;
        }
        return false;
    }
}

bool
slurpFile(const std::string& path, std::string& text)
{
    std::FILE* f = io::fopenRetry(path.c_str(), "rb");
    if (!f)
        return false;
    text.clear();
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return true;
}

} // namespace

bool
readJsonRecords(const std::string& path, std::vector<JsonRecord>& out)
{
    out.clear();
    std::string text;
    if (!slurpFile(path, text))
        return false;
    std::size_t goodEnd = 0;
    if (parseRecordArray(text, out, &goodEnd))
        return true;
    out.clear();
    return false;
}

bool
readJsonRecordsSalvaged(const std::string& path, std::vector<JsonRecord>& out,
                        JsonSalvage* info)
{
    out.clear();
    if (info)
        *info = JsonSalvage{};
    std::string text;
    if (!slurpFile(path, text))
        return false;
    std::size_t goodEnd = 0;
    const bool complete = parseRecordArray(text, out, &goodEnd);
    if (info) {
        info->salvaged = !complete;
        info->goodBytes = goodEnd;
        info->totalBytes = text.size();
    }
    return true;
}

std::string
quarantineTail(const std::string& path, std::size_t offset)
{
    std::string text;
    if (!slurpFile(path, text) || offset >= text.size())
        return "";
    const std::string qpath = path + ".quarantine";
    std::FILE* f = io::fopenRetry(qpath.c_str(), "wb");
    if (!f)
        return "";
    const std::size_t len = text.size() - offset;
    const bool ok =
        std::fwrite(text.data() + offset, 1, len, f) == len && !std::ferror(f);
    std::fclose(f);
    if (!ok) {
        std::remove(qpath.c_str());
        return "";
    }
    return qpath;
}

} // namespace create
