#include "common/serialize.hpp"

#include <cstdio>
#include <stdexcept>

namespace create {

namespace {
constexpr std::uint32_t kMagic = 0x43524541; // "CREA"
constexpr std::uint32_t kVersion = 1;
} // namespace

void
BlobArchive::put(const std::string& name, std::vector<std::uint64_t> dims,
                 std::vector<float> data)
{
    std::uint64_t n = 1;
    for (auto d : dims)
        n *= d;
    if (n != data.size())
        throw std::invalid_argument("BlobArchive::put: dims do not match data size");
    blobs_[name] = NamedBlob{std::move(dims), std::move(data)};
}

bool
BlobArchive::has(const std::string& name) const
{
    return blobs_.count(name) > 0;
}

const NamedBlob&
BlobArchive::get(const std::string& name) const
{
    auto it = blobs_.find(name);
    if (it == blobs_.end())
        throw std::out_of_range("BlobArchive: missing blob " + name);
    return it->second;
}

bool
BlobArchive::save(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    auto writeU32 = [&](std::uint32_t v) { std::fwrite(&v, sizeof(v), 1, f); };
    auto writeU64 = [&](std::uint64_t v) { std::fwrite(&v, sizeof(v), 1, f); };
    writeU32(kMagic);
    writeU32(kVersion);
    writeU64(blobs_.size());
    for (const auto& [name, blob] : blobs_) {
        writeU32(static_cast<std::uint32_t>(name.size()));
        std::fwrite(name.data(), 1, name.size(), f);
        writeU32(static_cast<std::uint32_t>(blob.dims.size()));
        for (auto d : blob.dims)
            writeU64(d);
        std::fwrite(blob.data.data(), sizeof(float), blob.data.size(), f);
    }
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

bool
BlobArchive::load(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    auto fail = [&] {
        std::fclose(f);
        blobs_.clear();
        return false;
    };
    auto readU32 = [&](std::uint32_t& v) {
        return std::fread(&v, sizeof(v), 1, f) == 1;
    };
    auto readU64 = [&](std::uint64_t& v) {
        return std::fread(&v, sizeof(v), 1, f) == 1;
    };
    std::uint32_t magic = 0, version = 0;
    if (!readU32(magic) || magic != kMagic || !readU32(version) || version != kVersion)
        return fail();
    std::uint64_t count = 0;
    if (!readU64(count))
        return fail();
    blobs_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint32_t nameLen = 0;
        if (!readU32(nameLen) || nameLen > (1u << 20))
            return fail();
        std::string name(nameLen, '\0');
        if (std::fread(name.data(), 1, nameLen, f) != nameLen)
            return fail();
        std::uint32_t ndims = 0;
        if (!readU32(ndims) || ndims > 16)
            return fail();
        NamedBlob blob;
        std::uint64_t n = 1;
        blob.dims.resize(ndims);
        for (auto& d : blob.dims) {
            if (!readU64(d))
                return fail();
            n *= d;
        }
        if (n > (1ull << 32))
            return fail();
        blob.data.resize(n);
        if (std::fread(blob.data.data(), sizeof(float), n, f) != n)
            return fail();
        blobs_[name] = std::move(blob);
    }
    std::fclose(f);
    return true;
}

} // namespace create
