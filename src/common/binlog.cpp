#include "common/binlog.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/io_retry.hpp"
#include "common/store_keys.hpp"

namespace create::binlog {

namespace {

enum : std::uint8_t
{
    kFrameFpDef = 1,
    kFrameRecord = 2,
    kFrameEpisode = 3,
    kFrameLease = 4,
    kFrameMeta = 5,
    kFrameIndex = 6,
};

// Encoding primitives. The format is little-endian by definition and the
// supported targets (x86-64, the accelerator hosts) are little-endian, so
// raw memcpy is the encoding.
void
putU8(std::string& buf, std::uint8_t v)
{
    buf.push_back(static_cast<char>(v));
}

void
putU32(std::string& buf, std::uint32_t v)
{
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void
putU64(std::string& buf, std::uint64_t v)
{
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void
putStr(std::string& buf, const std::string& s)
{
    putU32(buf, static_cast<std::uint32_t>(s.size()));
    buf.append(s);
}

/** Bounds-checked decode cursor over one frame's payload. */
struct Cursor
{
    const char* p;
    std::size_t n;
    std::size_t pos = 0;

    bool u8(std::uint8_t& v)
    {
        if (pos + 1 > n)
            return false;
        v = static_cast<std::uint8_t>(p[pos++]);
        return true;
    }

    bool u32(std::uint32_t& v)
    {
        if (pos + sizeof(v) > n)
            return false;
        std::memcpy(&v, p + pos, sizeof(v));
        pos += sizeof(v);
        return true;
    }

    bool u64(std::uint64_t& v)
    {
        if (pos + sizeof(v) > n)
            return false;
        std::memcpy(&v, p + pos, sizeof(v));
        pos += sizeof(v);
        return true;
    }

    bool str(std::string& s)
    {
        std::uint32_t len = 0;
        if (!u32(len) || pos + len > n)
            return false;
        s.assign(p + pos, len);
        pos += len;
        return true;
    }

    bool done() const { return pos == n; }
};

bool
slurp(const std::string& path, std::string& text)
{
    std::FILE* f = io::fopenRetry(path.c_str(), "rb");
    if (!f)
        return false;
    text.clear();
    char buf[65536];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return true;
}

void
encodeBody(std::string& buf, const JsonRecord& rec)
{
    putU32(buf, static_cast<std::uint32_t>(rec.strings.size()));
    for (const auto& [key, val] : rec.strings) {
        putStr(buf, key);
        putStr(buf, val);
    }
    putU32(buf, static_cast<std::uint32_t>(rec.numbers.size()));
    for (const auto& [key, val] : rec.numbers) {
        putStr(buf, key);
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(val), "double is 8 bytes");
        std::memcpy(&bits, &val, sizeof(bits));
        putU64(buf, bits);
    }
}

/** Frame one payload ([type][len][crc][payload]) onto `buf`. */
void
putFrame(std::string& buf, std::uint8_t type, const std::string& payload)
{
    std::uint32_t crc = crc32(&type, 1);
    crc = crc32(payload.data(), payload.size(), crc);
    putU8(buf, type);
    putU32(buf, static_cast<std::uint32_t>(payload.size()));
    putU32(buf, crc);
    buf.append(payload);
}

bool
decodeBody(Cursor& cur, JsonRecord& rec)
{
    std::uint32_t nStrings = 0;
    if (!cur.u32(nStrings))
        return false;
    for (std::uint32_t i = 0; i < nStrings; ++i) {
        std::string key, val;
        if (!cur.str(key) || !cur.str(val))
            return false;
        rec.strings.emplace_back(std::move(key), std::move(val));
    }
    std::uint32_t nNumbers = 0;
    if (!cur.u32(nNumbers))
        return false;
    for (std::uint32_t i = 0; i < nNumbers; ++i) {
        std::string key;
        std::uint64_t bits = 0;
        if (!cur.str(key) || !cur.u64(bits))
            return false;
        double val = 0.0;
        std::memcpy(&val, &bits, sizeof(val));
        rec.numbers.emplace_back(std::move(key), val);
    }
    return cur.done();
}

/**
 * Decode one frame's payload into `out` (when record-bearing), updating
 * `dict`. Returns false when the payload is malformed -- the caller
 * treats the frame (and everything after it) as the torn tail.
 */
bool
decodeFrame(std::uint8_t type, const char* payload, std::size_t len,
            std::map<std::uint32_t, std::string>& dict,
            std::deque<JsonRecord>& out)
{
    Cursor cur{payload, len};
    switch (type) {
      case kFrameFpDef: {
          std::uint32_t id = 0;
          if (!cur.u32(id))
              return false;
          dict[id].assign(payload + cur.pos, len - cur.pos);
          return true;
      }
      case kFrameIndex: {
          std::uint32_t count = 0;
          if (!cur.u32(count))
              return false;
          for (std::uint32_t i = 0; i < count; ++i) {
              std::uint32_t id = 0;
              std::string fp;
              if (!cur.u32(id) || !cur.str(fp))
                  return false;
              dict[id] = std::move(fp);
          }
          return cur.done();
      }
      case kFrameRecord: {
          JsonRecord rec;
          if (!cur.str(rec.name) || !decodeBody(cur, rec))
              return false;
          out.push_back(std::move(rec));
          return true;
      }
      case kFrameEpisode:
      case kFrameLease:
      case kFrameMeta: {
          std::uint32_t id = 0;
          if (!cur.u32(id))
              return false;
          const auto it = dict.find(id);
          if (it == dict.end())
              return false; // undefined id: can only be corruption
          JsonRecord rec;
          if (type == kFrameEpisode) {
              std::uint32_t index = 0;
              if (!cur.u32(index))
                  return false;
              rec.name = sweepEpisodeKey(it->second,
                                         static_cast<int>(index));
          } else if (type == kFrameLease) {
              rec.name = sweepLeaseKey(it->second);
          } else {
              rec.name = it->second;
          }
          if (!decodeBody(cur, rec))
              return false;
          out.push_back(std::move(rec));
          return true;
      }
      default:
          return false;
    }
}

/**
 * Validate + decode the frame stream of a whole log image (one
 * StreamDecoder pass). Returns false when the header is missing/foreign;
 * otherwise fills `info` with the valid-prefix boundary (salvage
 * semantics of readJsonRecordsSalvaged).
 */
bool
scanLog(const std::string& text, std::vector<JsonRecord>* out,
        LogSalvage* info)
{
    LogSalvage local;
    LogSalvage& sal = info ? *info : local;
    sal = LogSalvage{};
    sal.totalBytes = text.size();
    StreamDecoder dec;
    dec.feed(text);
    if (!dec.headerSeen())
        return false; // too short for a header, or foreign magic
    JsonRecord rec;
    while (dec.pop(rec))
        if (out)
            out->push_back(std::move(rec));
    sal.goodBytes = dec.consumed();
    sal.frames = dec.frames();
    sal.records = dec.records();
    sal.indexBlocks = dec.indexBlocks();
    sal.fingerprints = dec.fingerprints();
    sal.salvaged = sal.goodBytes != sal.totalBytes;
    return true;
}

} // namespace

std::uint32_t
crc32(const void* data, std::size_t n, std::uint32_t seed)
{
    // Table-driven CRC-32 (IEEE). The in/out inversion makes chained
    // calls (seed = previous return) equal one call over the
    // concatenation.
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

bool
isBinlogFile(const std::string& path)
{
    std::FILE* f = io::fopenRetry(path.c_str(), "rb");
    if (!f)
        return false;
    std::uint32_t magic = 0;
    const bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1;
    std::fclose(f);
    return ok && magic == kFileMagic;
}

bool
readLogRecords(const std::string& path, std::vector<JsonRecord>& out,
               LogSalvage* info)
{
    out.clear();
    if (info)
        *info = LogSalvage{};
    std::string text;
    if (!slurp(path, text))
        return false;
    if (!scanLog(text, &out, info)) {
        out.clear();
        return false;
    }
    return true;
}

void
FrameEncoder::encodeHeader(std::string& out)
{
    putU32(out, kFileMagic);
    putU32(out, kFileVersion);
}

std::uint32_t
FrameEncoder::fpId(const std::string& fingerprint, std::string& out)
{
    for (const auto& [fp, id] : dict_)
        if (fp == fingerprint)
            return id;
    const std::uint32_t id = nextId_++;
    dict_.emplace_back(fingerprint, id);
    std::string payload;
    putU32(payload, id);
    payload.append(fingerprint);
    putFrame(out, kFrameFpDef, payload);
    return id;
}

void
FrameEncoder::encodeRecord(const JsonRecord& rec, std::string& out)
{
    // Classify through the store-key grammar; the strict reconstruction
    // check (re-derive the key and compare) keeps degenerate names a
    // human could hand-edit in -- "fp#007" parses as episode 7 but is
    // not episodeKey(fp, 7) -- byte-exact via the generic frame.
    std::uint8_t type = kFrameRecord;
    std::string payload;
    std::string fp;
    const int idx = sweepEpisodeIndex(rec.name, &fp);
    if (idx >= 0 && sweepEpisodeKey(fp, idx) == rec.name) {
        type = kFrameEpisode;
        putU32(payload, fpId(fp, out));
        putU32(payload, static_cast<std::uint32_t>(idx));
    } else if (sweepLeaseFingerprint(rec.name, &fp)) {
        type = kFrameLease;
        putU32(payload, fpId(fp, out));
    } else if (rec.name.rfind("v1|", 0) == 0 ||
               rec.name.rfind("v2|", 0) == 0) {
        // Ledger meta records (and legacy v1 cell records) are named by
        // the fingerprint itself -- dictionary-compressed like episodes.
        type = kFrameMeta;
        putU32(payload, fpId(rec.name, out));
    } else {
        putStr(payload, rec.name);
    }
    encodeBody(payload, rec);
    putFrame(out, type, payload);
    if (++sinceIndex_ >= kIndexEvery) {
        // Periodic full-dictionary index block.
        std::string ip;
        putU32(ip, static_cast<std::uint32_t>(dict_.size()));
        for (const auto& [dfp, id] : dict_) {
            putU32(ip, id);
            putStr(ip, dfp);
        }
        putFrame(out, kFrameIndex, ip);
        sinceIndex_ = 0;
    }
}

void
FrameEncoder::reset()
{
    // nextId_ stays monotonic: re-emitting a known fingerprint under a
    // fresh id is always valid (definitions override), and never reusing
    // ids keeps a reconnecting stream unambiguous.
    dict_.clear();
    sinceIndex_ = 0;
}

bool
StreamDecoder::feed(const char* data, std::size_t n)
{
    if (failed_)
        return false;
    std::size_t used = 0;
    if (buf_.empty()) {
        // Fast path: decode straight from the caller's span and buffer
        // only the partial trailing frame (if any).
        used = drain(data, n);
        if (!failed_ && used < n)
            buf_.assign(data + used, n - used);
    } else {
        buf_.append(data, n);
        used = drain(buf_.data(), buf_.size());
        if (!failed_)
            buf_.erase(0, used);
    }
    if (failed_) {
        buf_.clear();
        return false;
    }
    return true;
}

bool
StreamDecoder::pop(JsonRecord& rec)
{
    if (out_.empty())
        return false;
    rec = std::move(out_.front());
    out_.pop_front();
    return true;
}

std::size_t
StreamDecoder::drain(const char* p, std::size_t n)
{
    std::size_t pos = 0;
    if (!headerSeen_) {
        if (n < kHeaderBytes)
            return 0; // keep accumulating header bytes
        std::uint32_t magic = 0, version = 0;
        std::memcpy(&magic, p, sizeof(magic));
        std::memcpy(&version, p + 4, sizeof(version));
        if (magic != kFileMagic || version != kFileVersion) {
            failed_ = true;
            badHeader_ = true;
            return 0;
        }
        headerSeen_ = true;
        pos = kHeaderBytes;
        consumed_ += kHeaderBytes;
    }
    constexpr std::size_t kFrameHeader = 9; // u8 type + u32 len + u32 crc
    for (;;) {
        if (pos + kFrameHeader > n)
            break; // partial frame header: wait for more bytes
        const auto type = static_cast<std::uint8_t>(p[pos]);
        std::uint32_t len = 0, crc = 0;
        std::memcpy(&len, p + pos + 1, sizeof(len));
        std::memcpy(&crc, p + pos + 5, sizeof(crc));
        if (len > kMaxPayload) {
            failed_ = true; // impossible length: real corruption
            break;
        }
        if (pos + kFrameHeader + len > n)
            break; // partial payload: wait for more bytes
        const char* payload = p + pos + kFrameHeader;
        std::uint32_t want = crc32(&type, 1);
        want = crc32(payload, len, want);
        if (want != crc) {
            failed_ = true; // bit damage inside the frame
            break;
        }
        if (!decodeFrame(type, payload, len, dict_, out_)) {
            failed_ = true; // structurally invalid payload
            break;
        }
        if (type == kFrameIndex)
            ++indexBlocks_;
        else if (type != kFrameFpDef)
            ++records_;
        ++frames_;
        pos += kFrameHeader + len;
        consumed_ += kFrameHeader + len;
    }
    return pos;
}

void
StreamDecoder::reset()
{
    buf_.clear();
    dict_.clear();
    out_.clear();
    consumed_ = 0;
    frames_ = 0;
    records_ = 0;
    indexBlocks_ = 0;
    headerSeen_ = false;
    failed_ = false;
    badHeader_ = false;
}

LogWriter::~LogWriter()
{
    close();
}

void
LogWriter::close()
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
    path_.clear();
    offset_ = 0;
    buf_.clear();
    enc_.reset();
}

bool
LogWriter::open(const std::string& path, std::string* error)
{
    close();
    std::string text;
    const bool exists = slurp(path, text);
    if (exists && !text.empty()) {
        LogSalvage sal;
        if (!scanLog(text, nullptr, &sal)) {
            if (error)
                *error = path + " is not a binlog (foreign magic)";
            return false;
        }
        if (sal.salvaged) {
            // Same recovery as the readers, but as the owner we also
            // repair the file: quarantine the bad suffix and truncate to
            // the last good frame boundary so our appends extend a valid
            // prefix instead of stranding themselves behind torn bytes.
            const std::string q = quarantineTail(
                path, static_cast<std::size_t>(sal.goodBytes));
            std::fprintf(stderr,
                         "[binlog] %s has a torn tail: kept %llu of %llu "
                         "bytes (%zu records); bad tail %s%s\n",
                         path.c_str(),
                         static_cast<unsigned long long>(sal.goodBytes),
                         static_cast<unsigned long long>(sal.totalBytes),
                         sal.records,
                         q.empty() ? "could not be quarantined"
                                   : "quarantined to ",
                         q.c_str());
            if (::truncate(path.c_str(),
                           static_cast<off_t>(sal.goodBytes)) != 0) {
                if (error)
                    *error = "truncate " + path + ": " +
                             std::strerror(errno);
                return false;
            }
        }
        f_ = io::fopenRetry(path.c_str(), "r+b");
        if (!f_) {
            if (error)
                *error = "open " + path + ": " + std::strerror(errno);
            return false;
        }
        offset_ = sal.goodBytes;
        if (std::fseek(f_, static_cast<long>(offset_), SEEK_SET) != 0) {
            if (error)
                *error = "seek " + path + ": " + std::strerror(errno);
            std::fclose(f_);
            f_ = nullptr;
            return false;
        }
    } else {
        f_ = io::fopenRetry(path.c_str(), "w+b");
        if (!f_) {
            if (error)
                *error = "open " + path + ": " + std::strerror(errno);
            return false;
        }
        std::string header;
        FrameEncoder::encodeHeader(header);
        if (std::fwrite(header.data(), 1, header.size(), f_) !=
                header.size() ||
            std::fflush(f_) != 0) {
            if (error)
                *error = "write " + path + ": " + std::strerror(errno);
            std::fclose(f_);
            f_ = nullptr;
            return false;
        }
        offset_ = kHeaderBytes;
    }
    path_ = path;
    return true;
}

bool
LogWriter::checkTail(bool* healed, std::string* error)
{
    if (healed)
        *healed = false;
    if (!f_) {
        if (error)
            *error = "binlog writer is not open";
        return false;
    }
    struct stat st;
    if (::fstat(::fileno(f_), &st) != 0) {
        if (error)
            *error = "stat " + path_ + ": " + std::strerror(errno);
        return false;
    }
    if (static_cast<std::uint64_t>(st.st_size) == offset_)
        return true;
    // The file changed underneath us (injected tear, external truncate,
    // or -- misconfiguration -- a second writer sharing our log name).
    // Re-salvage from scratch: quarantine whatever suffix does not
    // decode, truncate to the last good frame boundary, and drop the
    // dictionary -- definitions we emitted past the cut are gone, and
    // re-emitting a fingerprint under a fresh id is always valid
    // (definitions override from their point in the stream).
    std::string text;
    LogSalvage sal;
    if (!slurp(path_, text) || !scanLog(text, nullptr, &sal)) {
        if (error)
            *error = path_ + " changed underneath the writer and no "
                             "longer reads as a binlog";
        return false;
    }
    if (sal.salvaged)
        quarantineTail(path_, static_cast<std::size_t>(sal.goodBytes));
    if (::ftruncate(::fileno(f_), static_cast<off_t>(sal.goodBytes)) != 0 ||
        std::fseek(f_, static_cast<long>(sal.goodBytes), SEEK_SET) != 0) {
        if (error)
            *error = "truncate " + path_ + ": " + std::strerror(errno);
        return false;
    }
    std::fprintf(stderr,
                 "[binlog] %s changed on disk (%llu -> %llu bytes); "
                 "resynced to the last good frame boundary\n",
                 path_.c_str(), static_cast<unsigned long long>(offset_),
                 static_cast<unsigned long long>(st.st_size));
    offset_ = sal.goodBytes;
    enc_.reset();
    if (healed)
        *healed = true;
    return true;
}

void
LogWriter::append(const JsonRecord& rec)
{
    enc_.encodeRecord(rec, buf_);
}

bool
LogWriter::commit(std::string* error)
{
    if (!f_) {
        if (error)
            *error = "binlog writer is not open";
        return false;
    }
    if (buf_.empty())
        return true;
    const bool ok =
        std::fwrite(buf_.data(), 1, buf_.size(), f_) == buf_.size() &&
        std::fflush(f_) == 0;
    if (!ok) {
        if (error)
            *error = "append " + path_ + ": " + std::strerror(errno);
        // Roll the file back to the durable boundary so the failed batch
        // never leaves a torn frame mid-log; the staged frames and the
        // dictionary are dropped with it (a retry re-encodes from
        // scratch -- definitions override, so a fresh dictionary is
        // always valid).
        ::ftruncate(::fileno(f_), static_cast<off_t>(offset_));
        std::fseek(f_, static_cast<long>(offset_), SEEK_SET);
        std::clearerr(f_);
        buf_.clear();
        enc_.reset();
        return false;
    }
    offset_ += buf_.size();
    buf_.clear();
    return true;
}

} // namespace create::binlog
