#include "common/metrics.hpp"

#include <algorithm>
#include <cstdlib>

namespace create {
namespace {

/// Collection switch; resolved once from the environment, then only
/// changed explicitly via setEnabled().
std::atomic<bool>& enabledFlag()
{
    static std::atomic<bool> flag{[] {
        const char* env = std::getenv("CREATE_METRICS");
        return !(env && env[0] == '0' && env[1] == '\0');
    }()};
    return flag;
}

/// Process-global queue tallies. Relaxed atomics: these are statistics
/// with no ordering relationship to any result data.
struct QueueTallyAtomics
{
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> groups{0};
    std::atomic<std::uint64_t> windowExpiries{0};
    std::atomic<std::uint64_t> inlineRuns{0};
};

QueueTallyAtomics& queueAtomics()
{
    static QueueTallyAtomics t;
    return t;
}

} // namespace

EpisodeMetrics& EpisodeMetrics::operator+=(const EpisodeMetrics& o)
{
    if (!o.present)
        return *this;
    present = true;
    wallMs += o.wallMs;
    for (const auto& f : kEpisodeMetricFields)
        this->*(f.second) += o.*(f.second);
    for (const auto& [tag, c] : o.layers) {
        auto it = std::lower_bound(
            layers.begin(), layers.end(), tag,
            [](const auto& entry, const std::string& t) {
                return entry.first < t;
            });
        if (it != layers.end() && it->first == tag)
            it->second += c;
        else
            layers.insert(it, {tag, c});
    }
    return *this;
}

const LayerFaultCounters* EpisodeMetrics::layer(const std::string& tag) const
{
    for (const auto& [t, c] : layers)
        if (t == tag)
            return &c;
    return nullptr;
}

MetricsRegistry& MetricsRegistry::tls()
{
    thread_local MetricsRegistry reg;
    return reg;
}

bool MetricsRegistry::enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void MetricsRegistry::setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

void MetricsRegistry::beginEpisode()
{
    layers_.clear();
    gemms_ = 0;
    injected_ = 0;
    detected_ = 0;
    corrected_ = 0;
    escaped_ = 0;
    reExecutions_ = 0;
}

EpisodeMetrics MetricsRegistry::endEpisode(double wallMs)
{
    EpisodeMetrics m;
    if (!enabled())
        return m;
    m.present = true;
    m.wallMs = wallMs;
    m.gemms = gemms_;
    m.flipsInjected = injected_;
    m.flipsDetected = detected_;
    m.flipsCorrected = corrected_;
    m.flipsEscaped = escaped_;
    m.reExecutions = reExecutions_;
    m.layers.reserve(layers_.size());
    for (const auto& [tag, c] : layers_)
        if (c.any())
            m.layers.emplace_back(tag, c); // std::map iteration is sorted
    beginEpisode();
    return m;
}

void MetricsRegistry::recordGemm(const std::string& tag)
{
    if (!enabled())
        return;
    ++gemms_;
    ++layers_[tag].gemms;
}

void MetricsRegistry::recordFault(const std::string& tag,
                                  const LayerFaultCounters& c)
{
    if (!enabled())
        return;
    injected_ += c.injected;
    detected_ += c.detected;
    corrected_ += c.corrected;
    escaped_ += c.escaped;
    reExecutions_ += c.reExecutions;
    LayerFaultCounters& dst = layers_[tag];
    dst.injected += c.injected;
    dst.detected += c.detected;
    dst.corrected += c.corrected;
    dst.escaped += c.escaped;
    dst.reExecutions += c.reExecutions;
}

void MetricsRegistry::recordQueueRequest()
{
    if (!enabled())
        return;
    queueAtomics().requests.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::recordQueueGroup(bool windowExpired)
{
    if (!enabled())
        return;
    queueAtomics().groups.fetch_add(1, std::memory_order_relaxed);
    if (windowExpired)
        queueAtomics().windowExpiries.fetch_add(1,
                                                std::memory_order_relaxed);
}

void MetricsRegistry::recordQueueInline()
{
    if (!enabled())
        return;
    queueAtomics().inlineRuns.fetch_add(1, std::memory_order_relaxed);
}

QueueTallies MetricsRegistry::queueTallies()
{
    const QueueTallyAtomics& a = queueAtomics();
    QueueTallies t;
    t.requests = a.requests.load(std::memory_order_relaxed);
    t.groups = a.groups.load(std::memory_order_relaxed);
    t.windowExpiries = a.windowExpiries.load(std::memory_order_relaxed);
    t.inlineRuns = a.inlineRuns.load(std::memory_order_relaxed);
    return t;
}

void MetricsRegistry::resetQueueTallies()
{
    QueueTallyAtomics& a = queueAtomics();
    a.requests.store(0, std::memory_order_relaxed);
    a.groups.store(0, std::memory_order_relaxed);
    a.windowExpiries.store(0, std::memory_order_relaxed);
    a.inlineRuns.store(0, std::memory_order_relaxed);
}

} // namespace create
