#pragma once

/**
 * @file
 * Module base class: named parameter trees with save/load support.
 *
 * Every network (planner, controller, entropy predictor) is a tree of
 * Modules. Parameters are autograd Vars with requiresGrad=true; they are
 * addressable by dotted path (e.g. "planner.blk0.attn.q.weight") which is
 * also the serialization key and the injection-filter tag namespace.
 */

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "nn/autograd.hpp"

namespace create::nn {

/** A named trainable tensor. */
struct Param
{
    std::string name;
    Var var;
};

/** Base class for parameterized layers and models. */
class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}
    virtual ~Module() = default;

    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    const std::string& name() const { return name_; }

    /** All parameters of this module and its children (depth-first). */
    std::vector<Param*> parameters();

    /** Serialize all parameters into the archive. */
    void save(BlobArchive& ar);

    /**
     * Load all parameters from the archive.
     * @return false if any parameter is missing or shaped differently.
     */
    bool load(const BlobArchive& ar);

  protected:
    /** Register a parameter with a local name; returns a stable pointer. */
    Param* addParam(const std::string& local, Tensor init);

    /** Register a child module (owned elsewhere, usually a member). */
    void addChild(Module* child) { children_.push_back(child); }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Param>> params_;
    std::vector<Module*> children_;
};

// --- weight initialization helpers ---------------------------------------

/** Uniform(-range, range) init. */
void initUniform(Tensor& t, float range, Rng& rng);

/** Xavier/Glorot uniform for a (fanIn x fanOut) matrix. */
void initXavier(Tensor& t, std::int64_t fanIn, std::int64_t fanOut, Rng& rng);

} // namespace create::nn
