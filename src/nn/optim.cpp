#include "nn/optim.hpp"

#include <cmath>

namespace create::nn {

AdamW::AdamW(std::vector<Param*> params, double lr, double beta1, double beta2,
             double eps, double weightDecay)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps), weightDecay_(weightDecay)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (auto* p : params_) {
        m_.emplace_back(p->var.value().shape());
        v_.emplace_back(p->var.value().shape());
    }
}

void
AdamW::step()
{
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        Param* p = params_[pi];
        Tensor& w = p->var.value();
        const Tensor& g = p->var.grad();
        if (g.numel() != w.numel())
            continue; // no gradient accumulated this step
        Tensor& m = m_[pi];
        Tensor& v = v_[pi];
        for (std::int64_t i = 0; i < w.numel(); ++i) {
            const double gi = g[i];
            m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * gi);
            v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * gi * gi);
            const double mhat = m[i] / bc1;
            const double vhat = v[i] / bc2;
            const double update =
                mhat / (std::sqrt(vhat) + eps_) + weightDecay_ * w[i];
            w[i] = static_cast<float>(w[i] - lr_ * update);
        }
    }
}

void
AdamW::zeroGrad()
{
    for (auto* p : params_)
        p->var.zeroGrad();
}

} // namespace create::nn
