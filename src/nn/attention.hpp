#pragma once

/**
 * @file
 * Multi-head self-attention (full, non-causal) with both training and
 * quantized-inference paths.
 *
 * The Q/K/V/O projections are the injection-targetable "network
 * components" of Fig. 3/Fig. 5; the score and context matmuls are
 * activation-by-activation products executed by the FP32 vector path
 * (counted toward compute energy but not injected, consistent with the
 * paper's component list).
 */

#include "nn/layers.hpp"

namespace create::nn {

/** Full self-attention over a (T x dim) token matrix. */
class MultiHeadAttention : public Module
{
  public:
    MultiHeadAttention(std::string name, int dim, int heads, Rng& rng);

    Var forward(const Var& x);
    Tensor infer(const Tensor& x, ComputeContext& ctx);

    Linear& q() { return q_; }
    Linear& k() { return k_; }
    Linear& v() { return v_; }
    Linear& o() { return o_; }

    int dim() const { return dim_; }
    int heads() const { return heads_; }

  private:
    int dim_, heads_, headDim_;
    Linear q_, k_, v_, o_;
};

} // namespace create::nn
