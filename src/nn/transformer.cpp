#include "nn/transformer.hpp"

#include "tensor/ops.hpp"

namespace create::nn {

LlamaBlock::LlamaBlock(std::string name, int dim, int mlpDim, int heads,
                       Rng& rng)
    : Module(std::move(name)),
      norm1_(this->name() + ".norm1", dim),
      norm2_(this->name() + ".norm2", dim),
      attn_(this->name() + ".attn", dim, heads, rng),
      gate_(this->name() + ".mlp.gate", dim, mlpDim, /*withBias=*/false, rng),
      up_(this->name() + ".mlp.up", dim, mlpDim, /*withBias=*/false, rng),
      down_(this->name() + ".mlp.down", mlpDim, dim, /*withBias=*/false, rng)
{
    addChild(&norm1_);
    addChild(&norm2_);
    addChild(&attn_);
    addChild(&gate_);
    addChild(&up_);
    addChild(&down_);
}

Var
LlamaBlock::forward(const Var& x)
{
    Var h = add(x, attn_.forward(norm1_.forward(x)));
    const Var n = norm2_.forward(h);
    const Var act = mul(silu(gate_.forward(n)), up_.forward(n));
    return add(h, down_.forward(act));
}

Tensor
LlamaBlock::infer(const Tensor& x, ComputeContext& ctx)
{
    Tensor h = ops::add(x, attn_.infer(norm1_.infer(x), ctx));
    const Tensor n = norm2_.infer(h);
    const Tensor act =
        ops::mul(ops::silu(gate_.infer(n, ctx)), up_.infer(n, ctx));
    return ops::add(h, down_.infer(act, ctx));
}

void
LlamaBlock::plantOutliers(const Tensor& channelScale)
{
    attn_.o().setOutChannelScale(channelScale);
    down_.setOutChannelScale(channelScale);
}

PostNormBlock::PostNormBlock(std::string name, int dim, int mlpDim, int heads,
                             Rng& rng)
    : Module(std::move(name)),
      attn_(this->name() + ".attn", dim, heads, rng),
      norm1_(this->name() + ".norm1", dim),
      norm2_(this->name() + ".norm2", dim),
      fc1_(this->name() + ".fc1", dim, mlpDim, /*withBias=*/true, rng),
      fc2_(this->name() + ".fc2", mlpDim, dim, /*withBias=*/true, rng)
{
    addChild(&attn_);
    addChild(&norm1_);
    addChild(&norm2_);
    addChild(&fc1_);
    addChild(&fc2_);
}

Var
PostNormBlock::forward(const Var& x)
{
    Var h = norm1_.forward(add(x, attn_.forward(x)));
    const Var act = relu(fc1_.forward(h));
    return norm2_.forward(add(h, fc2_.forward(act)));
}

Tensor
PostNormBlock::infer(const Tensor& x, ComputeContext& ctx)
{
    Tensor h = norm1_.infer(ops::add(x, attn_.infer(x, ctx)));
    const Tensor act = ops::relu(fc1_.infer(h, ctx));
    return norm2_.infer(ops::add(h, fc2_.infer(act, ctx)));
}

} // namespace create::nn
