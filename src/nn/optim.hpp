#pragma once

/**
 * @file
 * AdamW optimizer (decoupled weight decay), the paper's training setup for
 * the entropy predictor (Sec. 6.1: AdamW, weight decay 1e-2, lr 1e-4).
 */

#include <vector>

#include "nn/module.hpp"

namespace create::nn {

/** AdamW over a fixed parameter list. */
class AdamW
{
  public:
    AdamW(std::vector<Param*> params, double lr, double beta1 = 0.9,
          double beta2 = 0.999, double eps = 1e-8, double weightDecay = 1e-2);

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Zero all parameter gradients. */
    void zeroGrad();

    void setLr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }

  private:
    std::vector<Param*> params_;
    std::vector<Tensor> m_, v_;
    double lr_, beta1_, beta2_, eps_, weightDecay_;
    std::int64_t t_ = 0;
};

} // namespace create::nn
