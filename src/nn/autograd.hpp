#pragma once

/**
 * @file
 * Minimal reverse-mode automatic differentiation over Tensor.
 *
 * This is the training substrate the paper's method depends on: the
 * controller is behavior-cloned, the planner is supervised on the subtask
 * corpus, and the entropy predictor is trained with an MSE loss + AdamW
 * (paper Sec. 6.1). Graphs are tape-free DAGs of shared_ptr Nodes; calling
 * backward() on a scalar root topologically sorts the DAG and runs each
 * node's closure, accumulating into parent gradients.
 *
 * Only the ops the models need are provided; each op documents its adjoint.
 */

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace create::nn {

/** Graph node: a value, an optional gradient, parents, and a backward fn. */
struct Node
{
    Tensor value;
    Tensor grad;                //!< allocated lazily, same shape as value
    bool requiresGrad = false;
    std::vector<std::shared_ptr<Node>> parents;
    std::function<void()> backward; //!< accumulates into parents' grads

    /** Allocate/zero the gradient buffer if needed. */
    void ensureGrad();
};

/** Value handle used by model code. Copyable; shares the node. */
class Var
{
  public:
    Var() = default;
    explicit Var(Tensor value, bool requiresGrad = false);

    bool defined() const { return node_ != nullptr; }
    const Tensor& value() const { return node_->value; }
    Tensor& value() { return node_->value; }
    const Tensor& grad() const { return node_->grad; }
    bool requiresGrad() const { return node_ && node_->requiresGrad; }

    /** Run reverse-mode AD from this scalar (numel()==1) node. */
    void backward();

    /** Zero this node's gradient buffer. */
    void zeroGrad();

    std::shared_ptr<Node> node() const { return node_; }
    static Var fromNode(std::shared_ptr<Node> n);

  private:
    std::shared_ptr<Node> node_;
};

// --- differentiable ops -------------------------------------------------

/** C = A @ B. dA += dC @ B^T, dB += A^T @ dC. */
Var matmul(const Var& a, const Var& b);

/** Elementwise sum (same shape). */
Var add(const Var& a, const Var& b);

/** Row-broadcast bias add: a(MxN) + bias(N). dBias += column sums. */
Var addBias(const Var& a, const Var& bias);

/** Elementwise product. */
Var mul(const Var& a, const Var& b);

/** Multiply by a non-differentiable constant tensor (broadcast over rows
 *  when c has a(M x N), c(N)). Used for the planted outlier scales. */
Var mulRowConst(const Var& a, const Tensor& c);

/** Scalar scale. */
Var scale(const Var& a, float s);

/** ReLU. */
Var relu(const Var& a);

/** SiLU (swish). dy/dx = sig(x) * (1 + x * (1 - sig(x))). */
Var silu(const Var& a);

/** Row-wise softmax. dX = Y o (dY - rowsum(dY o Y)). */
Var softmaxRows(const Var& a);

/** RMSNorm with gain: y = x / rms(x) o gamma (row-wise, eps inside). */
Var rmsNorm(const Var& x, const Var& gamma, float eps = 1e-5f);

/** LayerNorm with gain and bias (row-wise). */
Var layerNorm(const Var& x, const Var& gamma, const Var& beta,
              float eps = 1e-5f);

/** Row gather from an embedding table (V x d). Backward scatter-adds. */
Var embedding(const Var& table, const std::vector<int>& ids);

/** Transpose a rank-2 value. */
Var transpose(const Var& a);

/** Column slice [c0, c1) of a rank-2 value. */
Var sliceCols(const Var& a, std::int64_t c0, std::int64_t c1);

/** Row slice [r0, r1) of a rank-2 value. */
Var sliceRows(const Var& a, std::int64_t r0, std::int64_t r1);

/** Concatenate rank-2 values along columns. */
Var concatCols(const std::vector<Var>& parts);

/** Concatenate rank-2 values along rows. */
Var concatRows(const std::vector<Var>& parts);

/** Reshape (shares data; gradient reshaped back). */
Var reshape(const Var& a, std::vector<std::int64_t> shape);

/**
 * Batched conv2d as a fused node.
 *
 * x: (B, C, H, W); w: (C*k*k, OC); bias: (OC). Output (B, OC, OH, OW).
 * Internally im2col per sample; backward uses cached columns.
 */
Var conv2d(const Var& x, const Var& w, const Var& bias, int k, int stride,
           int pad);

/** 2x2/stride-2 max pooling on (B, C, H, W). */
Var maxPool2d(const Var& x);

/** Global average pool (B, C, H, W) -> (B, C). */
Var globalAvgPool(const Var& x);

/** Mean over rows: (M, N) -> (1, N). */
Var meanRows(const Var& a);

/** Cross-entropy over logits (B, V) vs target ids; scalar mean loss. */
Var crossEntropy(const Var& logits, const std::vector<int>& targets);

/** Mean-squared error between same-shaped tensors; scalar mean loss. */
Var mseLoss(const Var& pred, const Tensor& target);

} // namespace create::nn
