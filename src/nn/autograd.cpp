#include "nn/autograd.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "tensor/ops.hpp"

namespace create::nn {

void
Node::ensureGrad()
{
    if (grad.numel() != value.numel())
        grad = Tensor(value.shape());
}

Var::Var(Tensor value, bool requiresGrad)
{
    node_ = std::make_shared<Node>();
    node_->value = std::move(value);
    node_->requiresGrad = requiresGrad;
}

Var
Var::fromNode(std::shared_ptr<Node> n)
{
    Var v;
    v.node_ = std::move(n);
    return v;
}

void
Var::zeroGrad()
{
    if (node_) {
        node_->ensureGrad();
        node_->grad.fill(0.0f);
    }
}

void
Var::backward()
{
    if (!node_ || node_->value.numel() != 1)
        throw std::logic_error("Var::backward: root must be a defined scalar");
    // Topological order via iterative DFS.
    std::vector<Node*> order;
    std::unordered_set<Node*> visited;
    std::vector<std::pair<Node*, std::size_t>> stack;
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
    while (!stack.empty()) {
        auto& [n, idx] = stack.back();
        if (idx < n->parents.size()) {
            Node* p = n->parents[idx].get();
            ++idx;
            if (p->requiresGrad && !visited.count(p)) {
                visited.insert(p);
                stack.push_back({p, 0});
            }
        } else {
            order.push_back(n);
            stack.pop_back();
        }
    }
    node_->ensureGrad();
    node_->grad.fill(0.0f);
    node_->grad[0] = 1.0f;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node* n = *it;
        if (n->backward)
            n->backward();
    }
}

namespace {

/** Build a child node over parents; requiresGrad if any parent requires. */
std::shared_ptr<Node>
makeNode(Tensor value, std::vector<std::shared_ptr<Node>> parents)
{
    auto n = std::make_shared<Node>();
    n->value = std::move(value);
    n->parents = std::move(parents);
    for (const auto& p : n->parents)
        if (p->requiresGrad)
            n->requiresGrad = true;
    return n;
}

} // namespace

Var
matmul(const Var& a, const Var& b)
{
    auto n = makeNode(ops::matmul(a.value(), b.value()), {a.node(), b.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        auto pb = n->parents[1];
        n->backward = [raw, pa, pb] {
            const Tensor& dC = raw->grad;
            if (pa->requiresGrad) {
                pa->ensureGrad();
                ops::matmulAccum(dC, ops::transpose(pb->value), pa->grad);
            }
            if (pb->requiresGrad) {
                pb->ensureGrad();
                ops::matmulAccum(ops::transpose(pa->value), dC, pb->grad);
            }
        };
    }
    return Var::fromNode(n);
}

Var
add(const Var& a, const Var& b)
{
    auto n = makeNode(ops::add(a.value(), b.value()), {a.node(), b.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        auto pb = n->parents[1];
        n->backward = [raw, pa, pb] {
            for (const auto& p : {pa, pb}) {
                if (!p->requiresGrad)
                    continue;
                p->ensureGrad();
                for (std::int64_t i = 0; i < raw->grad.numel(); ++i)
                    p->grad[i] += raw->grad[i];
            }
        };
    }
    return Var::fromNode(n);
}

Var
addBias(const Var& a, const Var& bias)
{
    auto n = makeNode(ops::addRowBroadcast(a.value(), bias.value()),
                      {a.node(), bias.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        auto pb = n->parents[1];
        n->backward = [raw, pa, pb] {
            const Tensor& dC = raw->grad;
            const std::int64_t m = dC.dim(0), k = dC.dim(1);
            if (pa->requiresGrad) {
                pa->ensureGrad();
                for (std::int64_t i = 0; i < dC.numel(); ++i)
                    pa->grad[i] += dC[i];
            }
            if (pb->requiresGrad) {
                pb->ensureGrad();
                for (std::int64_t i = 0; i < m; ++i)
                    for (std::int64_t j = 0; j < k; ++j)
                        pb->grad[j] += dC.at(i, j);
            }
        };
    }
    return Var::fromNode(n);
}

Var
mul(const Var& a, const Var& b)
{
    auto n = makeNode(ops::mul(a.value(), b.value()), {a.node(), b.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        auto pb = n->parents[1];
        n->backward = [raw, pa, pb] {
            const Tensor& dC = raw->grad;
            if (pa->requiresGrad) {
                pa->ensureGrad();
                for (std::int64_t i = 0; i < dC.numel(); ++i)
                    pa->grad[i] += dC[i] * pb->value[i];
            }
            if (pb->requiresGrad) {
                pb->ensureGrad();
                for (std::int64_t i = 0; i < dC.numel(); ++i)
                    pb->grad[i] += dC[i] * pa->value[i];
            }
        };
    }
    return Var::fromNode(n);
}

Var
mulRowConst(const Var& a, const Tensor& c)
{
    const Tensor& av = a.value();
    Tensor out = av;
    if (c.numel() == av.numel()) {
        for (std::int64_t i = 0; i < out.numel(); ++i)
            out[i] *= c[i];
    } else if (av.rank() == 2 && c.numel() == av.dim(1)) {
        for (std::int64_t i = 0; i < av.dim(0); ++i)
            for (std::int64_t j = 0; j < av.dim(1); ++j)
                out.at(i, j) *= c[j];
    } else {
        throw std::invalid_argument("mulRowConst: shape mismatch");
    }
    auto n = makeNode(std::move(out), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        Tensor cc = c;
        n->backward = [raw, pa, cc] {
            pa->ensureGrad();
            const Tensor& dC = raw->grad;
            if (cc.numel() == dC.numel()) {
                for (std::int64_t i = 0; i < dC.numel(); ++i)
                    pa->grad[i] += dC[i] * cc[i];
            } else {
                for (std::int64_t i = 0; i < dC.dim(0); ++i)
                    for (std::int64_t j = 0; j < dC.dim(1); ++j)
                        pa->grad.at(i, j) += dC.at(i, j) * cc[j];
            }
        };
    }
    return Var::fromNode(n);
}

Var
scale(const Var& a, float s)
{
    auto n = makeNode(ops::scale(a.value(), s), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa, s] {
            pa->ensureGrad();
            for (std::int64_t i = 0; i < raw->grad.numel(); ++i)
                pa->grad[i] += raw->grad[i] * s;
        };
    }
    return Var::fromNode(n);
}

Var
relu(const Var& a)
{
    auto n = makeNode(ops::relu(a.value()), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa] {
            pa->ensureGrad();
            for (std::int64_t i = 0; i < raw->grad.numel(); ++i)
                if (pa->value[i] > 0.0f)
                    pa->grad[i] += raw->grad[i];
        };
    }
    return Var::fromNode(n);
}

Var
silu(const Var& a)
{
    auto n = makeNode(ops::silu(a.value()), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa] {
            pa->ensureGrad();
            for (std::int64_t i = 0; i < raw->grad.numel(); ++i) {
                const float x = pa->value[i];
                const float sig = 1.0f / (1.0f + std::exp(-x));
                const float d = sig * (1.0f + x * (1.0f - sig));
                pa->grad[i] += raw->grad[i] * d;
            }
        };
    }
    return Var::fromNode(n);
}

Var
softmaxRows(const Var& a)
{
    auto n = makeNode(ops::softmaxRows(a.value()), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa] {
            pa->ensureGrad();
            const Tensor& y = raw->value;
            const Tensor& dY = raw->grad;
            for (std::int64_t i = 0; i < y.dim(0); ++i) {
                float dot = 0.0f;
                for (std::int64_t j = 0; j < y.dim(1); ++j)
                    dot += dY.at(i, j) * y.at(i, j);
                for (std::int64_t j = 0; j < y.dim(1); ++j)
                    pa->grad.at(i, j) += y.at(i, j) * (dY.at(i, j) - dot);
            }
        };
    }
    return Var::fromNode(n);
}

Var
rmsNorm(const Var& x, const Var& gamma, float eps)
{
    const Tensor& xv = x.value();
    const std::int64_t m = xv.dim(0), d = xv.dim(1);
    Tensor out({m, d});
    std::vector<float> invRms(static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
        double s = 0.0;
        for (std::int64_t j = 0; j < d; ++j)
            s += static_cast<double>(xv.at(i, j)) * xv.at(i, j);
        const float r = 1.0f /
            std::sqrt(static_cast<float>(s / static_cast<double>(d)) + eps);
        invRms[static_cast<std::size_t>(i)] = r;
        for (std::int64_t j = 0; j < d; ++j)
            out.at(i, j) = xv.at(i, j) * r * gamma.value()[j];
    }
    auto n = makeNode(std::move(out), {x.node(), gamma.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto px = n->parents[0];
        auto pg = n->parents[1];
        n->backward = [raw, px, pg, invRms, d] {
            const Tensor& dY = raw->grad;
            const Tensor& xv2 = px->value;
            const Tensor& g = pg->value;
            const std::int64_t m2 = xv2.dim(0);
            if (pg->requiresGrad)
                pg->ensureGrad();
            if (px->requiresGrad)
                px->ensureGrad();
            for (std::int64_t i = 0; i < m2; ++i) {
                const float r = invRms[static_cast<std::size_t>(i)];
                if (pg->requiresGrad) {
                    for (std::int64_t j = 0; j < d; ++j)
                        pg->grad[j] += dY.at(i, j) * xv2.at(i, j) * r;
                }
                if (px->requiresGrad) {
                    // dx = r * (g o dY) - r^3/d * x * sum(g o dY o x)
                    float dot = 0.0f;
                    for (std::int64_t j = 0; j < d; ++j)
                        dot += g[j] * dY.at(i, j) * xv2.at(i, j);
                    const float coef = r * r * r * dot / static_cast<float>(d);
                    for (std::int64_t j = 0; j < d; ++j) {
                        px->grad.at(i, j) +=
                            g[j] * dY.at(i, j) * r - xv2.at(i, j) * coef;
                    }
                }
            }
        };
    }
    return Var::fromNode(n);
}

Var
layerNorm(const Var& x, const Var& gamma, const Var& beta, float eps)
{
    const Tensor& xv = x.value();
    const std::int64_t m = xv.dim(0), d = xv.dim(1);
    Tensor out({m, d});
    std::vector<float> means(static_cast<std::size_t>(m));
    std::vector<float> invStd(static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
        double s = 0.0;
        for (std::int64_t j = 0; j < d; ++j)
            s += xv.at(i, j);
        const float mu = static_cast<float>(s / static_cast<double>(d));
        double v = 0.0;
        for (std::int64_t j = 0; j < d; ++j) {
            const double dd = xv.at(i, j) - mu;
            v += dd * dd;
        }
        const float iv = 1.0f /
            std::sqrt(static_cast<float>(v / static_cast<double>(d)) + eps);
        means[static_cast<std::size_t>(i)] = mu;
        invStd[static_cast<std::size_t>(i)] = iv;
        for (std::int64_t j = 0; j < d; ++j) {
            out.at(i, j) =
                (xv.at(i, j) - mu) * iv * gamma.value()[j] + beta.value()[j];
        }
    }
    auto n = makeNode(std::move(out), {x.node(), gamma.node(), beta.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto px = n->parents[0];
        auto pg = n->parents[1];
        auto pb = n->parents[2];
        n->backward = [raw, px, pg, pb, means, invStd, d] {
            const Tensor& dY = raw->grad;
            const Tensor& xv2 = px->value;
            const Tensor& g = pg->value;
            const std::int64_t m2 = xv2.dim(0);
            if (pg->requiresGrad)
                pg->ensureGrad();
            if (pb->requiresGrad)
                pb->ensureGrad();
            if (px->requiresGrad)
                px->ensureGrad();
            for (std::int64_t i = 0; i < m2; ++i) {
                const float mu = means[static_cast<std::size_t>(i)];
                const float iv = invStd[static_cast<std::size_t>(i)];
                float sumDg = 0.0f, sumDgXhat = 0.0f;
                for (std::int64_t j = 0; j < d; ++j) {
                    const float xhat = (xv2.at(i, j) - mu) * iv;
                    const float dg = dY.at(i, j) * g[j];
                    sumDg += dg;
                    sumDgXhat += dg * xhat;
                    if (pg->requiresGrad)
                        pg->grad[j] += dY.at(i, j) * xhat;
                    if (pb->requiresGrad)
                        pb->grad[j] += dY.at(i, j);
                }
                if (px->requiresGrad) {
                    const float invD = 1.0f / static_cast<float>(d);
                    for (std::int64_t j = 0; j < d; ++j) {
                        const float xhat = (xv2.at(i, j) - mu) * iv;
                        const float dg = dY.at(i, j) * g[j];
                        px->grad.at(i, j) +=
                            iv * (dg - invD * sumDg - xhat * invD * sumDgXhat);
                    }
                }
            }
        };
    }
    return Var::fromNode(n);
}

Var
embedding(const Var& table, const std::vector<int>& ids)
{
    const Tensor& t = table.value();
    const std::int64_t d = t.dim(1);
    Tensor out({static_cast<std::int64_t>(ids.size()), d});
    for (std::size_t i = 0; i < ids.size(); ++i)
        for (std::int64_t j = 0; j < d; ++j)
            out.at(static_cast<std::int64_t>(i), j) = t.at(ids[i], j);
    auto n = makeNode(std::move(out), {table.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pt = n->parents[0];
        auto idsCopy = ids;
        n->backward = [raw, pt, idsCopy, d] {
            pt->ensureGrad();
            for (std::size_t i = 0; i < idsCopy.size(); ++i)
                for (std::int64_t j = 0; j < d; ++j)
                    pt->grad.at(idsCopy[i], j) +=
                        raw->grad.at(static_cast<std::int64_t>(i), j);
        };
    }
    return Var::fromNode(n);
}

Var
transpose(const Var& a)
{
    auto n = makeNode(ops::transpose(a.value()), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa] {
            pa->ensureGrad();
            const Tensor dT = ops::transpose(raw->grad);
            for (std::int64_t i = 0; i < dT.numel(); ++i)
                pa->grad[i] += dT[i];
        };
    }
    return Var::fromNode(n);
}

Var
sliceCols(const Var& a, std::int64_t c0, std::int64_t c1)
{
    const Tensor& av = a.value();
    const std::int64_t m = av.dim(0), w = c1 - c0;
    Tensor out({m, w});
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < w; ++j)
            out.at(i, j) = av.at(i, c0 + j);
    auto n = makeNode(std::move(out), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa, c0, w] {
            pa->ensureGrad();
            for (std::int64_t i = 0; i < raw->grad.dim(0); ++i)
                for (std::int64_t j = 0; j < w; ++j)
                    pa->grad.at(i, c0 + j) += raw->grad.at(i, j);
        };
    }
    return Var::fromNode(n);
}

Var
sliceRows(const Var& a, std::int64_t r0, std::int64_t r1)
{
    const Tensor& av = a.value();
    const std::int64_t h = r1 - r0, w = av.dim(1);
    auto n = makeNode(ops::sliceRows(av, r0, r1), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa, r0, h, w] {
            pa->ensureGrad();
            for (std::int64_t i = 0; i < h; ++i)
                for (std::int64_t j = 0; j < w; ++j)
                    pa->grad.at(r0 + i, j) += raw->grad.at(i, j);
        };
    }
    return Var::fromNode(n);
}

Var
concatCols(const std::vector<Var>& parts)
{
    const std::int64_t m = parts.front().value().dim(0);
    std::int64_t total = 0;
    std::vector<std::shared_ptr<Node>> parents;
    for (const auto& p : parts) {
        total += p.value().dim(1);
        parents.push_back(p.node());
    }
    Tensor out({m, total});
    std::int64_t off = 0;
    for (const auto& p : parts) {
        const Tensor& pv = p.value();
        for (std::int64_t i = 0; i < m; ++i)
            for (std::int64_t j = 0; j < pv.dim(1); ++j)
                out.at(i, off + j) = pv.at(i, j);
        off += pv.dim(1);
    }
    auto n = makeNode(std::move(out), std::move(parents));
    if (n->requiresGrad) {
        auto raw = n.get();
        auto ps = n->parents;
        n->backward = [raw, ps, m] {
            std::int64_t off2 = 0;
            for (const auto& p : ps) {
                const std::int64_t w = p->value.dim(1);
                if (p->requiresGrad) {
                    p->ensureGrad();
                    for (std::int64_t i = 0; i < m; ++i)
                        for (std::int64_t j = 0; j < w; ++j)
                            p->grad.at(i, j) += raw->grad.at(i, off2 + j);
                }
                off2 += w;
            }
        };
    }
    return Var::fromNode(n);
}

Var
concatRows(const std::vector<Var>& parts)
{
    const std::int64_t w = parts.front().value().dim(1);
    std::int64_t total = 0;
    std::vector<std::shared_ptr<Node>> parents;
    for (const auto& p : parts) {
        total += p.value().dim(0);
        parents.push_back(p.node());
    }
    Tensor out({total, w});
    std::int64_t off = 0;
    for (const auto& p : parts) {
        const Tensor& pv = p.value();
        for (std::int64_t i = 0; i < pv.dim(0); ++i)
            for (std::int64_t j = 0; j < w; ++j)
                out.at(off + i, j) = pv.at(i, j);
        off += pv.dim(0);
    }
    auto n = makeNode(std::move(out), std::move(parents));
    if (n->requiresGrad) {
        auto raw = n.get();
        auto ps = n->parents;
        n->backward = [raw, ps, w] {
            std::int64_t off2 = 0;
            for (const auto& p : ps) {
                const std::int64_t h = p->value.dim(0);
                if (p->requiresGrad) {
                    p->ensureGrad();
                    for (std::int64_t i = 0; i < h; ++i)
                        for (std::int64_t j = 0; j < w; ++j)
                            p->grad.at(i, j) += raw->grad.at(off2 + i, j);
                }
                off2 += h;
            }
        };
    }
    return Var::fromNode(n);
}

Var
reshape(const Var& a, std::vector<std::int64_t> shape)
{
    auto n = makeNode(a.value().reshaped(shape), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa] {
            pa->ensureGrad();
            for (std::int64_t i = 0; i < raw->grad.numel(); ++i)
                pa->grad[i] += raw->grad[i];
        };
    }
    return Var::fromNode(n);
}

Var
conv2d(const Var& x, const Var& w, const Var& bias, int k, int stride, int pad)
{
    const Tensor& xv = x.value();
    if (xv.rank() != 4)
        throw std::invalid_argument("conv2d: (B,C,H,W) input required");
    const std::int64_t b = xv.dim(0), c = xv.dim(1), h = xv.dim(2),
                       wIn = xv.dim(3);
    const int oh = ops::convOutSize(static_cast<int>(h), k, stride, pad);
    const int ow = ops::convOutSize(static_cast<int>(wIn), k, stride, pad);
    const std::int64_t oc = w.value().dim(1);

    auto colsCache = std::make_shared<std::vector<Tensor>>();
    colsCache->reserve(static_cast<std::size_t>(b));
    Tensor out({b, oc, oh, ow});
    for (std::int64_t s = 0; s < b; ++s) {
        Tensor img({c, h, wIn});
        std::copy(xv.data() + s * c * h * wIn,
                  xv.data() + (s + 1) * c * h * wIn, img.data());
        Tensor cols = ops::im2col(img, k, stride, pad);
        Tensor y = ops::matmul(cols, w.value()); // (oh*ow, oc)
        y = ops::addRowBroadcast(y, bias.value());
        // Write channels-first.
        const std::int64_t pixels = static_cast<std::int64_t>(oh) * ow;
        for (std::int64_t pix = 0; pix < pixels; ++pix)
            for (std::int64_t ch = 0; ch < oc; ++ch)
                out.data()[((s * oc + ch) * pixels) + pix] = y.at(pix, ch);
        colsCache->push_back(std::move(cols));
    }
    auto n = makeNode(std::move(out), {x.node(), w.node(), bias.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto px = n->parents[0];
        auto pw = n->parents[1];
        auto pb = n->parents[2];
        const int kk = k, ss = stride, pp = pad;
        n->backward = [raw, px, pw, pb, colsCache, kk, ss, pp] {
            const Tensor& dOut = raw->grad;
            const std::int64_t b2 = dOut.dim(0), oc2 = dOut.dim(1),
                               oh2 = dOut.dim(2), ow2 = dOut.dim(3);
            const std::int64_t c2 = px->value.dim(1), h2 = px->value.dim(2),
                               w2 = px->value.dim(3);
            if (pw->requiresGrad)
                pw->ensureGrad();
            if (pb->requiresGrad)
                pb->ensureGrad();
            if (px->requiresGrad)
                px->ensureGrad();
            const std::int64_t pixels = oh2 * ow2;
            for (std::int64_t s = 0; s < b2; ++s) {
                Tensor dY({pixels, oc2});
                for (std::int64_t pix = 0; pix < pixels; ++pix)
                    for (std::int64_t ch = 0; ch < oc2; ++ch)
                        dY.at(pix, ch) =
                            dOut.data()[((s * oc2 + ch) * pixels) + pix];
                const Tensor& cols = (*colsCache)[static_cast<std::size_t>(s)];
                if (pw->requiresGrad)
                    ops::matmulAccum(ops::transpose(cols), dY, pw->grad);
                if (pb->requiresGrad) {
                    for (std::int64_t pix = 0; pix < pixels; ++pix)
                        for (std::int64_t ch = 0; ch < oc2; ++ch)
                            pb->grad[ch] += dY.at(pix, ch);
                }
                if (px->requiresGrad) {
                    const Tensor dCols =
                        ops::matmul(dY, ops::transpose(pw->value));
                    Tensor dImg({c2, h2, w2});
                    ops::col2imAccum(dCols, static_cast<int>(c2),
                                     static_cast<int>(h2),
                                     static_cast<int>(w2), kk, ss, pp, dImg);
                    float* dst = px->grad.data() + s * c2 * h2 * w2;
                    for (std::int64_t i = 0; i < dImg.numel(); ++i)
                        dst[i] += dImg[i];
                }
            }
        };
    }
    return Var::fromNode(n);
}

Var
maxPool2d(const Var& x)
{
    const Tensor& xv = x.value();
    const std::int64_t b = xv.dim(0), c = xv.dim(1), h = xv.dim(2),
                       w = xv.dim(3);
    const std::int64_t oh = h / 2, ow = w / 2;
    Tensor out({b, c, oh, ow});
    auto argmax = std::make_shared<std::vector<std::int64_t>>(
        static_cast<std::size_t>(out.numel()));
    std::int64_t oi = 0;
    for (std::int64_t s = 0; s < b; ++s) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            const float* plane = xv.data() + (s * c + ch) * h * w;
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xx = 0; xx < ow; ++xx, ++oi) {
                    float best = -1e30f;
                    std::int64_t bestIdx = 0;
                    for (int dy = 0; dy < 2; ++dy) {
                        for (int dx = 0; dx < 2; ++dx) {
                            const std::int64_t idx =
                                (y * 2 + dy) * w + (xx * 2 + dx);
                            if (plane[idx] > best) {
                                best = plane[idx];
                                bestIdx = (s * c + ch) * h * w + idx;
                            }
                        }
                    }
                    out[oi] = best;
                    (*argmax)[static_cast<std::size_t>(oi)] = bestIdx;
                }
            }
        }
    }
    auto n = makeNode(std::move(out), {x.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto px = n->parents[0];
        n->backward = [raw, px, argmax] {
            px->ensureGrad();
            for (std::int64_t i = 0; i < raw->grad.numel(); ++i)
                px->grad[(*argmax)[static_cast<std::size_t>(i)]] +=
                    raw->grad[i];
        };
    }
    return Var::fromNode(n);
}

Var
globalAvgPool(const Var& x)
{
    const Tensor& xv = x.value();
    const std::int64_t b = xv.dim(0), c = xv.dim(1), h = xv.dim(2),
                       w = xv.dim(3);
    Tensor out({b, c});
    const float inv = 1.0f / static_cast<float>(h * w);
    for (std::int64_t s = 0; s < b; ++s) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            const float* plane = xv.data() + (s * c + ch) * h * w;
            float sum = 0.0f;
            for (std::int64_t i = 0; i < h * w; ++i)
                sum += plane[i];
            out.at(s, ch) = sum * inv;
        }
    }
    auto n = makeNode(std::move(out), {x.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto px = n->parents[0];
        n->backward = [raw, px, b, c, h, w, inv] {
            px->ensureGrad();
            for (std::int64_t s = 0; s < b; ++s) {
                for (std::int64_t ch = 0; ch < c; ++ch) {
                    const float g = raw->grad.at(s, ch) * inv;
                    float* plane = px->grad.data() + (s * c + ch) * h * w;
                    for (std::int64_t i = 0; i < h * w; ++i)
                        plane[i] += g;
                }
            }
        };
    }
    return Var::fromNode(n);
}

Var
meanRows(const Var& a)
{
    const Tensor& av = a.value();
    const std::int64_t m = av.dim(0), d = av.dim(1);
    Tensor out({1, d});
    const float inv = 1.0f / static_cast<float>(m);
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < d; ++j)
            out.at(0, j) += av.at(i, j) * inv;
    auto n = makeNode(std::move(out), {a.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pa = n->parents[0];
        n->backward = [raw, pa, m, d, inv] {
            pa->ensureGrad();
            for (std::int64_t i = 0; i < m; ++i)
                for (std::int64_t j = 0; j < d; ++j)
                    pa->grad.at(i, j) += raw->grad.at(0, j) * inv;
        };
    }
    return Var::fromNode(n);
}

Var
crossEntropy(const Var& logits, const std::vector<int>& targets)
{
    const Tensor& lv = logits.value();
    const std::int64_t bsz = lv.dim(0), v = lv.dim(1);
    if (bsz != static_cast<std::int64_t>(targets.size()))
        throw std::invalid_argument("crossEntropy: batch size mismatch");
    Tensor probs = ops::softmaxRows(lv);
    double loss = 0.0;
    for (std::int64_t i = 0; i < bsz; ++i) {
        const float p = std::max(
            probs.at(i, targets[static_cast<std::size_t>(i)]), 1e-12f);
        loss -= std::log(static_cast<double>(p));
    }
    Tensor out({1});
    out[0] = static_cast<float>(loss / static_cast<double>(bsz));
    auto n = makeNode(std::move(out), {logits.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pl = n->parents[0];
        auto probsShared = std::make_shared<Tensor>(std::move(probs));
        auto t = targets;
        n->backward = [raw, pl, probsShared, t, bsz, v] {
            pl->ensureGrad();
            const float g = raw->grad[0] / static_cast<float>(bsz);
            for (std::int64_t i = 0; i < bsz; ++i) {
                for (std::int64_t j = 0; j < v; ++j) {
                    float d = probsShared->at(i, j);
                    if (j == t[static_cast<std::size_t>(i)])
                        d -= 1.0f;
                    pl->grad.at(i, j) += g * d;
                }
            }
        };
    }
    return Var::fromNode(n);
}

Var
mseLoss(const Var& pred, const Tensor& target)
{
    const Tensor& pv = pred.value();
    if (pv.numel() != target.numel())
        throw std::invalid_argument("mseLoss: size mismatch");
    double loss = 0.0;
    for (std::int64_t i = 0; i < pv.numel(); ++i) {
        const double d = pv[i] - target[i];
        loss += d * d;
    }
    Tensor out({1});
    out[0] = static_cast<float>(loss / static_cast<double>(pv.numel()));
    auto n = makeNode(std::move(out), {pred.node()});
    if (n->requiresGrad) {
        auto raw = n.get();
        auto pp = n->parents[0];
        Tensor tcopy = target;
        n->backward = [raw, pp, tcopy] {
            pp->ensureGrad();
            const float g =
                raw->grad[0] * 2.0f / static_cast<float>(pp->value.numel());
            for (std::int64_t i = 0; i < pp->value.numel(); ++i)
                pp->grad[i] += g * (pp->value[i] - tcopy[i]);
        };
    }
    return Var::fromNode(n);
}

} // namespace create::nn
