#include "nn/module.hpp"

#include <cmath>

namespace create::nn {

std::vector<Param*>
Module::parameters()
{
    std::vector<Param*> out;
    for (auto& p : params_)
        out.push_back(p.get());
    for (auto* c : children_) {
        auto sub = c->parameters();
        out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
}

void
Module::save(BlobArchive& ar)
{
    for (auto* p : parameters()) {
        const Tensor& t = p->var.value();
        std::vector<std::uint64_t> dims;
        for (auto d : t.shape())
            dims.push_back(static_cast<std::uint64_t>(d));
        ar.put(p->name, std::move(dims), t.vec());
    }
}

bool
Module::load(const BlobArchive& ar)
{
    for (auto* p : parameters()) {
        if (!ar.has(p->name))
            return false;
        const auto& blob = ar.get(p->name);
        Tensor& t = p->var.value();
        if (static_cast<std::int64_t>(blob.data.size()) != t.numel())
            return false;
        std::copy(blob.data.begin(), blob.data.end(), t.vec().begin());
    }
    return true;
}

Param*
Module::addParam(const std::string& local, Tensor init)
{
    auto p = std::make_unique<Param>();
    p->name = name_ + "." + local;
    p->var = Var(std::move(init), /*requiresGrad=*/true);
    params_.push_back(std::move(p));
    return params_.back().get();
}

void
initUniform(Tensor& t, float range, Rng& rng)
{
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-range, range));
}

void
initXavier(Tensor& t, std::int64_t fanIn, std::int64_t fanOut, Rng& rng)
{
    const float range = std::sqrt(6.0f / static_cast<float>(fanIn + fanOut));
    initUniform(t, range, rng);
}

} // namespace create::nn
