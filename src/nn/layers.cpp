#include "nn/layers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace create::nn {

// --- Linear ---------------------------------------------------------------

Linear::Linear(std::string name, int in, int out, bool withBias, Rng& rng)
    : Module(std::move(name)), in_(in), out_(out)
{
    Tensor w({in, out});
    initXavier(w, in, out, rng);
    w_ = addParam("weight", std::move(w));
    if (withBias)
        b_ = addParam("bias", Tensor({out}));
}

Var
Linear::forward(const Var& x)
{
    Var y = matmul(x, w_->var);
    if (b_)
        y = addBias(y, b_->var);
    if (hasOutScale_)
        y = mulRowConst(y, outScale_);
    return y;
}

Tensor
Linear::infer(const Tensor& x, ComputeContext& ctx)
{
    // The channel scale is folded into the deployed weight (at freeze /
    // calibration time, inside faultyLinear) so that the quantization
    // scale and AD bound are calibrated on the outlier-laden outputs
    // (exactly what real low-precision LLM deployment sees).
    return faultyLinear(x, w_->var.value(), b_ ? &b_->var.value() : nullptr,
                        qstate_, ctx, name(),
                        hasOutScale_ ? &outScale_ : nullptr);
}

void
Linear::setOutChannelScale(Tensor s)
{
    if (s.numel() != out_)
        throw std::invalid_argument("Linear::setOutChannelScale: size");
    outScale_ = std::move(s);
    hasOutScale_ = true;
    qstate_.invalidate();
}

void
Linear::clearOutChannelScale()
{
    hasOutScale_ = false;
    outScale_ = Tensor();
    qstate_.invalidate();
}

Tensor
Linear::effectiveWeight() const
{
    Tensor w = w_->var.value();
    if (hasOutScale_) {
        for (std::int64_t i = 0; i < w.dim(0); ++i)
            for (std::int64_t j = 0; j < w.dim(1); ++j)
                w.at(i, j) *= outScale_[j];
    }
    return w;
}

void
Linear::setWeight(Tensor w)
{
    if (w.numel() != w_->var.value().numel())
        throw std::invalid_argument("Linear::setWeight: shape mismatch");
    w_->var.value() = std::move(w);
    qstate_.invalidate();
}

// --- Embedding --------------------------------------------------------------

Embedding::Embedding(std::string name, int vocab, int dim, Rng& rng)
    : Module(std::move(name)), dim_(dim)
{
    Tensor t({vocab, dim});
    initUniform(t, 0.5f, rng);
    table_ = addParam("table", std::move(t));
}

Var
Embedding::forward(const std::vector<int>& ids)
{
    return embedding(table_->var, ids);
}

Tensor
Embedding::infer(const std::vector<int>& ids) const
{
    const Tensor& t = table_->var.value();
    Tensor out({static_cast<std::int64_t>(ids.size()), dim_});
    for (std::size_t i = 0; i < ids.size(); ++i) {
        assert(ids[i] >= 0 && ids[i] < t.dim(0) &&
               "Embedding::infer: token id out of range");
        const float* src = t.data() + static_cast<std::int64_t>(ids[i]) * dim_;
        std::copy(src, src + dim_, out.data() + static_cast<std::int64_t>(i) * dim_);
    }
    return out;
}

// --- RMSNorm ---------------------------------------------------------------

RMSNorm::RMSNorm(std::string name, int dim) : Module(std::move(name))
{
    g_ = addParam("gain", Tensor::full({dim}, 1.0f));
}

Var
RMSNorm::forward(const Var& x)
{
    return rmsNorm(x, g_->var);
}

Tensor
RMSNorm::infer(const Tensor& x) const
{
    const std::int64_t m = x.dim(0), d = x.dim(1);
    const Tensor& g = g_->var.value();
    Tensor out({m, d});
    for (std::int64_t i = 0; i < m; ++i) {
        double s = 0.0;
        for (std::int64_t j = 0; j < d; ++j)
            s += static_cast<double>(x.at(i, j)) * x.at(i, j);
        const float r = 1.0f /
            std::sqrt(static_cast<float>(s / static_cast<double>(d)) + 1e-5f);
        for (std::int64_t j = 0; j < d; ++j)
            out.at(i, j) = x.at(i, j) * r * g[j];
    }
    return out;
}

// --- LayerNorm ---------------------------------------------------------------

LayerNorm::LayerNorm(std::string name, int dim) : Module(std::move(name))
{
    g_ = addParam("gain", Tensor::full({dim}, 1.0f));
    b_ = addParam("bias", Tensor({dim}));
}

Var
LayerNorm::forward(const Var& x)
{
    return layerNorm(x, g_->var, b_->var);
}

Tensor
LayerNorm::infer(const Tensor& x) const
{
    const std::int64_t m = x.dim(0), d = x.dim(1);
    const Tensor& g = g_->var.value();
    const Tensor& b = b_->var.value();
    Tensor out({m, d});
    for (std::int64_t i = 0; i < m; ++i) {
        double s = 0.0;
        for (std::int64_t j = 0; j < d; ++j)
            s += x.at(i, j);
        const float mu = static_cast<float>(s / static_cast<double>(d));
        double v = 0.0;
        for (std::int64_t j = 0; j < d; ++j) {
            const double dd = x.at(i, j) - mu;
            v += dd * dd;
        }
        const float iv = 1.0f /
            std::sqrt(static_cast<float>(v / static_cast<double>(d)) + 1e-5f);
        for (std::int64_t j = 0; j < d; ++j)
            out.at(i, j) = (x.at(i, j) - mu) * iv * g[j] + b[j];
    }
    return out;
}

// --- Conv2d ---------------------------------------------------------------

Conv2d::Conv2d(std::string name, int cin, int cout, int k, int stride, int pad,
               Rng& rng)
    : Module(std::move(name)), cin_(cin), cout_(cout), k_(k), stride_(stride),
      pad_(pad)
{
    Tensor w({static_cast<std::int64_t>(cin) * k * k, cout});
    initXavier(w, cin * k * k, cout, rng);
    w_ = addParam("weight", std::move(w));
    b_ = addParam("bias", Tensor({cout}));
}

Var
Conv2d::forward(const Var& x)
{
    return conv2d(x, w_->var, b_->var, k_, stride_, pad_);
}

Tensor
Conv2d::infer(const Tensor& x, ComputeContext& ctx)
{
    if (x.rank() != 3 || x.dim(0) != cin_)
        throw std::invalid_argument("Conv2d::infer: (C,H,W) sample required");
    const int oh = ops::convOutSize(static_cast<int>(x.dim(1)), k_, stride_, pad_);
    const int ow = ops::convOutSize(static_cast<int>(x.dim(2)), k_, stride_, pad_);
    const Tensor cols = ops::im2col(x, k_, stride_, pad_);
    // Bias added in FP32 after AD, same as Linear.
    Tensor y = faultyLinear(cols, w_->var.value(), &b_->var.value(), qstate_,
                            ctx, name());
    // (oh*ow, oc) -> (oc, oh, ow)
    Tensor out({cout_, oh, ow});
    const std::int64_t pixels = static_cast<std::int64_t>(oh) * ow;
    for (std::int64_t pix = 0; pix < pixels; ++pix)
        for (int ch = 0; ch < cout_; ++ch)
            out.data()[ch * pixels + pix] = y.at(pix, ch);
    return out;
}

} // namespace create::nn
