#pragma once

/**
 * @file
 * Transformer blocks matching Fig. 3 of the paper:
 *
 *  - LlamaBlock (planner): pre-RMSNorm attention + pre-RMSNorm
 *    SiLU(gate) * up -> down MLP, residual connections. Supports planted
 *    per-channel outlier scales on the residual-writing projections (O and
 *    Down) to reproduce LLM systematic outliers (Fig. 5(i)).
 *
 *  - PostNormBlock (controller): post-LayerNorm attention and
 *    FC1 -> ReLU -> FC2 MLP, the architecture of the Transformer
 *    controller in Fig. 3 (right).
 */

#include "nn/attention.hpp"

namespace create::nn {

/** LLaMA-style pre-norm block used by the planner LLM. */
class LlamaBlock : public Module
{
  public:
    LlamaBlock(std::string name, int dim, int mlpDim, int heads, Rng& rng);

    Var forward(const Var& x);
    Tensor infer(const Tensor& x, ComputeContext& ctx);

    MultiHeadAttention& attn() { return attn_; }
    RMSNorm& norm1() { return norm1_; }
    RMSNorm& norm2() { return norm2_; }
    Linear& gate() { return gate_; }
    Linear& up() { return up_; }
    Linear& down() { return down_; }

    /** Plant outlier channels: fixed scale on O and Down output channels. */
    void plantOutliers(const Tensor& channelScale);

  private:
    RMSNorm norm1_, norm2_;
    MultiHeadAttention attn_;
    Linear gate_, up_, down_;
};

/** Post-norm block used by the RL controller. */
class PostNormBlock : public Module
{
  public:
    PostNormBlock(std::string name, int dim, int mlpDim, int heads, Rng& rng);

    Var forward(const Var& x);
    Tensor infer(const Tensor& x, ComputeContext& ctx);

    MultiHeadAttention& attn() { return attn_; }
    Linear& fc1() { return fc1_; }
    Linear& fc2() { return fc2_; }

  private:
    MultiHeadAttention attn_;
    LayerNorm norm1_, norm2_;
    Linear fc1_, fc2_;
};

} // namespace create::nn
