#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace create::nn {

MultiHeadAttention::MultiHeadAttention(std::string name, int dim, int heads,
                                       Rng& rng)
    : Module(std::move(name)), dim_(dim), heads_(heads), headDim_(dim / heads),
      q_(this->name() + ".q", dim, dim, /*withBias=*/false, rng),
      k_(this->name() + ".k", dim, dim, /*withBias=*/false, rng),
      v_(this->name() + ".v", dim, dim, /*withBias=*/false, rng),
      o_(this->name() + ".o", dim, dim, /*withBias=*/false, rng)
{
    if (dim % heads != 0)
        throw std::invalid_argument("MultiHeadAttention: dim % heads != 0");
    addChild(&q_);
    addChild(&k_);
    addChild(&v_);
    addChild(&o_);
}

Var
MultiHeadAttention::forward(const Var& x)
{
    const Var q = q_.forward(x);
    const Var k = k_.forward(x);
    const Var v = v_.forward(x);
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(headDim_));
    std::vector<Var> headsOut;
    headsOut.reserve(static_cast<std::size_t>(heads_));
    for (int h = 0; h < heads_; ++h) {
        const std::int64_t c0 = static_cast<std::int64_t>(h) * headDim_;
        const std::int64_t c1 = c0 + headDim_;
        const Var qh = sliceCols(q, c0, c1);
        const Var kh = sliceCols(k, c0, c1);
        const Var vh = sliceCols(v, c0, c1);
        Var scores = scale(matmul(qh, transpose(kh)), invSqrt);
        const Var attn = softmaxRows(scores);
        headsOut.push_back(matmul(attn, vh));
    }
    return o_.forward(concatCols(headsOut));
}

Tensor
MultiHeadAttention::infer(const Tensor& x, ComputeContext& ctx)
{
    const Tensor q = q_.infer(x, ctx);
    const Tensor k = k_.infer(x, ctx);
    const Tensor v = v_.infer(x, ctx);
    const std::int64_t t = x.dim(0);
    const std::int64_t hd = headDim_;
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(headDim_));

    // Per-head score/context math runs on contiguous row-major slabs from
    // the context workspace instead of strided per-element .at() walks:
    //  - attnK holds K_h transposed (hd x t), so the score rows build as
    //    d-ordered rank-1 updates that vectorize across keys,
    //  - attnV holds V_h (t x hd), so context rows build as j-ordered
    //    axpy updates that vectorize across head channels.
    // Every output element still accumulates in the same ascending d / j
    // order as the naive triple loop, so results are bit-identical (the
    // golden-reference attention test asserts this).
    GemmWorkspace& ws = ctx.ws;
    const std::size_t slab = static_cast<std::size_t>(t * hd);
    ws.attnK.resize(slab);
    ws.attnV.resize(slab);
    ws.attnScores.resize(static_cast<std::size_t>(t * t));
    Tensor ctxOut({t, dim_});
    for (int h = 0; h < heads_; ++h) {
        const std::int64_t c0 = static_cast<std::int64_t>(h) * hd;
        for (std::int64_t j = 0; j < t; ++j) {
            const float* krow = k.data() + j * dim_ + c0;
            const float* vrow = v.data() + j * dim_ + c0;
            for (std::int64_t d = 0; d < hd; ++d)
                ws.attnK[static_cast<std::size_t>(d * t + j)] = krow[d];
            std::copy(vrow, vrow + hd,
                      ws.attnV.begin() + static_cast<std::ptrdiff_t>(j * hd));
        }
        for (std::int64_t i = 0; i < t; ++i) {
            // scores(i, :) = (q_h row i) @ K_h^T * invSqrt
            float* srow = ws.attnScores.data() + i * t;
            std::fill(srow, srow + t, 0.0f);
            const float* qrow = q.data() + i * dim_ + c0;
            for (std::int64_t d = 0; d < hd; ++d) {
                const float qv = qrow[d];
                const float* kt = ws.attnK.data() + d * t;
                for (std::int64_t j = 0; j < t; ++j)
                    srow[j] += qv * kt[j];
            }
            for (std::int64_t j = 0; j < t; ++j)
                srow[j] *= invSqrt;
            // Row softmax (same operation sequence as ops::softmaxRows).
            float mx = -1e30f;
            for (std::int64_t j = 0; j < t; ++j)
                mx = std::max(mx, srow[j]);
            float sum = 0.0f;
            for (std::int64_t j = 0; j < t; ++j) {
                const float e = std::exp(srow[j] - mx);
                srow[j] = e;
                sum += e;
            }
            const float inv = 1.0f / sum;
            for (std::int64_t j = 0; j < t; ++j)
                srow[j] *= inv;
            // ctxOut(i, head slice) = attn(i, :) @ V_h
            float* crow = ctxOut.data() + i * dim_ + c0;
            std::fill(crow, crow + hd, 0.0f);
            for (std::int64_t j = 0; j < t; ++j) {
                const float av = srow[j];
                const float* vrow = ws.attnV.data() + j * hd;
                for (std::int64_t d = 0; d < hd; ++d)
                    crow[d] += av * vrow[d];
            }
        }
    }
    // Score/context FLOPs on the vector path still cost energy.
    ctx.meter.addGemm(ctx.domain,
                      2.0 * static_cast<double>(t) * t * dim_, ctx.voltage());
    return o_.infer(ctxOut, ctx);
}

} // namespace create::nn
