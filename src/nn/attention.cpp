#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace create::nn {

MultiHeadAttention::MultiHeadAttention(std::string name, int dim, int heads,
                                       Rng& rng)
    : Module(std::move(name)), dim_(dim), heads_(heads), headDim_(dim / heads),
      q_(this->name() + ".q", dim, dim, /*withBias=*/false, rng),
      k_(this->name() + ".k", dim, dim, /*withBias=*/false, rng),
      v_(this->name() + ".v", dim, dim, /*withBias=*/false, rng),
      o_(this->name() + ".o", dim, dim, /*withBias=*/false, rng)
{
    if (dim % heads != 0)
        throw std::invalid_argument("MultiHeadAttention: dim % heads != 0");
    addChild(&q_);
    addChild(&k_);
    addChild(&v_);
    addChild(&o_);
}

Var
MultiHeadAttention::forward(const Var& x)
{
    const Var q = q_.forward(x);
    const Var k = k_.forward(x);
    const Var v = v_.forward(x);
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(headDim_));
    std::vector<Var> headsOut;
    headsOut.reserve(static_cast<std::size_t>(heads_));
    for (int h = 0; h < heads_; ++h) {
        const std::int64_t c0 = static_cast<std::int64_t>(h) * headDim_;
        const std::int64_t c1 = c0 + headDim_;
        const Var qh = sliceCols(q, c0, c1);
        const Var kh = sliceCols(k, c0, c1);
        const Var vh = sliceCols(v, c0, c1);
        Var scores = scale(matmul(qh, transpose(kh)), invSqrt);
        const Var attn = softmaxRows(scores);
        headsOut.push_back(matmul(attn, vh));
    }
    return o_.forward(concatCols(headsOut));
}

Tensor
MultiHeadAttention::infer(const Tensor& x, ComputeContext& ctx)
{
    const Tensor q = q_.infer(x, ctx);
    const Tensor k = k_.infer(x, ctx);
    const Tensor v = v_.infer(x, ctx);
    const std::int64_t t = x.dim(0);
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(headDim_));
    Tensor ctxOut({t, dim_});
    for (int h = 0; h < heads_; ++h) {
        const std::int64_t c0 = static_cast<std::int64_t>(h) * headDim_;
        // scores = q_h @ k_h^T * invSqrt
        Tensor scores({t, t});
        for (std::int64_t i = 0; i < t; ++i) {
            for (std::int64_t j = 0; j < t; ++j) {
                float s = 0.0f;
                for (int d = 0; d < headDim_; ++d)
                    s += q.at(i, c0 + d) * k.at(j, c0 + d);
                scores.at(i, j) = s * invSqrt;
            }
        }
        const Tensor attn = ops::softmaxRows(scores);
        for (std::int64_t i = 0; i < t; ++i) {
            for (int d = 0; d < headDim_; ++d) {
                float s = 0.0f;
                for (std::int64_t j = 0; j < t; ++j)
                    s += attn.at(i, j) * v.at(j, c0 + d);
                ctxOut.at(i, c0 + d) = s;
            }
        }
    }
    // Score/context FLOPs on the vector path still cost energy.
    ctx.meter.addGemm(ctx.domain,
                      2.0 * static_cast<double>(t) * t * dim_, ctx.voltage());
    return o_.infer(ctxOut, ctx);
}

} // namespace create::nn
