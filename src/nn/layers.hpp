#pragma once

/**
 * @file
 * Concrete layers. Each has two forward paths:
 *  - forward(Var):  FP32 autograd path used for training,
 *  - infer(Tensor, ComputeContext&): deployment path where every GEMM/conv
 *    runs through the quantized fault-injectable accelerator pipeline
 *    (hw/faulty_gemm). Normalizations/activations/pooling execute in the
 *    FP32 vector unit and are not injection targets, matching the paper's
 *    methodology (errors are injected into GEMM/conv outputs only).
 */

#include "hw/faulty_gemm.hpp"
#include "nn/module.hpp"

namespace create::nn {

/**
 * Fully connected layer with weight (in x out) and optional bias.
 *
 * Supports a fixed (non-trainable) per-output-channel scale used to plant
 * LLM-style systematic activation outliers (DESIGN.md substitution #1):
 * the scale is structurally part of the layer in both paths, so training
 * cannot optimize it away and the quantization/AD calibration sees the
 * outlier-laden outputs exactly as deployed hardware would.
 */
class Linear : public Module
{
  public:
    Linear(std::string name, int in, int out, bool withBias, Rng& rng);

    /** Training path. */
    Var forward(const Var& x);

    /** Deployment path through the quantized faulty pipeline. */
    Tensor infer(const Tensor& x, ComputeContext& ctx);

    /** Install a fixed per-output-channel scale (numel == out). */
    void setOutChannelScale(Tensor s);
    bool hasOutChannelScale() const { return hasOutScale_; }
    const Tensor& outChannelScale() const { return outScale_; }

    /** Remove the structural scale (used after it is folded by rotation). */
    void clearOutChannelScale();

    /** Effective deployed weight: W with the channel scale folded in. */
    Tensor effectiveWeight() const;

    /** Overwrite the weight (rotation pass). Invalidates quant state. */
    void setWeight(Tensor w);

    Tensor& weight() { return w_->var.value(); }
    const Tensor& weight() const { return w_->var.value(); }
    Tensor* biasTensor() { return b_ ? &b_->var.value() : nullptr; }

    QuantGemmState& quantState() { return qstate_; }
    void invalidateQuant() { qstate_.invalidate(); }

    int inDim() const { return in_; }
    int outDim() const { return out_; }

  private:
    int in_, out_;
    Param* w_;
    Param* b_ = nullptr;
    Tensor outScale_;
    bool hasOutScale_ = false;
    QuantGemmState qstate_;
};

/** Token embedding table (rows = vocab). Lookups are memory reads (ECC-
 *  protected per Sec. 3.1), so the infer path is exact. */
class Embedding : public Module
{
  public:
    Embedding(std::string name, int vocab, int dim, Rng& rng);

    Var forward(const std::vector<int>& ids);
    Tensor infer(const std::vector<int>& ids) const;

    Tensor& table() { return table_->var.value(); }
    int dim() const { return dim_; }

  private:
    int dim_;
    Param* table_;
};

/** RMSNorm with learnable gain (LLaMA-style pre-norm). */
class RMSNorm : public Module
{
  public:
    RMSNorm(std::string name, int dim);

    Var forward(const Var& x);
    Tensor infer(const Tensor& x) const;

    Tensor& gain() { return g_->var.value(); }

  private:
    Param* g_;
};

/** LayerNorm with learnable gain and bias (controller-style post-norm). */
class LayerNorm : public Module
{
  public:
    LayerNorm(std::string name, int dim);

    Var forward(const Var& x);
    Tensor infer(const Tensor& x) const;

    Tensor& gain() { return g_->var.value(); }
    Tensor& bias() { return b_->var.value(); }

  private:
    Param* g_;
    Param* b_;
};

/** Conv2d with square kernel; weight stored as (C*k*k x OC) GEMM matrix. */
class Conv2d : public Module
{
  public:
    Conv2d(std::string name, int cin, int cout, int k, int stride, int pad,
           Rng& rng);

    /** Training path on a batch (B, C, H, W). */
    Var forward(const Var& x);

    /** Deployment path on a single sample (C, H, W) -> (OC, OH, OW). */
    Tensor infer(const Tensor& x, ComputeContext& ctx);

    QuantGemmState& quantState() { return qstate_; }

  private:
    int cin_, cout_, k_, stride_, pad_;
    Param* w_;
    Param* b_;
    QuantGemmState qstate_;
};

} // namespace create::nn
