#include "core/create_system.hpp"

#include "core/rotation.hpp"

namespace create {

MineSystem::MineSystem(bool verbose)
    : models_(ModelZoo::mineModels(verbose))
{
}

PlannerModel&
MineSystem::planner(bool rotated)
{
    if (!rotated)
        return *models_.planner;
    if (!rotatedPlanner_) {
        // Fresh copy of the trained planner, rotated offline, recalibrated.
        rotatedPlanner_ = ModelZoo::minePlanner(/*verbose=*/false);
        applyWeightRotation(*rotatedPlanner_);
        ModelZoo::calibrateMinePlanner(*rotatedPlanner_);
    }
    return *rotatedPlanner_;
}

void
MineSystem::prepare(const CreateConfig& cfg)
{
    if (cfg.weightRotation)
        planner(true);
}

std::unique_ptr<EmbodiedSystem>
MineSystem::replicate() const
{
    // Model training is deterministic and cached on disk by the time this
    // instance exists, so a fresh MineSystem is bit-identical to this one.
    auto copy = std::make_unique<MineSystem>(/*verbose=*/false);
    copy->agentCfg_ = agentCfg_;
    return copy;
}

EpisodeResult
MineSystem::runEpisode(int taskId, std::uint64_t seed,
                       const CreateConfig& cfg)
{
    ComputeContext plannerCtx(seed ^ 0x9A9A1ull);
    ComputeContext controllerCtx(seed ^ 0x7B7B2ull);
    cfg.applyTo(plannerCtx, /*isPlanner=*/true);
    cfg.applyTo(controllerCtx, /*isPlanner=*/false);

    PlannerModel& p = planner(cfg.weightRotation);
    EmbodiedAgent agent(p, *models_.controller, agentCfg_);

    std::unique_ptr<VoltageScaler> scaler;
    if (cfg.voltageScaling) {
        scaler = std::make_unique<VoltageScaler>(*models_.predictor,
                                                 cfg.policy, cfg.vsInterval);
        // VS implies voltage-dependent errors on the controller.
        if (cfg.mode != InjectionMode::None && cfg.injectController)
            controllerCtx.setVoltageMode();
    }
    return agent.runEpisode(static_cast<MineTask>(taskId), seed, plannerCtx,
                            controllerCtx, scaler.get());
}

} // namespace create
