#include "core/create_system.hpp"

#include "core/rotation.hpp"

namespace create {

CreateConfig
CreateConfig::clean()
{
    return CreateConfig{};
}

CreateConfig
CreateConfig::uniform(double ber)
{
    CreateConfig cfg;
    cfg.mode = InjectionMode::Uniform;
    cfg.uniformBer = ber;
    return cfg;
}

CreateConfig
CreateConfig::atVoltage(double plannerV, double controllerV)
{
    CreateConfig cfg;
    cfg.mode = InjectionMode::Voltage;
    cfg.plannerVoltage = plannerV;
    cfg.controllerVoltage = controllerV;
    return cfg;
}

CreateConfig
CreateConfig::fullCreate(double plannerV, EntropyVoltagePolicy policy,
                         int interval)
{
    CreateConfig cfg;
    cfg.mode = InjectionMode::Voltage;
    cfg.anomalyDetection = true;
    cfg.weightRotation = true;
    cfg.voltageScaling = true;
    cfg.plannerVoltage = plannerV;
    cfg.controllerVoltage = TimingErrorModel::kNominalVoltage;
    cfg.policy = std::move(policy);
    cfg.vsInterval = interval;
    return cfg;
}

CreateSystem::CreateSystem(bool verbose)
    : models_(ModelZoo::mineModels(verbose))
{
}

PlannerModel&
CreateSystem::planner(bool rotated)
{
    if (!rotated)
        return *models_.planner;
    if (!rotatedPlanner_) {
        // Fresh copy of the trained planner, rotated offline, recalibrated.
        rotatedPlanner_ = ModelZoo::minePlanner(/*verbose=*/false);
        applyWeightRotation(*rotatedPlanner_);
        ModelZoo::calibrateMinePlanner(*rotatedPlanner_);
    }
    return *rotatedPlanner_;
}

void
CreateSystem::configureContext(ComputeContext& ctx, bool isPlanner,
                               const CreateConfig& cfg) const
{
    ctx.anomalyDetection = cfg.anomalyDetection;
    ctx.protection = cfg.protection;
    ctx.bits = cfg.bits;
    ctx.componentFilter = cfg.componentFilter;
    const bool inject = isPlanner ? cfg.injectPlanner : cfg.injectController;
    if (!inject || cfg.mode == InjectionMode::None) {
        ctx.setCleanMode();
        ctx.setVoltage(isPlanner ? cfg.plannerVoltage
                                 : cfg.controllerVoltage);
        return;
    }
    if (cfg.mode == InjectionMode::Uniform) {
        const double override_ =
            isPlanner ? cfg.plannerBer : cfg.controllerBer;
        ctx.setUniformBer(override_ >= 0.0 ? override_ : cfg.uniformBer);
        ctx.setVoltage(isPlanner ? cfg.plannerVoltage
                                 : cfg.controllerVoltage);
    } else {
        ctx.setVoltage(isPlanner ? cfg.plannerVoltage
                                 : cfg.controllerVoltage);
        ctx.setVoltageMode();
    }
}

EpisodeResult
CreateSystem::runEpisode(MineTask task, std::uint64_t seed,
                         const CreateConfig& cfg)
{
    ComputeContext plannerCtx(seed ^ 0x9A9A1ull);
    ComputeContext controllerCtx(seed ^ 0x7B7B2ull);
    configureContext(plannerCtx, /*isPlanner=*/true, cfg);
    configureContext(controllerCtx, /*isPlanner=*/false, cfg);

    PlannerModel& p = planner(cfg.weightRotation);
    EmbodiedAgent agent(p, *models_.controller, agentCfg_);

    std::unique_ptr<VoltageScaler> scaler;
    if (cfg.voltageScaling) {
        scaler = std::make_unique<VoltageScaler>(*models_.predictor,
                                                 cfg.policy, cfg.vsInterval);
        // VS implies voltage-dependent errors on the controller.
        if (cfg.mode != InjectionMode::None && cfg.injectController)
            controllerCtx.setVoltageMode();
    }
    return agent.runEpisode(task, seed, plannerCtx, controllerCtx,
                            scaler.get());
}

TaskStats
CreateSystem::evaluate(MineTask task, const CreateConfig& cfg, int reps,
                       std::uint64_t seed0)
{
    std::vector<EpisodeResult> results;
    results.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i)
        results.push_back(
            runEpisode(task, seed0 + static_cast<std::uint64_t>(i), cfg));
    return aggregate(results, energy_);
}

} // namespace create
