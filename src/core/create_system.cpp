#include "core/create_system.hpp"

#include "core/rotation.hpp"

namespace create {

MineSystem::MineSystem(bool verbose)
    : shared_(std::make_shared<SharedModelSet>())
{
    MineModels models = ModelZoo::mineModels(verbose);
    shared_->planner = std::move(models.planner);
    shared_->controller = std::move(models.controller);
    shared_->predictor = std::move(models.predictor);
}

MineSystem::MineSystem(std::shared_ptr<SharedModelSet> shared,
                       AgentConfig agentCfg)
    : shared_(std::move(shared)), agentCfg_(agentCfg)
{
}

PlannerModel&
MineSystem::planner(bool rotated)
{
    if (!rotated)
        return *shared_->planner;
    if (!shared_->rotatedPlanner) {
        // Fresh copy of the trained planner, rotated offline, recalibrated.
        std::shared_ptr<PlannerModel> r =
            ModelZoo::minePlanner(/*verbose=*/false);
        applyWeightRotation(*r);
        ModelZoo::calibrateMinePlanner(*r);
        shared_->rotatedPlanner = std::move(r);
    }
    return *shared_->rotatedPlanner;
}

void
MineSystem::prepare(const CreateConfig& cfg)
{
    // Build lazy members and freeze every layer the config will touch at
    // its deployment width -- serially, so shared model state is read-only
    // once episodes (possibly on a worker pool) start.
    warmFreezePlanner(planner(cfg.weightRotation), cfg.bits);
    warmFreezeController(*shared_->controller, cfg.bits);
    if (cfg.voltageScaling)
        warmFreezePredictor(*shared_->predictor);
}

std::unique_ptr<EmbodiedSystem>
MineSystem::replicate() const
{
    // Replicas share the frozen model set (weights, quant scales, AD
    // bounds exist once per process); only per-worker mutable state --
    // the per-episode contexts with their RNG streams, meters, and
    // workspaces -- is created fresh. See core/shared_models.hpp.
    return std::unique_ptr<EmbodiedSystem>(
        new MineSystem(shared_, agentCfg_));
}

EpisodeResult
MineSystem::runEpisode(int taskId, std::uint64_t seed,
                       const CreateConfig& cfg)
{
    ComputeContext plannerCtx(seed ^ 0x9A9A1ull);
    ComputeContext controllerCtx(seed ^ 0x7B7B2ull);
    // Cross-episode GEMM fusion (null = direct dispatch; bit-identical).
    plannerCtx.gemmSink = gemmSink();
    controllerCtx.gemmSink = gemmSink();
    cfg.applyTo(plannerCtx, /*isPlanner=*/true);
    cfg.applyTo(controllerCtx, /*isPlanner=*/false);

    PlannerModel& p = planner(cfg.weightRotation);
    EmbodiedAgent agent(p, *shared_->controller, agentCfg_);

    std::unique_ptr<VoltageScaler> scaler;
    if (cfg.voltageScaling) {
        scaler = std::make_unique<VoltageScaler>(*shared_->predictor,
                                                 cfg.policy, cfg.vsInterval);
        // VS implies voltage-dependent errors on the controller.
        if (cfg.mode != InjectionMode::None && cfg.injectController)
            controllerCtx.setVoltageMode();
    }
    return agent.runEpisode(static_cast<MineTask>(taskId), seed, plannerCtx,
                            controllerCtx, scaler.get());
}

} // namespace create
