#include "core/nav_system.hpp"

#include "core/platform_episode.hpp"
#include "core/rotation.hpp"

namespace create {

namespace {

/** Episode types + hooks of the navigation family. */
struct NavEpisodeTraits
{
    using World = NavWorld;
    using Task = NavTask;
    using Action = NavAction;
    static constexpr int kNumActions = kNumNavActions;
    static constexpr int kStepCap = NavWorld::kStepCap;

    static std::vector<NavSubtask> decodePlan(const std::vector<int>& t)
    {
        return platforms::decodeNavPlan(t);
    }
    static std::vector<float> prompt(NavSubtask st, const NavObs& obs,
                                     int promptDim)
    {
        return platforms::navPrompt(st, obs, promptDim);
    }
};

PaperEnergyModel
navEnergyModel(const std::string& controllerPlatform)
{
    return PaperEnergyModel(workloads::navLlama(),
                            controllerPlatform == "pathrt"
                                ? workloads::pathRt()
                                : workloads::swiftPilot(),
                            workloads::entropyPredictor());
}

} // namespace

NavSystem::NavSystem(std::string plannerPlatform,
                     std::string controllerPlatform, bool verbose)
    : plannerPlatform_(std::move(plannerPlatform)),
      controllerPlatform_(std::move(controllerPlatform)),
      label_(plannerPlatform_ + "+" + controllerPlatform_),
      verbose_(verbose),
      planner_(platforms::navPlanner(plannerPlatform_, verbose)),
      controller_(platforms::navController(controllerPlatform_, verbose)),
      energy_(navEnergyModel(controllerPlatform_))
{
}

PlannerModel&
NavSystem::planner(bool rotated)
{
    if (!rotated)
        return *planner_;
    if (!rotatedPlanner_) {
        rotatedPlanner_ =
            platforms::navPlanner(plannerPlatform_, /*verbose=*/false);
        applyWeightRotation(*rotatedPlanner_);
        platforms::calibrateNavPlanner(*rotatedPlanner_);
    }
    return *rotatedPlanner_;
}

EntropyPredictor&
NavSystem::predictor()
{
    if (!predictor_)
        predictor_ = platforms::navPredictor(controllerPlatform_,
                                             *controller_, verbose_);
    return *predictor_;
}

void
NavSystem::prepare(const CreateConfig& cfg)
{
    if (cfg.weightRotation)
        planner(true);
    if (cfg.voltageScaling)
        predictor();
}

std::unique_ptr<EmbodiedSystem>
NavSystem::replicate() const
{
    return std::make_unique<NavSystem>(plannerPlatform_, controllerPlatform_,
                                       /*verbose=*/false);
}

EpisodeResult
NavSystem::runEpisode(int taskId, std::uint64_t seed,
                      const CreateConfig& cfg)
{
    return runDecodedPlanEpisode<NavEpisodeTraits>(
        taskId, seed, cfg,
        EpisodeSalts{0x555ull, 0x666ull, 0x777ull, 0x888ull},
        planner(cfg.weightRotation), *controller_,
        cfg.voltageScaling ? &predictor() : nullptr);
}

} // namespace create
