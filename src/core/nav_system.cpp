#include "core/nav_system.hpp"

#include "core/platform_episode.hpp"
#include "core/rotation.hpp"

namespace create {

namespace {

/** Episode types + hooks of the navigation family. */
struct NavEpisodeTraits
{
    using World = NavWorld;
    using Task = NavTask;
    using Action = NavAction;
    static constexpr int kNumActions = kNumNavActions;
    static constexpr int kStepCap = NavWorld::kStepCap;

    static std::vector<NavSubtask> decodePlan(const std::vector<int>& t)
    {
        return platforms::decodeNavPlan(t);
    }
    static std::vector<float> prompt(NavSubtask st, const NavObs& obs,
                                     int promptDim)
    {
        return platforms::navPrompt(st, obs, promptDim);
    }
};

PaperEnergyModel
navEnergyModel(const std::string& controllerPlatform)
{
    return PaperEnergyModel(workloads::navLlama(),
                            controllerPlatform == "pathrt"
                                ? workloads::pathRt()
                                : workloads::swiftPilot(),
                            workloads::entropyPredictor());
}

} // namespace

NavSystem::NavSystem(std::string plannerPlatform,
                     std::string controllerPlatform, bool verbose)
    : plannerPlatform_(std::move(plannerPlatform)),
      controllerPlatform_(std::move(controllerPlatform)),
      label_(plannerPlatform_ + "+" + controllerPlatform_),
      verbose_(verbose),
      shared_(std::make_shared<SharedModelSet>()),
      energy_(navEnergyModel(controllerPlatform_))
{
    shared_->planner = platforms::navPlanner(plannerPlatform_, verbose);
    shared_->controller =
        platforms::navController(controllerPlatform_, verbose);
}

NavSystem::NavSystem(const NavSystem& prototype,
                     std::shared_ptr<SharedModelSet> shared)
    : plannerPlatform_(prototype.plannerPlatform_),
      controllerPlatform_(prototype.controllerPlatform_),
      label_(prototype.label_), verbose_(false), shared_(std::move(shared)),
      energy_(prototype.energy_)
{
}

PlannerModel&
NavSystem::planner(bool rotated)
{
    if (!rotated)
        return *shared_->planner;
    if (!shared_->rotatedPlanner) {
        std::shared_ptr<PlannerModel> r =
            platforms::navPlanner(plannerPlatform_, /*verbose=*/false);
        applyWeightRotation(*r);
        platforms::calibrateNavPlanner(*r);
        shared_->rotatedPlanner = std::move(r);
    }
    return *shared_->rotatedPlanner;
}

EntropyPredictor&
NavSystem::predictor()
{
    if (!shared_->predictor)
        shared_->predictor = platforms::navPredictor(
            controllerPlatform_, *shared_->controller, verbose_);
    return *shared_->predictor;
}

void
NavSystem::prepare(const CreateConfig& cfg)
{
    // Build lazy members and freeze every layer the config will touch at
    // its deployment width -- serially, so shared model state is read-only
    // once episodes (possibly on a worker pool) start.
    warmFreezePlanner(planner(cfg.weightRotation), cfg.bits);
    warmFreezeController(*shared_->controller, cfg.bits);
    if (cfg.voltageScaling)
        warmFreezePredictor(predictor());
}

std::unique_ptr<EmbodiedSystem>
NavSystem::replicate() const
{
    // Replicas share the frozen model set; see core/shared_models.hpp.
    return std::unique_ptr<EmbodiedSystem>(new NavSystem(*this, shared_));
}

EpisodeResult
NavSystem::runEpisode(int taskId, std::uint64_t seed,
                      const CreateConfig& cfg)
{
    return runDecodedPlanEpisode<NavEpisodeTraits>(
        taskId, seed, cfg,
        EpisodeSalts{0x555ull, 0x666ull, 0x777ull, 0x888ull},
        planner(cfg.weightRotation), *shared_->controller,
        cfg.voltageScaling ? &predictor() : nullptr, gemmSink());
}

} // namespace create
