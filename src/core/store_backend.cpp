#include "core/store_backend.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/binlog.hpp"
#include "common/io_retry.hpp"
#include "common/store_keys.hpp"

namespace create {

namespace {

constexpr const char* kLogSuffix = ".crbl";

bool
hasSuffix(const std::string& s, const char* suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Worker tag -> file-name-safe stem ("host:pid.seq" -> "host-pid-seq"). */
std::string
sanitizeTag(const std::string& tag)
{
    std::string out;
    for (const char c : tag)
        out.push_back(
            (std::isalnum(static_cast<unsigned char>(c)) || c == '-')
                ? c
                : '-');
    return out.empty() ? "writer" : out;
}

/** Fold one raw record into the merged view (see StoreBackend::load). */
void
mergeRecord(std::map<std::string, JsonRecord>& merged, JsonRecord&& rec)
{
    if (sweepLeaseFingerprint(rec.name)) {
        const auto it = merged.find(rec.name);
        if (it == merged.end())
            merged.emplace(rec.name, std::move(rec));
        else if (leaseRecordBeats(rec, it->second))
            it->second = std::move(rec);
        return;
    }
    std::string name = rec.name;
    merged[std::move(name)] = std::move(rec);
}

/** The single-file JSON array store (interchange/golden format). */
class JsonStoreBackend final : public StoreBackend
{
  public:
    explicit JsonStoreBackend(std::string path) : path_(std::move(path)) {}

    StoreFormat format() const override { return StoreFormat::Json; }
    const std::string& path() const override { return path_; }
    bool rewritesWholeStore() const override { return true; }
    std::string lockPath() const override { return path_ + ".lock"; }
    std::string lastDataFile() const override { return path_; }

    bool load(std::vector<JsonRecord>& out, StoreLoadInfo* info,
              bool quarantineBadTails) override
    {
        out.clear();
        if (info)
            *info = StoreLoadInfo{};
        JsonSalvage sal;
        if (!readJsonRecordsSalvaged(path_, out, &sal))
            return false; // no store yet
        if (info) {
            info->files = 1;
            info->records = out.size();
            info->salvaged = sal.salvaged;
            info->goodBytes = sal.goodBytes;
            info->totalBytes = sal.totalBytes;
        }
        if (sal.salvaged && sal.goodBytes > 0 && quarantineBadTails) {
            const std::string q = quarantineTail(path_, sal.goodBytes);
            if (info && !q.empty())
                info->quarantined.push_back(q);
        }
        return true;
    }

    bool flush(const std::map<std::string, JsonRecord>& full,
               const std::vector<JsonRecord>& batch,
               std::string* error) override
    {
        (void)batch; // a rewrite always carries the whole merged view
        return writeJsonRecords(path_, full, error);
    }

    bool compact(std::string* error, std::string* note) override
    {
        (void)error;
        if (note)
            *note = "json stores are already compact (single rewritten "
                    "file); nothing to do";
        return true;
    }

  private:
    std::string path_;
};

/** The per-writer binary append-log store (common/binlog framing). */
class BinlogStoreBackend final : public StoreBackend
{
  public:
    BinlogStoreBackend(std::string path, const std::string& writerTag,
                       bool singleFile)
        : path_(std::move(path)), singleFile_(singleFile),
          writerFile_(singleFile_
                          ? path_
                          : path_ + "/log-" + sanitizeTag(writerTag) +
                                kLogSuffix)
    {
    }

    StoreFormat format() const override { return StoreFormat::Binlog; }
    const std::string& path() const override { return path_; }
    bool rewritesWholeStore() const override { return false; }
    std::string lockPath() const override { return path_ + ".lock"; }

    std::string lastDataFile() const override
    {
        return writer_.isOpen() ? writer_.path() : std::string();
    }

    bool load(std::vector<JsonRecord>& out, StoreLoadInfo* info,
              bool quarantineBadTails) override
    {
        out.clear();
        if (info)
            *info = StoreLoadInfo{};
        std::vector<std::string> logs;
        if (!listLogs(logs))
            return false; // no store yet
        std::map<std::string, JsonRecord> merged;
        for (const std::string& log : logs) {
            std::vector<JsonRecord> recs;
            binlog::LogSalvage sal;
            if (!binlog::readLogRecords(log, recs, &sal)) {
                // Unreadable or foreign-magic file inside the store:
                // surface it as salvage (its bytes contribute nothing)
                // rather than failing every good log around it.
                if (info) {
                    info->salvaged = true;
                    ++info->files;
                    info->totalBytes += sal.totalBytes;
                }
                std::fprintf(stderr,
                             "[binlog] %s is not readable as a binlog; "
                             "skipped\n",
                             log.c_str());
                continue;
            }
            if (info) {
                ++info->files;
                info->salvaged = info->salvaged || sal.salvaged;
                info->goodBytes += sal.goodBytes;
                info->totalBytes += sal.totalBytes;
            }
            if (sal.salvaged && quarantineBadTails &&
                sal.goodBytes < sal.totalBytes) {
                // Copy (never truncate): the log may belong to a live
                // peer, whose own writer heals its tail on next append.
                const std::string q = quarantineTail(
                    log, static_cast<std::size_t>(sal.goodBytes));
                if (info && !q.empty())
                    info->quarantined.push_back(q);
            }
            for (JsonRecord& rec : recs)
                mergeRecord(merged, std::move(rec));
        }
        out.reserve(merged.size());
        for (auto& [name, rec] : merged)
            out.push_back(std::move(rec));
        if (info)
            info->records = out.size();
        return true;
    }

    bool flush(const std::map<std::string, JsonRecord>& full,
               const std::vector<JsonRecord>& batch,
               std::string* error) override
    {
        if (!writer_.isOpen()) {
            if (!singleFile_ && ::mkdir(path_.c_str(), 0777) != 0 &&
                errno != EEXIST) {
                if (error)
                    *error = "mkdir " + path_ + ": " +
                             std::strerror(errno);
                return false;
            }
            if (!writer_.open(writerFile_, error))
                return false;
        }
        bool healed = false;
        if (!writer_.checkTail(&healed, error))
            return false;
        if (healed) {
            // Our log lost a suffix underneath us (injected tear,
            // external truncate): one O(store) append of the full view
            // re-publishes anything the cut destroyed. Every other
            // flush stays O(batch).
            for (const auto& [name, rec] : full)
                writer_.append(rec);
        } else {
            for (const JsonRecord& rec : batch)
                writer_.append(rec);
        }
        return writer_.commit(error);
    }

    bool compact(std::string* error, std::string* note) override
    {
        // Offline fold: every log (and every duplicate key) into one
        // fresh log. The store lock keeps concurrent *claims* out, but a
        // live writer keeps appending to its unlinked open log -- run
        // compaction on quiescent stores only.
        const std::string lp = lockPath();
        const int lockFd = io::openRetry(lp.c_str(), O_CREAT | O_RDWR,
                                         0644);
        io::FdCloser closeLock(lockFd);
        if (lockFd >= 0)
            io::flockRetry(lockFd, LOCK_EX);
        std::vector<std::string> logs;
        if (!listLogs(logs)) {
            if (error)
                *error = "no binlog store at " + path_;
            return false;
        }
        std::vector<JsonRecord> merged;
        StoreLoadInfo info;
        if (!load(merged, &info, /*quarantineBadTails=*/true)) {
            if (error)
                *error = "cannot load " + path_;
            return false;
        }
        const std::string compacted =
            singleFile_ ? path_
                        : path_ + "/log-compact" + kLogSuffix;
        const std::string tmp = compacted + ".tmp." +
                                std::to_string(static_cast<long>(getpid()));
        binlog::LogWriter w;
        if (!w.open(tmp, error))
            return false;
        for (const JsonRecord& rec : merged)
            w.append(rec);
        if (!w.commit(error)) {
            w.close();
            std::remove(tmp.c_str());
            return false;
        }
        w.close();
        std::string renameErr;
        if (!io::renameRetry(tmp.c_str(), compacted.c_str(), &renameErr)) {
            if (error)
                *error = renameErr;
            std::remove(tmp.c_str());
            return false;
        }
        // Old logs go only after the compacted one is durable; a crash
        // in between leaves duplicates, which merge-on-read dedups.
        std::size_t removed = 0;
        for (const std::string& log : logs)
            if (log != compacted && std::remove(log.c_str()) == 0)
                ++removed;
        if (note)
            *note = "compacted " + std::to_string(info.files) +
                    " log(s), " + std::to_string(merged.size()) +
                    " records (" + std::to_string(removed) +
                    " old log(s) removed) -> " + compacted;
        return true;
    }

  private:
    /** Every data log of the store, lexicographically sorted (the merge
     *  order ties duplicate keys deterministically). False when nothing
     *  exists at path_. */
    bool listLogs(std::vector<std::string>& out) const
    {
        out.clear();
        if (singleFile_) {
            struct stat st;
            if (::stat(path_.c_str(), &st) != 0)
                return false;
            out.push_back(path_);
            return true;
        }
        DIR* dir = ::opendir(path_.c_str());
        if (!dir)
            return false;
        while (const dirent* ent = ::readdir(dir)) {
            const std::string name = ent->d_name;
            if (hasSuffix(name, kLogSuffix))
                out.push_back(path_ + "/" + name);
        }
        ::closedir(dir);
        std::sort(out.begin(), out.end());
        return true;
    }

    std::string path_;
    bool singleFile_;
    std::string writerFile_;
    binlog::LogWriter writer_;
};

} // namespace

const char*
storeFormatName(StoreFormat format)
{
    return format == StoreFormat::Binlog ? "binlog" : "json";
}

bool
parseStoreFormat(const std::string& name, StoreFormat& out)
{
    if (name == "json") {
        out = StoreFormat::Json;
        return true;
    }
    if (name == "binlog") {
        out = StoreFormat::Binlog;
        return true;
    }
    return false;
}

bool
leaseRecordBeats(const JsonRecord& a, const JsonRecord& b)
{
    const double ga = a.number("gen"), gb = b.number("gen");
    if (ga != gb)
        return ga > gb;
    return a.number("renewedAt") > b.number("renewedAt");
}

bool
detectStoreFormat(const std::string& path, StoreFormat& out)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return false;
    if (S_ISDIR(st.st_mode)) {
        out = StoreFormat::Binlog;
        return true;
    }
    // A bare file: binlog iff it opens with the frame-log magic; any
    // other content is the json parser's to classify (including garbage,
    // which its salvage path reports precisely).
    out = binlog::isBinlogFile(path) ? StoreFormat::Binlog
                                     : StoreFormat::Json;
    return true;
}

std::unique_ptr<StoreBackend>
openStoreBackend(const std::string& path, StoreFormat requested,
                 const std::string& writerTag, std::string* formatNote)
{
    if (path.empty())
        throw std::invalid_argument("openStoreBackend: empty store path");
    StoreFormat actual = requested;
    bool singleFile = false;
    StoreFormat detected;
    if (detectStoreFormat(path, detected)) {
        if (detected != requested && formatNote)
            *formatNote = "store " + path + " already exists as " +
                          storeFormatName(detected) + "; the requested " +
                          storeFormatName(requested) +
                          " format only applies to new stores";
        actual = detected;
        struct stat st;
        singleFile = actual == StoreFormat::Binlog &&
                     ::stat(path.c_str(), &st) == 0 &&
                     S_ISREG(st.st_mode);
    }
    if (actual == StoreFormat::Binlog)
        return std::make_unique<BinlogStoreBackend>(path, writerTag,
                                                    singleFile);
    return std::make_unique<JsonStoreBackend>(path);
}

} // namespace create
