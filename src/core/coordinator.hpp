#pragma once

/**
 * @file
 * The socket campaign coordinator: episode-range dispatch over binlog
 * frames, no shared filesystem required.
 *
 * One lightweight single-threaded poll() process owns the campaign
 * store, serves pending *episode ranges* (default ~16 episodes,
 * adaptive down near the tail) to connected workers, and ingests their
 * completed episode records -- turning N processes/machines into one
 * campaign without NFS. The wire protocol *is* the binlog store format
 * (common/binlog): each direction opens with the 8-byte CRBL header and
 * then streams self-delimiting CRC32-checked frames, so a worker sends
 * exactly the frames it would have appended to a local store, the
 * coordinator appends them to its own StoreBackend log, and crash
 * recovery falls out of the existing salvage path. A capture of either
 * direction is a valid .crbl file.
 *
 * Control messages are ordinary Record frames whose names live under
 * the `coord|` prefix (the store-key grammar treats them as opaque, and
 * they are never merged into the store):
 *
 *   worker -> coordinator
 *     coord|hello   {worker}  {proto}     identify (first record)
 *     <fp meta>                           ledger meta (Meta frame)
 *     coord|need    {fp}      {need}      declare a ledger's episode need
 *     coord|req     {}                    request a range
 *     <episodes>                          completed records (Episode frames)
 *     coord|done    {fp} {start,count}    range finished
 *     coord|fetch   {fp}      {need}      request the fp's stored episodes
 *
 *   coordinator -> worker
 *     coord|range   {fp} {start,count}    run episodes [start, start+count)
 *     coord|wait    {}       {ms}         nothing dispatchable; poll later
 *     coord|fin     {}                    campaign complete
 *     <episodes>                          fetch reply (Episode frames)
 *     coord|fetched {fp}                  fetch reply complete
 *
 * Exactly-once without two-phase commit: the coordinator's have-bitmap
 * (episode-index gap-fill, the PR 8 primitive) is the single source of
 * truth. A worker that dies mid-range simply stops; its assignment
 * times out after leaseSeconds and the *still-missing* indices are
 * re-dispatched. Duplicate episodes (a straggler finishing a
 * re-dispatched range) merge idempotently -- episodes are deterministic
 * functions of (fingerprint, index).
 *
 * Mixed fleets: filesystem `--lease` workers sharing the coordinator's
 * store interoperate through the ordinary lease records. The
 * coordinator claims each fingerprint's lease (generation bump, under
 * the store flock sidecar) before dispatching it and defers
 * fingerprints live-leased by filesystem workers, folding their disk
 * progress in on a periodic re-load. The flock is only ever taken on
 * this control path (claims) or by a rewriting (json) backend's flush
 * -- a binlog store's socket data path appends lock-free.
 */

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/binlog.hpp"
#include "common/serialize.hpp"
#include "core/store_backend.hpp"

namespace create {

/** The control-record namespace of the coordinator wire protocol. */
namespace coordwire {

/** Name prefix of control records ("coord|"). */
extern const char* const kPrefix;

/** Build a control record `coord|<verb>`. */
JsonRecord control(const std::string& verb);

/** True when `rec` is a control record; optionally yields the verb. */
bool isControl(const JsonRecord& rec, std::string* verb = nullptr);

} // namespace coordwire

/**
 * Blocking client side of the coordinator wire (the worker transport).
 * Owns one TCP connection plus the frame codec state for each
 * direction; send() failures (including injected `connreset` chaos)
 * leave the client disconnected and the caller reconnects with a fresh
 * handshake -- the protocol is designed so everything after hello can
 * simply be re-sent (declarations and episodes merge idempotently).
 */
class CoordClient
{
  public:
    CoordClient() = default;
    CoordClient(const CoordClient&) = delete;
    CoordClient& operator=(const CoordClient&) = delete;
    ~CoordClient();

    /**
     * Connect to host:port (io::connectRetry with `attempts` tries --
     * raise it to survive a coordinator restart), send the stream
     * header and the hello record. False with `error` on give-up.
     */
    bool connect(const std::string& host, int port,
                 const std::string& workerId, int attempts,
                 std::string* error);

    bool connected() const { return fd_ >= 0; }

    /** Encode + send records as binlog frames. False on a dead/reset
     *  connection (the client closes itself; reconnect to continue). */
    bool send(const std::vector<JsonRecord>& recs, std::string* error);
    bool send(const JsonRecord& rec, std::string* error);

    /**
     * Block for the next record from the coordinator. False on EOF,
     * error, or a corrupt stream (error says which); the client closes
     * itself in every false case.
     */
    bool recv(JsonRecord& rec, std::string* error);

    void close();

  private:
    int fd_ = -1;
    binlog::FrameEncoder enc_;
    binlog::StreamDecoder dec_;
};

/** Single-threaded poll() coordinator process (see file comment). */
class Coordinator
{
  public:
    struct Options
    {
        std::string storePath;     //!< required: the campaign store
        StoreFormat storeFormat = StoreFormat::Binlog;
        int port = 0;              //!< 0 picks an ephemeral port
        int rangeEpisodes = 16;    //!< dispatch quantum (adaptive down)
        /**
         * Assignment/lease timeout: a range not completed within this
         * many seconds is re-dispatched, and the coordinator's own
         * fingerprint leases renew at a quarter of it.
         */
        double leaseSeconds = 30.0;
        bool once = false;   //!< exit once the campaign completes
        bool verbose = false;
        int flushEvery = 64; //!< ingested records per store flush
    };

    explicit Coordinator(Options opt);
    Coordinator(const Coordinator&) = delete;
    Coordinator& operator=(const Coordinator&) = delete;
    ~Coordinator();

    /** Bind + listen (SO_REUSEADDR: a restarted coordinator rebinds its
     *  port immediately) and load the store. False with `error`. */
    bool start(std::string* error);

    /** The bound port (after start()); useful with port 0. */
    int port() const { return port_; }

    /**
     * Serve until stop() (or, with Options::once, until every declared
     * fingerprint is complete and the last worker disconnected). Runs
     * the poll loop on the calling thread.
     */
    void runLoop();

    /** Ask runLoop() to finish (safe from another thread). */
    void stop() { stopping_ = true; }

    // Campaign counters (read after runLoop; for tests and the tool's
    // exit summary).
    long long episodesIngested() const { return episodesIngested_; }
    long long rangesDispatched() const { return rangesDispatched_; }
    long long rangesRedispatched() const { return rangesRedispatched_; }

  private:
    /** One outstanding range assignment. */
    struct Assignment
    {
        int start = 0;
        int count = 0;
        int connId = -1;
        std::string worker;
        double since = 0.0; //!< wall-clock dispatch time
    };

    /** Dispatch state of one declared fingerprint. */
    struct FpState
    {
        int need = 0;
        std::vector<char> have;
        int haveCount = 0;
        bool complete = false;
        bool leaseHeld = false;
        std::uint64_t leaseGen = 0;
        double deferredUntil = 0.0; //!< foreign live lease: recheck then
        std::vector<Assignment> assigned;
    };

    /** Per-worker telemetry (keyed by the hello worker id). */
    struct WorkerStats
    {
        long long rangesAssigned = 0;
        long long rangesCompleted = 0;
        long long rangesRedispatched = 0;
        long long episodes = 0;
        double firstSeen = 0.0;
        double lastSeen = 0.0;
        std::vector<double> rangeWallMs;
    };

    /** One connected worker. */
    struct Conn
    {
        int fd = -1;
        int id = -1;
        bool dead = false;  //!< send failed; reaped after processing
        std::string worker; //!< empty until hello
        /** Fingerprints this connection declared: only these are
         *  dispatched to it (mixed fleets can scope differently), and
         *  `fin` fires when *they* are complete, not the whole store. */
        std::set<std::string> declared;
        binlog::StreamDecoder dec;
        binlog::FrameEncoder enc;
    };

    void acceptConns();
    void handleReadable(int fd);
    bool handleRecord(Conn& conn, JsonRecord&& rec);
    void handleControl(Conn& conn, const std::string& verb,
                       const JsonRecord& rec);
    void ingestRecord(Conn& conn, JsonRecord&& rec);
    void declareNeed(const std::string& fp, int need);
    void dispatch(Conn& conn);
    void serveFetch(Conn& conn, const JsonRecord& rec);
    bool sendRecord(Conn& conn, const JsonRecord& rec);
    void dropConn(std::size_t index, const char* why);
    void expireAssignments(double now);
    bool ensureLease(const std::string& fp, FpState& st, double now);
    void completeFp(const std::string& fp, FpState& st);
    void noteEpisode(const std::string& name);
    void maybeReloadStore(double now);
    void mergeDiskRecord(JsonRecord&& rec);
    void flushStore(bool force);
    void renewLeases(double now);
    void writeWorkerTelemetry();
    bool allComplete() const;
    long long remainingUnassigned() const;
    int activeWorkers() const;

    Options opt_;
    std::string coordId_; //!< lease owner identity ("host:pid.coord")
    int listenFd_ = -1;
    int port_ = 0;
    volatile bool stopping_ = false;
    int nextConnId_ = 0;
    std::vector<Conn> conns_;
    std::map<std::string, FpState> fps_;
    std::vector<std::string> fpOrder_; //!< declaration order
    std::unique_ptr<StoreBackend> store_;
    std::map<std::string, JsonRecord> storeRecords_;
    std::vector<JsonRecord> pendingBatch_;
    bool schemaStamped_ = false;
    bool anyDeclared_ = false;
    double lastFlush_ = 0.0;
    double lastRenew_ = 0.0;
    double lastReload_ = 0.0;
    bool foreignLeaseSeen_ = false; //!< a filesystem fleet shares the store
    std::map<std::string, WorkerStats> workers_;
    long long episodesIngested_ = 0;
    long long rangesDispatched_ = 0;
    long long rangesRedispatched_ = 0;
};

} // namespace create
