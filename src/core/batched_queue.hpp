#pragma once

/**
 * @file
 * BatchedInferenceQueue: cross-episode fusion of concurrent int-GEMMs.
 *
 * ParallelEvaluator workers run episodes of the same deployment cell at
 * the same time, and every episode walks the same frozen models layer by
 * layer -- so at any instant several workers tend to be sitting in
 * faultyLinear with *the same weight matrix* and different activation
 * rows (replicas share frozen weights by pointer; see
 * core/shared_models.hpp). This queue exploits that: workers submit their
 * quantized GEMMs through the IntGemmSink hook on ComputeContext, and
 * requests that share (wq, k, n) are fused into one wide kernel call by
 * concatenating their m-rows, then scattered back.
 *
 * Bit-identity: batching only concatenates rows. Each output row of the
 * fused GEMM is the same exact int32 dot-product sums over the same
 * inputs (integer accumulation is order-exact, and the dispatched
 * kernels are row-independent), and the scatter copies each request's
 * row slice into its zero-filled accumulator (the IntGemmSink
 * contract), which is bit-for-bit what the direct accumulate-onto-zero
 * call produces. Episode results with batching on/off are therefore
 * byte-identical -- asserted by tests/test_parallel_eval.cpp.
 *
 * Why it is faster: the register-blocked AVX2/AVX-512 kernels share each
 * widened weight load across a quad of rows, so fusing four concurrent
 * m=1 controller projections into one m=4 call streams the weight matrix
 * once instead of four times; tails and per-call overhead amortize the
 * same way.
 *
 * Coordination is work-conserving and deadlock-free by construction:
 *  - a worker executes its group immediately when every registered
 *    worker has a request queued (nobody else can arrive),
 *  - or when its group already holds one request per registered worker,
 *  - otherwise it waits at most one batch window (CREATE_BATCH_WINDOW_US,
 *    default 200us) and then executes whatever has gathered.
 * Workers register via WorkerScope around their episode-draining loop,
 * so the queue always knows how many submitters can possibly show up;
 * with one (or no) registered worker, submissions execute inline.
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "hw/compute_context.hpp"

namespace create {

/** Fusion counters (see SweepRunner --progress and bench reports). */
struct BatchStats
{
    std::uint64_t requests = 0; //!< GEMMs submitted through the queue
    std::uint64_t groups = 0;   //!< kernel calls actually issued
    std::uint64_t maxBatch = 0; //!< largest number of fused requests
    int peakWorkers = 0;        //!< high-water registered submitters
    /** Groups flushed by the batch-window timeout rather than filling up
     *  or draining the submitter set -- the "we waited for company that
     *  never came" case a window-size tuning pass looks at. */
    std::uint64_t windowExpiries = 0;
    std::uint64_t inlineRuns = 0; //!< <=1-worker direct executions

    /** Mean requests fused per kernel call (1.0 = no fusion happened). */
    double avgBatch() const
    {
        return groups ? static_cast<double>(requests) /
                            static_cast<double>(groups)
                      : 0.0;
    }
    /** avgBatch over the best case (one request per registered worker). */
    double fillRate() const
    {
        return peakWorkers > 0 && groups
                   ? avgBatch() / static_cast<double>(peakWorkers)
                   : 0.0;
    }

    BatchStats& operator+=(const BatchStats& o);
};

/** Cross-episode GEMM batcher; one per ParallelEvaluator pool. */
class BatchedInferenceQueue : public IntGemmSink
{
  public:
    /**
     * @param batchWindowUs max microseconds a lone request waits for
     *        company before executing solo; < 0 reads CREATE_BATCH_WINDOW_US
     *        (default 200).
     */
    explicit BatchedInferenceQueue(int batchWindowUs = -1);

    /** Register/deregister a submitting worker (see WorkerScope). */
    void beginWorker();
    void endWorker();

    /** RAII worker registration (exception-safe). */
    class WorkerScope
    {
      public:
        explicit WorkerScope(BatchedInferenceQueue* q) : q_(q)
        {
            if (q_)
                q_->beginWorker();
        }
        ~WorkerScope()
        {
            if (q_)
                q_->endWorker();
        }
        WorkerScope(const WorkerScope&) = delete;
        WorkerScope& operator=(const WorkerScope&) = delete;

      private:
        BatchedInferenceQueue* q_;
    };

    /** IntGemmSink: submit one GEMM; blocks until the result is in acc. */
    void gemm(const std::int8_t* xq, std::int64_t m, std::int64_t k,
              const std::int8_t* wq, std::int64_t n,
              std::int32_t* acc) override;

    BatchStats stats() const;
    void resetStats();

  private:
    using Key = std::tuple<const void*, std::int64_t, std::int64_t>;

    struct Request
    {
        const std::int8_t* xq;
        std::int64_t m;
        std::int32_t* acc;
        bool done;
    };

    struct Group
    {
        Key key;
        std::vector<Request*> reqs;
        bool popped = false; //!< removed from pending_; being executed
    };

    /** Pop `g` and run the fused kernel (unlocks `lk` during compute). */
    void executeGroup(std::unique_lock<std::mutex>& lk,
                      const std::shared_ptr<Group>& g, std::int64_t k,
                      std::int64_t n, bool windowExpired = false);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<Key, std::shared_ptr<Group>> pending_;
    int active_ = 0;   //!< registered workers
    int inflight_ = 0; //!< workers currently inside gemm()
    std::chrono::microseconds window_;

    // counters (guarded by mu_)
    std::uint64_t requests_ = 0;
    std::uint64_t groupsRun_ = 0;
    std::uint64_t maxBatch_ = 0;
    std::uint64_t windowExpiries_ = 0;
    std::uint64_t inlineRuns_ = 0;
    int peakWorkers_ = 0;
};

} // namespace create
