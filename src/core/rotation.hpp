#pragma once

/**
 * @file
 * Weight-rotation-enhanced planning (paper Sec. 5.2).
 *
 * Implements the exact QuaRot-style residual-basis rewrite with the
 * orthonormal Hadamard matrix H (built by Kronecker recursion, Sec. 5.2):
 *
 *   embedding        E      <- E H
 *   per block:       gains of the two RMSNorms are folded into the
 *                    following projections, then
 *                    W_Q, W_K, W_V, W_gate, W_up <- H^T W
 *                    W_O, W_down                 <- W H
 *   final norm gain  folded into the head; W_head <- H^T W_head
 *
 * Planted outlier channel scales are folded into W_O / W_down before the
 * right-rotation, exactly like real outlier-laden LLM weights. Because
 * unit-gain RMSNorm commutes with orthogonal rotations of its input, the
 * clean network function is preserved to FP rounding, while pre-norm
 * activations become outlier-free -- shrinking both quantization scales
 * and anomaly-detection bounds (the AD x WR synergy of Sec. 6.6).
 *
 * All rotations happen offline on weights; no runtime Hadamard transforms
 * are inserted (Sec. 5.2: "avoids online rotations").
 */

#include "models/planner.hpp"

namespace create {

/** Apply the offline rotation in place. Calibration must be re-run. */
void applyWeightRotation(PlannerModel& m);

} // namespace create
