#pragma once

/**
 * @file
 * SharedModelSet: the immutable-at-episode-time model bundle one
 * EmbodiedSystem backend and all of its ParallelEvaluator replicas share.
 *
 * Replicas used to rebuild the whole stack per worker -- deserializing
 * every FP32 weight tensor from the model cache, re-running calibration,
 * and re-freezing every per-layer QuantGemmState -- multiplying replica
 * build time and resident model memory by the thread count for state that
 * never changes during episodes. Now the backends hold their models
 * behind shared_ptr and replicate() just bumps reference counts: frozen
 * quantized weights (QuantGemmState::wq + scales), FP32 weight tensors,
 * and calibration observers exist once per process. Only genuinely
 * mutable per-worker state (per-episode ComputeContexts with their RNG
 * streams, EnergyMeters, and GemmWorkspaces) is created per worker.
 *
 * Safety contract: episode execution only reads model state once every
 * QuantGemmState is frozen at the deployment bit-width. prepare(cfg)
 * enforces that by running the warmFreeze* helpers below -- one throwaway
 * clean inference that freezes every layer the config will touch --
 * serially before episodes fan out (ParallelEvaluator already calls
 * prepare on the calling thread). Lazily-built members (rotated planner,
 * entropy predictor) are likewise only constructed inside prepare.
 */

#include <memory>

#include "models/controller.hpp"
#include "models/entropy_predictor.hpp"
#include "models/planner.hpp"

namespace create {

/** Frozen-model bundle shared across a backend and its replicas. */
struct SharedModelSet
{
    std::shared_ptr<PlannerModel> planner;
    std::shared_ptr<PlannerModel> rotatedPlanner; //!< lazy (WR configs)
    std::shared_ptr<ControllerModel> controller;
    std::shared_ptr<EntropyPredictor> predictor;  //!< lazy on some platforms
};

/**
 * Freeze every planner QuantGemmState at `bits` with one clean throwaway
 * inference (no-op when already frozen at that width).
 */
void warmFreezePlanner(PlannerModel& p, QuantBits bits);

/** Same for the controller. */
void warmFreezeController(ControllerModel& c, QuantBits bits);

/**
 * Same for the predictor. The predictor always deploys at the default
 * INT8 width and nominal voltage (Sec. 5.3: its estimate is error-free),
 * matching the per-episode predictor contexts.
 */
void warmFreezePredictor(EntropyPredictor& p);

} // namespace create
