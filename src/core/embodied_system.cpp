#include "core/embodied_system.hpp"

#include <algorithm>
#include <chrono>

#include "core/parallel_eval.hpp"

namespace create {

CreateConfig
CreateConfig::clean()
{
    return CreateConfig{};
}

CreateConfig
CreateConfig::uniform(double ber)
{
    CreateConfig cfg;
    cfg.mode = InjectionMode::Uniform;
    cfg.uniformBer = ber;
    return cfg;
}

CreateConfig
CreateConfig::atVoltage(double plannerV, double controllerV)
{
    CreateConfig cfg;
    cfg.mode = InjectionMode::Voltage;
    cfg.plannerVoltage = plannerV;
    cfg.controllerVoltage = controllerV;
    return cfg;
}

CreateConfig
CreateConfig::fullCreate(double plannerV, EntropyVoltagePolicy policy,
                         int interval)
{
    CreateConfig cfg;
    cfg.mode = InjectionMode::Voltage;
    cfg.anomalyDetection = true;
    cfg.weightRotation = true;
    cfg.voltageScaling = true;
    cfg.plannerVoltage = plannerV;
    cfg.controllerVoltage = TimingErrorModel::kNominalVoltage;
    cfg.policy = std::move(policy);
    cfg.vsInterval = interval;
    return cfg;
}

void
CreateConfig::applyTo(ComputeContext& ctx, bool isPlanner) const
{
    ctx.anomalyDetection = anomalyDetection;
    ctx.protection = protection;
    ctx.bits = bits;
    ctx.componentFilter = componentFilter;
    const bool inject = isPlanner ? injectPlanner : injectController;
    if (!inject || mode == InjectionMode::None) {
        ctx.setCleanMode();
        ctx.setVoltage(isPlanner ? plannerVoltage : controllerVoltage);
        return;
    }
    if (mode == InjectionMode::Uniform) {
        const double override_ = isPlanner ? plannerBer : controllerBer;
        ctx.setUniformBer(override_ >= 0.0 ? override_ : uniformBer);
        ctx.setVoltage(isPlanner ? plannerVoltage : controllerVoltage);
    } else {
        ctx.setVoltage(isPlanner ? plannerVoltage : controllerVoltage);
        ctx.setVoltageMode();
    }
}

EmbodiedSystem::EmbodiedSystem() = default;

EmbodiedSystem::~EmbodiedSystem() = default;

void
EmbodiedSystem::prepare(const CreateConfig&)
{
}

std::vector<EpisodeResult>
EmbodiedSystem::runEpisodes(int taskId, const CreateConfig& cfg, int reps,
                            std::uint64_t seed0, EpisodeSink* sink)
{
    if (evalThreads_ > 1 && reps > 1) {
        // Never build more replicas than there are episodes to run; keep
        // an existing pool if it is big enough and within the requested
        // thread budget (replicas are whole model stacks -- rebuilding on
        // every reps change would dwarf the episodes themselves).
        const int wanted = std::min(evalThreads_, reps);
        if (!evaluator_ || evaluator_->threads() < wanted ||
            evaluator_->threads() > evalThreads_ ||
            evaluator_->batched() != batchedInference_)
            evaluator_ = std::make_unique<ParallelEvaluator>(
                *this, wanted, batchedInference_);
        return evaluator_->runEpisodes(taskId, cfg, reps, seed0, sink);
    }
    prepare(cfg);
    std::vector<EpisodeResult> results;
    results.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        // An episode runs wholly on this thread, so the thread-local
        // registry brackets exactly one episode's hot-path counters.
        MetricsRegistry& reg = MetricsRegistry::tls();
        reg.beginEpisode();
        const auto t0 = std::chrono::steady_clock::now();
        results.push_back(
            runEpisode(taskId, seed0 + static_cast<std::uint64_t>(i), cfg));
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (sink)
            sink->onEpisode(i, results.back(), reg.endEpisode(wallMs));
    }
    return results;
}

TaskStats
EmbodiedSystem::evaluate(int taskId, const CreateConfig& cfg, int reps,
                         std::uint64_t seed0)
{
    return aggregate(runEpisodes(taskId, cfg, reps, seed0), energyModel());
}

void
EmbodiedSystem::setEvalThreads(int n)
{
    evalThreads_ = n < 1 ? 1 : n;
}

void
EmbodiedSystem::setBatchedInference(bool on)
{
    batchedInference_ = on;
}

BatchStats
EmbodiedSystem::batchStats() const
{
    return evaluator_ ? evaluator_->batchStats() : BatchStats{};
}

} // namespace create
