#include "core/store_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>

#include "common/store_keys.hpp"

namespace create {

namespace {

std::string
fmtg(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Parse an integer field `|<key>=N` out of a ledger fingerprint. */
int
fingerprintInt(const std::string& fp, const char* key)
{
    const std::string needle = std::string("|") + key + "=";
    const std::size_t pos = fp.find(needle);
    if (pos == std::string::npos)
        return -1;
    const char* s = fp.c_str() + pos + needle.size();
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || v < 0)
        return -1;
    return static_cast<int>(v);
}

/** Platform segment of a v2 fingerprint: "v2|<platform>|task=...". */
std::string
fingerprintPlatform(const std::string& fp)
{
    if (fp.rfind("v2|", 0) != 0)
        return {};
    const std::size_t start = 3;
    const std::size_t end = fp.find('|', start);
    return end == std::string::npos ? std::string()
                                    : fp.substr(start, end - start);
}

/** Checkpoint reps of the convergence curve: 1, 2, 5, 10, 20, 50, ... */
std::vector<int>
convergenceCheckpoints(int episodes)
{
    std::vector<int> cps;
    for (int base = 1; base <= episodes; base *= 10)
        for (const int mul : {1, 2, 5}) {
            const int cp = base * mul;
            if (cp <= episodes)
                cps.push_back(cp);
        }
    if (cps.empty() || cps.back() != episodes)
        cps.push_back(episodes);
    return cps;
}

} // namespace

double
percentile(std::vector<double> samples, double pct)
{
    if (samples.empty())
        return 0.0;
    // Nearest rank: the ceil(p/100 * n)-th smallest sample (1-based),
    // clamped into range. Every result is an actual sample value, so a
    // deterministic ledger yields bit-exact percentiles.
    const double n = static_cast<double>(samples.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
    if (rank < 1)
        rank = 1;
    if (rank > samples.size())
        rank = samples.size();
    std::nth_element(samples.begin(), samples.begin() + (rank - 1),
                     samples.end());
    return samples[rank - 1];
}

PercentileSummary
summarize(const std::vector<double>& samples)
{
    PercentileSummary s;
    s.p50 = percentile(samples, 50.0);
    s.p95 = percentile(samples, 95.0);
    s.p99 = percentile(samples, 99.0);
    return s;
}

StoreStatsResult
computeStoreStats(const std::vector<StoreCell>& cells,
                  const std::vector<JsonRecord>& workers)
{
    StoreStatsResult res;
    // Pooled samples per (platform, task, protection) rollup.
    struct Pool
    {
        std::vector<double> energy, steps;
        int ledgers = 0, episodes = 0, successes = 0;
    };
    std::map<std::tuple<std::string, int, int>, Pool> pools;
    // Per-worker attribution (elastic lease campaigns only).
    struct OwnerLoad
    {
        int episodes = 0, ledgers = 0, leasesHeld = 0;
        const JsonRecord* telemetry = nullptr;
    };
    std::map<std::string, OwnerLoad> owners;
    // Coordinator range telemetry joins the attribution rows by worker
    // id (the coordinator keys worker| records by the hello identity,
    // which is the same "host:pid.seq" string stamped into episode `by`
    // fields). One record per worker; a re-flush rewrites it, so the
    // last one in store order wins.
    for (const JsonRecord& rec : workers) {
        std::string id;
        if (sweepWorkerId(rec.name, &id))
            owners[id].telemetry = &rec;
    }

    for (const StoreCell& cell : cells) {
        if (cell.legacy) {
            ++res.legacyCells;
            continue;
        }
        if (!cell.leaseOwner.empty())
            ++owners[cell.leaseOwner].leasesHeld;
        for (const auto& [owner, n] : cell.episodeOwners) {
            OwnerLoad& load = owners[owner];
            load.episodes += n;
            ++load.ledgers;
        }
        if (cell.records.empty())
            continue;
        LedgerTail t;
        t.fingerprint = cell.fingerprint;
        t.platform = cell.platform.empty()
                         ? fingerprintPlatform(cell.fingerprint)
                         : cell.platform;
        t.label = cell.label;
        t.taskId = fingerprintInt(cell.fingerprint, "task");
        t.protection = fingerprintInt(cell.fingerprint, "prot");
        t.episodes = cell.episodes;
        t.stats = cell.stats;
        t.metrics = cell.metrics;
        t.hasMetrics = cell.hasMetrics;

        std::vector<double> energy, steps, wall;
        energy.reserve(cell.records.size());
        steps.reserve(cell.records.size());
        int successes = 0;
        for (const EpisodeRecord& rec : cell.records) {
            energy.push_back(rec.computeJ);
            steps.push_back(static_cast<double>(rec.result.steps));
            if (rec.metrics.present)
                wall.push_back(rec.metrics.wallMs);
            if (rec.result.success)
                ++successes;
        }
        t.energyJ = summarize(energy);
        t.steps = summarize(steps);
        t.hasWall = wall.size() == cell.records.size() && !wall.empty();
        if (t.hasWall)
            t.wallMs = summarize(wall);

        int succSoFar = 0, idx = 0;
        for (const int cp : convergenceCheckpoints(t.episodes)) {
            for (; idx < cp; ++idx)
                succSoFar += cell.records[static_cast<std::size_t>(idx)]
                                 .result.success
                                 ? 1
                                 : 0;
            t.convergence.emplace_back(
                cp, static_cast<double>(succSoFar) / cp);
        }

        Pool& pool =
            pools[{t.platform, t.taskId, t.protection}];
        pool.energy.insert(pool.energy.end(), energy.begin(), energy.end());
        pool.steps.insert(pool.steps.end(), steps.begin(), steps.end());
        ++pool.ledgers;
        pool.episodes += t.episodes;
        pool.successes += successes;

        res.ledgers.push_back(std::move(t));
    }

    for (const auto& [key, pool] : pools) {
        GroupTail g;
        g.platform = std::get<0>(key);
        g.taskId = std::get<1>(key);
        g.protection = std::get<2>(key);
        g.ledgers = pool.ledgers;
        g.episodes = pool.episodes;
        g.successRate = pool.episodes > 0
                            ? static_cast<double>(pool.successes) /
                                  static_cast<double>(pool.episodes)
                            : 0.0;
        g.energyJ = summarize(pool.energy);
        g.steps = summarize(pool.steps);
        res.groups.push_back(std::move(g));
    }
    for (const auto& [owner, load] : owners) {
        ShardLoad s;
        s.owner = owner;
        s.episodes = load.episodes;
        s.ledgers = load.ledgers;
        s.leasesHeld = load.leasesHeld;
        if (load.telemetry) {
            const JsonRecord& t = *load.telemetry;
            s.hasRanges = true;
            s.rangesAssigned =
                static_cast<long long>(t.number("rangesAssigned"));
            s.rangesCompleted =
                static_cast<long long>(t.number("rangesCompleted"));
            s.rangesRedispatched =
                static_cast<long long>(t.number("rangesRedispatched"));
            s.rangeP50Ms = t.number("rangeP50Ms");
            s.rangeP95Ms = t.number("rangeP95Ms");
            const double elapsed = t.number("elapsed");
            if (elapsed > 0.0)
                s.epsPerSec = t.number("episodes") / elapsed;
        }
        res.shards.push_back(std::move(s));
    }
    std::sort(res.shards.begin(), res.shards.end(),
              [](const ShardLoad& a, const ShardLoad& b) {
                  return a.episodes != b.episodes ? a.episodes > b.episodes
                                                  : a.owner < b.owner;
              });
    return res;
}

bool
computeStoreStats(const std::string& path, StoreStatsResult& out,
                  std::string& error)
{
    std::vector<StoreCell> cells;
    std::vector<JsonRecord> workers;
    if (!loadStoreCells(path, cells, error, &workers))
        return false;
    out = computeStoreStats(cells, workers);
    return true;
}

StatsCompareResult
compareStoreStats(const StoreStatsResult& a, const StoreStatsResult& b,
                  const StoreDiffOptions& opt)
{
    StatsCompareResult res;
    std::map<std::string, const LedgerTail*> byFpB;
    for (const LedgerTail& t : b.ledgers)
        byFpB.emplace(t.fingerprint, &t);

    auto within = [&](double x, double y) {
        if (x == y)
            return true;
        const double scale = std::max(std::fabs(x), std::fabs(y));
        return std::fabs(x - y) <= opt.absTol + opt.relTol * scale;
    };

    for (const LedgerTail& ta : a.ledgers) {
        const auto it = byFpB.find(ta.fingerprint);
        if (it == byFpB.end()) {
            ++res.onlyA;
            continue;
        }
        const LedgerTail& tb = *it->second;
        byFpB.erase(it);
        ++res.compared;
        if (ta.episodes != tb.episodes) {
            res.entries.push_back(
                {ta.fingerprint,
                 "episodes " + std::to_string(ta.episodes) + " vs " +
                     std::to_string(tb.episodes)});
            continue; // percentile drift is implied by a shorter fold
        }
        const std::pair<const char*, const PercentileSummary LedgerTail::*>
            dims[] = {{"energyJ", &LedgerTail::energyJ},
                      {"steps", &LedgerTail::steps}};
        for (const auto& [dim, member] : dims)
            for (const auto& [pkey, pmember] : kPercentileFields) {
                const double va = (ta.*member).*pmember;
                const double vb = (tb.*member).*pmember;
                if (!within(va, vb))
                    res.entries.push_back(
                        {ta.fingerprint, std::string(dim) + "." + pkey +
                                             " " + fmtg(va) + " vs " +
                                             fmtg(vb)});
            }
    }
    res.onlyB = static_cast<int>(byFpB.size());
    return res;
}

} // namespace create
