#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "common/serialize.hpp"
#include "core/platform_registry.hpp"

namespace create {

namespace {

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char*
modeTag(InjectionMode m)
{
    switch (m) {
      case InjectionMode::None: return "none";
      case InjectionMode::Uniform: return "uniform";
      case InjectionMode::Voltage: return "voltage";
    }
    return "?";
}

/** TaskStats <-> JsonRecord field mapping of the result store. */
constexpr std::pair<const char*, double TaskStats::*> kStatFields[] = {
    {"successRate", &TaskStats::successRate},
    {"avgStepsSuccess", &TaskStats::avgStepsSuccess},
    {"avgComputeJ", &TaskStats::avgComputeJ},
    {"avgPlannerEffV", &TaskStats::avgPlannerEffV},
    {"avgControllerEffV", &TaskStats::avgControllerEffV},
    {"avgPlannerInvocations", &TaskStats::avgPlannerInvocations},
    {"avgPlannerV2", &TaskStats::avgPlannerV2},
    {"avgControllerV2", &TaskStats::avgControllerV2},
};

} // namespace

std::string
sweepFingerprint(const SweepCell& cell)
{
    const CreateConfig& c = cell.cfg;
    // Canonical: everything that can change execution, nothing that
    // cannot. The policy's display name never matters; the whole policy
    // (and the LDO update interval) only matters under voltageScaling;
    // BER fields only matter under Uniform injection; the injection
    // target switches and component filter only matter when injection is
    // active at all. Operating voltages always matter (the energy meter
    // prices clean compute at them too).
    std::string fp = "v1|" + cell.platform +
                     "|task=" + std::to_string(cell.taskId) +
                     "|reps=" + std::to_string(cell.reps) +
                     "|seed0=" + std::to_string(cell.seed0);
    fp += "|tech=";
    fp += c.anomalyDetection ? 'A' : '-';
    fp += c.weightRotation ? 'W' : '-';
    fp += c.voltageScaling ? 'V' : '-';
    fp += std::string("|bits=") + (c.bits == QuantBits::Int8 ? "8" : "4");
    fp += "|prot=" + std::to_string(static_cast<int>(c.protection));
    fp += std::string("|mode=") + modeTag(c.mode);
    fp += "|pV=" + fmt(c.plannerVoltage) + "|cV=" + fmt(c.controllerVoltage);
    if (c.mode != InjectionMode::None) {
        fp += "|injP=" + std::to_string(c.injectPlanner ? 1 : 0) +
              "|injC=" + std::to_string(c.injectController ? 1 : 0);
        fp += "|filter=" + c.componentFilter;
        if (c.mode == InjectionMode::Uniform)
            fp += "|ber=" + fmt(c.uniformBer) + "|pber=" + fmt(c.plannerBer) +
                  "|cber=" + fmt(c.controllerBer);
    }
    if (c.voltageScaling) {
        fp += "|vsInt=" + std::to_string(c.vsInterval) + "|policy=";
        for (double t : c.policy.thresholds())
            fp += fmt(t) + ",";
        fp += ":";
        for (double v : c.policy.voltages())
            fp += fmt(v) + ",";
    }
    return fp;
}

SweepRunner::SweepRunner() : SweepRunner(Options()) {}

SweepRunner::SweepRunner(Options opt) : opt_(std::move(opt))
{
    if (opt_.threads < 1)
        opt_.threads = 1;
}

std::size_t
SweepRunner::add(SweepCell cell)
{
    if (!PlatformRegistry::instance().find(cell.platform))
        throw std::invalid_argument("SweepRunner: unknown platform '" +
                                    cell.platform + "'");
    if (cell.reps < 1)
        throw std::invalid_argument("SweepRunner: cell needs reps >= 1");
    CellState st;
    st.cell = std::move(cell);
    st.fingerprint = sweepFingerprint(st.cell);
    const std::size_t handle = cells_.size();
    const auto [it, inserted] =
        byFingerprint_.emplace(st.fingerprint, handle);
    st.primary = it->second;
    cells_.push_back(std::move(st));
    return handle;
}

const SweepCell&
SweepRunner::cell(std::size_t handle) const
{
    return cells_.at(handle).cell;
}

CellSource
SweepRunner::source(std::size_t handle) const
{
    const CellState& st = cells_.at(handle);
    return st.primary == handle ? st.source : CellSource::Memoized;
}

const TaskStats&
SweepRunner::stats(std::size_t handle) const
{
    const CellState& st = cells_.at(cells_.at(handle).primary);
    if (!st.done)
        throw std::logic_error("SweepRunner::stats before run()");
    return st.stats;
}

EmbodiedSystem&
SweepRunner::system(const std::string& platform)
{
    return *prototypeFor(platform);
}

EmbodiedSystem*
SweepRunner::prototypeFor(const std::string& platform)
{
    auto it = prototypes_.find(platform);
    if (it == prototypes_.end())
        it = prototypes_
                 .emplace(platform, PlatformRegistry::instance().make(
                                        platform, /*verbose=*/false))
                 .first;
    return it->second.get();
}

void
SweepRunner::runCell(CellState& st, EmbodiedSystem& sys)
{
    auto results = sys.runEpisodes(st.cell.taskId, st.cell.cfg, st.cell.reps,
                                   st.cell.seed0);
    st.stats = aggregate(results, sys.energyModel());
    st.episodes = std::move(results);
    st.hasEpisodes = true;
    {
        std::lock_guard<std::mutex> lock(storeMu_);
        st.done = true;
    }
    if (!opt_.storePath.empty())
        flushStore(); // incremental: a killed campaign resumes
    if (opt_.verbose)
        std::fprintf(stderr, "[sweep] done %s (%s, success %.0f%%)\n",
                     st.cell.label.empty() ? st.fingerprint.c_str()
                                           : st.cell.label.c_str(),
                     sys.taskName(st.cell.taskId),
                     100.0 * st.stats.successRate);
}

void
SweepRunner::loadStore(std::map<std::string, TaskStats>& stored)
{
    std::vector<JsonRecord> records;
    if (readJsonRecords(opt_.storePath, records)) {
        for (JsonRecord& rec : records) {
            if (opt_.resume) {
                TaskStats s;
                s.episodes = static_cast<int>(rec.number("episodes"));
                s.successes = static_cast<int>(rec.number("successes"));
                for (const auto& [key, member] : kStatFields)
                    s.*member = rec.number(key);
                stored.emplace(rec.name, s);
            }
            // Keep every record through future flushes, including ones no
            // declared cell (yet) matches -- a rewrite must never drop
            // another campaign's results.
            storeRecords_.emplace(rec.name, std::move(rec));
        }
    } else if (std::FILE* probe = std::fopen(opt_.storePath.c_str(), "rb")) {
        // An existing-but-unparsable store (e.g. hand-edited or from a
        // foreign tool) should not be silently ignored: with --resume it
        // re-runs hours of episodes, and either way the next flush
        // replaces it.
        std::fclose(probe);
        std::fprintf(stderr,
                     "[sweep] cannot parse result store %s; %s\n",
                     opt_.storePath.c_str(),
                     opt_.resume ? "re-running every cell"
                                 : "it will be replaced");
    }
}

void
SweepRunner::flushStore()
{
    // Merge + snapshot under storeMu_ (cheap), write the file under a
    // separate I/O mutex so workers marking their cells done never queue
    // behind disk I/O. A version stamp drops stale snapshots when two
    // flushes race, so the file on disk only moves forward.
    std::vector<JsonRecord> records;
    std::uint64_t version = 0;
    {
        std::lock_guard<std::mutex> lock(storeMu_);
        for (const CellState& st : cells_) {
            if (&st != &cells_[st.primary] || !st.done)
                continue;
            JsonRecord rec;
            rec.name = st.fingerprint;
            rec.strings.emplace_back("platform", st.cell.platform);
            rec.strings.emplace_back("label", st.cell.label);
            rec.numbers.emplace_back("task", st.cell.taskId);
            rec.numbers.emplace_back("reps", st.cell.reps);
            rec.numbers.emplace_back("seed0",
                                     static_cast<double>(st.cell.seed0));
            rec.numbers.emplace_back("episodes", st.stats.episodes);
            rec.numbers.emplace_back("successes", st.stats.successes);
            for (const auto& [key, member] : kStatFields)
                rec.numbers.emplace_back(key, st.stats.*member);
            storeRecords_[st.fingerprint] = std::move(rec);
        }
        records.reserve(storeRecords_.size());
        for (const auto& [fp, rec] : storeRecords_)
            records.push_back(rec);
        version = ++storeVersion_;
    }
    std::lock_guard<std::mutex> io(storeIoMu_);
    if (version <= storeWritten_)
        return; // a newer snapshot already reached disk
    if (!writeJsonRecords(opt_.storePath, records))
        std::fprintf(stderr, "[sweep] cannot write result store %s\n",
                     opt_.storePath.c_str());
    else
        storeWritten_ = version;
}

void
SweepRunner::run()
{
    if (!ran_ && opt_.resume && opt_.storePath.empty())
        std::fprintf(stderr, "[sweep] --resume without a result store "
                             "(--out) has no effect\n");

    // Load the store on every run() call: campaigns can be phased (add()
    // more cells after a run, run again: only the new cells execute).
    // Existing records are preserved through flushes even without
    // --resume (two campaigns can share one store); --resume additionally
    // uses them to skip execution.
    std::map<std::string, TaskStats> stored;
    if (!opt_.storePath.empty())
        loadStore(stored);

    // Classify cells; collect pending primaries in submission order.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        CellState& st = cells_[i];
        if (st.primary != i || st.done)
            continue;
        const auto it = stored.find(st.fingerprint);
        if (it != stored.end()) {
            st.stats = it->second;
            st.source = CellSource::Resumed;
            st.done = true;
            continue;
        }
        pending.push_back(i);
    }

    // Waves: freezing quantized weights is per-width state on the shared
    // model set, so cells of one platform at different QuantBits must not
    // run concurrently. Bucket pending cells by (platform, bits) in
    // first-appearance order and run the buckets sequentially.
    std::vector<std::pair<std::string, std::vector<std::size_t>>> buckets;
    for (const std::size_t idx : pending) {
        const CellState& st = cells_[idx];
        const std::string key =
            st.cell.platform +
            (st.cell.cfg.bits == QuantBits::Int8 ? "|8" : "|4");
        auto it = std::find_if(buckets.begin(), buckets.end(),
                               [&](const auto& b) { return b.first == key; });
        if (it == buckets.end()) {
            buckets.push_back({key, {}});
            it = buckets.end() - 1;
        }
        it->second.push_back(idx);
    }

    for (auto& [key, bucketCells] : buckets) {
        const std::string& platform = cells_[bucketCells.front()].cell.platform;
        EmbodiedSystem* proto = prototypeFor(platform);
        // Serial warm point: build lazy models (rotated planner, entropy
        // predictor) and freeze every layer at this bucket's width before
        // any fan-out, so workers only read shared model state.
        for (const std::size_t idx : bucketCells)
            proto->prepare(cells_[idx].cell.cfg);

        const int cellWorkers = std::max(
            1, std::min<int>(opt_.threads,
                             static_cast<int>(bucketCells.size())));
        // Leftover thread budget fans out within cells via the existing
        // episode-parallel engine (a one-cell campaign still scales).
        const int episodeThreads = std::max(1, opt_.threads / cellWorkers);

        if (cellWorkers == 1) {
            proto->setEvalThreads(episodeThreads);
            for (const std::size_t idx : bucketCells)
                runCell(cells_[idx], *proto);
            continue;
        }

        auto& replicas = replicas_[platform];
        while (static_cast<int>(replicas.size()) < cellWorkers)
            replicas.push_back(proto->replicate());
        for (auto& r : replicas)
            r->setEvalThreads(episodeThreads);

        std::atomic<std::size_t> cursor{0};
        std::string firstError;
        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(cellWorkers));
        for (int w = 0; w < cellWorkers; ++w) {
            workers.emplace_back([&, w] {
                try {
                    for (;;) {
                        const std::size_t i = cursor.fetch_add(1);
                        if (i >= bucketCells.size())
                            return;
                        runCell(cells_[bucketCells[i]],
                                *replicas[static_cast<std::size_t>(w)]);
                    }
                } catch (const std::exception& e) {
                    std::lock_guard<std::mutex> lock(storeMu_);
                    if (firstError.empty())
                        firstError = e.what();
                }
            });
        }
        for (auto& w : workers)
            w.join();
        if (!firstError.empty())
            throw std::runtime_error("SweepRunner worker failed: " +
                                     firstError);
    }

    if (!opt_.storePath.empty())
        flushStore(); // include resumed cells so the store stays whole

    // Recount from cell state (idempotent across phased runs).
    executed_ = memoized_ = resumed_ = 0;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const CellState& st = cells_[i];
        if (st.primary != i)
            ++memoized_;
        else if (st.source == CellSource::Resumed)
            ++resumed_;
        else if (st.done)
            ++executed_;
    }
    // Print the summary on the first run even when nothing was pending (a
    // fully-resumed campaign still reports executed=0); later phases only
    // report when they actually had work.
    if (!ran_ || !pending.empty())
        std::printf("%s\n", summary().c_str());
    ran_ = true;
}

const std::vector<EpisodeResult>&
SweepRunner::episodes(std::size_t handle)
{
    CellState& st = cells_.at(cells_.at(handle).primary);
    if (!st.done)
        throw std::logic_error("SweepRunner::episodes before run()");
    if (!st.hasEpisodes) {
        // Resumed cell: re-derive the per-episode results. Execution is
        // deterministic, so these are exactly the episodes the stored
        // aggregate came from.
        EmbodiedSystem* proto = prototypeFor(st.cell.platform);
        proto->prepare(st.cell.cfg);
        proto->setEvalThreads(opt_.threads);
        st.episodes = proto->runEpisodes(st.cell.taskId, st.cell.cfg,
                                         st.cell.reps, st.cell.seed0);
        st.hasEpisodes = true;
    }
    return st.episodes;
}

std::string
SweepRunner::summary() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "[sweep] cells=%zu executed=%d memoized=%d resumed=%d",
                  cells_.size(), executed_, memoized_, resumed_);
    return buf;
}

} // namespace create
