#include "core/sweep.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/chaos.hpp"
#include "common/io_retry.hpp"
#include "common/serialize.hpp"
#include "core/coordinator.hpp"
#include "core/platform_registry.hpp"
#include "core/store_stats.hpp"

namespace create {

namespace {

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char*
modeTag(InjectionMode m)
{
    switch (m) {
      case InjectionMode::None: return "none";
      case InjectionMode::Uniform: return "uniform";
      case InjectionMode::Voltage: return "voltage";
    }
    return "?";
}

/**
 * The config-dependent fingerprint tail shared by the v1 and v2 formats:
 * everything that can change execution, nothing that cannot. The policy's
 * display name never matters; the whole policy (and the LDO update
 * interval) only matters under voltageScaling; BER fields only matter
 * under Uniform injection; the injection target switches and component
 * filter only matter when injection is active at all. Operating voltages
 * always matter (the energy meter prices clean compute at them too).
 */
std::string
fingerprintTail(const CreateConfig& c)
{
    std::string fp = "|tech=";
    fp += c.anomalyDetection ? 'A' : '-';
    fp += c.weightRotation ? 'W' : '-';
    fp += c.voltageScaling ? 'V' : '-';
    fp += std::string("|bits=") + (c.bits == QuantBits::Int8 ? "8" : "4");
    fp += "|prot=" + std::to_string(static_cast<int>(c.protection));
    fp += std::string("|mode=") + modeTag(c.mode);
    fp += "|pV=" + fmt(c.plannerVoltage) + "|cV=" + fmt(c.controllerVoltage);
    if (c.mode != InjectionMode::None) {
        fp += "|injP=" + std::to_string(c.injectPlanner ? 1 : 0) +
              "|injC=" + std::to_string(c.injectController ? 1 : 0);
        fp += "|filter=" + c.componentFilter;
        if (c.mode == InjectionMode::Uniform)
            fp += "|ber=" + fmt(c.uniformBer) + "|pber=" + fmt(c.plannerBer) +
                  "|cber=" + fmt(c.controllerBer);
    }
    if (c.voltageScaling) {
        fp += "|vsInt=" + std::to_string(c.vsInterval) + "|policy=";
        for (double t : c.policy.thresholds())
            fp += fmt(t) + ",";
        fp += ":";
        for (double v : c.policy.voltages())
            fp += fmt(v) + ",";
    }
    return fp;
}

double
nowSeconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch()).count();
}

/**
 * Wall-clock seconds for lease timestamps. Leases are compared across
 * processes and machines, so this must be the system clock, not the
 * steady clock (whose epoch is per-boot).
 */
double
wallSeconds()
{
    using namespace std::chrono;
    return duration<double>(system_clock::now().time_since_epoch()).count();
}

/**
 * This worker's lease identity: "host:pid.seq". The per-process sequence
 * distinguishes multiple runners inside one process (tests, embedded
 * campaigns) -- two workers must never share an identity or a steal from
 * a dead sibling would look like a self-renewal.
 */
std::string
makeWorkerId()
{
    char host[256] = "";
    if (::gethostname(host, sizeof(host) - 1) != 0 || host[0] == '\0')
        std::snprintf(host, sizeof(host), "localhost");
    host[sizeof(host) - 1] = '\0';
    static std::atomic<int> seq{0};
    return std::string(host) + ":" + std::to_string(::getpid()) + "." +
           std::to_string(++seq);
}

/** Split a "host:port" coordinator spec; false on anything malformed. */
bool
parseHostPort(const std::string& spec, std::string& host, int& port)
{
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.size())
        return false;
    char* end = nullptr;
    const long p = std::strtol(spec.c_str() + colon + 1, &end, 10);
    if (end == spec.c_str() + colon + 1 || (end && *end != '\0') ||
        p < 1 || p > 65535)
        return false;
    host = spec.substr(0, colon);
    port = static_cast<int>(p);
    return true;
}

} // namespace

std::string
sweepFingerprint(const SweepCell& cell)
{
    // v2: reps is canonicalized away. Episodes run at seed0 + i, so a
    // cell's reps is the length of the prefix it reads off the shared
    // ledger, not part of the ledger's identity.
    return "v2|" + cell.platform + "|task=" + std::to_string(cell.taskId) +
           "|seed0=" + std::to_string(cell.seed0) + fingerprintTail(cell.cfg);
}

std::string
sweepFingerprintLegacyV1(const SweepCell& cell)
{
    return "v1|" + cell.platform + "|task=" + std::to_string(cell.taskId) +
           "|reps=" + std::to_string(cell.reps) +
           "|seed0=" + std::to_string(cell.seed0) + fingerprintTail(cell.cfg);
}

void
SweepRunner::Ledger::grow(int need)
{
    if (static_cast<int>(eps.size()) < need) {
        eps.resize(static_cast<std::size_t>(need));
        have.resize(static_cast<std::size_t>(need), 0);
    }
}

int
SweepRunner::Ledger::prefixLen(int limit) const
{
    int n = 0;
    const int cap = std::min(limit, static_cast<int>(have.size()));
    while (n < cap && have[static_cast<std::size_t>(n)])
        ++n;
    return n;
}

/** Streams one work unit's completed episodes into the ledger + store. */
class SweepRunner::StoreSink : public EpisodeSink
{
  public:
    StoreSink(SweepRunner& runner, const std::string& fingerprint,
              Ledger& ledger, const PaperEnergyModel& energy)
        : runner_(runner), fingerprint_(fingerprint), ledger_(ledger),
          energy_(energy), toStore_(!runner.opt_.storePath.empty())
    {
    }

    int base = 0; //!< ledger index of this run's episode 0

    void onEpisode(int index, const EpisodeResult& result,
                   const EpisodeMetrics& metrics) override
    {
        // Price the episode once, at completion: the record is the unit
        // of campaign state from here on. The metrics payload rides along
        // into the ledger/store but never into the TaskStats fold.
        const EpisodeRecord rec{result, energy_.episodeComputeJ(result),
                                metrics};
        bool doFlush = false;
        {
            std::lock_guard<std::mutex> lock(runner_.storeMu_);
            const auto idx = static_cast<std::size_t>(base + index);
            ledger_.eps[idx] = rec;
            ledger_.have[idx] = 1;
            ledger_.anyExecuted = true;
            ++runner_.episodesExecuted_;
            ++runner_.progressDone_;
            if (result.success)
                ++runner_.progressSucc_;
            if (metrics.present) {
                // Bounded sliding window: live tail latency, O(1) space.
                constexpr std::size_t kWallWindow = 4096;
                if (runner_.progressWall_.size() < kWallWindow)
                    runner_.progressWall_.push_back(metrics.wallMs);
                else
                    runner_.progressWall_[runner_.progressWallNext_++ %
                                          kWallWindow] = metrics.wallMs;
                runner_.progressFlips_ += metrics.flipsInjected;
            }
            if (toStore_) {
                JsonRecord jr = episodeToRecord(
                    sweepEpisodeKey(fingerprint_, base + index), rec);
                // Elastic campaigns stamp each episode with the worker
                // that ran it: per-shard attribution for sweep-stats.
                // The field is a string, so the diff/stat folds never
                // see it; chaos-off stores stay byte-identical.
                if (runner_.opt_.leaseSeconds > 0.0)
                    jr.strings.emplace_back("by", runner_.workerId_);
                runner_.pendingRecords_.push_back(std::move(jr));
            }
            if (++runner_.flushTick_ >= runner_.opt_.flushEvery) {
                runner_.flushTick_ = 0;
                doFlush = true;
            }
        }
        if (doFlush) {
            runner_.flushStore();
            if (runner_.opt_.progress)
                runner_.progressLine();
        }
    }

  private:
    SweepRunner& runner_;
    const std::string& fingerprint_;
    Ledger& ledger_;
    const PaperEnergyModel& energy_;
    const bool toStore_;
};

/**
 * Streams one dispatched range's completed episodes to the coordinator:
 * the ledger/progress side of StoreSink, but the records go onto the
 * wire instead of the local store. Every record of the current range is
 * retained until the range is acknowledged -- a send that fails
 * mid-range (coordinator restart, injected connreset) just marks the
 * sink broken and the range runner re-sends the whole range after
 * reconnecting (episodes are deterministic, so the coordinator's merge
 * is idempotent).
 */
class SweepRunner::CoordSink : public EpisodeSink
{
  public:
    CoordSink(SweepRunner& runner, const std::string& fingerprint,
              Ledger& ledger, const PaperEnergyModel& energy,
              CoordClient& client)
        : runner_(runner), fingerprint_(fingerprint), ledger_(ledger),
          energy_(energy), client_(client)
    {
    }

    int base = 0;        //!< ledger index of this range's episode 0
    bool broken = false; //!< a send failed; caller reconnects + re-sends
    std::vector<JsonRecord> records; //!< the whole range, arrival order

    void onEpisode(int index, const EpisodeResult& result,
                   const EpisodeMetrics& metrics) override
    {
        const EpisodeRecord rec{result, energy_.episodeComputeJ(result),
                                metrics};
        {
            std::lock_guard<std::mutex> lock(runner_.storeMu_);
            const auto idx = static_cast<std::size_t>(base + index);
            ledger_.eps[idx] = rec;
            ledger_.have[idx] = 1;
            ledger_.anyExecuted = true;
            ++runner_.episodesExecuted_;
            ++runner_.progressDone_;
            if (result.success)
                ++runner_.progressSucc_;
            if (metrics.present) {
                constexpr std::size_t kWallWindow = 4096;
                if (runner_.progressWall_.size() < kWallWindow)
                    runner_.progressWall_.push_back(metrics.wallMs);
                else
                    runner_.progressWall_[runner_.progressWallNext_++ %
                                          kWallWindow] = metrics.wallMs;
                runner_.progressFlips_ += metrics.flipsInjected;
            }
        }
        JsonRecord jr = episodeToRecord(
            sweepEpisodeKey(fingerprint_, base + index), rec);
        // Worker attribution, same contract as elastic mode: a string
        // field the diff/stat folds never compare.
        jr.strings.emplace_back("by", runner_.workerId_);
        records.push_back(std::move(jr));
        if (!broken &&
            records.size() - sent_ >=
                static_cast<std::size_t>(runner_.opt_.flushEvery)) {
            const std::vector<JsonRecord> out(
                records.begin() + static_cast<std::ptrdiff_t>(sent_),
                records.end());
            std::string err;
            if (client_.send(out, &err)) {
                sent_ = records.size();
            } else {
                broken = true;
                std::fprintf(stderr,
                             "[sweep] coordinator send failed mid-range "
                             "(%s); finishing the range for re-send\n",
                             err.c_str());
            }
            if (runner_.opt_.progress)
                runner_.progressLine();
        }
    }

    /** Records not yet on the wire (tail of the range). */
    std::vector<JsonRecord> unsent() const
    {
        return {records.begin() + static_cast<std::ptrdiff_t>(sent_),
                records.end()};
    }

  private:
    SweepRunner& runner_;
    const std::string& fingerprint_;
    Ledger& ledger_;
    const PaperEnergyModel& energy_;
    CoordClient& client_;
    std::size_t sent_ = 0;
};

SweepRunner::SweepRunner() : SweepRunner(Options()) {}

SweepRunner::SweepRunner(Options opt) : opt_(std::move(opt))
{
    if (opt_.threads < 1)
        opt_.threads = 1;
    if (opt_.flushEvery < 1)
        opt_.flushEvery = 1;
    if (opt_.shardCount < 1)
        opt_.shardCount = 1;
    if (opt_.shardIndex < 0 || opt_.shardIndex >= opt_.shardCount)
        throw std::invalid_argument("SweepRunner: shard index " +
                                    std::to_string(opt_.shardIndex) +
                                    " outside 0.." +
                                    std::to_string(opt_.shardCount - 1));
    if (opt_.leaseSeconds < 0.0)
        opt_.leaseSeconds = 0.0;
    if (opt_.leaseSeconds > 0.0 && opt_.shardCount > 1) {
        // Leases subsume the static partition: every process claims
        // dynamically, so a shard index would only mislead.
        std::fprintf(stderr,
                     "[sweep] elastic lease mode: --shard partition "
                     "ignored (workers claim ledgers dynamically)\n");
        opt_.shardIndex = 0;
        opt_.shardCount = 1;
    }
    if (!opt_.connect.empty()) {
        std::string host;
        int port = 0;
        if (!parseHostPort(opt_.connect, host, port))
            throw std::invalid_argument(
                "SweepRunner: connect expects host:port, got '" +
                opt_.connect + "'");
        if (!opt_.storePath.empty() || opt_.resume ||
            opt_.shardCount > 1 || opt_.leaseSeconds > 0.0)
            throw std::invalid_argument(
                "SweepRunner: connect replaces the shared-store options "
                "(store/resume/shard/lease) -- the coordinator owns all "
                "store state");
    }
    workerId_ = makeWorkerId();
}

std::size_t
SweepRunner::add(SweepCell cell)
{
    if (!PlatformRegistry::instance().find(cell.platform))
        throw std::invalid_argument("SweepRunner: unknown platform '" +
                                    cell.platform + "'");
    if (cell.reps < 1)
        throw std::invalid_argument("SweepRunner: cell needs reps >= 1");
    CellState st;
    st.cell = std::move(cell);
    st.fingerprint = sweepFingerprint(st.cell);
    const std::size_t handle = cells_.size();
    // Exact duplicates (same ledger *and* same prefix length) memoize
    // onto the first declaration; distinct-reps cells of one ledger stay
    // separate handles and slice their own prefixes.
    const auto [it, inserted] = byKey_.emplace(
        st.fingerprint + "|reps=" + std::to_string(st.cell.reps), handle);
    st.primary = it->second;
    cells_.push_back(std::move(st));
    return handle;
}

const SweepCell&
SweepRunner::cell(std::size_t handle) const
{
    return cells_.at(handle).cell;
}

CellSource
SweepRunner::source(std::size_t handle) const
{
    const CellState& st = cells_.at(handle);
    return st.primary == handle ? st.source : CellSource::Memoized;
}

const TaskStats&
SweepRunner::stats(std::size_t handle) const
{
    const CellState& st = cells_.at(cells_.at(handle).primary);
    if (!st.done)
        throw std::logic_error("SweepRunner::stats before run()");
    return st.stats;
}

EmbodiedSystem&
SweepRunner::system(const std::string& platform)
{
    return *prototypeFor(platform);
}

EmbodiedSystem*
SweepRunner::prototypeFor(const std::string& platform)
{
    auto it = prototypes_.find(platform);
    if (it == prototypes_.end())
        it = prototypes_
                 .emplace(platform, PlatformRegistry::instance().make(
                                        platform, /*verbose=*/false))
                 .first;
    return it->second.get();
}

void
SweepRunner::finalizeGroup(const std::string& fingerprint,
                           const std::vector<std::size_t>& members,
                           std::size_t owner, bool executedNow, bool skipped)
{
    std::lock_guard<std::mutex> lock(storeMu_);
    const Ledger& led = ledgers_.find(fingerprint)->second;
    for (const std::size_t m : members) {
        CellState& st = cells_[m];
        // A skipped cell (another shard owns the ledger) folds whatever
        // contiguous prefix is locally available -- possibly nothing.
        const int n =
            skipped ? led.prefixLen(st.cell.reps) : st.cell.reps;
        st.stats = aggregate(led.eps.data(), static_cast<std::size_t>(n));
        if (skipped)
            st.source = CellSource::Skipped;
        else if (m == owner && executedNow)
            st.source = CellSource::Executed;
        else if (led.anyExecuted)
            st.source = CellSource::Sliced;
        else
            st.source = CellSource::Resumed;
        st.done = true;
    }
    if (executedNow)
        ++unitsDone_;
}

void
SweepRunner::runUnit(WorkUnit& unit, EmbodiedSystem& sys)
{
    const SweepCell& c = cells_[unit.owner].cell;
    StoreSink sink(*this, unit.fingerprint, *unit.led, sys.energyModel());
    for (const auto& [start, count] : unit.runs) {
        sink.base = start;
        sys.runEpisodes(c.taskId, c.cfg, count,
                        c.seed0 + static_cast<std::uint64_t>(start), &sink);
    }
    finalizeGroup(unit.fingerprint, unit.members, unit.owner,
                  /*executedNow=*/true, /*skipped=*/false);
    if (opt_.leaseSeconds > 0.0 && !opt_.storePath.empty()) {
        // Mark our lease done before the unit-boundary flush renews it:
        // the same write that lands the final episodes publishes the
        // ledger as complete, so peers stop honoring the lease.
        std::lock_guard<std::mutex> io(storeIoMu_);
        const auto it = activeLeases_.find(unit.fingerprint);
        if (it != activeLeases_.end())
            it->second.done = true;
    }
    if (!opt_.storePath.empty())
        flushStore(); // unit boundary: a killed campaign resumes from here
    if (opt_.progress)
        progressLine();
    if (opt_.verbose)
        std::fprintf(stderr, "[sweep] done %s (%s, success %.0f%%)\n",
                     c.label.empty() ? unit.fingerprint.c_str()
                                     : c.label.c_str(),
                     sys.taskName(c.taskId),
                     100.0 * cells_[unit.owner].stats.successRate);
}

void
SweepRunner::loadStore(
    std::map<std::string, std::map<int, EpisodeRecord>>& eps,
    std::map<std::string, TaskStats>& legacy)
{
    // Called from run() before any worker starts (and after any previous
    // phase's workers joined), so storeRecords_ is safe to fill; the
    // lock below just documents the storeIoMu_ ownership.
    std::lock_guard<std::mutex> io(storeIoMu_);
    StoreBackend* be = ensureBackendLocked();
    if (!be)
        return;
    std::vector<JsonRecord> records;
    StoreLoadInfo sal;
    // Backend loads quarantine unreadable tails before anything rewrites
    // or truncates them (post-mortem evidence survives the heal).
    if (!be->load(records, &sal, /*quarantineBadTails=*/true))
        return; // no store yet
    if (sal.salvaged) {
        if (records.empty()) {
            // Not a record store at all (hand-edited, foreign tool): no
            // prefix to salvage. Don't silently ignore it -- with
            // --resume this re-runs hours of episodes, and either way
            // the next flush replaces the file.
            std::fprintf(stderr,
                         "[sweep] cannot parse result store %s; %s\n",
                         opt_.storePath.c_str(),
                         opt_.resume ? "re-running every cell"
                                     : "it will be replaced");
            return;
        }
        // Truncated/torn store: keep the longest parseable record prefix
        // (every episode that landed intact resumes); the bad tails were
        // quarantined above before the next flush rewrites them.
        std::fprintf(stderr,
                     "[sweep] result store %s is truncated or corrupt: "
                     "salvaged %zu records (%llu of %llu bytes, %zu "
                     "file%s); bad tail %s%s\n",
                     opt_.storePath.c_str(), records.size(),
                     static_cast<unsigned long long>(sal.goodBytes),
                     static_cast<unsigned long long>(sal.totalBytes),
                     sal.files, sal.files == 1 ? "" : "s",
                     sal.quarantined.empty() ? "could not be quarantined"
                                             : "quarantined to ",
                     sal.quarantined.empty()
                         ? ""
                         : sal.quarantined.front().c_str());
    }

    // A store without a schema record is a PR 4-era (v1) cell-level
    // store; its records are served read-only for whole-cell resume.
    int schema = 1;
    for (const JsonRecord& rec : records)
        if (rec.name == kSweepStoreSchemaRecord)
            schema = static_cast<int>(rec.number("schema", 1));
    if (schema > kSweepStoreSchema) {
        // Rewriting a future-schema store would mix our records under
        // its (still present) newer schema header and corrupt it for the
        // build that owns it. Treat it strictly read-only: disable the
        // store for this campaign (no resume, no flushes).
        std::fprintf(stderr,
                     "[sweep] result store %s has schema %d (newer than "
                     "this build's %d); leaving it untouched -- this "
                     "campaign runs without a store\n",
                     opt_.storePath.c_str(), schema, kSweepStoreSchema);
        opt_.storePath.clear();
        store_.reset();
        return;
    }

    for (JsonRecord& rec : records) {
        if (opt_.resume && rec.name != kSweepStoreSchemaRecord) {
            std::string fp;
            const int idx = sweepEpisodeIndex(rec.name, &fp);
            if (idx >= 0) {
                EpisodeRecord er;
                if (episodeFromRecord(rec, er))
                    eps[fp][idx] = er;
                else
                    std::fprintf(stderr,
                                 "[sweep] store record %s is missing "
                                 "episode fields; re-running it\n",
                                 rec.name.c_str());
            } else if (rec.name.rfind("v1|", 0) == 0 &&
                       rec.number("episodes", -1.0) >= 0.0) {
                TaskStats s;
                s.episodes = static_cast<int>(rec.number("episodes"));
                s.successes = static_cast<int>(rec.number("successes"));
                for (const auto& [key, member] : kTaskStatFields)
                    s.*member = rec.number(key);
                legacy.emplace(rec.name, s);
            }
        }
        // Keep every record through future flushes, including ones no
        // declared cell (yet) matches -- a rewrite must never drop
        // another campaign's (or shard's) results.
        storeRecords_.emplace(rec.name, std::move(rec));
    }
}

void
SweepRunner::flushStore()
{
    if (opt_.storePath.empty())
        return;
    // Chaos injection point: a worker that dies here leaves its pending
    // batch unflushed -- exactly the kill -9 shape the lease protocol
    // and --resume gap-fill must absorb.
    chaos::maybeAbortBeforeFlush();
    // Drain the pending batch under storeMu_ (O(batch), so workers
    // streaming episodes never queue behind disk or an O(store) copy),
    // then merge + write under the separate I/O mutex. A version stamp
    // drops stale batches when two flushes race: the loser's records are
    // already merged into storeRecords_, so the winning (newer) write --
    // and every later one -- carries them; the file on disk only moves
    // forward.
    std::vector<JsonRecord> batch;
    std::uint64_t version = 0;
    {
        std::lock_guard<std::mutex> lock(storeMu_);
        batch.swap(pendingRecords_);
        version = ++storeVersion_;
    }
    std::lock_guard<std::mutex> io(storeIoMu_);
    StoreBackend* be = ensureBackendLocked();
    if (!be)
        return; // future-schema store disabled the path under io race
    for (const JsonRecord& rec : batch)
        storeRecords_[rec.name] = rec;
    // Records minted on the I/O path since the last flush (ledger meta,
    // claimed leases) are already merged into storeRecords_ but still
    // owe the disk a frame when the backend appends.
    if (!pendingIo_.empty()) {
        batch.insert(batch.end(),
                     std::make_move_iterator(pendingIo_.begin()),
                     std::make_move_iterator(pendingIo_.end()));
        pendingIo_.clear();
    }
    const bool renewing = opt_.leaseSeconds > 0.0 && !activeLeases_.empty();
    // Skip the write only when a newer flush already reached disk AND we
    // merged nothing new AND no lease needs its renewal timestamp: a
    // racing newer flush can win the I/O mutex before our batch is
    // merged, so its file does not contain our records -- returning then
    // would strand this batch in memory past the at-most-one-flush-batch
    // kill-durability guarantee.
    if (version <= storeWritten_ && batch.empty() && !renewing)
        return;
    {
        // Always (re)stamp the current schema: merging into an older
        // (v2) store upgrades it -- old records stay valid, new episode
        // records carry the optional v3 fields. Setting it before the
        // shard disk-merge below means a concurrent shard's older stamp
        // never wins (emplace keeps ours). Appending backends publish it
        // once per process (merge-on-read keeps the newest copy).
        JsonRecord schema;
        schema.name = kSweepStoreSchemaRecord;
        schema.numbers.emplace_back("schema", kSweepStoreSchema);
        if (!schemaStamped_) {
            batch.push_back(schema);
            schemaStamped_ = true;
        }
        storeRecords_[kSweepStoreSchemaRecord] = std::move(schema);
    }
    // Sharded/elastic campaigns on a *rewriting* backend: other processes
    // rewrite the same file, so the read-merge-rename must be atomic
    // across processes too. The flock on a sidecar serializes writers (a
    // kill while holding it is harmless -- an flock dies with its
    // process) and the re-read carries their records forward; ours win
    // per key except leases, where the higher generation wins (a steal
    // must stick). A single static process skips both: its in-memory
    // view is already a superset of the disk. Appending backends skip
    // all of it unconditionally -- every writer owns its own log, so the
    // data path takes no lock and no disk re-merge (merge happens on
    // read); the store flock is left to guard only lease claims.
    int lockFd = -1;
    if (be->rewritesWholeStore() &&
        (opt_.shardCount > 1 || opt_.leaseSeconds > 0.0)) {
        const std::string lockPath = be->lockPath();
        lockFd = io::openRetry(lockPath.c_str(), O_CREAT | O_RDWR, 0644);
        if (lockFd < 0 || !io::flockRetry(lockFd, LOCK_EX)) {
            // Proceeding unlocked risks two shards' read-merge-rename
            // interleaving (last writer drops the other's batch); there
            // is no safe fallback, so at least say it happened.
            std::fprintf(stderr,
                         "[sweep] warning: cannot lock %s; concurrent "
                         "shard flushes may drop each other's records\n",
                         lockPath.c_str());
        }
        std::vector<JsonRecord> disk;
        StoreLoadInfo sal;
        if (be->load(disk, &sal, /*quarantineBadTails=*/false)) {
            if (sal.salvaged)
                std::fprintf(stderr,
                             "[sweep] store %s torn on disk: merged the "
                             "%zu-record parseable prefix (%llu of %llu "
                             "bytes); this flush heals it\n",
                             opt_.storePath.c_str(), disk.size(),
                             static_cast<unsigned long long>(sal.goodBytes),
                             static_cast<unsigned long long>(
                                 sal.totalBytes));
            for (JsonRecord& rec : disk)
                mergeDiskRecordLocked(std::move(rec));
        }
    }
    io::FdCloser closeLock(lockFd); // releases the flock, even on throw
    if (renewing) {
        chaos::maybeDelayRenewal(); // chaos: straggler going stale
        renewLeasesLocked(wallSeconds(), batch);
    }
    std::string error;
    if (!persistLocked(batch, &error)) {
        // Loud terminal failure: the records are retained in
        // storeRecords_, but disk no longer keeps up -- continuing would
        // silently void the crash-durability contract (and, in lease
        // mode, our renewals). The throw propagates through the episode
        // worker's error capture and fails the campaign.
        throw std::runtime_error(
            "cannot write result store " + opt_.storePath + ": " + error +
            " -- campaign aborted; completed episodes up to the last "
            "successful flush are on disk and --resume re-runs the rest");
    }
    storeWritten_ = std::max(storeWritten_, version);
    if (chaos::shouldTearWrite()) {
        // Chaos injection point: truncate the just-written data file to a
        // random fraction, simulating a torn write landing on disk. For
        // the json backend that is the store file itself; for binlog it
        // is this process's own append log (the peers' logs are separate
        // files a tear cannot reach). The in-memory view is intact, so a
        // later flush heals it -- json by rewriting, binlog via the
        // writer's checkTail resync; readers in between (peers' claims, a
        // post-kill resume) must salvage the parseable prefix.
        const std::string tearPath = be->lastDataFile();
        const int fd = tearPath.empty()
                           ? -1
                           : io::openRetry(tearPath.c_str(), O_RDWR);
        if (fd >= 0) {
            io::FdCloser closeStore(fd);
            const off_t size = ::lseek(fd, 0, SEEK_END);
            const off_t keep =
                static_cast<off_t>(static_cast<double>(size) *
                                   chaos::tearKeepFraction());
            if (size > 0 && ::ftruncate(fd, keep) == 0)
                std::fprintf(stderr,
                             "[chaos] tore store %s to %lld of %lld "
                             "bytes\n",
                             tearPath.c_str(),
                             static_cast<long long>(keep),
                             static_cast<long long>(size));
        }
        storeWritten_ = 0; // force the next flush to write (heal)
    }
}

void
SweepRunner::mergeDiskRecordLocked(JsonRecord&& rec)
{
    if (sweepLeaseFingerprint(rec.name)) {
        const auto it = storeRecords_.find(rec.name);
        // Higher lease generation wins regardless of which side holds it
        // in memory: a steal recorded on disk must never be resurrected
        // by the victim's next rewrite. Ties keep ours (our renewal
        // timestamp is at least as fresh).
        if (it == storeRecords_.end())
            storeRecords_.emplace(rec.name, std::move(rec));
        else if (rec.number("gen") > it->second.number("gen"))
            it->second = std::move(rec);
        return;
    }
    std::string name = rec.name;
    storeRecords_.emplace(std::move(name), std::move(rec));
}

StoreBackend*
SweepRunner::ensureBackendLocked()
{
    if (!store_ && !opt_.storePath.empty()) {
        std::string note;
        store_ = openStoreBackend(opt_.storePath, opt_.storeFormat,
                                  workerId_, &note);
        if (!note.empty())
            std::fprintf(stderr, "[sweep] %s\n", note.c_str());
    }
    return store_.get();
}

bool
SweepRunner::persistLocked(const std::vector<JsonRecord>& batch,
                           std::string* error)
{
    // Bounded backoff over the whole backend flush (json: tmp-write +
    // rename; binlog: framed append + fsync-equivalent): a transient
    // ENOSPC/EIO (log rotation racing us, NFS blip) resolves within the
    // retry budget; a real full disk does not, and the caller escalates.
    // Both backends roll back a failed flush, so a retry starts clean.
    std::string err;
    for (int attempt = 0; attempt < io::kRetryAttempts; ++attempt) {
        if (attempt > 0) {
            std::fprintf(stderr,
                         "[sweep] store write failed (%s); retry %d/%d\n",
                         err.c_str(), attempt, io::kRetryAttempts - 1);
            io::sleepMs(io::kRetryBaseMs << (attempt - 1));
        }
        if (store_->flush(storeRecords_, batch, &err))
            return true;
    }
    if (error)
        *error = err;
    return false;
}

void
SweepRunner::renewLeasesLocked(double now, std::vector<JsonRecord>& batch)
{
    for (auto it = activeLeases_.begin(); it != activeLeases_.end();) {
        const std::string key = sweepLeaseKey(it->first);
        const auto rit = storeRecords_.find(key);
        if (rit != storeRecords_.end() &&
            (rit->second.text("owner") != workerId_ ||
             static_cast<std::uint64_t>(rit->second.number("gen")) !=
                 it->second.gen)) {
            // Stolen from us: we went stale (straggler, paused, clock
            // skew) and a peer claimed the ledger. Keep running --
            // episodes are deterministic, so the flush merge is
            // idempotent -- but stop renewing the lost lease.
            std::fprintf(stderr,
                         "[sweep] lease on %s lost to %s; continuing "
                         "(duplicate episodes merge idempotently)\n",
                         it->first.c_str(),
                         rit->second.text("owner").c_str());
            it = activeLeases_.erase(it);
            continue;
        }
        JsonRecord lr;
        lr.name = key;
        lr.strings.emplace_back("owner", workerId_);
        lr.numbers.emplace_back("gen",
                                static_cast<double>(it->second.gen));
        lr.numbers.emplace_back("renewedAt", now);
        lr.numbers.emplace_back("done", it->second.done ? 1.0 : 0.0);
        batch.push_back(lr); // appending backends owe the disk a frame
        storeRecords_[key] = std::move(lr);
        ++it;
    }
}

void
SweepRunner::gapFillFromStore(WorkUnit& unit)
{
    // Caller holds storeIoMu_; ledger + progress live under storeMu_.
    // The io -> mu nesting is safe: no path acquires storeIoMu_ while
    // holding storeMu_ (flushStore releases storeMu_ first).
    std::lock_guard<std::mutex> lock(storeMu_);
    Ledger& led = *unit.led;
    long long seeded = 0;
    for (int idx = 0; idx < unit.need; ++idx) {
        if (led.have[static_cast<std::size_t>(idx)])
            continue;
        const auto rit =
            storeRecords_.find(sweepEpisodeKey(unit.fingerprint, idx));
        if (rit == storeRecords_.end())
            continue;
        EpisodeRecord er;
        if (!episodeFromRecord(rit->second, er))
            continue;
        led.eps[static_cast<std::size_t>(idx)] = er;
        led.have[static_cast<std::size_t>(idx)] = 1;
        ++seeded;
    }
    if (seeded > 0)
        progressTotal_ -= seeded; // a peer already ran these
    unit.runs.clear();
    for (int k = 0; k < unit.need;) {
        if (led.have[static_cast<std::size_t>(k)]) {
            ++k;
            continue;
        }
        const int start = k;
        while (k < unit.need && !led.have[static_cast<std::size_t>(k)])
            ++k;
        unit.runs.emplace_back(start, k - start);
    }
}

SweepRunner::WorkUnit*
SweepRunner::claimNext(std::vector<WorkUnit*>& pending)
{
    // One locked scan: refresh the store view, fold peers' progress into
    // every pending unit (finalizing ledgers they completed), then claim
    // the stalest claimable ledger by writing a generation-bumped lease.
    // Both backends share the `<store>.lock` sidecar (computed literally
    // here: the flock is taken before storeIoMu_, so the lazily-opened
    // backend cannot be consulted yet). For binlog stores this flock
    // guards *only* claims -- the data path appends lock-free.
    const std::string lockPath = opt_.storePath + ".lock";
    const int lockFd = io::openRetry(lockPath.c_str(), O_CREAT | O_RDWR,
                                     0644);
    io::FdCloser closeLock(lockFd);
    if (lockFd < 0 || !io::flockRetry(lockFd, LOCK_EX))
        std::fprintf(stderr,
                     "[sweep] warning: cannot lock %s; lease claims may "
                     "race\n",
                     lockPath.c_str());
    std::lock_guard<std::mutex> io(storeIoMu_);
    StoreBackend* be = ensureBackendLocked();
    if (be) {
        std::vector<JsonRecord> disk;
        StoreLoadInfo sal;
        // No quarantine on the claim path: scans are frequent and a torn
        // log's owner heals its own tail on its next append.
        if (be->load(disk, &sal, /*quarantineBadTails=*/false)) {
            if (sal.salvaged)
                std::fprintf(stderr,
                             "[sweep] store %s torn on disk: claim scan "
                             "salvaged %zu records (%llu of %llu bytes)\n",
                             opt_.storePath.c_str(), disk.size(),
                             static_cast<unsigned long long>(sal.goodBytes),
                             static_cast<unsigned long long>(
                                 sal.totalBytes));
            for (JsonRecord& rec : disk)
                mergeDiskRecordLocked(std::move(rec));
        }
    }
    for (auto it = pending.begin(); it != pending.end();) {
        gapFillFromStore(**it);
        if ((*it)->runs.empty()) {
            // A peer completed this ledger; its episodes are all local
            // now, so the fold is the full bit-identical prefix.
            finalizeGroup((*it)->fingerprint, (*it)->members, (*it)->owner,
                          /*executedNow=*/false, /*skipped=*/false);
            {
                std::lock_guard<std::mutex> lock(storeMu_);
                ++unitsDone_;
            }
            it = pending.erase(it);
        } else {
            ++it;
        }
    }
    const double now = wallSeconds();
    WorkUnit* best = nullptr;
    double bestRenewed = 0.0;
    for (WorkUnit* u : pending) {
        double renewed = -1.0; // never leased: maximally stale
        bool claimable = true;
        const auto rit = storeRecords_.find(sweepLeaseKey(u->fingerprint));
        if (rit != storeRecords_.end()) {
            const std::string owner = rit->second.text("owner");
            const bool done = rit->second.number("done") != 0.0;
            renewed = rit->second.number("renewedAt");
            const bool expired = now - renewed > opt_.leaseSeconds;
            if (expired && !done && !owner.empty() && owner != workerId_) {
                // Telemetry: count each foreign lease generation's
                // expiry once, however many scans observe it.
                auto& maxGen = expiredSeen_[u->fingerprint];
                const auto gen =
                    static_cast<std::uint64_t>(rit->second.number("gen"));
                if (gen > maxGen) {
                    maxGen = gen;
                    ++leasesExpired_;
                }
            }
            claimable = done || owner == workerId_ || expired;
        }
        if (claimable && (!best || renewed < bestRenewed)) {
            best = u;
            bestRenewed = renewed;
        }
    }
    if (!best)
        return nullptr; // everything left is live-leased by peers
    std::uint64_t gen = 1;
    const auto rit = storeRecords_.find(sweepLeaseKey(best->fingerprint));
    if (rit != storeRecords_.end()) {
        gen = static_cast<std::uint64_t>(rit->second.number("gen")) + 1;
        const std::string owner = rit->second.text("owner");
        if (!owner.empty() && owner != workerId_ &&
            rit->second.number("done") == 0.0) {
            ++leasesStolen_;
            std::fprintf(stderr,
                         "[sweep] stealing lease on %s from %s (stale "
                         "%.1fs > lease %.1fs)\n",
                         best->fingerprint.c_str(), owner.c_str(),
                         now - rit->second.number("renewedAt"),
                         opt_.leaseSeconds);
        }
    }
    activeLeases_[best->fingerprint] = ActiveLease{gen, false};
    JsonRecord lr;
    lr.name = sweepLeaseKey(best->fingerprint);
    lr.strings.emplace_back("owner", workerId_);
    lr.numbers.emplace_back("gen", static_cast<double>(gen));
    lr.numbers.emplace_back("renewedAt", now);
    lr.numbers.emplace_back("done", 0.0);
    // The claim must hit the disk before the flock drops (that ordering
    // IS the mutual exclusion); appending backends write just this one
    // lease frame, rewriting ones the merged view containing it.
    std::vector<JsonRecord> claimBatch;
    claimBatch.push_back(lr);
    storeRecords_[lr.name] = std::move(lr);
    std::string error;
    if (!persistLocked(claimBatch, &error))
        throw std::runtime_error(
            "cannot write result store " + opt_.storePath +
            " while claiming a lease: " + error + " -- campaign aborted");
    return best;
}

void
SweepRunner::runElastic(std::vector<WorkUnit>& units)
{
    std::vector<WorkUnit*> pending;
    pending.reserve(units.size());
    for (WorkUnit& u : units)
        pending.push_back(&u);
    // Poll cadence when everything left is live-leased by peers: a
    // quarter lease bounds the steal latency to well within one lease
    // period without hammering the store.
    const int pollMs = std::max(
        50, std::min(1000, static_cast<int>(opt_.leaseSeconds * 250.0)));
    while (!pending.empty()) {
        WorkUnit* unit = claimNext(pending);
        if (!unit) {
            io::sleepMs(pollMs);
            continue;
        }
        pending.erase(std::find(pending.begin(), pending.end(), unit));
        const SweepCell& c = cells_[unit->owner].cell;
        EmbodiedSystem* proto = prototypeFor(c.platform);
        // Units run one at a time per process (processes are the elastic
        // scale-out unit), so the serial prepare() here satisfies the
        // per-width weight-freeze constraint; the thread budget fans out
        // within the unit via the episode-parallel engine.
        proto->prepare(c.cfg);
        proto->setEvalThreads(opt_.threads);
        proto->setBatchedInference(opt_.batched);
        runUnit(*unit, *proto);
        std::lock_guard<std::mutex> io(storeIoMu_);
        activeLeases_.erase(unit->fingerprint);
    }
}

void
SweepRunner::runConnected(std::vector<WorkUnit>& units)
{
    std::string host;
    int port = 0;
    parseHostPort(opt_.connect, host, port); // validated at construction

    CoordClient client;
    // The reconnect budget doubles as the coordinator-restart budget:
    // connectRetry's backoff (capped at 2 s per sleep) spans ~30 s over
    // 20 attempts, comfortably past a kill -9 + restart-from-salvage.
    constexpr int kConnectAttempts = 20;

    // Everything after hello is idempotent, so a (re)connect just
    // replays the declarations: ledger meta (the coordinator stores it
    // exactly as a local campaign would) + the episode need per unit.
    const auto declareAll = [&]() -> bool {
        std::vector<JsonRecord> decl;
        decl.reserve(units.size() * 2);
        for (const WorkUnit& u : units) {
            const SweepCell& oc = cells_[u.owner].cell;
            JsonRecord meta;
            meta.name = u.fingerprint;
            meta.strings.emplace_back("platform", oc.platform);
            meta.strings.emplace_back("label", oc.label);
            meta.numbers.emplace_back("task", oc.taskId);
            meta.numbers.emplace_back("seed0",
                                      static_cast<double>(oc.seed0));
            decl.push_back(std::move(meta));
            JsonRecord need = coordwire::control("need");
            need.strings.emplace_back("fp", u.fingerprint);
            need.numbers.emplace_back("need", u.need);
            decl.push_back(std::move(need));
        }
        std::string err;
        return client.send(decl, &err);
    };
    const auto reconnect = [&]() {
        std::string err;
        if (!client.connect(host, port, workerId_, kConnectAttempts,
                            &err) ||
            !declareAll())
            throw std::runtime_error(
                "cannot reach coordinator " + opt_.connect + ": " + err);
    };
    reconnect();

    // Per-unit bookkeeping: which units this worker actually ran
    // episodes for (their owner cells report Executed, the rest Sliced/
    // Resumed), keyed by fingerprint.
    std::map<std::string, WorkUnit*> byFp;
    std::map<std::string, bool> ranAny;
    for (WorkUnit& u : units)
        byFp[u.fingerprint] = &u;

    // Units run one range at a time in-process (the coordinator is the
    // scale-out), so the serial prepare() per fingerprint switch
    // satisfies the per-width weight-freeze constraint; the thread
    // budget fans out within the range via the episode engine.
    std::string preparedFp;
    for (;;) {
        JsonRecord rec;
        std::string err;
        if (!client.send(coordwire::control("req"), &err) ||
            !client.recv(rec, &err)) {
            std::fprintf(stderr,
                         "[sweep] coordinator connection lost (%s); "
                         "reconnecting\n",
                         err.c_str());
            reconnect();
            preparedFp.clear(); // replays are cheap; state is unknown
            continue;
        }
        std::string verb;
        if (!coordwire::isControl(rec, &verb))
            continue; // data frames are only expected during fetch
        if (verb == "fin")
            break;
        if (verb == "wait") {
            io::sleepMs(std::max(
                50, static_cast<int>(rec.number("ms", 250.0))));
            continue;
        }
        if (verb != "range")
            continue;
        const std::string fp = rec.text("fp");
        const int start = static_cast<int>(rec.number("start"));
        const int count = static_cast<int>(rec.number("count"));
        const auto uit = byFp.find(fp);
        if (uit == byFp.end() || count < 1) {
            // A fingerprint we never declared (mixed campaign with a
            // differently-scoped fleet): let the assignment time out
            // and land on a worker that can run it.
            std::fprintf(stderr,
                         "[sweep] dispatched unknown ledger %s; "
                         "ignoring\n",
                         fp.c_str());
            io::sleepMs(250);
            continue;
        }
        WorkUnit& unit = *uit->second;
        const SweepCell& c = cells_[unit.owner].cell;
        EmbodiedSystem* proto = prototypeFor(c.platform);
        if (preparedFp != fp) {
            proto->prepare(c.cfg);
            proto->setEvalThreads(opt_.threads);
            proto->setBatchedInference(opt_.batched);
            preparedFp = fp;
        }
        CoordSink sink(*this, unit.fingerprint, *unit.led,
                       proto->energyModel(), client);
        sink.base = start;
        proto->runEpisodes(c.taskId, c.cfg, count,
                           c.seed0 + static_cast<std::uint64_t>(start),
                           &sink);
        ranAny[fp] = true;
        // Land the range: the unsent tail (or, after a mid-range send
        // failure, the whole range again) followed by the completion
        // mark. Retried wholesale on failure -- duplicates merge
        // idempotently on the coordinator.
        JsonRecord done = coordwire::control("done");
        done.strings.emplace_back("fp", fp);
        done.numbers.emplace_back("start", start);
        done.numbers.emplace_back("count", count);
        for (;;) {
            std::vector<JsonRecord> out =
                sink.broken ? sink.records : sink.unsent();
            out.push_back(done);
            if (client.connected() && client.send(out, &err))
                break;
            std::fprintf(stderr,
                         "[sweep] range %s [%d, %d) did not land (%s); "
                         "reconnecting to re-send\n",
                         fp.c_str(), start, start + count, err.c_str());
            reconnect();
            preparedFp.clear();
            sink.broken = true; // everything must go again
        }
        if (opt_.verbose)
            std::fprintf(stderr, "[sweep] range %s [%d, %d) done\n",
                         fp.c_str(), start, start + count);
    }

    // Fetch phase: episodes peers ran are pulled back over the wire so
    // every cell's fold is the full bit-identical prefix.
    for (WorkUnit& u : units) {
        bool missing = false;
        {
            std::lock_guard<std::mutex> lock(storeMu_);
            missing = u.led->prefixLen(u.need) < u.need;
        }
        for (int attempt = 0; missing; ++attempt) {
            JsonRecord req = coordwire::control("fetch");
            req.strings.emplace_back("fp", u.fingerprint);
            req.numbers.emplace_back("need", u.need);
            std::string err;
            bool ok = client.connected() && client.send(req, &err);
            while (ok) {
                JsonRecord rec;
                if (!client.recv(rec, &err)) {
                    ok = false;
                    break;
                }
                std::string verb;
                if (coordwire::isControl(rec, &verb)) {
                    if (verb == "fetched")
                        break;
                    continue;
                }
                std::string fp;
                const int idx = sweepEpisodeIndex(rec.name, &fp);
                EpisodeRecord er;
                if (idx < 0 || fp != u.fingerprint || idx >= u.need ||
                    !episodeFromRecord(rec, er))
                    continue;
                std::lock_guard<std::mutex> lock(storeMu_);
                if (!u.led->have[static_cast<std::size_t>(idx)]) {
                    u.led->eps[static_cast<std::size_t>(idx)] = er;
                    u.led->have[static_cast<std::size_t>(idx)] = 1;
                }
            }
            if (ok) {
                std::lock_guard<std::mutex> lock(storeMu_);
                missing = u.led->prefixLen(u.need) < u.need;
                if (missing && attempt >= io::kRetryAttempts)
                    throw std::runtime_error(
                        "coordinator reported " + u.fingerprint +
                        " complete but episodes are missing after fetch");
                if (missing)
                    io::sleepMs(io::kRetryBaseMs << attempt);
            } else {
                if (attempt >= io::kRetryAttempts)
                    throw std::runtime_error(
                        "cannot fetch " + u.fingerprint +
                        " from coordinator " + opt_.connect + ": " + err);
                reconnect();
            }
        }
        finalizeGroup(u.fingerprint, u.members, u.owner,
                      /*executedNow=*/ranAny.count(u.fingerprint) > 0,
                      /*skipped=*/false);
        if (opt_.progress)
            progressLine();
    }
    client.close();
}

void
SweepRunner::progressLine()
{
    long long done = 0, total = 0, succ = 0;
    std::size_t unitsDone = 0, unitsTotal = 0;
    double elapsed = 0.0;
    std::vector<double> wall;
    std::uint64_t flips = 0;
    {
        std::lock_guard<std::mutex> lock(storeMu_);
        done = progressDone_;
        total = progressTotal_;
        succ = progressSucc_;
        unitsDone = unitsDone_;
        unitsTotal = unitsTotal_;
        elapsed = nowSeconds() - progressStart_;
        wall = progressWall_; // bounded window, cheap copy
        flips = progressFlips_;
    }
    // Division audit: every ratio below is guarded against its zero
    // denominator. The first flush can land within the same steady-clock
    // tick as run()'s start (elapsed == 0.0 exactly), so eps/s reports
    // 0.0 and the ETA falls through to "?" (or "0s" when already done)
    // instead of dividing by a zero rate; success%, flips/ep, and p95
    // are likewise gated on done > 0 / a non-empty sample window.
    const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed
                                      : 0.0;
    char eta[32];
    if (rate > 0.0 && done < total)
        std::snprintf(eta, sizeof(eta), "%.0fs",
                      static_cast<double>(total - done) / rate);
    else
        std::snprintf(eta, sizeof(eta), "%s", done >= total ? "0s" : "?");
    // Live observability from the metrics registry: p95 episode time over
    // the recent-episode window and mean injected flips per episode
    // (absent when the registry is disabled).
    char live[64] = "";
    if (!wall.empty() && done > 0) {
        const double p95 = percentile(wall, 95.0);
        std::snprintf(live, sizeof(live), ", p95 %.0fms, flips/ep %.1f",
                      p95,
                      static_cast<double>(flips) /
                          static_cast<double>(done));
    }
    // GEMM-fusion health of the batched inference path (absent when the
    // episode fan-out or batching never engaged this campaign).
    const BatchStats bs = batchStats();
    char batch[64] = "";
    if (bs.requests > 0)
        std::snprintf(batch, sizeof(batch),
                      ", batch avg %.2f fill %.0f%%", bs.avgBatch(),
                      100.0 * bs.fillRate());
    // Lease telemetry (elastic mode only): ledgers taken over from dead
    // or stale workers, and foreign lease expiries observed.
    char lease[48] = "";
    if (opt_.leaseSeconds > 0.0)
        std::snprintf(lease, sizeof(lease), ", stolen=%lld expired=%lld",
                      leasesStolen_.load(), leasesExpired_.load());
    std::fprintf(stderr,
                 "[sweep] progress: ledgers %zu/%zu, episodes %lld/%lld, "
                 "%.1f eps/s, success %.1f%%%s%s%s, eta %s\n",
                 unitsDone, unitsTotal, done, total, rate,
                 done > 0 ? 100.0 * static_cast<double>(succ) /
                                static_cast<double>(done)
                          : 0.0,
                 live, batch, lease, eta);
}

BatchStats
SweepRunner::batchStats() const
{
    // Prototypes and replicas each own (at most) one ParallelEvaluator
    // whose queue accumulates counters across runs; summing both maps
    // covers every system a campaign can have run episodes on. The maps
    // only change between bucket waves (never while their workers run),
    // and the per-queue counter reads are mutex-guarded.
    BatchStats s;
    for (const auto& [name, proto] : prototypes_)
        s += proto->batchStats();
    for (const auto& [name, reps] : replicas_)
        for (const auto& r : reps)
            s += r->batchStats();
    return s;
}

void
SweepRunner::run()
{
    if (!ran_) {
        if (opt_.resume && opt_.storePath.empty())
            std::fprintf(stderr, "[sweep] --resume without a result store "
                                 "(--out) has no effect\n");
        if (opt_.shardCount > 1 && opt_.storePath.empty())
            std::fprintf(stderr,
                         "[sweep] --shard without a result store (--out) "
                         "computes results other processes cannot see\n");
        if (opt_.leaseSeconds > 0.0 && opt_.storePath.empty())
            std::fprintf(stderr,
                         "[sweep] --lease without a result store (--out) "
                         "has no shared state to lease; running "
                         "statically\n");
    }

    // Load the store on every run() call: campaigns can be phased (add()
    // more cells after a run, run again: only the new work executes).
    // Existing records are preserved through flushes even without
    // --resume (two campaigns can share one store); --resume additionally
    // seeds the ledgers from them.
    std::map<std::string, std::map<int, EpisodeRecord>> storedEps;
    std::map<std::string, TaskStats> legacy;
    if (!opt_.storePath.empty())
        loadStore(storedEps, legacy);

    bool phaseHadWork = false;

    // Legacy v1 records satisfy whole cells read-only (stats without a
    // ledger) -- but only when the v2 ledger cannot already cover the
    // cell (episodes beat opaque aggregates).
    if (opt_.resume && !legacy.empty()) {
        for (std::size_t i = 0; i < cells_.size(); ++i) {
            CellState& st = cells_[i];
            if (st.primary != i || st.done)
                continue;
            const auto it = legacy.find(sweepFingerprintLegacyV1(st.cell));
            if (it == legacy.end())
                continue;
            const auto se = storedEps.find(st.fingerprint);
            if (se != storedEps.end()) {
                bool covered = true;
                for (int k = 0; k < st.cell.reps && covered; ++k)
                    covered = se->second.count(k) > 0;
                if (covered)
                    continue;
            }
            st.stats = it->second;
            st.source = CellSource::Resumed;
            st.done = true;
            phaseHadWork = true;
        }
    }

    // Group the pending primary cells by ledger fingerprint (submission
    // order); the group's episode budget is its deepest cell's reps.
    std::vector<std::string> order;
    std::map<std::string, WorkUnit> groups;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        CellState& st = cells_[i];
        if (st.primary != i || st.done)
            continue;
        auto [it, inserted] = groups.emplace(st.fingerprint, WorkUnit{});
        WorkUnit& u = it->second;
        if (inserted) {
            u.fingerprint = st.fingerprint;
            order.push_back(st.fingerprint);
        }
        u.members.push_back(i);
        if (st.cell.reps > u.need) {
            u.need = st.cell.reps;
            u.owner = i;
        }
    }

    // Seed each group's ledger from the store (prefixes, with holes from
    // a mid-flush kill allowed) and collect the episode ranges it still
    // needs. Fully-covered groups complete without executing anything.
    std::vector<WorkUnit> units;
    for (const std::string& fp : order) {
        WorkUnit u = std::move(groups.find(fp)->second);
        Ledger& led = ledgers_[fp];
        led.grow(u.need);
        const auto se = storedEps.find(fp);
        if (se != storedEps.end()) {
            for (const auto& [idx, rec] : se->second)
                if (idx < u.need && !led.have[static_cast<std::size_t>(idx)]) {
                    led.eps[static_cast<std::size_t>(idx)] = rec;
                    led.have[static_cast<std::size_t>(idx)] = 1;
                }
        }
        for (int k = 0; k < u.need;) {
            if (led.have[static_cast<std::size_t>(k)]) {
                ++k;
                continue;
            }
            const int start = k;
            while (k < u.need && !led.have[static_cast<std::size_t>(k)])
                ++k;
            u.runs.emplace_back(start, k - start);
        }
        u.led = &led;
        if (!opt_.storePath.empty()) {
            // Ledger meta record: lets tools (sweep-diff, progress
            // viewers) label a fingerprint without re-deriving it.
            const SweepCell& oc = cells_[u.owner].cell;
            JsonRecord meta;
            meta.name = fp;
            meta.strings.emplace_back("platform", oc.platform);
            meta.strings.emplace_back("label", oc.label);
            meta.numbers.emplace_back("task", oc.taskId);
            meta.numbers.emplace_back("seed0",
                                      static_cast<double>(oc.seed0));
            std::lock_guard<std::mutex> lock(storeIoMu_);
            pendingIo_.push_back(meta); // appended at the next flush
            storeRecords_[fp] = std::move(meta);
        }
        if (u.runs.empty()) {
            finalizeGroup(fp, u.members, u.owner, /*executedNow=*/false,
                          /*skipped=*/false);
            phaseHadWork = true;
        } else {
            units.push_back(std::move(u));
        }
    }

    // Distributed sharding: partition the pending-ledger list (ordered by
    // fingerprint, so every process derives the same partition from the
    // same store snapshot) and keep our share. Skipped ledgers complete
    // with whatever local prefix they have -- the shared store's union is
    // the campaign's real artifact.
    if (opt_.shardCount > 1 && !units.empty()) {
        std::sort(units.begin(), units.end(),
                  [](const WorkUnit& a, const WorkUnit& b) {
                      return a.fingerprint < b.fingerprint;
                  });
        std::vector<WorkUnit> mine;
        for (std::size_t k = 0; k < units.size(); ++k) {
            if (static_cast<int>(k % static_cast<std::size_t>(
                                         opt_.shardCount)) ==
                opt_.shardIndex) {
                mine.push_back(std::move(units[k]));
            } else {
                finalizeGroup(units[k].fingerprint, units[k].members,
                              units[k].owner, /*executedNow=*/false,
                              /*skipped=*/true);
                phaseHadWork = true;
            }
        }
        units = std::move(mine);
    }

    // Progress accounting for this run().
    {
        std::lock_guard<std::mutex> lock(storeMu_);
        progressTotal_ = 0;
        for (const WorkUnit& u : units)
            for (const auto& [start, count] : u.runs)
                progressTotal_ += count;
        progressDone_ = progressSucc_ = 0;
        unitsTotal_ = units.size();
        unitsDone_ = 0;
        progressStart_ = nowSeconds();
        progressWall_.clear();
        progressWallNext_ = 0;
        progressFlips_ = 0;
    }
    if (!units.empty())
        phaseHadWork = true;

    // Elastic lease mode: the pending list is not a partition but a
    // candidate pool -- claim, run, and re-scan until every ledger is
    // done (by us or a peer). Units run serially in-process with the
    // full thread budget fanned out inside each unit, so the per-width
    // freeze constraint the wave scheduler exists for cannot arise and
    // the wave/bucket path below is skipped entirely.
    const bool elasticRun = opt_.leaseSeconds > 0.0 && !opt_.storePath.empty();
    if (elasticRun)
        runElastic(units);

    // Connected (coordinator) mode: the pending list is a candidate
    // pool the coordinator carves into episode ranges across the whole
    // fleet. Ranges run serially in-process (full thread budget inside
    // each range), so the wave scheduler is skipped here too.
    const bool connectedRun = !opt_.connect.empty();
    if (connectedRun && !units.empty())
        runConnected(units);

    // Waves: freezing quantized weights is per-width state on the shared
    // model set, so ledgers of one platform at different QuantBits must
    // not run concurrently. Bucket pending units by (platform, bits) in
    // first-appearance order and run the buckets sequentially.
    std::vector<std::pair<std::string, std::vector<std::size_t>>> buckets;
    for (std::size_t k = 0; !elasticRun && !connectedRun && k < units.size();
         ++k) {
        const SweepCell& c = cells_[units[k].owner].cell;
        const std::string key =
            c.platform + (c.cfg.bits == QuantBits::Int8 ? "|8" : "|4");
        auto it = std::find_if(buckets.begin(), buckets.end(),
                               [&](const auto& b) { return b.first == key; });
        if (it == buckets.end()) {
            buckets.push_back({key, {}});
            it = buckets.end() - 1;
        }
        it->second.push_back(k);
    }

    for (auto& [key, bucketUnits] : buckets) {
        const std::string& platform =
            cells_[units[bucketUnits.front()].owner].cell.platform;
        EmbodiedSystem* proto = prototypeFor(platform);
        // Serial warm point: build lazy models (rotated planner, entropy
        // predictor) and freeze every layer at this bucket's width before
        // any fan-out, so workers only read shared model state.
        for (const std::size_t k : bucketUnits)
            proto->prepare(cells_[units[k].owner].cell.cfg);

        const int cellWorkers = std::max(
            1, std::min<int>(opt_.threads,
                             static_cast<int>(bucketUnits.size())));
        // Leftover thread budget fans out within ledgers via the existing
        // episode-parallel engine (a one-ledger campaign still scales).
        const int episodeThreads = std::max(1, opt_.threads / cellWorkers);

        if (cellWorkers == 1) {
            proto->setEvalThreads(episodeThreads);
            proto->setBatchedInference(opt_.batched);
            for (const std::size_t k : bucketUnits)
                runUnit(units[k], *proto);
            continue;
        }

        auto& replicas = replicas_[platform];
        while (static_cast<int>(replicas.size()) < cellWorkers)
            replicas.push_back(proto->replicate());
        for (auto& r : replicas) {
            r->setEvalThreads(episodeThreads);
            r->setBatchedInference(opt_.batched);
        }

        std::atomic<std::size_t> cursor{0};
        std::string firstError;
        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(cellWorkers));
        for (int w = 0; w < cellWorkers; ++w) {
            workers.emplace_back([&, w] {
                try {
                    for (;;) {
                        const std::size_t i = cursor.fetch_add(1);
                        if (i >= bucketUnits.size())
                            return;
                        runUnit(units[bucketUnits[i]],
                                *replicas[static_cast<std::size_t>(w)]);
                    }
                } catch (const std::exception& e) {
                    std::lock_guard<std::mutex> lock(storeMu_);
                    if (firstError.empty())
                        firstError = e.what();
                }
            });
        }
        for (auto& w : workers)
            w.join();
        if (!firstError.empty())
            throw std::runtime_error("SweepRunner worker failed: " +
                                     firstError);
    }

    if (!opt_.storePath.empty())
        flushStore(); // include resumed/meta records so the store is whole

    // Recount from cell state (idempotent across phased runs).
    executed_ = memoized_ = resumed_ = sliced_ = skipped_ = 0;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const CellState& st = cells_[i];
        if (st.primary != i) {
            ++memoized_;
            continue;
        }
        if (!st.done)
            continue;
        switch (st.source) {
          case CellSource::Executed: ++executed_; break;
          case CellSource::Resumed: ++resumed_; break;
          case CellSource::Sliced: ++sliced_; break;
          case CellSource::Skipped: ++skipped_; break;
          case CellSource::Memoized: break; // primaries are never Memoized
        }
    }
    // Print the summary on the first run even when nothing was pending (a
    // fully-resumed campaign still reports executed=0); later phases only
    // report when they actually had work.
    if (!ran_ || phaseHadWork)
        std::printf("%s\n", summary().c_str());
    ran_ = true;
}

const std::vector<EpisodeResult>&
SweepRunner::episodes(std::size_t handle)
{
    CellState& st = cells_.at(cells_.at(handle).primary);
    if (!st.done)
        throw std::logic_error("SweepRunner::episodes before run()");
    if (st.hasEpisodes)
        return st.episodes;
    // The cell's prefix of the shared ledger, when present (executed,
    // sliced, or resumed from a v2 store).
    const int want = st.source == CellSource::Skipped ? st.stats.episodes
                                                      : st.cell.reps;
    const auto lit = ledgers_.find(st.fingerprint);
    if (lit != ledgers_.end() && lit->second.prefixLen(want) >= want) {
        st.episodes.reserve(static_cast<std::size_t>(want));
        for (int i = 0; i < want; ++i)
            st.episodes.push_back(
                lit->second.eps[static_cast<std::size_t>(i)].result);
    } else {
        // Legacy v1 resume: the store only held the aggregate. Re-derive
        // the per-episode results; execution is deterministic, so these
        // are exactly the episodes the stored stats came from.
        EmbodiedSystem* proto = prototypeFor(st.cell.platform);
        proto->prepare(st.cell.cfg);
        proto->setEvalThreads(opt_.threads);
        proto->setBatchedInference(opt_.batched);
        st.episodes = proto->runEpisodes(st.cell.taskId, st.cell.cfg,
                                         st.cell.reps, st.cell.seed0);
    }
    st.hasEpisodes = true;
    return st.episodes;
}

std::string
SweepRunner::summary() const
{
    char buf[256];
    int n = std::snprintf(
        buf, sizeof(buf),
        "[sweep] cells=%zu executed=%d memoized=%d resumed=%d sliced=%d "
        "eps=%lld",
        cells_.size(), executed_, memoized_, resumed_, sliced_,
        episodesExecuted_);
    if (opt_.shardCount > 1 && n > 0 &&
        n < static_cast<int>(sizeof(buf)))
        std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                      " shard=%d/%d skipped=%d", opt_.shardIndex,
                      opt_.shardCount, skipped_);
    else if (opt_.leaseSeconds > 0.0 && n > 0 &&
             n < static_cast<int>(sizeof(buf)))
        std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                      " lease=%gs stolen=%lld expired=%lld",
                      opt_.leaseSeconds, leasesStolen_.load(),
                      leasesExpired_.load());
    return buf;
}

} // namespace create
