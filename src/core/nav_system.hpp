#pragma once

/**
 * @file
 * NavSystem: the autonomous-navigation backend of the EmbodiedSystem
 * facade -- the third platform family of the cross-platform generality
 * study, structurally different from both the Minecraft and the tabletop
 * manipulation stacks (2.5D occupancy-grid flight with wind and battery
 * disturbances instead of crafting or grasping).
 *
 * Pairs the drone-scale mission planner stand-in ("navllama") with one
 * flight controller stand-in ("pathrt" or "swiftpilot") on NavWorld and
 * runs the same planner-decomposes / controller-executes episode the other
 * backends run, under the same CreateConfig deployment points: AD on both
 * models, WR on the planner, autonomy-adaptive VS on the controller via
 * the platform's entropy predictor.
 *
 * Energy is priced at the platform's paper-scale workloads (NavLLaMA
 * 1,087 GOps, PathRT 34 GOps, SwiftPilot 17 GOps per inference), keeping
 * Joule-level results at drone-flight-computer magnitudes.
 */

#include <memory>
#include <string>

#include "core/embodied_system.hpp"
#include "core/shared_models.hpp"
#include "models/platforms.hpp"

namespace create {

/** A planner+controller navigation platform pairing on NavWorld. */
class NavSystem : public EmbodiedSystem
{
  public:
    /**
     * @param plannerPlatform    "navllama"
     * @param controllerPlatform "pathrt" or "swiftpilot"
     */
    explicit NavSystem(std::string plannerPlatform = "navllama",
                       std::string controllerPlatform = "pathrt",
                       bool verbose = false);

    // --- EmbodiedSystem interface ----------------------------------------
    const char* platformName() const override { return label_.c_str(); }
    int numTasks() const override { return kNumNavTasks; }
    const char* taskName(int taskId) const override
    {
        return navTaskName(static_cast<NavTask>(taskId));
    }
    EpisodeResult runEpisode(int taskId, std::uint64_t seed,
                             const CreateConfig& cfg) override;
    std::unique_ptr<EmbodiedSystem> replicate() const override;
    const PaperEnergyModel& energyModel() const override { return energy_; }
    void prepare(const CreateConfig& cfg) override;

    // --- typed convenience API -------------------------------------------
    using EmbodiedSystem::evaluate;
    using EmbodiedSystem::runEpisodes;

    EpisodeResult runEpisode(NavTask task, std::uint64_t seed,
                             const CreateConfig& cfg)
    {
        return runEpisode(static_cast<int>(task), seed, cfg);
    }

    TaskStats evaluate(NavTask task, const CreateConfig& cfg, int reps,
                       std::uint64_t seed0 = kDefaultSeed0)
    {
        return evaluate(static_cast<int>(task), cfg, reps, seed0);
    }

    /** Planner access; builds the rotated variant lazily. */
    PlannerModel& planner(bool rotated);
    ControllerModel& controller() { return *shared_->controller; }
    /** Entropy predictor; trained/loaded lazily (only VS configs need it). */
    EntropyPredictor& predictor();

    const std::string& plannerPlatform() const { return plannerPlatform_; }
    const std::string& controllerPlatform() const
    {
        return controllerPlatform_;
    }

  private:
    /** Replica constructor: shares the frozen model set. */
    NavSystem(const NavSystem& prototype,
              std::shared_ptr<SharedModelSet> shared);

    std::string plannerPlatform_;
    std::string controllerPlatform_;
    std::string label_;
    bool verbose_;

    std::shared_ptr<SharedModelSet> shared_;
    PaperEnergyModel energy_;
};

} // namespace create
