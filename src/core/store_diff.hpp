#pragma once

/**
 * @file
 * Cell-by-fingerprint comparison of two SweepRunner result stores, so any
 * campaign becomes a regression gate: run the matrix twice (different
 * commit, thread count, shard split, machine), `sweep-diff a.json b.json`,
 * and a nonzero exit means the results drifted.
 *
 * Both store schemas load: a v2 episode-ledger store folds each
 * fingerprint's contiguous episode prefix through the same aggregate()
 * the engine uses (the per-episode records carry their energy, so no
 * platform model is needed), and a legacy v1 store contributes its
 * cell-level aggregates directly. Fingerprints are compared as opaque
 * keys -- v1 and v2 fingerprints of the same cell intentionally differ
 * (the v2 identity has no reps), so diffing across schema generations
 * reports the generation change instead of guessing an equivalence.
 */

#include <string>
#include <vector>

#include "agent/metrics.hpp"

namespace create {

/** One comparable cell of a store: a fingerprint and its folded stats. */
struct StoreCell
{
    std::string fingerprint;
    std::string platform; //!< from the ledger meta record, may be empty
    std::string label;    //!< from the ledger meta record, may be empty
    TaskStats stats;
    int episodes = 0;  //!< episodes folded (v2: contiguous prefix length)
    bool legacy = false; //!< v1 cell-level record (no episode ledger)
    /** The folded episode prefix itself (empty for legacy cells); the
     *  raw sample source for sweep-stats' percentile engine. */
    std::vector<EpisodeRecord> records;
    /** Summed observability counters over the prefix; only comparable
     *  when every prefix episode carried them (hasMetrics). */
    EpisodeMetrics metrics;
    bool hasMetrics = false;
    /**
     * Per-worker episode counts over the folded prefix (elastic lease
     * campaigns stamp each episode record with a `by` field naming the
     * worker that ran it; empty otherwise). Attribution only -- never
     * compared by diffStoreCells.
     */
    std::vector<std::pair<std::string, int>> episodeOwners;
    /** This ledger's lease record, when present (elastic campaigns).
     *  Scheduling state, not results: surfaced, never compared. */
    std::string leaseOwner;
    int leaseGen = 0;
    bool leaseDone = false;
};

/** Tolerances for stat comparisons: pass when
 *  |a-b| <= absTol + relTol * max(|a|, |b|). Defaults demand equality. */
struct StoreDiffOptions
{
    double absTol = 0.0;
    double relTol = 0.0;
};

/** One reported difference. */
struct StoreDiffEntry
{
    enum class Kind
    {
        OnlyInA,   //!< cell missing from store B
        OnlyInB,   //!< cell new in store B
        Episodes,  //!< episode/success counts differ
        Stat,      //!< a derived stat differs beyond tolerance
    };
    Kind kind;
    std::string fingerprint;
    std::string detail; //!< human-readable, e.g. "successRate 0.5 vs 0.25"
};

/** Full comparison result. */
struct StoreDiffResult
{
    std::vector<StoreDiffEntry> entries;
    int cellsA = 0;
    int cellsB = 0;
    int compared = 0; //!< fingerprints present in both stores

    bool clean() const { return entries.empty(); }
};

/**
 * Load a store into comparable cells (see file comment). A truncated or
 * corrupted store is salvaged: the longest parseable record prefix loads,
 * the unparseable tail is copied to `<path>.quarantine`, and a one-line
 * note goes to stderr. Returns false with `error` set only when the file
 * is missing or yields no parseable records at all.
 *
 * `workers` (optional) receives the store's `worker|<id>` telemetry
 * records (range-dispatch counters written by the campaign coordinator;
 * see common/store_keys.hpp). Pure observability: they never become
 * cells, so diffs ignore them either way.
 */
bool loadStoreCells(const std::string& path, std::vector<StoreCell>& out,
                    std::string& error,
                    std::vector<JsonRecord>* workers = nullptr);

/**
 * Compare two loaded stores cell-by-fingerprint. Entries are ordered:
 * changed cells first (fingerprint order), then cells only in A, then
 * cells only in B.
 */
StoreDiffResult diffStoreCells(const std::vector<StoreCell>& a,
                               const std::vector<StoreCell>& b,
                               const StoreDiffOptions& opt = {});

/** loadStoreCells + diffStoreCells; throws std::runtime_error on I/O. */
StoreDiffResult diffStores(const std::string& pathA,
                           const std::string& pathB,
                           const StoreDiffOptions& opt = {});

} // namespace create
