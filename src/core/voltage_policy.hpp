#pragma once

/**
 * @file
 * Autonomy-adaptive voltage scaling (paper Sec. 5.3, Figs. 11/21).
 *
 * EntropyVoltagePolicy maps the controller's (normalized) action-logit
 * entropy to an operating voltage: low entropy = critical step = robust
 * voltage; high entropy = non-critical step = aggressive undervolting.
 * Presets A-F mirror Fig. 21's searched policies; random candidates
 * support the 100-candidate policy search of Sec. 6.5.
 *
 * VoltageScaler is the runtime piece: every `interval` steps (default 5,
 * Sec. 6.5) it runs the entropy predictor at nominal voltage, maps the
 * prediction through the policy, and retunes the controller's context via
 * the slew-rate-limited digital LDO.
 */

#include "agent/agent.hpp"
#include "hw/ldo.hpp"
#include "models/entropy_predictor.hpp"

namespace create {

/** Piecewise-constant entropy -> voltage mapping. */
class EntropyVoltagePolicy
{
  public:
    /** Constant-nominal policy. */
    EntropyVoltagePolicy();

    /**
     * @param thresholds ascending normalized-entropy breakpoints in (0,1)
     * @param voltages   one voltage per bucket (thresholds.size()+1 values,
     *                   ordered from the low-entropy/critical bucket up)
     */
    EntropyVoltagePolicy(std::vector<double> thresholds,
                         std::vector<double> voltages, std::string name);

    /** Voltage for a normalized entropy in [0, 1]. */
    double voltageFor(double normalizedEntropy) const;

    const std::string& name() const { return name_; }
    const std::vector<double>& thresholds() const { return thresholds_; }
    const std::vector<double>& voltages() const { return voltages_; }

    /** Fixed-voltage policy (the paper's constant-voltage baseline). */
    static EntropyVoltagePolicy constant(double v);

    /** Fig. 21 presets; `which` in 'A'..'F'. */
    static EntropyVoltagePolicy preset(char which);
    static std::vector<EntropyVoltagePolicy> presets();

    /** Random candidate for the 100-candidate policy search. */
    static EntropyVoltagePolicy random(Rng& rng, int index);

  private:
    std::vector<double> thresholds_;
    std::vector<double> voltages_;
    std::string name_;
};

/** Per-step hook implementing predictor-driven LDO voltage scaling. */
class VoltageScaler : public AgentHooks
{
  public:
    /**
     * @param maxEntropy normalization constant; defaults to ln(#actions)
     *        (the paper's 13.07 for JARVIS-1's factored action space).
     */
    VoltageScaler(EntropyPredictor& predictor, EntropyVoltagePolicy policy,
                  int intervalSteps = 5, double maxEntropy = 0.0);

    void beforeController(const MineWorld& w, std::uint64_t step,
                          ComputeContext& controllerCtx,
                          EpisodeResult& r) override;

    DigitalLdo& ldo() { return ldo_; }
    const EntropyVoltagePolicy& policy() const { return policy_; }
    double lastPredictedEntropy() const { return lastEntropy_; }

  private:
    EntropyPredictor& predictor_;
    ComputeContext predictorCtx_; //!< clean, nominal-voltage context
    EntropyVoltagePolicy policy_;
    DigitalLdo ldo_;
    int interval_;
    double maxEntropy_;
    double lastEntropy_ = 0.0;
};

} // namespace create
