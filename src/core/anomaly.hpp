#pragma once

/**
 * @file
 * Anomaly detection & clearance utilities (paper Sec. 5.1).
 *
 * The AD mechanism itself lives in the hardware pipeline: calibrated
 * per-layer valid bounds in QuantGemmState, comparator+mux clamping in
 * faultyLinear / SystolicArray, toggled by ComputeContext::anomalyDetection.
 * This header adds model-level introspection so experiments can show how
 * bounds move (e.g. weight rotation tightening them, Sec. 6.6).
 */

#include "models/controller.hpp"
#include "models/planner.hpp"

namespace create {

/** Summary of calibrated AD bounds across a model's GEMM layers. */
struct AdBoundsSummary
{
    int layersCalibrated = 0;
    int layersTotal = 0;
    float minBound = 0.0f;
    float maxBound = 0.0f;
    double meanBound = 0.0;
};

/** Walk all planner GEMM layers and summarize their AD bounds. */
AdBoundsSummary plannerAdBounds(PlannerModel& m);

/** Walk all controller GEMM layers and summarize their AD bounds. */
AdBoundsSummary controllerAdBounds(ControllerModel& m);

} // namespace create
