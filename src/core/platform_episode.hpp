#pragma once

/**
 * @file
 * The shared plan-decode episode runner of the cross-platform backends.
 *
 * ManipSystem and NavSystem run the identical episode shape: the planner
 * decodes the whole mission once, then the controller executes each motion
 * subtask step by step, with the per-step CREATE hooks (AD via the
 * contexts, WR via the rotated planner, autonomy-adaptive VS via the
 * entropy predictor driving the LDO). Only the world/observation/action
 * types, the plan decoder, and the predictor prompt differ, so the loop
 * lives here once as a template and a fix to the episode semantics
 * reaches every platform family at the same time. (MineSystem keeps its
 * own loop: the Minecraft agent re-invokes the planner mid-episode.)
 *
 * A Traits type provides:
 *   World / Subtask / Action            episode types
 *   kNumActions, kStepCap               action vocabulary + step budget
 *   decodePlan(tokens)                  plan tokens -> subtask list
 *   prompt(subtask, obs, promptDim)     predictor prompt vector
 */

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/embodied_system.hpp"
#include "hw/ldo.hpp"
#include "models/controller.hpp"
#include "models/entropy_predictor.hpp"
#include "models/model_zoo.hpp"
#include "models/planner.hpp"

namespace create {

/** Per-episode RNG stream salts (distinct per platform family). */
struct EpisodeSalts
{
    std::uint64_t plannerCtx;
    std::uint64_t controllerCtx;
    std::uint64_t predictorCtx;
    std::uint64_t actionRng;
};

template <typename Traits>
EpisodeResult
runDecodedPlanEpisode(int taskId, std::uint64_t seed,
                      const CreateConfig& cfg, const EpisodeSalts& salts,
                      PlannerModel& planner, ControllerModel& controller,
                      EntropyPredictor* pred, IntGemmSink* gemmSink = nullptr)
{
    EpisodeResult r;
    typename Traits::World world(static_cast<typename Traits::Task>(taskId),
                                 seed);
    ComputeContext plannerCtx(seed ^ salts.plannerCtx);
    ComputeContext controllerCtx(seed ^ salts.controllerCtx);
    ComputeContext predictorCtx(seed ^ salts.predictorCtx);
    plannerCtx.domain = Domain::Planner;
    controllerCtx.domain = Domain::Controller;
    predictorCtx.domain = Domain::Predictor;
    // Cross-episode GEMM fusion (null = direct dispatch; bit-identical).
    plannerCtx.gemmSink = gemmSink;
    controllerCtx.gemmSink = gemmSink;
    predictorCtx.gemmSink = gemmSink;
    cfg.applyTo(plannerCtx, /*isPlanner=*/true);
    cfg.applyTo(controllerCtx, /*isPlanner=*/false);

    DigitalLdo ldo;
    if (pred) {
        // VS implies voltage-dependent errors on the controller.
        if (cfg.mode != InjectionMode::None && cfg.injectController)
            controllerCtx.setVoltageMode();
    }
    Rng actionRng(seed ^ salts.actionRng);

    const auto tokens = planner.inferPlan(taskId, 0, plannerCtx);
    ++r.plannerInvocations;
    const auto plan = Traits::decodePlan(tokens);
    const double maxH = std::log(static_cast<double>(Traits::kNumActions));
    int steps = 0;
    for (const auto st : plan) {
        world.setActiveSubtask(st);
        while (!world.subtaskComplete() && steps < Traits::kStepCap) {
            const auto obs = world.observe();
            // vsInterval <= 0 disables the predictor/LDO updates entirely,
            // matching VoltageScaler::beforeController on the Mine path
            // (and avoiding a modulo-by-zero).
            if (pred && cfg.vsInterval > 0 && steps % cfg.vsInterval == 0) {
                const double h = pred->infer(
                    world.renderImage(pred->config().imgRes),
                    Traits::prompt(st, obs, pred->config().promptDim),
                    predictorCtx);
                ++r.predictorInvocations;
                ldo.set(cfg.policy.voltageFor(
                    std::min(1.0, std::max(0.0, h / maxH))));
                controllerCtx.setVoltage(ldo.vout());
            }
            const auto logits = controller.inferLogits(
                static_cast<int>(st), obs.spatial, obs.state, controllerCtx);
            world.step(static_cast<typename Traits::Action>(
                sampleAction(logits, actionRng)));
            ++steps;
        }
        if (world.subtaskComplete())
            ++r.subtasksCompleted;
        if (steps >= Traits::kStepCap)
            break;
    }

    r.success = world.taskComplete();
    // Bill the controller steps that actually executed. A failed episode
    // whose decoded plan exhausted early used to bill the full kStepCap,
    // inflating PaperEnergyModel::controllerJ for unprotected low-voltage
    // cells (the Mine path always runs failures to the cap, so all three
    // families now agree on "steps = executed steps").
    r.steps = steps;
    const auto& pu = plannerCtx.meter.usage(Domain::Planner);
    const auto& cu = controllerCtx.meter.usage(Domain::Controller);
    if (pu.macs > 0.0)
        r.plannerV2Ratio = pu.v2WeightedMacs / pu.macs;
    if (cu.macs > 0.0)
        r.controllerV2Ratio = cu.v2WeightedMacs / cu.macs;
    r.plannerEffV = plannerCtx.meter.effectiveVoltage(Domain::Planner);
    r.controllerEffV =
        controllerCtx.meter.effectiveVoltage(Domain::Controller);
    r.bitFlips = pu.bitFlips + cu.bitFlips;
    r.anomaliesCleared = pu.anomaliesCleared + cu.anomaliesCleared;
    return r;
}

} // namespace create
