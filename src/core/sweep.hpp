#pragma once

/**
 * @file
 * SweepRunner: the declarative (task x config x reps) campaign engine the
 * figure drivers run on, with the per-episode ledger as its unit of
 * campaign state.
 *
 * Every paper figure is a sweep matrix -- the same evaluate() call over a
 * grid of deployment points -- and every driver used to hand-roll that
 * loop serially. SweepRunner replaces the loop:
 *
 *  - Drivers *declare* their matrix as SweepCells `{platform, taskId,
 *    CreateConfig, reps, seed0}` up front (add() returns a handle), call
 *    run() once, and render tables from stats(handle).
 *  - The unit of record is the episode, not the cell. Episodes are seeded
 *    seed0 + i, so a cell's identity is (platform, task, config, seed0)
 *    alone -- `reps` is just a prefix length. Cells sharing that identity
 *    share one *episode ledger*; a reps=120 ledger serves any reps<=120
 *    cell by slicing its prefix, and a reps=50 ledger partially seeds a
 *    reps=120 request, executing only episodes 50..119. TaskStats is a
 *    pure deterministic fold (aggregate()) over the ledger prefix, so
 *    sliced, resumed, and executed cells are all bit-identical.
 *  - Cell-level sharding: a shared worker pool drains the queue of
 *    pending ledgers; each worker owns bit-identical EmbodiedSystem
 *    replicas (frozen model set shared, see core/shared_models.hpp) and
 *    runs episodes through the existing engine, so every cell's stats are
 *    bit-identical to serial execution regardless of thread count. When
 *    ledgers are scarcer than workers the leftover budget fans out
 *    *within* a ledger via setEvalThreads (the ParallelEvaluator path).
 *  - Streaming result store: completed episodes flush to the JSON store
 *    in batches of Options::flushEvery (atomic tmp+rename writes that
 *    merge with the records already on disk), so a campaign killed
 *    mid-cell resumes from the surviving episode prefix instead of
 *    re-running the cell. Legacy cell-level (v1) stores are still read --
 *    served read-only for whole-cell resume, never merged into ledgers.
 *  - Distributed sharding: Options::shardIndex/shardCount partition the
 *    pending-ledger list (post-memoization, post-resume, ordered by
 *    fingerprint) so N processes sharing one --out store cover a
 *    campaign exactly once. Each flush re-merges with the store on disk,
 *    so concurrent shards union rather than clobber. The partition is
 *    computed from the pending list each process observes at startup:
 *    launch all shards against the same store snapshot (or none), not
 *    against each other's partial output.
 *  - Elastic lease mode (Options::leaseSeconds > 0): instead of a static
 *    partition, every process claims the stalest unclaimed/expired ledger
 *    under the store's cross-process flock, writing a per-fingerprint
 *    lease record ({owner host:pid, generation, renewedAt, done}) that it
 *    renews on every flush. A worker that dies (kill -9, OOM, chaos
 *    abort) simply stops renewing: within one lease period a survivor
 *    steals the ledger (generation bump) and gap-fills only the episode
 *    indices missing from the store -- the same exactly-once primitive
 *    --resume uses -- so the campaign completes with zero manual
 *    intervention and the final store is bit-identical to a serial run.
 *    A straggler whose lease is stolen keeps running; its flushes merge
 *    idempotently (episodes are deterministic) and it stops renewing the
 *    lost lease. Lease expiry compares wall clocks across machines, so
 *    hosts sharing a store should be NTP-synced with skew << the lease
 *    period.
 *
 * Scheduling constraint: freezing quantized weights is per-width state on
 * the shared model set, so cells of the same platform at different
 * QuantBits must not run concurrently. run() therefore executes in waves
 * of one (platform, bits) bucket each, pre-warming the bucket's configs
 * serially (prepare) before fanning its ledgers out.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/store_keys.hpp"
#include "core/embodied_system.hpp"
#include "core/store_backend.hpp"

namespace create {

/** One (platform, task, config, repetitions) point of a campaign. */
struct SweepCell
{
    std::string platform; //!< PlatformRegistry key, e.g. "jarvis-1"
    int taskId = 0;
    CreateConfig cfg;
    int reps = 1;
    std::uint64_t seed0 = EmbodiedSystem::kDefaultSeed0;
    std::string label; //!< cosmetic: verbose progress + store records
};

/** Where a cell's result came from. */
enum class CellSource
{
    Executed, //!< episodes ran in this campaign
    Memoized, //!< shared an earlier identical cell's result (same reps)
    Resumed,  //!< loaded from the resume store without executing
    Sliced,   //!< prefix of a longer ledger executed in this campaign
    Skipped,  //!< owned by another shard; stats cover the local prefix only
};

/**
 * Canonical fingerprint of a cell's *ledger*: equal behavior => equal
 * string. `reps` is canonicalized away (episodes are seeded seed0 + i, so
 * reps is a prefix length, not part of the identity), as is anything that
 * cannot affect execution. Keys memoization, the result store, and shard
 * partitioning.
 */
std::string sweepFingerprint(const SweepCell& cell);

/**
 * The PR 4-era cell fingerprint (includes reps). Only used by the store
 * migration read path to match records in legacy cell-level stores.
 */
std::string sweepFingerprintLegacyV1(const SweepCell& cell);

// The store schema version and record-key grammar (sweepEpisodeKey,
// sweepLeaseKey, ...) live in common/store_keys.hpp: both storage
// backends (JSON interchange and the binary append log) and the store
// readers share them, so they sit below the sweep layer.

/** Declarative campaign runner (see file comment). */
class SweepRunner
{
  public:
    struct Options
    {
        int threads = 1;       //!< total worker budget (ledgers + episodes)
        /**
         * Fuse concurrent per-episode GEMMs across episode workers
         * (core/batched_queue.hpp; bit-identical either way). Only
         * engages when episodes fan out within a ledger (threads left
         * over after cell-sharding); the --progress line reports the
         * measured fusion rate.
         */
        bool batched = true;
        std::string storePath; //!< result store; empty disables it
        /**
         * On-disk format when the store is created: Json (default, the
         * interchange/golden format) or Binlog (per-writer append logs,
         * O(batch) flushes). A store that already exists keeps its
         * detected format regardless of this flag.
         */
        StoreFormat storeFormat = StoreFormat::Json;
        bool resume = false;   //!< satisfy cells from the store's ledgers
        bool verbose = false;  //!< per-ledger progress lines on stderr
        bool progress = false; //!< one stderr status line per flush batch
        int flushEvery = 16;   //!< episodes per store flush / progress tick
        int shardIndex = 0;    //!< this process's shard (0-based)
        int shardCount = 1;    //!< total shards; 1 disables partitioning
        /**
         * Elastic lease mode: > 0 replaces the static shard partition
         * with lease-based work claiming against the shared store (see
         * file comment). The value is the steal latency bound: a dead
         * worker's ledger is reclaimed once its lease has not been
         * renewed for this many seconds. Renewals ride on flushes, so
         * keep leaseSeconds comfortably above the worst-case flush
         * interval (flushEvery x slowest episode). 0 (default) keeps the
         * pre-lease behavior bit-identical.
         */
        double leaseSeconds = 0.0;
        /**
         * Connected campaign mode: "host:port" of a create-coordinator
         * process (tools/create_coordinator, core/coordinator.hpp) that
         * owns the campaign store. The runner declares its ledgers to
         * the coordinator, runs the episode ranges it is dispatched,
         * and streams completed records back as binlog frames -- no
         * shared filesystem (and no local store) required. Episodes
         * another worker ran are fetched back over the wire at the end,
         * so stats() folds are bit-identical to a serial run. Mutually
         * exclusive with the shared-store options (storePath, resume,
         * shard*, leaseSeconds): the coordinator owns all store state.
         */
        std::string connect;
    };

    SweepRunner();
    explicit SweepRunner(Options opt);
    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /**
     * Declare a cell; returns its handle. Validates the platform name
     * against the PlatformRegistry (throws std::invalid_argument on an
     * unknown platform). Campaigns can be phased: add() more cells after
     * a run() -- results already gathered can steer what the next phase
     * declares (e.g. fig16's fallback operating point only where the
     * voltage search failed) -- then run() again.
     */
    std::size_t add(SweepCell cell);

    /** Number of declared cells. */
    std::size_t size() const { return cells_.size(); }

    /**
     * Execute every not-yet-completed cell (so re-running after adding a
     * new phase of cells only executes the additions). Only the episodes
     * missing from each cell's ledger run -- stored or previously
     * executed prefixes are reused. Prints the one-line summary
     * ("[sweep] cells=... executed=...") after the first run and after
     * any phase with work.
     */
    void run();

    const SweepCell& cell(std::size_t handle) const;

    /**
     * Aggregated stats of a cell: the deterministic fold of its ledger
     * prefix (run() must have completed). For a Skipped cell (sharded
     * campaign, owned by another process) this covers only the episodes
     * present locally -- possibly none.
     */
    const TaskStats& stats(std::size_t handle) const;

    /** How this cell's result was obtained. */
    CellSource source(std::size_t handle) const;

    /**
     * Per-episode results of a cell: its prefix of the shared ledger.
     * Cells resumed from a v2 store read them directly; cells resumed
     * from a legacy v1 store re-derive them on demand by re-running
     * (deterministic, so the results are the ones the stored stats came
     * from).
     */
    const std::vector<EpisodeResult>& episodes(std::size_t handle);

    /**
     * The engine's prototype system of a platform (built on demand from
     * the PlatformRegistry); useful for task-name lookups when rendering.
     */
    EmbodiedSystem& system(const std::string& platform);

    int executedCells() const { return executed_; }
    int memoizedCells() const { return memoized_; }
    int resumedCells() const { return resumed_; }
    int slicedCells() const { return sliced_; }
    int skippedCells() const { return skipped_; }

    /** Episodes actually executed by this runner (campaign lifetime). */
    long long episodesExecuted() const { return episodesExecuted_; }

    /** Leases taken over from another (dead or stale) worker. */
    long long leasesStolen() const { return leasesStolen_.load(); }

    /** Expired foreign leases observed while scanning for work. */
    long long leasesExpired() const { return leasesExpired_.load(); }

    /** The worker identity lease records carry ("host:pid.seq"). */
    const std::string& workerId() const { return workerId_; }

    /**
     * GEMM-fusion counters summed over every system the campaign ran
     * episodes on (zeros when batching or episode fan-out never
     * engaged). Feeds the --progress line.
     */
    BatchStats batchStats() const;

    /** The "[sweep] ..." summary line run() prints. */
    std::string summary() const;

  private:
    /** Shared episode ledger of one fingerprint. */
    struct Ledger
    {
        std::vector<EpisodeRecord> eps;
        std::vector<char> have;
        bool anyExecuted = false; //!< gained episodes by running, ever

        void grow(int need);
        int prefixLen(int limit) const;
    };

    struct CellState
    {
        SweepCell cell;
        std::string fingerprint;
        std::size_t primary = 0; //!< first cell with this (fp, reps)
        CellSource source = CellSource::Executed;
        TaskStats stats;
        std::vector<EpisodeResult> episodes; //!< cached prefix slice
        bool hasEpisodes = false;
        bool done = false;
    };

    /** One pending ledger: the episode ranges it still needs to run. */
    struct WorkUnit
    {
        std::string fingerprint;
        std::size_t owner = 0; //!< first member cell with the max reps
        int need = 0;
        std::vector<std::pair<int, int>> runs; //!< missing (start, count)
        std::vector<std::size_t> members;      //!< primary cells, any reps
        Ledger* led = nullptr;
    };

    class StoreSink; //!< EpisodeSink streaming a unit's episodes in
    class CoordSink; //!< EpisodeSink streaming a range to the coordinator

    /** In-memory side of a lease this worker holds (keyed by fp). */
    struct ActiveLease
    {
        std::uint64_t gen = 0;
        bool done = false;
    };

    EmbodiedSystem* prototypeFor(const std::string& platform);
    void runUnit(WorkUnit& unit, EmbodiedSystem& sys);
    void finalizeGroup(const std::string& fingerprint,
                       const std::vector<std::size_t>& members,
                       std::size_t owner, bool executedNow, bool skipped);
    void loadStore(std::map<std::string, std::map<int, EpisodeRecord>>& eps,
                   std::map<std::string, TaskStats>& legacy);
    void flushStore();
    void progressLine();
    // Elastic lease mode (all under storeIoMu_ unless noted).
    void runElastic(std::vector<WorkUnit>& units); //!< takes no locks itself
    // Connected (coordinator) mode: run dispatched ranges, stream the
    // records back, fetch peers' episodes at the end.
    void runConnected(std::vector<WorkUnit>& units);
    WorkUnit* claimNext(std::vector<WorkUnit*>& pending);
    void gapFillFromStore(WorkUnit& unit);
    void mergeDiskRecordLocked(JsonRecord&& rec);
    void renewLeasesLocked(double now, std::vector<JsonRecord>& batch);
    StoreBackend* ensureBackendLocked();
    bool persistLocked(const std::vector<JsonRecord>& batch,
                       std::string* error);

    Options opt_;
    bool ran_ = false;
    // Deque: phased add() must not invalidate the stats()/cell()/
    // episodes() references handed out for earlier phases' handles.
    std::deque<CellState> cells_;
    std::map<std::string, std::size_t> byKey_; //!< (fp, reps) -> primary
    std::map<std::string, Ledger> ledgers_;
    std::map<std::string, std::unique_ptr<EmbodiedSystem>> prototypes_;
    std::map<std::string, std::vector<std::unique_ptr<EmbodiedSystem>>>
        replicas_;
    /**
     * Store records by name: everything loaded from disk plus every
     * flushed episode. Flushes write this merged view (re-merged, under
     * a cross-process file lock, with whatever is on disk when shards
     * share the store), so records another campaign or shard needs are
     * never dropped by a rewrite. Owned by the flush path: only touched
     * under storeIoMu_ (or before workers start).
     */
    std::map<std::string, JsonRecord> storeRecords_;
    /**
     * Episode records completed since the last flush. Workers append
     * here under storeMu_ -- O(batch), never O(store) -- and flushStore
     * drains it into storeRecords_ under storeIoMu_.
     */
    std::vector<JsonRecord> pendingRecords_;
    /**
     * Records produced on the I/O path since the last flush (ledger meta
     * stamps, renewed/claimed leases written directly into storeRecords_)
     * that appending backends still owe the disk. Guarded by storeIoMu_;
     * flushStore folds it into the flush batch. Rewriting backends write
     * the whole merged view anyway, so for them this is only a
     * should-we-skip signal.
     */
    std::vector<JsonRecord> pendingIo_;
    /** The storage backend behind storePath (lazily opened; reset when a
     *  future-schema store disables the store path). */
    std::unique_ptr<StoreBackend> store_;
    bool schemaStamped_ = false; //!< schema record appended this process
    std::mutex storeMu_;   //!< guards ledgers, cell completion, pending
    std::mutex storeIoMu_; //!< guards storeRecords_ + the file write
    std::uint64_t storeVersion_ = 0; //!< bumped per flush batch
    std::uint64_t storeWritten_ = 0; //!< newest version on disk
    int flushTick_ = 0;              //!< episodes since the last flush
    /**
     * Elastic lease state. workerId_ is fixed at construction; the lease
     * map and the expiry-dedup set live under storeIoMu_ (claims and
     * renewals happen inside the store's locked read-merge-write). The
     * telemetry counters are atomics so the progress line and summary
     * read them lock-free.
     */
    std::string workerId_;
    std::map<std::string, ActiveLease> activeLeases_;
    std::map<std::string, std::uint64_t> expiredSeen_; //!< fp -> max gen
    std::atomic<long long> leasesStolen_{0};
    std::atomic<long long> leasesExpired_{0};
    int executed_ = 0;
    int memoized_ = 0;
    int resumed_ = 0;
    int sliced_ = 0;
    int skipped_ = 0;
    long long episodesExecuted_ = 0;
    // Progress accounting of the current run() (guarded by storeMu_).
    long long progressTotal_ = 0;
    long long progressDone_ = 0;
    long long progressSucc_ = 0;
    std::size_t unitsTotal_ = 0;
    std::size_t unitsDone_ = 0;
    double progressStart_ = 0.0; //!< steady-clock seconds at run() start
    /**
     * Sliding window of recent episode wall times (ms) and the running
     * injected-flip total, both fed by the metrics payload each episode
     * drains; the --progress line reports live p95 episode time and
     * flips/episode from them. Guarded by storeMu_.
     */
    std::vector<double> progressWall_;
    std::size_t progressWallNext_ = 0;
    std::uint64_t progressFlips_ = 0;
};

} // namespace create
