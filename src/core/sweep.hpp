#pragma once

/**
 * @file
 * SweepRunner: the declarative (task x config x reps) campaign engine the
 * figure drivers run on.
 *
 * Every paper figure is a sweep matrix -- the same evaluate() call over a
 * grid of deployment points -- and every driver used to hand-roll that
 * loop serially, re-evaluating identical cells (the clean baseline shows
 * up in three sections of Fig. 17 alone) with no way to shard across
 * config points or resume a long campaign. SweepRunner replaces the loop:
 *
 *  - Drivers *declare* their matrix as SweepCells `{platform, taskId,
 *    CreateConfig, reps, seed0}` up front (add() returns a handle), call
 *    run() once, and render tables from stats(handle).
 *  - Cell-level sharding: a shared worker pool drains the queue of cells;
 *    each worker owns bit-identical EmbodiedSystem replicas (frozen model
 *    set shared, see core/shared_models.hpp) and runs its cell's episodes
 *    through the existing engine (EmbodiedSystem::runEpisodes), so every
 *    cell's TaskStats is bit-identical to serial execution regardless of
 *    thread count or scheduling. When there are fewer pending cells than
 *    workers the leftover budget fans out *within* cells via
 *    setEvalThreads (the ParallelEvaluator path), so a one-cell campaign
 *    still scales.
 *  - Cross-cell memoization: cells are keyed by a canonical fingerprint
 *    of (platform, task, config, reps, seed0) -- fields that cannot
 *    affect execution (the VS policy when voltageScaling is off, BERs
 *    when injection is off, the policy's display name) are excluded -- so
 *    a duplicated clean-baseline cell is evaluated exactly once.
 *  - Resumable result store: with a storePath every completed cell's
 *    TaskStats is flushed to a flat JSON array (common/serialize's
 *    JsonRecord format, %.17g round-trip-exact); with resume=true cells
 *    whose fingerprint is already in the store load their stats instead
 *    of re-executing. Kill a campaign anywhere and re-run it with
 *    --resume: only the missing cells execute.
 *
 * Scheduling constraint: freezing quantized weights is per-width state on
 * the shared model set, so cells of the same platform at different
 * QuantBits must not run concurrently. run() therefore executes in waves
 * of one (platform, bits) bucket each, pre-warming the bucket's configs
 * serially (prepare) before fanning its cells out.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "core/embodied_system.hpp"

namespace create {

/** One (platform, task, config, repetitions) point of a campaign. */
struct SweepCell
{
    std::string platform; //!< PlatformRegistry key, e.g. "jarvis-1"
    int taskId = 0;
    CreateConfig cfg;
    int reps = 1;
    std::uint64_t seed0 = EmbodiedSystem::kDefaultSeed0;
    std::string label; //!< cosmetic: verbose progress + store records
};

/** Where a cell's result came from. */
enum class CellSource
{
    Executed, //!< episodes ran in this campaign
    Memoized, //!< shared an earlier identical cell's execution
    Resumed,  //!< loaded from the resume store without executing
};

/**
 * Canonical fingerprint of a cell: equal behavior => equal string. Keys
 * memoization and the resume store.
 */
std::string sweepFingerprint(const SweepCell& cell);

/** Declarative campaign runner (see file comment). */
class SweepRunner
{
  public:
    struct Options
    {
        int threads = 1;       //!< total worker budget (cells + episodes)
        std::string storePath; //!< JSON result store; empty disables it
        bool resume = false;   //!< skip cells already in the store
        bool verbose = false;  //!< per-cell progress lines on stderr
    };

    SweepRunner();
    explicit SweepRunner(Options opt);
    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /**
     * Declare a cell; returns its handle. Validates the platform name
     * against the PlatformRegistry (throws std::invalid_argument on an
     * unknown platform). Campaigns can be phased: add() more cells after
     * a run() -- results already gathered can steer what the next phase
     * declares (e.g. fig16's fallback operating point only where the
     * voltage search failed) -- then run() again.
     */
    std::size_t add(SweepCell cell);

    /** Number of declared cells. */
    std::size_t size() const { return cells_.size(); }

    /**
     * Execute every not-yet-completed cell (so re-running after adding a
     * new phase of cells only executes the additions). Prints the
     * one-line summary ("[sweep] cells=... executed=... memoized=...
     * resumed=...") after the first run and after any phase with work.
     */
    void run();

    const SweepCell& cell(std::size_t handle) const;

    /** Aggregated stats of a cell (run() must have completed). */
    const TaskStats& stats(std::size_t handle) const;

    /** How this cell's result was obtained. */
    CellSource source(std::size_t handle) const;

    /**
     * Per-episode results of a cell. Available directly for executed
     * cells; a resumed cell's episodes are re-derived on demand by
     * re-running it (deterministic, so the results are the ones the
     * stored stats came from).
     */
    const std::vector<EpisodeResult>& episodes(std::size_t handle);

    /**
     * The engine's prototype system of a platform (built on demand from
     * the PlatformRegistry); useful for task-name lookups when rendering.
     */
    EmbodiedSystem& system(const std::string& platform);

    int executedCells() const { return executed_; }
    int memoizedCells() const { return memoized_; }
    int resumedCells() const { return resumed_; }

    /** The "[sweep] ..." summary line run() prints. */
    std::string summary() const;

  private:
    struct CellState
    {
        SweepCell cell;
        std::string fingerprint;
        std::size_t primary = 0; //!< first cell with this fingerprint
        CellSource source = CellSource::Executed;
        TaskStats stats;
        std::vector<EpisodeResult> episodes;
        bool hasEpisodes = false;
        bool done = false;
    };

    EmbodiedSystem* prototypeFor(const std::string& platform);
    void runCell(CellState& st, EmbodiedSystem& sys);
    void loadStore(std::map<std::string, TaskStats>& stored);
    void flushStore();

    Options opt_;
    bool ran_ = false;
    // Deque: phased add() must not invalidate the stats()/cell()/
    // episodes() references handed out for earlier phases' handles.
    std::deque<CellState> cells_;
    std::map<std::string, std::size_t> byFingerprint_;
    std::map<std::string, std::unique_ptr<EmbodiedSystem>> prototypes_;
    std::map<std::string, std::vector<std::unique_ptr<EmbodiedSystem>>>
        replicas_;
    /**
     * Store records by fingerprint: everything loaded from disk plus
     * every completed cell. Flushes write this merged view, so records a
     * later phase (or another campaign sharing the store) needs are
     * never dropped by a rewrite.
     */
    std::map<std::string, JsonRecord> storeRecords_;
    std::mutex storeMu_;  //!< guards cell completion + storeRecords_
    std::mutex storeIoMu_; //!< guards the file write, outside storeMu_
    std::uint64_t storeVersion_ = 0;   //!< bumped per snapshot
    std::uint64_t storeWritten_ = 0;   //!< newest version on disk
    int executed_ = 0;
    int memoized_ = 0;
    int resumed_ = 0;
};

} // namespace create
