#include "core/manip_system.hpp"

#include <algorithm>
#include <cmath>

#include "core/rotation.hpp"
#include "hw/ldo.hpp"

namespace create {

namespace {

PaperEnergyModel
manipEnergyModel(const std::string& plannerPlatform,
                 const std::string& controllerPlatform)
{
    return PaperEnergyModel(plannerPlatform == "openvla"
                                ? workloads::openVla()
                                : workloads::roboFlamingo(),
                            controllerPlatform == "octo" ? workloads::octo()
                                                         : workloads::rt1(),
                            workloads::entropyPredictor());
}

} // namespace

ManipSystem::ManipSystem(std::string plannerPlatform,
                         std::string controllerPlatform, bool verbose)
    : plannerPlatform_(std::move(plannerPlatform)),
      controllerPlatform_(std::move(controllerPlatform)),
      label_(plannerPlatform_ + "+" + controllerPlatform_),
      verbose_(verbose),
      planner_(platforms::manipPlanner(plannerPlatform_, verbose)),
      controller_(platforms::manipController(controllerPlatform_, verbose)),
      energy_(manipEnergyModel(plannerPlatform_, controllerPlatform_))
{
}

PlannerModel&
ManipSystem::planner(bool rotated)
{
    if (!rotated)
        return *planner_;
    if (!rotatedPlanner_) {
        rotatedPlanner_ =
            platforms::manipPlanner(plannerPlatform_, /*verbose=*/false);
        applyWeightRotation(*rotatedPlanner_);
        platforms::calibrateManipPlanner(*rotatedPlanner_);
    }
    return *rotatedPlanner_;
}

EntropyPredictor&
ManipSystem::predictor()
{
    if (!predictor_)
        predictor_ = platforms::manipPredictor(controllerPlatform_,
                                               *controller_, verbose_);
    return *predictor_;
}

void
ManipSystem::prepare(const CreateConfig& cfg)
{
    if (cfg.weightRotation)
        planner(true);
    if (cfg.voltageScaling)
        predictor();
}

std::unique_ptr<EmbodiedSystem>
ManipSystem::replicate() const
{
    auto copy = std::make_unique<ManipSystem>(plannerPlatform_,
                                              controllerPlatform_,
                                              /*verbose=*/false);
    return copy;
}

EpisodeResult
ManipSystem::runEpisode(int taskId, std::uint64_t seed,
                        const CreateConfig& cfg)
{
    EpisodeResult r;
    ManipWorld world(static_cast<ManipTask>(taskId), seed);
    ComputeContext plannerCtx(seed ^ 0x111ull);
    ComputeContext controllerCtx(seed ^ 0x222ull);
    ComputeContext predictorCtx(seed ^ 0x333ull);
    plannerCtx.domain = Domain::Planner;
    controllerCtx.domain = Domain::Controller;
    predictorCtx.domain = Domain::Predictor;
    cfg.applyTo(plannerCtx, /*isPlanner=*/true);
    cfg.applyTo(controllerCtx, /*isPlanner=*/false);

    PlannerModel& p = planner(cfg.weightRotation);
    EntropyPredictor* pred = nullptr;
    DigitalLdo ldo;
    if (cfg.voltageScaling) {
        pred = &predictor();
        // VS implies voltage-dependent errors on the controller.
        if (cfg.mode != InjectionMode::None && cfg.injectController)
            controllerCtx.setVoltageMode();
    }
    Rng actionRng(seed ^ 0x444ull);

    const auto tokens = p.inferPlan(taskId, 0, plannerCtx);
    ++r.plannerInvocations;
    const auto plan = platforms::decodeManipPlan(tokens);
    const double maxH = std::log(static_cast<double>(kNumManipActions));
    int steps = 0;
    for (const auto st : plan) {
        world.setActiveSubtask(st);
        while (!world.subtaskComplete() && steps < ManipWorld::kStepCap) {
            const ManipObs obs = world.observe();
            if (pred && steps % cfg.vsInterval == 0) {
                const double h = pred->infer(
                    world.renderImage(pred->config().imgRes),
                    platforms::manipPrompt(st, obs,
                                           pred->config().promptDim),
                    predictorCtx);
                ++r.predictorInvocations;
                ldo.set(cfg.policy.voltageFor(
                    std::min(1.0, std::max(0.0, h / maxH))));
                controllerCtx.setVoltage(ldo.vout());
            }
            const auto logits = controller_->inferLogits(
                static_cast<int>(st), obs.spatial, obs.state, controllerCtx);
            world.step(
                static_cast<ManipAction>(sampleAction(logits, actionRng)));
            ++steps;
        }
        if (world.subtaskComplete())
            ++r.subtasksCompleted;
        if (steps >= ManipWorld::kStepCap)
            break;
    }

    r.success = world.taskComplete();
    r.steps = r.success ? steps : ManipWorld::kStepCap;
    const auto& pu = plannerCtx.meter.usage(Domain::Planner);
    const auto& cu = controllerCtx.meter.usage(Domain::Controller);
    if (pu.macs > 0.0)
        r.plannerV2Ratio = pu.v2WeightedMacs / pu.macs;
    if (cu.macs > 0.0)
        r.controllerV2Ratio = cu.v2WeightedMacs / cu.macs;
    r.plannerEffV = plannerCtx.meter.effectiveVoltage(Domain::Planner);
    r.controllerEffV =
        controllerCtx.meter.effectiveVoltage(Domain::Controller);
    r.bitFlips = pu.bitFlips + cu.bitFlips;
    r.anomaliesCleared = pu.anomaliesCleared + cu.anomaliesCleared;
    return r;
}

} // namespace create
