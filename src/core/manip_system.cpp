#include "core/manip_system.hpp"

#include "core/platform_episode.hpp"
#include "core/rotation.hpp"

namespace create {

namespace {

/** Episode types + hooks of the manipulation family. */
struct ManipEpisodeTraits
{
    using World = ManipWorld;
    using Task = ManipTask;
    using Action = ManipAction;
    static constexpr int kNumActions = kNumManipActions;
    static constexpr int kStepCap = ManipWorld::kStepCap;

    static std::vector<ManipSubtask> decodePlan(const std::vector<int>& t)
    {
        return platforms::decodeManipPlan(t);
    }
    static std::vector<float> prompt(ManipSubtask st, const ManipObs& obs,
                                     int promptDim)
    {
        return platforms::manipPrompt(st, obs, promptDim);
    }
};

PaperEnergyModel
manipEnergyModel(const std::string& plannerPlatform,
                 const std::string& controllerPlatform)
{
    return PaperEnergyModel(plannerPlatform == "openvla"
                                ? workloads::openVla()
                                : workloads::roboFlamingo(),
                            controllerPlatform == "octo" ? workloads::octo()
                                                         : workloads::rt1(),
                            workloads::entropyPredictor());
}

} // namespace

ManipSystem::ManipSystem(std::string plannerPlatform,
                         std::string controllerPlatform, bool verbose)
    : plannerPlatform_(std::move(plannerPlatform)),
      controllerPlatform_(std::move(controllerPlatform)),
      label_(plannerPlatform_ + "+" + controllerPlatform_),
      verbose_(verbose),
      shared_(std::make_shared<SharedModelSet>()),
      energy_(manipEnergyModel(plannerPlatform_, controllerPlatform_))
{
    shared_->planner = platforms::manipPlanner(plannerPlatform_, verbose);
    shared_->controller =
        platforms::manipController(controllerPlatform_, verbose);
}

ManipSystem::ManipSystem(const ManipSystem& prototype,
                         std::shared_ptr<SharedModelSet> shared)
    : plannerPlatform_(prototype.plannerPlatform_),
      controllerPlatform_(prototype.controllerPlatform_),
      label_(prototype.label_), verbose_(false), shared_(std::move(shared)),
      energy_(prototype.energy_)
{
}

PlannerModel&
ManipSystem::planner(bool rotated)
{
    if (!rotated)
        return *shared_->planner;
    if (!shared_->rotatedPlanner) {
        std::shared_ptr<PlannerModel> r =
            platforms::manipPlanner(plannerPlatform_, /*verbose=*/false);
        applyWeightRotation(*r);
        platforms::calibrateManipPlanner(*r);
        shared_->rotatedPlanner = std::move(r);
    }
    return *shared_->rotatedPlanner;
}

EntropyPredictor&
ManipSystem::predictor()
{
    if (!shared_->predictor)
        shared_->predictor = platforms::manipPredictor(
            controllerPlatform_, *shared_->controller, verbose_);
    return *shared_->predictor;
}

void
ManipSystem::prepare(const CreateConfig& cfg)
{
    // Build lazy members and freeze every layer the config will touch at
    // its deployment width -- serially, so shared model state is read-only
    // once episodes (possibly on a worker pool) start.
    warmFreezePlanner(planner(cfg.weightRotation), cfg.bits);
    warmFreezeController(*shared_->controller, cfg.bits);
    if (cfg.voltageScaling)
        warmFreezePredictor(predictor());
}

std::unique_ptr<EmbodiedSystem>
ManipSystem::replicate() const
{
    // Replicas share the frozen model set; see core/shared_models.hpp.
    return std::unique_ptr<EmbodiedSystem>(new ManipSystem(*this, shared_));
}

EpisodeResult
ManipSystem::runEpisode(int taskId, std::uint64_t seed,
                        const CreateConfig& cfg)
{
    return runDecodedPlanEpisode<ManipEpisodeTraits>(
        taskId, seed, cfg,
        EpisodeSalts{0x111ull, 0x222ull, 0x333ull, 0x444ull},
        planner(cfg.weightRotation), *shared_->controller,
        cfg.voltageScaling ? &predictor() : nullptr, gemmSink());
}

} // namespace create
