#include "core/manip_system.hpp"

#include "core/platform_episode.hpp"
#include "core/rotation.hpp"

namespace create {

namespace {

/** Episode types + hooks of the manipulation family. */
struct ManipEpisodeTraits
{
    using World = ManipWorld;
    using Task = ManipTask;
    using Action = ManipAction;
    static constexpr int kNumActions = kNumManipActions;
    static constexpr int kStepCap = ManipWorld::kStepCap;

    static std::vector<ManipSubtask> decodePlan(const std::vector<int>& t)
    {
        return platforms::decodeManipPlan(t);
    }
    static std::vector<float> prompt(ManipSubtask st, const ManipObs& obs,
                                     int promptDim)
    {
        return platforms::manipPrompt(st, obs, promptDim);
    }
};

PaperEnergyModel
manipEnergyModel(const std::string& plannerPlatform,
                 const std::string& controllerPlatform)
{
    return PaperEnergyModel(plannerPlatform == "openvla"
                                ? workloads::openVla()
                                : workloads::roboFlamingo(),
                            controllerPlatform == "octo" ? workloads::octo()
                                                         : workloads::rt1(),
                            workloads::entropyPredictor());
}

} // namespace

ManipSystem::ManipSystem(std::string plannerPlatform,
                         std::string controllerPlatform, bool verbose)
    : plannerPlatform_(std::move(plannerPlatform)),
      controllerPlatform_(std::move(controllerPlatform)),
      label_(plannerPlatform_ + "+" + controllerPlatform_),
      verbose_(verbose),
      planner_(platforms::manipPlanner(plannerPlatform_, verbose)),
      controller_(platforms::manipController(controllerPlatform_, verbose)),
      energy_(manipEnergyModel(plannerPlatform_, controllerPlatform_))
{
}

PlannerModel&
ManipSystem::planner(bool rotated)
{
    if (!rotated)
        return *planner_;
    if (!rotatedPlanner_) {
        rotatedPlanner_ =
            platforms::manipPlanner(plannerPlatform_, /*verbose=*/false);
        applyWeightRotation(*rotatedPlanner_);
        platforms::calibrateManipPlanner(*rotatedPlanner_);
    }
    return *rotatedPlanner_;
}

EntropyPredictor&
ManipSystem::predictor()
{
    if (!predictor_)
        predictor_ = platforms::manipPredictor(controllerPlatform_,
                                               *controller_, verbose_);
    return *predictor_;
}

void
ManipSystem::prepare(const CreateConfig& cfg)
{
    if (cfg.weightRotation)
        planner(true);
    if (cfg.voltageScaling)
        predictor();
}

std::unique_ptr<EmbodiedSystem>
ManipSystem::replicate() const
{
    auto copy = std::make_unique<ManipSystem>(plannerPlatform_,
                                              controllerPlatform_,
                                              /*verbose=*/false);
    return copy;
}

EpisodeResult
ManipSystem::runEpisode(int taskId, std::uint64_t seed,
                        const CreateConfig& cfg)
{
    return runDecodedPlanEpisode<ManipEpisodeTraits>(
        taskId, seed, cfg,
        EpisodeSalts{0x111ull, 0x222ull, 0x333ull, 0x444ull},
        planner(cfg.weightRotation), *controller_,
        cfg.voltageScaling ? &predictor() : nullptr);
}

} // namespace create
