#include "core/rotation.hpp"

#include "tensor/ops.hpp"

namespace create {

namespace {

/** W <- diag(g) W (scale input rows by the folded norm gain). */
void
foldGainIntoRows(Tensor& w, const Tensor& g)
{
    for (std::int64_t i = 0; i < w.dim(0); ++i)
        for (std::int64_t j = 0; j < w.dim(1); ++j)
            w.at(i, j) *= g[i];
}

} // namespace

void
applyWeightRotation(PlannerModel& m)
{
    const int dim = m.config().dim;
    const Tensor h = ops::hadamard(dim);
    const Tensor ht = ops::transpose(h);

    // Embedding rows live in the residual basis: E <- E H.
    m.embeddingLayer().table() =
        ops::matmul(m.embeddingLayer().table(), h);

    for (int l = 0; l < m.config().layers; ++l) {
        auto& blk = m.block(l);

        // Fold norm1 gain into Q/K/V, then left-rotate their input side.
        Tensor g1 = blk.norm1().gain();
        for (nn::Linear* lin :
             {&blk.attn().q(), &blk.attn().k(), &blk.attn().v()}) {
            Tensor w = lin->weight();
            foldGainIntoRows(w, g1);
            lin->setWeight(ops::matmul(ht, w));
        }
        blk.norm1().gain().fill(1.0f);

        // O writes the residual stream: fold outlier scale, right-rotate.
        {
            Tensor w = blk.attn().o().effectiveWeight();
            blk.attn().o().clearOutChannelScale();
            blk.attn().o().setWeight(ops::matmul(w, h));
        }

        // Fold norm2 gain into gate/up, left-rotate.
        Tensor g2 = blk.norm2().gain();
        for (nn::Linear* lin : {&blk.gate(), &blk.up()}) {
            Tensor w = lin->weight();
            foldGainIntoRows(w, g2);
            lin->setWeight(ops::matmul(ht, w));
        }
        blk.norm2().gain().fill(1.0f);

        // Down writes the residual stream: fold outlier scale, right-rotate.
        {
            Tensor w = blk.down().effectiveWeight();
            blk.down().clearOutChannelScale();
            blk.down().setWeight(ops::matmul(w, h));
        }
    }

    // Final norm gain folds into the head; left-rotate the head input.
    {
        Tensor g = m.finalNorm().gain();
        Tensor w = m.head().weight();
        foldGainIntoRows(w, g);
        m.head().setWeight(ops::matmul(ht, w));
        m.finalNorm().gain().fill(1.0f);
    }

    m.invalidateCalibration();
}

} // namespace create
