#pragma once

/**
 * @file
 * PlatformRegistry: the catalogue of embodied platforms the repository can
 * deploy, mapping platform name -> EmbodiedSystem factory + metadata
 * (environment family, paper-scale GOps, default operating voltages, and
 * the benchmark tasks the Fig. 17 generality study exercises).
 *
 * Before the registry existed every cross-platform consumer hard-coded its
 * platform list: bench_fig17_cross_platform constructed Mine/Manip systems
 * by hand, warm_models repeated the same list for cache warmup, and the
 * examples picked from string literals. Adding a platform meant touching
 * all of them. Now `bench_fig17_cross_platform --platforms a,b,c`,
 * `--list-platforms`, the cross-platform example, and the warm_models
 * CTest fixture all enumerate this registry, so the next platform is one
 * `registerPlatform` call (as NavSystem demonstrates).
 */

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/embodied_system.hpp"

namespace create {

/** Catalogue entry: how to build one platform and what it is. */
struct PlatformInfo
{
    std::string name;      //!< registry key, e.g. "navllama+pathrt"
    std::string envFamily; //!< "minecraft" | "manipulation" | "navigation"
    std::string plannerName;
    std::string controllerName;
    double plannerGops = 0.0;    //!< paper-scale GOps per planner call
    double controllerGops = 0.0; //!< paper-scale GOps per controller step

    /** Aggressive-but-recoverable planner voltage for AD+WR studies. */
    double defaultPlannerV = 0.72;
    /** Nominal controller voltage (VS scales below it at runtime). */
    double defaultControllerV = 0.90;

    /** Fig. 17(a) planner-side benchmark tasks (ids into the system). */
    std::vector<int> plannerTasks;
    /** Fig. 17(b) controller-side benchmark tasks. */
    std::vector<int> controllerTasks;

    /** Build the platform (models load-or-train from the shared cache). */
    std::function<std::unique_ptr<EmbodiedSystem>(bool verbose)> factory;
};

/** Process-wide platform catalogue (builtins registered on first use). */
class PlatformRegistry
{
  public:
    static PlatformRegistry& instance();

    /** Register a platform; throws std::invalid_argument on a duplicate. */
    void registerPlatform(PlatformInfo info);

    /** All platforms in registration order. */
    const std::deque<PlatformInfo>& all() const { return platforms_; }

    /** Registry keys in registration order. */
    std::vector<std::string> names() const;

    /** Lookup by name; nullptr when absent. */
    const PlatformInfo* find(const std::string& name) const;

    /**
     * Parse a comma-separated platform filter ("a,b,c"; empty selects
     * everything). Throws std::invalid_argument naming the offender when a
     * platform is unknown.
     */
    std::vector<const PlatformInfo*> select(const std::string& csv) const;

    /** Construct a platform by name; throws when unknown. */
    std::unique_ptr<EmbodiedSystem> make(const std::string& name,
                                         bool verbose = false) const;

  private:
    PlatformRegistry();

    // Deque: registerPlatform() must not invalidate the PlatformInfo
    // references/pointers all(), find(), and select() hand out.
    std::deque<PlatformInfo> platforms_;
};

} // namespace create
