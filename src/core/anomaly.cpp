#include "core/anomaly.hpp"

#include <algorithm>

namespace create {

namespace {

void
fold(AdBoundsSummary& s, nn::Linear& lin)
{
    ++s.layersTotal;
    const float b = lin.quantState().outBound;
    if (b <= 0.0f)
        return;
    if (s.layersCalibrated == 0) {
        s.minBound = b;
        s.maxBound = b;
    } else {
        s.minBound = std::min(s.minBound, b);
        s.maxBound = std::max(s.maxBound, b);
    }
    s.meanBound += b;
    ++s.layersCalibrated;
}

void
finish(AdBoundsSummary& s)
{
    if (s.layersCalibrated > 0)
        s.meanBound /= s.layersCalibrated;
}

} // namespace

AdBoundsSummary
plannerAdBounds(PlannerModel& m)
{
    AdBoundsSummary s;
    for (int l = 0; l < m.config().layers; ++l) {
        auto& blk = m.block(l);
        fold(s, blk.attn().q());
        fold(s, blk.attn().k());
        fold(s, blk.attn().v());
        fold(s, blk.attn().o());
        fold(s, blk.gate());
        fold(s, blk.up());
        fold(s, blk.down());
    }
    fold(s, m.head());
    finish(s);
    return s;
}

AdBoundsSummary
controllerAdBounds(ControllerModel& m)
{
    AdBoundsSummary s;
    for (int l = 0; l < m.config().layers; ++l) {
        auto& blk = m.block(l);
        fold(s, blk.attn().q());
        fold(s, blk.attn().k());
        fold(s, blk.attn().v());
        fold(s, blk.attn().o());
        fold(s, blk.fc1());
        fold(s, blk.fc2());
    }
    finish(s);
    return s;
}

} // namespace create
