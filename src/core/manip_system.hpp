#pragma once

/**
 * @file
 * ManipSystem: the cross-platform manipulation backend of the
 * EmbodiedSystem facade (paper Fig. 17, Table 10).
 *
 * Pairs one manipulation planner stand-in ("openvla" or "roboflamingo")
 * with one controller stand-in ("octo" or "rt1") on ManipWorld and runs
 * the same planner-decomposes / controller-executes episode the Minecraft
 * stack runs, under the same CreateConfig deployment points: AD on both
 * models, WR on the planner, autonomy-adaptive VS on the controller via
 * the platform's entropy predictor. This replaces the hand-rolled episode
 * loops that used to live in bench_fig17_cross_platform.cpp and
 * examples/cross_platform_manip.cpp.
 *
 * Energy is priced at the platform's paper-scale workloads (OpenVLA
 * 4,595 GOps, RoboFlamingo 2,411 GOps, Octo 76 GOps, RT-1 78 GOps per
 * inference), keeping Joule-level results at Fig. 17 magnitudes.
 */

#include <memory>
#include <string>

#include "core/embodied_system.hpp"
#include "core/shared_models.hpp"
#include "models/platforms.hpp"

namespace create {

/** A planner+controller manipulation platform pairing on ManipWorld. */
class ManipSystem : public EmbodiedSystem
{
  public:
    /**
     * @param plannerPlatform    "openvla" or "roboflamingo"
     * @param controllerPlatform "octo" or "rt1"
     */
    explicit ManipSystem(std::string plannerPlatform = "openvla",
                         std::string controllerPlatform = "octo",
                         bool verbose = false);

    // --- EmbodiedSystem interface ----------------------------------------
    const char* platformName() const override { return label_.c_str(); }
    int numTasks() const override { return kNumManipTasks; }
    const char* taskName(int taskId) const override
    {
        return manipTaskName(static_cast<ManipTask>(taskId));
    }
    EpisodeResult runEpisode(int taskId, std::uint64_t seed,
                             const CreateConfig& cfg) override;
    std::unique_ptr<EmbodiedSystem> replicate() const override;
    const PaperEnergyModel& energyModel() const override { return energy_; }
    void prepare(const CreateConfig& cfg) override;

    // --- typed convenience API -------------------------------------------
    using EmbodiedSystem::evaluate;
    using EmbodiedSystem::runEpisodes;

    EpisodeResult runEpisode(ManipTask task, std::uint64_t seed,
                             const CreateConfig& cfg)
    {
        return runEpisode(static_cast<int>(task), seed, cfg);
    }

    TaskStats evaluate(ManipTask task, const CreateConfig& cfg, int reps,
                       std::uint64_t seed0 = kDefaultSeed0)
    {
        return evaluate(static_cast<int>(task), cfg, reps, seed0);
    }

    /** Planner access; builds the rotated variant lazily. */
    PlannerModel& planner(bool rotated);
    ControllerModel& controller() { return *shared_->controller; }
    /** Entropy predictor; trained/loaded lazily (only VS configs need it). */
    EntropyPredictor& predictor();

    const std::string& plannerPlatform() const { return plannerPlatform_; }
    const std::string& controllerPlatform() const
    {
        return controllerPlatform_;
    }

  private:
    /** Replica constructor: shares the frozen model set. */
    ManipSystem(const ManipSystem& prototype,
                std::shared_ptr<SharedModelSet> shared);

    std::string plannerPlatform_;
    std::string controllerPlatform_;
    std::string label_;
    bool verbose_;

    std::shared_ptr<SharedModelSet> shared_;
    PaperEnergyModel energy_;
};

} // namespace create
