#pragma once

/**
 * @file
 * Storage backends of the SweepRunner result store: one vtable the sweep
 * engine and the store readers (sweep-diff, sweep-stats, sweep-store)
 * talk to, two on-disk formats behind it.
 *
 *  - **json** (the default, and the interchange/diff/golden format): one
 *    `[ ... ]` array of flat records, rewritten atomically (tmp+rename)
 *    on every flush. Human-greppable and byte-stable, but a flush costs
 *    O(store) and concurrent shards must serialize the whole
 *    read-merge-rename behind the store flock.
 *  - **binlog** (the campaign-scale format): a *directory* of per-writer
 *    binary append logs (`log-<worker>.crbl`, common/binlog frame
 *    codec). A flush appends O(batch) CRC-framed records to the caller's
 *    own log -- no lock, no rewrite, no disk re-merge -- so the store
 *    flock only guards lease claims, not data. Readers scan every log,
 *    salvage torn tails (quarantining the bad suffix), and fold
 *    duplicate keys last-writer-wins (leases by generation, the rule a
 *    steal needs to stick).
 *
 * Both formats carry the same JsonRecord model and the same store-key
 *  grammar (common/store_keys), and doubles survive both round trips
 * bit-exactly, so a campaign's folded TaskStats are bit-identical
 * whichever backend ran it -- `sweep-diff a.json b.binlog` is a
 * meaningful gate, and `sweep-store convert` is lossless either way.
 *
 * Format resolution: a store that already exists on disk keeps its
 * detected format (magic bytes / directory-ness) regardless of the
 * requested one -- the flag only matters at creation -- so every reader
 * and resumed campaign autodetects and mixed fleets cannot split-brain
 * one store.
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace create {

/** On-disk format of a result store. */
enum class StoreFormat
{
    Json,   //!< single rewritten JSON array (interchange/golden format)
    Binlog, //!< directory of per-writer binary append logs
};

/** Human name ("json"/"binlog"). */
const char* storeFormatName(StoreFormat format);

/** Parse "json"/"binlog"; false on anything else. */
bool parseStoreFormat(const std::string& name, StoreFormat& out);

/** Aggregated outcome of a backend load (all data files of the store). */
struct StoreLoadInfo
{
    bool salvaged = false; //!< some file had an unreadable tail
    std::size_t files = 0; //!< data files scanned (json: 1)
    std::size_t records = 0;
    std::uint64_t goodBytes = 0;
    std::uint64_t totalBytes = 0;
    std::vector<std::string> quarantined; //!< quarantine files written
};

/**
 * One result store on disk (see file comment). Not thread-safe: the
 * sweep engine serializes access under its store I/O mutex, tools are
 * single-threaded.
 */
class StoreBackend
{
  public:
    virtual ~StoreBackend() = default;

    virtual StoreFormat format() const = 0;

    /** The store path ( json: the file; binlog: the directory). */
    virtual const std::string& path() const = 0;

    /**
     * Merged view of every record on disk: one record per key, duplicate
     * keys folded later-writer-wins except leases, where the higher
     * (generation, renewedAt) wins -- a recorded steal must never be
     * resurrected by the victim's stale copy. Returns false when no
     * store exists yet; a store that exists but yields no parseable
     * record returns true with `info->salvaged` set and `out` empty.
     * With `quarantineBadTails`, unreadable suffixes are preserved next
     * to their file before anything rewrites them (loads on the claim
     * path pass false: scans are frequent and the owner heals its own
     * log).
     */
    virtual bool load(std::vector<JsonRecord>& out, StoreLoadInfo* info,
                      bool quarantineBadTails) = 0;

    /**
     * Publish one flush. `full` is the caller's merged whole-store view,
     * `batch` the records changed since the last successful flush (in
     * arrival order; later duplicates win). The json backend rewrites
     * `full` atomically and ignores `batch`; the binlog backend appends
     * `batch` to this process's own log -- O(batch) -- falling back to
     * one `full` append only when it detects its log was torn/truncated
     * underneath it (self-heal). False on I/O failure with `error` set;
     * safe to retry.
     */
    virtual bool flush(const std::map<std::string, JsonRecord>& full,
                       const std::vector<JsonRecord>& batch,
                       std::string* error) = 0;

    /**
     * Whether flush() replaces the whole store (json) rather than
     * appending (binlog). When true, concurrent writers must re-merge
     * with the records on disk under the store lock before flushing, or
     * the rewrite drops peers' batches; appending backends merge on
     * read instead, so their data path takes no lock at all.
     */
    virtual bool rewritesWholeStore() const = 0;

    /** Sidecar flock path serializing lease claims (and, for rewriting
     *  backends, flushes): `<path>.lock` for either format. */
    virtual std::string lockPath() const = 0;

    /** The data file this process's flushes land in (chaos tear target;
     *  empty before the first flush of an appending backend). */
    virtual std::string lastDataFile() const = 0;

    /**
     * Fold the store to its minimal form: binlog merges every log (and
     * every duplicate key) into one fresh log and removes the old ones;
     * json stores are already compact (no-op). Quiescent stores only --
     * live writers keep appending to their (removed) open logs.
     * `note` (optional) receives a one-line human summary.
     */
    virtual bool compact(std::string* error, std::string* note) = 0;
};

/**
 * Detect the on-disk format of `path`: a directory is a binlog store, a
 * file starting with the binlog magic is a (single-log) binlog store,
 * any other file is json (its parser classifies further). Returns false
 * when nothing exists at `path` (`out` is left at the caller's
 * requested default).
 */
bool detectStoreFormat(const std::string& path, StoreFormat& out);

/**
 * Open a store at `path`. When something already exists there its
 * detected format wins over `requested` (a one-line note lands in
 * `formatNote` when they disagree); otherwise the store will be created
 * with the requested format on its first flush. `writerTag` names this
 * process's append log in a binlog store (sanitized into the file name;
 * pass the sweep worker id, or a tool name). Never returns null; throws
 * std::invalid_argument on an empty path.
 */
std::unique_ptr<StoreBackend>
openStoreBackend(const std::string& path, StoreFormat requested,
                 const std::string& writerTag,
                 std::string* formatNote = nullptr);

/**
 * The lease-merge rule shared by every reader: true when record `a`
 * (owner/gen/renewedAt) should replace `b`. Strictly-higher generation
 * wins; within a generation the later renewal wins.
 */
bool leaseRecordBeats(const JsonRecord& a, const JsonRecord& b);

} // namespace create
