#include "core/store_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>

#include "common/serialize.hpp"
#include "core/store_backend.hpp"
#include "core/sweep.hpp"

namespace create {

namespace {

std::string
fmtg(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
withinTolerance(double a, double b, const StoreDiffOptions& opt)
{
    if (a == b)
        return true; // covers exact equality including both zero
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= opt.absTol + opt.relTol * scale;
}

} // namespace

bool
loadStoreCells(const std::string& path, std::vector<StoreCell>& out,
               std::string& error, std::vector<JsonRecord>* workers)
{
    out.clear();
    error.clear();
    if (workers)
        workers->clear();
    // Format autodetection (magic bytes / directory-ness) means every
    // reader accepts either store format -- and a mix of the two across
    // the A/B sides of a diff -- with no flag: json vs binlog diffs are
    // how cross-format bit-identity is certified.
    std::vector<JsonRecord> records;
    StoreLoadInfo sal;
    std::unique_ptr<StoreBackend> be =
        openStoreBackend(path, StoreFormat::Json, "reader");
    if (!be->load(records, &sal, /*quarantineBadTails=*/true)) {
        error = "cannot read result store " + path;
        return false;
    }
    if (sal.salvaged) {
        if (records.empty()) {
            error = "cannot parse result store " + path +
                    " (no parseable records)";
            return false;
        }
        // Truncated/torn store: fold the parseable prefix (a campaign
        // killed mid-write still certifies every record that landed);
        // the backend quarantined the bad tails for post-mortem.
        std::fprintf(stderr,
                     "[store] %s is truncated or corrupt: salvaged %zu "
                     "records (%llu of %llu bytes, %zu file%s); bad tail "
                     "%s%s\n",
                     path.c_str(), records.size(),
                     static_cast<unsigned long long>(sal.goodBytes),
                     static_cast<unsigned long long>(sal.totalBytes),
                     sal.files, sal.files == 1 ? "" : "s",
                     sal.quarantined.empty() ? "could not be quarantined"
                                             : "quarantined to ",
                     sal.quarantined.empty()
                         ? ""
                         : sal.quarantined.front().c_str());
    }

    // Pass 1: collect episode ledgers (v2, with per-episode owner
    // attribution when present), lease records, and meta records.
    std::map<std::string, std::map<int, std::pair<EpisodeRecord,
                                                  std::string>>> ledgers;
    std::map<std::string, const JsonRecord*> metas;
    std::map<std::string, const JsonRecord*> leases;
    std::vector<const JsonRecord*> legacyRecords;
    for (const JsonRecord& rec : records) {
        if (rec.name == kSweepStoreSchemaRecord)
            continue;
        std::string fp;
        const int idx = sweepEpisodeIndex(rec.name, &fp);
        if (idx >= 0) {
            EpisodeRecord er;
            if (episodeFromRecord(rec, er))
                ledgers[fp][idx] = {er, rec.text("by")};
            continue;
        }
        if (sweepLeaseFingerprint(rec.name, &fp)) {
            leases[fp] = &rec;
            continue;
        }
        if (sweepWorkerId(rec.name)) {
            // Coordinator range-dispatch telemetry: handed to callers
            // that ask for it (sweep-stats), never folded into a cell.
            if (workers)
                workers->push_back(rec);
            continue;
        }
        if (rec.name.rfind("v1|", 0) == 0 &&
            rec.number("episodes", -1.0) >= 0.0) {
            legacyRecords.push_back(&rec);
            continue;
        }
        metas.emplace(rec.name, &rec);
    }

    // Pass 2: fold each ledger's contiguous prefix (a hole from a killed
    // mid-flush campaign ends the comparable range; the suffix beyond it
    // was never certified by a completed fold).
    for (const auto& [fp, eps] : ledgers) {
        StoreCell cell;
        cell.fingerprint = fp;
        std::vector<EpisodeRecord> prefix;
        prefix.reserve(eps.size());
        std::map<std::string, int> owners;
        int next = 0;
        for (const auto& [idx, recOwner] : eps) {
            if (idx != next)
                break;
            prefix.push_back(recOwner.first);
            if (!recOwner.second.empty())
                ++owners[recOwner.second];
            ++next;
        }
        cell.episodes = next;
        cell.episodeOwners.assign(owners.begin(), owners.end());
        const auto lit = leases.find(fp);
        if (lit != leases.end()) {
            cell.leaseOwner = lit->second->text("owner");
            cell.leaseGen = static_cast<int>(lit->second->number("gen"));
            cell.leaseDone = lit->second->number("done") != 0.0;
        }
        cell.stats = aggregate(prefix);
        // Metrics are comparable only with full coverage: a ledger mixing
        // metrics-on and metrics-off (or v2 and v3) episodes would make
        // the summed counters depend on which build ran which episode.
        cell.hasMetrics = next > 0;
        for (const EpisodeRecord& rec : prefix) {
            cell.hasMetrics = cell.hasMetrics && rec.metrics.present;
            cell.metrics += rec.metrics;
        }
        if (!cell.hasMetrics)
            cell.metrics = EpisodeMetrics{};
        cell.records = std::move(prefix);
        const auto mit = metas.find(fp);
        if (mit != metas.end()) {
            cell.platform = mit->second->text("platform");
            cell.label = mit->second->text("label");
        }
        out.push_back(std::move(cell));
    }

    // Legacy v1 cell records contribute their aggregates directly.
    for (const JsonRecord* rec : legacyRecords) {
        StoreCell cell;
        cell.fingerprint = rec->name;
        cell.platform = rec->text("platform");
        cell.label = rec->text("label");
        cell.legacy = true;
        cell.episodes = static_cast<int>(rec->number("episodes"));
        cell.stats.episodes = cell.episodes;
        cell.stats.successes = static_cast<int>(rec->number("successes"));
        for (const auto& [key, member] : kTaskStatFields)
            cell.stats.*member = rec->number(key);
        out.push_back(std::move(cell));
    }

    std::sort(out.begin(), out.end(),
              [](const StoreCell& a, const StoreCell& b) {
                  return a.fingerprint < b.fingerprint;
              });
    return true;
}

StoreDiffResult
diffStoreCells(const std::vector<StoreCell>& a,
               const std::vector<StoreCell>& b, const StoreDiffOptions& opt)
{
    StoreDiffResult res;
    res.cellsA = static_cast<int>(a.size());
    res.cellsB = static_cast<int>(b.size());

    std::map<std::string, const StoreCell*> byFpB;
    for (const StoreCell& cell : b)
        byFpB.emplace(cell.fingerprint, &cell);

    std::vector<StoreDiffEntry> onlyA, onlyB;
    for (const StoreCell& ca : a) {
        const auto it = byFpB.find(ca.fingerprint);
        if (it == byFpB.end()) {
            onlyA.push_back({StoreDiffEntry::Kind::OnlyInA, ca.fingerprint,
                             ca.label.empty() ? "missing from B"
                                              : ca.label + ": missing from B"});
            continue;
        }
        const StoreCell& cb = *it->second;
        byFpB.erase(it);
        ++res.compared;
        if (ca.episodes != cb.episodes ||
            ca.stats.successes != cb.stats.successes) {
            res.entries.push_back(
                {StoreDiffEntry::Kind::Episodes, ca.fingerprint,
                 "episodes/successes " + std::to_string(ca.episodes) + "/" +
                     std::to_string(ca.stats.successes) + " vs " +
                     std::to_string(cb.episodes) + "/" +
                     std::to_string(cb.stats.successes)});
            continue; // stat drift is implied by a different fold length
        }
        for (const auto& [key, member] : kTaskStatFields) {
            const double va = ca.stats.*member;
            const double vb = cb.stats.*member;
            if (!withinTolerance(va, vb, opt))
                res.entries.push_back({StoreDiffEntry::Kind::Stat,
                                       ca.fingerprint,
                                       std::string(key) + " " + fmtg(va) +
                                           " vs " + fmtg(vb)});
        }
        // Observability counters are RNG-seed-driven and therefore as
        // deterministic as the stats; compare them when both sides have
        // full coverage (never wallMs -- wall time is honest noise).
        if (ca.hasMetrics && cb.hasMetrics) {
            for (const auto& [key, member] : kEpisodeMetricFields) {
                const double va =
                    static_cast<double>(ca.metrics.*member);
                const double vb =
                    static_cast<double>(cb.metrics.*member);
                if (!withinTolerance(va, vb, opt))
                    res.entries.push_back(
                        {StoreDiffEntry::Kind::Stat, ca.fingerprint,
                         "metrics." + std::string(key) + " " + fmtg(va) +
                             " vs " + fmtg(vb)});
            }
        }
    }
    for (const auto& [fp, cell] : byFpB)
        onlyB.push_back({StoreDiffEntry::Kind::OnlyInB, fp,
                         cell->label.empty() ? "new in B"
                                             : cell->label + ": new in B"});

    res.entries.insert(res.entries.end(), onlyA.begin(), onlyA.end());
    res.entries.insert(res.entries.end(), onlyB.begin(), onlyB.end());
    return res;
}

StoreDiffResult
diffStores(const std::string& pathA, const std::string& pathB,
           const StoreDiffOptions& opt)
{
    std::vector<StoreCell> a, b;
    std::string error;
    if (!loadStoreCells(pathA, a, error))
        throw std::runtime_error(error);
    if (!loadStoreCells(pathB, b, error))
        throw std::runtime_error(error);
    return diffStoreCells(a, b, opt);
}

} // namespace create
