#pragma once

/**
 * @file
 * Tail analytics over SweepRunner result stores: the engine behind the
 * `sweep-stats` tool (mirroring the sweep-diff / store_diff split).
 *
 * The episode ledger already holds every episode's energy, steps, and --
 * since store schema v3 -- wall time and fault-attribution counters. The
 * figure drivers fold that into means because the paper's tables are
 * means; a production SLO runs on tails. This engine computes, per ledger
 * and per (platform, task, protection) rollup:
 *
 *  - p50/p95/p99 of episode compute energy and steps (and wall time when
 *    the store carries metrics),
 *  - success-vs-rep convergence curves (the running success rate after
 *    1, 2, 5, 10, ... episodes: how many reps a cell needs before its
 *    success estimate settles),
 *  - summed per-layer flip attribution (injected / detected / corrected /
 *    escaped, re-executions) keyed by component tag,
 *
 * plus a compare mode that reports percentile drift between two stores
 * (the sweep-stats leg of the golden-store CI gate). Wall time is never
 * compared -- it is the one honest-noise field in the record.
 *
 * Percentiles use the nearest-rank definition (ceil(p/100 * n)-th order
 * statistic): every reported value is an actual sample, so a pinned-reps
 * golden store reproduces them bit-exactly.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/store_diff.hpp"

namespace create {

/**
 * Nearest-rank percentile of `samples` (pct in (0, 100]). Takes a copy
 * (selection reorders). Returns 0.0 on an empty sample set.
 */
double percentile(std::vector<double> samples, double pct);

/** The tail triple every sweep-stats table reports. */
struct PercentileSummary
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Name -> member table (sweep-stats rendering, export, compare). */
inline constexpr std::pair<const char*, double PercentileSummary::*>
    kPercentileFields[] = {
        {"p50", &PercentileSummary::p50},
        {"p95", &PercentileSummary::p95},
        {"p99", &PercentileSummary::p99},
};

/** p50/p95/p99 of one sample set (nearest rank; zeros when empty). */
PercentileSummary summarize(const std::vector<double>& samples);

/** One ledger's tail analytics. */
struct LedgerTail
{
    std::string fingerprint;
    std::string platform; //!< meta record, or parsed from the fingerprint
    std::string label;
    int taskId = -1;     //!< parsed from the fingerprint (-1: unknown)
    int protection = -1; //!< parsed `|prot=N` (-1: unknown / legacy)
    int episodes = 0;
    TaskStats stats; //!< the same fold the engine/drivers use

    PercentileSummary energyJ;
    PercentileSummary steps;
    PercentileSummary wallMs; //!< zeros unless hasWall

    /**
     * Convergence curve: (reps, running success rate) at checkpoint
     * prefix lengths 1, 2, 5, 10, 20, 50, ... and the full ledger --
     * how the success estimate settles as reps accumulate.
     */
    std::vector<std::pair<int, double>> convergence;

    /** Summed fault attribution (valid when hasMetrics). */
    EpisodeMetrics metrics;
    bool hasMetrics = false;
    bool hasWall = false;
};

/** One (platform, task, protection) rollup over its member ledgers. */
struct GroupTail
{
    std::string platform;
    int taskId = -1;
    int protection = -1;
    int ledgers = 0;
    int episodes = 0;
    double successRate = 0.0;
    PercentileSummary energyJ; //!< over the pooled episode samples
    PercentileSummary steps;
};

/**
 * One worker's share of an elastic campaign (from the per-episode `by`
 * attribution and the lease records elastic lease mode writes).
 */
struct ShardLoad
{
    std::string owner; //!< worker identity ("host:pid.seq")
    int episodes = 0;  //!< attributed episodes over folded prefixes
    int ledgers = 0;   //!< ledgers this worker ran episodes of
    int leasesHeld = 0; //!< ledgers whose current lease names this worker
    /**
     * Range-dispatch telemetry from the campaign coordinator's
     * `worker|<id>` record (socket campaigns only; hasRanges gates it).
     * The p95/p50 range wall-time ratio is the straggler signal: a
     * worker whose ratio is far above its peers' is being slowed by
     * something other than the workload.
     */
    bool hasRanges = false;
    long long rangesAssigned = 0;
    long long rangesCompleted = 0;
    long long rangesRedispatched = 0; //!< lost to timeout/disconnect
    double epsPerSec = 0.0;  //!< fresh episodes / connected wall seconds
    double rangeP50Ms = 0.0; //!< per-completed-range wall time tails
    double rangeP95Ms = 0.0;
};

/** Full analytics of one store. */
struct StoreStatsResult
{
    std::vector<LedgerTail> ledgers; //!< fingerprint order
    std::vector<GroupTail> groups;   //!< (platform, task, protection) order
    int legacyCells = 0; //!< v1 aggregates: counted, not tail-analyzed
    /** Per-worker attribution; empty unless the store carries lease-mode
     *  records. Ordered by episodes descending. */
    std::vector<ShardLoad> shards;
};

/**
 * Analyze loaded store cells (see loadStoreCells). `workers` are the
 * store's coordinator telemetry records (loadStoreCells' optional out
 * param); they fold into the matching shards' range columns.
 */
StoreStatsResult
computeStoreStats(const std::vector<StoreCell>& cells,
                  const std::vector<JsonRecord>& workers = {});

/**
 * Load + analyze a store file. Returns false with `error` set when the
 * file is missing or unparsable.
 */
bool computeStoreStats(const std::string& path, StoreStatsResult& out,
                       std::string& error);

/** One percentile-drift finding of a store comparison. */
struct StatsDriftEntry
{
    std::string fingerprint;
    std::string detail; //!< e.g. "energyJ.p95 12.1 vs 14.9"
};

/** Result of comparing two stores' tail analytics. */
struct StatsCompareResult
{
    std::vector<StatsDriftEntry> entries;
    int compared = 0; //!< ledgers present in both stores
    int onlyA = 0;
    int onlyB = 0;

    bool clean() const
    {
        return entries.empty() && onlyA == 0 && onlyB == 0;
    }
};

/**
 * Compare per-ledger episode counts and energy/steps percentiles between
 * two stores under the sweep-diff tolerance rule (|a-b| <= absTol +
 * relTol * max). Wall time never enters the comparison.
 */
StatsCompareResult compareStoreStats(const StoreStatsResult& a,
                                     const StoreStatsResult& b,
                                     const StoreDiffOptions& opt = {});

} // namespace create
